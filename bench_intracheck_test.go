// BenchmarkIntraCheck measures how a SINGLE robustness check scales with
// cores — the intra-check parallelism of the Parallelism knob, as opposed to
// the across-subset fanout of BenchmarkRobustSubsets. Each iteration runs
// the full cold pipeline on an Auction(n) universe (~9n² summary-graph
// edges): Algorithm 1's pairwise edge derivation sharded across workers
// (BlockSet.EnsureCtx), graph assembly, the node-closure fixpoint (round-
// synchronized when parallel) and the type-II cycle search. Construction
// dominates end to end — detection is microseconds even at n=40 — so the
// sequential/sharded ratio is the speedup of the sharded stages.
//
// Reproduce with:
//
//	go test -bench 'BenchmarkIntraCheck' -benchtime 20x .
//
// On a multi-core runner the sharded variant at GOMAXPROCS should be ≥2×
// the sequential one at n=40; on a single-core runner the two coincide.
package mvrc

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/summary"
)

func BenchmarkIntraCheck(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		bench := benchmarks.AuctionN(n)
		ltps := btp.UnfoldAll2(bench.Programs)
		modes := []struct {
			name    string
			workers int
		}{
			{"sequential", 1},
			{"sharded", runtime.GOMAXPROCS(0)},
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("Auction-n%d/%s", n, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// A cold block cache per iteration: the benchmark
					// measures first-check latency, not warm cache reads.
					bs := summary.NewBlockSet(bench.Schema, summary.SettingAttrDepFK)
					g, err := summary.ComposeCtx(context.Background(), bs, ltps, mode.workers)
					if err != nil {
						b.Fatal(err)
					}
					ok, _ := g.Robust(summary.TypeII)
					if !ok {
						b.Fatal("Auction(n) must be robust under attr+fk/type-II")
					}
				}
			})
		}
	}
}
