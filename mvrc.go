// Package mvrc is the public API of this repository: a static-analysis
// library that decides — soundly — whether a set of transaction programs is
// robust against isolation level (multiversion) Read Committed, i.e.
// whether every interleaving the programs can produce under MVRC is
// conflict serializable, so the workload can safely run at the cheaper
// isolation level.
//
// It implements the EDBT 2023 paper "Detecting Robustness against MVRC for
// Transaction Programs with Predicate Reads" (Vandevoort, Ketsman, Koch,
// Neven): basic transaction programs with inserts, deletes, predicate
// reads, conditionals and loops (Section 5); loop unfolding to depth two
// (Proposition 6.1); automatic summary-graph construction (Algorithm 1);
// and the type-II-cycle robustness test (Algorithm 2 / Theorem 6.4),
// alongside the weaker type-I baseline of Alomari and Fekete.
//
// # Quick start
//
//	schema := relschema.NewSchema()
//	schema.MustAddRelation("Accounts", []string{"id", "bal"}, []string{"id"})
//	programs, err := mvrc.ParseSQL(schema, sqlText)
//	report, err := mvrc.Check(schema, programs)
//	if report.Robust { /* run the workload under READ COMMITTED */ }
//
// # Architecture: the incremental analysis engine
//
// All checks run on the session engine of internal/analysis. A Session
// unfolds every program exactly once per bound, caches the pairwise
// summary-graph edge blocks of Algorithm 1 per analysis setting, and
// assembles each requested graph from those blocks (summary.Compose)
// instead of re-running the quadratic edge derivation. Subset enumeration
// (RobustSubsets, the analysis behind Figures 6 and 7) composes all 2^n − 1
// subset graphs from the same cache and fans them out over a bounded worker
// pool — the Parallelism knob of Options, defaulting to GOMAXPROCS.
//
// The same knob also parallelizes a *single* large check from the inside:
// missing pairwise edge blocks are sharded across the pool and the
// reflexive-transitive closure of big summary graphs runs as a
// round-synchronized parallel fixpoint, so Auction(n)-scale graphs
// (~9n² edges) scale with cores instead of one. See docs/ARCHITECTURE.md
// for how the knob flows through the layers.
//
// One-shot calls (Check, CheckWith, RobustSubsets) create a throwaway
// session internally; long-lived callers that analyse many overlapping
// program sets should hold a NewSession and pass it each request, paying
// unfolding and edge derivation only once:
//
//	sess := mvrc.NewSession(schema)
//	report, err := sess.RobustSubsets(programs, mvrc.DefaultOptions())
//
// When one program of a long-lived workload changes, Invalidate performs
// incremental re-analysis bookkeeping: it evicts only that program's
// unfoldings and pairwise edge blocks, so the next check recomputes those
// pairs alone.
//
// # Robustness as a service
//
// NewServer and Serve expose the session engine as a resident JSON-over-
// HTTP service (cmd/robustserved): workloads are registered once into a
// fingerprint-keyed LRU registry and answer robustness queries many times
// from warm caches, with single-program PATCHes triggering the incremental
// re-analysis path and identical in-flight subset enumerations coalesced.
// See internal/server for the API surface and internal/wire for the wire
// types, which cmd/robustcheck -json shares.
//
// The service is restartable and memory-governed: a per-workload result
// cache answers repeated subset enumerations from stored bytes (invalidated
// exactly by PATCH version bumps), ServerOptions.StateDir persists every
// workload as a JSON snapshot (internal/snapshot) reloaded on boot — a
// restart preserves wire behavior byte for byte, without re-running
// Algorithm 1 for cached enumerations — and ServerOptions.MaxBytes replaces
// blind LRU with size-weighted eviction over per-workload memory estimates
// (Session.SizeBytes). docs/ARCHITECTURE.md's "Persistence & result cache"
// section draws the three-cache picture.
//
// See examples/ for complete programs and internal/experiments for the
// reproduction of the paper's evaluation.
package mvrc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/dot"
	"repro/internal/obs"
	"repro/internal/realize"
	"repro/internal/relschema"
	"repro/internal/robust"
	"repro/internal/server"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
)

// Re-exported types, so that typical use needs only this package plus
// internal/relschema for schema declarations and internal/btp for
// programmatic program construction.
type (
	// Schema is a relational schema with primary and foreign keys.
	Schema = relschema.Schema
	// Program is a basic transaction program (BTP).
	Program = btp.Program
	// Setting is an analysis setting (granularity × foreign keys).
	Setting = summary.Setting
	// Method selects the cycle condition (TypeII = Algorithm 2).
	Method = summary.Method
	// Report is the outcome of a robustness check.
	Report = robust.Result
	// SubsetReport lists robust and maximal robust subsets.
	SubsetReport = robust.SubsetReport
	// Options configures a check: setting, method, unfold bound and the
	// parallelism of subset enumeration. The zero value is attribute
	// granularity without foreign keys, type-II cycles, bound 2,
	// GOMAXPROCS workers; DefaultOptions selects the paper's primary
	// setting (attribute dependencies with foreign keys).
	Options = analysis.Config
	// Session is the reusable incremental analysis engine: it memoizes
	// unfoldings and pairwise summary-graph edge blocks across calls.
	Session = analysis.Session
	// Server is the resident robustness service behind cmd/robustserved.
	Server = server.Server
	// ServerOptions configures a Server: registry cap, subset-enumeration
	// parallelism, per-request timeout, the snapshot directory for restart
	// persistence (StateDir) and the estimated-memory eviction budget
	// (MaxBytes).
	ServerOptions = server.Options
	// StreamMode selects how much of the subset lattice a streaming
	// enumeration traverses (all, first_non_robust, all_maximal_robust,
	// top_k).
	StreamMode = analysis.StreamMode
	// StreamOptions configures a streaming enumeration: mode, top-k budget
	// and an emitted-subset cap.
	StreamOptions = analysis.StreamOptions
	// StreamVerdict is one incrementally emitted subset verdict.
	StreamVerdict = analysis.StreamVerdict
	// StreamSummary is the final record of a streaming enumeration.
	StreamSummary = analysis.StreamSummary
	// Tracer receives phase spans (validate/unfold, pair derivation,
	// compose, detect, lattice levels, first verdict) from the analysis
	// engine when set on Options. A nil Tracer — the default — costs
	// nothing: the engine takes no timestamps and allocates nothing.
	// Implementations must be safe for concurrent use.
	Tracer = obs.Tracer
	// SpanRecorder is an in-memory Tracer that aggregates spans per phase;
	// cmd/robustcheck -timings and the server's ?debug=timings use it.
	SpanRecorder = obs.SpanRecorder
	// PhaseTiming is one aggregated phase entry of a SpanRecorder snapshot.
	PhaseTiming = obs.PhaseTiming
)

// NewSpanRecorder creates an empty SpanRecorder; set it as Options.Tracer
// (or Checker.Tracer) and read Snapshot after the analysis.
func NewSpanRecorder() *SpanRecorder { return obs.NewSpanRecorder() }

// Streaming enumeration modes.
const (
	// StreamAll streams every subset verdict; the summary's report is
	// identical to RobustSubsets.
	StreamAll = analysis.StreamAll
	// StreamFirstNonRobust terminates after the first (smallest)
	// non-robust verdict.
	StreamFirstNonRobust = analysis.StreamFirstNonRobust
	// StreamMaximalRobust emits only robust verdicts and stops after the
	// first level with none; its report is still exact by monotonicity.
	StreamMaximalRobust = analysis.StreamMaximalRobust
	// StreamTopK is StreamMaximalRobust plus the K largest robust subsets
	// in the summary.
	StreamTopK = analysis.StreamTopK
)

// Analysis settings (Section 7.2) and methods.
var (
	// AttrDepFK is the paper's primary setting: attribute-level
	// dependencies with foreign keys.
	AttrDepFK = summary.SettingAttrDepFK
	// AttrDep disables foreign keys.
	AttrDep = summary.SettingAttrDep
	// TplDepFK uses tuple-level dependencies with foreign keys.
	TplDepFK = summary.SettingTplDepFK
	// TplDep uses tuple-level dependencies without foreign keys.
	TplDep = summary.SettingTplDep
)

// Cycle conditions.
const (
	// TypeII is the paper's refined condition (Algorithm 2).
	TypeII = summary.TypeII
	// TypeI is the baseline condition of Alomari and Fekete [3].
	TypeI = summary.TypeI
)

// NewSchema creates an empty schema.
func NewSchema() *Schema { return relschema.NewSchema() }

// NewSession creates a reusable analysis engine over the schema. Sessions
// are safe for concurrent use and amortize validation, unfolding and
// Algorithm 1's edge derivation across calls.
func NewSession(schema *Schema) *Session { return analysis.NewSession(schema) }

// DefaultOptions returns the paper's primary configuration: attribute
// dependencies with foreign keys, type-II cycles, unfold bound 2.
func DefaultOptions() Options { return analysis.DefaultConfig() }

// ParseSQL translates transaction programs written in the SQL fragment of
// the paper's Appendix A (see internal/sqlbtp for the exact dialect) into
// basic transaction programs over the schema.
func ParseSQL(schema *Schema, src string) ([]*Program, error) {
	return sqlbtp.Parse(schema, src)
}

// Check tests whether the program set is robust against MVRC under the
// paper's primary setting (attribute dependencies + foreign keys, type-II
// cycles). Robust == true is a guarantee; false may be a false negative.
func Check(schema *Schema, programs []*Program) (*Report, error) {
	return CheckWith(schema, programs, AttrDepFK, TypeII)
}

// CheckWith tests robustness under an explicit setting and method.
func CheckWith(schema *Schema, programs []*Program, setting Setting, method Method) (*Report, error) {
	c := robust.NewChecker(schema)
	c.Setting = setting
	c.Method = method
	return c.Check(programs)
}

// CheckOptions tests robustness under a full options struct, including the
// unfold bound and (for subsequent subset enumeration on a shared session)
// the parallelism knob.
func CheckOptions(schema *Schema, programs []*Program, opts Options) (*Report, error) {
	return analysis.NewSession(schema).Check(programs, opts)
}

// RobustSubsets checks every non-empty subset of the programs and returns
// the robust and maximal robust subsets (the analysis behind Figures 6
// and 7 of the paper). The enumeration is lattice-pruned: subsets are
// visited by size and once a subset is non-robust its minimal non-robust
// core decides every superset by a bitset-containment test instead of a
// cycle search (non-robustness is monotone over induced subgraphs), with
// robust covers pruning the other direction; verdicts are identical to
// the exhaustive per-subset check. Use RobustSubsetsOptions to bound the
// parallelism or select the flat path (Options.DisablePruning).
func RobustSubsets(schema *Schema, programs []*Program, setting Setting, method Method) (*SubsetReport, error) {
	return RobustSubsetsOptions(schema, programs, Options{Setting: setting, Method: method})
}

// RobustSubsetsOptions is RobustSubsets under a full options struct.
func RobustSubsetsOptions(schema *Schema, programs []*Program, opts Options) (*SubsetReport, error) {
	return analysis.NewSession(schema).RobustSubsets(programs, opts)
}

// RobustSubsetsStream is the streaming form of RobustSubsets: the same
// lattice-pruned enumeration emits each verdict through the callback the
// moment its level decides it — subsets are composed lazily, so the first
// verdict arrives long before the universe graph would have been built —
// visiting each level in descending estimated-conflict order, with
// optional early termination (first non-robust subset, maximal robust
// sets only, top-k, or an emitted-subset budget; see StreamOptions). A
// full stream's summary carries a report identical to RobustSubsets.
func RobustSubsetsStream(ctx context.Context, schema *Schema, programs []*Program, opts Options, sopts StreamOptions, emit func(StreamVerdict) error) (*StreamSummary, error) {
	return analysis.NewSession(schema).RobustSubsetsStream(ctx, programs, opts, sopts, emit)
}

// Invalidate drops everything sess has memoized for the program — its
// validation verdict, unfoldings, and every cached pairwise edge block
// with one of its LTPs as an endpoint — and reports how many pairs were
// evicted. Blocks between untouched programs stay cached, so re-analysing
// a workload after one program changed recomputes only that program's
// ordered pairs.
func Invalidate(sess *Session, p *Program) int {
	return sess.Invalidate(p)
}

// NewServer creates the resident robustness service: a fingerprint-keyed
// workload registry with an LRU cap, each entry wrapping a Session so
// unfoldings and edge-block caches are amortized across requests. Expose
// it with Serve or mount Server.Handler into an existing mux.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// Serve runs the service's HTTP API on addr until ctx is cancelled, then
// shuts down gracefully (draining in-flight requests for up to five
// seconds; coalesced background enumerations are aborted).
func Serve(ctx context.Context, addr string, srv *Server) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, srv)
}

// ServeListener is Serve on an existing listener (which it takes ownership
// of) — the hook for callers that bind port 0 and need the chosen address.
// On ctx cancellation the server drains: readiness (/healthz/ready) goes
// 503 first so load balancers stop routing, in-flight requests get up to
// five seconds to complete, and the final snapshot flush runs with bounded
// retries. A drain deadline that forces connections closed, or a final
// flush that cannot persist, is returned as an error — callers exiting on
// it should do so non-zero, since either means client-visible work or
// durability was lost.
func ServeListener(ctx context.Context, ln net.Listener, srv *Server) error {
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(sctx)
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
		return err
	case err := <-errc:
		if cerr := srv.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return err
	}
}

// SummaryGraphDOT renders the summary graph of a report in Graphviz DOT
// format (counterflow edges dashed, as in the paper's figures).
func SummaryGraphDOT(r *Report, edgeLabels bool) string {
	return dot.SummaryGraph(r.Graph, dot.Options{EdgeLabels: edgeLabels, CollapseParallel: true})
}

// Realize attempts to turn a non-robust report into a concrete
// counterexample schedule by exhaustive search over a canonical
// instantiation of the witness cycle (see internal/realize). A Realized
// outcome proves the program set non-robust at the BTP level; a Refuted
// outcome flags a possible false negative of the sound analysis.
func Realize(schema *Schema, r *Report) (*realize.Result, error) {
	if r.Robust {
		return nil, fmt.Errorf("mvrc: nothing to realize — the program set is robust")
	}
	ignoreFKs := !r.Graph.Setting.UseForeignKeys
	return realize.Witness(schema, r.Witness, realize.Options{
		ExtraInstances: true,
		IgnoreFKs:      ignoreFKs,
	})
}

// Explain renders a human-readable verdict, including a dangerous cycle
// when the check failed.
func Explain(r *Report) string {
	if r.Robust {
		st := r.Graph.Stats()
		return fmt.Sprintf("robust against MVRC (summary graph: %d nodes, %d edges, %d counterflow; no dangerous cycle)",
			st.Nodes, st.Edges, st.CounterflowEdges)
	}
	return fmt.Sprintf("NOT certified robust against MVRC — dangerous cycle found:\n%s", r.Witness)
}
