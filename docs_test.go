package mvrc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the documentation entry points whose relative links the CI
// doc-link gate keeps honest.
var docFiles = []string{"README.md", "docs/ARCHITECTURE.md", "docs/SQL.md", "ROADMAP.md", "CHANGES.md"}

// mdLink matches markdown link targets; URL schemes and intra-page anchors
// are filtered out below.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks fails when README/ARCHITECTURE (or the other tracked docs)
// reference repository files that do not exist — the doc-link gate run by
// CI. Each link is resolved relative to the directory of the file that
// contains it, exactly as GitHub and local markdown viewers resolve it.
func TestDocLinks(t *testing.T) {
	for _, f := range docFiles {
		raw, err := os.ReadFile(f)
		if err != nil {
			if os.IsNotExist(err) && f != "README.md" {
				continue
			}
			t.Fatalf("read %s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(f), target)); err != nil {
				t.Errorf("%s links to %q, which does not exist relative to %s",
					f, m[1], filepath.Dir(f))
			}
		}
	}
}

// TestDocsMentionCode spot-checks that the architecture doc stays anchored
// to real identifiers: every code symbol it names as load-bearing must
// still exist in the tree (cheap drift detection alongside the link gate).
func TestDocsMentionCode(t *testing.T) {
	raw, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist (it is linked from README): %v", err)
	}
	doc := string(raw)
	for _, want := range []string{
		"BlockSet", "Compose", "SubsetDetector", "EnsureCtx",
		"squaringFixpoint", "RobustSubsets", "Parallelism",
		"NaiveRobustSubsets", "last_parallelism",
		"internal/snapshot", "SizeBytes", "result_cache",
		"-state-dir", "-max-bytes", "evictions_bytes",
		"CoreSet", "CoverSet", "WitnessMask", "subsets_pruned",
		"DisablePruning", "typeIIParallel", "RobustWith",
		"-flush-interval", "Server.Flush",
		"RobustSubsetsStream", "subsets:stream", "first_non_robust",
		"StreamSummary", "streamed_requests", "sched_checked",
		"MaxSubsets", "StreamVerdictRecord",
		"mvrc_phase_duration_seconds", "mvrc_http_requests_total",
		"obs.Tracer", "WithTracer", "X-Request-ID", "debug=timings",
		"-pprof-addr", "stats_generation", "PreCollect",
		"first_verdict", "snapshot_flush",
		"internal/certify", "certify.Subset", "CertifyCore",
		"Certificate.Verify", "certified_cores", "unrealized_candidates",
		"WriteOrderRespectsLifecycle", "RandomBTPs",
		"FuzzRandomWorkloadSoundness", "FuzzCertifyRoundTrip",
		"FuzzSnapshotDecode", "-certify", "max_schedules",
		"internal/sqlbtp/ir", "dialect/postgres", ":fromSQL",
		"ParseError", "snapshot.Fingerprint", "FuzzDialectParse",
		"BenchmarkSQLCompile", "@reads",
		"internal/faultfs", "faultfs.Injector", "Injector.Crash",
		"TornBytes", "TestChaosKill9Cycles",
		"mvrc_snapshot_retries_total", "mvrc_snapshot_degraded",
		"/healthz/ready", "BeginDrain",
		"-max-concurrent-checks", "Retry-After", "mvrc_shed_requests_total",
		"-request-timeout", "PanicError", "mvrc_panics_total",
		"BenchmarkServerOverhead",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("ARCHITECTURE.md no longer mentions %q — update the doc with the code", want)
		}
	}
}
