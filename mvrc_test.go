package mvrc

import (
	"strings"
	"testing"
)

const facadeSQL = `
PROGRAM Deposit(:K, :V):
  UPDATE Accts SET bal = bal + :V WHERE id = :K; -- q1
  COMMIT;

PROGRAM ReadAll():
  SELECT bal FROM Accts WHERE bal >= 0; -- q2
  COMMIT;
`

func facadeSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddRelation("Accts", []string{"id", "bal"}, []string{"id"})
	return s
}

func TestFacadePipeline(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) != 2 {
		t.Fatalf("programs = %d", len(programs))
	}
	report, err := Check(s, programs)
	if err != nil {
		t.Fatal(err)
	}
	// Deposit + predicate ReadAll: the predicate read can observe the
	// account before the deposit commits while a second dependency orders
	// them the other way — still robust? The summary graph has a single
	// counterflow edge ReadAll -> Deposit and a wr edge back; the
	// ordered-counterflow condition needs an edge into ReadAll whose
	// source precedes... check against the analysis itself:
	explain := Explain(report)
	if report.Robust && !strings.Contains(explain, "robust against MVRC") {
		t.Errorf("Explain inconsistent with verdict: %q", explain)
	}
	if !report.Robust && !strings.Contains(explain, "dangerous cycle") {
		t.Errorf("Explain inconsistent with verdict: %q", explain)
	}
	dot := SummaryGraphDOT(report, true)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("DOT output malformed: %q", dot)
	}
}

func TestFacadeCheckWithSettings(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	// The verdict must agree between Check and CheckWith(defaults).
	a, err := Check(s, programs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckWith(s, programs, AttrDepFK, TypeII)
	if err != nil {
		t.Fatal(err)
	}
	if a.Robust != b.Robust {
		t.Fatal("Check and CheckWith disagree")
	}
	// Type-I is at least as strict as type-II.
	c, err := CheckWith(s, programs, AttrDepFK, TypeI)
	if err != nil {
		t.Fatal(err)
	}
	if c.Robust && !a.Robust {
		t.Fatal("type-I certified a set type-II rejected")
	}
}

func TestFacadeRobustSubsets(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RobustSubsets(s, programs, AttrDepFK, TypeII)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Robust) == 0 {
		t.Fatal("singletons must be robust")
	}
}
