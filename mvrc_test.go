package mvrc

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
)

const facadeSQL = `
PROGRAM Deposit(:K, :V):
  UPDATE Accts SET bal = bal + :V WHERE id = :K; -- q1
  COMMIT;

PROGRAM ReadAll():
  SELECT bal FROM Accts WHERE bal >= 0; -- q2
  COMMIT;
`

func facadeSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddRelation("Accts", []string{"id", "bal"}, []string{"id"})
	return s
}

func TestFacadePipeline(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) != 2 {
		t.Fatalf("programs = %d", len(programs))
	}
	report, err := Check(s, programs)
	if err != nil {
		t.Fatal(err)
	}
	// Deposit + predicate ReadAll: the predicate read can observe the
	// account before the deposit commits while a second dependency orders
	// them the other way — still robust? The summary graph has a single
	// counterflow edge ReadAll -> Deposit and a wr edge back; the
	// ordered-counterflow condition needs an edge into ReadAll whose
	// source precedes... check against the analysis itself:
	explain := Explain(report)
	if report.Robust && !strings.Contains(explain, "robust against MVRC") {
		t.Errorf("Explain inconsistent with verdict: %q", explain)
	}
	if !report.Robust && !strings.Contains(explain, "dangerous cycle") {
		t.Errorf("Explain inconsistent with verdict: %q", explain)
	}
	dot := SummaryGraphDOT(report, true)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("DOT output malformed: %q", dot)
	}
}

func TestFacadeCheckWithSettings(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	// The verdict must agree between Check and CheckWith(defaults).
	a, err := Check(s, programs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckWith(s, programs, AttrDepFK, TypeII)
	if err != nil {
		t.Fatal(err)
	}
	if a.Robust != b.Robust {
		t.Fatal("Check and CheckWith disagree")
	}
	// Type-I is at least as strict as type-II.
	c, err := CheckWith(s, programs, AttrDepFK, TypeI)
	if err != nil {
		t.Fatal(err)
	}
	if c.Robust && !a.Robust {
		t.Fatal("type-I certified a set type-II rejected")
	}
}

func TestFacadeRobustSubsets(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RobustSubsets(s, programs, AttrDepFK, TypeII)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Robust) == 0 {
		t.Fatal("singletons must be robust")
	}
}

// TestFacadeServe boots the public service API on a loopback port, does a
// register + check round trip, and exercises Invalidate through a session.
func TestFacadeServe(t *testing.T) {
	srv := NewServer(ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ServeListener(ctx, ln, srv) }()

	base := "http://" + ln.Addr().String()
	body := strings.NewReader(`{"benchmark": "smallbank"}`)
	resp, err := http.Post(base+"/v1/workloads", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || reg.ID == "" {
		t.Fatalf("register: %d %+v", resp.StatusCode, reg)
	}
	resp, err = http.Post(base+"/v1/workloads/"+reg.ID+"/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var check struct {
		Robust bool `json:"robust"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || check.Robust {
		t.Fatalf("check: %d robust=%t (full SmallBank is not robust)", resp.StatusCode, check.Robust)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestFacadeInvalidate asserts the public invalidation hook evicts exactly
// the program's pairs from a warm session.
func TestFacadeInvalidate(t *testing.T) {
	s := facadeSchema(t)
	programs, err := ParseSQL(s, facadeSQL)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s)
	if _, err := sess.Check(programs, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Two single-LTP programs → 4 pairs; invalidating one evicts the 3
	// with it as an endpoint.
	if got := Invalidate(sess, programs[0]); got != 3 {
		t.Fatalf("Invalidate evicted %d pairs, want 3", got)
	}
	if got := Invalidate(sess, programs[0]); got != 0 {
		t.Fatalf("second Invalidate evicted %d pairs, want 0", got)
	}
}
