package mvrc_test

import (
	"fmt"
	"log"

	mvrc "repro"
)

// ExampleCheck analyzes two programs of a tiny banking schema: a
// read-modify-write deposit and a key-based balance read. The pair is
// robust — the paper's Algorithm 2 finds no dangerous cycle — so the
// workload may run under READ COMMITTED.
func ExampleCheck() {
	schema := mvrc.NewSchema()
	schema.MustAddRelation("Accounts", []string{"id", "bal"}, []string{"id"})

	programs, err := mvrc.ParseSQL(schema, `
PROGRAM Deposit(:K, :V):
  UPDATE Accounts SET bal = bal + :V WHERE id = :K; -- q1
  COMMIT;

PROGRAM CheckBalance(:K):
  SELECT bal FROM Accounts WHERE id = :K; -- q2
  COMMIT;
`)
	if err != nil {
		log.Fatal(err)
	}
	report, err := mvrc.Check(schema, programs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Robust)
	// Output: true
}

// ExampleCheckWith compares the paper's type-II condition against the
// older type-I condition of Alomari and Fekete on the same workload: a
// read-only audit scanning with a predicate plus a blind writer. The
// type-I condition rejects any cycle containing a counterflow edge; the
// refined condition still certifies robustness.
func ExampleCheckWith() {
	schema := mvrc.NewSchema()
	schema.MustAddRelation("Accounts", []string{"id", "bal"}, []string{"id"})

	programs, err := mvrc.ParseSQL(schema, `
PROGRAM Deposit(:K, :V):
  UPDATE Accounts SET bal = bal + :V WHERE id = :K; -- q1
  COMMIT;

PROGRAM Audit():
  SELECT bal FROM Accounts WHERE bal >= 0; -- q2
  COMMIT;
`)
	if err != nil {
		log.Fatal(err)
	}
	typeII, err := mvrc.CheckWith(schema, programs, mvrc.AttrDepFK, mvrc.TypeII)
	if err != nil {
		log.Fatal(err)
	}
	typeI, err := mvrc.CheckWith(schema, programs, mvrc.AttrDepFK, mvrc.TypeI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("type-II robust:", typeII.Robust)
	fmt.Println("type-I robust: ", typeI.Robust)
	// Output:
	// type-II robust: true
	// type-I robust:  false
}

// ExampleRobustSubsets enumerates the maximal robust subsets of a
// three-program workload, mirroring the methodology of Figures 6 and 7.
func ExampleRobustSubsets() {
	schema := mvrc.NewSchema()
	schema.MustAddRelation("Accounts", []string{"id", "bal"}, []string{"id"})
	schema.MustAddRelation("AuditLog", []string{"id", "total"}, []string{"id"})

	programs, err := mvrc.ParseSQL(schema, `
PROGRAM Deposit(:K, :V):
  UPDATE Accounts SET bal = bal + :V WHERE id = :K; -- q1
  COMMIT;

PROGRAM Snapshot(:K, :L):
  SELECT bal INTO :b FROM Accounts WHERE id = :K;     -- q2
  UPDATE AuditLog SET total = :b WHERE id = :L;       -- q3
  COMMIT;

PROGRAM ReadLog(:L):
  SELECT total FROM AuditLog WHERE id = :L; -- q4
  COMMIT;
`)
	if err != nil {
		log.Fatal(err)
	}
	report, err := mvrc.RobustSubsets(schema, programs, mvrc.AttrDepFK, mvrc.TypeII)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	// Output: {Deposit, ReadLog}, {ReadLog, Snapshot}
}
