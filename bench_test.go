// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 7), plus ablation benches for the design choices
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping:
//
//	BenchmarkTable2/*          — Table 2 (summary-graph construction per benchmark)
//	BenchmarkFigure6/*         — Figure 6 (maximal robust subsets, Algorithm 2)
//	BenchmarkFigure7/*         — Figure 7 (maximal robust subsets, type-I method of [3])
//	BenchmarkFigure8AuctionN/* — Figure 8 (Auction(n) scalability sweep)
//	BenchmarkRobustSubsets/*   — naive vs cached/parallel subset enumeration
//	BenchmarkAblation*         — design-choice ablations
//
// Each bench prints the quantities the paper reports (edge counts, robust
// subsets, verdicts) once, then measures the end-to-end analysis time.
package mvrc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/experiments"
	"repro/internal/robust"
	"repro/internal/server"
	"repro/internal/summary"
)

// report prints a line once per benchmark name (not per iteration).
var reported sync.Map

func reportOnce(b *testing.B, format string, args ...any) {
	if _, loaded := reported.LoadOrStore(b.Name(), true); !loaded {
		b.Logf(format, args...)
	}
}

// --- Table 2: benchmark characteristics -----------------------------------

func benchmarkTable2(b *testing.B, mk func() *benchmarks.Benchmark) {
	b.ReportAllocs()
	bench := mk()
	row := experiments.Table2(bench)
	reportOnce(b, "Table 2 row: %s — %d relations, %d programs, %d nodes, %d edges (%d counterflow)",
		row.Benchmark, row.Relations, row.Programs, row.Nodes, row.Edges, row.CounterflowEdges)
	ltps := btp.UnfoldAll2(bench.Programs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
		if len(g.Edges) != row.Edges {
			b.Fatalf("edge count drifted: %d != %d", len(g.Edges), row.Edges)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.Run("SmallBank", func(b *testing.B) { benchmarkTable2(b, benchmarks.SmallBank) })
	b.Run("TPCC", func(b *testing.B) { benchmarkTable2(b, benchmarks.TPCC) })
	b.Run("Auction", func(b *testing.B) { benchmarkTable2(b, benchmarks.Auction) })
}

// --- Figures 6 and 7: maximal robust subsets ------------------------------

func benchmarkFigure(b *testing.B, mk func() *benchmarks.Benchmark, setting summary.Setting, method summary.Method) {
	b.ReportAllocs()
	bench := mk()
	cell, err := experiments.RobustSubsetsCell(bench, setting, method)
	if err != nil {
		b.Fatal(err)
	}
	reportOnce(b, "%s under %s (%s): %s", bench.Name, setting, method, cell)
	b.ResetTimer()
	// A fresh Checker (and therefore a cold engine session) per iteration:
	// these benches measure the full figure pipeline — unfolding, edge
	// derivation, enumeration — as the paper's timings do. The warm-cache
	// regime is measured separately by BenchmarkRobustSubsets/cached.
	for i := 0; i < b.N; i++ {
		checker := robust.NewChecker(bench.Schema)
		checker.Setting = setting
		checker.Method = method
		if _, err := checker.RobustSubsets(bench.Programs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for _, setting := range summary.AllSettings {
		setting := setting
		b.Run("SmallBank/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.SmallBank, setting, summary.TypeII)
		})
		b.Run("TPCC/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.TPCC, setting, summary.TypeII)
		})
		b.Run("Auction/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.Auction, setting, summary.TypeII)
		})
	}
}

func BenchmarkFigure7(b *testing.B) {
	for _, setting := range summary.AllSettings {
		setting := setting
		b.Run("SmallBank/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.SmallBank, setting, summary.TypeI)
		})
		b.Run("TPCC/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.TPCC, setting, summary.TypeI)
		})
		b.Run("Auction/"+setting.String(), func(b *testing.B) {
			benchmarkFigure(b, benchmarks.Auction, setting, summary.TypeI)
		})
	}
}

// --- Figure 8: Auction(n) scalability --------------------------------------

// BenchmarkFigure8AuctionN sweeps the scaling factor n and measures the
// full pipeline (unfold + summary graph + Algorithm 2), mirroring the
// left plot of Figure 8; the reported edge counts mirror the right plot
// (8n + 9n² edges, n counterflow).
func BenchmarkFigure8AuctionN(b *testing.B) {
	for _, n := range []int{1, 5, 10, 20, 40, 60, 80, 100} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			bench := benchmarks.AuctionN(n)
			wantEdges, wantCF := experiments.ExpectedAuctionNEdges(n)
			reportOnce(b, "Auction(%d): %d nodes, %d edges (%d counterflow) expected", n, 3*n, wantEdges, wantCF)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ltps := btp.UnfoldAll2(bench.Programs)
				g := summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
				robustOK, _ := g.Robust(summary.TypeII)
				if !robustOK {
					b.Fatal("Auction(n) must be robust")
				}
				if len(g.Edges) != wantEdges || g.CounterflowEdges() != wantCF {
					b.Fatalf("edge counts drifted: %d (%d)", len(g.Edges), g.CounterflowEdges())
				}
			}
		})
	}
}

// --- Naive vs cached subset enumeration ------------------------------------

// BenchmarkRobustSubsets compares three generations of the SmallBank
// subset enumeration, per setting:
//
//	naive   — the pre-refactor path: re-unfold and re-run Algorithm 1 for
//	          each of the 2^n − 1 subsets
//	cached  — the incremental engine's flat fan-out (DisablePruning):
//	          unfold once, cache pairwise edge blocks, run the cycle
//	          detector on every subset over a worker pool
//	pruned  — the lattice-pruned traversal (the default path): level-order
//	          by subset size, minimal non-robust cores decide supersets by
//	          bitset containment, the universe detector and the core store
//	          persist in the warm session across iterations
//
// cached-sequential isolates the worker-pool contribution of the flat
// path. The verdict identity of all paths is asserted in
// internal/analysis (pruned vs flat vs naive oracle across 3 benchmarks ×
// 4 settings × 2 methods); here only the cost differs. CI uploads these
// as trend data with a speedup_vs field comparing pruned against cached
// (cmd/benchjson -speedup).
func BenchmarkRobustSubsets(b *testing.B) {
	bench := benchmarks.SmallBank()
	run := func(configure func(*robust.Checker)) func(b *testing.B, setting summary.Setting) {
		return func(b *testing.B, setting summary.Setting) {
			checker := robust.NewChecker(bench.Schema)
			checker.Setting = setting
			configure(checker)
			// One priming enumeration before the timer: these variants
			// measure the warm steady state (blocks cached; for pruned,
			// cores and covers seeded), so CI's -benchtime=1x samples the
			// same regime as a long run instead of the one-off cold start
			// (which BenchmarkServerThroughput's cold cases cover).
			if _, err := checker.RobustSubsets(bench.Programs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := checker.RobustSubsets(bench.Programs); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	variants := []struct {
		name string
		run  func(b *testing.B, setting summary.Setting)
	}{
		{"naive", func(b *testing.B, setting summary.Setting) {
			checker := robust.NewChecker(bench.Schema)
			checker.Setting = setting
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := checker.NaiveRobustSubsets(bench.Programs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cached", run(func(c *robust.Checker) { c.DisablePruning = true })},
		{"cached-sequential", run(func(c *robust.Checker) { c.DisablePruning = true; c.Parallelism = 1 })},
		{"pruned", run(func(c *robust.Checker) {})},
	}
	for _, v := range variants {
		for _, setting := range summary.AllSettings {
			setting := setting
			v := v
			b.Run(v.name+"/"+setting.String(), func(b *testing.B) {
				v.run(b, setting)
			})
		}
	}

	// The streaming pair measures cold time-to-first-verdict (the quantity
	// streaming exists to shorten), both as the whole-op time and as an
	// explicit ttfv-ns/op metric:
	//
	//	stream-first-non-robust — a cold checker per iteration streams in
	//	        first_non_robust mode: lazy per-subset composition plus the
	//	        cost-ordered schedule reach a non-robust verdict after a
	//	        prefix of level 1, never building the universe detector
	//	pruned-cold — the monolithic comparator: a cold checker per
	//	        iteration runs the full lattice-pruned enumeration, whose
	//	        first verdict is only available with the final report
	b.Run("stream-first-non-robust", func(b *testing.B) {
		b.ReportAllocs()
		var ttfv time.Duration
		for i := 0; i < b.N; i++ {
			checker := robust.NewChecker(bench.Schema)
			start := time.Now()
			var first time.Duration
			_, err := checker.RobustSubsetsStream(context.Background(), bench.Programs,
				analysis.StreamOptions{Mode: analysis.StreamFirstNonRobust},
				func(analysis.StreamVerdict) error {
					if first == 0 {
						first = time.Since(start)
					}
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			ttfv += first
		}
		b.ReportMetric(float64(ttfv.Nanoseconds())/float64(b.N), "ttfv-ns/op")
	})
	b.Run("pruned-cold", func(b *testing.B) {
		b.ReportAllocs()
		var ttfv time.Duration
		for i := 0; i < b.N; i++ {
			checker := robust.NewChecker(bench.Schema)
			start := time.Now()
			if _, err := checker.RobustSubsets(bench.Programs); err != nil {
				b.Fatal(err)
			}
			ttfv += time.Since(start)
		}
		b.ReportMetric(float64(ttfv.Nanoseconds())/float64(b.N), "ttfv-ns/op")
	})
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationTypeIIvsTypeI compares the cost of the two cycle
// conditions on the same TPC-C summary graph.
func BenchmarkAblationTypeIIvsTypeI(b *testing.B) {
	bench := benchmarks.TPCC()
	ltps := btp.UnfoldAll2(bench.Programs)
	g := summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
	b.Run("TypeII", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Robust(summary.TypeII)
		}
	})
	b.Run("TypeI", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Robust(summary.TypeI)
		}
	})
}

// BenchmarkAblationSettings compares summary-graph construction cost across
// the four analysis settings of Section 7.2 on TPC-C.
func BenchmarkAblationSettings(b *testing.B) {
	bench := benchmarks.TPCC()
	ltps := btp.UnfoldAll2(bench.Programs)
	for _, setting := range summary.AllSettings {
		setting := setting
		b.Run(setting.String(), func(b *testing.B) {
			b.ReportAllocs()
			g := summary.Build(bench.Schema, ltps, setting)
			reportOnce(b, "TPC-C under %s: %d edges (%d counterflow)",
				setting, len(g.Edges), g.CounterflowEdges())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				summary.Build(bench.Schema, ltps, setting)
			}
		})
	}
}

// BenchmarkAblationUnfoldBound varies the loop-unfolding bound on TPC-C.
// Bound 2 is the paper's sound choice (Proposition 6.1); bound 1 is
// cheaper but unsound in general; bound 3 only grows the graph.
func BenchmarkAblationUnfoldBound(b *testing.B) {
	bench := benchmarks.TPCC()
	for _, bound := range []int{1, 2, 3} {
		bound := bound
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			b.ReportAllocs()
			ltps := btp.UnfoldAll(bench.Programs, bound)
			g := summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
			robustOK, _ := g.Robust(summary.TypeII)
			reportOnce(b, "bound %d: %d LTPs, %d edges, full-set robust=%t",
				bound, len(ltps), len(g.Edges), robustOK)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := btp.UnfoldAll(bench.Programs, bound)
				gg := summary.Build(bench.Schema, l, summary.SettingAttrDepFK)
				gg.Robust(summary.TypeII)
			}
		})
	}
}

// BenchmarkAblationReachability compares the optimized pair-centric cycle
// search against the literal triple-loop transcription of Algorithm 2, on
// Auction(n) graphs of growing size.
func BenchmarkAblationReachability(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		n := n
		bench := benchmarks.AuctionN(n)
		ltps := btp.UnfoldAll2(bench.Programs)
		g := summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
		b.Run(fmt.Sprintf("pair-centric/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.HasTypeIICycle()
			}
		})
		b.Run(fmt.Sprintf("literal/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.HasTypeIICycleLiteral()
			}
		})
	}
}

// BenchmarkSummaryGraphConstruction isolates Algorithm 1 on the largest
// fixed benchmark (TPC-C) for allocation profiling.
func BenchmarkSummaryGraphConstruction(b *testing.B) {
	bench := benchmarks.TPCC()
	ltps := btp.UnfoldAll2(bench.Programs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		summary.Build(bench.Schema, ltps, summary.SettingAttrDepFK)
	}
}

// BenchmarkUnfold isolates Unfold≤2 on TPC-C.
func BenchmarkUnfold(b *testing.B) {
	bench := benchmarks.TPCC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		btp.UnfoldAll2(bench.Programs)
	}
}

// --- Server throughput ------------------------------------------------------

// BenchmarkServerThroughput measures end-to-end requests/sec of the
// robustness service on a SmallBank workload, recorded alongside
// BenchmarkRobustSubsets (the underlying enumeration cost):
//
//	check/cold     — register + first full check per iteration: pays
//	                 validation, unfolding and all 25 pairwise edge blocks
//	check/warm     — repeated full checks on one registered workload:
//	                 pure cache reads + cycle detection + HTTP
//	subsets/cold   — register + first enumeration per iteration
//	subsets/warm   — repeated enumerations from the warm BlockSet
func BenchmarkServerThroughput(b *testing.B) {
	bench := benchmarks.SmallBank()

	post := func(b *testing.B, url string) {
		resp, err := http.Post(url, "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	cold := func(path string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := server.New(server.Options{})
				ts := httptest.NewServer(srv.Handler())
				reg, err := srv.Register(bench.Schema, bench.Programs)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				post(b, ts.URL+"/v1/workloads/"+reg.ID+"/"+path)
				b.StopTimer()
				ts.Close()
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		}
	}
	warm := func(path string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			srv := server.New(server.Options{})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			reg, err := srv.Register(bench.Schema, bench.Programs)
			if err != nil {
				b.Fatal(err)
			}
			url := ts.URL + "/v1/workloads/" + reg.ID + "/" + path
			post(b, url) // prime the block cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, url)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		}
	}

	b.Run("check/cold", cold("check"))
	b.Run("check/warm", warm("check"))
	b.Run("subsets/cold", cold("subsets"))
	b.Run("subsets/warm", warm("subsets"))
}
