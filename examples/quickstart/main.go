// Quickstart: declare a schema, write transaction programs in SQL, and ask
// whether they can safely run under READ COMMITTED.
//
// The programs model a tiny ticketing service: Reserve decrements a seat
// counter and records the reservation; Audit sums recorded reservations
// against the counter; CountSeats just reads the counter. The analysis
// certifies {Reserve, CountSeats} as robust — every MVRC interleaving is
// serializable — while {Reserve, Audit} is rejected with a concrete
// dangerous cycle (Audit can observe the seat counter before a concurrent
// Reserve commits, yet see its inserted reservation afterwards).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mvrc "repro"
)

const programs = `
PROGRAM Reserve(:E, :U):
  UPDATE Events                       -- q1
  SET seats = seats - 1
  WHERE id = :E;
  INSERT INTO Reservations            -- q2
  VALUES (:R, :E, :U);
  COMMIT;

PROGRAM Audit(:E):
  SELECT seats INTO :s                -- q3
  FROM Events
  WHERE id = :E;
  SELECT user_id                      -- q4
  FROM Reservations
  WHERE event_id = :E;
  COMMIT;

PROGRAM CountSeats(:E):
  SELECT seats                        -- q5
  FROM Events
  WHERE id = :E;
  COMMIT;
`

func main() {
	schema := mvrc.NewSchema()
	schema.MustAddRelation("Events", []string{"id", "seats"}, []string{"id"})
	schema.MustAddRelation("Reservations", []string{"res_id", "event_id", "user_id"}, []string{"res_id"})
	schema.MustAddForeignKey("fEvent", "Reservations", []string{"event_id"}, "Events", []string{"id"})

	progs, err := mvrc.ParseSQL(schema, programs)
	if err != nil {
		log.Fatal(err)
	}
	reserve, audit, countSeats := progs[0], progs[1], progs[2]
	for _, p := range progs {
		fmt.Println(p)
	}

	fmt.Println("\n--- {Reserve, CountSeats} ---")
	report, err := mvrc.Check(schema, []*mvrc.Program{reserve, countSeats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mvrc.Explain(report))

	fmt.Println("\n--- {Reserve, Audit} ---")
	report, err = mvrc.Check(schema, []*mvrc.Program{reserve, audit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mvrc.Explain(report))

	fmt.Println("\nsummary graph (DOT):")
	fmt.Println(mvrc.SummaryGraphDOT(report, true))
}
