// The running example of the paper (Section 2): the Auction service with
// FindBids and PlaceBid. This example reproduces the paper's storyline
// end to end:
//
//  1. the summary graph of Figure 4 (17 edges, 1 counterflow);
//  2. the type-I condition of Alomari and Fekete rejects the workload;
//  3. the paper's type-II condition (Algorithm 2) certifies it robust;
//  4. a concurrent execution on the MVCC engine under READ COMMITTED is
//     recorded and verified conflict-serializable.
//
// Run with:
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"

	mvrc "repro"
	"repro/internal/benchmarks"
	"repro/internal/mvcc"
	"repro/internal/workload"
)

func main() {
	bench := benchmarks.Auction()
	fmt.Println("schema:")
	fmt.Print(bench.Schema)
	fmt.Println("\nprograms:")
	for _, p := range bench.Programs {
		fmt.Printf("  %s\n", p)
		for _, c := range p.FKs {
			fmt.Printf("    fk annotation: %s\n", c)
		}
	}

	// Static analysis: type-I (baseline) vs type-II (Algorithm 2).
	baseline, err := mvrc.CheckWith(bench.Schema, bench.Programs, mvrc.AttrDepFK, mvrc.TypeI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntype-I condition of [Alomari & Fekete 2015]:")
	fmt.Println(mvrc.Explain(baseline))

	report, err := mvrc.Check(bench.Schema, bench.Programs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntype-II condition (Algorithm 2 of the paper):")
	fmt.Println(mvrc.Explain(report))
	st := report.Graph.Stats()
	fmt.Printf("summary graph (Figure 4): %d nodes, %d edges, %d counterflow\n",
		st.Nodes, st.Edges, st.CounterflowEdges)

	// Operational check: run the workload concurrently under RC on the
	// MVCC engine and verify the recorded schedule is serializable.
	cfg := workload.AuctionConfig{Buyers: 3}
	engine := workload.NewAuctionEngine(cfg)
	res, err := workload.Run(engine, workload.AuctionMix(cfg), workload.RunOptions{
		Transactions: 300,
		Workers:      8,
		Isolation:    mvcc.ReadCommitted,
		Seed:         42,
		Record:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine run under %s: %d committed, %d aborted, %d recorded operations\n",
		mvcc.ReadCommitted, res.Commits, res.Aborts, len(res.Schedule.Order))
	fmt.Printf("recorded schedule allowed under mvrc: %t\n", res.Schedule.AllowedUnderMVRC())
	fmt.Printf("recorded execution conflict serializable: %t\n", res.Serializable())
	if !res.Serializable() {
		log.Fatal("BUG: robust workload produced a non-serializable execution")
	}
	fmt.Println("\nthe static verdict holds operationally: safe under READ COMMITTED.")
}
