// SmallBank anomaly demonstration: the static analysis partitions
// SmallBank into robust subsets (Figure 6: {Am, DC, TS}, {Bal, DC},
// {Bal, TS}); WriteCheck belongs to none of them. This example makes that
// verdict tangible:
//
//   - the robust subset {Am, DC, TS} runs under READ COMMITTED and every
//     recorded execution is conflict serializable;
//   - the full mix (including WriteCheck) produces an observable
//     non-serializable execution under READ COMMITTED;
//   - the same mix under the Serializable level is always clean — the
//     price being aborts/blocking the robust subset avoids;
//   - a minimal two-transaction counterexample for {WC, WC} is found by
//     exhaustive schedule-space search and printed.
//
// Run with:
//
//	go run ./examples/smallbank_anomaly
package main

import (
	"fmt"
	"log"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/mvcc"
	"repro/internal/replay"
	"repro/internal/workload"
)

func main() {
	cfg := workload.SmallBankConfig{Customers: 1, InitialBalance: 1000}

	fmt.Println("=== robust subset {Am, DC, TS} under READ COMMITTED ===")
	robustMix, err := workload.SmallBankSubsetMix(cfg, "Am", "DC", "TS")
	if err != nil {
		log.Fatal(err)
	}
	res, err := workload.Run(workload.NewSmallBankEngine(cfg), robustMix, workload.RunOptions{
		Transactions: 300, Workers: 8, Isolation: mvcc.ReadCommitted, Seed: 7, Record: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d, aborted %d; serializable: %t\n", res.Commits, res.Aborts, res.Serializable())

	fmt.Println("\n=== full SmallBank mix under READ COMMITTED ===")
	anomalySeed := int64(-1)
	for seed := int64(1); seed <= 50; seed++ {
		res, err = workload.Run(workload.NewSmallBankEngine(cfg), workload.SmallBankMix(cfg), workload.RunOptions{
			Transactions: 300, Workers: 8, Isolation: mvcc.ReadCommitted, Seed: seed, Record: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Serializable() {
			anomalySeed = seed
			break
		}
	}
	if anomalySeed < 0 {
		fmt.Println("no anomaly observed in 50 runs (try more seeds)")
	} else {
		fmt.Printf("seed %d: NON-SERIALIZABLE execution observed (%d committed txns)\n",
			anomalySeed, len(res.Schedule.Txns))
		if cycle, ok := res.Graph.FindCycle(); ok {
			fmt.Printf("cycle in the serialization graph:\n  %s\n", cycle)
		}
	}

	fmt.Println("\n=== full SmallBank mix under SERIALIZABLE ===")
	res, err = workload.Run(workload.NewSmallBankEngine(cfg), workload.SmallBankMix(cfg), workload.RunOptions{
		Transactions: 300, Workers: 8, Isolation: mvcc.Serializable, Seed: 7, Record: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d, aborted %d; serializable: %t\n", res.Commits, res.Aborts, res.Serializable())

	fmt.Println("\n=== minimal counterexample for {WriteCheck, WriteCheck} ===")
	bench := benchmarks.SmallBank()
	wc := btp.Unfold2(bench.Program("WriteCheck"))[0]
	asg := instantiate.Assignment{
		Key: map[*btp.StmtOcc]string{},
		FK: map[string]map[string]string{
			"fS": {"a": "s"}, "fC": {"a": "c"},
		},
	}
	for _, occ := range wc.Stmts {
		switch occ.Stmt.Rel {
		case "Account":
			asg.Key[occ] = "a"
		case "Savings":
			asg.Key[occ] = "s"
		case "Checking":
			asg.Key[occ] = "c"
		}
	}
	search, err := enumerate.FindCounterexample(bench.Schema, []enumerate.Instance{
		{LTP: wc, Assignment: asg},
		{LTP: wc, Assignment: asg},
	}, enumerate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !search.Found {
		log.Fatal("expected a counterexample for {WC, WC}")
	}
	fmt.Printf("explored %d interleavings; counterexample schedule:\n%s",
		search.Explored, search.Schedule.Format())
	if cycle, ok := search.Graph.FindCycle(); ok {
		fmt.Printf("its cycle:\n  %s\n", cycle)
	}

	fmt.Println("\n=== deterministic replay of the counterexample on the engine ===")
	rep, err := replay.Run(bench.Schema, search.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed execution serializable: %t (the engine reproduces the anomaly)\n", rep.Serializable)

	fmt.Println("\nconclusion: run {Am, DC, TS} under READ COMMITTED; WriteCheck needs Serializable.")
}
