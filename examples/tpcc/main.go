// TPC-C robustness analysis: reproduces the TPC-C columns of Figures 6
// and 7 — which subsets of {Delivery, NewOrder, OrderStatus, Payment,
// StockLevel} can run under READ COMMITTED — across all four analysis
// settings, and prints the Table 2 characteristics of the summary graph.
//
// Run with:
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/experiments"
	"repro/internal/robust"
	"repro/internal/summary"
)

func main() {
	bench := benchmarks.TPCC()

	fmt.Println("TPC-C transaction programs:")
	for _, p := range bench.Programs {
		fmt.Printf("  %-4s %s\n", p.ShortName()+":", p)
	}

	row := experiments.Table2(bench)
	fmt.Printf("\nsummary graph characteristics (Table 2): %d relations, %d programs, %d LTP nodes, %d edges (%d counterflow)\n",
		row.Relations, row.Programs, row.Nodes, row.Edges, row.CounterflowEdges)

	fmt.Println("\nmaximal robust subsets (Figure 6, Algorithm 2 / type-II):")
	for _, setting := range summary.AllSettings {
		cell, err := experiments.RobustSubsetsCell(bench, setting, summary.TypeII)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", setting.String()+":", cell)
	}

	fmt.Println("\nmaximal robust subsets (Figure 7, method of [3] / type-I):")
	for _, setting := range summary.AllSettings {
		cell, err := experiments.RobustSubsetsCell(bench, setting, summary.TypeI)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", setting.String()+":", cell)
	}

	// The {Delivery} false negative of Section 7.2: the static analysis
	// rejects it although the real program is robust (two Delivery
	// instances over a warehouse cannot both delete the same oldest order).
	checker := robust.NewChecker(bench.Schema)
	res, err := checker.Check([]*btp.Program{bench.Program("Delivery")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{Delivery} verdict: robust=%t — a known false negative of the sound analysis\n", res.Robust)
	fmt.Println("(the predicate conditions ensure two Delivery instances cannot race; the BTP abstraction cannot see that)")
}
