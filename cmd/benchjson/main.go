// Command benchjson converts the text output of `go test -bench` into a
// JSON document, so CI can upload benchmark runs as machine-readable
// artifacts (BENCH_PR4.json) and track performance trends across commits
// without gating on noisy absolute numbers.
//
// Usage:
//
//	go test -bench . -benchtime=1x -count=3 | benchjson -out bench.json
//	go test -bench . | benchjson -speedup 'Foo/pruned=Foo/cached'
//
// Every benchmark result line becomes one entry — repeated names (from
// -count) are kept as separate entries, since the spread between them is
// the signal trend dashboards want. Context lines (goos, goarch, pkg, cpu)
// are captured once into the environment block; everything else (b.Log
// output, PASS/ok trailers) is ignored.
//
// -speedup takes comma-separated `new=baseline` name-fragment pairs and
// adds a speedup_vs block to the document: for every benchmark whose name
// contains the `new` fragment and whose counterpart (the name with the
// fragment replaced by `baseline`) was also measured, it emits the ratio
// of mean ns/op — baseline over new, so values above 1 mean the new path
// is faster. CI uses this to record the pruned-vs-cached enumeration
// speedup in the uploaded artifact without gating on absolute timings.
//
// -baseline and -gate turn the tool into a regression gate: -baseline
// names a previously committed artifact and -gate lists comma-separated
// name fragments; every current benchmark whose name contains a gated
// fragment and that also appears in the baseline must not exceed the
// baseline's mean ns/op by more than -gate-threshold (default 0.20, i.e.
// +20%). Violations are printed and the exit status is 1 — after the
// artifact has been written, so a failing gate still uploads evidence.
// When the baseline was recorded on a different CPU (the `cpu` env line),
// the comparison would be meaningless, so the gate warns and passes.
//
// -gate-allocs does the same for mean allocs/op, with two differences:
// allocation counts are machine-independent, so the gate runs even when
// the baseline's CPU differs, and the tolerance is absolute — one extra
// allocation per op beyond the baseline fails (allocs/op is an integer
// measure; fractional thresholds only blur it). CI uses this to pin the
// zero-overhead claim of the disabled-observability hot path: spans cost
// nothing unless a tracer is attached.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Result is one benchmark measurement: the full sub-benchmark name, the
// iteration count, and every reported metric (ns/op, B/op, allocs/op and
// custom b.ReportMetric units like req/s) keyed by unit.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the artifact layout.
type Doc struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	// SpeedupVs holds the -speedup comparisons, one entry per matched
	// benchmark pair.
	SpeedupVs []Speedup `json:"speedup_vs,omitempty"`
}

// Speedup compares one benchmark against its named baseline: Speedup is
// mean baseline ns/op divided by mean ns/op of Name, so values above 1
// mean Name is faster.
type Speedup struct {
	Name     string  `json:"name"`
	Baseline string  `json:"baseline"`
	Speedup  float64 `json:"speedup"`
}

func main() {
	out := flag.String("out", "-", "output path (- = stdout)")
	speedup := flag.String("speedup", "", "comma-separated new=baseline name-fragment pairs to compare as speedup_vs")
	baseline := flag.String("baseline", "", "previously committed artifact to gate against (requires -gate)")
	gate := flag.String("gate", "", "comma-separated name fragments whose mean ns/op must not regress past the baseline")
	threshold := flag.Float64("gate-threshold", 0.20, "allowed fractional ns/op regression before the gate fails")
	gateAllocs := flag.String("gate-allocs", "", "comma-separated name fragments whose mean allocs/op must stay within +1 of the baseline")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "benchjson")
		return
	}

	doc, err := convert(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := addSpeedups(doc, *speedup); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The baseline is read before -out is created: CI points both at the
	// same committed path, overwriting the baseline with the fresh artifact
	// once it has been loaded.
	var base *Doc
	if *baseline != "" && (*gate != "" || *gateAllocs != "") {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base = &Doc{}
		err = json.NewDecoder(f).Decode(base)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if base != nil {
		var regressions []string
		if *gate != "" {
			nsRegressions, skipped := checkGate(doc, base, *gate, *threshold)
			if skipped != "" {
				fmt.Fprintln(os.Stderr, "benchjson: gate skipped:", skipped)
			} else {
				regressions = append(regressions, nsRegressions...)
			}
		}
		// The allocation gate never skips on CPU mismatch: allocs/op is a
		// property of the code path, not the machine.
		regressions = append(regressions, checkAllocGate(doc, base, *gateAllocs)...)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
			}
			os.Exit(1)
		}
	}
}

// envKeys are the `key: value` context lines go test prints before results.
var envKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// convert parses go test -bench output into the artifact document. It is
// deliberately permissive: unparseable lines are skipped, because the
// artifact step must fail only on build/run errors, never on log noise.
func convert(r io.Reader) (*Doc, error) {
	doc := &Doc{Env: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if key, value, ok := strings.Cut(line, ":"); ok && envKeys[key] {
			if _, dup := doc.Env[key]; !dup {
				doc.Env[key] = strings.TrimSpace(value)
			}
			continue
		}
		if res, ok := parseResult(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Env) == 0 {
		doc.Env = nil
	}
	return doc, nil
}

// meanNsOp averages ns/op across repeated entries of each name (-count).
func meanNsOp(doc *Doc) map[string]float64 {
	return meanMetric(doc, "ns/op")
}

// meanMetric averages one metric unit across repeated entries of each name.
func meanMetric(doc *Doc, unit string) map[string]float64 {
	means := make(map[string]float64)
	counts := make(map[string]int)
	for _, r := range doc.Benchmarks {
		if v, ok := r.Metrics[unit]; ok {
			means[r.Name] += v
			counts[r.Name]++
		}
	}
	for name := range means {
		means[name] /= float64(counts[name])
	}
	return means
}

// checkAllocGate compares mean allocs/op against the baseline for every
// current benchmark whose name contains a -gate-allocs fragment. The
// tolerance is one allocation per op, absolute: allocation counts are
// deterministic per code path, so anything beyond rounding slack between
// repeated runs is a real new allocation. Unlike the ns/op gate this runs
// across CPU changes — allocs/op does not depend on the machine.
func checkAllocGate(doc, base *Doc, gates string) (regressions []string) {
	if gates == "" {
		return nil
	}
	cur := meanMetric(doc, "allocs/op")
	old := meanMetric(base, "allocs/op")
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := make(map[string]bool)
	for _, frag := range strings.Split(gates, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		for _, name := range names {
			if !strings.Contains(name, frag) || seen[name] {
				continue
			}
			seen[name] = true
			baseAllocs, measured := old[name]
			if !measured {
				continue
			}
			if cur[name] > baseAllocs+1 {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.1f allocs/op vs baseline %.1f allocs/op (limit +1)",
					name, cur[name], baseAllocs))
			}
		}
	}
	return regressions
}

// checkGate compares the current document against the baseline: every
// current benchmark whose name contains a gated fragment and that the
// baseline also measured must have mean ns/op within (1+threshold)× the
// baseline's. It returns the list of violations, or a non-empty skip
// reason when the two documents were measured on different CPUs (absolute
// timings across machines gate nothing but noise).
func checkGate(doc, base *Doc, gates string, threshold float64) (regressions []string, skipped string) {
	if cur, old := doc.Env["cpu"], base.Env["cpu"]; cur != old {
		return nil, fmt.Sprintf("baseline cpu %q != current cpu %q", old, cur)
	}
	cur := meanNsOp(doc)
	old := meanNsOp(base)
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := make(map[string]bool)
	for _, frag := range strings.Split(gates, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		for _, name := range names {
			if !strings.Contains(name, frag) || seen[name] {
				continue
			}
			seen[name] = true
			baseNs, measured := old[name]
			if !measured || baseNs <= 0 {
				continue
			}
			if ratio := cur[name] / baseNs; ratio > 1+threshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx, threshold %.2fx)",
					name, cur[name], baseNs, ratio, 1+threshold))
			}
		}
	}
	return regressions, ""
}

// addSpeedups evaluates the -speedup pairs against the parsed benchmarks.
// Mean ns/op is taken across repeated entries of a name (-count); a pair
// whose baseline was not measured is skipped silently (trend artifacts
// must not fail on a narrowed -bench selection), but a malformed spec is
// an error.
func addSpeedups(doc *Doc, specs string) error {
	if specs == "" {
		return nil
	}
	means := meanNsOp(doc)
	names := make([]string, 0, len(means))
	for name := range means {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		newFrag, baseFrag, ok := strings.Cut(spec, "=")
		if !ok || newFrag == "" || baseFrag == "" {
			return fmt.Errorf("malformed -speedup pair %q (want new=baseline)", spec)
		}
		for _, name := range names {
			if !strings.Contains(name, newFrag) {
				continue
			}
			baseline := strings.Replace(name, newFrag, baseFrag, 1)
			base, measured := means[baseline]
			if !measured || means[name] <= 0 {
				continue
			}
			doc.SpeedupVs = append(doc.SpeedupVs, Speedup{
				Name:     name,
				Baseline: baseline,
				Speedup:  base / means[name],
			})
		}
	}
	return nil
}

// parseResult parses one `BenchmarkName-8  N  v1 unit1  v2 unit2 ...` line.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
