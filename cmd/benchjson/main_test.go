package main

import (
	"strings"
	"testing"
)

// sample mirrors real `go test -bench` output: env lines, a plain result,
// a -benchmem result, a custom-metric result, a repeated name (-count=2),
// and assorted noise that must be ignored.
const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.40GHz
BenchmarkRobustSubsets/naive/attr_dep-8         	       1	  52034188 ns/op	 4378544 B/op	   80194 allocs/op
BenchmarkRobustSubsets/cached/attr_dep-8        	       1	   2878354 ns/op	  350200 B/op	    3056 allocs/op
BenchmarkServerThroughput/subsets/warm-8        	       1	    190243 ns/op	      5256 req/s
BenchmarkServerThroughput/subsets/warm-8        	       1	    201001 ns/op	      4975 req/s
--- BENCH: BenchmarkRobustSubsets
    bench_test.go:42: Table 2 row: SmallBank
PASS
ok  	repro	12.345s
`

func TestConvert(t *testing.T) {
	doc, err := convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] != "Some CPU @ 2.40GHz" {
		t.Errorf("env = %v", doc.Env)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkRobustSubsets/naive/attr_dep-8" || first.Iterations != 1 {
		t.Errorf("first = %+v", first)
	}
	if first.Metrics["ns/op"] != 52034188 || first.Metrics["allocs/op"] != 80194 {
		t.Errorf("first metrics = %v", first.Metrics)
	}
	// Custom b.ReportMetric units survive, and -count repetitions stay
	// separate entries.
	warm := doc.Benchmarks[2]
	if warm.Metrics["req/s"] != 5256 {
		t.Errorf("warm metrics = %v", warm.Metrics)
	}
	if doc.Benchmarks[3].Name != warm.Name {
		t.Errorf("repeated result collapsed: %+v", doc.Benchmarks[3])
	}
}

func TestParseResultRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro	12.345s",
		"--- BENCH: BenchmarkRobustSubsets",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkOdd-8 1 12", // metric without unit
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult accepted %q", line)
		}
	}
}

// speedupSample has a pruned/cached pair (with -count=2 repetitions on the
// pruned side, so the mean matters) and an unpaired benchmark.
const speedupSample = `BenchmarkRobustSubsets/cached/attr_dep-8   1  30000 ns/op
BenchmarkRobustSubsets/pruned/attr_dep-8   1  12000 ns/op
BenchmarkRobustSubsets/pruned/attr_dep-8   1   8000 ns/op
BenchmarkRobustSubsets/cached/tpl_dep-8    1  20000 ns/op
BenchmarkRobustSubsets/pruned/tpl_dep-8    1   5000 ns/op
BenchmarkUnrelated-8                       1    100 ns/op
`

func TestAddSpeedups(t *testing.T) {
	doc, err := convert(strings.NewReader(speedupSample))
	if err != nil {
		t.Fatal(err)
	}
	if err := addSpeedups(doc, "BenchmarkRobustSubsets/pruned=BenchmarkRobustSubsets/cached"); err != nil {
		t.Fatal(err)
	}
	if len(doc.SpeedupVs) != 2 {
		t.Fatalf("speedup_vs has %d entries, want 2: %+v", len(doc.SpeedupVs), doc.SpeedupVs)
	}
	// Sorted by name: attr_dep before tpl_dep. Mean pruned attr = 10000,
	// baseline 30000 → 3×; tpl: 20000/5000 → 4×.
	attr, tpl := doc.SpeedupVs[0], doc.SpeedupVs[1]
	if attr.Baseline != "BenchmarkRobustSubsets/cached/attr_dep-8" || attr.Speedup != 3 {
		t.Errorf("attr speedup = %+v", attr)
	}
	if tpl.Speedup != 4 {
		t.Errorf("tpl speedup = %+v", tpl)
	}
}

// gateDoc builds a document with one benchmark per name→ns/op entry plus a
// cpu env line.
func gateDoc(cpu string, ns map[string]float64) *Doc {
	doc := &Doc{Env: map[string]string{"cpu": cpu}}
	for name, v := range ns {
		doc.Benchmarks = append(doc.Benchmarks, Result{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": v},
		})
	}
	return doc
}

func TestCheckGate(t *testing.T) {
	base := gateDoc("cpuA", map[string]float64{
		"BenchmarkRobustSubsets/cached-8": 1000,
		"BenchmarkRobustSubsets/pruned-8": 2000,
		"BenchmarkServerThroughput-8":     5000,
		"BenchmarkUngated-8":              10,
	})
	gates := "RobustSubsets/cached,RobustSubsets/pruned,ServerThroughput"

	// Within threshold everywhere: pass.
	cur := gateDoc("cpuA", map[string]float64{
		"BenchmarkRobustSubsets/cached-8": 1150,
		"BenchmarkRobustSubsets/pruned-8": 1900,
		"BenchmarkServerThroughput-8":     5999,
		"BenchmarkUngated-8":              1e9, // not gated, may regress freely
	})
	if regs, skip := checkGate(cur, base, gates, 0.20); len(regs) != 0 || skip != "" {
		t.Errorf("within threshold: regs=%v skip=%q", regs, skip)
	}

	// One gated benchmark past the threshold: exactly one violation.
	cur.Benchmarks[0].Metrics = map[string]float64{"ns/op": 99999}
	cur = gateDoc("cpuA", map[string]float64{
		"BenchmarkRobustSubsets/cached-8": 1201, // > +20%
		"BenchmarkRobustSubsets/pruned-8": 1900,
		"BenchmarkServerThroughput-8":     5999,
	})
	regs, skip := checkGate(cur, base, gates, 0.20)
	if skip != "" || len(regs) != 1 || !strings.Contains(regs[0], "RobustSubsets/cached") {
		t.Errorf("regression: regs=%v skip=%q", regs, skip)
	}

	// A gated benchmark absent from the baseline gates nothing.
	cur = gateDoc("cpuA", map[string]float64{
		"BenchmarkRobustSubsets/pruned/new_variant-8": 1e9,
	})
	if regs, skip := checkGate(cur, base, gates, 0.20); len(regs) != 0 || skip != "" {
		t.Errorf("unknown benchmark: regs=%v skip=%q", regs, skip)
	}

	// Different CPU: warn-skip, never gate.
	cur = gateDoc("cpuB", map[string]float64{
		"BenchmarkRobustSubsets/cached-8": 1e9,
	})
	if regs, skip := checkGate(cur, base, gates, 0.20); len(regs) != 0 || skip == "" {
		t.Errorf("cpu mismatch: regs=%v skip=%q", regs, skip)
	}
}

func TestAddSpeedupsEdgeCases(t *testing.T) {
	doc, err := convert(strings.NewReader(speedupSample))
	if err != nil {
		t.Fatal(err)
	}
	// Empty spec: no-op.
	if err := addSpeedups(doc, ""); err != nil || doc.SpeedupVs != nil {
		t.Errorf("empty spec: %v %+v", err, doc.SpeedupVs)
	}
	// Missing baseline measurements are skipped, not errors.
	if err := addSpeedups(doc, "pruned=nonexistent"); err != nil || len(doc.SpeedupVs) != 0 {
		t.Errorf("unmeasured baseline: %v %+v", err, doc.SpeedupVs)
	}
	// Malformed specs are errors.
	for _, bad := range []string{"justone", "=x", "x="} {
		if err := addSpeedups(doc, bad); err == nil {
			t.Errorf("malformed spec %q accepted", bad)
		}
	}
}

// allocDoc builds a one-benchmark document with the given mean allocs/op
// (split across two -count entries) and CPU string.
func allocDoc(name, cpu string, allocs float64) *Doc {
	return &Doc{
		Env: map[string]string{"cpu": cpu},
		Benchmarks: []Result{
			{Name: name, Iterations: 1, Metrics: map[string]float64{"allocs/op": allocs - 1, "ns/op": 100}},
			{Name: name, Iterations: 1, Metrics: map[string]float64{"allocs/op": allocs + 1, "ns/op": 100}},
		},
	}
}

func TestCheckAllocGate(t *testing.T) {
	const name = "BenchmarkRobustSubsets/pruned/attr_dep-8"
	base := allocDoc(name, "cpu-a", 63)

	// Within the +1 absolute slack: passes.
	if regs := checkAllocGate(allocDoc(name, "cpu-a", 64), base, "RobustSubsets/pruned"); len(regs) != 0 {
		t.Errorf("64 vs 63 allocs must pass (+1 slack): %v", regs)
	}
	// Beyond it: fails.
	regs := checkAllocGate(allocDoc(name, "cpu-a", 66), base, "RobustSubsets/pruned")
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("66 vs 63 allocs must fail: %v", regs)
	}
	// Unlike the ns/op gate, a CPU change does not skip the comparison —
	// allocation counts are machine-independent.
	if regs := checkAllocGate(allocDoc(name, "cpu-b", 70), base, "RobustSubsets/pruned"); len(regs) != 1 {
		t.Errorf("alloc gate must run across CPU changes: %v", regs)
	}
	// Fragments that match nothing, or benchmarks absent from the
	// baseline, gate nothing.
	if regs := checkAllocGate(allocDoc(name, "cpu-a", 99), base, "NoSuchBenchmark"); len(regs) != 0 {
		t.Errorf("unmatched fragment produced %v", regs)
	}
	if regs := checkAllocGate(allocDoc("BenchmarkNew-8", "cpu-a", 99), base, "BenchmarkNew"); len(regs) != 0 {
		t.Errorf("benchmark missing from baseline produced %v", regs)
	}
	if regs := checkAllocGate(allocDoc(name, "cpu-a", 99), base, ""); len(regs) != 0 {
		t.Errorf("empty gate spec produced %v", regs)
	}
}
