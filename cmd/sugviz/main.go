// Command sugviz emits the summary graph of a benchmark in Graphviz DOT
// format, reproducing the visualizations of Figures 4, 11, 18 and 19
// (counterflow edges are dashed).
//
// Usage:
//
//	sugviz -benchmark auction [-n N] [-setting attr+fk] [-labels] > sug.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/dot"
	"repro/internal/obs"
	"repro/internal/summary"
)

func main() {
	var (
		benchName = flag.String("benchmark", "auction", "benchmark: smallbank, tpcc, auction")
		n         = flag.Int("n", 1, "scaling factor for auction")
		setting   = flag.String("setting", "attr+fk", "analysis setting: tpl, attr, tpl+fk, attr+fk")
		labels    = flag.Bool("labels", false, "label edges with statement pairs")
		version   = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "sugviz")
		return
	}
	if err := run(*benchName, *n, *setting, *labels); err != nil {
		fmt.Fprintln(os.Stderr, "sugviz:", err)
		os.Exit(1)
	}
}

func run(benchName string, n int, settingName string, labels bool) error {
	var st summary.Setting
	switch settingName {
	case "tpl":
		st = summary.SettingTplDep
	case "attr":
		st = summary.SettingAttrDep
	case "tpl+fk":
		st = summary.SettingTplDepFK
	case "attr+fk":
		st = summary.SettingAttrDepFK
	default:
		return fmt.Errorf("unknown setting %q", settingName)
	}
	var b *benchmarks.Benchmark
	switch strings.ToLower(benchName) {
	case "smallbank":
		b = benchmarks.SmallBank()
	case "tpcc", "tpc-c":
		b = benchmarks.TPCC()
	case "auction":
		if n > 1 {
			b = benchmarks.AuctionN(n)
		} else {
			b = benchmarks.Auction()
		}
	default:
		return fmt.Errorf("unknown benchmark %q", benchName)
	}
	ltps := btp.UnfoldAll2(b.Programs)
	g := summary.Build(b.Schema, ltps, st)
	fmt.Print(dot.SummaryGraph(g, dot.Options{
		Name:             b.Name,
		EdgeLabels:       labels,
		CollapseParallel: true,
	}))
	return nil
}
