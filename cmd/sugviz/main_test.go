package main

import "testing"

func TestRunAllBenchmarks(t *testing.T) {
	for _, bench := range []string{"smallbank", "tpcc", "auction"} {
		for _, setting := range []string{"tpl", "attr", "tpl+fk", "attr+fk"} {
			if err := run(bench, 1, setting, true); err != nil {
				t.Errorf("run(%s, %s): %v", bench, setting, err)
			}
		}
	}
	if err := run("auction", 4, "attr+fk", false); err != nil {
		t.Errorf("run(auction, n=4): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, "attr+fk", false); err == nil {
		t.Error("bogus benchmark accepted")
	}
	if err := run("auction", 1, "bogus", false); err == nil {
		t.Error("bogus setting accepted")
	}
}
