// Command experiments regenerates the paper's full evaluation (Section 7):
// Table 2, Figure 6, Figure 7 and the Figure 8 scalability sweep, printing
// everything in a layout mirroring the paper. EXPERIMENTS.md is produced
// from this command's output.
//
// Usage:
//
//	experiments [-maxn 100] [-repeats 3] [-parallel N] [-skip-figure8]
//
// All cells run on one experiments.Suite: each benchmark's programs are
// unfolded once and the pairwise summary-graph edge blocks are shared
// across Table 2 and every Figure 6/7 cell. -parallel governs both the
// subset-enumeration fanout of Figures 6/7 and the intra-check sharding
// (Algorithm 1 pair derivation + closure fixpoint) of the Figure 8 sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		maxN        = flag.Int("maxn", 100, "largest Auction(n) scaling factor for Figure 8")
		repeats     = flag.Int("repeats", 3, "repetitions per Figure 8 point (median reported)")
		parallel    = flag.Int("parallel", 0, "analysis workers per cell: subset enumeration + intra-check sharding (0 = GOMAXPROCS, 1 = sequential)")
		skipFigure8 = flag.Bool("skip-figure8", false, "skip the scalability sweep")
		version     = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "experiments")
		return
	}

	suite := experiments.NewSuite()
	suite.Parallelism = *parallel

	fmt.Println("== Table 2: benchmark characteristics (attr dep + FK) ==")
	fmt.Print(experiments.FormatTable2(suite.Table2()))

	fmt.Println("\n== Figure 6: maximal robust subsets, Algorithm 2 (type-II cycles) ==")
	cells, err := suite.Figure6()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure(cells))

	fmt.Println("\n== Figure 7: maximal robust subsets, method of [3] (type-I cycles) ==")
	cells, err = suite.Figure7()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure(cells))

	if !*skipFigure8 {
		fmt.Println("\n== Figure 8: Auction(n) scalability (attr dep + FK, type-II) ==")
		var ns []int
		for _, n := range []int{1, 2, 5, 10, 20, 40, 60, 80, 100} {
			if n <= *maxN {
				ns = append(ns, n)
			}
		}
		points := experiments.Figure8Parallel(ns, *repeats, *parallel)
		fmt.Print(experiments.FormatFigure8(points))
	}
}
