// Command robustserved is the long-lived robustness service: it keeps a
// registry of workloads (schema + transaction programs), each wrapping a
// warm incremental-analysis session, and answers robustness queries over
// JSON/HTTP. Registering a workload pays validation, unfolding and
// Algorithm 1's pairwise edge derivation once; every subsequent check or
// subset enumeration runs from the cached blocks, and PATCHing a single
// program invalidates only that program's pairs (incremental re-analysis).
//
// The server is restartable and memory-governed: -state-dir persists every
// registered workload (programs, version, cached subsets results) as a JSON
// snapshot and reloads them on boot, so a restarted server answers with
// byte-identical responses without re-running the analysis for cached
// enumerations; -max-bytes replaces the blind LRU cap with size-weighted
// eviction over per-workload memory estimates.
//
// Usage:
//
//	robustserved [-addr :8765] [-preload smallbank,tpcc] [flags]
//
// Flags:
//
//	-addr           listen address (default 127.0.0.1:8765)
//	-preload        comma-separated benchmarks to register at boot
//	                (smallbank, tpcc, auction); their ids are printed
//	-max-workloads  registry LRU cap (default 64)
//	-state-dir      directory for persistent workload snapshots; empty
//	                disables persistence. Corrupt snapshot files are
//	                skipped at boot, never fatal
//	-flush-interval debounce window for result-cache snapshot writes: a
//	                burst of newly cached enumerations rewrites a
//	                workload's file once per interval (default 100ms);
//	                registration and PATCH persist immediately and
//	                shutdown flushes whatever is pending
//	-max-bytes      estimated-memory budget across resident workloads;
//	                size-weighted eviction sheds workloads beyond it
//	                (0 = count-based LRU only)
//	-parallel       analysis workers per request: subset enumeration and
//	                intra-check sharding (0 = GOMAXPROCS). Also the cap for
//	                the per-request "parallelism" field of check/subsets
//	                bodies (GOMAXPROCS caps when unset); /v1/stats reports
//	                the resolved default and each workload's last effective
//	                value
//	-timeout        per-request analysis deadline (default 30s; 0 = none);
//	                -request-timeout is an alias
//	-max-concurrent-checks
//	                analysis requests (check, subsets, stream, certify)
//	                executing at once (default 256; 0 = unlimited).
//	                Requests beyond the cap are shed immediately with
//	                429, a Retry-After header and {"code": "overloaded"}
//	                instead of queueing — see the "Failure model &
//	                recovery" section of docs/ARCHITECTURE.md
//	-log-level      structured request/phase logging to stderr (slog JSON):
//	                debug (adds per-phase spans), info (access logs,
//	                default), warn, error, off
//	-pprof-addr     serve net/http/pprof on a second listener (e.g.
//	                127.0.0.1:6060); empty disables. Kept off the API
//	                listener so profiling is never publicly exposed
//	-version        print version/revision (from the embedded build info)
//	                and exit
//
// Observability: GET /metrics exposes every /v1/stats counter plus
// per-endpoint request counts, in-flight gauges and latency histograms in
// Prometheus text format, and per-phase engine timing histograms
// (validate/unfold, pair derivation, compose, detect, lattice levels,
// first verdict, snapshot flush). Responses carry X-Request-ID (honoring
// an incoming header), and ?debug=timings on check/subsets returns the
// phase spans in-band. See the "Observability" section of
// docs/ARCHITECTURE.md.
//
// Endpoints (see internal/wire for the body types):
//
//	POST  /v1/workloads                        register a workload
//	GET   /v1/workloads/{id}                   workload info + cache stats
//	POST  /v1/workloads/{id}/check             robustness verdict
//	POST  /v1/workloads/{id}/subsets           robust / maximal subsets
//	GET   /v1/workloads/{id}/subsets:stream    NDJSON verdict stream (also
//	                                           POST; mode=first_non_robust,
//	                                           all_maximal_robust, top_k and
//	                                           max_subsets terminate early)
//	PATCH /v1/workloads/{id}/programs/{name}   replace one program
//	GET   /v1/stats                            server telemetry
//	GET   /healthz                             health + build + persistence
//	GET   /healthz/live                        liveness (process serves)
//	GET   /healthz/ready                       readiness (503 while
//	                                           draining or persistence-
//	                                           degraded)
//
// Shutdown is graceful: on SIGINT/SIGTERM readiness goes 503, in-flight
// requests get five seconds to drain, and pending snapshot writes are
// flushed with bounded retries. The process exits non-zero when the drain
// deadline forced connections closed or the final flush could not persist
// every dirty workload — either means work or durability was lost, and
// supervisors should know.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	mvrc "repro"
	"repro/internal/benchmarks"
	"repro/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8765", "listen address")
		preload      = flag.String("preload", "", "comma-separated benchmarks to register at boot")
		maxWorkloads = flag.Int("max-workloads", 0, "registry LRU cap (0 = default 64)")
		stateDir     = flag.String("state-dir", "", "directory for persistent workload snapshots (empty = no persistence)")
		flushEvery   = flag.Duration("flush-interval", 0, "debounce window for result-cache snapshot writes (0 = default 100ms)")
		maxBytes     = flag.Int64("max-bytes", 0, "estimated-memory budget across workloads; size-weighted eviction beyond it (0 = count-based LRU only)")
		parallel     = flag.Int("parallel", 0, "analysis workers per request and cap for per-request parallelism (0 = GOMAXPROCS, 1 = sequential)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request analysis deadline (0 = none)")
		maxChecks    = flag.Int("max-concurrent-checks", 256, "analysis requests executing at once; beyond it requests are shed with 429 + Retry-After (0 = unlimited)")
		logLevel     = flag.String("log-level", "info", "structured logging to stderr: debug, info, warn, error, off")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		version      = flag.Bool("version", false, "print version information and exit")
	)
	flag.DurationVar(timeout, "request-timeout", 30*time.Second, "alias of -timeout")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "robustserved")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, os.Stdout, options{
		addr:         *addr,
		preload:      *preload,
		maxWorkloads: *maxWorkloads,
		stateDir:     *stateDir,
		flushEvery:   *flushEvery,
		maxBytes:     *maxBytes,
		parallel:     *parallel,
		timeout:      *timeout,
		maxChecks:    *maxChecks,
		logLevel:     *logLevel,
		pprofAddr:    *pprofAddr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "robustserved:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags.
type options struct {
	addr         string
	preload      string
	maxWorkloads int
	stateDir     string
	flushEvery   time.Duration
	maxBytes     int64
	parallel     int
	timeout      time.Duration
	maxChecks    int
	logLevel     string
	pprofAddr    string
}

// newLogger maps the -log-level flag to a JSON slog handler on stderr.
// "off" (or an unrecognized level) disables logging entirely — the server
// treats a nil logger as "metrics only".
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

// servePprof runs the pprof handlers on their own listener and mux: never
// the API mux, so operators can firewall profiling separately. It returns
// after the listener is bound; serving stops when ctx is cancelled.
func servePprof(ctx context.Context, addr string, out io.Writer) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(out, "robustserved: pprof on http://%s/debug/pprof/\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		// A failed pprof shutdown never fails the process (the API server
		// owns the exit code), but silently discarding it would hide a
		// profiler connection that outlived the drain window.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(out, "robustserved: pprof shutdown: %v\n", err)
		}
	}()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// run boots the service on a fresh listener, preloads benchmarks, logs the
// bound address and serves until ctx is cancelled. Split from main (and
// given the listener-first structure) so tests can boot on port 0.
func run(ctx context.Context, out io.Writer, o options) error {
	// The flag keeps its historic "0 = no deadline" meaning; the library's
	// zero value now means DefaultRequestTimeout, so 0 maps to the
	// explicit negative opt-out.
	timeout := o.timeout
	if timeout == 0 {
		timeout = -1
	}
	srv := mvrc.NewServer(mvrc.ServerOptions{
		MaxWorkloads:        o.maxWorkloads,
		Parallelism:         o.parallel,
		RequestTimeout:      timeout,
		MaxConcurrentChecks: o.maxChecks,
		StateDir:            o.stateDir,
		FlushInterval:       o.flushEvery,
		MaxBytes:            o.maxBytes,
		Logger:              newLogger(o.logLevel),
	})
	if o.pprofAddr != "" {
		if err := servePprof(ctx, o.pprofAddr, out); err != nil {
			return err
		}
	}
	if o.stateDir != "" {
		loaded, skipped, err := srv.StateReport()
		if err != nil {
			// Persistence failing to initialize is loud but not fatal:
			// the service still serves, it just won't survive restarts.
			fmt.Fprintf(out, "robustserved: state: persistence disabled: %v\n", err)
		} else {
			fmt.Fprintf(out, "robustserved: state: restored %d workload(s), skipped %d (%s)\n",
				loaded, skipped, o.stateDir)
		}
	}
	if err := preloadBenchmarks(srv, o.preload, out); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "robustserved: listening on %s\n", ln.Addr())
	return mvrc.ServeListener(ctx, ln, srv)
}

// preloadBenchmarks registers each named benchmark and prints its workload
// id, so operators can curl checks immediately after boot.
func preloadBenchmarks(srv *mvrc.Server, names string, out io.Writer) error {
	if names == "" {
		return nil
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bench, err := benchmarks.ByName(name, 1)
		if err != nil {
			return err
		}
		resp, err := srv.Register(bench.Schema, bench.Programs)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		fmt.Fprintf(out, "robustserved: preloaded %-10s workload %s (%d programs)\n",
			name, resp.ID, len(resp.Programs))
	}
	return nil
}
