package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	mvrc "repro"
)

// syncBuffer guards the run() output buffer: run writes from the test
// goroutine spawning it while the test polls for the bound address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// bootServer runs the binary's serve loop on port 0 with the given preload
// and returns the base URL plus a shutdown func.
func bootServer(t *testing.T, preload string) (string, func()) {
	t.Helper()
	return bootServerOpts(t, options{addr: "127.0.0.1:0", preload: preload, timeout: 30 * time.Second})
}

// bootServerOpts is bootServer with full flag control (port 0 enforced).
func bootServerOpts(t *testing.T, o options) (string, func()) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, out, o)
	}()
	var base string
	for i := 0; i < 2000; i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never logged its address:\n%s", out.String())
	}
	return base, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve returned %v", err)
		}
	}
}

func TestServeEndToEnd(t *testing.T) {
	base, shutdown := bootServer(t, "smallbank")
	defer shutdown()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	// The preloaded workload is registered: re-registering returns the
	// same id with created=false, which is how curl clients discover it.
	resp, err = http.Post(base+"/v1/workloads", "application/json",
		strings.NewReader(`{"benchmark": "smallbank"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reg.Created {
		t.Fatalf("preloaded workload not resident: %d created=%t", resp.StatusCode, reg.Created)
	}

	resp, err = http.Post(base+"/v1/workloads/"+reg.ID+"/check", "application/json",
		strings.NewReader(`{"programs": ["Am", "DC", "TS"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var check struct {
		Robust bool `json:"robust"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !check.Robust {
		t.Fatalf("{Am,DC,TS} check: %d robust=%t", resp.StatusCode, check.Robust)
	}
}

// TestStateDirRestart is the CLI half of the persistence path: a workload
// registered over HTTP survives a full serve-loop restart on the same
// -state-dir, and the boot log reports the restore.
func TestStateDirRestart(t *testing.T) {
	dir := t.TempDir()
	o := options{stateDir: dir, timeout: 30 * time.Second}

	base, shutdown := bootServerOpts(t, o)
	resp, err := http.Post(base+"/v1/workloads", "application/json",
		strings.NewReader(`{"benchmark": "smallbank"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || reg.ID == "" {
		t.Fatalf("register: %d id=%q", resp.StatusCode, reg.ID)
	}
	shutdown()

	base, shutdown = bootServerOpts(t, o)
	defer shutdown()
	resp, err = http.Post(base+"/v1/workloads/"+reg.ID+"/check", "application/json",
		strings.NewReader(`{"programs": ["Am", "DC", "TS"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("restored workload check: %d, want 200 without re-registering", resp.StatusCode)
	}
}

func TestPreloadErrors(t *testing.T) {
	srv := mvrc.NewServer(mvrc.ServerOptions{})
	defer srv.Close()
	var out bytes.Buffer
	if err := preloadBenchmarks(srv, "bogus", &out); err == nil {
		t.Error("bogus preload accepted")
	}
	if err := preloadBenchmarks(srv, "smallbank, tpcc", &out); err != nil {
		t.Errorf("preload failed: %v", err)
	}
	if got := strings.Count(out.String(), "preloaded"); got != 2 {
		t.Errorf("preload logged %d workloads, want 2\n%s", got, out.String())
	}
}

var pprofRe = regexp.MustCompile(`pprof on (\S+)`)

// TestPprofAndMetrics boots with -pprof-addr on port 0 and asserts both
// observability surfaces: the API listener serves /metrics in Prometheus
// text format, and the side listener serves the pprof index — two separate
// ports, so profiling can be firewalled away from the API.
func TestPprofAndMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, out, options{
			addr: "127.0.0.1:0", preload: "smallbank",
			timeout: 30 * time.Second, pprofAddr: "127.0.0.1:0",
		})
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve returned %v", err)
		}
	}()
	var base, pprofURL string
	for i := 0; i < 2000 && (base == "" || pprofURL == ""); i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		}
		if m := pprofRe.FindStringSubmatch(out.String()); m != nil {
			pprofURL = m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(time.Millisecond)
	}
	if base == "" || pprofURL == "" {
		t.Fatalf("boot log missing addresses:\n%s", out.String())
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("metrics: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"mvrc_http_requests_total", "mvrc_workloads 1", "mvrc_build_info"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "profile") {
		t.Fatalf("pprof index: %d\n%.200s", resp.StatusCode, raw)
	}
}

// TestNewLogger maps the -log-level values: off and unknown disable
// logging (nil), real levels return a handler enabled at that level.
func TestNewLogger(t *testing.T) {
	if newLogger("off") != nil || newLogger("bogus") != nil {
		t.Error("off/unknown must disable logging")
	}
	lg := newLogger("debug")
	if lg == nil || !lg.Enabled(context.Background(), slog.LevelDebug) {
		t.Error("debug logger must enable debug records")
	}
	if lg := newLogger("error"); lg == nil || lg.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("error logger must drop info records")
	}
}
