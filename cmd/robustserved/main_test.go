package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	mvrc "repro"
)

// syncBuffer guards the run() output buffer: run writes from the test
// goroutine spawning it while the test polls for the bound address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// bootServer runs the binary's serve loop on port 0 with the given preload
// and returns the base URL plus a shutdown func.
func bootServer(t *testing.T, preload string) (string, func()) {
	t.Helper()
	return bootServerOpts(t, options{addr: "127.0.0.1:0", preload: preload, timeout: 30 * time.Second})
}

// bootServerOpts is bootServer with full flag control (port 0 enforced).
func bootServerOpts(t *testing.T, o options) (string, func()) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, out, o)
	}()
	var base string
	for i := 0; i < 2000; i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never logged its address:\n%s", out.String())
	}
	return base, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve returned %v", err)
		}
	}
}

func TestServeEndToEnd(t *testing.T) {
	base, shutdown := bootServer(t, "smallbank")
	defer shutdown()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	// The preloaded workload is registered: re-registering returns the
	// same id with created=false, which is how curl clients discover it.
	resp, err = http.Post(base+"/v1/workloads", "application/json",
		strings.NewReader(`{"benchmark": "smallbank"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reg.Created {
		t.Fatalf("preloaded workload not resident: %d created=%t", resp.StatusCode, reg.Created)
	}

	resp, err = http.Post(base+"/v1/workloads/"+reg.ID+"/check", "application/json",
		strings.NewReader(`{"programs": ["Am", "DC", "TS"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var check struct {
		Robust bool `json:"robust"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !check.Robust {
		t.Fatalf("{Am,DC,TS} check: %d robust=%t", resp.StatusCode, check.Robust)
	}
}

// TestStateDirRestart is the CLI half of the persistence path: a workload
// registered over HTTP survives a full serve-loop restart on the same
// -state-dir, and the boot log reports the restore.
func TestStateDirRestart(t *testing.T) {
	dir := t.TempDir()
	o := options{stateDir: dir, timeout: 30 * time.Second}

	base, shutdown := bootServerOpts(t, o)
	resp, err := http.Post(base+"/v1/workloads", "application/json",
		strings.NewReader(`{"benchmark": "smallbank"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || reg.ID == "" {
		t.Fatalf("register: %d id=%q", resp.StatusCode, reg.ID)
	}
	shutdown()

	base, shutdown = bootServerOpts(t, o)
	defer shutdown()
	resp, err = http.Post(base+"/v1/workloads/"+reg.ID+"/check", "application/json",
		strings.NewReader(`{"programs": ["Am", "DC", "TS"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("restored workload check: %d, want 200 without re-registering", resp.StatusCode)
	}
}

func TestPreloadErrors(t *testing.T) {
	srv := mvrc.NewServer(mvrc.ServerOptions{})
	defer srv.Close()
	var out bytes.Buffer
	if err := preloadBenchmarks(srv, "bogus", &out); err == nil {
		t.Error("bogus preload accepted")
	}
	if err := preloadBenchmarks(srv, "smallbank, tpcc", &out); err != nil {
		t.Errorf("preload failed: %v", err)
	}
	if got := strings.Count(out.String(), "preloaded"); got != 2 {
		t.Errorf("preload logged %d workloads, want 2\n%s", got, out.String())
	}
}
