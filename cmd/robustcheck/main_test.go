package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/server"
	"repro/internal/summary"
)

func TestParseSetting(t *testing.T) {
	cases := map[string]summary.Setting{
		"tpl":     summary.SettingTplDep,
		"attr":    summary.SettingAttrDep,
		"tpl+fk":  summary.SettingTplDepFK,
		"attr+fk": summary.SettingAttrDepFK,
	}
	for name, want := range cases {
		got, err := parseSetting(name)
		if err != nil || got != want {
			t.Errorf("parseSetting(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseSetting("bogus"); err == nil {
		t.Error("bogus setting accepted")
	}
}

func TestParseMethod(t *testing.T) {
	if m, err := parseMethod("type1"); err != nil || m != summary.TypeI {
		t.Error("type1")
	}
	if m, err := parseMethod("type2"); err != nil || m != summary.TypeII {
		t.Error("type2")
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestLoadBenchmark(t *testing.T) {
	for _, name := range []string{"smallbank", "tpcc", "auction"} {
		if _, err := loadBenchmark(name, 1); err != nil {
			t.Errorf("loadBenchmark(%q): %v", name, err)
		}
	}
	b, err := loadBenchmark("auction", 3)
	if err != nil || len(b.Programs) != 6 {
		t.Errorf("auction n=3: %v, %d programs", err, len(b.Programs))
	}
	if _, err := loadBenchmark("bogus", 1); err == nil {
		t.Error("bogus benchmark accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Benchmarks across modes.
	cases := []struct {
		name    string
		bench   string
		setting string
		method  string
		progs   string
		subsets bool
		stats   bool
		wantErr bool
	}{
		{"auction robust", "auction", "attr+fk", "type2", "", false, true, false},
		{"auction type1", "auction", "attr+fk", "type1", "", false, false, false},
		{"smallbank subsets", "smallbank", "attr+fk", "type2", "", true, false, false},
		{"tpcc subset", "tpcc", "attr+fk", "type2", "OS,Pay,SL", false, false, false},
		{"bad program", "tpcc", "attr+fk", "type2", "Nope", false, false, true},
		{"bad setting", "tpcc", "huh", "type2", "", false, false, true},
		{"bad method", "tpcc", "attr+fk", "huh", "", false, false, true},
		{"no input", "", "attr+fk", "type2", "", false, false, true},
	}
	for _, tc := range cases {
		err := run(runOptions{
			benchName: tc.bench, n: 1,
			setting: tc.setting, method: tc.method, progList: tc.progs,
			subsets: tc.subsets, stats: tc.stats, unfold: 2,
		})
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %t", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunSubsetsModes checks the cached engine (sequential and parallel)
// and the naive oracle all succeed through the CLI path.
func TestRunSubsetsModes(t *testing.T) {
	for _, o := range []runOptions{
		{benchName: "smallbank", n: 1, setting: "attr+fk", method: "type2", subsets: true, parallel: 1, unfold: 2},
		{benchName: "smallbank", n: 1, setting: "attr+fk", method: "type2", subsets: true, parallel: 4, unfold: 2},
		{benchName: "smallbank", n: 1, setting: "tpl", method: "type1", subsets: true, naive: true, unfold: 2},
	} {
		if err := run(o); err != nil {
			t.Errorf("run(%+v): %v", o, err)
		}
	}
}

func TestRunSQLFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "progs.sql")
	src := `
PROGRAM Bump(:B):
  UPDATE Buyer SET calls = calls + 1 WHERE id = :B; -- q1
  COMMIT;
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runOptions{n: 1, sqlFile: path, schemaSQL: "auction", setting: "attr+fk", method: "type2", stats: true, unfold: 2}); err != nil {
		t.Fatalf("run with -sql: %v", err)
	}
	// Missing -schema is an error.
	if err := run(runOptions{n: 1, sqlFile: path, setting: "attr+fk", method: "type2", unfold: 2}); err == nil {
		t.Error("missing -schema accepted")
	}
	// Unreadable file is an error.
	if err := run(runOptions{n: 1, sqlFile: filepath.Join(dir, "missing.sql"), schemaSQL: "auction", setting: "attr+fk", method: "type2", unfold: 2}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestJSONMatchesServer is the wire-sharing contract: robustcheck -json
// and a robustserved round-trip must produce byte-identical documents for
// the same input (SmallBank under the default configuration), for both the
// single check and the subset enumeration.
func TestJSONMatchesServer(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bench := benchmarks.SmallBank()
	reg, err := srv.Register(bench.Schema, bench.Programs)
	if err != nil {
		t.Fatal(err)
	}

	serverBody := func(path string) []byte {
		resp, err := http.Post(ts.URL+"/v1/workloads/"+reg.ID+"/"+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("server %s: %d %v", path, resp.StatusCode, err)
		}
		return raw
	}

	cliBody := func(subsets bool) []byte {
		var buf bytes.Buffer
		err := run(runOptions{
			benchName: "smallbank",
			setting:   "attr+fk", method: "type2", unfold: 2,
			subsets: subsets, json: true, out: &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if cli, srv := cliBody(false), serverBody("check"); !bytes.Equal(cli, srv) {
		t.Errorf("check responses differ:\nCLI:    %s\nserver: %s", cli, srv)
	}
	if cli, srv := cliBody(true), serverBody("subsets"); !bytes.Equal(cli, srv) {
		t.Errorf("subsets responses differ:\nCLI:    %s\nserver: %s", cli, srv)
	}
}

// TestRunTimings asserts -timings prints the phase table to the error
// stream and leaves stdout byte-identical — the -json output must stay
// comparable against server responses with or without the flag.
func TestRunTimings(t *testing.T) {
	var plain, timed, table bytes.Buffer
	base := runOptions{
		benchName: "smallbank", n: 1,
		setting: "attr+fk", method: "type2", unfold: 2,
		subsets: true, json: true,
	}
	o := base
	o.out = &plain
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o = base
	o.out, o.errOut, o.timings = &timed, &table, true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), timed.Bytes()) {
		t.Error("-timings changed the stdout document")
	}
	for _, want := range []string{"phase timings:", "lattice_level", "compose", "detect"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("timing table missing %q:\n%s", want, table.String())
		}
	}
}

// TestRunTimingsCheck covers the plain-check path: the table appears even
// without -subsets, and an untimed run writes nothing to the error stream.
func TestRunTimingsCheck(t *testing.T) {
	var out, table bytes.Buffer
	err := run(runOptions{
		benchName: "smallbank", n: 1,
		setting: "attr+fk", method: "type2", unfold: 2,
		timings: true, out: &out, errOut: &table,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "phase timings:") {
		t.Errorf("no timing table:\n%s", table.String())
	}
}
