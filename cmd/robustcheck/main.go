// Command robustcheck tests transaction programs for robustness against
// multiversion Read Committed.
//
// Usage:
//
//	robustcheck -benchmark smallbank|tpcc|auction [-n N] [flags]
//	robustcheck -sql programs.sql -schema benchmark [flags]
//	robustcheck -sql script.sql -dialect postgres|mysql|sqlite [-ddl schema.sql] [flags]
//
// Flags:
//
//	-dialect   SQL dialect of the -sql file: "embedded" (the Appendix A
//	           dialect, default), "postgres", "mysql" or "sqlite"
//	-ddl       file with CREATE TABLE statements for -sql; builds the schema
//	           from the DDL and infers FK annotations from its REFERENCES
//	           clauses (alternative to -schema; the DDL may also live at the
//	           top of the -sql script itself)
//	-setting   analysis setting: "tpl", "attr", "tpl+fk", "attr+fk" (default)
//	-method    cycle condition: "type2" (Algorithm 2, default) or "type1" ([3])
//	-programs  comma-separated program names restricting the benchmark
//	-subsets   enumerate all maximal robust subsets (Figures 6/7)
//	-certify   on a non-robust verdict, realize the witness cycle into a
//	           concrete schedule, replay it on the MVCC engine and print a
//	           machine-checkable certificate (or the documented reason why
//	           no candidate realized) — the CLI twin of the server's
//	           /certify endpoint
//	-max-schedules  cap each certification candidate's interleaving search
//	           (0 = the engine default)
//	-stream    stream the subset enumeration as NDJSON: one verdict line
//	           per subset the moment the lattice walk decides it, then a
//	           summary record — the CLI twin of the server's
//	           subsets:stream endpoint (implies -subsets)
//	-mode      streaming mode: "all" (default), "first_non_robust",
//	           "all_maximal_robust", "top_k"
//	-k         result budget for -mode top_k
//	-max-subsets  stop the stream after this many emitted verdicts
//	-parallel  analysis workers: subset enumeration and intra-check
//	           sharding of edge blocks + closure (default GOMAXPROCS;
//	           1 = fully sequential)
//	-naive     use the naive per-subset oracle instead of the cached engine
//	-stats     print summary-graph statistics (Table 2)
//	-unfold    loop unfolding bound (default 2; 2 is sound per Prop. 6.1)
//	-json      emit the verdict as JSON using the service wire types —
//	           byte-identical to a robustserved response for the same input
//	-timings   print a per-phase timing table (validate/unfold, pair
//	           derivation, compose, detect, lattice levels, ...) to stderr
//	           after the analysis — stdout stays byte-identical, so -json
//	           output remains comparable against server responses
//	-version   print version/revision (from the embedded build info) and exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/certify"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
	"repro/internal/wire"
)

func main() {
	var (
		benchName = flag.String("benchmark", "", "benchmark to analyze: smallbank, tpcc, auction")
		n         = flag.Int("n", 1, "scaling factor for auction (Auction(n))")
		sqlFile   = flag.String("sql", "", "file with PROGRAM definitions in the Appendix A dialect (or a full script in the -dialect dialect)")
		schemaSQL = flag.String("schema", "", "benchmark name providing the schema for -sql (smallbank, tpcc, auction)")
		dialectF  = flag.String("dialect", "embedded", "SQL dialect of the -sql file: embedded, postgres, mysql, sqlite")
		ddlFile   = flag.String("ddl", "", "file with CREATE TABLE ddl for -sql (alternative to -schema; enables FK inference)")
		setting   = flag.String("setting", "attr+fk", "analysis setting: tpl, attr, tpl+fk, attr+fk")
		method    = flag.String("method", "type2", "cycle condition: type2 (Algorithm 2) or type1 ([3])")
		progList  = flag.String("programs", "", "comma-separated program names restricting the analysis")
		subsets   = flag.Bool("subsets", false, "enumerate maximal robust subsets")
		certifyF  = flag.Bool("certify", false, "realize + replay a non-robust verdict into a machine-checkable certificate")
		maxSched  = flag.Int("max-schedules", 0, "cap each certification candidate's interleaving search (0 = engine default)")
		stream    = flag.Bool("stream", false, "stream the subset enumeration as NDJSON (implies -subsets)")
		mode      = flag.String("mode", "all", "streaming mode: all, first_non_robust, all_maximal_robust, top_k")
		topK      = flag.Int("k", 0, "result budget for -mode top_k")
		maxSub    = flag.Int("max-subsets", 0, "stop the stream after this many emitted verdicts (0 = no cap)")
		parallel  = flag.Int("parallel", 0, "analysis workers for subset enumeration and intra-check sharding (0 = GOMAXPROCS, 1 = sequential)")
		naive     = flag.Bool("naive", false, "use the naive per-subset oracle instead of the cached engine")
		stats     = flag.Bool("stats", false, "print summary-graph statistics")
		unfold    = flag.Int("unfold", 2, "loop unfolding bound")
		jsonOut   = flag.Bool("json", false, "emit the verdict as JSON (service wire format)")
		timings   = flag.Bool("timings", false, "print per-phase timing table to stderr")
		version   = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "robustcheck")
		return
	}

	opts := runOptions{
		benchName: *benchName, n: *n,
		sqlFile: *sqlFile, schemaSQL: *schemaSQL,
		dialect: *dialectF, ddlFile: *ddlFile,
		setting: *setting, method: *method, progList: *progList,
		subsets: *subsets, parallel: *parallel, naive: *naive,
		stats: *stats, unfold: *unfold, json: *jsonOut,
		stream: *stream, mode: *mode, k: *topK, maxSubsets: *maxSub,
		timings: *timings,
		certify: *certifyF, maxSchedules: *maxSched,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "robustcheck:", err)
		os.Exit(1)
	}
}

// runOptions carries the parsed flags.
type runOptions struct {
	benchName string
	n         int
	sqlFile   string
	schemaSQL string
	dialect   string
	ddlFile   string
	setting   string
	method    string
	progList  string
	subsets   bool
	parallel  int
	naive     bool
	stats     bool
	unfold    int
	json      bool
	// stream/mode/k/maxSubsets select the NDJSON streaming enumeration
	// (the CLI twin of the server's subsets:stream endpoint).
	stream     bool
	mode       string
	k          int
	maxSubsets int
	// timings records per-phase spans and prints a table to errOut after
	// the analysis, reusing the server's tracer plumbing.
	timings bool
	// certify/maxSchedules drive the certification pipeline (the CLI twin
	// of the server's /certify endpoint).
	certify      bool
	maxSchedules int
	// out overrides the output stream (tests); nil means os.Stdout.
	out io.Writer
	// errOut overrides the timing-table stream (tests); nil means os.Stderr.
	errOut io.Writer
}

// parseSetting, parseMethod and loadBenchmark delegate to the shared wire /
// benchmark lookups, so CLI and server accept identical names. The CLI
// rejects the empty string the wire layer would default.
func parseSetting(s string) (summary.Setting, error) {
	if s == "" {
		return summary.Setting{}, fmt.Errorf("unknown setting %q", s)
	}
	return wire.ParseSetting(s)
}

func parseMethod(s string) (summary.Method, error) {
	if s == "" {
		return summary.TypeII, fmt.Errorf("unknown method %q", s)
	}
	return wire.ParseMethod(s)
}

func loadBenchmark(name string, n int) (*benchmarks.Benchmark, error) {
	return benchmarks.ByName(name, n)
}

func run(o runOptions) error {
	st, err := parseSetting(o.setting)
	if err != nil {
		return err
	}
	m, err := parseMethod(o.method)
	if err != nil {
		return err
	}

	var (
		bench    *benchmarks.Benchmark
		programs []*btp.Program
	)
	switch {
	case o.sqlFile != "":
		src, err := os.ReadFile(o.sqlFile)
		if err != nil {
			return err
		}
		cs := sqlbtp.Source{Dialect: o.dialect, Script: string(src)}
		switch {
		case o.schemaSQL != "":
			if o.ddlFile != "" {
				return fmt.Errorf("-schema and -ddl are mutually exclusive")
			}
			sb, err := loadBenchmark(o.schemaSQL, 1)
			if err != nil {
				return err
			}
			cs.Schema = sb.Schema
		case o.ddlFile != "":
			// Prepend the DDL so the script path sees one self-contained
			// unit; this is the FK-inference path.
			ddl, err := os.ReadFile(o.ddlFile)
			if err != nil {
				return err
			}
			cs.Script = string(ddl) + "\n" + cs.Script
		case o.dialect == "" || o.dialect == "embedded":
			return fmt.Errorf("-sql requires -schema naming a benchmark schema (or -ddl with a dialect)")
		}
		wl, err := sqlbtp.Compile(cs)
		if err != nil {
			return err
		}
		programs = wl.Programs
		bench = &benchmarks.Benchmark{Name: o.sqlFile, Schema: wl.Schema, Programs: programs}
	case o.benchName != "":
		bench, err = loadBenchmark(o.benchName, o.n)
		if err != nil {
			return err
		}
		programs = bench.Programs
	default:
		return fmt.Errorf("either -benchmark or -sql is required")
	}

	if o.progList != "" {
		var selected []*btp.Program
		for _, name := range strings.Split(o.progList, ",") {
			p := bench.Program(strings.TrimSpace(name))
			if p == nil {
				return fmt.Errorf("benchmark %s has no program %q", bench.Name, name)
			}
			selected = append(selected, p)
		}
		programs = selected
	}

	checker := robust.NewChecker(bench.Schema)
	checker.Setting = st
	checker.Method = m
	checker.UnfoldBound = o.unfold
	checker.Parallelism = o.parallel
	// cfg mirrors the checker configuration for the wire responses, which
	// echo the setting/method/bound the verdict was computed under.
	cfg := analysis.Config{Setting: st, Method: m, UnfoldBound: o.unfold, Parallelism: o.parallel}

	out := o.out
	if out == nil {
		out = os.Stdout
	}
	if o.timings {
		errOut := o.errOut
		if errOut == nil {
			errOut = os.Stderr
		}
		rec := obs.NewSpanRecorder()
		checker.Tracer = rec
		// Deferred so the table also covers partial runs that end in an
		// error; it goes to stderr so -json stdout stays byte-identical
		// to the matching server response.
		defer printTimings(rec, errOut)
	}
	if !o.json && !o.stream {
		fmt.Fprintf(out, "benchmark: %s  setting: %s  method: %s\n", bench.Name, st, m)
	}

	if o.stream {
		return runStream(o, checker, cfg, programs, out)
	}

	if o.certify {
		return runCertify(o, checker, cfg, programs, out)
	}

	if o.subsets {
		enumerate := checker.RobustSubsets
		if o.naive {
			enumerate = checker.NaiveRobustSubsets
		}
		rep, err := enumerate(programs)
		if err != nil {
			return err
		}
		if o.json {
			return wire.WriteJSON(out, wire.NewSubsetsResponse(cfg, programs, rep))
		}
		fmt.Fprintf(out, "maximal robust subsets: %s\n", rep)
		fmt.Fprintf(out, "robust subsets (all %d):\n", len(rep.Robust))
		for _, s := range rep.Robust {
			fmt.Fprintf(out, "  %s\n", s)
		}
		return nil
	}

	res, err := checker.Check(programs)
	if err != nil {
		return err
	}
	if o.json {
		return wire.WriteJSON(out, wire.NewCheckResponse(cfg, programs, res))
	}
	if o.stats {
		s := res.Graph.Stats()
		fmt.Fprintf(out, "summary graph: %d nodes, %d edges (%d counterflow)\n", s.Nodes, s.Edges, s.CounterflowEdges)
		for _, l := range res.LTPs {
			fmt.Fprintf(out, "  %s\n", l)
		}
	}
	if res.Robust {
		fmt.Fprintln(out, "verdict: ROBUST against MVRC — safe to run under READ COMMITTED")
	} else {
		fmt.Fprintln(out, "verdict: NOT certified robust against MVRC")
		fmt.Fprintf(out, "dangerous cycle:\n%s", res.Witness)
	}
	return nil
}

// printTimings writes the recorded per-phase spans as a fixed-width table:
// phase name, number of spans, accumulated wall time.
func printTimings(rec *obs.SpanRecorder, w io.Writer) {
	spans := rec.Snapshot()
	if len(spans) == 0 {
		return
	}
	fmt.Fprintln(w, "phase timings:")
	for _, s := range spans {
		fmt.Fprintf(w, "  %-16s %6d  %12.3fms\n",
			s.Phase, s.Count, float64(s.Total.Microseconds())/1e3)
	}
}

// runCertify drives the certification pipeline: static check, witness
// realization, interleaving search and engine replay. The -json document is
// the same wire.CertifyResponse the server's /certify endpoint serves.
func runCertify(o runOptions, checker *robust.Checker, cfg analysis.Config, programs []*btp.Program, out io.Writer) error {
	res, err := certify.Subset(context.Background(), checker.Session(), cfg, programs, certify.Options{
		MaxSchedules: o.maxSchedules,
		Parallelism:  o.parallel,
	})
	if err != nil {
		return err
	}
	if o.json {
		return wire.WriteJSON(out, wire.NewCertifyResponse(cfg, programs, res))
	}
	switch res.Status {
	case certify.Robust:
		fmt.Fprintln(out, "verdict: ROBUST against MVRC — nothing to certify")
	case certify.Certified:
		c := res.Certificate
		fmt.Fprintf(out, "verdict: NOT robust — CERTIFIED by replayed execution (core: %s)\n",
			strings.Join(res.Core, ", "))
		fmt.Fprintf(out, "candidate: %s  instances: %s  explored: %d schedules\n",
			c.Candidate, strings.Join(c.Instances, ", "), res.Explored)
		fmt.Fprintf(out, "schedule: %s\n", c.Schedule)
		fmt.Fprintln(out, "conflict cycle:")
		for _, d := range c.Cycle.Deps {
			fmt.Fprintf(out, "  %s\n", d)
		}
		if res.NewlyCertified {
			fmt.Fprintln(out, "core newly marked certified in the session")
		}
	default:
		fmt.Fprintf(out, "verdict: NOT robust, but UNREALIZED (core: %s)\n",
			strings.Join(res.Core, ", "))
		fmt.Fprintf(out, "reason: %s\n", res.Reason)
		fmt.Fprintf(out, "candidates searched: %d  explored: %d schedules\n",
			res.Candidates, res.Explored)
	}
	return nil
}

// runStream drives the streaming enumeration, printing the same NDJSON
// document the server's subsets:stream endpoint serves: one compact
// verdict record per line, then the summary record.
func runStream(o runOptions, checker *robust.Checker, cfg analysis.Config, programs []*btp.Program, out io.Writer) error {
	sm, err := wire.ParseStreamMode(o.mode)
	if err != nil {
		return err
	}
	if sm == analysis.StreamTopK && o.k <= 0 {
		return fmt.Errorf("-mode top_k needs -k > 0")
	}
	enc := json.NewEncoder(out) // Encode appends the NDJSON newline
	opts := analysis.StreamOptions{Mode: sm, K: o.k, MaxSubsets: o.maxSubsets}
	sum, err := checker.RobustSubsetsStream(context.Background(), programs, opts, func(v analysis.StreamVerdict) error {
		return enc.Encode(wire.NewStreamVerdictRecord(v))
	})
	if err != nil {
		return err
	}
	return enc.Encode(wire.NewStreamSummaryRecord(cfg, programs, sm, sum))
}
