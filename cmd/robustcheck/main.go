// Command robustcheck tests transaction programs for robustness against
// multiversion Read Committed.
//
// Usage:
//
//	robustcheck -benchmark smallbank|tpcc|auction [-n N] [flags]
//	robustcheck -sql programs.sql -schema schema.sql [flags]
//
// Flags:
//
//	-setting   analysis setting: "tpl", "attr", "tpl+fk", "attr+fk" (default)
//	-method    cycle condition: "type2" (Algorithm 2, default) or "type1" ([3])
//	-programs  comma-separated program names restricting the benchmark
//	-subsets   enumerate all maximal robust subsets (Figures 6/7)
//	-parallel  worker count for -subsets (default GOMAXPROCS; 1 = sequential)
//	-naive     use the naive per-subset oracle instead of the cached engine
//	-stats     print summary-graph statistics (Table 2)
//	-unfold    loop unfolding bound (default 2; 2 is sound per Prop. 6.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
)

func main() {
	var (
		benchName = flag.String("benchmark", "", "benchmark to analyze: smallbank, tpcc, auction")
		n         = flag.Int("n", 1, "scaling factor for auction (Auction(n))")
		sqlFile   = flag.String("sql", "", "file with PROGRAM definitions in the Appendix A dialect")
		schemaSQL = flag.String("schema", "", "benchmark name providing the schema for -sql (smallbank, tpcc, auction)")
		setting   = flag.String("setting", "attr+fk", "analysis setting: tpl, attr, tpl+fk, attr+fk")
		method    = flag.String("method", "type2", "cycle condition: type2 (Algorithm 2) or type1 ([3])")
		progList  = flag.String("programs", "", "comma-separated program names restricting the analysis")
		subsets   = flag.Bool("subsets", false, "enumerate maximal robust subsets")
		parallel  = flag.Int("parallel", 0, "subset-enumeration workers (0 = GOMAXPROCS, 1 = sequential)")
		naive     = flag.Bool("naive", false, "use the naive per-subset oracle instead of the cached engine")
		stats     = flag.Bool("stats", false, "print summary-graph statistics")
		unfold    = flag.Int("unfold", 2, "loop unfolding bound")
	)
	flag.Parse()

	opts := runOptions{
		benchName: *benchName, n: *n,
		sqlFile: *sqlFile, schemaSQL: *schemaSQL,
		setting: *setting, method: *method, progList: *progList,
		subsets: *subsets, parallel: *parallel, naive: *naive,
		stats: *stats, unfold: *unfold,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "robustcheck:", err)
		os.Exit(1)
	}
}

// runOptions carries the parsed flags.
type runOptions struct {
	benchName string
	n         int
	sqlFile   string
	schemaSQL string
	setting   string
	method    string
	progList  string
	subsets   bool
	parallel  int
	naive     bool
	stats     bool
	unfold    int
}

func parseSetting(s string) (summary.Setting, error) {
	switch s {
	case "tpl":
		return summary.SettingTplDep, nil
	case "attr":
		return summary.SettingAttrDep, nil
	case "tpl+fk":
		return summary.SettingTplDepFK, nil
	case "attr+fk":
		return summary.SettingAttrDepFK, nil
	default:
		return summary.Setting{}, fmt.Errorf("unknown setting %q", s)
	}
}

func parseMethod(s string) (summary.Method, error) {
	switch s {
	case "type1", "type-1", "typeI":
		return summary.TypeI, nil
	case "type2", "type-2", "typeII":
		return summary.TypeII, nil
	default:
		return summary.TypeII, fmt.Errorf("unknown method %q", s)
	}
}

func loadBenchmark(name string, n int) (*benchmarks.Benchmark, error) {
	switch strings.ToLower(name) {
	case "smallbank":
		return benchmarks.SmallBank(), nil
	case "tpcc", "tpc-c":
		return benchmarks.TPCC(), nil
	case "auction":
		if n > 1 {
			return benchmarks.AuctionN(n), nil
		}
		return benchmarks.Auction(), nil
	default:
		return nil, fmt.Errorf("unknown benchmark %q (want smallbank, tpcc or auction)", name)
	}
}

func run(o runOptions) error {
	st, err := parseSetting(o.setting)
	if err != nil {
		return err
	}
	m, err := parseMethod(o.method)
	if err != nil {
		return err
	}

	var (
		bench    *benchmarks.Benchmark
		programs []*btp.Program
	)
	switch {
	case o.sqlFile != "":
		if o.schemaSQL == "" {
			return fmt.Errorf("-sql requires -schema naming a benchmark schema")
		}
		sb, err := loadBenchmark(o.schemaSQL, 1)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(o.sqlFile)
		if err != nil {
			return err
		}
		programs, err = sqlbtp.Parse(sb.Schema, string(src))
		if err != nil {
			return err
		}
		bench = &benchmarks.Benchmark{Name: o.sqlFile, Schema: sb.Schema, Programs: programs}
	case o.benchName != "":
		bench, err = loadBenchmark(o.benchName, o.n)
		if err != nil {
			return err
		}
		programs = bench.Programs
	default:
		return fmt.Errorf("either -benchmark or -sql is required")
	}

	if o.progList != "" {
		var selected []*btp.Program
		for _, name := range strings.Split(o.progList, ",") {
			p := bench.Program(strings.TrimSpace(name))
			if p == nil {
				return fmt.Errorf("benchmark %s has no program %q", bench.Name, name)
			}
			selected = append(selected, p)
		}
		programs = selected
	}

	checker := robust.NewChecker(bench.Schema)
	checker.Setting = st
	checker.Method = m
	checker.UnfoldBound = o.unfold
	checker.Parallelism = o.parallel

	fmt.Printf("benchmark: %s  setting: %s  method: %s\n", bench.Name, st, m)

	if o.subsets {
		enumerate := checker.RobustSubsets
		if o.naive {
			enumerate = checker.NaiveRobustSubsets
		}
		rep, err := enumerate(programs)
		if err != nil {
			return err
		}
		fmt.Printf("maximal robust subsets: %s\n", rep)
		fmt.Printf("robust subsets (all %d):\n", len(rep.Robust))
		for _, s := range rep.Robust {
			fmt.Printf("  %s\n", s)
		}
		return nil
	}

	res, err := checker.Check(programs)
	if err != nil {
		return err
	}
	if o.stats {
		s := res.Graph.Stats()
		fmt.Printf("summary graph: %d nodes, %d edges (%d counterflow)\n", s.Nodes, s.Edges, s.CounterflowEdges)
		for _, l := range res.LTPs {
			fmt.Printf("  %s\n", l)
		}
	}
	if res.Robust {
		fmt.Println("verdict: ROBUST against MVRC — safe to run under READ COMMITTED")
	} else {
		fmt.Println("verdict: NOT certified robust against MVRC")
		fmt.Printf("dangerous cycle:\n%s", res.Witness)
	}
	return nil
}
