// Command robustcheck tests transaction programs for robustness against
// multiversion Read Committed.
//
// Usage:
//
//	robustcheck -benchmark smallbank|tpcc|auction [-n N] [flags]
//	robustcheck -sql programs.sql -schema schema.sql [flags]
//
// Flags:
//
//	-setting   analysis setting: "tpl", "attr", "tpl+fk", "attr+fk" (default)
//	-method    cycle condition: "type2" (Algorithm 2, default) or "type1" ([3])
//	-programs  comma-separated program names restricting the benchmark
//	-subsets   enumerate all maximal robust subsets (Figures 6/7)
//	-stats     print summary-graph statistics (Table 2)
//	-unfold    loop unfolding bound (default 2; 2 is sound per Prop. 6.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
)

func main() {
	var (
		benchName = flag.String("benchmark", "", "benchmark to analyze: smallbank, tpcc, auction")
		n         = flag.Int("n", 1, "scaling factor for auction (Auction(n))")
		sqlFile   = flag.String("sql", "", "file with PROGRAM definitions in the Appendix A dialect")
		schemaSQL = flag.String("schema", "", "benchmark name providing the schema for -sql (smallbank, tpcc, auction)")
		setting   = flag.String("setting", "attr+fk", "analysis setting: tpl, attr, tpl+fk, attr+fk")
		method    = flag.String("method", "type2", "cycle condition: type2 (Algorithm 2) or type1 ([3])")
		progList  = flag.String("programs", "", "comma-separated program names restricting the analysis")
		subsets   = flag.Bool("subsets", false, "enumerate maximal robust subsets")
		stats     = flag.Bool("stats", false, "print summary-graph statistics")
		unfold    = flag.Int("unfold", 2, "loop unfolding bound")
	)
	flag.Parse()

	if err := run(*benchName, *n, *sqlFile, *schemaSQL, *setting, *method, *progList, *subsets, *stats, *unfold); err != nil {
		fmt.Fprintln(os.Stderr, "robustcheck:", err)
		os.Exit(1)
	}
}

func parseSetting(s string) (summary.Setting, error) {
	switch s {
	case "tpl":
		return summary.SettingTplDep, nil
	case "attr":
		return summary.SettingAttrDep, nil
	case "tpl+fk":
		return summary.SettingTplDepFK, nil
	case "attr+fk":
		return summary.SettingAttrDepFK, nil
	default:
		return summary.Setting{}, fmt.Errorf("unknown setting %q", s)
	}
}

func parseMethod(s string) (summary.Method, error) {
	switch s {
	case "type1", "type-1", "typeI":
		return summary.TypeI, nil
	case "type2", "type-2", "typeII":
		return summary.TypeII, nil
	default:
		return summary.TypeII, fmt.Errorf("unknown method %q", s)
	}
}

func loadBenchmark(name string, n int) (*benchmarks.Benchmark, error) {
	switch strings.ToLower(name) {
	case "smallbank":
		return benchmarks.SmallBank(), nil
	case "tpcc", "tpc-c":
		return benchmarks.TPCC(), nil
	case "auction":
		if n > 1 {
			return benchmarks.AuctionN(n), nil
		}
		return benchmarks.Auction(), nil
	default:
		return nil, fmt.Errorf("unknown benchmark %q (want smallbank, tpcc or auction)", name)
	}
}

func run(benchName string, n int, sqlFile, schemaSQL, settingName, methodName, progList string, subsets, stats bool, unfold int) error {
	st, err := parseSetting(settingName)
	if err != nil {
		return err
	}
	m, err := parseMethod(methodName)
	if err != nil {
		return err
	}

	var (
		bench    *benchmarks.Benchmark
		programs []*btp.Program
	)
	switch {
	case sqlFile != "":
		if schemaSQL == "" {
			return fmt.Errorf("-sql requires -schema naming a benchmark schema")
		}
		sb, err := loadBenchmark(schemaSQL, 1)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(sqlFile)
		if err != nil {
			return err
		}
		programs, err = sqlbtp.Parse(sb.Schema, string(src))
		if err != nil {
			return err
		}
		bench = &benchmarks.Benchmark{Name: sqlFile, Schema: sb.Schema, Programs: programs}
	case benchName != "":
		bench, err = loadBenchmark(benchName, n)
		if err != nil {
			return err
		}
		programs = bench.Programs
	default:
		return fmt.Errorf("either -benchmark or -sql is required")
	}

	if progList != "" {
		var selected []*btp.Program
		for _, name := range strings.Split(progList, ",") {
			p := bench.Program(strings.TrimSpace(name))
			if p == nil {
				return fmt.Errorf("benchmark %s has no program %q", bench.Name, name)
			}
			selected = append(selected, p)
		}
		programs = selected
	}

	checker := robust.NewChecker(bench.Schema)
	checker.Setting = st
	checker.Method = m
	checker.UnfoldBound = unfold

	fmt.Printf("benchmark: %s  setting: %s  method: %s\n", bench.Name, st, m)

	if subsets {
		rep, err := checker.RobustSubsets(programs)
		if err != nil {
			return err
		}
		fmt.Printf("maximal robust subsets: %s\n", rep)
		fmt.Printf("robust subsets (all %d):\n", len(rep.Robust))
		for _, s := range rep.Robust {
			fmt.Printf("  %s\n", s)
		}
		return nil
	}

	res, err := checker.Check(programs)
	if err != nil {
		return err
	}
	if stats {
		s := res.Graph.Stats()
		fmt.Printf("summary graph: %d nodes, %d edges (%d counterflow)\n", s.Nodes, s.Edges, s.CounterflowEdges)
		for _, l := range res.LTPs {
			fmt.Printf("  %s\n", l)
		}
	}
	if res.Robust {
		fmt.Println("verdict: ROBUST against MVRC — safe to run under READ COMMITTED")
	} else {
		fmt.Println("verdict: NOT certified robust against MVRC")
		fmt.Printf("dangerous cycle:\n%s", res.Witness)
	}
	return nil
}
