package main

import "testing"

func TestRunWorkloads(t *testing.T) {
	cases := []struct {
		bench, progs, iso string
	}{
		{"smallbank", "", "rc"},
		{"smallbank", "Am,DC,TS", "rc"},
		{"smallbank", "", "si"},
		{"smallbank", "", "ser"},
		{"auction", "", "rc"},
	}
	for _, tc := range cases {
		if err := run(tc.bench, tc.progs, tc.iso, 60, 4, 1, 1); err != nil {
			t.Errorf("run(%s, %q, %s): %v", tc.bench, tc.progs, tc.iso, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", "rc", 10, 2, 1, 1); err == nil {
		t.Error("bogus workload accepted")
	}
	if err := run("smallbank", "", "bogus", 10, 2, 1, 1); err == nil {
		t.Error("bogus isolation accepted")
	}
	if err := run("smallbank", "Nope", "rc", 10, 2, 1, 1); err == nil {
		t.Error("bogus program accepted")
	}
}
