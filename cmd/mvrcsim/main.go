// Command mvrcsim runs a benchmark workload on the in-memory MVCC engine
// under a chosen isolation level, records the execution as a multiversion
// schedule, and reports whether it was conflict serializable — an
// operational companion to the static analysis of robustcheck.
//
// Usage:
//
//	mvrcsim -benchmark smallbank [-programs Am,DC,TS] -iso rc -txns 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("benchmark", "smallbank", "workload: smallbank or auction")
		progList  = flag.String("programs", "", "comma-separated SmallBank program names (abbreviations ok)")
		isoName   = flag.String("iso", "rc", "isolation level: rc, si, ser")
		txns      = flag.Int("txns", 200, "number of transactions")
		workers   = flag.Int("workers", 8, "concurrent workers")
		seed      = flag.Int64("seed", 1, "workload seed")
		customers = flag.Int("customers", 1, "SmallBank customers / Auction buyers (low = contended)")
		version   = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "mvrcsim")
		return
	}
	if err := run(*benchName, *progList, *isoName, *txns, *workers, *seed, *customers); err != nil {
		fmt.Fprintln(os.Stderr, "mvrcsim:", err)
		os.Exit(1)
	}
}

func run(benchName, progList, isoName string, txns, workers int, seed int64, customers int) error {
	var iso mvcc.Isolation
	switch isoName {
	case "rc":
		iso = mvcc.ReadCommitted
	case "si":
		iso = mvcc.SnapshotIsolation
	case "ser":
		iso = mvcc.Serializable
	default:
		return fmt.Errorf("unknown isolation %q (want rc, si or ser)", isoName)
	}

	var (
		engine *mvcc.Engine
		mix    workload.Mix
		err    error
	)
	switch strings.ToLower(benchName) {
	case "smallbank":
		cfg := workload.SmallBankConfig{Customers: customers, InitialBalance: 1000}
		engine = workload.NewSmallBankEngine(cfg)
		if progList != "" {
			names := strings.Split(progList, ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
			mix, err = workload.SmallBankSubsetMix(cfg, names...)
			if err != nil {
				return err
			}
		} else {
			mix = workload.SmallBankMix(cfg)
		}
	case "auction":
		cfg := workload.AuctionConfig{Buyers: customers}
		engine = workload.NewAuctionEngine(cfg)
		mix = workload.AuctionMix(cfg)
	default:
		return fmt.Errorf("unknown workload %q (want smallbank or auction)", benchName)
	}

	res, err := workload.Run(engine, mix, workload.RunOptions{
		Transactions: txns,
		Workers:      workers,
		Isolation:    iso,
		Seed:         seed,
		Record:       true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("workload: %s  isolation: %s  txns attempted: %d\n", benchName, iso, txns)
	fmt.Printf("committed: %d  aborted: %d\n", res.Commits, res.Aborts)
	fmt.Printf("recorded operations: %d over %d committed transactions\n",
		len(res.Schedule.Order), len(res.Schedule.Txns))
	fmt.Printf("allowed under mvrc: %t\n", res.Schedule.AllowedUnderMVRC())
	cf := 0
	for _, d := range res.Graph.Deps {
		if d.Counterflow {
			cf++
		}
	}
	fmt.Printf("dependencies: %d (%d counterflow)\n", len(res.Graph.Deps), cf)
	if res.Serializable() {
		fmt.Println("execution: conflict SERIALIZABLE")
	} else {
		fmt.Println("execution: NOT conflict serializable — anomaly observed")
		if cycle, ok := res.Graph.FindCycle(); ok {
			fmt.Printf("example cycle: %s\n", cycle)
		}
	}
	return nil
}
