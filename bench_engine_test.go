// Engine and search benchmarks complementing the per-figure harness in
// bench_test.go:
//
//	BenchmarkEngineIsolation/*  — SmallBank throughput on the MVCC engine
//	                              under RC / SI / S2PL, the performance
//	                              motivation the paper cites for running
//	                              robust workloads at the lower level
//	BenchmarkRealizeWitness       — witness realization end to end
//	                                (includes the exhaustive search)
//	BenchmarkSQLParse             — SQL → BTP translation of TPC-C
package mvrc

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/mvcc"
	"repro/internal/realize"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
	"repro/internal/workload"
)

// BenchmarkEngineIsolation measures committed-transaction throughput of the
// robust SmallBank subset {Am, DC, TS} under the three isolation levels.
// The robustness result is what licenses picking the cheapest row: the
// subset is serializable under plain Read Committed.
func BenchmarkEngineIsolation(b *testing.B) {
	cfg := workload.SmallBankConfig{Customers: 4, InitialBalance: 1000}
	for _, iso := range []mvcc.Isolation{mvcc.ReadCommitted, mvcc.SnapshotIsolation, mvcc.Serializable} {
		iso := iso
		b.Run(iso.String(), func(b *testing.B) {
			b.ReportAllocs()
			engine := workload.NewSmallBankEngine(cfg)
			mix, err := workload.SmallBankSubsetMix(cfg, "Am", "DC", "TS")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := workload.Run(engine, mix, workload.RunOptions{
				Transactions: b.N,
				Workers:      8,
				Isolation:    iso,
				Seed:         1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Commits)/float64(b.N), "commit-ratio")
		})
	}
}

// BenchmarkRealizeWitness measures witness realization for {Bal, Am}: the
// static analysis, witness extraction, canonical instantiation and the
// exhaustive counterexample search together.
func BenchmarkRealizeWitness(b *testing.B) {
	b.ReportAllocs()
	bench := benchmarks.SmallBank()
	checker := robust.NewChecker(bench.Schema)
	res, err := checker.Check([]*btp.Program{bench.Program("Balance"), bench.Program("Amalgamate")})
	if err != nil {
		b.Fatal(err)
	}
	if res.Robust {
		b.Fatal("{Bal, Am} should not be robust")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := realize.Witness(bench.Schema, res.Witness, realize.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Outcome != realize.Realized {
			b.Fatalf("outcome = %s", r.Outcome)
		}
	}
}

// BenchmarkSQLParse measures the SQL → BTP translation of the full TPC-C
// program suite.
func BenchmarkSQLParse(b *testing.B) {
	schema := benchmarks.TPCCSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlbtp.Parse(schema, benchmarks.TPCCSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypeIWitnessExtraction measures type-I detection with witness
// assembly on TPC-C (the dense 396-edge graph).
func BenchmarkTypeIWitnessExtraction(b *testing.B) {
	b.ReportAllocs()
	bench := benchmarks.TPCC()
	checker := robust.NewChecker(bench.Schema)
	checker.Method = summary.TypeI
	res, err := checker.Check(bench.Programs)
	if err != nil {
		b.Fatal(err)
	}
	g := res.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := g.HasTypeICycle(); !ok {
			b.Fatal("full TPC-C must have a type-I cycle")
		}
	}
}
