package btp

import (
	"strings"
	"testing"

	"repro/internal/relschema"
)

func testSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"k", "a", "b"}, []string{"k"})
	s.MustAddRelation("S", []string{"k", "c"}, []string{"k"})
	s.MustAddForeignKey("f", "S", []string{"c"}, "R", []string{"k"})
	return s
}

func TestStmtTypeStrings(t *testing.T) {
	want := map[StmtType]string{
		Ins: "ins", KeySel: "key sel", PredSel: "pred sel",
		KeyUpd: "key upd", PredUpd: "pred upd", KeyDel: "key del", PredDel: "pred del",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), s)
		}
	}
}

func TestStmtTypePredicates(t *testing.T) {
	keyBased := map[StmtType]bool{Ins: true, KeySel: true, KeyUpd: true, KeyDel: true}
	predBased := map[StmtType]bool{PredSel: true, PredUpd: true, PredDel: true}
	writes := map[StmtType]bool{Ins: true, KeyUpd: true, PredUpd: true, KeyDel: true, PredDel: true}
	for typ := StmtType(0); typ < NumStmtTypes; typ++ {
		if typ.IsKeyBased() != keyBased[typ] {
			t.Errorf("%s.IsKeyBased() = %t", typ, typ.IsKeyBased())
		}
		if typ.IsPredBased() != predBased[typ] {
			t.Errorf("%s.IsPredBased() = %t", typ, typ.IsPredBased())
		}
		if typ.HasWrite() != writes[typ] {
			t.Errorf("%s.HasWrite() = %t", typ, typ.HasWrite())
		}
	}
}

// TestFigure5Constraints checks statement validation against the type
// constraints of Figure 5.
func TestFigure5Constraints(t *testing.T) {
	s := testSchema()
	valid := []*Stmt{
		NewIns(s, "q1", "R"),
		NewInsAttrs("q2", "R", "a"),
		NewKeyDel(s, "q3", "R"),
		NewPredDel(s, "q4", "R", "a"),
		NewPredDel(s, "q5", "R"), // empty predicate set allowed
		NewKeySel("q6", "R", "a", "b"),
		NewKeySel("q7", "R"), // empty read set allowed
		NewPredSel("q8", "R", []string{"a"}, []string{"b"}),
		NewKeyUpd("q9", "R", []string{"a"}, []string{"b"}),
		NewKeyUpd("q10", "R", nil, []string{"b"}), // empty read set
		NewPredUpd("q11", "R", []string{"a"}, nil, []string{"b"}),
	}
	for _, q := range valid {
		if err := q.Validate(s); err != nil {
			t.Errorf("%s: unexpected error: %v", q.Name, err)
		}
	}
	invalid := []*Stmt{
		{Name: "b1", Type: Ins, Rel: "R"},                                                   // no write set
		{Name: "b2", Type: Ins, Rel: "R", WriteSet: Attrs()},                                // empty write set
		{Name: "b3", Type: Ins, Rel: "R", WriteSet: Attrs("a"), ReadSet: Attrs("a")},        // read set defined
		{Name: "b4", Type: KeyUpd, Rel: "R", ReadSet: Attrs("a"), WriteSet: Attrs()},        // empty write set
		{Name: "b5", Type: KeyUpd, Rel: "R", WriteSet: Attrs("a")},                          // undefined read set
		{Name: "b6", Type: KeySel, Rel: "R", ReadSet: Attrs("a"), WriteSet: Attrs("a")},     // write set defined
		{Name: "b7", Type: KeySel, Rel: "R", ReadSet: Attrs("a"), PReadSet: Attrs("a")},     // pread defined
		{Name: "b8", Type: PredSel, Rel: "R", ReadSet: Attrs("a")},                          // pread undefined
		{Name: "b9", Type: KeySel, Rel: "R", ReadSet: Attrs("nope")},                        // unknown attribute
		{Name: "b10", Type: KeySel, Rel: "Nope", ReadSet: Attrs("a")},                       // unknown relation
		{Name: "", Type: KeySel, Rel: "R", ReadSet: Attrs("a")},                             // unnamed
		{Name: "b11", Type: KeyDel, Rel: "R", WriteSet: Attrs("a")},                         // partial delete write set
		{Name: "b12", Type: PredDel, Rel: "R", WriteSet: AttrsOf(s.Attrs("R"))},             // pread undefined
		{Name: "b13", Type: PredUpd, Rel: "R", ReadSet: Attrs(), WriteSet: Attrs("a")},      // pread undefined
		{Name: "b14", Type: StmtType(99), Rel: "R", ReadSet: Attrs(), WriteSet: Attrs("a")}, // bad type
		{Name: "b15", Type: KeyUpd, Rel: "R", ReadSet: Attrs(), WriteSet: Attrs("a", "no")}, // unknown write attr
		{Name: "b16", Type: PredSel, Rel: "R", ReadSet: Attrs(), PReadSet: Attrs("zzz")},    // unknown pread attr
	}
	for _, q := range invalid {
		if err := q.Validate(s); err == nil {
			t.Errorf("%s (%s): expected validation error", q.Name, q.Type)
		}
	}
}

func TestOptAttrs(t *testing.T) {
	u := Undefined()
	d := Attrs("a")
	if u.Intersects(d) || d.Intersects(u) || u.Intersects(u) {
		t.Error("⊥ must not intersect anything")
	}
	if !d.Intersects(Attrs("a", "b")) {
		t.Error("defined sets should intersect")
	}
	if u.String() != "⊥" || d.String() != "{a}" {
		t.Errorf("String: %q, %q", u, d)
	}
}

func TestProgramValidateAndFKs(t *testing.T) {
	s := testSchema()
	q1 := NewKeyUpd("q1", "R", []string{"a"}, []string{"a"})
	q2 := NewKeySel("q2", "S", "c")
	p := LinearProgram("P", q1, q2)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	// Annotation q1 = f(q2): q2 over dom(f)=S, q1 over range(f)=R, q1 key upd.
	if err := p.AnnotateFK(s, "f", "q2", "q1"); err != nil {
		t.Fatal(err)
	}
	if len(p.FKs) != 1 || p.FKs[0].String() != "q1 = f(q2)" {
		t.Fatalf("FKs = %v", p.FKs)
	}
	// Errors.
	if err := p.AnnotateFK(s, "nosuch", "q2", "q1"); err == nil {
		t.Error("unknown fk accepted")
	}
	if err := p.AnnotateFK(s, "f", "zz", "q1"); err == nil {
		t.Error("unknown source accepted")
	}
	if err := p.AnnotateFK(s, "f", "q2", "zz"); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := p.AnnotateFK(s, "f", "q1", "q2"); err == nil {
		t.Error("wrong relations accepted")
	}
	// Destination must be key-based.
	q3 := NewPredSel("q3", "R", []string{"a"}, []string{"a"})
	p2 := LinearProgram("P2", q2, q3)
	_ = p2
	if err := p2.AnnotateFK(s, "f", "q2", "q3"); err == nil {
		t.Error("pred-based destination accepted")
	}
	// Duplicate statement names rejected.
	dup := LinearProgram("D", NewKeySel("q", "R"), NewKeySel("q", "R"))
	if err := dup.Validate(s); err == nil {
		t.Error("duplicate statement names accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := testSchema()
	q1 := NewKeySel("q1", "R")
	q2 := NewKeySel("q2", "R")
	q3 := NewKeySel("q3", "R")
	p := &Program{
		Name: "P",
		Body: SeqOf(S(q1), ChoiceOf(S(q2), S(q3)), Opt(S(q1)), LoopOf(S(q2))),
	}
	want := "P := q1; (q2 | q3); (q1 | ε); loop(q2)"
	if p.String() != want {
		t.Fatalf("String = %q, want %q", p.String(), want)
	}
	_ = s
}

func TestUnfoldCounts(t *testing.T) {
	q := func(n string) *Stmt { return NewKeySel(n, "R") }
	cases := []struct {
		name string
		body Node
		want int
	}{
		{"linear", Stmts(q("a"), q("b")), 1},
		{"choice", ChoiceOf(S(q("a")), S(q("b"))), 2},
		{"optional", Opt(S(q("a"))), 2},
		{"loop", LoopOf(S(q("a"))), 3},
		{"loop-of-choice", LoopOf(ChoiceOf(S(q("a")), S(q("b")))), 1 + 2 + 4},
		// loop(loop(a)) yields sequences a^0..a^4; duplicates collapse.
		{"nested-loop", LoopOf(LoopOf(S(q("a")))), 5},
		{"two-optionals", SeqOf(Opt(S(q("a"))), Opt(S(q("b")))), 4},
	}
	for _, tc := range cases {
		p := &Program{Name: "P", Body: tc.body}
		got := len(Unfold2(p))
		if got != tc.want {
			t.Errorf("%s: %d unfoldings, want %d", tc.name, got, tc.want)
		}
	}
}

// TestUnfoldLTPProperties checks structural invariants of unfoldings.
func TestUnfoldLTPProperties(t *testing.T) {
	q := func(n string) *Stmt { return NewKeySel(n, "R") }
	p := &Program{
		Name: "P",
		Body: SeqOf(S(q("a")), LoopOf(SeqOf(S(q("b")), Opt(S(q("c"))))), ChoiceOf(S(q("d")), S(q("e")))),
	}
	ltps := Unfold2(p)
	sigs := map[string]bool{}
	for _, l := range ltps {
		// Positions are consecutive.
		for i, occ := range l.Stmts {
			if occ.Pos != i {
				t.Fatalf("%s: occurrence %d has position %d", l.Name, i, occ.Pos)
			}
		}
		// Origin set; names unique.
		if l.Origin != p {
			t.Fatalf("%s: origin lost", l.Name)
		}
		if sigs[l.Name] {
			t.Fatalf("duplicate LTP name %s", l.Name)
		}
		sigs[l.Name] = true
		// No duplicate statement sequences (dedup invariant).
		key := ""
		for _, occ := range l.Stmts {
			key += occ.Stmt.Name + ";"
		}
		if sigs["seq:"+key] {
			t.Fatalf("duplicate unfolding sequence %q", key)
		}
		sigs["seq:"+key] = true
	}
	// Loop bodies appear at most twice per unfolding.
	for _, l := range ltps {
		count := 0
		for _, occ := range l.Stmts {
			if occ.Stmt.Name == "b" {
				count++
			}
		}
		if count > 2 {
			t.Fatalf("%s: loop unfolded %d times (> bound)", l.Name, count)
		}
	}
}

func TestUnfoldBounds(t *testing.T) {
	q := func(n string) *Stmt { return NewKeySel(n, "R") }
	p := &Program{Name: "P", Body: LoopOf(S(q("a")))}
	if got := len(Unfold(p, 0)); got != 1 {
		t.Errorf("bound 0: %d unfoldings, want 1 (empty)", got)
	}
	if got := len(Unfold(p, 1)); got != 2 {
		t.Errorf("bound 1: %d unfoldings, want 2", got)
	}
	if got := len(Unfold(p, 3)); got != 4 {
		t.Errorf("bound 3: %d unfoldings, want 4", got)
	}
	if got := len(Unfold(p, -5)); got != 1 {
		t.Errorf("negative bound: %d unfoldings, want 1", got)
	}
}

func TestLTPHelpers(t *testing.T) {
	qa := NewKeySel("a", "R")
	qb := NewKeySel("b", "R")
	l := NewLTP("L", nil, qa, qb, qa)
	if got := len(l.Occurrences(qa)); got != 2 {
		t.Fatalf("Occurrences = %d", got)
	}
	if !l.HasOccurrenceBefore(qa, 1) {
		t.Error("a occurs before position 1")
	}
	if l.HasOccurrenceBefore(qb, 1) {
		t.Error("b does not occur before position 1")
	}
	if !l.HasOccurrenceBefore(qb, 2) {
		t.Error("b occurs before position 2")
	}
	if !strings.Contains(l.String(), "a; b; a") {
		t.Errorf("String = %q", l.String())
	}
	if l.OriginName() != "L" {
		t.Errorf("OriginName = %q", l.OriginName())
	}
	empty := NewLTP("E", nil)
	if !strings.Contains(empty.String(), "ε") {
		t.Errorf("empty LTP renders as %q", empty.String())
	}
	if !l.Stmts[0].Before(l.Stmts[1]) || l.Stmts[1].Before(l.Stmts[0]) {
		t.Error("Before misbehaves")
	}
}

// TestUnfoldEquivalentSingleton: a program with a single unfolding keeps
// its plain name (TPC-C's StockLevel stays "StockLevel", matching the
// paper's figures).
func TestUnfoldEquivalentSingleton(t *testing.T) {
	p := LinearProgram("Solo", NewKeySel("q1", "R"))
	ltps := Unfold2(p)
	if len(ltps) != 1 || ltps[0].Name != "Solo" {
		t.Fatalf("singleton unfolding misnamed: %v", ltps)
	}
	p2 := &Program{Name: "Two", Body: Opt(S(NewKeySel("q1", "R")))}
	ltps = Unfold2(p2)
	if len(ltps) != 2 || ltps[0].Name != "Two1" || ltps[1].Name != "Two2" {
		t.Fatalf("multi unfolding misnamed: %v, %v", ltps[0].Name, ltps[1].Name)
	}
}
