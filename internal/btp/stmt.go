// Package btp implements the paper's core formalism of Basic Transaction
// Programs (Section 5): statements over relations annotated with read,
// write and predicate-read attribute sets, composed with sequencing,
// conditional branching, optional execution and loops, plus foreign-key
// annotations of the form q_j = f(q_i).
//
// The package also implements Linear Transaction Programs (LTPs, Section
// 6.1) and the Unfold≤2 transformation (Proposition 6.1) that reduces
// robustness of a BTP set to robustness of a finite LTP set.
package btp

import (
	"fmt"
	"strings"

	"repro/internal/relschema"
)

// StmtType enumerates the seven statement types of Figure 5.
type StmtType int

// The statement types. Apart from Ins, every statement starts with a
// retrieval that is either key-based (exactly one tuple) or predicate-based
// (arbitrarily many tuples).
const (
	Ins StmtType = iota
	KeySel
	PredSel
	KeyUpd
	PredUpd
	KeyDel
	PredDel
)

// NumStmtTypes is the number of distinct statement types.
const NumStmtTypes = 7

// String renders the type in the paper's notation.
func (t StmtType) String() string {
	switch t {
	case Ins:
		return "ins"
	case KeySel:
		return "key sel"
	case PredSel:
		return "pred sel"
	case KeyUpd:
		return "key upd"
	case PredUpd:
		return "pred upd"
	case KeyDel:
		return "key del"
	case PredDel:
		return "pred del"
	default:
		return fmt.Sprintf("StmtType(%d)", int(t))
	}
}

// IsKeyBased reports whether the statement type addresses exactly one tuple
// through its primary key. Following Section 5.1, inserts are key-based:
// they create exactly one tuple identified by its key.
func (t StmtType) IsKeyBased() bool {
	switch t {
	case Ins, KeySel, KeyUpd, KeyDel:
		return true
	default:
		return false
	}
}

// IsPredBased reports whether the statement type performs a predicate read.
func (t StmtType) IsPredBased() bool {
	switch t {
	case PredSel, PredUpd, PredDel:
		return true
	default:
		return false
	}
}

// HasWrite reports whether instantiations of this statement type contain
// write operations (W, I or D).
func (t StmtType) HasWrite() bool {
	switch t {
	case Ins, KeyUpd, PredUpd, KeyDel, PredDel:
		return true
	default:
		return false
	}
}

// IsReadOnly reports whether the statement type only observes the database.
// These are exactly the types whose last operation is an R- or PR-operation,
// the set {key sel, pred sel, pred upd, pred del} used in Theorem 6.4 is
// different — see EndsWithReadOrPredRead on Stmt.
func (t StmtType) IsReadOnly() bool {
	return t == KeySel || t == PredSel
}

// OptAttrs is an attribute set that may be undefined (the paper's ⊥).
// The zero value is undefined.
type OptAttrs struct {
	// Defined distinguishes ⊥ (false) from a possibly empty set (true).
	Defined bool
	// Set is the attribute set; meaningful only when Defined.
	Set relschema.AttrSet
}

// Undefined is the ⊥ value.
func Undefined() OptAttrs { return OptAttrs{} }

// Attrs wraps a defined attribute set.
func Attrs(names ...string) OptAttrs {
	return OptAttrs{Defined: true, Set: relschema.NewAttrSet(names...)}
}

// AttrsOf wraps an existing defined attribute set.
func AttrsOf(s relschema.AttrSet) OptAttrs {
	return OptAttrs{Defined: true, Set: s}
}

// Intersects reports whether both sides are defined and share an attribute.
// ⊥ never intersects anything, matching the conventions of Algorithm 1.
func (o OptAttrs) Intersects(p OptAttrs) bool {
	if !o.Defined || !p.Defined {
		return false
	}
	return o.Set.Intersects(p.Set)
}

// String renders the value as ⊥ or the attribute set.
func (o OptAttrs) String() string {
	if !o.Defined {
		return "⊥"
	}
	return o.Set.String()
}

// Stmt is a BTP statement q with its associated functions rel(q), type(q),
// ReadSet(q), WriteSet(q) and PReadSet(q) (Section 5.1).
type Stmt struct {
	// Name is the statement's label, e.g. "q1". Names are unique within a
	// program and used for FK annotations and reporting.
	Name string
	// Type is type(q).
	Type StmtType
	// Rel is rel(q).
	Rel string
	// ReadSet, WriteSet, PReadSet are the attribute-set functions; each may
	// be ⊥ according to the constraints of Figure 5.
	ReadSet  OptAttrs
	WriteSet OptAttrs
	PReadSet OptAttrs
}

// String renders the statement compactly.
func (q *Stmt) String() string {
	return fmt.Sprintf("%s: %s %s R=%s W=%s PR=%s",
		q.Name, q.Type, q.Rel, q.ReadSet, q.WriteSet, q.PReadSet)
}

// EndsWithReadOrPredRead reports whether the last operation of any
// instantiation of q is an R- or PR-operation, i.e. type(q) is in
// {key sel, pred sel, pred upd, pred del} — wait: pred upd ends with a W.
//
// Theorem 6.4 uses the set {key sel, pred sel, pred upd, pred del}: these
// are the types whose instantiations *begin* with (and may entirely consist
// of) R- or PR-operations; in particular a pred upd's chunk starts with a
// predicate read and may update zero tuples, and a pred del's chunk starts
// with a predicate read. The relevant property for the theorem is that the
// operation b_{i-1} giving rise to the dependency can be an R- or
// PR-operation.
func (q *Stmt) EndsWithReadOrPredRead() bool {
	switch q.Type {
	case KeySel, PredSel, PredUpd, PredDel:
		return true
	default:
		return false
	}
}

// Validate checks the statement against the schema and the constraints of
// Figure 5 relating type(q) to the three attribute-set functions.
func (q *Stmt) Validate(schema *relschema.Schema) error {
	if q.Name == "" {
		return fmt.Errorf("btp: statement has no name")
	}
	rel := schema.Relation(q.Rel)
	if rel == nil {
		return fmt.Errorf("btp: statement %s: unknown relation %q", q.Name, q.Rel)
	}
	// The checks are plain helper calls rather than the more natural
	// closure-over-a-rule-table shape: Validate re-runs per session (the
	// analysis memoizes per Session, not per Program), and the closure and
	// slice allocations measurably dominated cold time-to-first-verdict of
	// the streaming enumeration.
	if err := q.checkSubset(rel, "ReadSet", q.ReadSet); err != nil {
		return err
	}
	if err := q.checkSubset(rel, "WriteSet", q.WriteSet); err != nil {
		return err
	}
	if err := q.checkSubset(rel, "PReadSet", q.PReadSet); err != nil {
		return err
	}
	// Figure 5 constraints.
	switch q.Type {
	case Ins:
		// Figure 5 prescribes WriteSet = Attr(rel), but the paper's own
		// TPC-C formalization (Figure 17) inserts into Orders without
		// setting o_carrier_id, so we only require a non-empty subset.
		return firstErr(q.requireDef("WriteSet", q.WriteSet, true),
			q.requireUndef("ReadSet", q.ReadSet), q.requireUndef("PReadSet", q.PReadSet))
	case KeyDel:
		return firstErr(q.requireAll(rel, "WriteSet", q.WriteSet),
			q.requireUndef("ReadSet", q.ReadSet), q.requireUndef("PReadSet", q.PReadSet))
	case PredDel:
		return firstErr(q.requireAll(rel, "WriteSet", q.WriteSet),
			q.requireUndef("ReadSet", q.ReadSet), q.requireDef("PReadSet", q.PReadSet, false))
	case KeySel:
		return firstErr(q.requireUndef("WriteSet", q.WriteSet),
			q.requireDef("ReadSet", q.ReadSet, false), q.requireUndef("PReadSet", q.PReadSet))
	case PredSel:
		return firstErr(q.requireUndef("WriteSet", q.WriteSet),
			q.requireDef("ReadSet", q.ReadSet, false), q.requireDef("PReadSet", q.PReadSet, false))
	case KeyUpd:
		return firstErr(q.requireDef("WriteSet", q.WriteSet, true),
			q.requireDef("ReadSet", q.ReadSet, false), q.requireUndef("PReadSet", q.PReadSet))
	case PredUpd:
		return firstErr(q.requireDef("WriteSet", q.WriteSet, true),
			q.requireDef("ReadSet", q.ReadSet, false), q.requireDef("PReadSet", q.PReadSet, false))
	default:
		return fmt.Errorf("btp: statement %s: invalid type %d", q.Name, int(q.Type))
	}
}

// firstErr returns the first non-nil error of the three per-type checks.
func firstErr(a, b, c error) error {
	if a != nil {
		return a
	}
	if b != nil {
		return b
	}
	return c
}

func (q *Stmt) checkSubset(rel *relschema.Relation, label string, o OptAttrs) error {
	if o.Defined && !o.Set.SubsetOf(rel.Attrs) {
		return fmt.Errorf("btp: statement %s: %s %v not a subset of Attr(%s)", q.Name, label, o.Set, q.Rel)
	}
	return nil
}

func (q *Stmt) requireUndef(label string, o OptAttrs) error {
	if o.Defined {
		return fmt.Errorf("btp: statement %s (%s): %s must be ⊥", q.Name, q.Type, label)
	}
	return nil
}

func (q *Stmt) requireDef(label string, o OptAttrs, nonEmpty bool) error {
	if !o.Defined {
		return fmt.Errorf("btp: statement %s (%s): %s must be defined", q.Name, q.Type, label)
	}
	if nonEmpty && o.Set.Empty() {
		return fmt.Errorf("btp: statement %s (%s): %s must be non-empty", q.Name, q.Type, label)
	}
	return nil
}

func (q *Stmt) requireAll(rel *relschema.Relation, label string, o OptAttrs) error {
	if !o.Defined || !o.Set.Equal(rel.Attrs) {
		return fmt.Errorf("btp: statement %s (%s): %s must equal Attr(%s)", q.Name, q.Type, label, q.Rel)
	}
	return nil
}

// Convenience constructors. Each fills the attribute-set functions per
// Figure 5; insert and delete constructors derive the full write set from
// the schema.

// NewIns builds an insertion statement over rel. WriteSet is Attr(rel).
func NewIns(schema *relschema.Schema, name, rel string) *Stmt {
	return &Stmt{Name: name, Type: Ins, Rel: rel,
		WriteSet: AttrsOf(schema.Attrs(rel).Clone())}
}

// NewInsAttrs builds an insertion statement that sets only the listed
// attributes, for INSERT statements that leave some columns at their
// defaults (e.g. TPC-C's NewOrder insert into Orders, which does not set
// o_carrier_id — see Figure 17).
func NewInsAttrs(name, rel string, write ...string) *Stmt {
	return &Stmt{Name: name, Type: Ins, Rel: rel, WriteSet: Attrs(write...)}
}

// NewKeyDel builds a key-based deletion statement over rel.
func NewKeyDel(schema *relschema.Schema, name, rel string) *Stmt {
	return &Stmt{Name: name, Type: KeyDel, Rel: rel,
		WriteSet: AttrsOf(schema.Attrs(rel).Clone())}
}

// NewPredDel builds a predicate-based deletion over rel with the given
// predicate attributes.
func NewPredDel(schema *relschema.Schema, name, rel string, pread ...string) *Stmt {
	return &Stmt{Name: name, Type: PredDel, Rel: rel,
		WriteSet: AttrsOf(schema.Attrs(rel).Clone()),
		PReadSet: Attrs(pread...)}
}

// NewKeySel builds a key-based selection over rel reading the given
// attributes.
func NewKeySel(name, rel string, read ...string) *Stmt {
	return &Stmt{Name: name, Type: KeySel, Rel: rel, ReadSet: Attrs(read...)}
}

// NewPredSel builds a predicate-based selection over rel.
func NewPredSel(name, rel string, pread, read []string) *Stmt {
	return &Stmt{Name: name, Type: PredSel, Rel: rel,
		PReadSet: Attrs(pread...), ReadSet: Attrs(read...)}
}

// NewKeyUpd builds a key-based update over rel.
func NewKeyUpd(name, rel string, read, write []string) *Stmt {
	return &Stmt{Name: name, Type: KeyUpd, Rel: rel,
		ReadSet: Attrs(read...), WriteSet: Attrs(write...)}
}

// NewPredUpd builds a predicate-based update over rel.
func NewPredUpd(name, rel string, pread, read, write []string) *Stmt {
	return &Stmt{Name: name, Type: PredUpd, Rel: rel,
		PReadSet: Attrs(pread...), ReadSet: Attrs(read...), WriteSet: Attrs(write...)}
}

// FKConstraint is a foreign-key annotation q_j = f(q_i) on a program
// (Section 5.1): every tuple accessed by an instantiation of Dst equals the
// f-image of every tuple accessed by an instantiation of Src. Src must be
// over dom(f), Dst over range(f), and Dst must be key-based.
type FKConstraint struct {
	// FK is the name of the foreign key f.
	FK string
	// Src is q_i, the statement over dom(f).
	Src *Stmt
	// Dst is q_j, the key-based statement over range(f).
	Dst *Stmt
}

// String renders the annotation in the paper's "q_j = f(q_i)" form.
func (c FKConstraint) String() string {
	return fmt.Sprintf("%s = %s(%s)", c.Dst.Name, c.FK, c.Src.Name)
}

func joinStmtNames(qs []*Stmt) string {
	names := make([]string, len(qs))
	for i, q := range qs {
		names[i] = q.Name
	}
	return strings.Join(names, "; ")
}
