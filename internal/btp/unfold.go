package btp

import (
	"fmt"
	"strings"
)

// StmtOcc is one occurrence of a statement within an LTP. A statement can
// occur several times in an LTP when loop unfolding duplicates it; each
// occurrence has its own position, which Algorithm 2 compares with <_P.
type StmtOcc struct {
	// Stmt is the underlying BTP statement.
	Stmt *Stmt
	// Pos is the zero-based position of this occurrence within the LTP.
	Pos int
}

// Before reports whether o occurs strictly before p in the LTP (o <_P p).
func (o *StmtOcc) Before(p *StmtOcc) bool { return o.Pos < p.Pos }

// String renders the occurrence as "q3@2".
func (o *StmtOcc) String() string { return fmt.Sprintf("%s@%d", o.Stmt.Name, o.Pos) }

// LTP is a linear transaction program: a branch- and loop-free sequence of
// statement occurrences obtained from a BTP by unfolding (Section 6.1). The
// empty sequence is a valid LTP (e.g. the zero-iteration unfolding of a
// program that is a single loop).
type LTP struct {
	// Name identifies the unfolding, e.g. "PlaceBid1".
	Name string
	// Origin is the BTP this LTP was unfolded from; nil for LTPs built
	// directly.
	Origin *Program
	// Stmts is the occurrence sequence.
	Stmts []*StmtOcc
}

// Statements returns the underlying statement of every occurrence.
func (l *LTP) Statements() []*Stmt {
	out := make([]*Stmt, len(l.Stmts))
	for i, o := range l.Stmts {
		out[i] = o.Stmt
	}
	return out
}

// OriginName returns the name of the originating BTP, falling back to the
// LTP's own name.
func (l *LTP) OriginName() string {
	if l.Origin != nil {
		return l.Origin.Name
	}
	return l.Name
}

// FKs returns the foreign-key annotations inherited from the origin BTP.
// Annotations whose statements do not occur in this unfolding are still
// returned; they are simply vacuous for it.
func (l *LTP) FKs() []FKConstraint {
	if l.Origin == nil {
		return nil
	}
	return l.Origin.FKs
}

// Occurrences returns every occurrence of the given statement in the LTP,
// in position order.
func (l *LTP) Occurrences(q *Stmt) []*StmtOcc {
	var out []*StmtOcc
	for _, o := range l.Stmts {
		if o.Stmt == q {
			out = append(out, o)
		}
	}
	return out
}

// HasOccurrenceBefore reports whether some occurrence of q appears at a
// position strictly before pos. Used by the foreign-key suppression check
// of Algorithm 1 lifted to occurrence level.
func (l *LTP) HasOccurrenceBefore(q *Stmt, pos int) bool {
	for _, o := range l.Stmts {
		if o.Pos >= pos {
			return false
		}
		if o.Stmt == q {
			return true
		}
	}
	return false
}

// String renders the LTP as "Name := q1; q2; ...".
func (l *LTP) String() string {
	names := make([]string, len(l.Stmts))
	for i, o := range l.Stmts {
		names[i] = o.Stmt.Name
	}
	body := strings.Join(names, "; ")
	if body == "" {
		body = "ε"
	}
	return l.Name + " := " + body
}

// signature is a canonical key for de-duplicating identical unfoldings.
func (l *LTP) signature() string {
	names := make([]string, len(l.Stmts))
	for i, o := range l.Stmts {
		names[i] = o.Stmt.Name
	}
	return strings.Join(names, "\x00")
}

// NewLTP builds an LTP directly from a statement sequence (positions are
// assigned in order). Origin is optional.
func NewLTP(name string, origin *Program, qs ...*Stmt) *LTP {
	l := &LTP{Name: name, Origin: origin}
	for i, q := range qs {
		l.Stmts = append(l.Stmts, &StmtOcc{Stmt: q, Pos: i})
	}
	return l
}

// DefaultUnfoldBound is the loop-unfolding bound of Proposition 6.1: two
// iterations per loop suffice for robustness detection against MVRC.
const DefaultUnfoldBound = 2

// Unfold computes the set of LTPs obtained from p by replacing every
// loop(P1) with 0..bound repetitions of (an unfolding of) P1, every
// (P1 | P2) with an unfolding of P1 or of P2, and every (P1 | ε) with an
// unfolding of P1 or the empty sequence (Section 6.1).
//
// Unfoldings are returned in a deterministic order (first branch first,
// fewer loop iterations first) and named Name1, Name2, ... — except that a
// program with a single unfolding keeps its plain name. Exact duplicate
// unfoldings (possible with degenerate programs such as (q | q)) are
// removed.
func Unfold(p *Program, bound int) []*LTP {
	if bound < 0 {
		bound = 0
	}
	if isLinear(p.Body) {
		// A loop- and branch-free body has exactly one unfolding: itself.
		// Skipping the general enumeration (and its signature-keyed dedup
		// map) matters because unfolding re-runs per analysis session and
		// sits on the cold time-to-first-verdict path of the streaming
		// enumeration — and every benchmark program without a loop or
		// branch takes this path.
		var buf [16]*Stmt
		qs := buf[:0]
		p.Body.collectStmts(&qs)
		l := &LTP{Name: p.Name, Origin: p, Stmts: make([]*StmtOcc, len(qs))}
		for i, q := range qs {
			l.Stmts[i] = &StmtOcc{Stmt: q, Pos: i}
		}
		return []*LTP{l}
	}
	seqs := unfoldNode(p.Body, bound)
	seen := make(map[string]bool, len(seqs))
	var out []*LTP
	for _, qs := range seqs {
		l := &LTP{Origin: p}
		for i, q := range qs {
			l.Stmts = append(l.Stmts, &StmtOcc{Stmt: q, Pos: i})
		}
		sig := l.signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, l)
	}
	if len(out) == 1 {
		out[0].Name = p.Name
	} else {
		for i, l := range out {
			l.Name = fmt.Sprintf("%s%d", p.Name, i+1)
		}
	}
	return out
}

// Unfold2 applies Unfold with the paper's bound of two (Unfold≤2).
func Unfold2(p *Program) []*LTP { return Unfold(p, DefaultUnfoldBound) }

// UnfoldAll unfolds every program of the set and concatenates the results,
// preserving program order.
func UnfoldAll(ps []*Program, bound int) []*LTP {
	var out []*LTP
	for _, p := range ps {
		out = append(out, Unfold(p, bound)...)
	}
	return out
}

// UnfoldAll2 is UnfoldAll with the default bound of two.
func UnfoldAll2(ps []*Program) []*LTP { return UnfoldAll(ps, DefaultUnfoldBound) }

// isLinear reports whether the subtree is free of loops and branches, i.e.
// already an LTP.
func isLinear(n Node) bool {
	switch n := n.(type) {
	case *StmtNode:
		return true
	case *Seq:
		for _, item := range n.Items {
			if !isLinear(item) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// unfoldNode returns every statement sequence derivable from the node under
// the given loop bound. The enumeration order is deterministic: for a
// choice, the first branch's unfoldings come first; for an optional, the
// non-empty unfoldings come first; for a loop, unfoldings with fewer
// iterations come first.
func unfoldNode(n Node, bound int) [][]*Stmt {
	switch n := n.(type) {
	case *StmtNode:
		return [][]*Stmt{{n.Stmt}}
	case *Seq:
		acc := [][]*Stmt{{}}
		for _, item := range n.Items {
			next := unfoldNode(item, bound)
			var grown [][]*Stmt
			for _, prefix := range acc {
				for _, suffix := range next {
					seq := make([]*Stmt, 0, len(prefix)+len(suffix))
					seq = append(seq, prefix...)
					seq = append(seq, suffix...)
					grown = append(grown, seq)
				}
			}
			acc = grown
		}
		return acc
	case *Choice:
		return append(unfoldNode(n.A, bound), unfoldNode(n.B, bound)...)
	case *Optional:
		return append(unfoldNode(n.A, bound), []*Stmt{})
	case *Loop:
		body := unfoldNode(n.Body, bound)
		// k repetitions for k = 0..bound; each repetition independently
		// picks a body unfolding.
		out := [][]*Stmt{{}}
		reps := [][]*Stmt{{}}
		for k := 1; k <= bound; k++ {
			var grown [][]*Stmt
			for _, prefix := range reps {
				for _, b := range body {
					seq := make([]*Stmt, 0, len(prefix)+len(b))
					seq = append(seq, prefix...)
					seq = append(seq, b...)
					grown = append(grown, seq)
				}
			}
			reps = grown
			out = append(out, reps...)
		}
		return out
	default:
		panic(fmt.Sprintf("btp: unknown node type %T", n))
	}
}
