package btp

import (
	"fmt"
	"strings"

	"repro/internal/relschema"
)

// Node is a node of the BTP syntax tree
//
//	P ← loop(P) | (P | P) | (P | ε) | P; P | q
//
// Implementations: *StmtNode, *Seq, *Choice, *Optional, *Loop.
type Node interface {
	// btpNode is a marker restricting implementations to this package's
	// node kinds.
	btpNode()
	// render writes the node in the paper's textual syntax.
	render(b *strings.Builder)
	// collectStmts appends every statement reachable in the subtree in
	// syntactic order.
	collectStmts(out *[]*Stmt)
}

// StmtNode wraps a single statement q.
type StmtNode struct{ Stmt *Stmt }

// Seq is the sequential composition P1; P2; ...; Pk.
type Seq struct{ Items []Node }

// Choice is the branching (P1 | P2).
type Choice struct{ A, B Node }

// Optional is the branching (P | ε).
type Optional struct{ A Node }

// Loop is loop(P): P repeated an arbitrary finite number of times.
type Loop struct{ Body Node }

func (*StmtNode) btpNode() {}
func (*Seq) btpNode()      {}
func (*Choice) btpNode()   {}
func (*Optional) btpNode() {}
func (*Loop) btpNode()     {}

func (n *StmtNode) render(b *strings.Builder) { b.WriteString(n.Stmt.Name) }

func (n *Seq) render(b *strings.Builder) {
	for i, item := range n.Items {
		if i > 0 {
			b.WriteString("; ")
		}
		item.render(b)
	}
}

func (n *Choice) render(b *strings.Builder) {
	b.WriteString("(")
	n.A.render(b)
	b.WriteString(" | ")
	n.B.render(b)
	b.WriteString(")")
}

func (n *Optional) render(b *strings.Builder) {
	b.WriteString("(")
	n.A.render(b)
	b.WriteString(" | ε)")
}

func (n *Loop) render(b *strings.Builder) {
	b.WriteString("loop(")
	n.Body.render(b)
	b.WriteString(")")
}

func (n *StmtNode) collectStmts(out *[]*Stmt) { *out = append(*out, n.Stmt) }
func (n *Seq) collectStmts(out *[]*Stmt) {
	for _, item := range n.Items {
		item.collectStmts(out)
	}
}
func (n *Choice) collectStmts(out *[]*Stmt) {
	n.A.collectStmts(out)
	n.B.collectStmts(out)
}
func (n *Optional) collectStmts(out *[]*Stmt) { n.A.collectStmts(out) }
func (n *Loop) collectStmts(out *[]*Stmt)     { n.Body.collectStmts(out) }

// Convenience constructors for nodes.

// S wraps a statement into a node.
func S(q *Stmt) Node { return &StmtNode{Stmt: q} }

// SeqOf builds a sequence node; statements and nodes can be mixed via S.
func SeqOf(items ...Node) Node { return &Seq{Items: items} }

// Stmts builds a sequence node directly from statements.
func Stmts(qs ...*Stmt) Node {
	items := make([]Node, len(qs))
	for i, q := range qs {
		items[i] = S(q)
	}
	return &Seq{Items: items}
}

// ChoiceOf builds (a | b).
func ChoiceOf(a, b Node) Node { return &Choice{A: a, B: b} }

// Opt builds (a | ε).
func Opt(a Node) Node { return &Optional{A: a} }

// LoopOf builds loop(body).
func LoopOf(body Node) Node { return &Loop{Body: body} }

// Program is a basic transaction program: a name, a syntax tree, and a set
// of foreign-key annotations.
type Program struct {
	// Name identifies the program (e.g. "PlaceBid").
	Name string
	// Abbrev is the short label used in experiment reports (e.g. "PB").
	// Defaults to Name when empty.
	Abbrev string
	// Body is the syntax tree.
	Body Node
	// FKs are the program's foreign-key annotations q_j = f(q_i).
	FKs []FKConstraint
}

// ShortName returns the abbreviation if set, otherwise the full name.
func (p *Program) ShortName() string {
	if p.Abbrev != "" {
		return p.Abbrev
	}
	return p.Name
}

// Statements returns every statement of the program in syntactic order.
// Statements inside loops and branches appear once.
func (p *Program) Statements() []*Stmt {
	var out []*Stmt
	p.Body.collectStmts(&out)
	return out
}

// StatementByName returns the named statement, or nil if absent.
func (p *Program) StatementByName(name string) *Stmt {
	for _, q := range p.Statements() {
		if q.Name == name {
			return q
		}
	}
	return nil
}

// String renders the program in the paper's "Name := q1; (q2 | ε); ..."
// notation.
func (p *Program) String() string {
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteString(" := ")
	p.Body.render(&b)
	return b.String()
}

// AnnotateFK adds a foreign-key annotation q_j = f(q_i) by statement name.
// It validates the annotation against the schema: srcName must be over
// dom(f), dstName over range(f), and the destination must be key-based.
func (p *Program) AnnotateFK(schema *relschema.Schema, fk, srcName, dstName string) error {
	f := schema.ForeignKey(fk)
	if f == nil {
		return fmt.Errorf("btp: program %s: unknown foreign key %q", p.Name, fk)
	}
	src := p.StatementByName(srcName)
	if src == nil {
		return fmt.Errorf("btp: program %s: unknown statement %q in FK annotation", p.Name, srcName)
	}
	dst := p.StatementByName(dstName)
	if dst == nil {
		return fmt.Errorf("btp: program %s: unknown statement %q in FK annotation", p.Name, dstName)
	}
	if src.Rel != f.Dom {
		return fmt.Errorf("btp: program %s: annotation %s=%s(%s): %s is over %s, not dom(%s)=%s",
			p.Name, dstName, fk, srcName, srcName, src.Rel, fk, f.Dom)
	}
	if dst.Rel != f.Range {
		return fmt.Errorf("btp: program %s: annotation %s=%s(%s): %s is over %s, not range(%s)=%s",
			p.Name, dstName, fk, srcName, dstName, dst.Rel, fk, f.Range)
	}
	if !dst.Type.IsKeyBased() {
		return fmt.Errorf("btp: program %s: annotation %s=%s(%s): destination must be key-based, got %s",
			p.Name, dstName, fk, srcName, dst.Type)
	}
	p.FKs = append(p.FKs, FKConstraint{FK: fk, Src: src, Dst: dst})
	return nil
}

// MustAnnotateFK is AnnotateFK but panics on error; for static benchmark
// definitions.
func (p *Program) MustAnnotateFK(schema *relschema.Schema, fk, srcName, dstName string) {
	if err := p.AnnotateFK(schema, fk, srcName, dstName); err != nil {
		panic(err)
	}
}

// Validate checks every statement of the program against the schema, checks
// name uniqueness, and checks FK annotations.
func (p *Program) Validate(schema *relschema.Schema) error {
	if p.Name == "" {
		return fmt.Errorf("btp: program has no name")
	}
	// Programs are small (the benchmarks top out around a dozen statements),
	// so duplicate detection is a linear scan over the already-seen prefix —
	// no map, and the statement slice is collected into a stack buffer.
	// Validate re-runs per session; its allocations were a measurable slice
	// of cold time-to-first-verdict in the streaming enumeration.
	var buf [16]*Stmt
	stmts := buf[:0]
	p.Body.collectStmts(&stmts)
	for i, q := range stmts {
		for _, prev := range stmts[:i] {
			if prev.Name == q.Name {
				return fmt.Errorf("btp: program %s: duplicate statement name %q", p.Name, q.Name)
			}
		}
		if err := q.Validate(schema); err != nil {
			return fmt.Errorf("btp: program %s: %w", p.Name, err)
		}
	}
	for _, c := range p.FKs {
		f := schema.ForeignKey(c.FK)
		if f == nil {
			return fmt.Errorf("btp: program %s: annotation %s references unknown foreign key", p.Name, c)
		}
		if c.Src.Rel != f.Dom || c.Dst.Rel != f.Range || !c.Dst.Type.IsKeyBased() {
			return fmt.Errorf("btp: program %s: malformed annotation %s", p.Name, c)
		}
	}
	return nil
}

// LinearProgram creates a loop- and branch-free program from a statement
// sequence; a convenience for programs that are already linear.
func LinearProgram(name string, qs ...*Stmt) *Program {
	return &Program{Name: name, Body: Stmts(qs...)}
}
