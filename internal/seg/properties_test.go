package seg

import (
	"math/rand"
	"testing"

	"repro/internal/relschema"
	"repro/internal/schedule"
)

// randomTxns generates small random transactions over two relations with a
// handful of tuples, including predicate reads, inserts and deletes, in the
// strict one-read/one-write-per-tuple form.
func randomTxns(rng *rand.Rand, s *relschema.Schema) []*schedule.Transaction {
	tuples := []schedule.TupleID{
		schedule.Tuple("R", "x"), schedule.Tuple("R", "y"), schedule.Tuple("S", "u"),
	}
	n := 2 + rng.Intn(2)
	var txns []*schedule.Transaction
	for i := 1; i <= n; i++ {
		t := schedule.NewTransaction(i)
		read := map[schedule.TupleID]bool{}
		written := map[schedule.TupleID]bool{}
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			tu := tuples[rng.Intn(len(tuples))]
			attrs := []string{"a"}
			if rng.Intn(2) == 0 {
				attrs = []string{"a", "b"}
			}
			switch rng.Intn(4) {
			case 0: // read
				if read[tu] {
					continue
				}
				read[tu] = true
				t.Read(tu, attrs...)
			case 1: // key update chunk
				if read[tu] || written[tu] {
					continue
				}
				read[tu], written[tu] = true, true
				r := t.Read(tu, attrs...)
				w := t.Write(tu, attrs...)
				t.AddChunk(r.Index, w.Index)
			case 2: // blind write
				if written[tu] {
					continue
				}
				written[tu] = true
				t.Write(tu, attrs...)
			case 3: // predicate selection over the tuple's relation
				pr := t.PredRead(tu.Rel, "a")
				last := pr
				for _, cand := range tuples {
					if cand.Rel == tu.Rel && !read[cand] && rng.Intn(2) == 0 {
						read[cand] = true
						last = t.Read(cand, "a")
					}
				}
				t.AddChunk(pr.Index, last.Index)
			}
		}
		if len(t.Ops) == 0 {
			t.Read(tuples[0], "a")
		}
		t.Commit()
		txns = append(txns, t)
	}
	return txns
}

// randomMVRCSchedule interleaves the transactions respecting program order,
// chunks and the no-dirty-write rule, producing a schedule that is allowed
// under MVRC by construction. Entering an atomic chunk requires every write
// inside it to be unblocked (otherwise the chunk could force a dirty
// write); on a lock deadlock the attempt is abandoned and generation
// restarts with a fresh interleaving.
func randomMVRCSchedule(rng *rand.Rand, s *relschema.Schema, txns []*schedule.Transaction) *schedule.Schedule {
	total := 0
	for _, t := range txns {
		total += len(t.Ops)
	}
	chunkOf := func(t *schedule.Transaction, oi int) (schedule.Chunk, bool) {
		for _, c := range t.Chunks {
			if c.From <= oi && oi <= c.To {
				return c, true
			}
		}
		return schedule.Chunk{}, false
	}
	for attempt := 0; ; attempt++ {
		next := make([]int, len(txns))
		uncommitted := map[schedule.TupleID]int{}
		inChunk := -1
		var order []*schedule.Op
		deadlocked := false
		for len(order) < total && !deadlocked {
			var eligible []int
			for ti, t := range txns {
				if inChunk >= 0 && inChunk != ti {
					continue
				}
				oi := next[ti]
				if oi >= len(t.Ops) {
					continue
				}
				// Look ahead to the end of the chunk (or just this op):
				// every write in range must be unblocked.
				end := oi
				if c, ok := chunkOf(t, oi); ok {
					end = c.To
				}
				blocked := false
				for j := oi; j <= end; j++ {
					op := t.Ops[j]
					if op.IsWrite() {
						if holder, ok := uncommitted[op.TupleRef]; ok && holder != ti {
							blocked = true
							break
						}
					}
				}
				if blocked {
					continue
				}
				eligible = append(eligible, ti)
			}
			if len(eligible) == 0 {
				deadlocked = true
				break
			}
			ti := eligible[rng.Intn(len(eligible))]
			t := txns[ti]
			op := t.Ops[next[ti]]
			if op.IsWrite() {
				uncommitted[op.TupleRef] = ti
			}
			if op.Kind == schedule.OpCommit {
				for tu, h := range uncommitted {
					if h == ti {
						delete(uncommitted, tu)
					}
				}
			}
			if c, ok := chunkOf(t, next[ti]); ok && next[ti] < c.To {
				inChunk = ti
			} else {
				inChunk = -1
			}
			next[ti]++
			order = append(order, op)
		}
		if deadlocked {
			if attempt > 100 {
				panic("randomMVRCSchedule: persistent deadlock")
			}
			continue
		}
		sch, err := schedule.FromOrder(s, txns, order)
		if err != nil {
			panic(err)
		}
		return sch
	}
}

func propertySchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"k", "a", "b"}, []string{"k"})
	s.MustAddRelation("S", []string{"k", "a", "b"}, []string{"k"})
	return s
}

// TestRandomMVRCSchedulesAreAllowed sanity-checks the generator: every
// schedule it produces passes the MVRC admission checks.
func TestRandomMVRCSchedulesAreAllowed(t *testing.T) {
	s := propertySchema()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		txns := randomTxns(rng, s)
		sch := randomMVRCSchedule(rng, s, txns)
		if !sch.AllowedUnderMVRC() {
			t.Fatalf("iteration %d: generated schedule not allowed under MVRC:\n%s", i, sch)
		}
	}
}

// TestLemma41Random asserts Lemma 4.1 on random MVRC schedules: only
// (predicate) rw-antidependencies are counterflow.
func TestLemma41Random(t *testing.T) {
	s := propertySchema()
	rng := rand.New(rand.NewSource(29))
	counterflowSeen := 0
	for i := 0; i < 800; i++ {
		txns := randomTxns(rng, s)
		sch := randomMVRCSchedule(rng, s, txns)
		g := Build(sch)
		for _, d := range g.Deps {
			if d.Counterflow {
				counterflowSeen++
				if d.Kind != RW && d.Kind != PredRW {
					t.Fatalf("iteration %d: counterflow %s dependency violates Lemma 4.1: %s\nschedule: %s",
						i, d.Kind, d, sch)
				}
			}
		}
	}
	if counterflowSeen == 0 {
		t.Fatal("generator produced no counterflow dependencies; property vacuous")
	}
}

// TestTheorem42Random asserts Theorem 4.2 on random MVRC schedules: every
// simple cycle of the serialization graph (under every labeling realized)
// is a type-II cycle.
func TestTheorem42Random(t *testing.T) {
	s := propertySchema()
	rng := rand.New(rand.NewSource(31))
	cyclesSeen := 0
	for i := 0; i < 800; i++ {
		txns := randomTxns(rng, s)
		sch := randomMVRCSchedule(rng, s, txns)
		g := Build(sch)
		if g.IsConflictSerializable() {
			continue
		}
		for _, c := range g.SimpleCycles() {
			cyclesSeen++
			if !c.IsTypeI() {
				t.Fatalf("iteration %d: cycle without counterflow dependency: %s\nschedule: %s", i, c, sch)
			}
			if !c.IsTypeII() {
				t.Fatalf("iteration %d: cycle violates Theorem 4.2: %s\nschedule: %s", i, c, sch)
			}
		}
	}
	if cyclesSeen == 0 {
		t.Fatal("generator produced no cycles; property vacuous")
	}
}

// TestSerialSchedulesSerializable: serial schedules are always conflict
// serializable and dependency directions follow the serial order.
func TestSerialSchedulesSerializable(t *testing.T) {
	s := propertySchema()
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 300; i++ {
		txns := randomTxns(rng, s)
		var order []*schedule.Op
		for _, t := range txns {
			order = append(order, t.Ops...)
		}
		sch, err := schedule.FromOrder(s, txns, order)
		if err != nil {
			t.Fatal(err)
		}
		if !sch.IsSerial() {
			t.Fatal("serial order not serial")
		}
		g := Build(sch)
		if !g.IsConflictSerializable() {
			t.Fatalf("iteration %d: serial schedule not serializable: %v", i, g.Deps)
		}
		for _, d := range g.Deps {
			if d.Counterflow {
				t.Fatalf("iteration %d: serial schedule has counterflow dependency %s", i, d)
			}
			if d.From.Txn.ID > d.To.Txn.ID {
				t.Fatalf("iteration %d: dependency against serial order: %s", i, d)
			}
		}
	}
}

// TestFindCycleAgreesWithHasCycle cross-checks the linear-time cycle
// extractor against the boolean cycle test.
func TestFindCycleAgreesWithHasCycle(t *testing.T) {
	s := propertySchema()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		txns := randomTxns(rng, s)
		sch := randomMVRCSchedule(rng, s, txns)
		g := Build(sch)
		cycle, found := g.FindCycle()
		if found != g.HasCycle() {
			t.Fatalf("iteration %d: FindCycle=%t HasCycle=%t", i, found, g.HasCycle())
		}
		if found {
			// The returned cycle must be closed and consistent.
			n := len(cycle.Deps)
			if n == 0 || len(cycle.Txns) != n {
				t.Fatalf("iteration %d: malformed cycle %v", i, cycle)
			}
			for j, d := range cycle.Deps {
				if d.From.Txn != cycle.Txns[j] {
					t.Fatalf("iteration %d: dep %d source mismatch", i, j)
				}
				if d.To.Txn != cycle.Txns[(j+1)%n] {
					t.Fatalf("iteration %d: dep %d target mismatch", i, j)
				}
			}
		}
	}
}
