package seg

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/schedule"
)

// buildFigure3 constructs the schedule s of Figure 3: T1 and T2 are
// instantiations of PlaceBid (T1 without the conditional update q5, T2 with
// it) and T3 is an instantiation of FindBids.
func buildFigure3(t *testing.T) (*schedule.Schedule, [3]*schedule.Transaction) {
	t.Helper()
	sch := benchmarks.AuctionSchema()

	t1 := schedule.NewTransaction(1) // PlaceBid2 = q3; q4; q6
	t1.Label = "PlaceBid2"
	t1r := t1.Read(schedule.Tuple("Buyer", "t1"), "calls")
	t1w := t1.Write(schedule.Tuple("Buyer", "t1"), "calls")
	t1.AddChunk(t1r.Index, t1w.Index)
	t1.Read(schedule.Tuple("Bids", "u1"), "bid")
	t1.Insert(schedule.Tuple("Log", "l1"), sch.Attrs("Log"))
	t1.Commit()

	t2 := schedule.NewTransaction(2) // PlaceBid1 = q3; q4; q5; q6
	t2.Label = "PlaceBid1"
	t2r := t2.Read(schedule.Tuple("Buyer", "t1"), "calls")
	t2w := t2.Write(schedule.Tuple("Buyer", "t1"), "calls")
	t2.AddChunk(t2r.Index, t2w.Index)
	t2.Read(schedule.Tuple("Bids", "u1"), "bid")
	t2.Write(schedule.Tuple("Bids", "u1"), "bid")
	t2.Insert(schedule.Tuple("Log", "l2"), sch.Attrs("Log"))
	t2.Commit()

	t3 := schedule.NewTransaction(3) // FindBids = q1; q2
	t3.Label = "FindBids"
	t3r := t3.Read(schedule.Tuple("Buyer", "t2"), "calls")
	t3w := t3.Write(schedule.Tuple("Buyer", "t2"), "calls")
	t3.AddChunk(t3r.Index, t3w.Index)
	pr := t3.PredRead("Bids", "bid")
	t3.Read(schedule.Tuple("Bids", "u1"), "bid")
	t3.Read(schedule.Tuple("Bids", "u2"), "bid")
	last := t3.Read(schedule.Tuple("Bids", "u3"), "bid")
	t3.AddChunk(pr.Index, last.Index)
	t3.Commit()

	// Interleaving: T1 entirely; T2 up to its read of u1; T3 entirely
	// except commit; T2's update of u1, insert and commit; T3's commit.
	order := []*schedule.Op{
		t1.Ops[0], t1.Ops[1], t1.Ops[2], t1.Ops[3], t1.Ops[4], // T1 ... C1
		t2.Ops[0], t2.Ops[1], t2.Ops[2], // R2[t1] W2[t1] R2[u1]
		t3.Ops[0], t3.Ops[1], t3.Ops[2], t3.Ops[3], t3.Ops[4], t3.Ops[5], // T3 up to R3[u3]
		t2.Ops[3], t2.Ops[4], t2.Ops[5], // W2[u1] I2[l2] C2
		t3.Ops[6], // C3
	}
	s, err := schedule.FromOrder(sch, []*schedule.Transaction{t1, t2, t3}, order)
	if err != nil {
		t.Fatalf("FromOrder: %v", err)
	}
	return s, [3]*schedule.Transaction{t1, t2, t3}
}

// TestFigure3AllowedUnderMVRC asserts that the running-example schedule is
// allowed under MVRC.
func TestFigure3AllowedUnderMVRC(t *testing.T) {
	s, _ := buildFigure3(t)
	if dirty, b, a := s.ExhibitsDirtyWrite(); dirty {
		t.Fatalf("unexpected dirty write: %s then %s", b, a)
	}
	if !s.ChunksRespected() {
		t.Fatal("chunks should be respected")
	}
	if !s.IsReadLastCommitted() {
		t.Fatal("schedule should be read-last-committed")
	}
	if !s.AllowedUnderMVRC() {
		t.Fatal("schedule should be allowed under MVRC")
	}
}

// TestFigure3Dependencies asserts the dependencies discussed in Section 2:
// a wr-dependency W1[t1] → R2[t1] (non-counterflow) and an
// rw-antidependency R3[u1] → W2[u1] (counterflow), plus the predicate
// rw-antidependency PR3[Bids] → W2[u1].
func TestFigure3Dependencies(t *testing.T) {
	s, txns := buildFigure3(t)
	g := Build(s)

	find := func(kind DepKind, fromTxn, toTxn *schedule.Transaction) *Dep {
		for i := range g.Deps {
			d := &g.Deps[i]
			if d.Kind == kind && d.From.Txn == fromTxn && d.To.Txn == toTxn {
				return d
			}
		}
		return nil
	}
	wr := find(WR, txns[0], txns[1])
	if wr == nil {
		t.Fatal("missing wr-dependency T1 -> T2 on Buyer t1")
	}
	if wr.Counterflow {
		t.Error("wr-dependency T1 -> T2 should not be counterflow")
	}
	rw := find(RW, txns[2], txns[1])
	if rw == nil {
		t.Fatal("missing rw-antidependency T3 -> T2 on Bids u1")
	}
	if !rw.Counterflow {
		t.Error("rw-antidependency T3 -> T2 should be counterflow (C2 <s C3)")
	}
	prw := find(PredRW, txns[2], txns[1])
	if prw == nil {
		t.Fatal("missing predicate rw-antidependency PR3[Bids] -> W2[u1]")
	}
	if !prw.Counterflow {
		t.Error("predicate rw-antidependency should be counterflow")
	}
	// ww on Buyer t1: T1 -> T2.
	if d := find(WW, txns[0], txns[1]); d == nil {
		t.Error("missing ww-dependency T1 -> T2 on Buyer t1")
	}
}

// TestFigure3Serializable asserts the schedule is conflict serializable
// (its serialization graph is acyclic) — the running example is robust.
func TestFigure3Serializable(t *testing.T) {
	s, _ := buildFigure3(t)
	g := Build(s)
	if !g.IsConflictSerializable() {
		t.Fatalf("Figure 3 schedule should be serializable; deps: %v", g.Deps)
	}
}

// TestLemma41 asserts Lemma 4.1 on the running example: in a schedule
// allowed under MVRC, only (predicate) rw-antidependencies are counterflow.
func TestLemma41(t *testing.T) {
	s, _ := buildFigure3(t)
	if !s.AllowedUnderMVRC() {
		t.Fatal("precondition: schedule allowed under MVRC")
	}
	for _, d := range Build(s).Deps {
		if d.Counterflow && d.Kind != RW && d.Kind != PredRW {
			t.Errorf("counterflow dependency of kind %s violates Lemma 4.1: %s", d.Kind, d)
		}
	}
}
