// Package seg builds serialization graphs SeG(s) for multiversion
// schedules (Section 3.4): it computes the five dependency kinds between
// operations (ww, wr, rw, predicate-wr, predicate-rw), classifies
// counterflow dependencies (Section 4), tests conflict serializability
// (Theorem 3.2), and classifies cycles as type-I or type-II
// (Definition 4.3 / Theorem 4.2).
package seg

import (
	"fmt"
	"strings"

	"repro/internal/schedule"
)

// DepKind enumerates the dependency kinds of Section 3.4.
type DepKind int

// Dependency kinds.
const (
	WW DepKind = iota
	WR
	RW
	PredWR
	PredRW
)

// String renders the kind.
func (k DepKind) String() string {
	switch k {
	case WW:
		return "ww"
	case WR:
		return "wr"
	case RW:
		return "rw"
	case PredWR:
		return "pred-wr"
	case PredRW:
		return "pred-rw"
	default:
		return fmt.Sprintf("DepKind(%d)", int(k))
	}
}

// Dep is one dependency b_i →s a_j: operation To of transaction To.Txn
// depends on operation From of From.Txn.
type Dep struct {
	From *schedule.Op
	To   *schedule.Op
	Kind DepKind
	// Counterflow is true when the target transaction commits before the
	// source transaction (Section 4).
	Counterflow bool
}

// String renders the dependency.
func (d Dep) String() string {
	arrow := "->"
	if d.Counterflow {
		arrow = "~>"
	}
	return fmt.Sprintf("%s %s %s (%s)", d.From, arrow, d.To, d.Kind)
}

// Graph is the serialization graph SeG(s): transactions as nodes and
// dependencies as labeled edges.
type Graph struct {
	Schedule *schedule.Schedule
	Deps     []Dep
	// adj[t] lists dependencies leaving transaction t.
	adj map[*schedule.Transaction][]Dep
}

// Build computes every dependency of the schedule.
func Build(s *schedule.Schedule) *Graph {
	g := &Graph{Schedule: s, adj: map[*schedule.Transaction][]Dep{}}
	ops := s.Order
	for _, b := range ops {
		for _, a := range ops {
			if a.Txn == b.Txn {
				continue
			}
			if d, ok := dependency(s, b, a); ok {
				g.Deps = append(g.Deps, d)
				g.adj[b.Txn] = append(g.adj[b.Txn], d)
			}
		}
	}
	return g
}

// dependency tests whether a depends on b per Section 3.4 and classifies
// the dependency.
func dependency(s *schedule.Schedule, b, a *schedule.Op) (Dep, bool) {
	var kind DepKind
	switch {
	case b.IsWrite() && a.IsWrite() && a.TupleRef == b.TupleRef:
		// ww-dependency.
		if !b.Attrs.Intersects(a.Attrs) {
			return Dep{}, false
		}
		if !(s.VW[b] < s.VW[a]) {
			return Dep{}, false
		}
		kind = WW
	case b.IsWrite() && a.IsRead() && a.TupleRef == b.TupleRef:
		// wr-dependency: v_w(b) = v_r(a) or v_w(b) ≪ v_r(a).
		if !b.Attrs.Intersects(a.Attrs) {
			return Dep{}, false
		}
		if !(s.VW[b] <= s.VR[a]) {
			return Dep{}, false
		}
		kind = WR
	case b.IsRead() && a.IsWrite() && a.TupleRef == b.TupleRef:
		// rw-antidependency: v_r(b) ≪ v_w(a).
		if !b.Attrs.Intersects(a.Attrs) {
			return Dep{}, false
		}
		if !(s.VR[b] < s.VW[a]) {
			return Dep{}, false
		}
		kind = RW
	case b.IsWrite() && a.IsPredRead() && b.TupleRef.Rel == a.Rel:
		// predicate wr-dependency: v_w(b) = t_i or v_w(b) ≪ t_i for the
		// version t_i of b's tuple in Vset(a); attribute check unless b is
		// an I- or D-operation.
		ti, ok := s.VSet[a][b.TupleRef]
		if !ok || !(s.VW[b] <= ti) {
			return Dep{}, false
		}
		if b.Kind == schedule.OpWrite && !b.Attrs.Intersects(a.Attrs) {
			return Dep{}, false
		}
		kind = PredWR
	case b.IsPredRead() && a.IsWrite() && a.TupleRef.Rel == b.Rel:
		// predicate rw-antidependency: t_i ≪ v_w(a) for the version t_i of
		// a's tuple in Vset(b); attribute check unless a is I or D.
		ti, ok := s.VSet[b][a.TupleRef]
		if !ok || !(ti < s.VW[a]) {
			return Dep{}, false
		}
		if a.Kind == schedule.OpWrite && !b.Attrs.Intersects(a.Attrs) {
			return Dep{}, false
		}
		kind = PredRW
	default:
		return Dep{}, false
	}
	cb, ca := b.Txn.CommitOp(), a.Txn.CommitOp()
	counterflow := s.Before(ca, cb)
	return Dep{From: b, To: a, Kind: kind, Counterflow: counterflow}, true
}

// Edges returns the transaction-level edge set (deduplicated).
func (g *Graph) Edges() map[[2]*schedule.Transaction]bool {
	out := map[[2]*schedule.Transaction]bool{}
	for _, d := range g.Deps {
		out[[2]*schedule.Transaction{d.From.Txn, d.To.Txn}] = true
	}
	return out
}

// Cycle is a simple cycle of transactions together with one chosen
// dependency per consecutive pair (the last dependency returns to the
// first transaction).
type Cycle struct {
	Txns []*schedule.Transaction
	Deps []Dep
}

// String renders the cycle.
func (c Cycle) String() string {
	parts := make([]string, len(c.Deps))
	for i, d := range c.Deps {
		parts[i] = d.String()
	}
	return strings.Join(parts, ", ")
}

// HasCounterflow reports whether the cycle has at least one counterflow
// dependency (type-I, Definition 4.3).
func (c Cycle) HasCounterflow() bool {
	for _, d := range c.Deps {
		if d.Counterflow {
			return true
		}
	}
	return false
}

// IsTypeI reports whether the cycle is a type-I cycle.
func (c Cycle) IsTypeI() bool { return c.HasCounterflow() }

// IsTypeII reports whether the cycle is a type-II cycle (Definition 4.3):
// it has at least one non-counterflow dependency, and contains either two
// adjacent counterflow dependencies or an ordered-counterflow pair — two
// adjacent dependencies b_{i-1} → a_i and b_i → a_{i+1} with the second
// counterflow and either b_i <_{T_i} a_i in transaction T_i, or b_{i-1} an
// R- or PR-operation.
func (c Cycle) IsTypeII() bool {
	n := len(c.Deps)
	if n == 0 {
		return false
	}
	hasNonCF := false
	for _, d := range c.Deps {
		if !d.Counterflow {
			hasNonCF = true
			break
		}
	}
	if !hasNonCF {
		return false
	}
	for i := 0; i < n; i++ {
		prev := c.Deps[(i-1+n)%n]
		cur := c.Deps[i]
		if !cur.Counterflow {
			continue
		}
		if prev.Counterflow {
			return true // adjacent-counterflow pair
		}
		// Ordered-counterflow pair: prev = b_{i-1} -> a_i enters T_i; cur =
		// b_i -> a_{i+1} leaves T_i.
		bi, ai := cur.From, prev.To
		if bi.Index < ai.Index {
			return true
		}
		if prev.From.IsRead() || prev.From.IsPredRead() {
			return true
		}
	}
	return false
}

// SimpleCycles enumerates every simple transaction cycle of the graph,
// with every combination of dependency labels along it. Intended for the
// small schedules of tests and counterexample search; the enumeration is
// exponential in general.
func (g *Graph) SimpleCycles() []Cycle {
	// Group dependencies by (from, to) transaction pair.
	type pair struct{ from, to *schedule.Transaction }
	byPair := map[pair][]Dep{}
	succ := map[*schedule.Transaction][]*schedule.Transaction{}
	seenSucc := map[pair]bool{}
	for _, d := range g.Deps {
		p := pair{d.From.Txn, d.To.Txn}
		byPair[p] = append(byPair[p], d)
		if !seenSucc[p] {
			seenSucc[p] = true
			succ[d.From.Txn] = append(succ[d.From.Txn], d.To.Txn)
		}
	}
	idx := map[*schedule.Transaction]int{}
	for i, t := range g.Schedule.Txns {
		idx[t] = i
	}

	var cycles []Cycle
	var txnPath []*schedule.Transaction
	onPath := map[*schedule.Transaction]bool{}

	// expand enumerates label choices for a closed transaction walk.
	expand := func(path []*schedule.Transaction) {
		n := len(path)
		choices := make([][]Dep, n)
		for i := 0; i < n; i++ {
			choices[i] = byPair[pair{path[i], path[(i+1)%n]}]
		}
		var deps []Dep
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				cycles = append(cycles, Cycle{
					Txns: append([]*schedule.Transaction(nil), path...),
					Deps: append([]Dep(nil), deps...),
				})
				return
			}
			for _, d := range choices[i] {
				deps = append(deps, d)
				rec(i + 1)
				deps = deps[:len(deps)-1]
			}
		}
		rec(0)
	}

	var dfs func(start, cur *schedule.Transaction)
	dfs = func(start, cur *schedule.Transaction) {
		for _, nxt := range succ[cur] {
			if nxt == start {
				expand(txnPath)
				continue
			}
			// Only allow nodes with index greater than start's to avoid
			// enumerating each cycle once per rotation.
			if idx[nxt] <= idx[start] || onPath[nxt] {
				continue
			}
			onPath[nxt] = true
			txnPath = append(txnPath, nxt)
			dfs(start, nxt)
			txnPath = txnPath[:len(txnPath)-1]
			delete(onPath, nxt)
		}
	}
	for _, t := range g.Schedule.Txns {
		txnPath = txnPath[:0]
		txnPath = append(txnPath, t)
		onPath = map[*schedule.Transaction]bool{t: true}
		dfs(t, t)
	}
	return cycles
}

// FindCycle returns one transaction cycle with one dependency label per
// edge, or false when the graph is acyclic. Unlike SimpleCycles it runs in
// linear time and is safe on large, dense graphs.
func (g *Graph) FindCycle() (Cycle, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*schedule.Transaction]int{}
	parentDep := map[*schedule.Transaction]Dep{}
	var cycle Cycle
	var visit func(t *schedule.Transaction) bool
	visit = func(t *schedule.Transaction) bool {
		color[t] = gray
		for _, d := range g.adj[t] {
			switch color[d.To.Txn] {
			case gray:
				// Unwind from t back to d.To.Txn.
				var txns []*schedule.Transaction
				var deps []Dep
				for cur := t; cur != d.To.Txn; {
					pd := parentDep[cur]
					txns = append(txns, cur)
					deps = append(deps, pd)
					cur = pd.From.Txn
				}
				// txns/deps are in reverse order; rebuild forward.
				cycle.Txns = append(cycle.Txns, d.To.Txn)
				for i := len(txns) - 1; i >= 0; i-- {
					cycle.Txns = append(cycle.Txns, txns[i])
					cycle.Deps = append(cycle.Deps, deps[i])
				}
				cycle.Deps = append(cycle.Deps, d)
				return true
			case white:
				parentDep[d.To.Txn] = d
				if visit(d.To.Txn) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for _, t := range g.Schedule.Txns {
		if color[t] == white && visit(t) {
			return cycle, true
		}
	}
	return Cycle{}, false
}

// HasCycle reports whether the transaction-level graph has a cycle,
// using DFS coloring (no label enumeration).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*schedule.Transaction]int{}
	var visit func(t *schedule.Transaction) bool
	visit = func(t *schedule.Transaction) bool {
		color[t] = gray
		for _, d := range g.adj[t] {
			switch color[d.To.Txn] {
			case gray:
				return true
			case white:
				if visit(d.To.Txn) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for _, t := range g.Schedule.Txns {
		if color[t] == white && visit(t) {
			return true
		}
	}
	return false
}

// IsConflictSerializable reports whether the schedule is conflict
// serializable (Theorem 3.2: SeG(s) acyclic).
func (g *Graph) IsConflictSerializable() bool { return !g.HasCycle() }

// CounterflowDeps returns the counterflow dependencies of the graph.
func (g *Graph) CounterflowDeps() []Dep {
	var out []Dep
	for _, d := range g.Deps {
		if d.Counterflow {
			out = append(out, d)
		}
	}
	return out
}
