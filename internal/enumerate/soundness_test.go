package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/btp"
	"repro/internal/instantiate"
	"repro/internal/relschema"
	"repro/internal/robust"
	"repro/internal/summary"
)

// soundnessSchema has two relations and no foreign keys.
func soundnessSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"k", "a", "b"}, []string{"k"})
	s.MustAddRelation("S", []string{"k", "c"}, []string{"k"})
	return s
}

// randomPrograms builds a small random set of linear programs.
func randomPrograms(rng *rand.Rand, s *relschema.Schema) []*btp.Program {
	attrsOf := map[string][][]string{
		"R": {{"a"}, {"b"}, {"a", "b"}},
		"S": {{"c"}},
	}
	n := 1 + rng.Intn(2)
	var programs []*btp.Program
	for i := 0; i < n; i++ {
		var stmts []*btp.Stmt
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			rel := "R"
			if rng.Intn(3) == 0 {
				rel = "S"
			}
			pick := func() []string {
				opts := attrsOf[rel]
				return opts[rng.Intn(len(opts))]
			}
			name := string(rune('a'+i)) + string(rune('0'+j))
			switch rng.Intn(6) {
			case 0:
				stmts = append(stmts, btp.NewKeySel(name, rel, pick()...))
			case 1:
				stmts = append(stmts, btp.NewKeyUpd(name, rel, pick(), pick()))
			case 2:
				stmts = append(stmts, btp.NewPredSel(name, rel, pick(), pick()))
			case 3:
				stmts = append(stmts, btp.NewPredUpd(name, rel, pick(), nil, pick()))
			case 4:
				stmts = append(stmts, btp.NewIns(s, name, rel))
			case 5:
				stmts = append(stmts, btp.NewKeyDel(s, name, rel))
			}
		}
		programs = append(programs, btp.LinearProgram(string(rune('A'+i)), stmts...))
	}
	return programs
}

// assignment instantiates every key occurrence on a fixed tuple per
// relation and every predicate occurrence over both tuples of R (one of S).
func soundnessAssignment(ltp *btp.LTP, variant int) instantiate.Assignment {
	asg := instantiate.Assignment{
		Key:  map[*btp.StmtOcc]string{},
		Pred: map[*btp.StmtOcc][]string{},
	}
	for _, occ := range ltp.Stmts {
		if occ.Stmt.Type.IsKeyBased() {
			switch occ.Stmt.Rel {
			case "R":
				asg.Key[occ] = "x"
			case "S":
				asg.Key[occ] = "u"
			}
			// The second instance of a program may touch a different
			// tuple for inserts, avoiding duplicate-insert clashes.
			if occ.Stmt.Type == btp.Ins && variant == 1 {
				asg.Key[occ] += "2"
			}
		} else {
			switch occ.Stmt.Rel {
			case "R":
				asg.Pred[occ] = []string{"x", "y"}
			case "S":
				asg.Pred[occ] = []string{"u"}
			}
		}
	}
	return asg
}

// TestAlgorithm2Soundness is the repository's strongest consistency check:
// for hundreds of random linear program sets, whenever Algorithm 2 declares
// the set robust, an exhaustive search over all MVRC-allowed interleavings
// of a two-instances-per-program instantiation finds no non-serializable
// schedule. (The converse need not hold — the analysis is incomplete — so
// non-robust verdicts are not asserted against.)
func TestAlgorithm2Soundness(t *testing.T) {
	s := soundnessSchema()
	rng := rand.New(rand.NewSource(101))
	checker := robust.NewChecker(s)
	checker.Setting = summary.SettingAttrDep // no FKs in this schema

	robustCount, searched := 0, 0
	for i := 0; i < 300; i++ {
		programs := randomPrograms(rng, s)
		res, err := checker.Check(programs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Robust {
			continue
		}
		robustCount++
		// Instantiate each program twice.
		var instances []Instance
		ops := 0
		for _, l := range res.LTPs {
			for v := 0; v < 2; v++ {
				instances = append(instances, Instance{LTP: l, Assignment: soundnessAssignment(l, v)})
			}
			ops += 2 * len(l.Stmts)
		}
		if ops > 10 {
			continue // keep the exhaustive search tractable
		}
		result, err := FindCounterexample(s, instances, Options{MaxSchedules: 500_000})
		if err != nil {
			// Structural clashes (e.g. a program writing the same tuple
			// twice, which violates the strict instantiation form of
			// Section 3.3) make this instantiation inapplicable; skip it.
			continue
		}
		searched++
		if result.Found {
			t.Fatalf("iteration %d: Algorithm 2 declared robust but counterexample exists!\nprograms: %v\nschedule: %s",
				i, programs, result.Schedule)
		}
	}
	if robustCount == 0 || searched < 20 {
		t.Fatalf("generator too narrow: %d robust sets, %d searched", robustCount, searched)
	}
}
