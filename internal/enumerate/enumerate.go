// Package enumerate performs a bounded search over schedules(P, mvrc) for
// a non-serializable schedule: a constructive counterexample to robustness.
// It complements the sound-but-incomplete static analysis of
// internal/summary — when the static analysis rejects a program set, a
// counterexample found here proves the set truly non-robust (as the paper
// reports for every rejected SmallBank subset, Section 7.2).
//
// The search space is every interleaving of a given set of instantiated
// transactions that (a) respects per-transaction order, (b) respects atomic
// chunks, and (c) is free of dirty writes; reads are assigned
// read-last-committed versions, so every completed interleaving is allowed
// under MVRC by construction.
package enumerate

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/instantiate"
	"repro/internal/relschema"
	"repro/internal/schedule"
	"repro/internal/seg"
)

// Options bound the search.
type Options struct {
	// MaxSchedules caps the number of complete interleavings examined;
	// 0 means DefaultMaxSchedules.
	MaxSchedules int
}

// DefaultMaxSchedules is the default interleaving budget.
const DefaultMaxSchedules = 2_000_000

// Result reports the outcome of a search.
type Result struct {
	// Found is true when a non-serializable MVRC-allowed schedule exists
	// within the budget.
	Found bool
	// Schedule is the counterexample when found.
	Schedule *schedule.Schedule
	// Graph is its serialization graph.
	Graph *seg.Graph
	// Explored counts the complete interleavings examined.
	Explored int
	// Exhausted is true when the whole space was searched (so Found=false
	// is a proof that these transactions admit no counterexample).
	Exhausted bool
}

// FindNonSerializable searches the interleavings of the given transactions
// for one whose MVRC execution is not conflict serializable.
func FindNonSerializable(schema *relschema.Schema, txns []*schedule.Transaction, opts Options) (*Result, error) {
	return FindNonSerializableCtx(context.Background(), schema, txns, opts)
}

// FindNonSerializableCtx is FindNonSerializable under a context: the DFS
// polls the context every few thousand steps, so callers driven by server
// deadlines or client disconnects can abort a long exhaustive search. On
// cancellation the context's error is returned.
func FindNonSerializableCtx(ctx context.Context, schema *relschema.Schema, txns []*schedule.Transaction, opts Options) (*Result, error) {
	budget := opts.MaxSchedules
	if budget <= 0 {
		budget = DefaultMaxSchedules
	}
	for _, t := range txns {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("enumerate: %w", err)
		}
	}
	res := &Result{Exhausted: true}

	n := len(txns)
	next := make([]int, n)                    // next operation index per transaction
	inChunk := -1                             // transaction currently inside a chunk, or -1
	uncommitted := map[schedule.TupleID]int{} // tuple -> txn index holding an uncommitted write
	order := make([]*schedule.Op, 0)

	chunkOf := func(t *schedule.Transaction, opIdx int) (schedule.Chunk, bool) {
		for _, c := range t.Chunks {
			if c.From <= opIdx && opIdx <= c.To {
				return c, true
			}
		}
		return schedule.Chunk{}, false
	}

	// The DFS polls the context on its first node and once every 4096
	// thereafter: cheap relative to schedule assembly, frequent enough
	// that cancellation lands within microseconds.
	var steps int
	cancelled := false

	var dfs func() bool
	dfs = func() bool {
		steps++
		if steps&4095 == 1 && ctx.Err() != nil {
			cancelled = true
			return true
		}
		if len(order) == totalOps(txns) {
			res.Explored++
			s, err := schedule.FromOrder(schema, txns, order)
			if err != nil {
				panic(fmt.Sprintf("enumerate: internal: %v", err))
			}
			// Dirty writes and chunk violations are pruned during the
			// search, but visibility can only be checked on the complete
			// schedule: a read observing an unborn or dead version (e.g. a
			// tuple read before its insert commits) makes the interleaving
			// inadmissible under MVRC.
			if !s.AllowedUnderMVRC() {
				if res.Explored >= budget {
					res.Exhausted = false
					return true
				}
				return false
			}
			g := seg.Build(s)
			if !g.IsConflictSerializable() {
				res.Found = true
				// Copy the order: the slice is mutated as DFS unwinds.
				res.Schedule, _ = schedule.FromOrder(schema, txns, append([]*schedule.Op(nil), order...))
				res.Graph = seg.Build(res.Schedule)
				return true
			}
			if res.Explored >= budget {
				res.Exhausted = false
				return true
			}
			return false
		}
		for ti, t := range txns {
			if inChunk >= 0 && inChunk != ti {
				continue
			}
			oi := next[ti]
			if oi >= len(t.Ops) {
				continue
			}
			op := t.Ops[oi]
			// Dirty-write pruning: a write on a tuple with an uncommitted
			// write from another transaction is not allowed under MVRC.
			if op.IsWrite() {
				if holder, ok := uncommitted[op.TupleRef]; ok && holder != ti {
					continue
				}
			}
			// Apply.
			savedChunk := inChunk
			var releasedTuples []schedule.TupleID
			if op.IsWrite() {
				if _, ok := uncommitted[op.TupleRef]; !ok {
					uncommitted[op.TupleRef] = ti
					releasedTuples = append(releasedTuples, op.TupleRef)
				}
			}
			if op.Kind == schedule.OpCommit {
				for tu, holder := range uncommitted {
					if holder == ti {
						releasedTuples = append(releasedTuples, tu)
						delete(uncommitted, tu)
					}
				}
			}
			if c, ok := chunkOf(t, oi); ok && oi < c.To {
				inChunk = ti
			} else {
				inChunk = -1
			}
			next[ti]++
			order = append(order, op)

			stop := dfs()

			// Undo.
			order = order[:len(order)-1]
			next[ti]--
			inChunk = savedChunk
			if op.Kind == schedule.OpCommit {
				for _, tu := range releasedTuples {
					uncommitted[tu] = ti
				}
			} else if op.IsWrite() {
				for _, tu := range releasedTuples {
					delete(uncommitted, tu)
				}
			}
			if stop {
				return true
			}
		}
		return false
	}
	dfs()
	if cancelled {
		return nil, ctx.Err()
	}
	return res, nil
}

func totalOps(txns []*schedule.Transaction) int {
	n := 0
	for _, t := range txns {
		n += len(t.Ops)
	}
	return n
}

// Instance describes one transaction to instantiate for the search: an LTP
// plus its tuple assignment.
type Instance struct {
	LTP        *btp.LTP
	Assignment instantiate.Assignment
}

// FindCounterexample instantiates the given instances (with ids 1..n) and
// searches for a non-serializable MVRC schedule over them.
func FindCounterexample(schema *relschema.Schema, instances []Instance, opts Options) (*Result, error) {
	return FindCounterexampleCtx(context.Background(), schema, instances, opts)
}

// FindCounterexampleCtx is FindCounterexample under a context.
func FindCounterexampleCtx(ctx context.Context, schema *relschema.Schema, instances []Instance, opts Options) (*Result, error) {
	txns := make([]*schedule.Transaction, 0, len(instances))
	for i, inst := range instances {
		t, err := instantiate.Instantiate(schema, inst.LTP, i+1, inst.Assignment)
		if err != nil {
			return nil, err
		}
		txns = append(txns, t)
	}
	return FindNonSerializableCtx(ctx, schema, txns, opts)
}

// SessionInstances builds one search instance per unfolding of the program,
// drawing the LTPs from the shared analysis session (so repeated candidate
// construction across subsets reuses the memoized unfoldings). assign maps
// each LTP to its tuple assignment; bound 0 means the default unfold bound.
func SessionInstances(sess *analysis.Session, p *btp.Program, bound int, assign func(*btp.LTP) instantiate.Assignment) ([]Instance, error) {
	ltps, err := sess.LTPs(p, bound)
	if err != nil {
		return nil, err
	}
	out := make([]Instance, 0, len(ltps))
	for _, l := range ltps {
		out = append(out, Instance{LTP: l, Assignment: assign(l)})
	}
	return out, nil
}

// FindAnyCounterexample searches several candidate instance sets
// concurrently (bounded by parallelism; 0 means GOMAXPROCS) and returns the
// counterexample of the lowest-indexed candidate that admits one, together
// with that candidate's index (-1 when none does). Every candidate is
// searched to completion under its own budget, so the result is
// deterministic regardless of scheduling. This is the constructive
// complement of the parallel subset enumeration: when the static analysis
// rejects a set of subsets, their candidate instantiations can be checked
// for real anomalies in one parallel sweep.
func FindAnyCounterexample(schema *relschema.Schema, candidates [][]Instance, parallelism int, opts Options) (*Result, int, error) {
	return FindAnyCounterexampleCtx(context.Background(), schema, candidates, parallelism, opts)
}

// FindAnyCounterexampleCtx is FindAnyCounterexample under a context: each
// worker re-checks the context before claiming the next candidate and the
// per-candidate DFS polls it too, so the whole pool drains promptly on
// cancellation (returning the context's error).
func FindAnyCounterexampleCtx(ctx context.Context, schema *relschema.Schema, candidates [][]Instance, parallelism int, opts Options) (*Result, int, error) {
	if len(candidates) == 0 {
		return &Result{Exhausted: true}, -1, nil
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	results := make([]*Result, len(candidates))
	errs := make([]error, len(candidates))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= len(candidates) {
					return
				}
				results[i], errs[i] = FindCounterexampleCtx(ctx, schema, candidates[i], opts)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, -1, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, -1, fmt.Errorf("enumerate: candidate %d: %w", i, err)
		}
	}
	for i, res := range results {
		if res.Found {
			return res, i, nil
		}
	}
	// No counterexample: report exhaustion only if every search was
	// exhaustive.
	agg := &Result{Exhausted: true}
	for _, res := range results {
		agg.Explored += res.Explored
		if !res.Exhausted {
			agg.Exhausted = false
		}
	}
	return agg, -1, nil
}
