package enumerate

import (
	"context"
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/instantiate"
)

// smallBankCandidates builds one instance set per named program list,
// drawing LTPs from the shared session.
func smallBankCandidates(t *testing.T, sess *analysis.Session, b *benchmarks.Benchmark, lists [][]string) [][]Instance {
	t.Helper()
	out := make([][]Instance, 0, len(lists))
	for _, names := range lists {
		var instances []Instance
		for _, name := range names {
			p := b.Program(name)
			if p == nil {
				t.Fatalf("unknown SmallBank program %q", name)
			}
			built, err := SessionInstances(sess, p, 0, func(l *btp.LTP) instantiate.Assignment {
				return smallBankAssignment(l)
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(built) != 1 {
				t.Fatalf("SmallBank program %s should unfold to one LTP, got %d", name, len(built))
			}
			instances = append(instances, built...)
		}
		out = append(out, instances)
	}
	return out
}

// TestFindAnyCounterexample sweeps a mixed candidate list: the robust
// subset first, then two non-robust ones. The parallel sweep must report
// the lowest-indexed candidate that admits an anomaly, deterministically,
// at any parallelism.
func TestFindAnyCounterexample(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	candidates := smallBankCandidates(t, sess, b, [][]string{
		{"Balance", "DepositChecking"},    // robust — no counterexample
		{"DepositChecking", "WriteCheck"}, // lost update
		{"WriteCheck", "WriteCheck"},      // classic SmallBank anomaly
	})
	for _, par := range []int{1, 3} {
		res, idx, err := FindAnyCounterexample(b.Schema, candidates, par, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || idx != 1 {
			t.Fatalf("parallelism %d: found=%t idx=%d, want counterexample at index 1", par, res.Found, idx)
		}
		if res.Graph.IsConflictSerializable() {
			t.Fatal("counterexample graph should be cyclic")
		}
	}
}

// TestFindAnyCounterexampleNone asserts exhaustion aggregation when no
// candidate admits an anomaly.
func TestFindAnyCounterexampleNone(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	candidates := smallBankCandidates(t, sess, b, [][]string{
		{"Balance", "DepositChecking"},
		{"Balance", "TransactSavings"},
	})
	res, idx, err := FindAnyCounterexample(b.Schema, candidates, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || idx != -1 {
		t.Fatalf("unexpected counterexample at %d", idx)
	}
	if !res.Exhausted || res.Explored == 0 {
		t.Fatalf("expected exhaustive aggregate search, got explored=%d exhausted=%t", res.Explored, res.Exhausted)
	}
	// Empty candidate list is trivially exhausted.
	res, idx, err = FindAnyCounterexample(b.Schema, nil, 0, Options{})
	if err != nil || res.Found || idx != -1 || !res.Exhausted {
		t.Fatalf("empty candidates: res=%+v idx=%d err=%v", res, idx, err)
	}
}

// TestFindAnyCounterexampleCtxCancelled asserts a cancelled context aborts
// the parallel sweep (and the per-candidate DFS) with the context's error
// instead of a result.
func TestFindAnyCounterexampleCtxCancelled(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	candidates := smallBankCandidates(t, sess, b, [][]string{
		{"Balance", "DepositChecking"},
		{"DepositChecking", "WriteCheck"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := FindAnyCounterexampleCtx(ctx, b.Schema, candidates, 2, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := FindCounterexampleCtx(ctx, b.Schema, candidates[0], Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindCounterexampleCtx err = %v, want context.Canceled", err)
	}
}
