package enumerate

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/instantiate"
	"repro/internal/seg"
)

// smallBankLTP returns the (linear) LTP of the named SmallBank program.
func smallBankLTP(t *testing.T, name string) *btp.LTP {
	t.Helper()
	b := benchmarks.SmallBank()
	p := b.Program(name)
	if p == nil {
		t.Fatalf("unknown SmallBank program %q", name)
	}
	ltps := btp.Unfold2(p)
	if len(ltps) != 1 {
		t.Fatalf("SmallBank program %s should unfold to one LTP, got %d", name, len(ltps))
	}
	return ltps[0]
}

// smallBankAssignment assigns every key-based occurrence to the tuples of
// one customer: Account "a", Savings "s", Checking "c". Amalgamate operates
// on two customers (it transfers between accounts), so its second account
// (q2) and destination checking update (q5) go to a second customer.
func smallBankAssignment(ltp *btp.LTP) instantiate.Assignment {
	asg := instantiate.Assignment{
		Key: map[*btp.StmtOcc]string{},
		FK: map[string]map[string]string{
			"fS": {"a": "s", "a2": "s2"},
			"fC": {"a": "c", "a2": "c2"},
		},
	}
	for _, occ := range ltp.Stmts {
		name := occ.Stmt.Name
		switch occ.Stmt.Rel {
		case "Account":
			if name == "q2" {
				asg.Key[occ] = "a2"
			} else {
				asg.Key[occ] = "a"
			}
		case "Savings":
			asg.Key[occ] = "s"
		case "Checking":
			if name == "q5" {
				asg.Key[occ] = "c2"
			} else {
				asg.Key[occ] = "c"
			}
		}
	}
	return asg
}

func searchSmallBank(t *testing.T, programs ...string) *Result {
	t.Helper()
	b := benchmarks.SmallBank()
	var instances []Instance
	for _, name := range programs {
		ltp := smallBankLTP(t, name)
		instances = append(instances, Instance{LTP: ltp, Assignment: smallBankAssignment(ltp)})
	}
	res, err := FindCounterexample(b.Schema, instances, Options{})
	if err != nil {
		t.Fatalf("FindCounterexample(%v): %v", programs, err)
	}
	return res
}

// TestWriteCheckAnomaly asserts that two WriteCheck instances over the same
// customer admit a non-serializable MVRC schedule (the classic SmallBank
// anomaly; {WC} appears in no robust subset of Figure 6).
func TestWriteCheckAnomaly(t *testing.T) {
	res := searchSmallBank(t, "WriteCheck", "WriteCheck")
	if !res.Found {
		t.Fatal("expected a non-serializable MVRC schedule for {WC, WC}")
	}
	if res.Graph.IsConflictSerializable() {
		t.Fatal("counterexample graph should be cyclic")
	}
}

// TestDepositWriteCheckAnomaly asserts non-robustness of {DC, WC}: WriteCheck
// reads the checking balance, DepositChecking overwrites and commits, and
// WriteCheck's blind write then clobbers the deposit — a lost update.
func TestDepositWriteCheckAnomaly(t *testing.T) {
	res := searchSmallBank(t, "DepositChecking", "WriteCheck")
	if !res.Found {
		t.Fatal("expected a counterexample for {DC, WC}")
	}
}

// TestBalanceAmalgamateAnomaly asserts non-robustness of {Bal, Am}: Balance
// can observe Amalgamate's savings update but miss its checking update,
// yielding a cyclic serialization graph.
func TestBalanceAmalgamateAnomaly(t *testing.T) {
	res := searchSmallBank(t, "Balance", "Amalgamate")
	if !res.Found {
		t.Fatal("expected a counterexample for {Bal, Am}")
	}
}

// TestRobustSubsetsHaveNoCounterexample asserts that exhaustive interleaving
// search finds no anomaly for instantiations of the robust subsets
// {Am, DC, TS}, {Bal, DC} and {Bal, TS} — consistency between the static
// verdict and the schedule space.
func TestRobustSubsetsHaveNoCounterexample(t *testing.T) {
	cases := [][]string{
		{"Amalgamate", "DepositChecking", "TransactSavings"},
		{"Balance", "DepositChecking", "DepositChecking"},
		{"Balance", "TransactSavings", "TransactSavings"},
		{"Balance", "Balance", "DepositChecking"},
	}
	for _, programs := range cases {
		res := searchSmallBank(t, programs...)
		if res.Found {
			t.Errorf("%v: unexpected counterexample:\n%s", programs, res.Schedule)
		}
		if !res.Exhausted {
			t.Errorf("%v: search budget exhausted before covering the space", programs)
		}
	}
}

// TestCounterexampleCyclesAreTypeII asserts Theorem 4.2 constructively: in
// every counterexample schedule found (which is allowed under MVRC by
// construction), every simple cycle of the serialization graph is a
// type-II cycle in at least one labeling, and every cycle has a
// counterflow dependency (type-I).
func TestCounterexampleCyclesAreTypeII(t *testing.T) {
	res := searchSmallBank(t, "Balance", "Amalgamate")
	if !res.Found {
		t.Fatal("expected a counterexample")
	}
	if !res.Schedule.AllowedUnderMVRC() {
		t.Fatal("counterexample must be allowed under MVRC")
	}
	cycles := res.Graph.SimpleCycles()
	if len(cycles) == 0 {
		t.Fatal("cyclic graph must yield simple cycles")
	}
	// Group labeled cycles by their transaction sequence; Theorem 4.2
	// guarantees each cyclic dependency structure satisfies the type-II
	// property for every concrete labeling realized in the schedule.
	for _, c := range cycles {
		if !c.IsTypeI() {
			t.Errorf("cycle without counterflow dependency contradicts [3]: %s", c)
		}
		if !c.IsTypeII() {
			t.Errorf("cycle is not type-II, contradicting Theorem 4.2: %s", c)
		}
	}
	_ = seg.WW // keep seg imported for documentation clarity
}
