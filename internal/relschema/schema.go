// Package relschema models relational database schemas: relations with
// named attributes, primary keys, and foreign keys. It is the shared
// vocabulary of every other layer in this repository — BTP statements,
// summary graphs, multiversion schedules and the MVCC engine all refer to
// relations and attributes defined here.
//
// The model follows Section 3.1 of the paper: a schema is a pair
// (Rels, FKeys) where every relation has a finite attribute set and every
// foreign key f has a domain relation dom(f) and a range relation range(f).
package relschema

import (
	"fmt"
	"sort"
	"strings"
)

// AttrSet is a set of attribute names of a single relation. The zero value
// is the empty set. AttrSet values are treated as immutable once built;
// mutating helpers return fresh sets.
type AttrSet map[string]struct{}

// NewAttrSet builds an attribute set from the given names.
func NewAttrSet(names ...string) AttrSet {
	s := make(AttrSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Has reports whether name is a member of the set.
func (s AttrSet) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Len returns the number of attributes in the set.
func (s AttrSet) Len() int { return len(s) }

// Empty reports whether the set has no members.
func (s AttrSet) Empty() bool { return len(s) == 0 }

// Sorted returns the attribute names in lexicographic order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the set.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for n := range s {
		out[n] = struct{}{}
	}
	return out
}

// Union returns a new set containing every member of s and t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	out := s.Clone()
	for n := range t {
		out[n] = struct{}{}
	}
	return out
}

// Intersects reports whether s and t share at least one attribute.
func (s AttrSet) Intersects(t AttrSet) bool {
	if len(s) > len(t) {
		s, t = t, s
	}
	for n := range s {
		if _, ok := t[n]; ok {
			return true
		}
	}
	return false
}

// Intersection returns the set of attributes present in both s and t.
func (s AttrSet) Intersection(t AttrSet) AttrSet {
	out := make(AttrSet)
	for n := range s {
		if _, ok := t[n]; ok {
			out[n] = struct{}{}
		}
	}
	return out
}

// SubsetOf reports whether every member of s is also a member of t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	for n := range s {
		if _, ok := t[n]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// String renders the set as "{a, b, c}" with sorted members.
func (s AttrSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// Relation describes one relation of a schema: its name, attributes and the
// subset of attributes forming the primary key.
type Relation struct {
	Name  string
	Attrs AttrSet
	// Key is the primary-key attribute set. The paper assumes keys are
	// immutable and that key-based statements address exactly one tuple.
	Key AttrSet
}

// ForeignKey is a named foreign key f with dom(f) and range(f) relations and
// the attribute columns on each side. Following Section 3.1, f is
// conceptually a function mapping each tuple of the domain relation to a
// tuple of the range relation.
type ForeignKey struct {
	Name string
	// Dom is the referencing relation (dom(f)).
	Dom string
	// DomAttrs are the referencing columns in Dom.
	DomAttrs []string
	// Range is the referenced relation (range(f)).
	Range string
	// RangeAttrs are the referenced columns in Range (usually its key).
	RangeAttrs []string
}

// Schema is a relational schema (Rels, FKeys).
type Schema struct {
	relations map[string]*Relation
	relOrder  []string
	fkeys     map[string]*ForeignKey
	fkOrder   []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		relations: make(map[string]*Relation),
		fkeys:     make(map[string]*ForeignKey),
	}
}

// AddRelation registers a relation with the given attributes and key. The
// key attributes must be a subset of the attributes. It returns an error on
// duplicate names or malformed keys.
func (s *Schema) AddRelation(name string, attrs []string, key []string) error {
	if name == "" {
		return fmt.Errorf("relschema: relation name must be non-empty")
	}
	if _, dup := s.relations[name]; dup {
		return fmt.Errorf("relschema: duplicate relation %q", name)
	}
	aset := NewAttrSet(attrs...)
	if len(aset) != len(attrs) {
		return fmt.Errorf("relschema: relation %q has duplicate attributes", name)
	}
	kset := NewAttrSet(key...)
	if !kset.SubsetOf(aset) {
		return fmt.Errorf("relschema: relation %q key %v is not a subset of attributes %v", name, key, attrs)
	}
	s.relations[name] = &Relation{Name: name, Attrs: aset, Key: kset}
	s.relOrder = append(s.relOrder, name)
	return nil
}

// MustAddRelation is AddRelation but panics on error. Intended for
// statically known benchmark schemas.
func (s *Schema) MustAddRelation(name string, attrs []string, key []string) {
	if err := s.AddRelation(name, attrs, key); err != nil {
		panic(err)
	}
}

// AddForeignKey registers a foreign key. Both relations must already exist
// and the referenced attribute lists must match in length and be valid
// attributes of their relations.
func (s *Schema) AddForeignKey(name, dom string, domAttrs []string, rng string, rangeAttrs []string) error {
	if name == "" {
		return fmt.Errorf("relschema: foreign key name must be non-empty")
	}
	if _, dup := s.fkeys[name]; dup {
		return fmt.Errorf("relschema: duplicate foreign key %q", name)
	}
	dr, ok := s.relations[dom]
	if !ok {
		return fmt.Errorf("relschema: foreign key %q: unknown domain relation %q", name, dom)
	}
	rr, ok := s.relations[rng]
	if !ok {
		return fmt.Errorf("relschema: foreign key %q: unknown range relation %q", name, rng)
	}
	if len(domAttrs) == 0 || len(domAttrs) != len(rangeAttrs) {
		return fmt.Errorf("relschema: foreign key %q: column lists must be non-empty and of equal length", name)
	}
	for _, a := range domAttrs {
		if !dr.Attrs.Has(a) {
			return fmt.Errorf("relschema: foreign key %q: %q is not an attribute of %q", name, a, dom)
		}
	}
	for _, a := range rangeAttrs {
		if !rr.Attrs.Has(a) {
			return fmt.Errorf("relschema: foreign key %q: %q is not an attribute of %q", name, a, rng)
		}
	}
	s.fkeys[name] = &ForeignKey{
		Name: name, Dom: dom, DomAttrs: append([]string(nil), domAttrs...),
		Range: rng, RangeAttrs: append([]string(nil), rangeAttrs...),
	}
	s.fkOrder = append(s.fkOrder, name)
	return nil
}

// MustAddForeignKey is AddForeignKey but panics on error.
func (s *Schema) MustAddForeignKey(name, dom string, domAttrs []string, rng string, rangeAttrs []string) {
	if err := s.AddForeignKey(name, dom, domAttrs, rng, rangeAttrs); err != nil {
		panic(err)
	}
}

// Relation returns the named relation, or nil if absent.
func (s *Schema) Relation(name string) *Relation {
	return s.relations[name]
}

// HasRelation reports whether the named relation exists.
func (s *Schema) HasRelation(name string) bool {
	_, ok := s.relations[name]
	return ok
}

// Relations returns all relations in declaration order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.relOrder))
	for _, n := range s.relOrder {
		out = append(out, s.relations[n])
	}
	return out
}

// ForeignKey returns the named foreign key, or nil if absent.
func (s *Schema) ForeignKey(name string) *ForeignKey {
	return s.fkeys[name]
}

// ForeignKeys returns all foreign keys in declaration order.
func (s *Schema) ForeignKeys() []*ForeignKey {
	out := make([]*ForeignKey, 0, len(s.fkOrder))
	for _, n := range s.fkOrder {
		out = append(out, s.fkeys[n])
	}
	return out
}

// Attrs returns the attribute set of the named relation. It panics if the
// relation does not exist; callers validate relation names at construction.
func (s *Schema) Attrs(relation string) AttrSet {
	r := s.relations[relation]
	if r == nil {
		panic(fmt.Sprintf("relschema: unknown relation %q", relation))
	}
	return r.Attrs
}

// Validate performs whole-schema consistency checks (every FK references
// existing relations/attributes; keys non-empty). It is cheap and intended
// to be called once after construction.
func (s *Schema) Validate() error {
	for _, name := range s.relOrder {
		r := s.relations[name]
		if r.Attrs.Empty() {
			return fmt.Errorf("relschema: relation %q has no attributes", name)
		}
		if r.Key.Empty() {
			return fmt.Errorf("relschema: relation %q has no primary key", name)
		}
	}
	for _, name := range s.fkOrder {
		fk := s.fkeys[name]
		if !s.HasRelation(fk.Dom) || !s.HasRelation(fk.Range) {
			return fmt.Errorf("relschema: foreign key %q references missing relation", name)
		}
	}
	return nil
}

// String renders the schema in a compact, deterministic textual form.
func (s *Schema) String() string {
	var b strings.Builder
	for _, name := range s.relOrder {
		r := s.relations[name]
		fmt.Fprintf(&b, "%s(", name)
		for i, a := range r.Attrs.Sorted() {
			if i > 0 {
				b.WriteString(", ")
			}
			if r.Key.Has(a) {
				b.WriteString("*")
			}
			b.WriteString(a)
		}
		b.WriteString(")\n")
	}
	for _, name := range s.fkOrder {
		fk := s.fkeys[name]
		fmt.Fprintf(&b, "%s: %s(%s) -> %s(%s)\n", name,
			fk.Dom, strings.Join(fk.DomAttrs, ","),
			fk.Range, strings.Join(fk.RangeAttrs, ","))
	}
	return b.String()
}
