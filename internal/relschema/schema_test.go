package relschema

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet("b", "a", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has("a") || s.Has("z") {
		t.Fatal("Has misbehaves")
	}
	if got := s.Sorted(); got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Sorted = %v", got)
	}
	if s.String() != "{a, b, c}" {
		t.Fatalf("String = %q", s.String())
	}
	if NewAttrSet().String() != "{}" {
		t.Fatal("empty set renders badly")
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet("x", "y")
	b := NewAttrSet("y", "z")
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("Intersects")
	}
	if a.Intersects(NewAttrSet("q")) {
		t.Fatal("disjoint sets intersect")
	}
	if got := a.Intersection(b); got.Len() != 1 || !got.Has("y") {
		t.Fatalf("Intersection = %v", got)
	}
	u := a.Union(b)
	if u.Len() != 3 {
		t.Fatalf("Union = %v", u)
	}
	// Union must not mutate operands.
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("Union mutated an operand")
	}
	if !a.SubsetOf(u) || u.SubsetOf(a) {
		t.Fatal("SubsetOf")
	}
	if !a.Equal(NewAttrSet("y", "x")) || a.Equal(b) {
		t.Fatal("Equal")
	}
	c := a.Clone()
	c["w"] = struct{}{}
	if a.Has("w") {
		t.Fatal("Clone aliases the original")
	}
}

// TestAttrSetProperties checks algebraic laws with random inputs.
func TestAttrSetProperties(t *testing.T) {
	mk := func(names []string) AttrSet {
		// Restrict to small alphabet for collision-rich sets.
		s := NewAttrSet()
		for _, n := range names {
			if len(n) > 0 {
				s[string(n[0]%8+'a')] = struct{}{}
			}
		}
		return s
	}
	commutative := func(xs, ys []string) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).Equal(b.Union(a)) &&
			a.Intersection(b).Equal(b.Intersection(a)) &&
			a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	consistent := func(xs, ys []string) bool {
		a, b := mk(xs), mk(ys)
		// Intersects iff intersection non-empty; subset iff union equals b.
		return a.Intersects(b) == !a.Intersection(b).Empty() &&
			a.SubsetOf(b) == a.Union(b).Equal(b)
	}
	if err := quick.Check(consistent, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaConstruction(t *testing.T) {
	s := NewSchema()
	if err := s.AddRelation("R", []string{"a", "b"}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRelation("S", []string{"c", "d"}, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddForeignKey("f", "S", []string{"d"}, "R", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.HasRelation("R") || s.HasRelation("T") {
		t.Fatal("HasRelation")
	}
	if s.Relation("R").Key.Len() != 1 {
		t.Fatal("key lost")
	}
	if got := len(s.Relations()); got != 2 {
		t.Fatalf("Relations = %d", got)
	}
	if got := len(s.ForeignKeys()); got != 1 {
		t.Fatalf("ForeignKeys = %d", got)
	}
	if s.ForeignKey("f") == nil || s.ForeignKey("g") != nil {
		t.Fatal("ForeignKey lookup")
	}
	names := []string{}
	for _, r := range s.Relations() {
		names = append(names, r.Name)
	}
	if !sort.StringsAreSorted(names) && !(names[0] == "R" && names[1] == "S") {
		t.Fatalf("declaration order lost: %v", names)
	}
}

func TestSchemaErrors(t *testing.T) {
	s := NewSchema()
	if err := s.AddRelation("", []string{"a"}, []string{"a"}); err == nil {
		t.Error("empty relation name accepted")
	}
	s.MustAddRelation("R", []string{"a", "b"}, []string{"a"})
	if err := s.AddRelation("R", []string{"x"}, []string{"x"}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := s.AddRelation("Dup", []string{"a", "a"}, []string{"a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := s.AddRelation("BadKey", []string{"a"}, []string{"z"}); err == nil {
		t.Error("key outside attributes accepted")
	}
	if err := s.AddForeignKey("f", "Nope", []string{"a"}, "R", []string{"a"}); err == nil {
		t.Error("fk with unknown domain accepted")
	}
	if err := s.AddForeignKey("f", "R", []string{"a"}, "Nope", []string{"a"}); err == nil {
		t.Error("fk with unknown range accepted")
	}
	if err := s.AddForeignKey("f", "R", []string{"a", "b"}, "R", []string{"a"}); err == nil {
		t.Error("fk with mismatched columns accepted")
	}
	if err := s.AddForeignKey("f", "R", []string{"z"}, "R", []string{"a"}); err == nil {
		t.Error("fk with unknown column accepted")
	}
	s.MustAddForeignKey("f", "R", []string{"b"}, "R", []string{"a"})
	if err := s.AddForeignKey("f", "R", []string{"b"}, "R", []string{"a"}); err == nil {
		t.Error("duplicate fk accepted")
	}
	// Validate catches keyless relations (constructed by hand).
	bad := NewSchema()
	bad.relations["X"] = &Relation{Name: "X", Attrs: NewAttrSet("a"), Key: NewAttrSet()}
	bad.relOrder = append(bad.relOrder, "X")
	if err := bad.Validate(); err == nil {
		t.Error("keyless relation validated")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema()
	s.MustAddRelation("R", []string{"a", "b"}, []string{"a"})
	s.MustAddForeignKey("f", "R", []string{"b"}, "R", []string{"a"})
	out := s.String()
	if out == "" || out[0] != 'R' {
		t.Fatalf("String = %q", out)
	}
}

func TestAttrsPanicsOnUnknownRelation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema().Attrs("missing")
}
