package analysis

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btp"
	"repro/internal/obs"
	"repro/internal/summary"
)

// This file is the streaming half of the lattice enumeration:
// RobustSubsetsStream walks the same size-ordered subset lattice as
// RobustSubsetsCtx — identical pruning invariants, identical verdicts —
// but emits each verdict through a callback the moment its level decides
// it, instead of materializing the full report after 2^n−1 decisions.
// Three things distinguish the streaming traversal:
//
//   - Lazy composition. The monolithic path builds the universe
//     SubsetDetector up front, which composes every ordered LTP pair
//     before the first verdict. The stream composes each detector-miss
//     subset's own pairs on demand (summary.Compose over the shared
//     BlockSet — identical, including edge order, to the universe graph
//     induced on the subset's nodes), so the first verdict costs one
//     program's intra-pairs, not the whole universe. Pairs are cached as
//     they appear; a full stream converges to the same composed state.
//
//   - Cost-ordered scheduling (sched.go). Within a level, subsets are
//     visited in descending estimated conflict density. Cores minted at
//     level k have exactly size k and cannot prune size-k siblings, so
//     the reorder changes neither the verdict set nor the deterministic
//     pruned count — only how early the interesting verdicts surface.
//     The level barrier itself is load-bearing (it is the pruning's
//     completeness and minimality argument) and stays.
//
//   - Early termination (StreamMode). first_non_robust stops at the
//     first non-robust verdict (level order makes it a smallest one);
//     all_maximal_robust and top_k stop after the first level with no
//     robust subset — monotonicity decides everything above; a
//     MaxSubsets budget caps emitted verdicts in any mode. Terminated
//     runs still merge their minted cores into the session fact store
//     (the deferred merge), but fold covers and assemble a report only
//     when their robust knowledge is complete.

// StreamMode selects how much of the subset lattice a streaming
// enumeration traverses before stopping.
type StreamMode int

const (
	// StreamAll streams every subset verdict, level by level; on
	// completion the summary carries the full report, identical to
	// RobustSubsetsCtx.
	StreamAll StreamMode = iota
	// StreamFirstNonRobust terminates immediately after emitting the
	// first non-robust verdict — by level order, a smallest non-robust
	// subset. A workload with no non-robust subset streams to completion.
	StreamFirstNonRobust
	// StreamMaximalRobust emits only robust verdicts and terminates after
	// the first level without one: by monotonicity every larger subset is
	// non-robust, so the robust — and therefore maximal — sets are
	// already complete and the summary's report is exact.
	StreamMaximalRobust
	// StreamTopK is StreamMaximalRobust with the summary additionally
	// listing the K largest robust subsets (size-descending, then
	// lexicographic). StreamOptions.K must be positive.
	StreamTopK
)

// String renders the mode's wire name.
func (m StreamMode) String() string {
	switch m {
	case StreamFirstNonRobust:
		return "first_non_robust"
	case StreamMaximalRobust:
		return "all_maximal_robust"
	case StreamTopK:
		return "top_k"
	default:
		return "all"
	}
}

// StreamOptions configures a streaming enumeration.
type StreamOptions struct {
	Mode StreamMode
	// K is the result budget of StreamTopK (ignored by other modes).
	K int
	// MaxSubsets, when positive, terminates the stream after that many
	// emitted verdicts, whatever the mode.
	MaxSubsets int
}

// How a streamed verdict was decided (StreamVerdict.DecidedBy).
const (
	DecidedCore     = "core"     // non-robust by core containment
	DecidedCover    = "cover"    // robust by cover containment
	DecidedDetector = "detector" // the cycle detector ran
)

// Termination reasons (StreamSummary.Reason; empty means the traversal
// completed).
const (
	ReasonFirstNonRobust = "first_non_robust"
	ReasonLevelExhausted = "level_exhausted"
	ReasonMaxSubsets     = "max_subsets"
)

// StreamVerdict is one emitted subset verdict.
type StreamVerdict struct {
	// Programs are the subset's program short names, sorted.
	Programs []string
	// Size is the subset size (the lattice level that decided it).
	Size int
	// Robust is the verdict; DecidedBy tells whether containment pruning
	// (DecidedCore, DecidedCover) or the detector (DecidedDetector)
	// produced it.
	Robust    bool
	DecidedBy string
}

// StreamSummary is the final record of a streaming enumeration.
type StreamSummary struct {
	// Emitted counts verdicts handed to the callback; Checked counts
	// detector runs and Pruned containment decisions, over the visited
	// prefix of the lattice. Cores is the selection's core count after
	// the run.
	Emitted, Checked, Pruned, Cores int
	// Terminated is true when the run stopped before visiting every
	// subset; Reason is then one of the Reason constants.
	Terminated bool
	Reason     string
	// Report is the full subset report — identical to RobustSubsetsCtx —
	// when the traversal's robust knowledge is complete: a run that
	// visited every level, or one terminated by a robust-exhausted level
	// (everything above is non-robust by monotonicity). Nil for
	// first_non_robust and max_subsets terminations.
	Report *SubsetReport
	// TopK lists the K largest robust subsets for StreamTopK.
	TopK []Subset
	// SchedChecked/SchedHits are this run's scheduler telemetry: of the
	// detector-run masks placed in the first half of their level's visit
	// order, how many were non-robust.
	SchedChecked, SchedHits uint64
}

// Internal decidedBy encoding of the per-mask table.
const (
	dUndecided uint8 = iota
	dCore
	dCover
	dDetector
)

func decidedName(d uint8) string {
	switch d {
	case dCore:
		return DecidedCore
	case dCover:
		return DecidedCover
	default:
		return DecidedDetector
	}
}

// streamRun is the per-call state of one streaming traversal.
type streamRun struct {
	sess        *Session
	cfg         Config
	opts        StreamOptions
	emit        func(StreamVerdict) error
	programs    []*btp.Program
	groups      [][]*btp.LTP
	programMask [][]uint64
	ltpIdx      map[*btp.LTP]int32
	bs          *summary.BlockSet
	cores       *summary.CoreSet
	covers      *summary.CoverSet
	n, words    int

	verdicts []bool
	decided  []uint8

	coreHits, coverHits, misses atomic.Uint64
	discovered, freshRobust     atomic.Bool
	bail                        atomic.Bool // first_non_robust: a worker saw non-robust

	// start anchors the first_verdict span (time-to-first-verdict) when the
	// config carries a tracer; emittedFirst flips after the span fires.
	// Emission is single-goroutine (sequential inline, parallel after the
	// level's wg.Wait), so a plain bool suffices.
	start        time.Time
	emittedFirst bool

	sum StreamSummary
}

// RobustSubsetsStream is the streaming form of RobustSubsetsCtx: the same
// lattice-pruned, level-ordered enumeration over the same per-selection
// pruning state, emitting every verdict through the callback as soon as
// its level decides it, in cost-ordered (descending estimated conflict)
// visit order. A callback error aborts the traversal and is returned —
// the server maps a client disconnect onto exactly that. Early-termination
// modes (StreamOptions) stop the walk without an error; the summary says
// why. Cores minted before any exit reach the session fact store, so even
// an aborted stream warms subsequent enumerations.
//
// Full-stream verdicts are bit-identical to RobustSubsetsCtx for any
// worker count: the emitted set covers every non-empty subset and the
// summary's report is assembled from the same verdict table. The pruning
// is always on — streaming exists to shorten time-to-first-verdict, which
// DisablePruning would lengthen; cfg.DisablePruning is ignored.
func (s *Session) RobustSubsetsStream(ctx context.Context, programs []*btp.Program, cfg Config, opts StreamOptions, emit func(StreamVerdict) error) (*StreamSummary, error) {
	n := len(programs)
	if n > 20 {
		return nil, fmt.Errorf("analysis: subset enumeration over %d programs is infeasible", n)
	}
	if opts.Mode == StreamTopK && opts.K <= 0 {
		return nil, fmt.Errorf("analysis: top_k streaming needs k > 0")
	}
	tr := cfg.Tracer
	var t0 time.Time
	if tr != nil {
		ctx = cfg.traceCtx(ctx)
		t0 = time.Now()
	}
	groups, all, err := s.ltpUniverse(programs, cfg.bound(), cfg.parallelism())
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Span(obs.PhaseValidateUnfold, time.Since(t0))
	}
	words := (len(all) + 63) / 64
	programMask := programMasks(groups, words)
	entry := s.latticeFor(cfg, programs, programMask, words)

	r := &streamRun{
		sess:        s,
		cfg:         cfg,
		opts:        opts,
		emit:        emit,
		programs:    programs,
		groups:      groups,
		programMask: programMask,
		bs:          s.Blocks(cfg.Setting),
		cores:       entry.cores,
		covers:      entry.covers,
		n:           n,
		words:       words,
		verdicts:    make([]bool, 1<<n),
		decided:     make([]uint8, 1<<n),
	}
	if tr != nil {
		r.start = time.Now()
	}
	// Witness cycles come back as graph edges over the subset's LTPs; the
	// index maps their endpoints into universe node positions for core
	// minting.
	r.ltpIdx = make(map[*btp.LTP]int32, len(all))
	for i, l := range all {
		r.ltpIdx[l] = int32(i)
	}
	// Merge discoveries into the fact store however the traversal exits —
	// same contract as the monolithic path: cores minted before a cancel,
	// a callback error or an early termination are valid facts. Covers are
	// folded (below) only when robust knowledge is complete, so an
	// early-terminated run contributes cores alone.
	defer func() {
		if r.discovered.Load() {
			s.mergeLattice(cfg, entry, programs, programMask)
		}
	}()

	if err := r.walk(ctx); err != nil {
		return nil, err
	}

	complete := !r.sum.Terminated || r.sum.Reason == ReasonLevelExhausted
	if complete {
		r.foldCovers()
	}

	ch, cvh, m := r.coreHits.Load(), r.coverHits.Load(), r.misses.Load()
	s.coreHits.Add(ch)
	s.coverHits.Add(cvh)
	s.coreMisses.Add(m)
	s.subsetsPruned.Add(ch + cvh)
	s.schedChecked.Add(r.sum.SchedChecked)
	s.schedHits.Add(r.sum.SchedHits)

	r.sum.Checked = int(m)
	r.sum.Pruned = int(ch + cvh)
	r.sum.Cores = r.cores.Len()
	if complete {
		rep := assembleReport(programs, r.verdicts)
		rep.Checked = r.sum.Checked
		rep.Pruned = r.sum.Pruned
		rep.Cores = r.sum.Cores
		r.sum.Report = rep
		if opts.Mode == StreamTopK {
			r.sum.TopK = topKBySize(rep.Robust, opts.K)
		}
	}
	return &r.sum, nil
}

// walk runs the level loop: schedule, process (sequentially or sharded),
// emit in schedule order, evaluate termination.
func (r *streamRun) walk(ctx context.Context) error {
	offs, order := latticeOrder(r.n)
	var schedBuf []int32
	var scoreBuf, wtsBuf []float64
	// static memoizes the footprint priors for the whole run (they cannot
	// change); NaN marks a pair not yet computed.
	static := make([]float64, r.n*r.n)
	for i := range static {
		static[i] = math.NaN()
	}
	seqMembers := getMask(r.words)
	defer putMask(seqMembers)
	var seqLTPs []*btp.LTP

	for level := 1; level <= r.n; level++ {
		var levelStart time.Time
		if tr := r.cfg.Tracer; tr != nil {
			levelStart = time.Now()
		}
		masks := order[offs[level]:offs[level+1]]
		if len(masks) == 0 {
			continue
		}
		// Re-estimate before every level: pairs composed by the previous
		// level's detector misses sharpen this level's schedule.
		wts := pairWeights(wtsBuf, r.bs, r.groups, static)
		wtsBuf = wts
		schedBuf, scoreBuf = orderLevel(schedBuf, scoreBuf, masks, r.n, wts)
		sched := schedBuf

		lw := r.cfg.parallelism()
		if lw > len(sched) {
			lw = len(sched)
		}
		if len(sched) < latticeParallelMin {
			lw = 1
		}
		if lw <= 1 {
			// Sequential: emit each verdict the moment it is decided, so
			// termination stops the walk mid-level without touching the
			// remaining masks.
			for _, mask := range sched {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := r.process(ctx, int(mask), seqMembers, &seqLTPs); err != nil {
					return err
				}
				stop, err := r.emitMask(int(mask))
				if err != nil {
					return err
				}
				if stop {
					r.recordSched(sched)
					return nil
				}
			}
		} else {
			// Parallel: the level is decided by a worker pool first (the
			// level barrier needs every verdict anyway), then emitted in
			// schedule order — the same emission sequence the sequential
			// walk produces. first_non_robust lets workers bail as soon as
			// any non-robust verdict lands; the masks they skip are
			// undecided and simply not emitted.
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make([]error, lw)
			for w := 0; w < lw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					defer capturePanic(&errs[w])
					members := getMask(r.words)
					defer putMask(members)
					var ltps []*btp.LTP
					for ctx.Err() == nil && !(r.opts.Mode == StreamFirstNonRobust && r.bail.Load()) {
						i := int(next.Add(1)) - 1
						if i >= len(sched) {
							return
						}
						if err := r.process(ctx, int(sched[i]), members, &ltps); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := ctx.Err(); err != nil {
				return err
			}
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			for _, mask := range sched {
				if r.decided[mask] == dUndecided {
					continue // skipped by a first_non_robust bail
				}
				stop, err := r.emitMask(int(mask))
				if err != nil {
					return err
				}
				if stop {
					r.recordSched(sched)
					return nil
				}
			}
		}
		r.recordSched(sched)
		if tr := r.cfg.Tracer; tr != nil {
			tr.Span(obs.PhaseLatticeLevel, time.Since(levelStart))
		}
		// The level barrier: supersets are only examined once every smaller
		// mask's verdict (and core) is published — the determinism and
		// minimality argument of lattice.go. It must not be elided;
		// scheduling only permutes the masks between barriers.
		if r.opts.Mode == StreamMaximalRobust || r.opts.Mode == StreamTopK {
			robustInLevel := false
			for _, mask := range sched {
				if r.verdicts[mask] {
					robustInLevel = true
					break
				}
			}
			if !robustInLevel {
				r.sum.Terminated = true
				r.sum.Reason = ReasonLevelExhausted
				return nil
			}
		}
	}
	return nil
}

// process decides one mask: core scan, cover scan, then a lazily composed
// subset graph for the misses. Identical decision logic to the monolithic
// process closure of enumerateLattice, with Compose standing in for the
// universe detector — the composed graph is exactly the universe graph
// induced on the subset's nodes, so verdicts agree bit for bit.
func (r *streamRun) process(ctx context.Context, mask int, members []uint64, ltpBuf *[]*btp.LTP) error {
	for w := range members {
		members[w] = 0
	}
	for i := 0; i < r.n; i++ {
		if mask&(1<<i) != 0 {
			orInto(members, r.programMask[i])
		}
	}
	if r.cores.Snapshot().Contains(members) {
		r.coreHits.Add(1)
		r.decided[mask] = dCore // verdicts[mask] stays false
		r.bail.Store(true)
		return nil
	}
	if r.covers.Snapshot().Covers(members) {
		r.coverHits.Add(1)
		r.verdicts[mask] = true
		r.decided[mask] = dCover
		return nil
	}
	r.misses.Add(1)
	ltps := (*ltpBuf)[:0]
	for i := 0; i < r.n; i++ {
		if mask&(1<<i) != 0 {
			ltps = append(ltps, r.groups[i]...)
		}
	}
	*ltpBuf = ltps
	var t0 time.Time
	if tr := r.cfg.Tracer; tr != nil {
		t0 = time.Now()
	}
	g, err := summary.ComposeCtx(ctx, r.bs, ltps, 1)
	if err != nil {
		return err
	}
	if tr := r.cfg.Tracer; tr != nil {
		tr.Span(obs.PhaseCompose, time.Since(t0))
		t0 = time.Now()
	}
	ok, wit := g.RobustWith(r.cfg.Method, 1)
	if tr := r.cfg.Tracer; tr != nil {
		tr.Span(obs.PhaseDetect, time.Since(t0))
	}
	r.verdicts[mask] = ok
	r.decided[mask] = dDetector
	if ok {
		r.freshRobust.Store(true)
		return nil
	}
	r.bail.Store(true)
	wmask := getMask(r.words)
	defer putMask(wmask)
	for w := range wmask {
		wmask[w] = 0
	}
	for _, e := range wit.Cycle {
		fi, ti := r.ltpIdx[e.From], r.ltpIdx[e.To]
		wmask[fi/64] |= 1 << (uint(fi) % 64)
		wmask[ti/64] |= 1 << (uint(ti) % 64)
	}
	if r.cores.Add(minimizeCore(r.verdicts, wmask, r.programMask)) {
		r.discovered.Store(true)
	}
	return nil
}

// emitMask hands one decided verdict to the callback (modes that stream
// only robust verdicts skip the rest) and evaluates per-verdict
// termination: the emission budget, and first_non_robust's stop.
func (r *streamRun) emitMask(mask int) (stop bool, err error) {
	robust := r.verdicts[mask]
	if (r.opts.Mode == StreamMaximalRobust || r.opts.Mode == StreamTopK) && !robust {
		return false, nil
	}
	v := StreamVerdict{
		Programs:  subsetNames(r.programs, mask),
		Size:      bits.OnesCount32(uint32(mask)),
		Robust:    robust,
		DecidedBy: decidedName(r.decided[mask]),
	}
	if err := r.emit(v); err != nil {
		return true, err
	}
	if tr := r.cfg.Tracer; tr != nil && !r.emittedFirst {
		r.emittedFirst = true
		tr.Span(obs.PhaseFirstVerdict, time.Since(r.start))
	}
	r.sum.Emitted++
	if r.opts.MaxSubsets > 0 && r.sum.Emitted >= r.opts.MaxSubsets {
		r.sum.Terminated = true
		r.sum.Reason = ReasonMaxSubsets
		return true, nil
	}
	if r.opts.Mode == StreamFirstNonRobust && !robust {
		r.sum.Terminated = true
		r.sum.Reason = ReasonFirstNonRobust
		return true, nil
	}
	return false, nil
}

// recordSched accumulates the level's scheduler telemetry: of the
// detector-run masks in the first half of the schedule, how many were
// non-robust. Levels with fewer than two detector runs carry no ordering
// signal and are skipped.
func (r *streamRun) recordSched(sched []int32) {
	det := 0
	for _, mask := range sched {
		if r.decided[mask] == dDetector {
			det++
		}
	}
	if det < 2 {
		return
	}
	for _, mask := range sched[:len(sched)/2] {
		if r.decided[mask] != dDetector {
			continue
		}
		r.sum.SchedChecked++
		if !r.verdicts[mask] {
			r.sum.SchedHits++
		}
	}
}

// foldCovers folds the run's detector-decided robust verdicts into the
// cover set, largest masks first — the streaming analogue of the
// monolithic post-pass. Only complete runs call it; the decided table
// keeps undecided masks (skipped levels, bailed workers) out by
// construction.
func (r *streamRun) foldCovers() {
	if !r.freshRobust.Load() {
		return
	}
	offs, order := latticeOrder(r.n)
	members := getMask(r.words)
	defer putMask(members)
	for level := r.n; level >= 1; level-- {
		for _, mask := range order[offs[level]:offs[level+1]] {
			if r.decided[mask] != dDetector || !r.verdicts[mask] {
				continue
			}
			for w := range members {
				members[w] = 0
			}
			for i := 0; i < r.n; i++ {
				if int(mask)&(1<<i) != 0 {
					orInto(members, r.programMask[i])
				}
			}
			if r.covers.Add(members) {
				r.discovered.Store(true)
			}
		}
	}
}

// subsetNames renders a mask as sorted program short names.
func subsetNames(programs []*btp.Program, mask int) []string {
	names := make([]string, 0, bits.OnesCount32(uint32(mask)))
	for i := range programs {
		if mask&(1<<i) != 0 {
			names = append(names, programs[i].ShortName())
		}
	}
	sort.Strings(names)
	return names
}

// topKBySize returns the k largest robust subsets, size-descending with
// lexicographic tiebreak. The input arrives smallest-first (report order)
// and is not mutated.
func topKBySize(robust []Subset, k int) []Subset {
	sorted := append([]Subset(nil), robust...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) > len(sorted[j])
		}
		for x := range sorted[i] {
			if sorted[i][x] != sorted[j][x] {
				return sorted[i][x] < sorted[j][x]
			}
		}
		return false
	})
	if k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}

// maskPool recycles the per-worker membership and witness bitsets of the
// lattice traversals — the per-level allocation hot spot the allocs/op
// benchmarks watch.
var maskPool sync.Pool

// getMask returns a bitset of the given word count; contents are
// unspecified and every caller zeroes before use.
func getMask(words int) []uint64 {
	if v := maskPool.Get(); v != nil {
		if m := v.([]uint64); cap(m) >= words {
			return m[:words]
		}
	}
	return make([]uint64, words)
}

func putMask(m []uint64) {
	if cap(m) > 0 {
		maskPool.Put(m[:cap(m)]) //nolint:staticcheck // []uint64 header is small
	}
}
