package analysis

import (
	"math"
	"sort"

	"repro/internal/btp"
	"repro/internal/summary"
)

// This file is the cost-ordered scheduler of the streaming lattice
// enumeration (stream.go): within a level, subsets are visited in
// descending estimated-non-robustness order, so the detector reaches
// conflict-dense subsets first — cores are minted early, first_non_robust
// terminates after a prefix of the level, and containment pruning of later
// *levels* compounds sooner. The estimate orders work, never decides it:
// every verdict still comes from containment or the detector, and because
// cores minted at level k have size k (they cannot prune size-k siblings),
// intra-level reordering changes neither the verdict set nor the
// deterministic pruned count — only the order verdicts become known.
//
// The estimate is a per-ordered-program-pair conflict weight: the edge
// count of the pair's cached summary edge blocks (summary.BlockSet), with
// counterflow edges weighted heavier — dangerous cycles need them — and a
// static statement-footprint prior for pairs whose blocks have not been
// composed yet (the cold start, before level 2 has touched any cross pair).
// Weights are recomputed before each level, so blocks composed while
// processing level k sharpen the schedule of level k+1.

// counterflowWeight is how much heavier a counterflow edge weighs than a
// plain edge in the conflict estimate.
const counterflowWeight = 3

// pairWeights estimates, for every ordered program pair (i, j), the
// conflict density the pair contributes to a subset containing both: the
// summed edge counts of the cached blocks between i's and j's LTPs
// (counterflow-weighted), falling back to the static prior when no block
// of the pair is cached yet. The diagonal (i, i) scores a program's
// conflicts with its own sibling LTPs, which is what orders singleton
// subsets — a level-1 non-robust program (a dangerous cycle within one
// program) is exactly a high self-conflict one.
// The static priors are memoized in static (same n*n layout, NaN =
// not yet computed): footprints never change within a run, so each pair's
// prior is computed at most once however many levels re-estimate. dst is
// scratch reused across levels.
func pairWeights(dst []float64, bs *summary.BlockSet, groups [][]*btp.LTP, static []float64) []float64 {
	n := len(groups)
	if cap(dst) < n*n {
		dst = make([]float64, n*n)
	}
	dst = dst[:n*n]
	for i := range groups {
		for j := range groups {
			known := false
			var score float64
			for _, li := range groups[i] {
				for _, lj := range groups[j] {
					if edges, cf, ok := bs.CachedPairStats(li, lj); ok {
						known = true
						score += float64(edges) + (counterflowWeight-1)*float64(cf)
					}
				}
			}
			if !known {
				if math.IsNaN(static[i*n+j]) {
					static[i*n+j] = staticConflict(groups[i], groups[j])
				}
				score = static[i*n+j]
			}
			dst[i*n+j] = score
		}
	}
	return dst
}

// staticConflict is the cold-start prior for an uncomposed ordered pair:
// statement pairs on a shared relation score 2 when both write (write-write
// conflicts seed counterflow edges) and 1 when one side writes. Pure
// footprint inspection — no summary construction.
func staticConflict(a, b []*btp.LTP) float64 {
	var score float64
	for _, la := range a {
		for _, lb := range b {
			for _, oa := range la.Stmts {
				qa := oa.Stmt
				aw := qa.Type.HasWrite()
				for _, ob := range lb.Stmts {
					qb := ob.Stmt
					if qa.Rel != qb.Rel {
						continue
					}
					switch {
					case aw && qb.Type.HasWrite():
						score += 2
					case aw || qb.Type.HasWrite():
						score++
					}
				}
			}
		}
	}
	return score
}

// orderLevel copies the level's masks into dst sorted by descending
// estimated conflict score — the summed pair weights over the subset's
// unordered program pairs (both directions) plus each member's diagonal
// self-conflict weight — with ascending mask as the deterministic
// tiebreak. scores is scratch reused across levels.
func orderLevel(dst []int32, scores []float64, masks []int32, n int, wts []float64) ([]int32, []float64) {
	dst = append(dst[:0], masks...)
	scores = scores[:0]
	for _, mask := range masks {
		var score float64
		m := uint32(mask)
		for a := 0; a < n; a++ {
			if m&(1<<a) == 0 {
				continue
			}
			score += wts[a*n+a]
			for b := a + 1; b < n; b++ {
				if m&(1<<b) == 0 {
					continue
				}
				score += wts[a*n+b] + wts[b*n+a]
			}
		}
		scores = append(scores, score)
	}
	// The masks slice arrives in ascending order, so a stable sort by
	// descending score keeps the ascending-mask tiebreak.
	sort.Stable(&levelSorter{masks: dst, scores: scores})
	return dst, scores
}

// levelSorter sorts a level's masks and their scores in lockstep,
// descending by score.
type levelSorter struct {
	masks  []int32
	scores []float64
}

func (s *levelSorter) Len() int { return len(s.masks) }
func (s *levelSorter) Swap(i, j int) {
	s.masks[i], s.masks[j] = s.masks[j], s.masks[i]
	s.scores[i], s.scores[j] = s.scores[j], s.scores[i]
}
func (s *levelSorter) Less(i, j int) bool { return s.scores[i] > s.scores[j] }
