package analysis_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/obs"
	"repro/internal/robust"
)

func phaseMap(spans []obs.PhaseTiming) map[string]obs.PhaseTiming {
	m := make(map[string]obs.PhaseTiming, len(spans))
	for _, s := range spans {
		m[s.Phase] = s
	}
	return m
}

// TestTracerPhasesCheck asserts a traced check emits the validate/unfold,
// pairs, compose and detect spans on a cold session — and that pairs, the
// Algorithm 1 sub-span of compose, disappears once the block cache is warm.
func TestTracerPhasesCheck(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)

	cold := obs.NewSpanRecorder()
	cfg := analysis.DefaultConfig()
	cfg.Tracer = cold
	res, err := sess.Check(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phases := phaseMap(cold.Snapshot())
	for _, want := range []string{obs.PhaseValidateUnfold, obs.PhasePairs, obs.PhaseCompose, obs.PhaseDetect} {
		if _, ok := phases[want]; !ok {
			t.Errorf("cold check missing phase %s (got %v)", want, cold.Snapshot())
		}
	}
	if p, c := phases[obs.PhasePairs], phases[obs.PhaseCompose]; p.Total > c.Total {
		t.Errorf("pairs (%v) is a sub-span of compose (%v) and cannot exceed it", p.Total, c.Total)
	}
	if phases[obs.PhaseDetect].Count != 1 {
		t.Errorf("check ran %d detect spans, want 1", phases[obs.PhaseDetect].Count)
	}

	warm := obs.NewSpanRecorder()
	cfg.Tracer = warm
	res2, err := sess.Check(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Robust != res.Robust {
		t.Error("tracing changed the verdict")
	}
	warmPhases := phaseMap(warm.Snapshot())
	if _, ok := warmPhases[obs.PhasePairs]; ok {
		t.Error("warm check emitted a pairs span (block cache was full)")
	}
	if _, ok := warmPhases[obs.PhaseCompose]; !ok {
		t.Error("warm check missing compose span")
	}
}

// TestTracerPhasesSubsets asserts a traced enumeration emits one
// lattice_level span per subset size and does not change the report.
func TestTracerPhasesSubsets(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)

	plain, err := sess.RobustSubsets(bench.Programs, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder()
	cfg := analysis.DefaultConfig()
	cfg.Tracer = rec
	traced, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the verdict sets, not the whole report — the warm run's
	// pruning telemetry legitimately differs from the cold run's.
	if !reflect.DeepEqual(plain.Robust, traced.Robust) || !reflect.DeepEqual(plain.Maximal, traced.Maximal) {
		t.Error("tracing changed the subsets verdicts")
	}
	phases := phaseMap(rec.Snapshot())
	if got := phases[obs.PhaseLatticeLevel].Count; got != uint64(len(bench.Programs)) {
		t.Errorf("lattice_level spans = %d, want one per level = %d", got, len(bench.Programs))
	}
	if _, ok := phases[obs.PhaseFirstVerdict]; ok {
		t.Error("non-streamed enumeration must not emit first_verdict")
	}
}

// TestTracerPhasesStream asserts a traced stream emits exactly one
// first_verdict span (time-to-first-verdict) plus per-level and per-detect
// spans.
func TestTracerPhasesStream(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	rec := obs.NewSpanRecorder()
	cfg := analysis.DefaultConfig()
	cfg.Tracer = rec

	verdicts := 0
	_, err := sess.RobustSubsetsStream(context.Background(), bench.Programs, cfg,
		analysis.StreamOptions{Mode: analysis.StreamAll},
		func(analysis.StreamVerdict) error { verdicts++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := 1<<len(bench.Programs) - 1; verdicts != want {
		t.Fatalf("stream emitted %d verdicts, want %d", verdicts, want)
	}
	phases := phaseMap(rec.Snapshot())
	if got := phases[obs.PhaseFirstVerdict].Count; got != 1 {
		t.Errorf("first_verdict spans = %d, want exactly 1", got)
	}
	if got := phases[obs.PhaseLatticeLevel].Count; got != uint64(len(bench.Programs)) {
		t.Errorf("lattice_level spans = %d, want %d", got, len(bench.Programs))
	}
	for _, want := range []string{obs.PhaseValidateUnfold, obs.PhaseCompose, obs.PhaseDetect} {
		if _, ok := phases[want]; !ok {
			t.Errorf("stream missing phase %s", want)
		}
	}
}

// TestNilTracerZeroAllocOverhead pins the zero-cost claim of the nil-fast
// default: a warm pruned enumeration with observability disabled stays at
// its seed allocation budget (the CI allocs gate enforces the same bound
// against the committed benchmark artifact). Sequential, so the count is
// deterministic.
func TestNilTracerZeroAllocOverhead(t *testing.T) {
	bench := benchmarks.SmallBank()
	checker := robust.NewChecker(bench.Schema)
	checker.Parallelism = 1
	if _, err := checker.RobustSubsets(bench.Programs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := checker.RobustSubsets(bench.Programs); err != nil {
			t.Fatal(err)
		}
	})
	// The warm sequential budget is ~60 allocs (see BENCH_PR6.json); 80
	// leaves room for jitter while catching any per-span or per-level
	// allocation leaking past the nil-tracer branch.
	if allocs > 80 {
		t.Errorf("warm pruned enumeration = %.0f allocs/op with nil tracer, want <= 80", allocs)
	}
}
