package analysis

import (
	"sort"
	"strings"
)

// Subset is a subset of programs identified by their short names, sorted.
type Subset []string

// String renders the subset as "{A, B, C}".
func (s Subset) String() string { return "{" + strings.Join(s, ", ") + "}" }

// ContainsAll reports whether s is a superset of t.
func (s Subset) ContainsAll(t Subset) bool {
	set := make(map[string]bool, len(s))
	for _, n := range s {
		set[n] = true
	}
	for _, n := range t {
		if !set[n] {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality (both sides sorted).
func (s Subset) Equal(t Subset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetReport lists every robust subset and the maximal ones among them.
type SubsetReport struct {
	// Robust lists all non-empty robust subsets, smallest first, then
	// lexicographic.
	Robust []Subset
	// Maximal lists the robust subsets not strictly contained in another
	// robust subset — the entries of Figures 6 and 7.
	Maximal []Subset

	// Enumeration telemetry (zero for the naive oracle): Checked counts
	// subsets decided by running the cycle detector, Pruned counts subsets
	// decided by the minimal-core containment test instead, and Cores is
	// the number of minimal non-robust cores known when the enumeration
	// finished (seeds included). Checked+Pruned = 2^n − 1 for the pruned
	// traversal. Deterministic for a given session state: level-order
	// processing makes the pruning independent of worker count and
	// scheduling.
	Checked int
	Pruned  int
	Cores   int
	// CertifiedCores counts the known cores relevant to this selection that
	// carry the certified provenance bit: minimal non-robust program sets
	// whose non-robustness has been proven by a replayed non-serializable
	// execution (internal/certify), not only by the static analysis. Zero
	// for the naive oracle and the flat (pruning-disabled) enumeration,
	// which do not consult the core store.
	CertifiedCores int
}

// String renders the maximal subsets on one line, as in Figure 6.
func (r *SubsetReport) String() string {
	parts := make([]string, len(r.Maximal))
	for i, s := range r.Maximal {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// NewSubsetReport assembles a report from the robust subsets of one
// enumeration: it sorts them (smallest first, then lexicographic) and
// derives the maximal ones. Both the engine and the naive oracle build
// their reports through this function, so any divergence between the two
// paths is a divergence in per-subset verdicts.
//
// Maximality is derived by bitmask containment when the subsets span at
// most 64 distinct names (always true for the engine, whose enumeration
// guard caps programs at 20) — the O(R²) scan then costs word operations
// instead of a map per pair; the name-set path is kept for wider inputs.
func NewSubsetReport(robust []Subset) *SubsetReport {
	report := &SubsetReport{Robust: robust}
	sortSubsets(report.Robust)
	idx := make(map[string]int, 24)
	for _, s := range report.Robust {
		for _, n := range s {
			if _, ok := idx[n]; !ok {
				idx[n] = len(idx)
			}
		}
	}
	isMaximal := func(i int) bool {
		s := report.Robust[i]
		for _, t := range report.Robust {
			if len(t) > len(s) && t.ContainsAll(s) {
				return false
			}
		}
		return true
	}
	if len(idx) <= 64 {
		masks := make([]uint64, len(report.Robust))
		for i, s := range report.Robust {
			for _, n := range s {
				masks[i] |= 1 << idx[n]
			}
		}
		isMaximal = func(i int) bool {
			for j, t := range report.Robust {
				if len(t) > len(report.Robust[i]) && masks[i]&^masks[j] == 0 {
					return false
				}
			}
			return true
		}
	}
	for i := range report.Robust {
		if isMaximal(i) {
			report.Maximal = append(report.Maximal, report.Robust[i])
		}
	}
	// Report largest maximal subsets first, as the paper does.
	sort.SliceStable(report.Maximal, func(i, j int) bool {
		if len(report.Maximal[i]) != len(report.Maximal[j]) {
			return len(report.Maximal[i]) > len(report.Maximal[j])
		}
		return less(report.Maximal[i], report.Maximal[j])
	})
	return report
}

func sortSubsets(subsets []Subset) {
	sort.SliceStable(subsets, func(i, j int) bool {
		if len(subsets[i]) != len(subsets[j]) {
			return len(subsets[i]) < len(subsets[j])
		}
		return less(subsets[i], subsets[j])
	})
}

func less(a, b Subset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
