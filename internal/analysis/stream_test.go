package analysis_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/summary"
)

// collectStream runs a full streaming enumeration on a fresh session and
// returns the emitted verdicts in order plus the summary.
func collectStream(t *testing.T, bench *benchmarks.Benchmark, cfg analysis.Config, opts analysis.StreamOptions) ([]analysis.StreamVerdict, *analysis.StreamSummary) {
	t.Helper()
	var got []analysis.StreamVerdict
	sum, err := analysis.NewSession(bench.Schema).RobustSubsetsStream(
		context.Background(), bench.Programs, cfg, opts,
		func(v analysis.StreamVerdict) error {
			got = append(got, v)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return got, sum
}

// TestStreamMatchesMonolithic is the streaming ground-truth test: for every
// fixed benchmark × all four settings × sequential and parallel levels, a
// full stream must (a) emit exactly the 2^n − 1 subsets, (b) emit verdicts
// that agree subset-by-subset with the monolithic report, (c) assemble a
// summary report identical to RobustSubsetsCtx including the Checked/Pruned
// split, and (d) emit in an order independent of the worker count — the
// emission order is the deterministic cost-ordered schedule, not a race.
func TestStreamMatchesMonolithic(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		for _, setting := range summary.AllSettings {
			t.Run(fmt.Sprintf("%s/%s", bench.Name, setting), func(t *testing.T) {
				mono, err := analysis.NewSession(bench.Schema).RobustSubsets(
					bench.Programs, analysis.Config{Setting: setting, Parallelism: 4})
				if err != nil {
					t.Fatal(err)
				}
				robustByKey := make(map[string]bool)
				for _, s := range mono.Robust {
					robustByKey[s.String()] = true
				}

				var baseOrder []analysis.StreamVerdict
				for _, par := range []int{1, 8} {
					cfg := analysis.Config{Setting: setting, Parallelism: par}
					got, sum := collectStream(t, bench, cfg, analysis.StreamOptions{})
					total := (1 << len(bench.Programs)) - 1
					if len(got) != total || sum.Emitted != total {
						t.Fatalf("par=%d: emitted %d/%d verdicts, want %d", par, len(got), sum.Emitted, total)
					}
					if sum.Terminated || sum.Reason != "" {
						t.Errorf("par=%d: full stream reported termination: %+v", par, sum)
					}
					for _, v := range got {
						key := analysis.Subset(v.Programs).String()
						if v.Robust != robustByKey[key] {
							t.Errorf("par=%d: %s robust=%t, monolithic says %t", par, key, v.Robust, robustByKey[key])
						}
						if len(v.Programs) != v.Size {
							t.Errorf("par=%d: %s size %d", par, key, v.Size)
						}
					}
					if sum.Report == nil || sum.Report.String() != mono.String() {
						t.Errorf("par=%d: stream report diverges\nstream: %v\nmono:   %v", par, sum.Report, mono)
					}
					if sum.Report.Checked != mono.Checked || sum.Report.Pruned != mono.Pruned {
						t.Errorf("par=%d: checked/pruned %d/%d, monolithic %d/%d",
							par, sum.Report.Checked, sum.Report.Pruned, mono.Checked, mono.Pruned)
					}
					if baseOrder == nil {
						baseOrder = got
					} else if !reflect.DeepEqual(got, baseOrder) {
						t.Errorf("par=%d: emission order differs from par=1", par)
					}
				}
			})
		}
	}
}

// TestStreamFirstNonRobust: the mode must stop exactly at the first
// non-robust verdict of the full stream's deterministic emission order —
// the emitted sequence is a strict prefix of the full stream's, everything
// before the last verdict is robust, and by level order the terminal subset
// is a smallest non-robust one.
func TestStreamFirstNonRobust(t *testing.T) {
	bench := benchmarks.SmallBank()
	cfg := analysis.Config{Parallelism: 1}
	full, _ := collectStream(t, bench, cfg, analysis.StreamOptions{})
	firstNR := -1
	for i, v := range full {
		if !v.Robust {
			firstNR = i
			break
		}
	}
	if firstNR < 0 {
		t.Fatal("SmallBank's full lattice has no non-robust subset — the fixture is broken")
	}

	for _, par := range []int{1, 8} {
		cfg := analysis.Config{Parallelism: par}
		got, sum := collectStream(t, bench, cfg, analysis.StreamOptions{Mode: analysis.StreamFirstNonRobust})
		if !sum.Terminated || sum.Reason != analysis.ReasonFirstNonRobust {
			t.Fatalf("par=%d: terminated=%t reason=%q", par, sum.Terminated, sum.Reason)
		}
		if !reflect.DeepEqual(got, full[:firstNR+1]) {
			t.Errorf("par=%d: emitted sequence is not the full stream's prefix up to the first non-robust verdict:\ngot:  %v\nwant: %v",
				par, got, full[:firstNR+1])
		}
		last := got[len(got)-1]
		for _, v := range full {
			if !v.Robust && v.Size < last.Size {
				t.Errorf("par=%d: terminal subset %v (size %d) is not a smallest non-robust one (%v is smaller)",
					par, last.Programs, last.Size, v.Programs)
			}
		}
		if sum.Report != nil {
			t.Errorf("par=%d: early-terminated stream carries a report", par)
		}
	}

	// A selection with no non-robust subset streams to completion: any
	// maximal robust subset of the full report works as the selection.
	mono, err := analysis.NewSession(bench.Schema).RobustSubsets(bench.Programs, analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	robustSel := mono.Maximal[0]
	programs := selectPrograms(t, bench, robustSel)
	var emitted int
	sum, err := analysis.NewSession(bench.Schema).RobustSubsetsStream(
		context.Background(), programs, analysis.Config{},
		analysis.StreamOptions{Mode: analysis.StreamFirstNonRobust},
		func(v analysis.StreamVerdict) error {
			if !v.Robust {
				t.Errorf("robust selection emitted non-robust %v", v.Programs)
			}
			emitted++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Terminated || emitted != (1<<len(programs))-1 {
		t.Errorf("robust selection: terminated=%t emitted=%d want %d", sum.Terminated, emitted, (1<<len(programs))-1)
	}
}

// TestStreamMaximalRobustAndTopK: both modes emit only robust verdicts and
// still recover the exact maximal-robust answer; top_k additionally ranks
// the K largest robust subsets. The oracle is the monolithic report.
func TestStreamMaximalRobustAndTopK(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		mono, err := analysis.NewSession(bench.Schema).RobustSubsets(bench.Programs, analysis.Config{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 8} {
			cfg := analysis.Config{Parallelism: par}
			got, sum := collectStream(t, bench, cfg, analysis.StreamOptions{Mode: analysis.StreamMaximalRobust})
			for _, v := range got {
				if !v.Robust {
					t.Errorf("%s par=%d: maximal-robust mode emitted non-robust %v", bench.Name, par, v.Programs)
				}
			}
			if len(got) != len(mono.Robust) {
				t.Errorf("%s par=%d: emitted %d robust subsets, monolithic has %d", bench.Name, par, len(got), len(mono.Robust))
			}
			if sum.Report == nil || !reflect.DeepEqual(sum.Report.Maximal, mono.Maximal) {
				t.Errorf("%s par=%d: maximal sets diverge:\nstream: %v\nmono:   %v", bench.Name, par, sum.Report, mono.Maximal)
			}

			const k = 3
			_, sum = collectStream(t, bench, cfg, analysis.StreamOptions{Mode: analysis.StreamTopK, K: k})
			want := topKOracle(mono.Robust, k)
			if !reflect.DeepEqual(sum.TopK, want) {
				t.Errorf("%s par=%d: top-%d diverges:\nstream: %v\nwant:   %v", bench.Name, par, k, sum.TopK, want)
			}
		}
	}

	// top_k without a positive K is a usage error.
	bench := benchmarks.SmallBank()
	_, err := analysis.NewSession(bench.Schema).RobustSubsetsStream(
		context.Background(), bench.Programs, analysis.Config{},
		analysis.StreamOptions{Mode: analysis.StreamTopK},
		func(analysis.StreamVerdict) error { return nil })
	if err == nil {
		t.Error("top_k with K=0 accepted")
	}
}

// topKOracle reimplements the ranking independently: size-descending, then
// lexicographic ascending, truncated to k.
func topKOracle(robust []analysis.Subset, k int) []analysis.Subset {
	out := append([]analysis.Subset(nil), robust...)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i].String() < out[j].String()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestStreamMaxSubsets: the budget caps emission in any mode and the
// emitted sequence stays the deterministic prefix.
func TestStreamMaxSubsets(t *testing.T) {
	bench := benchmarks.SmallBank()
	cfg := analysis.Config{Parallelism: 1}
	full, _ := collectStream(t, bench, cfg, analysis.StreamOptions{})
	const budget = 5
	got, sum := collectStream(t, bench, cfg, analysis.StreamOptions{MaxSubsets: budget})
	if !sum.Terminated || sum.Reason != analysis.ReasonMaxSubsets || sum.Emitted != budget {
		t.Fatalf("terminated=%t reason=%q emitted=%d", sum.Terminated, sum.Reason, sum.Emitted)
	}
	if !reflect.DeepEqual(got, full[:budget]) {
		t.Errorf("budgeted emission is not the full stream's prefix:\ngot:  %v\nwant: %v", got, full[:budget])
	}
}

// TestStreamEmitErrorAborts: a callback error (the server's client
// disconnect) must abort the traversal, surface as the return error, and
// leave the enumeration visibly unfinished — the session's detector-miss
// counter stays strictly below the full lattice's.
func TestStreamEmitErrorAborts(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	boom := errors.New("client went away")
	emitted := 0
	_, err := sess.RobustSubsetsStream(context.Background(), bench.Programs,
		analysis.Config{Parallelism: 1}, analysis.StreamOptions{},
		func(analysis.StreamVerdict) error {
			emitted++
			if emitted == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	total := (1 << len(bench.Programs)) - 1
	if misses := sess.Stats().Cores.Misses; misses >= uint64(total) {
		t.Errorf("aborted stream still ran the detector %d times (full lattice is %d)", misses, total)
	}
}

// TestStreamContextCancel: cancelling the request context mid-stream stops
// the walk with the context's error; no further verdicts are emitted after
// the cancel and the detector does not finish the lattice.
func TestStreamContextCancel(t *testing.T) {
	bench := benchmarks.SmallBank()
	for _, par := range []int{1, 8} {
		sess := analysis.NewSession(bench.Schema)
		ctx, cancel := context.WithCancel(context.Background())
		emitted := 0
		_, err := sess.RobustSubsetsStream(ctx, bench.Programs,
			analysis.Config{Parallelism: par}, analysis.StreamOptions{},
			func(analysis.StreamVerdict) error {
				emitted++
				if emitted == 3 {
					cancel()
				}
				return nil
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		total := (1 << len(bench.Programs)) - 1
		if emitted >= total {
			t.Errorf("par=%d: cancelled stream emitted the whole lattice (%d)", par, emitted)
		}
		if misses := sess.Stats().Cores.Misses; misses >= uint64(total) {
			t.Errorf("par=%d: cancelled stream ran the detector %d times", par, misses)
		}
	}
}

// TestStreamWarmsSession: cores minted by an early-terminated stream must
// reach the session fact store — a subsequent monolithic enumeration
// prunes with them (the one-directional cache interplay the server relies
// on).
func TestStreamWarmsSession(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	_, sum := func() ([]analysis.StreamVerdict, *analysis.StreamSummary) {
		var got []analysis.StreamVerdict
		sum, err := sess.RobustSubsetsStream(context.Background(), bench.Programs,
			analysis.Config{}, analysis.StreamOptions{Mode: analysis.StreamFirstNonRobust},
			func(v analysis.StreamVerdict) error { got = append(got, v); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return got, sum
	}()
	if !sum.Terminated || sum.Cores == 0 {
		t.Fatalf("first_non_robust did not mint a core: %+v", sum)
	}
	if len(sess.ExportCores()) == 0 {
		t.Fatal("terminated stream merged no cores into the session store")
	}
	rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Error("monolithic run after a terminated stream pruned nothing")
	}
}

// selectPrograms maps a subset of short names back to the benchmark's
// program values.
func selectPrograms(t *testing.T, bench *benchmarks.Benchmark, names analysis.Subset) []*btp.Program {
	t.Helper()
	var out []*btp.Program
	for _, p := range bench.Programs {
		for _, n := range names {
			if p.ShortName() == n {
				out = append(out, p)
			}
		}
	}
	if len(out) != len(names) {
		t.Fatalf("selection %v resolved to %d programs", names, len(out))
	}
	return out
}
