package analysis_test

import (
	"bytes"
	"context"
	"errors"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/obs"
)

// workerPanicTracer panics on the first matching phase span emitted off the
// test goroutine — i.e. inside an enumeration worker. Sequential spans
// (emitted on the caller's goroutine) are left alone: a panic there would
// propagate to the test itself rather than exercise the pool recovery, and
// in production it is the HTTP middleware's recovery that catches it.
type workerPanicTracer struct {
	phase string
	fired atomic.Bool
}

func (tr *workerPanicTracer) Span(phase string, _ time.Duration) {
	if phase != tr.phase {
		return
	}
	if bytes.Contains(debug.Stack(), []byte("testing.tRunner")) {
		return
	}
	if tr.fired.CompareAndSwap(false, true) {
		panic("injected tracer panic")
	}
}

// TestLatticePanicSurfacesAsError injects a panic into a lattice
// enumeration worker and asserts it surfaces as *analysis.PanicError from
// RobustSubsetsCtx instead of killing the process — and that the session
// stays usable afterwards with an unchanged verdict set.
func TestLatticePanicSurfacesAsError(t *testing.T) {
	bench := benchmarks.AuctionN(4)
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	cfg.Parallelism = 4
	tr := &workerPanicTracer{phase: obs.PhaseDetect}
	cfg.Tracer = tr

	_, err := sess.RobustSubsetsCtx(context.Background(), bench.Programs, cfg)
	if !tr.fired.Load() {
		t.Fatal("tracer never fired inside a worker; the enumeration did not take the parallel branch")
	}
	var pe *analysis.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("worker panic surfaced as %v, want *analysis.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no worker stack")
	}

	// The session survives: the same enumeration, untraced, succeeds and
	// matches a fresh session's report.
	cfg.Tracer = nil
	rep, err := sess.RobustSubsetsCtx(context.Background(), bench.Programs, cfg)
	if err != nil {
		t.Fatalf("session unusable after recovered worker panic: %v", err)
	}
	fresh := analysis.NewSession(bench.Schema)
	want, err := fresh.RobustSubsetsCtx(context.Background(), bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Robust) != len(want.Robust) || len(rep.Maximal) != len(want.Maximal) {
		t.Errorf("post-panic report diverged: %d/%d robust, want %d/%d",
			len(rep.Robust), len(rep.Maximal), len(want.Robust), len(want.Maximal))
	}
}

// TestStreamPanicSurfacesAsError injects a panic into a streaming
// enumeration worker: the stream must return *analysis.PanicError through
// its error path (the server turns it into an in-band error line), with
// emitted verdicts before the fault intact.
func TestStreamPanicSurfacesAsError(t *testing.T) {
	bench := benchmarks.AuctionN(4)
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	cfg.Parallelism = 4
	tr := &workerPanicTracer{phase: obs.PhaseDetect}
	cfg.Tracer = tr

	_, err := sess.RobustSubsetsStream(context.Background(), bench.Programs, cfg,
		analysis.StreamOptions{Mode: analysis.StreamAll},
		func(analysis.StreamVerdict) error { return nil })
	if !tr.fired.Load() {
		t.Fatal("tracer never fired inside a stream worker")
	}
	var pe *analysis.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("stream worker panic surfaced as %v, want *analysis.PanicError", err)
	}
}
