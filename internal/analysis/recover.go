package analysis

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic recovered in one of the engine's worker
// goroutines. A panic on a goroutine the engine spawned would otherwise
// kill the whole process — no deferred recovery upstream can catch it —
// so the worker pools convert it into an error that propagates through
// the normal return path, where the server maps it to a structured 500
// (and logs Stack) instead of dying mid-request.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the point of recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal: panic in analysis worker: %v", e.Value)
}

// capturePanic is the deferred recovery of a pool worker: it stores a
// *PanicError in the worker's error slot, keeping an error the worker
// already reported (the panic then happened during unwinding bookkeeping
// and the first cause wins).
func capturePanic(slot *error) {
	if p := recover(); p != nil {
		if *slot == nil {
			*slot = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}
}
