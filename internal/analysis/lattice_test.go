package analysis_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// TestLatticePruningMatchesFlat is the pruning property test: for random
// subset lattices — random program selections from every benchmark, under
// random settings and methods, on a shared (and therefore increasingly
// core-seeded) session — the pruned enumeration must return exactly the
// per-subset verdicts of the flat fan-out, and its Checked+Pruned split
// must cover the whole lattice.
func TestLatticePruningMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	benches := fixedBenchmarks()
	sessions := make(map[string]*analysis.Session)
	for _, b := range benches {
		sessions[b.Name] = analysis.NewSession(b.Schema)
	}
	for trial := 0; trial < 60; trial++ {
		bench := benches[rng.Intn(len(benches))]
		perm := rng.Perm(len(bench.Programs))
		k := 1 + rng.Intn(len(bench.Programs))
		programs := make([]*btp.Program, k)
		for i := 0; i < k; i++ {
			programs[i] = bench.Programs[perm[i]]
		}
		cfg := analysis.Config{
			Setting:     summary.AllSettings[rng.Intn(len(summary.AllSettings))],
			Method:      methods[rng.Intn(len(methods))],
			Parallelism: 1 + rng.Intn(8),
		}
		name := fmt.Sprintf("trial %d: %s k=%d %s/%s par=%d", trial, bench.Name, k, cfg.Setting, cfg.Method, cfg.Parallelism)

		pruned, err := sessions[bench.Name].RobustSubsets(programs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		flatCfg := cfg
		flatCfg.DisablePruning = true
		flat, err := analysis.NewSession(bench.Schema).RobustSubsets(programs, flatCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(pruned.Robust, flat.Robust) {
			t.Errorf("%s: robust subsets diverge\npruned: %v\nflat:   %v", name, pruned.Robust, flat.Robust)
		}
		if !reflect.DeepEqual(pruned.Maximal, flat.Maximal) {
			t.Errorf("%s: maximal subsets diverge\npruned: %v\nflat:   %v", name, pruned.Maximal, flat.Maximal)
		}
		if total := (1 << k) - 1; pruned.Checked+pruned.Pruned != total {
			t.Errorf("%s: Checked %d + Pruned %d != %d subsets", name, pruned.Checked, pruned.Pruned, total)
		}
		if flat.Pruned != 0 || flat.Checked != (1<<k)-1 {
			t.Errorf("%s: flat path reported pruning: %d/%d", name, flat.Pruned, flat.Checked)
		}
	}
}

// TestLatticePruningMatchesNaiveOracle pins the pruned enumeration to the
// paper-level ground truth across every fixed benchmark × 4 settings × 2
// methods: report-identical to the naive per-subset oracle (re-validate,
// re-unfold, re-run Algorithm 1 per subset). The flat-path equivalence of
// TestEngineEquivalenceRobustSubsets plus this test brackets the pruning
// from both sides.
func TestLatticePruningMatchesNaiveOracle(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		sess := analysis.NewSession(bench.Schema)
		for _, setting := range summary.AllSettings {
			for _, method := range methods {
				name := fmt.Sprintf("%s/%s/%s", bench.Name, setting, method)
				t.Run(name, func(t *testing.T) {
					oracle := robust.NewChecker(bench.Schema)
					oracle.Setting = setting
					oracle.Method = method
					want, err := oracle.NaiveRobustSubsets(bench.Programs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sess.RobustSubsets(bench.Programs, analysis.Config{
						Setting: setting, Method: method, Parallelism: 4,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Robust, want.Robust) || !reflect.DeepEqual(got.Maximal, want.Maximal) {
						t.Errorf("pruned enumeration diverges from naive oracle:\npruned: %v\noracle: %v", got.Robust, want.Robust)
					}
					if got.String() != want.String() {
						t.Errorf("report rendering diverges:\npruned: %s\noracle: %s", got, want)
					}
				})
			}
		}
	}
}

// TestCoreMinimality: every core the session exports must be genuinely
// minimal — the core's programs are jointly non-robust, and removing any
// single program flips the verdict to robust.
func TestCoreMinimality(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		sess := analysis.NewSession(bench.Schema)
		for _, setting := range summary.AllSettings {
			for _, method := range methods {
				if _, err := sess.RobustSubsets(bench.Programs, analysis.Config{Setting: setting, Method: method}); err != nil {
					t.Fatal(err)
				}
			}
		}
		facts := sess.ExportCores()
		if len(facts) == 0 {
			t.Fatalf("%s: no cores exported after 8 enumerations", bench.Name)
		}
		verify := analysis.NewSession(bench.Schema)
		for _, f := range facts {
			cfg := analysis.Config{Setting: f.Setting, Method: f.Method, UnfoldBound: f.Bound}
			res, err := verify.Check(f.Programs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Robust {
				t.Errorf("%s: exported core %v is robust under %s/%s — not a core at all",
					bench.Name, coreNames(f.Programs), f.Setting, f.Method)
				continue
			}
			for drop := range f.Programs {
				reduced := make([]*btp.Program, 0, len(f.Programs)-1)
				for i, p := range f.Programs {
					if i != drop {
						reduced = append(reduced, p)
					}
				}
				if len(reduced) == 0 {
					continue // singleton core: the empty set is trivially robust
				}
				res, err := verify.Check(reduced, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Robust {
					t.Errorf("%s: core %v under %s/%s not minimal — still non-robust without %s",
						bench.Name, coreNames(f.Programs), f.Setting, f.Method, f.Programs[drop].ShortName())
				}
			}
		}
	}
}

func coreNames(ps []*btp.Program) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ShortName()
	}
	return out
}

// TestPruningDeterministicAcrossParallelism: the level-order traversal's
// pruned/checked split (and therefore the wire's subsets_pruned) must not
// depend on worker count or scheduling — only on the session's seed state.
func TestPruningDeterministicAcrossParallelism(t *testing.T) {
	bench := benchmarks.SmallBank()
	type shape struct {
		report          string
		checked, pruned int
		cores           int
	}
	var base *shape
	for _, par := range []int{1, 2, 4, 16} {
		// A fresh session per worker count: identical seed state (none).
		sess := analysis.NewSession(bench.Schema)
		rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		got := &shape{rep.String(), rep.Checked, rep.Pruned, rep.Cores}
		if base == nil {
			base = got
			if base.pruned == 0 {
				t.Fatal("full SmallBank enumeration pruned nothing — the lattice is known to contain non-minimal non-robust subsets")
			}
			continue
		}
		if *got != *base {
			t.Errorf("parallelism %d changes the enumeration shape: %+v vs %+v", par, got, base)
		}
	}
}

// TestWarmSessionPrunesEveryNonRobustSubset: after one enumeration the
// session stores every minimal core and every maximal robust cover, so a
// repeat decides the entire lattice by containment — zero detector runs —
// and still produces the identical report.
func TestWarmSessionPrunesEveryNonRobustSubset(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	first, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("warm repeat diverges: %s vs %s", second, first)
	}
	total := (1 << len(bench.Programs)) - 1
	if second.Checked != 0 || second.Pruned != total {
		t.Errorf("warm repeat checked %d / pruned %d, want 0 / %d (cores decide non-robust, covers decide robust)",
			second.Checked, second.Pruned, total)
	}
	st := sess.Stats()
	if st.Cores.Pruned != uint64(first.Pruned+second.Pruned) || st.Cores.Hits+st.Cores.CoverHits != st.Cores.Pruned {
		t.Errorf("session counters inconsistent: %+v", st.Cores)
	}
	if st.Cores.Cores == 0 || st.Cores.Covers == 0 || st.Cores.SizeBytes <= 0 {
		t.Errorf("core/cover stores empty after enumerations: %+v", st.Cores)
	}
}

// TestInvalidateDropsTouchedCores: Invalidate must evict exactly the cores
// (and memoized detectors) involving the program, so a patched workload
// re-derives only those.
func TestInvalidateDropsTouchedCores(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	if _, err := sess.RobustSubsets(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	dc := bench.Program("DepositChecking")
	facts := sess.ExportCores()
	touched := 0
	for _, f := range facts {
		for _, p := range f.Programs {
			if p == dc {
				touched++
				break
			}
		}
	}
	if touched == 0 || touched == len(facts) {
		t.Fatalf("test needs a mix of touched/untouched cores, got %d/%d", touched, len(facts))
	}
	sess.Invalidate(dc)
	after := sess.ExportCores()
	if len(after) != len(facts)-touched {
		t.Errorf("Invalidate kept %d cores, want %d (dropped exactly the %d touching DC)",
			len(after), len(facts)-touched, touched)
	}
	for _, f := range after {
		for _, p := range f.Programs {
			if p == dc {
				t.Errorf("core %v still references the invalidated program", coreNames(f.Programs))
			}
		}
	}
}

// TestImportCoresSeedsPruning: importing exported facts into a fresh
// session reproduces the warm session's pruning without re-discovery.
func TestImportCoresSeedsPruning(t *testing.T) {
	bench := benchmarks.SmallBank()
	warm := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	rep, err := warm.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	facts := warm.ExportCores()

	seeded := analysis.NewSession(bench.Schema)
	if added := seeded.ImportCores(facts); added != len(facts) {
		t.Fatalf("ImportCores added %d of %d facts", added, len(facts))
	}
	// A re-import is a no-op (deduplicated).
	if added := seeded.ImportCores(facts); added != 0 {
		t.Errorf("duplicate ImportCores added %d facts", added)
	}
	got, err := seeded.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != rep.String() {
		t.Errorf("seeded report diverges: %s vs %s", got, rep)
	}
	total := (1 << len(bench.Programs)) - 1
	if got.Checked != len(rep.Robust) || got.Pruned != total-len(rep.Robust) {
		t.Errorf("seeded session checked %d / pruned %d, want %d / %d",
			got.Checked, got.Pruned, len(rep.Robust), total-len(rep.Robust))
	}
}
