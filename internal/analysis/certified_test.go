package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// TestCertifyCoreProvenance pins the certified provenance bit's life cycle
// on the session core store: marking a derived core flips its bit exactly
// once, the bit shows in exports, stats and subset reports, and it never
// changes a verdict.
func TestCertifyCoreProvenance(t *testing.T) {
	bench := benchmarks.SmallBank()
	programs := []*btp.Program{bench.Program("Balance"), bench.Program("Amalgamate")}
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.Config{}

	rep, err := sess.RobustSubsets(programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CertifiedCores != 0 {
		t.Fatalf("fresh report certified_cores = %d, want 0", rep.CertifiedCores)
	}
	if n := sess.Stats().Cores.Certified; n != 0 {
		t.Fatalf("fresh stats certified = %d, want 0", n)
	}

	// {Bal, Am} is a minimal non-robust core under the default setting;
	// certifying it upgrades the existing fact.
	if !sess.CertifyCore(cfg, programs) {
		t.Fatal("CertifyCore on a derived core reported no change")
	}
	if sess.CertifyCore(cfg, programs) {
		t.Fatal("re-certifying the same core must be a no-op")
	}
	if n := sess.Stats().Cores.Certified; n != 1 {
		t.Errorf("stats certified = %d, want 1", n)
	}

	certified := 0
	for _, f := range sess.ExportCores() {
		if f.Certified {
			certified++
			if len(f.Programs) != 2 {
				t.Errorf("certified core = %v, want the {Bal, Am} pair", f.Programs)
			}
		}
	}
	if certified != 1 {
		t.Errorf("exported certified facts = %d, want 1", certified)
	}

	// The provenance bit flows into subsequent subset reports without
	// disturbing the verdicts.
	again, err := sess.RobustSubsets(programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.CertifiedCores != 1 {
		t.Errorf("report certified_cores = %d, want 1", again.CertifiedCores)
	}
	if len(again.Robust) != len(rep.Robust) || len(again.Maximal) != len(rep.Maximal) {
		t.Errorf("certification changed verdicts: %v vs %v", again, rep)
	}
}

// TestCertifyCoreInsertsUnknownCore: certifying a core the store has not
// derived yet inserts it as a certified fact — a certificate is also a
// proof of non-robustness.
func TestCertifyCoreInsertsUnknownCore(t *testing.T) {
	bench := benchmarks.SmallBank()
	programs := []*btp.Program{bench.Program("Balance"), bench.Program("Amalgamate")}
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.Config{}

	if !sess.CertifyCore(cfg, programs) {
		t.Fatal("CertifyCore on an empty store reported no change")
	}
	facts := sess.ExportCores()
	if len(facts) != 1 || !facts[0].Certified {
		t.Fatalf("exported facts = %+v, want one certified core", facts)
	}
	if sess.CertifyCore(cfg, nil) {
		t.Error("CertifyCore(nil) must be a no-op")
	}
}

// TestCertifiedBitImportExportRoundTrip: the bit survives the export →
// import path snapshots ride on, an import of already-known facts is a
// no-op, and an import carrying a certification upgrade re-stamps the
// existing fact.
func TestCertifiedBitImportExportRoundTrip(t *testing.T) {
	bench := benchmarks.SmallBank()
	programs := []*btp.Program{bench.Program("Balance"), bench.Program("Amalgamate")}
	cfg := analysis.Config{}

	src := analysis.NewSession(bench.Schema)
	if _, err := src.RobustSubsets(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	if !src.CertifyCore(cfg, programs) {
		t.Fatal("CertifyCore failed")
	}
	facts := src.ExportCores()
	wantCertified := 0
	for _, f := range facts {
		if f.Certified {
			wantCertified++
		}
	}
	if wantCertified != 1 {
		t.Fatalf("source session exports %d certified facts, want 1", wantCertified)
	}

	dst := analysis.NewSession(bench.Schema)
	if added := dst.ImportCores(facts); added != len(facts) {
		t.Fatalf("ImportCores added %d of %d", added, len(facts))
	}
	if n := dst.Stats().Cores.Certified; n != 1 {
		t.Errorf("imported stats certified = %d, want 1", n)
	}
	back := dst.ExportCores()
	if len(back) != len(facts) {
		t.Fatalf("round trip lost facts: %d vs %d", len(back), len(facts))
	}
	for i := range back {
		if back[i].Certified != facts[i].Certified {
			t.Errorf("fact %d certified bit drifted: %t vs %t", i, back[i].Certified, facts[i].Certified)
		}
	}

	// Idempotence: importing the same facts again changes nothing.
	if added := dst.ImportCores(facts); added != 0 {
		t.Errorf("re-import added %d facts, want 0", added)
	}

	// Upgrade path: a third session that knows the core uncertified counts
	// the certification as a change when importing.
	plain := analysis.NewSession(bench.Schema)
	if _, err := plain.RobustSubsets(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	if n := plain.Stats().Cores.Certified; n != 0 {
		t.Fatalf("plain session certified = %d, want 0", n)
	}
	var certifiedOnly []analysis.CoreFact
	for _, f := range facts {
		if f.Certified {
			certifiedOnly = append(certifiedOnly, f)
		}
	}
	if added := plain.ImportCores(certifiedOnly); added != 1 {
		t.Errorf("upgrade import added %d, want 1", added)
	}
	if n := plain.Stats().Cores.Certified; n != 1 {
		t.Errorf("upgraded stats certified = %d, want 1", n)
	}
}
