package analysis

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// factStoreLen sums the fact-log lengths (cores + covers) for the config's
// core key; factStoreSince counts only the facts stamped after gen (what a
// delta feed synced at gen should consume — cover-antichain evictions make
// this differ from the net length change).
func factStoreLen(s *Session, cfg Config) int {
	return factStoreSince(s, cfg, 0)
}

func factStoreSince(s *Session, cfg Config, gen uint64) int {
	ck := coreKey{setting: cfg.Setting, method: cfg.Method, bound: cfg.bound()}
	s.mu.Lock()
	defer s.mu.Unlock()
	coreFacts, _ := s.cores[ck].factsSince(gen)
	coverFacts, _ := s.covers[ck].factsSince(gen)
	return len(coreFacts) + len(coverFacts)
}

// factStoreGen reads the store generation for the config's core key.
func factStoreGen(s *Session, cfg Config) uint64 {
	ck := coreKey{setting: cfg.Setting, method: cfg.Method, bound: cfg.bound()}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coreGen[ck]
}

// TestLatticeDeltaFeed: re-syncing a cached lattice entry after a foreign
// merge advanced the fact store must consume only the merge's delta — the
// factsSeeded counter moves by at most the number of newly appended facts,
// never by a full store re-scan. A warm repeat with no generation movement
// seeds nothing at all.
func TestLatticeDeltaFeed(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := NewSession(bench.Schema)
	cfg := DefaultConfig()

	// First enumeration of a sub-selection: discovers and merges its facts.
	sub := bench.Programs[:3]
	if _, err := sess.RobustSubsets(sub, cfg); err != nil {
		t.Fatal(err)
	}
	afterSub := sess.factsSeeded.Load()
	storeAfterSub := factStoreLen(sess, cfg)
	if storeAfterSub == 0 {
		t.Fatal("sub-selection enumeration merged no facts — fixture broken")
	}

	// Warm repeat, generation unchanged: the cached entry is returned
	// without touching the logs.
	if _, err := sess.RobustSubsets(sub, cfg); err != nil {
		t.Fatal(err)
	}
	if got := sess.factsSeeded.Load(); got != afterSub {
		t.Errorf("warm repeat re-seeded facts: %d -> %d", afterSub, got)
	}
	subGen := factStoreGen(sess, cfg)

	// The full selection creates a second entry (seeding the current store
	// into it) and discovers facts the sub-selection could not — cores and
	// covers involving the remaining programs — whose merge advances the
	// shared generation.
	if _, err := sess.RobustSubsets(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	delta := factStoreSince(sess, cfg, subGen)
	total := factStoreLen(sess, cfg)
	if delta == 0 {
		t.Fatal("full enumeration merged nothing — fixture broken")
	}
	if delta >= total {
		t.Fatalf("every fact postdates the sub sync (%d of %d) — the scenario cannot distinguish delta from re-scan", delta, total)
	}

	// Re-running the sub-selection now finds its entry stale. The re-sync
	// must feed exactly the facts stamped after its synced generation, not
	// re-scan the whole store.
	before := sess.factsSeeded.Load()
	if _, err := sess.RobustSubsets(sub, cfg); err != nil {
		t.Fatal(err)
	}
	seeded := int(sess.factsSeeded.Load() - before)
	if seeded > delta {
		t.Errorf("stale entry re-sync consumed %d facts; the foreign delta is %d (store holds %d) — the delta feed regressed to a full re-scan",
			seeded, delta, total)
	}
}

// TestSelectionCachesBounded: the per-selection memo maps must not grow
// one entry per distinct request shape forever — a long-lived server
// session sees arbitrarily many ordered selections. Distinct orderings of
// the same programs are distinct keys, so permutations of SmallBank's
// programs exercise the overflow path; verdict-bearing state must survive
// the clears (reports stay identical throughout).
func TestSelectionCachesBounded(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := NewSession(bench.Schema)
	cfg := DefaultConfig()

	base, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// All 120 permutations of the 5 programs, plus prefixes: > 256 keys in
	// total across dets and lattices if nothing bounded them.
	var permute func(ps []*btp.Program, k int)
	count := 0
	permute = func(ps []*btp.Program, k int) {
		if k == len(ps) {
			for cut := 1; cut <= len(ps); cut++ {
				if _, err := sess.RobustSubsets(ps[:cut], cfg); err != nil {
					t.Fatal(err)
				}
				count++
			}
			return
		}
		for i := k; i < len(ps); i++ {
			ps[k], ps[i] = ps[i], ps[k]
			permute(ps, k+1)
			ps[k], ps[i] = ps[i], ps[k]
		}
	}
	ps := append([]*btp.Program(nil), bench.Programs...)
	permute(ps, 0)
	if count <= selectionCacheMax {
		t.Fatalf("test issued only %d selections, need > %d to exercise the bound", count, selectionCacheMax)
	}

	sess.mu.Lock()
	dets, lattices := len(sess.dets), len(sess.lattices)
	sess.mu.Unlock()
	if dets > selectionCacheMax || lattices > selectionCacheMax {
		t.Errorf("selection caches unbounded: %d detectors, %d lattice entries (cap %d)",
			dets, lattices, selectionCacheMax)
	}

	// Verdicts are unaffected by the clears.
	again, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != base.String() {
		t.Errorf("report changed across cache clears: %s vs %s", again, base)
	}
}
