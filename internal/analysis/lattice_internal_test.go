package analysis

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// TestSelectionCachesBounded: the per-selection memo maps must not grow
// one entry per distinct request shape forever — a long-lived server
// session sees arbitrarily many ordered selections. Distinct orderings of
// the same programs are distinct keys, so permutations of SmallBank's
// programs exercise the overflow path; verdict-bearing state must survive
// the clears (reports stay identical throughout).
func TestSelectionCachesBounded(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := NewSession(bench.Schema)
	cfg := DefaultConfig()

	base, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// All 120 permutations of the 5 programs, plus prefixes: > 256 keys in
	// total across dets and lattices if nothing bounded them.
	var permute func(ps []*btp.Program, k int)
	count := 0
	permute = func(ps []*btp.Program, k int) {
		if k == len(ps) {
			for cut := 1; cut <= len(ps); cut++ {
				if _, err := sess.RobustSubsets(ps[:cut], cfg); err != nil {
					t.Fatal(err)
				}
				count++
			}
			return
		}
		for i := k; i < len(ps); i++ {
			ps[k], ps[i] = ps[i], ps[k]
			permute(ps, k+1)
			ps[k], ps[i] = ps[i], ps[k]
		}
	}
	ps := append([]*btp.Program(nil), bench.Programs...)
	permute(ps, 0)
	if count <= selectionCacheMax {
		t.Fatalf("test issued only %d selections, need > %d to exercise the bound", count, selectionCacheMax)
	}

	sess.mu.Lock()
	dets, lattices := len(sess.dets), len(sess.lattices)
	sess.mu.Unlock()
	if dets > selectionCacheMax || lattices > selectionCacheMax {
		t.Errorf("selection caches unbounded: %d detectors, %d lattice entries (cap %d)",
			dets, lattices, selectionCacheMax)
	}

	// Verdicts are unaffected by the clears.
	again, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != base.String() {
		t.Errorf("report changed across cache clears: %s vs %s", again, base)
	}
}
