package analysis_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
)

// fixedBenchmarks returns the three fixed benchmarks of Section 7.
func fixedBenchmarks() []*benchmarks.Benchmark {
	return []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(),
	}
}

// methods lists both cycle conditions.
var methods = []summary.Method{summary.TypeII, summary.TypeI}

// TestEngineEquivalenceRobustSubsets is the engine's ground-truth test:
// for every fixed benchmark under all four settings and both methods, the
// composed-graph parallel enumeration must produce a report byte-identical
// to the naive per-subset oracle (re-validate, re-unfold, re-run
// Algorithm 1 for each of the 2^n − 1 subsets).
func TestEngineEquivalenceRobustSubsets(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		// One shared session per benchmark across all 8 cells, as the
		// experiments suite uses it — cross-setting cache pollution would
		// show up here.
		sess := analysis.NewSession(bench.Schema)
		for _, setting := range summary.AllSettings {
			for _, method := range methods {
				name := fmt.Sprintf("%s/%s/%s", bench.Name, setting, method)
				t.Run(name, func(t *testing.T) {
					oracle := robust.NewChecker(bench.Schema)
					oracle.Setting = setting
					oracle.Method = method
					want, err := oracle.NaiveRobustSubsets(bench.Programs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sess.RobustSubsets(bench.Programs, analysis.Config{
						Setting: setting, Method: method, Parallelism: 4,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Robust, want.Robust) {
						t.Errorf("robust subsets diverge:\nengine: %v\noracle: %v", got.Robust, want.Robust)
					}
					if !reflect.DeepEqual(got.Maximal, want.Maximal) {
						t.Errorf("maximal subsets diverge:\nengine: %v\noracle: %v", got.Maximal, want.Maximal)
					}
					if got.String() != want.String() {
						t.Errorf("report rendering diverges:\nengine: %s\noracle: %s", got, want)
					}
				})
			}
		}
	}
}

// TestComposeMatchesBuild asserts the composed graph is identical to the
// naive construction — same edge sequence, not just the same verdict.
func TestComposeMatchesBuild(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		for _, setting := range summary.AllSettings {
			ltps := btp.UnfoldAll2(bench.Programs)
			want := summary.Build(bench.Schema, ltps, setting)
			bs := summary.NewBlockSet(bench.Schema, setting)
			got := summary.Compose(bs, ltps)
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("%s under %s: %d edges, want %d", bench.Name, setting, len(got.Edges), len(want.Edges))
			}
			for i := range got.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("%s under %s: edge %d = %s, want %s",
						bench.Name, setting, i, got.Edges[i], want.Edges[i])
				}
			}
			if got.String() != want.String() {
				t.Errorf("%s under %s: graph dump diverges", bench.Name, setting)
			}
		}
	}
}

// TestSessionCheckMatchesNaive compares the session's Check against the
// naive single-shot path on full program sets and on the classic non-robust
// SmallBank pairs.
func TestSessionCheckMatchesNaive(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	sets := [][]*btp.Program{bench.Programs}
	for _, names := range [][]string{{"WriteCheck"}, {"Balance", "WriteCheck"}, {"Amalgamate", "DepositChecking", "TransactSavings"}} {
		var ps []*btp.Program
		for _, n := range names {
			ps = append(ps, bench.Program(n))
		}
		sets = append(sets, ps)
	}
	for _, setting := range summary.AllSettings {
		for _, method := range methods {
			for _, ps := range sets {
				cfg := analysis.Config{Setting: setting, Method: method}
				got, err := sess.Check(ps, cfg)
				if err != nil {
					t.Fatal(err)
				}
				c := robust.NewChecker(bench.Schema)
				c.Setting = setting
				c.Method = method
				want := c.CheckLTPs(btp.UnfoldAll2(ps))
				if got.Robust != want.Robust {
					t.Errorf("%s/%s/%d programs: engine robust=%t, naive=%t",
						setting, method, len(ps), got.Robust, want.Robust)
				}
				if got.Graph.String() != want.Graph.String() {
					t.Errorf("%s/%s/%d programs: graph dump diverges", setting, method, len(ps))
				}
				if (got.Witness == nil) != (want.Witness == nil) {
					t.Errorf("%s/%s/%d programs: witness presence diverges", setting, method, len(ps))
				}
			}
		}
	}
}

// TestSessionMemoization asserts that unfoldings are shared across calls
// (pointer-identical LTPs) and that blocks accumulate per setting.
func TestSessionMemoization(t *testing.T) {
	bench := benchmarks.TPCC()
	sess := analysis.NewSession(bench.Schema)
	p := bench.Program("NewOrder")
	l1, err := sess.LTPs(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := sess.LTPs(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) == 0 || len(l1) != len(l2) {
		t.Fatalf("unfold lengths: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("memoized unfolding not pointer-identical")
		}
	}
	l3, err := sess.LTPs(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(l3) <= len(l1) {
		t.Fatalf("bound 3 should yield more unfoldings: %d vs %d", len(l3), len(l1))
	}
	bs := sess.Blocks(summary.SettingAttrDep)
	if bs.Len() != 0 {
		t.Fatalf("fresh block set has %d pairs", bs.Len())
	}
	if _, err := sess.Check(bench.Programs, analysis.Config{Setting: summary.SettingAttrDep}); err != nil {
		t.Fatal(err)
	}
	if got, want := bs.Len(), 13*13; got != want {
		t.Errorf("block pairs after full check = %d, want %d", got, want)
	}
	if sess.Blocks(summary.SettingAttrDep) != bs {
		t.Error("Blocks not memoized per setting")
	}
}

// TestSessionRejectsInvalidProgram checks validation errors surface (and
// are memoized) through the engine.
func TestSessionRejectsInvalidProgram(t *testing.T) {
	bench := benchmarks.Auction()
	sess := analysis.NewSession(bench.Schema)
	bad := btp.LinearProgram("Bad", &btp.Stmt{Name: "q", Type: btp.KeySel, Rel: "Nope", ReadSet: btp.Attrs()})
	for i := 0; i < 2; i++ {
		if _, err := sess.Check([]*btp.Program{bad}, analysis.DefaultConfig()); err == nil {
			t.Fatal("invalid program accepted")
		}
		if _, err := sess.RobustSubsets([]*btp.Program{bad}, analysis.DefaultConfig()); err == nil {
			t.Fatal("invalid program accepted by RobustSubsets")
		}
	}
}

// TestSessionTooManyPrograms documents the enumeration guard.
func TestSessionTooManyPrograms(t *testing.T) {
	bench := benchmarks.AuctionN(11) // 22 programs
	sess := analysis.NewSession(bench.Schema)
	if _, err := sess.RobustSubsets(bench.Programs, analysis.DefaultConfig()); err == nil {
		t.Fatal("expected infeasibility error for 22 programs")
	}
}

// TestSessionConcurrentUse hammers one session from many goroutines across
// settings, methods and program subsets; run under -race this is the
// engine's data-race test.
func TestSessionConcurrentUse(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	want := map[summary.Method]string{}
	for _, method := range methods {
		rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
			Setting: summary.SettingAttrDepFK, Method: method,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[method] = rep.String()
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			setting := summary.AllSettings[g%len(summary.AllSettings)]
			method := methods[g%len(methods)]
			for i := 0; i < 3; i++ {
				rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
					Setting: setting, Method: method, Parallelism: 4,
				})
				if err != nil {
					errc <- err
					return
				}
				if setting == summary.SettingAttrDepFK && rep.String() != want[method] {
					errc <- fmt.Errorf("concurrent report diverged: %s", rep)
					return
				}
				if _, err := sess.Check(bench.Programs, analysis.Config{Setting: setting, Method: method}); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestParallelismEquivalence sweeps worker counts and asserts identical
// reports, including the degenerate sequential case.
func TestParallelismEquivalence(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	var base string
	for i, par := range []int{1, 2, 3, 8, 64} {
		rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
			Setting: summary.SettingAttrDepFK, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = rep.String()
			continue
		}
		if rep.String() != base {
			t.Errorf("parallelism %d diverges: %s != %s", par, rep, base)
		}
	}
}

// patchedDepositChecking is a modified DepositChecking in the Appendix A
// dialect: the deposit lands in Savings instead of Checking. Used by the
// invalidation tests as the replacement program of a PATCH.
const patchedDepositChecking = `
PROGRAM DepositChecking(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q1
  UPDATE Savings SET Balance = Balance + :amount WHERE CustomerId = :c;  -- q2
  -- @fk q2 = fS(q1)
COMMIT;
`

// TestSessionInvalidatePairLevel is the incremental re-analysis acceptance
// test: after a warm full enumeration, invalidating one program must evict
// exactly that program's ordered LTP pairs; re-checking with a replacement
// program must recompute only pairs with the replacement as an endpoint
// (cache-miss delta), leave every untouched pair cached (cache-hit delta),
// and still produce verdicts identical to a fresh naive-oracle run.
func TestSessionInvalidatePairLevel(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()

	// Warm the cache: 5 linear programs, one LTP each → 25 ordered pairs.
	if _, err := sess.RobustSubsets(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	bs := sess.Blocks(cfg.Setting)
	st0 := bs.Stats()
	if st0.Pairs != 25 || st0.Misses != 25 {
		t.Fatalf("warm cache: pairs=%d misses=%d, want 25/25", st0.Pairs, st0.Misses)
	}

	old := bench.Program("DepositChecking")
	removed := sess.Invalidate(old)
	if removed != 9 {
		t.Errorf("Invalidate evicted %d pairs, want 9 (pairs with DC as an endpoint)", removed)
	}
	if got := bs.Len(); got != 16 {
		t.Errorf("pairs after invalidation = %d, want 16 untouched", got)
	}
	if st := sess.Stats(); st.Blocks.Invalidated != 9 {
		t.Errorf("session invalidated counter = %d, want 9", st.Blocks.Invalidated)
	}

	// Re-check with the patched replacement program.
	next, err := sqlbtp.ParseProgram(bench.Schema, patchedDepositChecking)
	if err != nil {
		t.Fatal(err)
	}
	next.Abbrev = old.Abbrev
	patched := make([]*btp.Program, len(bench.Programs))
	copy(patched, bench.Programs)
	for i, p := range patched {
		if p == old {
			patched[i] = next
		}
	}
	st1 := bs.Stats()
	got, err := sess.Check(patched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2 := bs.Stats()
	if miss := st2.Misses - st1.Misses; miss != 9 {
		t.Errorf("post-patch check recomputed %d pairs, want only the 9 involving the new program", miss)
	}
	if hits := st2.Hits - st1.Hits; hits != 16 {
		t.Errorf("post-patch check took %d cache hits, want all 16 untouched pairs", hits)
	}
	if st2.Pairs != 25 {
		t.Errorf("pairs after re-check = %d, want 25", st2.Pairs)
	}

	// Verdicts must match a fresh naive oracle over the patched set.
	oracle := robust.NewChecker(bench.Schema)
	oracle.Setting = cfg.Setting
	oracle.Method = cfg.Method
	want := oracle.CheckLTPs(btp.UnfoldAll2(patched))
	if got.Robust != want.Robust {
		t.Errorf("patched check: engine robust=%t, oracle=%t", got.Robust, want.Robust)
	}
	if got.Graph.String() != want.Graph.String() {
		t.Error("patched check: graph dump diverges from naive build")
	}
	gotRep, err := sess.RobustSubsets(patched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := oracle.NaiveRobustSubsets(patched)
	if err != nil {
		t.Fatal(err)
	}
	if gotRep.String() != wantRep.String() {
		t.Errorf("patched subsets diverge:\nengine: %s\noracle: %s", gotRep, wantRep)
	}
}

// TestSessionCtxCancellation asserts a cancelled context aborts both entry
// points with the context's error.
func TestSessionCtxCancellation(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RobustSubsetsCtx(ctx, bench.Programs, analysis.DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("RobustSubsetsCtx err = %v, want context.Canceled", err)
	}
	if _, err := sess.CheckCtx(ctx, bench.Programs, analysis.DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckCtx err = %v, want context.Canceled", err)
	}
	// An uncancelled context changes nothing.
	rep, err := sess.RobustSubsetsCtx(context.Background(), bench.Programs, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.RobustSubsets(bench.Programs, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != base.String() {
		t.Errorf("ctx variant diverges: %s != %s", rep, base)
	}
}

// TestInvalidateRetiresStalePairs covers the patch-under-load leak: a
// check that re-resolves an invalidated program's pairs (as an in-flight
// snapshot would) must not re-admit them to the cache.
func TestInvalidateRetiresStalePairs(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	if _, err := sess.Check(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	bs := sess.Blocks(cfg.Setting)

	old := bench.Program("DepositChecking")
	oldLTPs, err := sess.LTPs(old, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess.Invalidate(old)
	if got := bs.Len(); got != 16 {
		t.Fatalf("pairs after invalidation = %d, want 16", got)
	}
	// A straggler holding the old snapshot recomputes the pair on demand
	// but the cache must stay at 16 entries.
	if edges := bs.PairEdges(oldLTPs[0], oldLTPs[0]); edges == nil {
		// (nil is a legal empty block; the call itself must still work)
		_ = edges
	}
	if got := bs.Len(); got != 16 {
		t.Errorf("retired pair re-cached: %d pairs, want 16", got)
	}
}

// TestRetiredProgramNotRememoized: resolving an invalidated program (as an
// in-flight straggler would) must work but leave every cache untouched.
func TestRetiredProgramNotRememoized(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()
	if _, err := sess.Check(bench.Programs, cfg); err != nil {
		t.Fatal(err)
	}
	old := bench.Program("DepositChecking")
	sess.Invalidate(old)
	st0 := sess.Stats()

	// A straggler snapshot still holding the old program re-checks it.
	res, err := sess.Check([]*btp.Program{old, bench.Program("Balance")}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := robust.NewChecker(bench.Schema).CheckLTPs(
		btp.UnfoldAll2([]*btp.Program{old, bench.Program("Balance")}))
	if res.Robust != want.Robust {
		t.Errorf("straggler verdict robust=%t, oracle=%t", res.Robust, want.Robust)
	}
	st1 := sess.Stats()
	if st1.Programs != st0.Programs || st1.Unfoldings != st0.Unfoldings {
		t.Errorf("straggler re-memoized the retired program: %+v -> %+v", st0, st1)
	}
	if st1.Blocks.Pairs != st0.Blocks.Pairs {
		t.Errorf("straggler re-admitted retired pairs: %d -> %d", st0.Blocks.Pairs, st1.Blocks.Pairs)
	}
}

// TestIntraCheckParallelismEquivalence is the intra-check acceptance test:
// across every fixed benchmark, all four settings and both methods, a
// single Check run fully sequentially (Parallelism 1) and one run with
// sharded edge-block construction + parallel closure (Parallelism 8) must
// both match the naive oracle — same verdict, identical graph dump,
// matching witness presence. Under -race this doubles as the data-race test
// of the sharded construction.
func TestIntraCheckParallelismEquivalence(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		for _, setting := range summary.AllSettings {
			for _, method := range methods {
				name := fmt.Sprintf("%s/%s/%s", bench.Name, setting, method)
				t.Run(name, func(t *testing.T) {
					oracle := robust.NewChecker(bench.Schema)
					oracle.Setting = setting
					oracle.Method = method
					want := oracle.CheckLTPs(btp.UnfoldAll2(bench.Programs))
					for _, par := range []int{1, 8} {
						// A fresh session per parallelism level so both
						// exercise cold construction, not cache reads.
						sess := analysis.NewSession(bench.Schema)
						got, err := sess.Check(bench.Programs, analysis.Config{
							Setting: setting, Method: method, Parallelism: par,
						})
						if err != nil {
							t.Fatal(err)
						}
						if got.Robust != want.Robust {
							t.Errorf("parallelism %d: robust=%t, oracle=%t", par, got.Robust, want.Robust)
						}
						if got.Graph.String() != want.Graph.String() {
							t.Errorf("parallelism %d: graph dump diverges from oracle", par)
						}
						if (got.Witness == nil) != (want.Witness == nil) {
							t.Errorf("parallelism %d: witness presence diverges", par)
						}
					}
				})
			}
		}
	}
}

// TestIntraCheckLargeUniverseParallelism drives the parallel closure path
// (≥64 nodes) through the public engine: Auction(40)'s single check must
// produce the same graph and verdict at Parallelism 1 and GOMAXPROCS-wide
// sharding, and RobustSubsets over a large-universe program subset must
// match the sequential report.
func TestIntraCheckLargeUniverseParallelism(t *testing.T) {
	bench := benchmarks.AuctionN(40)
	var base string
	for _, par := range []int{1, 4} {
		sess := analysis.NewSession(bench.Schema)
		cfg := analysis.DefaultConfig() // attr+fk: the setting under which Auction(n) is robust
		cfg.Parallelism = par
		res, err := sess.Check(bench.Programs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Robust {
			t.Fatalf("Auction(40) not robust at parallelism %d", par)
		}
		if dump := res.Graph.String(); base == "" {
			base = dump
		} else if dump != base {
			t.Errorf("parallelism %d: Auction(40) graph diverges", par)
		}
	}
}

// TestSessionSizeBytes: the session's memory estimate grows as checks warm
// the unfolding and block caches and shrinks when a program's state is
// invalidated — the per-workload term of the server's memory accounting.
func TestSessionSizeBytes(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cold := sess.SizeBytes()
	if cold <= 0 {
		t.Fatalf("cold SizeBytes = %d, want positive overhead", cold)
	}
	if _, err := sess.Check(bench.Programs, analysis.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	warm := sess.SizeBytes()
	if warm <= cold {
		t.Fatalf("warm SizeBytes = %d, not above cold %d", warm, cold)
	}
	sess.Invalidate(bench.Programs[0])
	if shrunk := sess.SizeBytes(); shrunk >= warm {
		t.Errorf("SizeBytes after Invalidate = %d, want below %d", shrunk, warm)
	}
}
