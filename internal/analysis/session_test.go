package analysis_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/summary"
)

// fixedBenchmarks returns the three fixed benchmarks of Section 7.
func fixedBenchmarks() []*benchmarks.Benchmark {
	return []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(),
	}
}

// methods lists both cycle conditions.
var methods = []summary.Method{summary.TypeII, summary.TypeI}

// TestEngineEquivalenceRobustSubsets is the engine's ground-truth test:
// for every fixed benchmark under all four settings and both methods, the
// composed-graph parallel enumeration must produce a report byte-identical
// to the naive per-subset oracle (re-validate, re-unfold, re-run
// Algorithm 1 for each of the 2^n − 1 subsets).
func TestEngineEquivalenceRobustSubsets(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		// One shared session per benchmark across all 8 cells, as the
		// experiments suite uses it — cross-setting cache pollution would
		// show up here.
		sess := analysis.NewSession(bench.Schema)
		for _, setting := range summary.AllSettings {
			for _, method := range methods {
				name := fmt.Sprintf("%s/%s/%s", bench.Name, setting, method)
				t.Run(name, func(t *testing.T) {
					oracle := robust.NewChecker(bench.Schema)
					oracle.Setting = setting
					oracle.Method = method
					want, err := oracle.NaiveRobustSubsets(bench.Programs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sess.RobustSubsets(bench.Programs, analysis.Config{
						Setting: setting, Method: method, Parallelism: 4,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Robust, want.Robust) {
						t.Errorf("robust subsets diverge:\nengine: %v\noracle: %v", got.Robust, want.Robust)
					}
					if !reflect.DeepEqual(got.Maximal, want.Maximal) {
						t.Errorf("maximal subsets diverge:\nengine: %v\noracle: %v", got.Maximal, want.Maximal)
					}
					if got.String() != want.String() {
						t.Errorf("report rendering diverges:\nengine: %s\noracle: %s", got, want)
					}
				})
			}
		}
	}
}

// TestComposeMatchesBuild asserts the composed graph is identical to the
// naive construction — same edge sequence, not just the same verdict.
func TestComposeMatchesBuild(t *testing.T) {
	for _, bench := range fixedBenchmarks() {
		for _, setting := range summary.AllSettings {
			ltps := btp.UnfoldAll2(bench.Programs)
			want := summary.Build(bench.Schema, ltps, setting)
			bs := summary.NewBlockSet(bench.Schema, setting)
			got := summary.Compose(bs, ltps)
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("%s under %s: %d edges, want %d", bench.Name, setting, len(got.Edges), len(want.Edges))
			}
			for i := range got.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("%s under %s: edge %d = %s, want %s",
						bench.Name, setting, i, got.Edges[i], want.Edges[i])
				}
			}
			if got.String() != want.String() {
				t.Errorf("%s under %s: graph dump diverges", bench.Name, setting)
			}
		}
	}
}

// TestSessionCheckMatchesNaive compares the session's Check against the
// naive single-shot path on full program sets and on the classic non-robust
// SmallBank pairs.
func TestSessionCheckMatchesNaive(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	sets := [][]*btp.Program{bench.Programs}
	for _, names := range [][]string{{"WriteCheck"}, {"Balance", "WriteCheck"}, {"Amalgamate", "DepositChecking", "TransactSavings"}} {
		var ps []*btp.Program
		for _, n := range names {
			ps = append(ps, bench.Program(n))
		}
		sets = append(sets, ps)
	}
	for _, setting := range summary.AllSettings {
		for _, method := range methods {
			for _, ps := range sets {
				cfg := analysis.Config{Setting: setting, Method: method}
				got, err := sess.Check(ps, cfg)
				if err != nil {
					t.Fatal(err)
				}
				c := robust.NewChecker(bench.Schema)
				c.Setting = setting
				c.Method = method
				want := c.CheckLTPs(btp.UnfoldAll2(ps))
				if got.Robust != want.Robust {
					t.Errorf("%s/%s/%d programs: engine robust=%t, naive=%t",
						setting, method, len(ps), got.Robust, want.Robust)
				}
				if got.Graph.String() != want.Graph.String() {
					t.Errorf("%s/%s/%d programs: graph dump diverges", setting, method, len(ps))
				}
				if (got.Witness == nil) != (want.Witness == nil) {
					t.Errorf("%s/%s/%d programs: witness presence diverges", setting, method, len(ps))
				}
			}
		}
	}
}

// TestSessionMemoization asserts that unfoldings are shared across calls
// (pointer-identical LTPs) and that blocks accumulate per setting.
func TestSessionMemoization(t *testing.T) {
	bench := benchmarks.TPCC()
	sess := analysis.NewSession(bench.Schema)
	p := bench.Program("NewOrder")
	l1, err := sess.LTPs(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := sess.LTPs(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) == 0 || len(l1) != len(l2) {
		t.Fatalf("unfold lengths: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("memoized unfolding not pointer-identical")
		}
	}
	l3, err := sess.LTPs(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(l3) <= len(l1) {
		t.Fatalf("bound 3 should yield more unfoldings: %d vs %d", len(l3), len(l1))
	}
	bs := sess.Blocks(summary.SettingAttrDep)
	if bs.Len() != 0 {
		t.Fatalf("fresh block set has %d pairs", bs.Len())
	}
	if _, err := sess.Check(bench.Programs, analysis.Config{Setting: summary.SettingAttrDep}); err != nil {
		t.Fatal(err)
	}
	if got, want := bs.Len(), 13*13; got != want {
		t.Errorf("block pairs after full check = %d, want %d", got, want)
	}
	if sess.Blocks(summary.SettingAttrDep) != bs {
		t.Error("Blocks not memoized per setting")
	}
}

// TestSessionRejectsInvalidProgram checks validation errors surface (and
// are memoized) through the engine.
func TestSessionRejectsInvalidProgram(t *testing.T) {
	bench := benchmarks.Auction()
	sess := analysis.NewSession(bench.Schema)
	bad := btp.LinearProgram("Bad", &btp.Stmt{Name: "q", Type: btp.KeySel, Rel: "Nope", ReadSet: btp.Attrs()})
	for i := 0; i < 2; i++ {
		if _, err := sess.Check([]*btp.Program{bad}, analysis.DefaultConfig()); err == nil {
			t.Fatal("invalid program accepted")
		}
		if _, err := sess.RobustSubsets([]*btp.Program{bad}, analysis.DefaultConfig()); err == nil {
			t.Fatal("invalid program accepted by RobustSubsets")
		}
	}
}

// TestSessionTooManyPrograms documents the enumeration guard.
func TestSessionTooManyPrograms(t *testing.T) {
	bench := benchmarks.AuctionN(11) // 22 programs
	sess := analysis.NewSession(bench.Schema)
	if _, err := sess.RobustSubsets(bench.Programs, analysis.DefaultConfig()); err == nil {
		t.Fatal("expected infeasibility error for 22 programs")
	}
}

// TestSessionConcurrentUse hammers one session from many goroutines across
// settings, methods and program subsets; run under -race this is the
// engine's data-race test.
func TestSessionConcurrentUse(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	want := map[summary.Method]string{}
	for _, method := range methods {
		rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
			Setting: summary.SettingAttrDepFK, Method: method,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[method] = rep.String()
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			setting := summary.AllSettings[g%len(summary.AllSettings)]
			method := methods[g%len(methods)]
			for i := 0; i < 3; i++ {
				rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
					Setting: setting, Method: method, Parallelism: 4,
				})
				if err != nil {
					errc <- err
					return
				}
				if setting == summary.SettingAttrDepFK && rep.String() != want[method] {
					errc <- fmt.Errorf("concurrent report diverged: %s", rep)
					return
				}
				if _, err := sess.Check(bench.Programs, analysis.Config{Setting: setting, Method: method}); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestParallelismEquivalence sweeps worker counts and asserts identical
// reports, including the degenerate sequential case.
func TestParallelismEquivalence(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	var base string
	for i, par := range []int{1, 2, 3, 8, 64} {
		rep, err := sess.RobustSubsets(bench.Programs, analysis.Config{
			Setting: summary.SettingAttrDepFK, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = rep.String()
			continue
		}
		if rep.String() != base {
			t.Errorf("parallelism %d diverges: %s != %s", par, rep, base)
		}
	}
}
