package analysis

import (
	"context"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/btp"
	"repro/internal/obs"
	"repro/internal/summary"
)

// This file is the lattice-pruned subset enumeration: a level-order
// traversal of the subset lattice by subset size that exploits the
// monotonicity of non-robustness. A dangerous cycle witnessed in a subset's
// induced summary graph survives verbatim in every superset (adding nodes
// only adds edges and reachability), so once a subset is known non-robust,
// every superset is non-robust too. The traversal records each non-robust
// discovery as a *minimal non-robust core* — the witness cycle's node mask,
// minimized to exact program-level minimality — and decides supersets by an
// O(#cores) bitset-containment scan (summary.CoreSet) instead of running
// the detector at all.
//
// Processing strictly by subset size makes the pruning complete and
// deterministic: at the start of level k the shared core set holds exactly
// the minimal non-robust program sets of size < k (plus any seeds), so
// every non-robust mask with a non-robust proper subset is pruned, every
// mask the detector does see and rejects is itself minimal, and the pruned
// count is independent of worker count or scheduling. Cores discovered
// within a level have size k and therefore cannot prune other size-k masks,
// which is why intra-level publication (lock-free, epoch-snapshotted) is
// harmless for determinism while still letting racing enumerations on a
// shared session benefit from each other through the session store.
//
// Cores are facts about program *content*: "these programs are jointly
// non-robust under this (setting, method, bound), and minimally so" —
// independent of which enumeration discovered them. The session therefore
// keeps them per coreKey as program-pointer sets, seeds every enumeration
// whose request covers a core's programs, and merges fresh discoveries
// back, so a warm session prunes every non-robust subset without a single
// detector run. Session.Invalidate drops exactly the cores (and memoized
// universe detectors) touching the invalidated program — the incremental
// half the server's PATCH path relies on.

// coreKey identifies one core store: cores depend on the analysis setting,
// the cycle condition and the unfold bound, never on the program selection.
type coreKey struct {
	setting summary.Setting
	method  summary.Method
	bound   int
}

// detKey identifies one memoized universe detector: the exact ordered
// program selection under a setting and bound.
type detKey struct {
	setting summary.Setting
	bound   int
	progs   string
}

// detEntry is one memoized universe detector with the programs it covers
// (kept for pointer-level invalidation).
type detEntry struct {
	det      *summary.SubsetDetector
	programs []*btp.Program
}

// progsKey renders an ordered program list as a map key. Pointer identity
// is the right notion: the session memoizes per program pointer, and a
// PATCHed program is a fresh pointer. Hand-rolled (strconv over fmt): this
// runs on every enumeration and %p formatting showed up in profiles.
func progsKey(programs []*btp.Program) string {
	buf := make([]byte, 0, 13*len(programs))
	for _, p := range programs {
		buf = strconv.AppendUint(buf, uint64(uintptr(unsafe.Pointer(p))), 36)
		buf = append(buf, '|')
	}
	return string(buf)
}

// coreID renders a program set as a canonical dedup key (sorted pointer
// renderings — names can repeat across patched generations, pointers
// cannot).
func coreID(core []*btp.Program) string {
	parts := make([]string, len(core))
	for i, p := range core {
		parts[i] = strconv.FormatUint(uint64(uintptr(unsafe.Pointer(p))), 36)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// latticeKey identifies one cached pruning state: the configuration plus
// the exact ordered program selection (core and cover masks are relative to
// that selection's node universe).
type latticeKey struct {
	core  coreKey
	progs string
}

// latticeEntry is the per-selection pruning state shared by every
// enumeration of that selection — the lock-free core and cover sets — plus
// the store generation it was last synchronized against. Sharing the entry
// means a warm repeat pays zero seeding; the generation check re-seeds only
// when a *different* selection's enumeration contributed new facts to the
// store in the meantime.
type latticeEntry struct {
	cores    *summary.CoreSet
	covers   *summary.CoverSet
	gen      uint64
	programs []*btp.Program
}

// factLog is one direction's fact store for a coreKey: the facts in
// insertion order, with the store generation each landed at (gens is
// parallel to facts and non-decreasing — merges stamp the post-bump
// generation). The ordering is what turns the generation check of
// latticeFor into a delta feed: an entry synced at generation g consumes
// only the suffix of facts with a newer stamp, instead of re-scanning the
// whole store on every bump. certs is the parallel certification column:
// true for cores whose non-robustness has been proven by a replayed
// non-serializable execution (internal/certify); always false for covers.
type factLog struct {
	facts [][]*btp.Program
	gens  []uint64
	certs []bool
}

// factsSince returns the facts inserted after the given generation (the
// delta a cached lattice entry has not seen) together with their
// certification bits. Binary search over the monotone gens column;
// nil-safe for absent logs.
func (l *factLog) factsSince(gen uint64) ([][]*btp.Program, []bool) {
	if l == nil {
		return nil, nil
	}
	i := sort.Search(len(l.gens), func(i int) bool { return l.gens[i] > gen })
	return l.facts[i:], l.certs[i:]
}

// append records a fact at the given generation.
func (l *factLog) append(fact []*btp.Program, gen uint64, cert bool) {
	l.facts = append(l.facts, fact)
	l.gens = append(l.gens, gen)
	l.certs = append(l.certs, cert)
}

// latticeFor returns the pruning state for the selection, creating and
// seeding it from the session's fact store on first use and feeding it
// only the facts newer than its synced generation (idempotent Adds) when
// the store generation moved.
func (s *Session) latticeFor(cfg Config, programs []*btp.Program, programMask [][]uint64, words int) *latticeEntry {
	ck := coreKey{setting: cfg.Setting, method: cfg.Method, bound: cfg.bound()}
	key := latticeKey{core: ck, progs: progsKey(programs)}
	s.mu.Lock()
	gen := s.coreGen[ck]
	e, ok := s.lattices[key]
	if ok && e.gen == gen {
		s.mu.Unlock()
		return e
	}
	// Delta feed: a cached entry consumes only the facts stamped after its
	// synced generation; a fresh entry's since of 0 selects the whole log.
	// The suffix slices stay valid outside the lock — merges append and
	// Invalidate swaps in fresh logs, neither mutates published prefixes.
	since := uint64(0)
	if ok {
		since = e.gen
	}
	coreFacts, coreCerts := s.cores[ck].factsSince(since)
	coverFacts, _ := s.covers[ck].factsSince(since)
	if !ok {
		e = &latticeEntry{
			cores:    summary.NewCoreSet(words),
			covers:   summary.NewCoverSet(words),
			programs: append([]*btp.Program(nil), programs...),
		}
	}
	s.mu.Unlock()
	s.factsSeeded.Add(uint64(len(coreFacts) + len(coverFacts)))

	idx := make(map[*btp.Program]int, len(programs))
	for i, p := range programs {
		idx[p] = i
	}
	seed := func(facts [][]*btp.Program, add func(int, []uint64) bool) {
		for fi, fact := range facts {
			mask := make([]uint64, words)
			ok := true
			for _, p := range fact {
				i, present := idx[p]
				if !present {
					ok = false
					break
				}
				orInto(mask, programMask[i])
			}
			if ok {
				add(fi, mask)
			}
		}
	}
	seed(coreFacts, func(fi int, mask []uint64) bool {
		if coreCerts[fi] {
			// A certified fact re-delivered by the delta feed (e.g. after
			// CertifyCore re-stamped it) upgrades the provenance bit of a
			// mask the entry already holds.
			return e.cores.AddCertified(mask)
		}
		return e.cores.Add(mask)
	})
	seed(coverFacts, func(_ int, mask []uint64) bool { return e.covers.Add(mask) })

	s.mu.Lock()
	e.gen = gen
	// The retired check happens under the admitting lock: a program
	// invalidated while we were seeding must not be memoized under a key
	// no future request can reach (the entry would leak for the session's
	// lifetime).
	admit := true
	for _, p := range programs {
		if s.retired[p] {
			admit = false
			break
		}
	}
	if admit {
		if len(s.lattices) >= selectionCacheMax {
			clear(s.lattices) // see selectionCacheMax
		}
		s.lattices[key] = e
	}
	s.mu.Unlock()
	return e
}

// selectionCacheMax bounds the per-selection memo maps (lattices, dets): a
// workload of n programs admits up to 2^n distinct ordered selections, and
// a long-lived server must not grow a session map per request shape. The
// maps are pure accelerators — dropping them costs one re-seed / one warm
// compose scan, never a verdict — so overflow handling is the simplest
// correct thing: clear and let the hot selections repopulate. The durable
// knowledge (core and cover facts, edge blocks) lives in the bounded
// stores, not here.
const selectionCacheMax = 256

// mergeLattice folds an enumeration's discoveries back into the fact
// store: cores dedup-insert (minimal facts are pairwise incomparable),
// covers insert with maximal-antichain maintenance. Facts touching a
// program invalidated mid-enumeration are dropped. Insertions bump the
// store generation so other selections' cached entries re-seed; the
// entry's own generation advances only when no foreign merge interleaved,
// otherwise it stays behind and the next use re-seeds.
func (s *Session) mergeLattice(cfg Config, e *latticeEntry, programs []*btp.Program, programMask [][]uint64) {
	ck := coreKey{setting: cfg.Setting, method: cfg.Method, bound: cfg.bound()}
	toFact := func(m []uint64) []*btp.Program {
		var set []*btp.Program
		for i, pm := range programMask {
			if intersects(pm, m) {
				set = append(set, programs[i])
			}
		}
		return set
	}
	coreMasks, coreCerts := e.cores.MasksCertified()
	coreFacts := make([][]*btp.Program, 0, len(coreMasks))
	coreFactCerts := make([]bool, 0, len(coreMasks))
	for mi, m := range coreMasks {
		if set := toFact(m); len(set) > 0 {
			coreFacts = append(coreFacts, set)
			coreFactCerts = append(coreFactCerts, coreCerts[mi])
		}
	}
	coverFacts := make([][]*btp.Program, 0, 8)
	for _, m := range e.covers.Masks() {
		if set := toFact(m); len(set) > 0 {
			coverFacts = append(coverFacts, set)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	retired := func(fact []*btp.Program) bool {
		for _, p := range fact {
			if s.retired[p] {
				return true
			}
		}
		return false
	}
	// New facts are stamped with the post-bump generation, so delta feeds
	// synced at the pre-bump generation pick exactly this merge's additions.
	newGen := s.coreGen[ck] + 1
	changed := false

	cl := s.cores[ck]
	if cl == nil {
		cl = &factLog{}
		s.cores[ck] = cl
	}
	have := make(map[string]int, len(cl.facts))
	for i, c := range cl.facts {
		have[coreID(c)] = i
	}
	// Certification upgrades re-stamp an existing uncertified fact: the old
	// log entry is dropped via a fresh log (published prefixes are never
	// mutated) and the fact re-appends below with the certified bit at the
	// new generation, so delta-feed readers pick the upgrade up.
	drop := map[int]bool{}
	for fi, f := range coreFacts {
		if !coreFactCerts[fi] || retired(f) {
			continue
		}
		if i, ok := have[coreID(f)]; ok && !cl.certs[i] {
			drop[i] = true
		}
	}
	if len(drop) > 0 {
		fresh := &factLog{
			facts: make([][]*btp.Program, 0, len(cl.facts)),
			gens:  make([]uint64, 0, len(cl.gens)),
			certs: make([]bool, 0, len(cl.certs)),
		}
		for i := range cl.facts {
			if !drop[i] {
				fresh.append(cl.facts[i], cl.gens[i], cl.certs[i])
			}
		}
		s.cores[ck] = fresh
		cl = fresh
		have = make(map[string]int, len(cl.facts))
		for i, c := range cl.facts {
			have[coreID(c)] = i
		}
	}
	for fi, f := range coreFacts {
		if retired(f) {
			continue
		}
		id := coreID(f)
		if _, ok := have[id]; ok {
			continue
		}
		cl.append(f, newGen, coreFactCerts[fi])
		have[id] = len(cl.facts) - 1
		changed = true
	}

	cov := s.covers[ck]
	if cov == nil {
		cov = &factLog{}
		s.covers[ck] = cov
	}
	for _, f := range coverFacts {
		if retired(f) {
			continue
		}
		dominated := false
		keptFacts := cov.facts[:0:0]
		keptGens := cov.gens[:0:0]
		keptCerts := cov.certs[:0:0]
		for i, c := range cov.facts {
			if programSubset(f, c) {
				dominated = true
				break
			}
			if !programSubset(c, f) {
				keptFacts = append(keptFacts, c)
				keptGens = append(keptGens, cov.gens[i])
				keptCerts = append(keptCerts, cov.certs[i])
			}
		}
		if dominated {
			continue
		}
		cov.facts, cov.gens, cov.certs = keptFacts, keptGens, keptCerts
		cov.append(f, newGen, false)
		changed = true
	}

	wasGen := e.gen
	if changed {
		s.coreGen[ck] = newGen
	}
	cur := s.coreGen[ck]
	expect := wasGen
	if changed {
		expect++
	}
	if cur == expect {
		e.gen = cur
	}
}

// programSubset reports whether every program of a appears in b (small
// sets: nested scan beats map allocation).
func programSubset(a, b []*btp.Program) bool {
	for _, p := range a {
		found := false
		for _, q := range b {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CoreFact is one exported minimal non-robust core: the programs are
// jointly non-robust under the configuration and removing any one of them
// flips the verdict to robust. The server persists facts (as program names)
// alongside the result cache and re-seeds them on boot, so a restarted or
// partially PATCH-invalidated server re-derives only cores touching changed
// programs.
type CoreFact struct {
	Setting  summary.Setting
	Method   summary.Method
	Bound    int
	Programs []*btp.Program
	// Certified marks a core whose non-robustness has been proven by a
	// concrete replayed non-serializable execution (internal/certify), not
	// only by the sound-but-incomplete static cycle condition. The bit is
	// provenance: it never changes a verdict, but it upgrades "candidate
	// counterexample" to "machine-checked counterexample" in snapshots,
	// /v1/stats and subset reports. Meaningless (always false) for covers.
	Certified bool
}

// ExportCores snapshots every core fact the session has accumulated, in a
// deterministic order (keys sorted, programs within a fact sorted by short
// name). ExportCovers is the robust-side dual.
func (s *Session) ExportCores() []CoreFact {
	return s.exportFacts(func(s *Session) map[coreKey]*factLog { return s.cores })
}

// ExportCovers snapshots every robust-cover fact: program sets known
// jointly robust (an antichain of the largest ones seen). Like cores they
// are content-intrinsic, so the server persists and re-seeds them the same
// way.
func (s *Session) ExportCovers() []CoreFact {
	return s.exportFacts(func(s *Session) map[coreKey]*factLog { return s.covers })
}

func (s *Session) exportFacts(store func(*Session) map[coreKey]*factLog) []CoreFact {
	s.mu.Lock()
	m := store(s)
	facts := make([]CoreFact, 0, 16)
	for k, log := range m {
		for i, core := range log.facts {
			ps := make([]*btp.Program, len(core))
			copy(ps, core)
			facts = append(facts, CoreFact{Setting: k.setting, Method: k.method, Bound: k.bound, Programs: ps, Certified: log.certs[i]})
		}
	}
	s.mu.Unlock()
	// Precompute each fact's tiebreak key once — coreID allocates, and a
	// comparator would re-derive both sides on every comparison of the
	// flush-path sort.
	ids := make([]string, len(facts))
	for i, f := range facts {
		sort.Slice(f.Programs, func(a, b int) bool { return f.Programs[a].ShortName() < f.Programs[b].ShortName() })
		ids[i] = coreID(f.Programs)
	}
	sort.Sort(&factSorter{facts: facts, ids: ids})
	return facts
}

// factSorter orders exported facts deterministically: setting, method,
// bound, then the precomputed pointer-set key.
type factSorter struct {
	facts []CoreFact
	ids   []string
}

func (s *factSorter) Len() int { return len(s.facts) }
func (s *factSorter) Swap(i, j int) {
	s.facts[i], s.facts[j] = s.facts[j], s.facts[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}
func (s *factSorter) Less(i, j int) bool {
	a, b := s.facts[i], s.facts[j]
	if a.Setting != b.Setting {
		return a.Setting.String() < b.Setting.String()
	}
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	if a.Bound != b.Bound {
		return a.Bound < b.Bound
	}
	return s.ids[i] < s.ids[j]
}

// ImportCores seeds the session with core facts (deduplicated; facts whose
// programs have been invalidated are skipped). The facts are trusted — the
// server only imports from snapshots whose content fingerprint verified —
// and used purely for pruning, so an absent fact costs a detector run, a
// correct one saves it.
func (s *Session) ImportCores(facts []CoreFact) int {
	return s.importFacts(facts, func(s *Session) map[coreKey]*factLog { return s.cores })
}

// ImportCovers seeds the session with robust-cover facts; the dual of
// ImportCores.
func (s *Session) ImportCovers(facts []CoreFact) int {
	return s.importFacts(facts, func(s *Session) map[coreKey]*factLog { return s.covers })
}

// CertifyCore marks the program set as a *certified* non-robust core under
// the configuration: its non-robustness has been witnessed by a concrete
// replayed non-serializable execution (internal/certify), not only by the
// static cycle condition. The fact is inserted if the store does not hold
// it yet (a certificate is also a proof of non-robustness) and its
// certification bit is set either way; the store generation bumps so
// cached lattice entries and subsequent subset reports pick the provenance
// up through the delta feed. Returns true when the store changed (the core
// was new or newly certified); false for an already-certified core or a
// retired program.
func (s *Session) CertifyCore(cfg Config, core []*btp.Program) bool {
	if len(core) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range core {
		if s.retired[p] {
			return false
		}
	}
	k := coreKey{setting: cfg.Setting, method: cfg.Method, bound: cfg.bound()}
	log := s.cores[k]
	if log == nil {
		log = &factLog{}
		s.cores[k] = log
	}
	id := coreID(core)
	for i, c := range log.facts {
		if coreID(c) != id {
			continue
		}
		if log.certs[i] {
			return false
		}
		fresh := restampCertified(log, i)
		s.coreGen[k]++
		fresh.gens[len(fresh.gens)-1] = s.coreGen[k]
		s.cores[k] = fresh
		return true
	}
	ps := make([]*btp.Program, len(core))
	copy(ps, core)
	s.coreGen[k]++
	log.append(ps, s.coreGen[k], true)
	return true
}

func (s *Session) importFacts(facts []CoreFact, store func(*Session) map[coreKey]*factLog) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := store(s)
	added := 0
	for _, f := range facts {
		if len(f.Programs) == 0 {
			continue
		}
		bound := f.Bound
		if bound <= 0 {
			bound = btp.DefaultUnfoldBound
		}
		retired := false
		for _, p := range f.Programs {
			if s.retired[p] {
				retired = true
				break
			}
		}
		if retired {
			continue
		}
		k := coreKey{setting: f.Setting, method: f.Method, bound: bound}
		id := coreID(f.Programs)
		log := m[k]
		if log == nil {
			log = &factLog{}
			m[k] = log
		}
		dup := -1
		for i, c := range log.facts {
			if coreID(c) == id {
				dup = i
				break
			}
		}
		if dup >= 0 {
			if f.Certified && !log.certs[dup] {
				// Certification upgrade of a known fact: re-stamp it via the
				// fresh-log protocol so delta feeds deliver the new bit.
				m[k] = restampCertified(log, dup)
				s.coreGen[k]++
				m[k].gens[len(m[k].gens)-1] = s.coreGen[k]
				added++
			}
			continue
		}
		ps := make([]*btp.Program, len(f.Programs))
		copy(ps, f.Programs)
		s.coreGen[k]++ // cached lattice entries must consume the delta
		log.append(ps, s.coreGen[k], f.Certified)
		added++
	}
	return added
}

// restampCertified builds a fresh fact log equal to log minus entry i, with
// that entry re-appended carrying the certified bit (its generation is the
// caller's to stamp — it sits at the end). Fresh-log, not in-place: delta
// readers may hold suffix views of the old slices outside the lock.
func restampCertified(log *factLog, i int) *factLog {
	fresh := &factLog{
		facts: make([][]*btp.Program, 0, len(log.facts)),
		gens:  make([]uint64, 0, len(log.gens)),
		certs: make([]bool, 0, len(log.certs)),
	}
	for j := range log.facts {
		if j != i {
			fresh.append(log.facts[j], log.gens[j], log.certs[j])
		}
	}
	fresh.append(log.facts[i], log.gens[i], true)
	return fresh
}

// subsetDetector returns the memoized universe detector for the exact
// program selection, building (and caching) it on first use. The detector
// indexes the composed universe graph once; verdicts never depend on cache
// contents, so a straggler using a just-invalidated detector is correct,
// merely cold next time.
func (s *Session) subsetDetector(ctx context.Context, cfg Config, programs []*btp.Program, all []*btp.LTP) (*summary.SubsetDetector, error) {
	key := detKey{setting: cfg.Setting, bound: cfg.bound(), progs: progsKey(programs)}
	s.mu.Lock()
	if e, ok := s.dets[key]; ok {
		s.mu.Unlock()
		return e.det, nil
	}
	s.mu.Unlock()
	det, err := summary.NewSubsetDetectorCtx(ctx, s.Blocks(cfg.Setting), all, cfg.parallelism())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	admit := true
	for _, p := range programs {
		if s.retired[p] {
			admit = false
			break
		}
	}
	if admit {
		if len(s.dets) >= selectionCacheMax {
			clear(s.dets) // see selectionCacheMax
		}
		s.dets[key] = &detEntry{det: det, programs: append([]*btp.Program(nil), programs...)}
	}
	s.mu.Unlock()
	return det, nil
}

// --- Bitset helpers over []uint64 masks -------------------------------------

func orInto(dst, src []uint64) {
	for w, v := range src {
		dst[w] |= v
	}
}

func intersects(a, b []uint64) bool {
	for w, v := range a {
		if v&b[w] != 0 {
			return true
		}
	}
	return false
}

// programMasks computes, per program, the node mask of its LTP indices
// within the universe (groups concatenated in program order).
func programMasks(groups [][]*btp.LTP, words int) [][]uint64 {
	out := make([][]uint64, len(groups))
	idx := 0
	for i, g := range groups {
		m := make([]uint64, words)
		for range g {
			m[idx/64] |= 1 << (uint(idx) % 64)
			idx++
		}
		out[i] = m
	}
	return out
}

// latticeOrder buckets the non-empty subset masks of an n-program lattice
// by popcount (counting sort): order[offs[k]:offs[k+1]] holds the size-k
// masks in ascending mask order.
func latticeOrder(n int) (offs []int, order []int32) {
	total := 1 << n
	counts := make([]int, n+1)
	for mask := 1; mask < total; mask++ {
		counts[bits.OnesCount32(uint32(mask))]++
	}
	offs = make([]int, n+2)
	for k := 1; k <= n; k++ {
		offs[k+1] = offs[k] + counts[k]
	}
	pos := make([]int, n+2)
	copy(pos, offs)
	order = make([]int32, total-1)
	for mask := 1; mask < total; mask++ {
		k := bits.OnesCount32(uint32(mask))
		order[pos[k]] = int32(mask)
		pos[k]++
	}
	return offs, order
}

// minimizeCore reduces a witness node mask to a program-level minimal
// non-robust core without running the detector: every trial (the witness
// programs minus one) is a strict submask of the current subset and was
// therefore decided at an earlier level — its verdict is already in the
// traversal's verdict table. Greedily dropping, in ascending program
// order, every program whose removal leaves a non-robust verdict yields a
// minimal set (one fixed-order pass suffices for monotone properties). In
// a fully cold traversal the witness programs are provably minimal already
// and every trial reads robust; the lookups also keep the general path —
// seeds from other universes or imported non-minimal facts — honest, at
// the cost of bit operations instead of closure recomputations.
func minimizeCore(verdicts []bool, wmask []uint64, programMask [][]uint64) []uint64 {
	progs := 0
	for i, pm := range programMask {
		if intersects(pm, wmask) {
			progs |= 1 << i
		}
	}
	for i := 0; i < len(programMask); i++ {
		if progs&(1<<i) == 0 {
			continue
		}
		if trial := progs &^ (1 << i); trial != 0 && !verdicts[trial] {
			progs = trial
		}
	}
	core := make([]uint64, len(wmask))
	for i, pm := range programMask {
		if progs&(1<<i) != 0 {
			orInto(core, pm)
		}
	}
	return core
}

// latticeSeqChunk is how many sequential masks are processed between
// context polls; latticeParallelMin is the level size below which the
// level runs inline — goroutine handoff costs more than a few dozen
// detector calls, and the paper's benchmarks (n ≤ 9) never leave the
// inline regime.
const (
	latticeSeqChunk    = 64
	latticeParallelMin = 64
)

// latticeWorker is one traversal worker's reusable state; the detector
// scratch stays nil until the worker actually runs the detector.
type latticeWorker struct {
	scratch *summary.DetectScratch
	members []uint64
}

// enumerateLattice is the level-order traversal behind RobustSubsetsCtx
// (pruning enabled). See the file comment for the invariants.
func (s *Session) enumerateLattice(ctx context.Context, det *summary.SubsetDetector, groups [][]*btp.LTP, programs []*btp.Program, cfg Config) (*SubsetReport, error) {
	n := len(programs)
	words := (det.NumNodes() + 63) / 64
	programMask := programMasks(groups, words)
	entry := s.latticeFor(cfg, programs, programMask, words)
	cores, covers := entry.cores, entry.covers

	total := 1 << n
	verdicts := make([]bool, total)
	offs, order := latticeOrder(n)
	var coreHits, coverHits, misses atomic.Uint64
	var discovered, freshRobust atomic.Bool
	// Merge discoveries back into the fact store however the traversal
	// exits: a cancelled run's cores and covers are valid facts, and
	// leaving them only in the cached entry would strand them — the retry
	// would be decided by the entry's unmerged masks, never re-discover
	// them, and the store (and with it persistence and /v1/stats) would
	// stay empty. A run whose every Add was refused as dominated has
	// nothing the store lacks and skips the merge.
	defer func() {
		if discovered.Load() {
			s.mergeLattice(cfg, entry, programs, programMask)
		}
	}()

	// process decides one mask on a worker's state: the core scan
	// (non-robust supersets) and the cover scan (robust subsets) first,
	// the detector only when neither knows, witness minimization on a
	// fresh non-robust discovery. The detector scratch is allocated on
	// first actual detector run — a fully warm traversal (every mask
	// decided by containment) allocates none.
	process := func(mask int, ws *latticeWorker) {
		members := ws.members
		for w := range members {
			members[w] = 0
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				orInto(members, programMask[i])
			}
		}
		if cores.Snapshot().Contains(members) {
			coreHits.Add(1)
			return // verdicts[mask] stays false: a core means non-robust
		}
		if covers.Snapshot().Covers(members) {
			coverHits.Add(1)
			verdicts[mask] = true
			return
		}
		misses.Add(1)
		if ws.scratch == nil {
			ws.scratch = det.NewScratch()
		}
		var t0 time.Time
		if tr := cfg.Tracer; tr != nil {
			t0 = time.Now()
		}
		ok, wmask := det.RobustWitness(cfg.Method, members, ws.scratch)
		if tr := cfg.Tracer; tr != nil {
			tr.Span(obs.PhaseDetect, time.Since(t0))
		}
		verdicts[mask] = ok
		if ok {
			freshRobust.Store(true)
			// Robust verdicts are folded into the cover set after the
			// traversal: covers can never fire within the run that found
			// them (stored covers are smaller than the masks still to
			// come), and a post-pass in descending size order pays one
			// antichain insert per maximal cover instead of a
			// copy-on-write add per robust mask.
			return
		}
		if cores.Add(minimizeCore(verdicts, wmask, programMask)) {
			discovered.Store(true)
		}
	}

	workers := cfg.parallelism()
	seq := &latticeWorker{members: getMask(words)}
	defer putMask(seq.members)
	for level := 1; level <= n; level++ {
		var levelStart time.Time
		if tr := cfg.Tracer; tr != nil {
			levelStart = time.Now()
		}
		masks := order[offs[level]:offs[level+1]]
		lw := workers
		if lw > len(masks) {
			lw = len(masks)
		}
		if len(masks) < latticeParallelMin {
			lw = 1
		}
		if lw <= 1 {
			for c, mask := range masks {
				if c%latticeSeqChunk == 0 && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				process(int(mask), seq)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make([]error, lw)
			for w := 0; w < lw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					defer capturePanic(&errs[w])
					ws := &latticeWorker{members: getMask(words)}
					defer putMask(ws.members)
					for ctx.Err() == nil {
						start := int(next.Add(latticeSeqChunk)) - latticeSeqChunk
						if start >= len(masks) {
							return
						}
						for _, mask := range masks[start:min(start+latticeSeqChunk, len(masks))] {
							process(int(mask), ws)
						}
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
		// The level barrier: supersets are only examined once every smaller
		// mask's verdict (and core) is published. It is also the pruning's
		// determinism and completeness argument, so it must not be elided.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if tr := cfg.Tracer; tr != nil {
			tr.Span(obs.PhaseLatticeLevel, time.Since(levelStart))
		}
	}

	// Fold this run's robust verdicts into the cover set, largest masks
	// first: maximal covers insert, everything they dominate is refused by
	// an early-exit scan. Only the success path runs this — a cancelled
	// run's partial levels may hold undecided masks — while cores (already
	// added at discovery, where minimality is known) reach the store via
	// the deferred merge regardless. A run with no detector-decided robust
	// verdict (the warm steady state) has nothing new to fold.
	for level := n; freshRobust.Load() && level >= 1; level-- {
		for _, mask := range order[offs[level]:offs[level+1]] {
			if !verdicts[mask] {
				continue
			}
			members := seq.members
			for w := range members {
				members[w] = 0
			}
			for i := 0; i < n; i++ {
				if int(mask)&(1<<i) != 0 {
					orInto(members, programMask[i])
				}
			}
			if covers.Add(members) {
				discovered.Store(true)
			}
		}
	}

	ch, cvh, m := coreHits.Load(), coverHits.Load(), misses.Load()
	s.coreHits.Add(ch)
	s.coverHits.Add(cvh)
	s.coreMisses.Add(m)
	s.subsetsPruned.Add(ch + cvh)

	rep := assembleReport(programs, verdicts)
	rep.Checked = int(m)
	rep.Pruned = int(ch + cvh)
	rep.Cores = cores.Len()
	rep.CertifiedCores = cores.CertifiedLen()
	return rep, nil
}

// assembleReport builds the deterministic report from per-mask verdicts in
// ascending mask order — the same order the naive sequential enumeration
// visits.
func assembleReport(programs []*btp.Program, verdicts []bool) *SubsetReport {
	n := len(programs)
	var robustSubsets []Subset
	for mask := 1; mask < len(verdicts); mask++ {
		if !verdicts[mask] {
			continue
		}
		var names Subset
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				names = append(names, programs[i].ShortName())
			}
		}
		sort.Strings(names)
		robustSubsets = append(robustSubsets, names)
	}
	return NewSubsetReport(robustSubsets)
}
