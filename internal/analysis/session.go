// Package analysis is the incremental analysis engine behind the public
// robustness API: a Session holds a schema and memoizes everything the
// exponential subset enumeration of Figures 6 and 7 would otherwise redo
// per subset — program validation, loop unfolding (each program is unfolded
// exactly once per bound) and the pairwise summary-graph edge blocks of
// Algorithm 1 (computed once per analysis setting). Subset graphs are then
// assembled by summary.Compose from cached blocks and only the cycle
// detection runs per subset, fanned out over a bounded worker pool.
//
// The naive path (re-unfold and re-run Algorithm 1 from scratch for every
// subset) is retained in internal/robust as the oracle for equivalence
// tests; both paths produce byte-identical reports.
package analysis

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btp"
	"repro/internal/obs"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// Config selects how a Session call analyses a program set.
type Config struct {
	// Setting is the analysis setting (granularity × foreign keys). The
	// zero value is attribute granularity without foreign keys; use
	// DefaultConfig for the paper's primary setting.
	Setting summary.Setting
	// Method selects the cycle condition; the zero value is TypeII
	// (Algorithm 2).
	Method summary.Method
	// UnfoldBound overrides the loop-unfolding bound; 0 means the paper's
	// bound of 2 (Proposition 6.1). Bound 1 is unsound in general.
	UnfoldBound int
	// Parallelism is the one concurrency knob of the engine, governing both
	// inter- and intra-check work: the subset-enumeration fanout of
	// RobustSubsets, the sharded pairwise edge-block construction
	// (summary.BlockSet.EnsureCtx), the round-synchronized closure
	// fixpoint of every composed graph and the sharded type-II cycle
	// search on large graphs. 0 means GOMAXPROCS, 1 forces fully
	// sequential analysis.
	Parallelism int
	// DisablePruning turns off the lattice-pruned subset enumeration
	// (minimal non-robust cores deciding supersets by containment) and
	// falls back to the flat fan-out that runs the detector on every
	// subset. Kept for benchmarking and as an in-tree ablation oracle —
	// verdicts are identical either way, only the work differs.
	DisablePruning bool
	// Tracer receives phase spans (validate/unfold, Algorithm 1 pair
	// derivation, compose, detect, per-lattice-level, first-verdict) from
	// this analysis. nil — the default — is the no-op: instrumented code
	// branches on nil before calling time.Now, so a disabled tracer adds
	// neither time nor allocations to the hot paths (asserted by the
	// pruned-subsets allocation gate). Implementations must be safe for
	// concurrent use; spans are emitted from parallel workers. Tracer never
	// changes a verdict, only what is observed about computing it.
	Tracer obs.Tracer
}

// DefaultConfig returns the paper's primary configuration: attribute
// dependencies with foreign keys, type-II cycles, unfold bound 2.
func DefaultConfig() Config {
	return Config{Setting: summary.SettingAttrDepFK, Method: summary.TypeII}
}

func (c Config) bound() int {
	if c.UnfoldBound > 0 {
		return c.UnfoldBound
	}
	return btp.DefaultUnfoldBound
}

func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// traceCtx attaches the config's tracer to the context, so the summary
// layer (which has no Config) can pick it up via obs.TracerFrom for the
// pairs sub-span. The nil case returns ctx unchanged — no allocation.
func (c Config) traceCtx(ctx context.Context) context.Context {
	if c.Tracer == nil {
		return ctx
	}
	return obs.WithTracer(ctx, c.Tracer)
}

// Result is the outcome of one robustness check.
type Result struct {
	// Robust is true when the analysis certifies the program set robust
	// against MVRC. The analysis is sound: true is always correct; false
	// may be a false negative (Proposition 6.5).
	Robust bool
	// Witness is a dangerous cycle in the summary graph when not robust.
	Witness *summary.Witness
	// Graph is the constructed summary graph over the unfolded LTPs.
	Graph *summary.Graph
	// LTPs are the unfoldings the graph was built over.
	LTPs []*btp.LTP
}

// unfoldKey identifies one memoized unfolding.
type unfoldKey struct {
	program *btp.Program
	bound   int
}

// Session is the incremental analysis engine for one schema. All methods
// are safe for concurrent use; caches only grow, so a Session can be shared
// across settings, methods, bounds and program sets (cache entries are
// keyed by program pointer, bound and setting).
type Session struct {
	schema *relschema.Schema

	mu        sync.Mutex
	validated map[*btp.Program]error
	unfolded  map[unfoldKey][]*btp.LTP
	blocks    map[summary.Setting]*summary.BlockSet
	// cores holds the minimal non-robust cores discovered by lattice
	// enumerations, per (setting, method, bound): program sets that are
	// jointly non-robust and minimally so. covers is the robust-side dual
	// (maximal program sets known robust). Both are kept as generation-
	// stamped logs (factLog), seeded into every enumeration covering them
	// as a delta feed and merged back after; see lattice.go.
	cores  map[coreKey]*factLog
	covers map[coreKey]*factLog
	// coreGen versions the fact store per key; cached lattice entries
	// re-seed when it moves.
	coreGen map[coreKey]uint64
	// lattices caches the seeded per-selection pruning state (core +
	// cover sets); dets memoizes universe SubsetDetectors per exact
	// program selection, so repeated enumerations skip even the warm
	// compose scan.
	lattices map[latticeKey]*latticeEntry
	dets     map[detKey]*detEntry
	// retired marks programs passed to Invalidate: checks that were
	// already in flight may still resolve them, but the results are no
	// longer memoized — re-admitting entries for a replaced program would
	// leak them for the session's lifetime.
	retired map[*btp.Program]bool

	// Core-pruning telemetry (see Stats): a core hit is a subset decided
	// non-robust by the core containment scan, a cover hit one decided
	// robust by the cover scan, a miss ran the detector; subsetsPruned is
	// the sum of both hit kinds (detector runs skipped).
	coreHits, coverHits, coreMisses, subsetsPruned atomic.Uint64
	// Cost-ordered scheduler telemetry (streaming enumerations): of the
	// detector-run masks a level's schedule placed in its first half,
	// schedHits were non-robust — the fraction is the scheduler's hit rate
	// (how often "looks conflict-dense" predicted "mints a core").
	schedChecked, schedHits atomic.Uint64
	// factsSeeded counts facts fed into lattice entries by latticeFor —
	// the delta-feed regression guard: re-syncing an entry after a foreign
	// merge must consume the merge's delta, not re-scan the whole store.
	factsSeeded atomic.Uint64
}

// NewSession creates an empty session over the schema.
func NewSession(schema *relschema.Schema) *Session {
	return &Session{
		schema:    schema,
		validated: make(map[*btp.Program]error),
		unfolded:  make(map[unfoldKey][]*btp.LTP),
		blocks:    make(map[summary.Setting]*summary.BlockSet),
		cores:     make(map[coreKey]*factLog),
		covers:    make(map[coreKey]*factLog),
		coreGen:   make(map[coreKey]uint64),
		lattices:  make(map[latticeKey]*latticeEntry),
		dets:      make(map[detKey]*detEntry),
		retired:   make(map[*btp.Program]bool),
	}
}

// Schema returns the schema the session analyses against.
func (s *Session) Schema() *relschema.Schema { return s.schema }

// LTPs validates the program (once) and returns its memoized unfolding
// under the given bound (0 means the default bound of 2). The returned
// slice is shared — callers must not mutate it.
func (s *Session) LTPs(p *btp.Program, bound int) ([]*btp.LTP, error) {
	if bound <= 0 {
		bound = btp.DefaultUnfoldBound
	}
	s.mu.Lock()
	if s.retired[p] {
		// Serve an in-flight straggler that still holds the replaced
		// program, without re-admitting anything to the caches: the
		// fresh unfolding is retired in every block cache so its pairs
		// are computed on demand but never stored.
		sets := make([]*summary.BlockSet, 0, len(s.blocks))
		for _, bs := range s.blocks {
			sets = append(sets, bs)
		}
		s.mu.Unlock()
		if err := p.Validate(s.schema); err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		ltps := btp.Unfold(p, bound)
		for _, bs := range sets {
			bs.Retire(ltps)
		}
		return ltps, nil
	}
	verr, seen := s.validated[p]
	if seen && verr != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("analysis: %w", verr)
	}
	k := unfoldKey{program: p, bound: bound}
	if ltps, ok := s.unfolded[k]; ok {
		s.mu.Unlock()
		return ltps, nil
	}
	// Validate and unfold outside the lock, so concurrent resolutions of
	// different programs (ltpUniverse's parallel prefetch) actually overlap.
	// A racing duplicate computation of the same program is benign: the
	// admission below is store-if-absent, so every caller ends up holding
	// the one memoized unfolding — LTP pointer identity is what the block
	// caches key on.
	s.mu.Unlock()
	if !seen {
		verr = p.Validate(s.schema)
	}
	var ltps []*btp.LTP
	if verr == nil {
		ltps = btp.Unfold(p, bound)
	}
	s.mu.Lock()
	if s.retired[p] {
		// Retired while computing (a concurrent Invalidate): serve without
		// admitting, exactly like the straggler path above.
		sets := make([]*summary.BlockSet, 0, len(s.blocks))
		for _, bs := range s.blocks {
			sets = append(sets, bs)
		}
		s.mu.Unlock()
		if verr != nil {
			return nil, fmt.Errorf("analysis: %w", verr)
		}
		for _, bs := range sets {
			bs.Retire(ltps)
		}
		return ltps, nil
	}
	s.validated[p] = verr
	if verr != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("analysis: %w", verr)
	}
	if existing, ok := s.unfolded[k]; ok {
		ltps = existing // a racer admitted first; use the memoized one
	} else {
		s.unfolded[k] = ltps
	}
	s.mu.Unlock()
	return ltps, nil
}

// Blocks returns the session's shared pairwise edge-block cache for the
// setting, creating it on first use. LTP pointers from different unfold
// bounds never collide: memoization hands out distinct *btp.LTP values per
// (program, bound), so one BlockSet per setting serves all bounds.
func (s *Session) Blocks(setting summary.Setting) *summary.BlockSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	bs, ok := s.blocks[setting]
	if !ok {
		bs = summary.NewBlockSet(s.schema, setting)
		s.blocks[setting] = bs
	}
	return bs
}

// Invalidate drops everything the session has memoized for the program —
// its validation verdict, its unfoldings under every bound, and every
// cached pairwise edge block (in every setting) with one of its LTPs as an
// endpoint — and reports how many pairs were evicted. Blocks between
// untouched programs stay cached, so re-analysing a workload after one
// program changed only recomputes that program's ordered pairs: the
// incremental re-analysis behind the server's PATCH endpoint.
//
// Safe to call concurrently with checks: an in-flight check holding the old
// unfolding simply recomputes (and re-caches) the evicted pairs on demand;
// verdicts never depend on cache contents.
func (s *Session) Invalidate(p *btp.Program) int {
	s.mu.Lock()
	s.retired[p] = true
	delete(s.validated, p)
	var victims []*btp.LTP
	for k, ltps := range s.unfolded {
		if k.program == p {
			victims = append(victims, ltps...)
			delete(s.unfolded, k)
		}
	}
	// Drop the memoized universe detectors, cached lattice entries and the
	// core/cover facts touching the program; facts over untouched programs
	// stay — they describe content that did not change, which is what lets
	// a PATCHed workload re-derive only the facts involving the new
	// program.
	touches := func(ps []*btp.Program) bool {
		for _, q := range ps {
			if q == p {
				return true
			}
		}
		return false
	}
	for k, e := range s.dets {
		if touches(e.programs) {
			delete(s.dets, k)
		}
	}
	for k, e := range s.lattices {
		if touches(e.programs) {
			delete(s.lattices, k)
		}
	}
	for _, store := range []map[coreKey]*factLog{s.cores, s.covers} {
		for k, log := range store {
			keptFacts := make([][]*btp.Program, 0, len(log.facts))
			keptGens := make([]uint64, 0, len(log.gens))
			keptCerts := make([]bool, 0, len(log.certs))
			for i, c := range log.facts {
				if !touches(c) {
					keptFacts = append(keptFacts, c)
					keptGens = append(keptGens, log.gens[i])
					keptCerts = append(keptCerts, log.certs[i])
				}
			}
			if len(keptFacts) != len(log.facts) {
				// Fresh log, not an in-place filter: delta-feed readers may
				// still hold suffix views of the old slices outside the lock.
				store[k] = &factLog{facts: keptFacts, gens: keptGens, certs: keptCerts}
				s.coreGen[k]++
			}
		}
	}
	sets := make([]*summary.BlockSet, 0, len(s.blocks))
	for _, bs := range s.blocks {
		sets = append(sets, bs)
	}
	s.mu.Unlock()
	removed := 0
	for _, bs := range sets {
		removed += bs.Invalidate(victims)
	}
	return removed
}

// Stats is a snapshot of the session's cache telemetry.
type Stats struct {
	// Programs is the number of validated programs currently memoized.
	Programs int
	// Unfoldings is the number of memoized (program, bound) unfoldings.
	Unfoldings int
	// Settings is the number of per-setting block caches in use.
	Settings int
	// Blocks aggregates the pairwise edge-block telemetry across settings.
	Blocks summary.BlockStats
	// Cores is the lattice-pruning telemetry: the minimal non-robust core
	// store and its containment-scan counters.
	Cores CoreStats
}

// CoreStats is the lattice-pruning half of the session telemetry.
type CoreStats struct {
	// Cores is the number of minimal non-robust cores currently stored
	// across all (setting, method, bound) keys; Covers the number of
	// stored robust covers (the anti-monotone dual). Certified counts the
	// stored cores carrying the certification provenance bit: non-robust
	// program sets whose counterexample has been replayed to a concrete
	// non-serializable execution (internal/certify).
	Cores     int
	Covers    int
	Certified int
	// Hits counts subset masks decided non-robust by the core containment
	// scan, CoverHits masks decided robust by the cover scan, Misses masks
	// that ran the detector. Pruned = Hits + CoverHits (detector runs
	// skipped) — the quantity the wire reports as subsets_pruned.
	Hits, CoverHits, Misses, Pruned uint64
	// SchedChecked counts detector-run masks the streaming scheduler placed
	// in the first half of their level's visit order; SchedHits counts how
	// many of those were non-robust. SchedHits/SchedChecked is the
	// scheduler's hit rate: how often "estimated conflict-dense" predicted
	// "mints a core".
	SchedChecked, SchedHits uint64
	// SizeBytes estimates the core and cover stores' resident memory.
	SizeBytes int64
}

// Rough per-object costs of the core-store size estimate.
const (
	coreEntryBytes   = 64
	coreProgramBytes = 16
)

// factStoresLocked counts the core and cover facts and their estimated
// resident bytes — the one cost model shared by Stats (telemetry) and
// SizeBytes (eviction accounting). Caller holds s.mu.
func (s *Session) factStoresLocked() (cores, covers, certified int, bytes int64) {
	for _, log := range s.cores {
		cores += len(log.facts)
		for _, cert := range log.certs {
			if cert {
				certified++
			}
		}
		for _, c := range log.facts {
			bytes += coreEntryBytes + 8 + int64(len(c))*coreProgramBytes
		}
	}
	for _, log := range s.covers {
		covers += len(log.facts)
		for _, c := range log.facts {
			bytes += coreEntryBytes + 8 + int64(len(c))*coreProgramBytes
		}
	}
	return cores, covers, certified, bytes
}

// Stats snapshots the session's cache counters across all settings.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Programs:   len(s.validated),
		Unfoldings: len(s.unfolded),
		Settings:   len(s.blocks),
		Cores: CoreStats{
			Hits:         s.coreHits.Load(),
			CoverHits:    s.coverHits.Load(),
			Misses:       s.coreMisses.Load(),
			Pruned:       s.subsetsPruned.Load(),
			SchedChecked: s.schedChecked.Load(),
			SchedHits:    s.schedHits.Load(),
		},
	}
	st.Cores.Cores, st.Cores.Covers, st.Cores.Certified, st.Cores.SizeBytes = s.factStoresLocked()
	sets := make([]*summary.BlockSet, 0, len(s.blocks))
	for _, bs := range s.blocks {
		sets = append(sets, bs)
	}
	s.mu.Unlock()
	for _, bs := range sets {
		st.Blocks.Add(bs.Stats())
	}
	return st
}

// Rough per-object costs of the SizeBytes estimate.
const (
	sessionBaseBytes = 256
	ltpBytes         = 256
	stmtOccBytes     = 96
)

// SizeBytes estimates the session's resident memory: the memoized
// unfoldings plus every per-setting edge-block cache (BlockSet.SizeBytes).
// It feeds the server's per-workload memory accounting for -max-bytes
// eviction; like the block-cache estimate it is relative, not exact.
func (s *Session) SizeBytes() int64 {
	s.mu.Lock()
	n := int64(sessionBaseBytes)
	for _, ltps := range s.unfolded {
		for _, l := range ltps {
			n += ltpBytes + int64(len(l.Statements()))*stmtOccBytes
		}
	}
	_, _, _, factBytes := s.factStoresLocked()
	n += factBytes
	for _, e := range s.dets {
		n += e.det.SizeBytes()
	}
	for _, e := range s.lattices {
		n += e.cores.SizeBytes() + e.covers.SizeBytes()
	}
	sets := make([]*summary.BlockSet, 0, len(s.blocks))
	for _, bs := range s.blocks {
		sets = append(sets, bs)
	}
	s.mu.Unlock()
	for _, bs := range sets {
		n += bs.SizeBytes()
	}
	return n
}

// ltpUniverse resolves every program's memoized unfolding and the flat
// concatenation in program order. With workers > 1 the cold programs are
// validated and unfolded concurrently — LTPs computes outside the session
// lock, so the fan-out genuinely overlaps; on a warm session every lookup
// hits the memo and the fan-out is skipped entirely.
func (s *Session) ltpUniverse(programs []*btp.Program, bound, workers int) ([][]*btp.LTP, []*btp.LTP, error) {
	groups := make([][]*btp.LTP, len(programs))
	if workers > len(programs) {
		workers = len(programs)
	}
	if workers > 1 && !s.allMemoized(programs, bound) {
		errs := make([]error, len(programs))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(programs) {
						return
					}
					groups[i], errs[i] = s.LTPs(programs[i], bound)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	} else {
		for i, p := range programs {
			ltps, err := s.LTPs(p, bound)
			if err != nil {
				return nil, nil, err
			}
			groups[i] = ltps
		}
	}
	var all []*btp.LTP
	for _, g := range groups {
		all = append(all, g...)
	}
	return groups, all, nil
}

// allMemoized reports whether every program's unfolding under the bound is
// already cached, in which case ltpUniverse's parallel fan-out would only
// pay goroutine overhead for map hits.
func (s *Session) allMemoized(programs []*btp.Program, bound int) bool {
	if bound <= 0 {
		bound = btp.DefaultUnfoldBound
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range programs {
		if _, ok := s.unfolded[unfoldKey{program: p, bound: bound}]; !ok {
			return false
		}
	}
	return true
}

// Check analyses the program set: validate and unfold (memoized), assemble
// the summary graph from cached pairwise blocks, and search for dangerous
// cycles. The graph is identical to the one summary.Build constructs.
func (s *Session) Check(programs []*btp.Program, cfg Config) (*Result, error) {
	return s.CheckCtx(context.Background(), programs, cfg)
}

// CheckCtx is Check under a context. The summary graph is assembled with
// cfg.Parallelism workers — missing pairwise edge blocks are sharded across
// the pool and the node-closure fixpoint runs round-synchronized — and the
// context aborts the assembly between pair chunks and stages; the cycle
// detection itself is a single sequential pass.
func (s *Session) CheckCtx(ctx context.Context, programs []*btp.Program, cfg Config) (*Result, error) {
	tr := cfg.Tracer
	var t0 time.Time
	if tr != nil {
		ctx = cfg.traceCtx(ctx)
		t0 = time.Now()
	}
	_, ltps, err := s.ltpUniverse(programs, cfg.bound(), cfg.parallelism())
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Span(obs.PhaseValidateUnfold, time.Since(t0))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr != nil {
		t0 = time.Now()
	}
	g, err := summary.ComposeCtx(ctx, s.Blocks(cfg.Setting), ltps, cfg.parallelism())
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Span(obs.PhaseCompose, time.Since(t0))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr != nil {
		t0 = time.Now()
	}
	ok, w := g.RobustWith(cfg.Method, cfg.parallelism())
	if tr != nil {
		tr.Span(obs.PhaseDetect, time.Since(t0))
	}
	return &Result{Robust: ok, Witness: w, Graph: g, LTPs: ltps}, nil
}

// RobustSubsets checks every non-empty subset of the given programs and
// reports the robust and maximal robust ones (Figures 6 and 7). Program
// count must be modest (the benchmarks have ≤ 5); the enumeration is
// exponential in it. Subsets are fanned out over cfg.Parallelism workers;
// each worker only composes cached blocks and runs cycle detection, so the
// expensive Algorithm 1 side conditions run once per LTP pair overall
// rather than once per subset.
func (s *Session) RobustSubsets(programs []*btp.Program, cfg Config) (*SubsetReport, error) {
	return s.RobustSubsetsCtx(context.Background(), programs, cfg)
}

// RobustSubsetsCtx is RobustSubsets under a context: every worker checks the
// context between subset masks, so a server timeout or client disconnect
// aborts the exponential enumeration mid-flight. On cancellation the
// context's error is returned and the partial verdicts are discarded (the
// block cache keeps whatever pairs were computed — they stay valid).
//
// By default the enumeration is the lattice-pruned level-order traversal of
// lattice.go: subsets are visited by size, every non-robust discovery is
// recorded as a minimal non-robust core, and supersets of known cores are
// decided by a bitset containment scan instead of running the detector —
// non-robustness is monotone over induced subgraphs, so the pruning is
// exact and the report is identical to the flat fan-out (and to the naive
// oracle). Config.DisablePruning selects the retained flat path.
func (s *Session) RobustSubsetsCtx(ctx context.Context, programs []*btp.Program, cfg Config) (*SubsetReport, error) {
	n := len(programs)
	if n > 20 {
		return nil, fmt.Errorf("analysis: subset enumeration over %d programs is infeasible", n)
	}
	tr := cfg.Tracer
	var t0 time.Time
	if tr != nil {
		ctx = cfg.traceCtx(ctx)
		t0 = time.Now()
	}
	groups, all, err := s.ltpUniverse(programs, cfg.bound(), cfg.parallelism())
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Span(obs.PhaseValidateUnfold, time.Since(t0))
		t0 = time.Now()
	}
	if cfg.DisablePruning {
		// The detector composes the universe graph once — computing (or
		// reusing) every pairwise block on the worker pool — and then
		// answers each subset's verdict on the universe's edge arrays
		// filtered by a node mask, allocation-free per subset.
		det, err := summary.NewSubsetDetectorCtx(ctx, s.Blocks(cfg.Setting), all, cfg.parallelism())
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Span(obs.PhaseCompose, time.Since(t0))
		}
		return s.enumerateFlat(ctx, det, groups, programs, cfg)
	}
	det, err := s.subsetDetector(ctx, cfg, programs, all)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Span(obs.PhaseCompose, time.Since(t0))
	}
	return s.enumerateLattice(ctx, det, groups, programs, cfg)
}

// enumerateFlat is the pre-pruning enumeration: every one of the 2^n − 1
// masks runs the detector, fanned over the worker pool. Retained as the
// DisablePruning path — the benchmark baseline and the engine-level oracle
// of the pruning property tests.
func (s *Session) enumerateFlat(ctx context.Context, det *summary.SubsetDetector, groups [][]*btp.LTP, programs []*btp.Program, cfg Config) (*SubsetReport, error) {
	n := len(programs)
	words := (det.NumNodes() + 63) / 64
	programMask := programMasks(groups, words)

	total := 1 << n
	verdicts := make([]bool, total)
	workers := cfg.parallelism()
	if workers > total-1 {
		workers = total - 1
	}
	// runMasks checks a stream of subset masks on one worker's scratch.
	runMasks := func(nextMask func() int) {
		scratch := det.NewScratch()
		members := make([]uint64, words)
		for {
			if ctx.Err() != nil {
				return
			}
			mask := nextMask()
			if mask >= total {
				return
			}
			for w := range members {
				members[w] = 0
			}
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					orInto(members, programMask[i])
				}
			}
			verdicts[mask] = det.Robust(cfg.Method, members, scratch)
		}
	}
	if workers <= 1 {
		mask := 0
		runMasks(func() int { mask++; return mask })
	} else {
		var next atomic.Int64 // next.Add(1) hands out masks 1..total-1
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer capturePanic(&errs[w])
				runMasks(func() int { return int(next.Add(1)) })
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := assembleReport(programs, verdicts)
	rep.Checked = total - 1
	return rep, nil
}
