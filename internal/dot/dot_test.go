package dot

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/schedule"
	"repro/internal/seg"
	"repro/internal/summary"
)

func auctionGraph(t *testing.T) *summary.Graph {
	t.Helper()
	b := benchmarks.Auction()
	return summary.Build(b.Schema, btp.UnfoldAll2(b.Programs), summary.SettingAttrDepFK)
}

func TestSummaryGraphDOT(t *testing.T) {
	g := auctionGraph(t)
	out := SummaryGraph(g, Options{Name: "Auction", EdgeLabels: true, CollapseParallel: true})
	for _, want := range []string{
		`digraph "Auction"`,
		`"FindBids";`,
		`"PlaceBid1";`,
		`"PlaceBid2";`,
		`style=dashed`, // the counterflow edge
		`q2→q5`,        // its label
		`}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Exactly one dashed edge for Auction (Table 2: one counterflow edge).
	if got := strings.Count(out, "style=dashed"); got != 1 {
		t.Errorf("dashed edges = %d, want 1", got)
	}
}

func TestSummaryGraphDOTUncollapsed(t *testing.T) {
	g := auctionGraph(t)
	collapsed := SummaryGraph(g, Options{CollapseParallel: true})
	expanded := SummaryGraph(g, Options{CollapseParallel: false})
	if strings.Count(expanded, "->") <= strings.Count(collapsed, "->") {
		t.Error("uncollapsed output should have more drawn edges")
	}
	// Expanded output draws one edge per summary edge (17 for Auction).
	if got := strings.Count(expanded, "->"); got != 17 {
		t.Errorf("expanded edges = %d, want 17", got)
	}
}

func TestSummaryGraphDeterminism(t *testing.T) {
	g := auctionGraph(t)
	a := SummaryGraph(g, Options{EdgeLabels: true, CollapseParallel: true})
	b := SummaryGraph(g, Options{EdgeLabels: true, CollapseParallel: true})
	if a != b {
		t.Error("DOT output is not deterministic")
	}
}

func TestSerializationGraphDOT(t *testing.T) {
	sch := benchmarks.AuctionSchema()
	t1 := schedule.NewTransaction(1)
	t1.Label = "Writer"
	w := t1.Write(schedule.Tuple("Bids", "u1"), "bid")
	c1 := t1.Commit()
	t2 := schedule.NewTransaction(2)
	r := t2.Read(schedule.Tuple("Bids", "u1"), "bid")
	c2 := t2.Commit()
	s, err := schedule.FromOrder(sch, []*schedule.Transaction{t1, t2}, []*schedule.Op{w, c1, r, c2})
	if err != nil {
		t.Fatal(err)
	}
	g := seg.Build(s)
	out := SerializationGraph(g, Options{EdgeLabels: true})
	for _, want := range []string{`digraph "SeG"`, `"T1"`, `"T2"`, `label="wr"`, `Writer`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
