// Package dot renders summary graphs and serialization graphs in Graphviz
// DOT format, reproducing the visualizations of Figures 4, 11, 18 and 19.
// Counterflow edges are dashed, as in the paper.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/seg"
	"repro/internal/summary"
)

// Options tune rendering.
type Options struct {
	// Name is the graph name; defaults to "SuG" / "SeG".
	Name string
	// EdgeLabels includes the statement pair on each edge (can be dense;
	// the paper omits them for SmallBank and TPC-C).
	EdgeLabels bool
	// CollapseParallel merges parallel edges of the same class between two
	// nodes into a single drawn edge, as the paper's figures do.
	CollapseParallel bool
}

// SummaryGraph renders a summary graph.
func SummaryGraph(g *summary.Graph, opts Options) string {
	name := opts.Name
	if name == "" {
		name = "SuG"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %q;\n", n.Name)
	}
	type key struct {
		from, to string
		class    summary.EdgeClass
	}
	labels := map[key][]string{}
	var order []key
	for _, e := range g.Edges {
		k := key{e.From.Name, e.To.Name, e.Class}
		if _, seen := labels[k]; !seen {
			order = append(order, k)
		}
		labels[k] = append(labels[k], fmt.Sprintf("%s→%s", e.FromStmt.Stmt.Name, e.ToStmt.Stmt.Name))
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if a.from != c.from {
			return a.from < c.from
		}
		if a.to != c.to {
			return a.to < c.to
		}
		return a.class < c.class
	})
	for _, k := range order {
		attrs := []string{}
		if k.class == summary.Counterflow {
			attrs = append(attrs, "style=dashed")
		}
		if opts.EdgeLabels {
			ls := labels[k]
			sort.Strings(ls)
			attrs = append(attrs, fmt.Sprintf("label=%q", strings.Join(ls, "\\n")))
		}
		if opts.CollapseParallel {
			writeEdge(&b, k.from, k.to, attrs)
		} else {
			for range labels[k] {
				writeEdge(&b, k.from, k.to, attrs)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SerializationGraph renders a serialization graph; dependency kinds label
// the edges.
func SerializationGraph(g *seg.Graph, opts Options) string {
	name := opts.Name
	if name == "" {
		name = "SeG"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	for _, t := range g.Schedule.Txns {
		label := fmt.Sprintf("T%d", t.ID)
		if t.Label != "" {
			label = fmt.Sprintf("T%d\\n%s", t.ID, t.Label)
		}
		fmt.Fprintf(&b, "  \"T%d\" [label=%q];\n", t.ID, label)
	}
	type key struct {
		from, to    int
		counterflow bool
	}
	labels := map[key][]string{}
	var order []key
	for _, d := range g.Deps {
		k := key{d.From.Txn.ID, d.To.Txn.ID, d.Counterflow}
		if _, seen := labels[k]; !seen {
			order = append(order, k)
		}
		labels[k] = append(labels[k], d.Kind.String())
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if a.from != c.from {
			return a.from < c.from
		}
		if a.to != c.to {
			return a.to < c.to
		}
		return !a.counterflow && c.counterflow
	})
	for _, k := range order {
		attrs := []string{}
		if k.counterflow {
			attrs = append(attrs, "style=dashed")
		}
		if opts.EdgeLabels {
			ls := labels[k]
			sort.Strings(ls)
			attrs = append(attrs, fmt.Sprintf("label=%q", strings.Join(uniq(ls), ",")))
		}
		writeEdge(&b, fmt.Sprintf("T%d", k.from), fmt.Sprintf("T%d", k.to), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

func writeEdge(b *strings.Builder, from, to string, attrs []string) {
	if len(attrs) == 0 {
		fmt.Fprintf(b, "  %q -> %q;\n", from, to)
		return
	}
	fmt.Fprintf(b, "  %q -> %q [%s];\n", from, to, strings.Join(attrs, ", "))
}

func uniq(ss []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
