package summary

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// synthClosure builds an n-node adjacency from an edge list, carves a
// closure matrix seeded with self-bits and edges, and runs fix on it.
func synthClosure(n int, edges [][2]int, fix func([]bitset)) []bitset {
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	rows := make([]bitset, n)
	for i := 0; i < n; i++ {
		rows[i] = bitset(backing[i*words : (i+1)*words])
		rows[i].set(i)
	}
	for _, e := range edges {
		rows[e[0]].set(e[1])
	}
	fix(rows)
	return rows
}

// TestSquaringFixpointMatchesSequential is the determinism half of the
// intra-check parallelism acceptance: on chains, cycles, dense blocks and
// pseudo-random graphs — including sizes above the parallel threshold and
// word-boundary sizes — the round-synchronized parallel fixpoint must
// produce reachability bitsets identical to the sequential one, for every
// worker count.
func TestSquaringFixpointMatchesSequential(t *testing.T) {
	graphs := map[string]struct {
		n     int
		edges func(n int) [][2]int
	}{
		"empty":      {0, func(int) [][2]int { return nil }},
		"singleton":  {1, func(int) [][2]int { return nil }},
		"self-loops": {5, func(n int) [][2]int { return [][2]int{{0, 0}, {4, 4}} }},
		"chain": {130, func(n int) [][2]int {
			var es [][2]int
			for i := 0; i+1 < n; i++ {
				es = append(es, [2]int{i, i + 1})
			}
			return es
		}},
		"cycle": {127, func(n int) [][2]int {
			var es [][2]int
			for i := 0; i < n; i++ {
				es = append(es, [2]int{i, (i + 1) % n})
			}
			return es
		}},
		"two-cliques-bridge": {128, func(n int) [][2]int {
			var es [][2]int
			half := n / 2
			for i := 0; i < half; i++ {
				for j := 0; j < half; j++ {
					es = append(es, [2]int{i, j})
				}
			}
			es = append(es, [2]int{half - 1, half})
			for i := half; i+1 < n; i++ {
				es = append(es, [2]int{i, i + 1})
			}
			return es
		}},
		"pseudo-random": {190, func(n int) [][2]int {
			// Deterministic LCG so the test is reproducible.
			var es [][2]int
			state := uint64(42)
			next := func() int {
				state = state*6364136223846793005 + 1442695040888963407
				return int(state>>33) % n
			}
			for k := 0; k < 3*n; k++ {
				es = append(es, [2]int{next(), next()})
			}
			return es
		}},
	}
	for name, g := range graphs {
		edges := g.edges(g.n)
		want := synthClosure(g.n, edges, fixpoint)
		for _, workers := range []int{1, 2, 3, 7, 64} {
			got := synthClosure(g.n, edges, func(rows []bitset) {
				squaringFixpoint(rows, workers)
			})
			for i := range want {
				for w := range want[i] {
					if got[i][w] != want[i][w] {
						t.Fatalf("%s, %d workers: row %d word %d = %x, want %x",
							name, workers, i, w, got[i][w], want[i][w])
					}
				}
			}
		}
	}
}

// TestClosuresParallelMatchesSequential pins the end-to-end closure path on
// a real universe above the parallel threshold: the Auction(40) summary
// graph (120 nodes) must yield identical reach/coreach matrices whether
// indexed sequentially or with the parallel fixpoint.
func TestClosuresParallelMatchesSequential(t *testing.T) {
	bench := benchmarks.AuctionN(40)
	ltps := btp.UnfoldAll2(bench.Programs)
	if len(ltps) < parallelClosureMinRows {
		t.Fatalf("universe has %d nodes, below the parallel threshold %d",
			len(ltps), parallelClosureMinRows)
	}
	g := Build(bench.Schema, ltps, SettingAttrDepFK)
	want := closures(g.edgeFrom, g.edgeTo, len(ltps))
	got := closuresParallel(g.edgeFrom, g.edgeTo, len(ltps), 4)
	for i := range want {
		for w := range want[i] {
			if got[i][w] != want[i][w] {
				t.Fatalf("reach row %d word %d diverges", i, w)
			}
		}
	}
}

// TestEnsureCtxShardedMatchesSequential: the sharded pair derivation must
// fill the same cache with the same blocks as the sequential scan, and a
// graph composed from it must equal Build edge for edge.
func TestEnsureCtxShardedMatchesSequential(t *testing.T) {
	bench := benchmarks.AuctionN(6)
	ltps := btp.UnfoldAll2(bench.Programs)
	for _, setting := range AllSettings {
		seq := NewBlockSet(bench.Schema, setting)
		seq.Ensure(ltps)
		par := NewBlockSet(bench.Schema, setting)
		if err := par.EnsureCtx(context.Background(), ltps, 8); err != nil {
			t.Fatal(err)
		}
		if seq.Len() != par.Len() {
			t.Fatalf("%s: sharded cache has %d pairs, sequential %d", setting, par.Len(), seq.Len())
		}
		for _, pi := range ltps {
			for _, pj := range ltps {
				a, b := seq.PairEdges(pi, pj), par.PairEdges(pi, pj)
				if len(a) != len(b) {
					t.Fatalf("%s: pair block sizes diverge: %d vs %d", setting, len(a), len(b))
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("%s: pair block edge %d diverges: %s vs %s", setting, k, a[k], b[k])
					}
				}
			}
		}
		want := Build(bench.Schema, ltps, setting)
		got, err := ComposeCtx(context.Background(), par, ltps, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("%s: composed %d edges, Build %d", setting, len(got.Edges), len(want.Edges))
		}
		for i := range got.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("%s: edge %d = %s, want %s", setting, i, got.Edges[i], want.Edges[i])
			}
		}
		if got.String() != want.String() {
			t.Errorf("%s: graph dump diverges", setting)
		}
	}
}

// TestComposeCtxEdgeCases covers the degenerate universes: the empty LTP
// list (a trivially robust empty graph) and a single-program workload, both
// sequential and sharded.
func TestComposeCtxEdgeCases(t *testing.T) {
	bench := benchmarks.SmallBank()
	bs := NewBlockSet(bench.Schema, SettingAttrDepFK)

	// Empty LTP list: no nodes, no edges, robust under both methods.
	for _, workers := range []int{1, 4} {
		g, err := ComposeCtx(context.Background(), bs, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Nodes) != 0 || len(g.Edges) != 0 {
			t.Fatalf("empty universe composed %d nodes, %d edges", len(g.Nodes), len(g.Edges))
		}
		for _, m := range []Method{TypeI, TypeII} {
			if ok, w := g.Robust(m); !ok || w != nil {
				t.Fatalf("empty graph not robust under %s", m)
			}
		}
	}
	if bs.Len() != 0 {
		t.Fatalf("empty compose cached %d pairs", bs.Len())
	}

	// Single-program workload: Balance unfolds to one LTP; the 1×1 block
	// must match Build, with the single self-pair cached.
	single := btp.UnfoldAll2([]*btp.Program{bench.Program("Balance")})
	for _, workers := range []int{1, 4} {
		got, err := ComposeCtx(context.Background(), NewBlockSet(bench.Schema, SettingAttrDepFK), single, workers)
		if err != nil {
			t.Fatal(err)
		}
		want := Build(bench.Schema, single, SettingAttrDepFK)
		if got.String() != want.String() {
			t.Fatalf("single-program graph diverges from Build:\n%s\nvs\n%s", got, want)
		}
		wantOK, _ := want.Robust(TypeII)
		gotOK, _ := got.Robust(TypeII)
		if gotOK != wantOK {
			t.Fatalf("single-program verdict %t, want %t", gotOK, wantOK)
		}
	}

	// An Ensure over the empty list is a no-op, not a panic.
	if err := bs.EnsureCtx(context.Background(), nil, 8); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureCtxCancellation: a cancelled context aborts the shard scan with
// the context's error; already-computed pairs stay cached and valid.
func TestEnsureCtxCancellation(t *testing.T) {
	bench := benchmarks.AuctionN(4)
	ltps := btp.UnfoldAll2(bench.Programs)
	bs := NewBlockSet(bench.Schema, SettingAttrDepFK)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bs.EnsureCtx(ctx, ltps, 4); err == nil {
		t.Fatal("cancelled EnsureCtx returned nil")
	}
	if _, err := ComposeCtx(ctx, bs, ltps, 4); err == nil {
		t.Fatal("cancelled ComposeCtx returned nil error")
	}
	// Whatever made it into the cache must still be correct.
	g := Compose(bs, ltps)
	want := Build(bench.Schema, ltps, SettingAttrDepFK)
	if g.String() != want.String() {
		t.Error("post-cancellation compose diverges from Build")
	}
}

// TestTypeIIParallelMatchesSequential is the sharded-detection acceptance
// test: on every fixed benchmark graph and on Auction(n) graphs spanning
// the parallel threshold, typeIIParallel must return the same verdict AND
// the same first witness as the sequential pair-centric scan, for every
// worker count. Small graphs are driven through typeIIParallel directly
// (RobustWith would route them to the sequential path); the large Auction
// graphs also exercise the public RobustWith routing.
func TestTypeIIParallelMatchesSequential(t *testing.T) {
	graphs := []struct {
		name string
		mk   func() *Graph
	}{
		{"SmallBank", func() *Graph {
			b := benchmarks.SmallBank()
			return Build(b.Schema, btp.UnfoldAll2(b.Programs), SettingAttrDepFK)
		}},
		{"TPCC", func() *Graph {
			b := benchmarks.TPCC()
			return Build(b.Schema, btp.UnfoldAll2(b.Programs), SettingAttrDepFK)
		}},
		{"TPCC-tpl", func() *Graph {
			b := benchmarks.TPCC()
			return Build(b.Schema, btp.UnfoldAll2(b.Programs), SettingTplDep)
		}},
	}
	for _, n := range []int{10, 22, 40} {
		n := n
		for _, setting := range AllSettings {
			setting := setting
			graphs = append(graphs, struct {
				name string
				mk   func() *Graph
			}{fmt.Sprintf("Auction(%d)/%s", n, setting), func() *Graph {
				b := benchmarks.AuctionN(n)
				return Build(b.Schema, btp.UnfoldAll2(b.Programs), setting)
			}})
		}
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.mk()
			wantFound, wantW := g.typeII(false)
			for _, workers := range []int{2, 3, 8} {
				gotFound, gotW := g.typeIIParallel(workers)
				if gotFound != wantFound {
					t.Fatalf("workers=%d: found=%t, sequential=%t", workers, gotFound, wantFound)
				}
				if (gotW == nil) != (wantW == nil) {
					t.Fatalf("workers=%d: witness presence diverges", workers)
				}
				if gotW != nil && gotW.String() != wantW.String() {
					t.Errorf("workers=%d: witness diverges\ngot:  %s\nwant: %s", workers, gotW, wantW)
				}
			}
			// The public routing: verdicts must match whichever path
			// RobustWith picks for this size.
			seqOK, seqW := g.Robust(TypeII)
			parOK, parW := g.RobustWith(TypeII, 8)
			if seqOK != parOK || (seqW == nil) != (parW == nil) {
				t.Errorf("RobustWith diverges from Robust: %t/%t", parOK, seqOK)
			}
			if seqW != nil && parW.String() != seqW.String() {
				t.Errorf("RobustWith witness diverges")
			}
		})
	}
}
