package summary

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// BlockSet caches, for one analysis setting, the summary-graph edges of
// every ordered pair of LTPs it has seen. Because Algorithm 1 derives edges
// purely pairwise (appendPairEdges never consults other LTPs), the summary
// graph of any LTP subset is exactly the concatenation of its pairs'
// cached blocks — Compose assembles it without re-running ncDepConds,
// cDepConds or fkSuppressed.
//
// A BlockSet is safe for concurrent use: Ensure and PairEdges may populate
// the cache from multiple goroutines, and Compose only reads it. For the
// parallel subset enumeration the caller typically calls Ensure once over
// the full LTP universe and then fans Compose out over subsets.
type BlockSet struct {
	b builder

	mu     sync.RWMutex
	blocks map[ltpPair][]Edge
	// retired marks LTPs passed to Invalidate: a check that was already
	// in flight when its program was invalidated may still look their
	// pairs up, and those recomputations must not be re-cached — the old
	// LTP pointers are unreachable to future callers, so re-inserting
	// them would leak the entries for the cache's lifetime.
	retired map[*btp.LTP]bool

	// Cache telemetry, exposed through Stats. A hit is a PairEdges call
	// answered from the cache; a miss ran appendPairEdges (two racing
	// goroutines may both record a miss for the same pair — the counters
	// track work done, not distinct pairs). invalidated counts pairs
	// evicted by Invalidate.
	hits, misses, invalidated atomic.Uint64
}

type ltpPair struct{ from, to *btp.LTP }

// NewBlockSet creates an empty pairwise edge-block cache for the setting.
func NewBlockSet(schema *relschema.Schema, setting Setting) *BlockSet {
	return &BlockSet{
		b:      builder{setting: setting, schema: schema},
		blocks: make(map[ltpPair][]Edge),
	}
}

// Setting returns the analysis setting the blocks are computed under.
func (bs *BlockSet) Setting() Setting { return bs.b.setting }

// Len returns the number of cached ordered pairs (for tests and stats).
func (bs *BlockSet) Len() int {
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	return len(bs.blocks)
}

// BlockStats is a snapshot of one block cache's telemetry.
type BlockStats struct {
	// Pairs is the number of ordered LTP pairs currently cached.
	Pairs int
	// Hits counts PairEdges calls answered from the cache.
	Hits uint64
	// Misses counts PairEdges calls that ran Algorithm 1's pairwise edge
	// derivation.
	Misses uint64
	// Invalidated counts pairs evicted by Invalidate since creation.
	Invalidated uint64
}

// Add accumulates another snapshot into s (for aggregating across
// settings).
func (s *BlockStats) Add(t BlockStats) {
	s.Pairs += t.Pairs
	s.Hits += t.Hits
	s.Misses += t.Misses
	s.Invalidated += t.Invalidated
}

// Stats returns a snapshot of the cache telemetry.
func (bs *BlockSet) Stats() BlockStats {
	return BlockStats{
		Pairs:       bs.Len(),
		Hits:        bs.hits.Load(),
		Misses:      bs.misses.Load(),
		Invalidated: bs.invalidated.Load(),
	}
}

// Rough per-entry overheads of the SizeBytes estimate: a cached pair costs
// its two-pointer key, a slice header and a share of the map's buckets; a
// retired LTP costs a map entry.
const (
	edgeBytes         = int64(unsafe.Sizeof(Edge{}))
	pairEntryBytes    = 64
	retiredEntryBytes = 16
)

// SizeBytes estimates the cache's resident memory: every cached edge slice
// plus map and bookkeeping overhead. It is the per-setting term of the
// server's per-workload memory accounting — the input to the -max-bytes
// eviction policy — so it is a relative estimate (deliberately biased low:
// it ignores the LTPs the edges point into, which the session accounts for
// separately), not an exact accounting.
func (bs *BlockSet) SizeBytes() int64 {
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	n := int64(unsafe.Sizeof(*bs))
	for _, edges := range bs.blocks {
		n += pairEntryBytes + int64(cap(edges))*edgeBytes
	}
	n += int64(len(bs.retired)) * retiredEntryBytes
	return n
}

// Retire marks the LTPs so their pairs are never (re-)admitted to the
// cache, without evicting anything. Used for fresh unfoldings handed to
// in-flight callers of an already-invalidated program.
func (bs *BlockSet) Retire(ltps []*btp.LTP) {
	bs.mu.Lock()
	if bs.retired == nil {
		bs.retired = make(map[*btp.LTP]bool, len(ltps))
	}
	for _, l := range ltps {
		bs.retired[l] = true
	}
	bs.mu.Unlock()
}

// Invalidate evicts every cached pair with at least one endpoint among the
// given LTPs and reports how many pairs were dropped. Pairs between
// untouched LTPs stay cached — this is the pair-level invalidation behind
// incremental re-analysis: when one program changes, only its ordered pairs
// are recomputed on the next Compose. The LTPs are also retired: checks
// already in flight still resolve their pairs (recomputed on demand) but
// the results are no longer admitted to the cache.
func (bs *BlockSet) Invalidate(ltps []*btp.LTP) int {
	if len(ltps) == 0 {
		return 0
	}
	bs.mu.Lock()
	if bs.retired == nil {
		bs.retired = make(map[*btp.LTP]bool, len(ltps))
	}
	for _, l := range ltps {
		bs.retired[l] = true
	}
	removed := 0
	for k := range bs.blocks {
		if bs.retired[k.from] || bs.retired[k.to] {
			delete(bs.blocks, k)
			removed++
		}
	}
	bs.mu.Unlock()
	bs.invalidated.Add(uint64(removed))
	return removed
}

// PairEdges returns the edge block of the ordered pair (pi, pj), computing
// and caching it on first use. The returned slice is shared — callers must
// not mutate it.
func (bs *BlockSet) PairEdges(pi, pj *btp.LTP) []Edge {
	k := ltpPair{pi, pj}
	bs.mu.RLock()
	edges, ok := bs.blocks[k]
	bs.mu.RUnlock()
	if ok {
		bs.hits.Add(1)
		return edges
	}
	bs.misses.Add(1)
	edges = bs.b.appendPairEdges(nil, pi, pj)
	bs.mu.Lock()
	// Another goroutine may have raced us here; last write wins — the
	// computation is deterministic, so both results are identical.
	// Retired endpoints are served but never re-cached.
	if !bs.retired[pi] && !bs.retired[pj] {
		bs.blocks[k] = edges
	}
	bs.mu.Unlock()
	return edges
}

// CachedPairStats reports the cached edge block of the ordered pair — its
// edge count and how many of those edges are counterflow — without
// computing a missing block (ok is false then). The cost-ordered lattice
// scheduler reads these to estimate a subset's conflict density; a pure
// read keeps the estimate free of the very composition work the schedule
// is trying to order.
func (bs *BlockSet) CachedPairStats(pi, pj *btp.LTP) (edges, counterflow int, ok bool) {
	bs.mu.RLock()
	blk, ok := bs.blocks[ltpPair{pi, pj}]
	bs.mu.RUnlock()
	if !ok {
		return 0, 0, false
	}
	for _, e := range blk {
		if e.Class == Counterflow {
			counterflow++
		}
	}
	return len(blk), counterflow, true
}

// Ensure precomputes the blocks of every ordered pair over the given LTPs,
// sequentially, so that subsequent Compose calls over subsets of them are
// pure cache reads. EnsureCtx is the sharded variant behind the Parallelism
// knob.
func (bs *BlockSet) Ensure(ltps []*btp.LTP) {
	bs.EnsureCtx(context.Background(), ltps, 1)
}

// Compose assembles the summary graph SuG(P) of the given LTPs from the
// block set's cached pairwise edges. The result is identical — including
// edge order — to Build(schema, ltps, setting): Build iterates pi-major
// over ordered pairs and each pair's edges are contiguous, so concatenating
// the cached blocks in the same order reproduces the construction exactly.
// Missing pairs are computed (and cached) on the fly. ComposeCtx is the
// sharded variant behind the Parallelism knob.
func Compose(bs *BlockSet, ltps []*btp.LTP) *Graph {
	g, _ := ComposeCtx(context.Background(), bs, ltps, 1) // never errs: ctx cannot cancel
	return g
}

// SubsetDetector answers robustness queries for node-induced subgraphs of
// one LTP universe. It composes the universe graph once (priming the block
// cache) and then detects dangerous cycles per subset directly on the
// universe's edge arrays, filtered by a membership bitmask — no per-subset
// graph is materialized, and with a reused DetectScratch the per-query
// allocation count is zero. Verdicts are identical to running
// Graph.Robust on the composed subset graph (the subset's summary graph is
// exactly the universe graph induced on its nodes); the subset enumeration
// uses this because it only needs verdicts, never witnesses.
type SubsetDetector struct {
	edges    []Edge
	from, to []int32
	// in[i] lists universe edge indices entering node i; out[i] the edges
	// leaving it (used by the witness-path reconstruction of RobustWitness).
	in, out [][]int32
	// cf lists the counterflow edge indices.
	cf    []int32
	n     int
	words int
}

// NewSubsetDetector builds a detector over the LTP universe, computing (or
// reusing) the pairwise blocks of every ordered pair. NewSubsetDetectorCtx
// is the sharded variant behind the Parallelism knob.
func NewSubsetDetector(bs *BlockSet, ltps []*btp.LTP) *SubsetDetector {
	return newSubsetDetector(Compose(bs, ltps), len(ltps))
}

// newSubsetDetector indexes a freshly composed universe graph for
// per-subset detection.
func newSubsetDetector(g *Graph, n int) *SubsetDetector {
	d := &SubsetDetector{
		edges: g.Edges, from: g.edgeFrom, to: g.edgeTo,
		n: n, words: (n + 63) / 64,
	}
	inDeg := make([]int, n)
	outDeg := make([]int, n)
	for ei := range g.Edges {
		inDeg[g.edgeTo[ei]]++
		outDeg[g.edgeFrom[ei]]++
	}
	inBacking := make([]int32, len(g.Edges))
	outBacking := make([]int32, len(g.Edges))
	d.in = make([][]int32, n)
	d.out = make([][]int32, n)
	io, oo := 0, 0
	for i := 0; i < n; i++ {
		d.in[i] = inBacking[io : io : io+inDeg[i]]
		io += inDeg[i]
		d.out[i] = outBacking[oo : oo : oo+outDeg[i]]
		oo += outDeg[i]
	}
	for ei := range g.Edges {
		d.in[g.edgeTo[ei]] = append(d.in[g.edgeTo[ei]], int32(ei))
		d.out[g.edgeFrom[ei]] = append(d.out[g.edgeFrom[ei]], int32(ei))
		if g.Edges[ei].Class == Counterflow {
			d.cf = append(d.cf, int32(ei))
		}
	}
	return d
}

// SizeBytes estimates the detector's resident memory beyond the graph it
// was built from: adjacency backing arrays and the counterflow index. Used
// by the session's memory accounting when detectors are memoized across
// enumerations.
func (d *SubsetDetector) SizeBytes() int64 {
	return int64(unsafe.Sizeof(*d)) + int64(len(d.edges))*(2*4+2*4) + int64(cap(d.cf))*4
}

// NumNodes returns the universe size; membership masks passed to Robust
// must cover (NumNodes+63)/64 words.
func (d *SubsetDetector) NumNodes() int { return d.n }

// DetectScratch holds the reusable buffers of one detection worker. Not
// safe for concurrent use — allocate one per goroutine.
type DetectScratch struct {
	backing        []uint64
	reach, coreach []bitset
	cache          []int32
}

// NewScratch allocates a scratch sized for the detector's universe.
func (d *SubsetDetector) NewScratch() *DetectScratch {
	s := &DetectScratch{
		backing: make([]uint64, 2*d.n*d.words),
		reach:   make([]bitset, d.n),
		coreach: make([]bitset, d.n),
		cache:   make([]int32, d.n*d.n),
	}
	for i := 0; i < d.n; i++ {
		s.reach[i] = bitset(s.backing[i*d.words : (i+1)*d.words])
		s.coreach[i] = bitset(s.backing[(d.n+i)*d.words : (d.n+i+1)*d.words])
	}
	return s
}

// Robust reports whether the subgraph induced by the member nodes (a
// bitmask over universe node indices) is free of dangerous cycles under the
// method — the verdict Graph.Robust would return on the composed subset
// graph.
func (d *SubsetDetector) Robust(method Method, members []uint64, s *DetectScratch) bool {
	ok, _, _, _ := d.detect(method, members, s)
	return ok
}

// RobustWitness is Robust plus, when the subgraph is non-robust, the node
// mask of the found witness cycle: the distinguished edges' endpoints and
// every node on the connecting paths. The mask is what makes recorded
// non-robust cores *minimal-ish* out of the gate — the lattice enumeration
// then minimizes it to exact program-level minimality — rather than
// recording the whole (possibly much larger) subset. A robust subgraph
// returns (true, nil).
func (d *SubsetDetector) RobustWitness(method Method, members []uint64, s *DetectScratch) (bool, []uint64) {
	ok, e1, e2, e3 := d.detect(method, members, s)
	if ok {
		return true, nil
	}
	mask := make([]uint64, d.words)
	wm := bitset(mask)
	if method == TypeI {
		// Witness: the counterflow edge e3 plus a path closing it back.
		fi, ti := int(d.from[e3]), int(d.to[e3])
		wm.set(fi)
		wm.set(ti)
		d.markPath(ti, fi, members, wm)
		return false, mask
	}
	// Witness: e1, path(e1.To -> e2.From), e2, e3, path(e3.To -> e1.From) —
	// the same shape Graph.assembleWitness stitches.
	p1, p2 := int(d.from[e1]), int(d.to[e1])
	s2, m := int(d.from[e2]), int(d.to[e2])
	t := int(d.to[e3])
	for _, node := range [...]int{p1, p2, s2, m, t} {
		wm.set(node)
	}
	d.markPath(p2, s2, members, wm)
	d.markPath(t, p1, members, wm)
	return false, mask
}

// WitnessMask returns the node mask of the witness cycle found in the
// induced subgraph, or nil when it is robust — RobustWitness without the
// verdict, for callers that already know it.
func (d *SubsetDetector) WitnessMask(method Method, members []uint64, s *DetectScratch) []uint64 {
	_, mask := d.RobustWitness(method, members, s)
	return mask
}

// markPath sets the nodes of one shortest member-edge path from u to v
// (exclusive of endpoints, which callers set) into wm. It panics when no
// path exists: callers only ask for paths whose existence the closure bits
// established.
func (d *SubsetDetector) markPath(u, v int, members []uint64, wm bitset) {
	if u == v {
		return
	}
	mem := bitset(members)
	prev := make([]int32, d.n)
	for i := range prev {
		prev[i] = -1
	}
	queue := make([]int32, 0, d.n)
	queue = append(queue, int32(u))
	prev[u] = int32(u)
	for len(queue) > 0 {
		cur := int(queue[0])
		queue = queue[1:]
		for _, ei := range d.out[cur] {
			next := int(d.to[ei])
			if !mem.has(next) || prev[next] >= 0 {
				continue
			}
			prev[next] = int32(cur)
			if next == v {
				for at := int(prev[v]); at != u; at = int(prev[at]) {
					wm.set(at)
				}
				return
			}
			queue = append(queue, int32(next))
		}
	}
	panic("summary: no witness path despite established reachability")
}

// detect runs the induced-subgraph cycle search and returns the verdict
// plus, when non-robust, the universe edge indices of the distinguished
// witness edges: (e1, e2, e3) for type II, (-1, -1, cf) for type I.
func (d *SubsetDetector) detect(method Method, members []uint64, s *DetectScratch) (robust bool, e1, e2, e3 int) {
	mem := bitset(members)
	// Reflexive-transitive closures of the induced subgraph. Rows of
	// non-member nodes stay zero, so closure bits double as membership
	// checks for the edge scans below.
	clear(s.backing)
	for i := 0; i < d.n; i++ {
		if mem.has(i) {
			s.reach[i].set(i)
			s.coreach[i].set(i)
		}
	}
	for ei := range d.from {
		fi, ti := int(d.from[ei]), int(d.to[ei])
		if mem.has(fi) && mem.has(ti) {
			s.reach[fi].set(ti)
			s.coreach[ti].set(fi)
		}
	}
	fixpoint(s.reach)
	fixpoint(s.coreach)

	if method == TypeI {
		// A counterflow edge closing back (Graph.HasTypeICycle).
		for _, ei := range d.cf {
			fi, ti := int(d.from[ei]), int(d.to[ei])
			if mem.has(fi) && mem.has(ti) && s.reach[ti].has(fi) {
				return false, -1, -1, int(ei)
			}
		}
		return true, -1, -1, -1
	}

	// Pair-centric type-II search over the induced subgraph. This mirrors
	// Graph.findE1/typeIIPairAt (detect.go) on the detector's parallel
	// arrays and member-filtered closures instead of a materialized graph;
	// the cache encoding is shared (0 unknown, 1 no witness, ei+2 the
	// witness edge index for the pair k = s*n + t) — changes to the scan
	// or the encoding must land in both.
	clear(s.cache)
	findE1 := func(si, ti int) int {
		k := si*d.n + ti
		if v := s.cache[k]; v != 0 {
			return int(v) - 2
		}
		for ei := range d.edges {
			if d.edges[ei].Class != NonCounterflow {
				continue
			}
			// Membership of p1/p2 is implied by the closure bits.
			p1, p2 := int(d.from[ei]), int(d.to[ei])
			if s.coreach[si].has(p2) && s.reach[ti].has(p1) {
				s.cache[k] = int32(ei + 2)
				return ei
			}
		}
		s.cache[k] = 1
		return -1
	}
	for _, e3i := range d.cf {
		m, t := int(d.from[e3i]), int(d.to[e3i])
		if !mem.has(m) || !mem.has(t) {
			continue
		}
		e3edge := d.edges[e3i]
		for _, e2i := range d.in[m] {
			if !mem.has(int(d.from[e2i])) {
				continue
			}
			e2edge := d.edges[e2i]
			if !pairCondition(e2edge, e3edge) {
				continue
			}
			if e1i := findE1(int(d.from[e2i]), t); e1i >= 0 {
				return false, e1i, int(e2i), int(e3i)
			}
		}
	}
	return true, -1, -1, -1
}

// fixpoint iterates bitset unions to the transitive closure: row i absorbs
// row j for every bit j set in row i, until nothing changes. It stays
// sequential: the per-subset matrices of SubsetDetector.Robust are tiny and
// the subset enumeration already saturates the worker pool one level up —
// large universe closures go through squaringFixpoint instead.
func fixpoint(rows []bitset) {
	for changed := true; changed; {
		changed = false
		for i, cl := range rows {
			for wi, w := range cl {
				for w != 0 {
					j := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					if j != i && cl.orInto(rows[j]) {
						changed = true
					}
				}
			}
		}
	}
}
