package summary

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btp"
	"repro/internal/obs"
)

// This file is the intra-check parallelism layer: it shards the two
// super-linear stages of a single summary-graph construction — Algorithm 1's
// pairwise edge derivation (BlockSet.EnsureCtx) and the reflexive-transitive
// closure of the node relation (squaringFixpoint) — across a bounded worker
// pool. The worker count is the same Parallelism knob that fans subset
// enumeration out in internal/analysis: one setting governs both inter- and
// intra-check concurrency. All parallel paths produce results bit-identical
// to their sequential counterparts (the closure is unique, and edge blocks
// are deterministic per pair), which the package tests assert directly.

// resolveWorkers maps the shared Parallelism convention to a concrete worker
// count: 0 means GOMAXPROCS, anything else is taken as given.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// workerPanic ferries a panic from a pool worker back to the goroutine
// that spawned the pool. A panic on a spawned goroutine is unrecoverable
// upstream — it kills the process — so each worker defers capture and the
// spawner calls rethrow after Wait, making a parallel stage fail exactly
// like its sequential counterpart would: as a panic on the caller, where
// the serving layer's recovery can turn it into a structured error.
type workerPanic struct {
	mu    sync.Mutex
	value any
	stack []byte
}

// capture is deferred by every pool worker; the first panic wins.
func (wp *workerPanic) capture() {
	if p := recover(); p != nil {
		wp.mu.Lock()
		if wp.value == nil {
			wp.value = p
			wp.stack = debug.Stack()
		}
		wp.mu.Unlock()
	}
}

// rethrow re-raises the captured panic on the calling goroutine, keeping
// the worker's stack in the message (the original frames are gone with
// the worker).
func (wp *workerPanic) rethrow() {
	if wp.value != nil {
		panic(fmt.Sprintf("summary worker: %v\nworker stack:\n%s", wp.value, wp.stack))
	}
}

// ensureChunk is the number of missing pairs a worker claims per atomic
// fetch in fillMissing: large enough to amortize the counter contention,
// small enough to balance skewed per-pair costs (LTPs differ in statement
// count).
const ensureChunk = 32

// scanPairs reads every ordered pair's cached block in one pass — RLocked
// per row to bound writer stalls — returning the (pi-major) block table
// with nil-able gaps and the indices of the pairs that still need
// computing. Cached pairs are counted as hits in one batch; the cost of a
// fully warm scan is m map reads per lock instead of a lock per pair.
func (bs *BlockSet) scanPairs(ltps []*btp.LTP) (blocks [][]Edge, missing []int32) {
	m := len(ltps)
	blocks = make([][]Edge, m*m)
	for i, pi := range ltps {
		bs.mu.RLock()
		for j, pj := range ltps {
			k := i*m + j
			if blk, ok := bs.blocks[ltpPair{pi, pj}]; ok {
				blocks[k] = blk
			} else {
				missing = append(missing, int32(k))
			}
		}
		bs.mu.RUnlock()
	}
	if hits := m*m - len(missing); hits > 0 {
		bs.hits.Add(uint64(hits))
	}
	return blocks, missing
}

// fillMissing computes the missing pairs of a scanPairs result, sharding
// them across a worker pool (0 means GOMAXPROCS, 1 forces the sequential
// scan) and writing each block into its slot — disjoint indices, so no
// synchronization beyond the work queue. Each computation goes through
// PairEdges, which records the miss and caches the block (unless retired).
// The context is polled between chunks; on cancellation the context's error
// is returned and pairs already computed stay cached and valid.
func (bs *BlockSet) fillMissing(ctx context.Context, ltps []*btp.LTP, blocks [][]Edge, missing []int32, workers int) error {
	if len(missing) == 0 {
		return ctx.Err()
	}
	m := len(ltps)
	workers = resolveWorkers(workers)
	if max := (len(missing) + ensureChunk - 1) / ensureChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		for c, k := range missing {
			if c%ensureChunk == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			blocks[k] = bs.PairEdges(ltps[k/int32(m)], ltps[k%int32(m)])
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var wp workerPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wp.capture()
			for ctx.Err() == nil {
				start := int(next.Add(ensureChunk)) - ensureChunk
				if start >= len(missing) {
					return
				}
				for _, k := range missing[start:min(start+ensureChunk, len(missing))] {
					blocks[k] = bs.PairEdges(ltps[k/int32(m)], ltps[k%int32(m)])
				}
			}
		}()
	}
	wg.Wait()
	wp.rethrow()
	return ctx.Err()
}

// fillMissingTraced is fillMissing behind the context's tracer: a non-nil
// tracer gets one pairs span covering Algorithm 1's pair derivation — the
// sub-span of compose that a warm block cache skips entirely (no missing
// pairs, no span). The tracer rides the context rather than a parameter so
// summary's exported signatures stay unchanged; a nil tracer takes the
// direct call with no time.Now.
func (bs *BlockSet) fillMissingTraced(ctx context.Context, ltps []*btp.LTP, blocks [][]Edge, missing []int32, workers int) error {
	if tr := obs.TracerFrom(ctx); tr != nil && len(missing) > 0 {
		start := time.Now()
		err := bs.fillMissing(ctx, ltps, blocks, missing, workers)
		tr.Span(obs.PhasePairs, time.Since(start))
		return err
	}
	return bs.fillMissing(ctx, ltps, blocks, missing, workers)
}

// EnsureCtx precomputes the edge blocks of every ordered pair over the given
// LTPs, sharding the pairs still missing from the cache across a pool of
// workers (0 means GOMAXPROCS, 1 forces the sequential scan), so that
// subsequent Compose calls over subsets of them are pure cache reads. Pair
// derivation is embarrassingly parallel: Algorithm 1's side conditions
// consult only the pair's two LTPs, so workers share nothing but the cache
// itself. A warm Ensure is a single read-locked scan — no workers spawned.
func (bs *BlockSet) EnsureCtx(ctx context.Context, ltps []*btp.LTP, workers int) error {
	blocks, missing := bs.scanPairs(ltps)
	return bs.fillMissingTraced(ctx, ltps, blocks, missing, workers)
}

// ComposeCtx assembles the summary graph SuG(P) of the given LTPs from the
// block set, computing missing pairwise blocks on `workers` workers (0 means
// GOMAXPROCS) and building the node-closure bitsets with the parallel
// fixpoint when the graph is large enough to profit. The resulting graph —
// edge order included — is identical to Compose's and Build's; only the
// wall-clock differs. A fully warm compose is one read-locked scan plus the
// assembly — no workers spawned, one cache hit counted per pair. The
// context aborts between stages and inside the pair computation.
func ComposeCtx(ctx context.Context, bs *BlockSet, ltps []*btp.LTP, workers int) (*Graph, error) {
	blocks, missing := bs.scanPairs(ltps)
	if err := bs.fillMissingTraced(ctx, ltps, blocks, missing, workers); err != nil {
		return nil, err
	}
	g := &Graph{
		Setting: bs.b.setting,
		Nodes:   ltps,
		schema:  bs.b.schema,
		nodeIdx: make(map[*btp.LTP]int, len(ltps)),
	}
	for i, l := range ltps {
		g.nodeIdx[l] = i
	}
	// Copy the gathered blocks into one exactly-sized edge slice, recording
	// endpoint indices as we go — every edge of block (fi, ti) runs from
	// node fi to node ti.
	m := len(ltps)
	total := 0
	for _, blk := range blocks {
		total += len(blk)
	}
	g.Edges = make([]Edge, 0, total)
	g.edgeFrom = make([]int32, 0, total)
	g.edgeTo = make([]int32, 0, total)
	for bi, blk := range blocks {
		fi, ti := int32(bi/m), int32(bi%m)
		for range blk {
			g.edgeFrom = append(g.edgeFrom, fi)
			g.edgeTo = append(g.edgeTo, ti)
		}
		g.Edges = append(g.Edges, blk...)
	}
	g.indexWith(workers)
	return g, nil
}

// NewSubsetDetectorCtx builds a detector over the LTP universe like
// NewSubsetDetector, but computes missing pairwise blocks and the universe
// closure on `workers` workers under the context.
func NewSubsetDetectorCtx(ctx context.Context, bs *BlockSet, ltps []*btp.LTP, workers int) (*SubsetDetector, error) {
	g, err := ComposeCtx(ctx, bs, ltps, workers)
	if err != nil {
		return nil, err
	}
	return newSubsetDetector(g, len(ltps)), nil
}

// parallelClosureMinRows is the node count below which the parallel closure
// falls back to the sequential fixpoint: under ~64 rows the whole matrix is
// a few cache lines and goroutine handoff costs more than it saves.
const parallelClosureMinRows = 64

// squaringFixpoint computes the same transitive closure as fixpoint, but
// round-synchronized across workers: each round derives next[i] =
// cur[i] ∪ ⋃{cur[j] : j ∈ cur[i]} for a disjoint shard of rows per worker,
// reading only the previous round's matrix and writing only its own rows —
// no locks, no races. Because a round unions whole rows of the previous
// round, the reachability relation at least squares every round, so the loop
// terminates in O(log diameter) rounds. The result lands back in rows and is
// bit-identical to the sequential fixpoint (the closure is unique).
func squaringFixpoint(rows []bitset, workers int) {
	n := len(rows)
	if n == 0 {
		return
	}
	words := len(rows[0])
	if workers > n {
		workers = n
	}
	backing := make([]uint64, n*words)
	next := make([]bitset, n)
	for i := range next {
		next[i] = bitset(backing[i*words : (i+1)*words])
	}
	cur := rows
	chunk := (n + workers - 1) / workers
	var wp workerPanic
	for {
		var changed atomic.Bool
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer wp.capture()
				shardChanged := false
				for i := lo; i < hi; i++ {
					src, dst := cur[i], next[i]
					copy(dst, src)
					for wi, w := range src {
						for w != 0 {
							j := wi*64 + bits.TrailingZeros64(w)
							w &= w - 1
							if j != i {
								dst.orInto(cur[j])
							}
						}
					}
					if !shardChanged {
						for k := range dst {
							if dst[k] != src[k] {
								shardChanged = true
								break
							}
						}
					}
				}
				if shardChanged {
					changed.Store(true)
				}
			}(lo, hi)
		}
		wg.Wait()
		wp.rethrow()
		cur, next = next, cur
		if !changed.Load() {
			break
		}
	}
	// The final matrix may live in the scratch buffer; move it home.
	if words > 0 && &cur[0][0] != &rows[0][0] {
		for i := range rows {
			copy(rows[i], cur[i])
		}
	}
}

// parallelDetectMinNodes is the node count below which type-II detection
// stays sequential: small graphs finish in microseconds and goroutine
// handoff would dominate. Chosen to match the closure threshold, so one
// "large graph" regime governs both parallel stages.
const parallelDetectMinNodes = 64

// typeIIDetectChunk is the number of counterflow edges a detection worker
// claims per atomic fetch: small, because per-e3 cost is skewed (an early
// witnessing e3 finishes its chunk instantly while dead ends scan all of
// g.in[m] × findE1).
const typeIIDetectChunk = 4

// typeIIParallel is Graph.typeII with the counterflow-edge outer loop
// sharded across a worker pool. Workers claim chunks of the counterflow
// index list from an atomic counter, each scanning with a private findE1
// cache, and publish the smallest witnessing position via CAS-min; edges
// past the current best are skipped (they cannot improve the minimum), so
// the pool converges quickly once any witness is found. The winning e3 is
// then re-resolved sequentially, which makes the selected witness exactly
// the one the sequential scan returns: the first counterflow edge in edge
// order with a witnessing adjacent pair, its first such e2 in in-list
// order, and that pair's first e1 in edge order.
func (g *Graph) typeIIParallel(workers int) (bool, *Witness) {
	n := len(g.Nodes)
	if n == 0 {
		return false, nil
	}
	// Collect counterflow edge indices once, in edge order — positions in
	// this list are the determinism rank.
	var cf []int32
	for ei := range g.Edges {
		if g.Edges[ei].Class == Counterflow {
			cf = append(cf, int32(ei))
		}
	}
	if len(cf) == 0 {
		return false, nil
	}
	if max := (len(cf) + typeIIDetectChunk - 1) / typeIIDetectChunk; workers > max {
		workers = max
	}
	best := atomic.Int64{}
	best.Store(int64(len(cf)))
	var next atomic.Int64
	var wg sync.WaitGroup
	var wp workerPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wp.capture()
			cache := make([]int32, n*n)
			for {
				start := int(next.Add(typeIIDetectChunk)) - typeIIDetectChunk
				if start >= len(cf) {
					return
				}
				for pos := start; pos < min(start+typeIIDetectChunk, len(cf)); pos++ {
					if int64(pos) > best.Load() {
						continue
					}
					if e2i, _ := g.typeIIPairAt(cache, int(cf[pos])); e2i >= 0 {
						for {
							cur := best.Load()
							if int64(pos) >= cur || best.CompareAndSwap(cur, int64(pos)) {
								break
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	wp.rethrow()
	pos := int(best.Load())
	if pos >= len(cf) {
		return false, nil
	}
	// Deterministic witness assembly from the winning e3 alone.
	e3i := int(cf[pos])
	e2i, e1i := g.typeIIPairAt(make([]int32, n*n), e3i)
	return true, g.assembleWitness(g.Edges[e1i], g.Edges[e2i], g.Edges[e3i])
}

// closuresParallel is closures with a worker budget: below
// parallelClosureMinRows nodes (or with a single worker) it runs the
// sequential fixpoint, otherwise the round-synchronized parallel one.
func closuresParallel(from, to []int32, n, workers int) []bitset {
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	out := make([]bitset, n)
	for i := 0; i < n; i++ {
		out[i] = bitset(backing[i*words : (i+1)*words])
		out[i].set(i)
	}
	for ei := range from {
		out[from[ei]].set(int(to[ei]))
	}
	if workers > 1 && n >= parallelClosureMinRows {
		squaringFixpoint(out, workers)
	} else {
		fixpoint(out)
	}
	return out
}
