package summary

import (
	"fmt"
	"strings"

	"repro/internal/btp"
)

// Method selects which cycle condition the robustness test uses.
type Method int

// The two detection methods compared in Section 7.
const (
	// TypeII is the paper's condition (Theorem 6.4 / Algorithm 2): a
	// dangerous cycle must contain a non-counterflow edge and an
	// adjacent-counterflow or ordered-counterflow pair.
	TypeII Method = iota
	// TypeI is the baseline of Alomari and Fekete [3]: a dangerous cycle
	// is any cycle containing at least one counterflow edge.
	TypeI
)

// String renders the method name.
func (m Method) String() string {
	if m == TypeI {
		return "type-I"
	}
	return "type-II"
}

// Witness describes one dangerous cycle found in a summary graph, as a
// cyclic edge sequence. For TypeII witnesses the three distinguished edges
// of Algorithm 2 come first in Core; Path contains connecting edges.
type Witness struct {
	Method Method
	// Core holds the distinguished edges: for TypeII the non-counterflow
	// edge e1 and the adjacent pair (e2, e3); for TypeI the counterflow
	// edge.
	Core []Edge
	// Cycle is a full edge sequence forming the dangerous cycle, in
	// traversal order (each edge's To equals the next edge's From, and the
	// last edge's To equals the first edge's From).
	Cycle []Edge
}

// String renders the witness cycle.
func (w *Witness) String() string {
	if w == nil {
		return "<no witness>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s cycle:\n", w.Method)
	for _, e := range w.Cycle {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// HasTypeICycle reports whether the graph contains a cycle with at least
// one counterflow edge (the condition of [3]); if so it returns a witness.
//
// Such a cycle exists iff some counterflow edge (P, q, counterflow, q', Q)
// closes back: P is reachable from Q (including P == Q).
func (g *Graph) HasTypeICycle() (bool, *Witness) {
	for _, e := range g.Edges {
		if e.Class != Counterflow {
			continue
		}
		if g.Reachable(e.To, e.From) {
			cycle := []Edge{e}
			back := g.shortestPath(e.To, e.From)
			cycle = append(cycle, back...)
			return true, &Witness{Method: TypeI, Core: []Edge{e}, Cycle: cycle}
		}
	}
	return false, nil
}

// HasTypeIICycle implements the cycle search of Algorithm 2: it reports
// whether SuG(P) contains a cycle with at least one non-counterflow edge
// and either two adjacent counterflow edges or an ordered-counterflow pair
// (Theorem 6.4). Cycles may revisit nodes and edges.
//
// The search is pair-centric rather than the literal triple loop of
// Algorithm 2: for every adjacent pair (e2 into node M, e3 counterflow out
// of M) satisfying the pair condition, it checks whether some
// non-counterflow edge e1 = (P1 -> P2) exists with e2's source reachable
// from P2 and P1 reachable from e3's target. This is equivalent to
// Algorithm 2 (see detect_test.go, which cross-checks against the literal
// algorithm) but avoids the cubic edge enumeration.
func (g *Graph) HasTypeIICycle() (bool, *Witness) {
	return g.typeII(false)
}

// HasTypeIICycleLiteral is the literal triple-loop transcription of
// Algorithm 2 from the paper. Exposed for testing and for the ablation
// benchmarks; verdicts always agree with HasTypeIICycle.
func (g *Graph) HasTypeIICycleLiteral() (bool, *Witness) {
	return g.typeII(true)
}

// pairCondition evaluates the condition of Algorithm 2 on the adjacent pair
// (e2, e3) where e3 is counterflow and e2 enters e3's source node:
// e2 is counterflow, or e3's source statement precedes e2's target
// statement in the shared program, or e2's source statement is of a type
// whose instantiations can end in an R- or PR-operation.
func pairCondition(e2, e3 Edge) bool {
	if e2.Class == Counterflow {
		return true
	}
	if e3.FromStmt.Before(e2.ToStmt) {
		return true
	}
	return e2.FromStmt.Stmt.EndsWithReadOrPredRead()
}

// findE1 answers the existence query of the pair-centric search: for a pair
// (S = source(e2), T = target(e3)), is there a non-counterflow edge
// e1 = (P1 -> P2) with coreach[S] ∋ P2 and reach[T] ∋ P1? Results are
// memoized per (S, T) node pair in cache (0 = unknown, 1 = no witness,
// ei+2 = witness edge index); callers own the cache, so parallel workers
// can each scan with a private one. SubsetDetector.detect (compose.go)
// mirrors this scan and encoding over its member-filtered closures —
// changes here must land there too.
func (g *Graph) findE1(cache []int32, s, t int) int {
	n := len(g.Nodes)
	k := s*n + t
	if v := cache[k]; v != 0 {
		return int(v) - 2
	}
	res := -1
	for ei, e := range g.Edges {
		if e.Class != NonCounterflow {
			continue
		}
		p1 := int(g.edgeFrom[ei])
		p2 := int(g.edgeTo[ei])
		if g.coreach[s].has(p2) && g.reach[t].has(p1) {
			res = ei
			break
		}
	}
	cache[k] = int32(res + 2)
	return res
}

// typeIIPairAt scans the adjacent pairs of counterflow edge e3i (in in-list
// order) and returns the first witnessing e2 edge index plus its e1, or
// (-1, -1). This is the per-e3 unit of work the parallel search shards.
func (g *Graph) typeIIPairAt(cache []int32, e3i int) (e2i, e1i int) {
	e3 := g.Edges[e3i]
	m := g.edgeFrom[e3i]
	t := int(g.edgeTo[e3i])
	for _, e2i := range g.in[m] {
		e2 := g.Edges[e2i]
		if !pairCondition(e2, e3) {
			continue
		}
		if e1i := g.findE1(cache, int(g.edgeFrom[e2i]), t); e1i >= 0 {
			return e2i, e1i
		}
	}
	return -1, -1
}

func (g *Graph) typeII(literal bool) (bool, *Witness) {
	if literal {
		return g.typeIILiteral()
	}
	// Pair-centric search. For each counterflow edge e3 out of node M and
	// each edge e2 into M satisfying the pair condition, we need a
	// non-counterflow edge e1 = (P1 -> P2) with
	//   reach(P2, source(e2)) and reach(target(e3), P1).
	n := len(g.Nodes)
	if n == 0 {
		return false, nil
	}
	cache := make([]int32, n*n)
	for e3i, e3 := range g.Edges {
		if e3.Class != Counterflow {
			continue
		}
		if e2i, e1i := g.typeIIPairAt(cache, e3i); e2i >= 0 {
			return true, g.assembleWitness(g.Edges[e1i], g.Edges[e2i], e3)
		}
	}
	return false, nil
}

// typeIILiteral transcribes Algorithm 2 verbatim: three nested loops over
// edges with two reachability checks.
func (g *Graph) typeIILiteral() (bool, *Witness) {
	for _, e1 := range g.Edges {
		if e1.Class != NonCounterflow {
			continue
		}
		for _, e2 := range g.Edges {
			if !g.Reachable(e1.To, e2.From) {
				continue
			}
			for _, e3i := range g.out[g.nodeIdx[e2.To]] {
				e3 := g.Edges[e3i]
				if e3.Class != Counterflow {
					continue
				}
				if !g.Reachable(e3.To, e1.From) {
					continue
				}
				if pairCondition(e2, e3) {
					return true, g.assembleWitness(e1, e2, e3)
				}
			}
		}
	}
	return false, nil
}

// assembleWitness stitches the three distinguished edges into a full cyclic
// edge walk: e1, path(e1.To -> e2.From), e2, e3, path(e3.To -> e1.From).
func (g *Graph) assembleWitness(e1, e2, e3 Edge) *Witness {
	var cycle []Edge
	cycle = append(cycle, e1)
	cycle = append(cycle, g.shortestPath(e1.To, e2.From)...)
	cycle = append(cycle, e2, e3)
	cycle = append(cycle, g.shortestPath(e3.To, e1.From)...)
	return &Witness{Method: TypeII, Core: []Edge{e1, e2, e3}, Cycle: cycle}
}

// shortestPath returns some shortest edge path from one node to another
// (empty when from == to). It panics if no path exists; callers only ask
// for paths whose existence reachability has already established.
func (g *Graph) shortestPath(from, to *btp.LTP) []Edge {
	fi, ti := g.nodeIdx[from], g.nodeIdx[to]
	if fi == ti {
		return nil
	}
	prev := make(map[int]int, len(g.Nodes)) // node -> edge index used to reach it
	visited := make([]bool, len(g.Nodes))
	visited[fi] = true
	queue := []int{fi}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range g.out[u] {
			v := g.nodeIdx[g.Edges[ei].To]
			if visited[v] {
				continue
			}
			visited[v] = true
			prev[v] = ei
			if v == ti {
				// Reconstruct.
				var rev []Edge
				for cur := ti; cur != fi; {
					e := g.Edges[prev[cur]]
					rev = append(rev, e)
					cur = g.nodeIdx[e.From]
				}
				path := make([]Edge, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	panic(fmt.Sprintf("summary: no path from %s to %s despite reachability", from.Name, to.Name))
}

// Robust runs the robustness test of Algorithm 2 (or its type-I analogue)
// on the graph: true means the program set is certainly robust against
// MVRC; false means a dangerous cycle exists (the test is sound but
// incomplete, so false does not prove non-robustness). The witness is nil
// when robust.
func (g *Graph) Robust(m Method) (bool, *Witness) {
	return g.RobustWith(m, 1)
}

// RobustWith is Robust with a worker budget (the engine's one Parallelism
// convention: 0 means GOMAXPROCS, 1 forces sequential detection). For
// type-II detection on graphs of at least parallelDetectMinNodes nodes the
// counterflow-edge outer loop is sharded across the pool (typeIIParallel),
// with a bit-identical verdict and the same first witness the sequential
// scan selects; smaller graphs and type-I detection stay sequential — they
// are microseconds at any size the enumeration guard admits.
func (g *Graph) RobustWith(m Method, workers int) (bool, *Witness) {
	var found bool
	var w *Witness
	switch m {
	case TypeI:
		found, w = g.HasTypeICycle()
	default:
		if resolveWorkers(workers) > 1 && len(g.Nodes) >= parallelDetectMinNodes {
			found, w = g.typeIIParallel(resolveWorkers(workers))
		} else {
			found, w = g.HasTypeIICycle()
		}
	}
	return !found, w
}
