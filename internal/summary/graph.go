package summary

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// Granularity selects whether dependencies between operations require a
// common attribute (the paper's default) or merely a common tuple (the
// 'tpl dep' settings of Section 7.2).
type Granularity int

// The two granularities of Section 7.2.
const (
	// AttrGranularity: two operations conflict only if they access a
	// common attribute of a common tuple.
	AttrGranularity Granularity = iota
	// TupleGranularity: two operations conflict whenever they access a
	// common tuple; attribute sets are widened to the full attribute set
	// of the relation.
	TupleGranularity
)

// String renders the granularity as in the experiment tables.
func (g Granularity) String() string {
	if g == TupleGranularity {
		return "tpl dep"
	}
	return "attr dep"
}

// Setting is one of the four analysis settings of Section 7.2:
// {tpl, attr} granularity × foreign keys {off, on}.
type Setting struct {
	Granularity Granularity
	// UseForeignKeys enables the foreign-key suppression check of
	// cDepConds in Algorithm 1.
	UseForeignKeys bool
}

// The four settings of Figure 6 / Figure 7.
var (
	SettingTplDep    = Setting{TupleGranularity, false}
	SettingAttrDep   = Setting{AttrGranularity, false}
	SettingTplDepFK  = Setting{TupleGranularity, true}
	SettingAttrDepFK = Setting{AttrGranularity, true}
)

// AllSettings lists the four settings in the order of Figure 6.
var AllSettings = []Setting{SettingTplDep, SettingAttrDep, SettingTplDepFK, SettingAttrDepFK}

// String renders the setting name as used in the paper ("attr dep + FK").
func (s Setting) String() string {
	name := s.Granularity.String()
	if s.UseForeignKeys {
		name += " + FK"
	}
	return name
}

// EdgeClass distinguishes the two kinds of summary-graph edges.
type EdgeClass int

// Edge classes.
const (
	NonCounterflow EdgeClass = iota
	Counterflow
)

// String renders the class.
func (c EdgeClass) String() string {
	if c == Counterflow {
		return "counterflow"
	}
	return "non-counterflow"
}

// Edge is a summary-graph edge (P_i, q_i, c, q_j, P_j): instantiations of
// statement occurrence FromStmt in program From and occurrence ToStmt in
// program To can admit a dependency of class Class.
type Edge struct {
	From     *btp.LTP
	FromStmt *btp.StmtOcc
	Class    EdgeClass
	ToStmt   *btp.StmtOcc
	To       *btp.LTP
}

// String renders the edge as "(P, q@pos, class, q@pos, P)".
func (e Edge) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s, %s)",
		e.From.Name, e.FromStmt, e.Class, e.ToStmt, e.To.Name)
}

// Graph is the summary graph SuG(P) for a set of LTPs under a setting.
type Graph struct {
	// Setting is the analysis setting the graph was built under.
	Setting Setting
	// Nodes are the LTPs, in input order.
	Nodes []*btp.LTP
	// Edges are all edges in deterministic construction order.
	Edges []Edge

	schema  *relschema.Schema
	nodeIdx map[*btp.LTP]int
	// edgeFrom[ei] / edgeTo[ei] are the node indices of edge ei's
	// endpoints, recorded at construction so that indexing and cycle
	// detection avoid per-edge map lookups.
	edgeFrom, edgeTo []int32
	// out[i] lists indices into Edges of edges leaving node i.
	out [][]int
	// in[i] lists indices into Edges of edges entering node i.
	in [][]int
	// reach[i] is the forward reachability bitset of node i over all
	// edges, including i itself (reflexive-transitive closure).
	reach []bitset
	// coreach[i] is the backward closure: nodes from which i is reachable,
	// including i itself.
	coreach []bitset
}

// bitset is a simple fixed-size bitset over node indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// orInto ors src into b and reports whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// NodeIndex returns the index of the given LTP in Nodes, or -1.
func (g *Graph) NodeIndex(l *btp.LTP) int {
	if i, ok := g.nodeIdx[l]; ok {
		return i
	}
	return -1
}

// OutEdges returns the edges leaving node l.
func (g *Graph) OutEdges(l *btp.LTP) []Edge {
	i := g.NodeIndex(l)
	if i < 0 {
		return nil
	}
	out := make([]Edge, 0, len(g.out[i]))
	for _, ei := range g.out[i] {
		out = append(out, g.Edges[ei])
	}
	return out
}

// InEdges returns the edges entering node l.
func (g *Graph) InEdges(l *btp.LTP) []Edge {
	i := g.NodeIndex(l)
	if i < 0 {
		return nil
	}
	in := make([]Edge, 0, len(g.in[i]))
	for _, ei := range g.in[i] {
		in = append(in, g.Edges[ei])
	}
	return in
}

// Reachable reports whether to is reachable from from following summary
// edges; every node is reachable from itself (possibly via the empty path).
func (g *Graph) Reachable(from, to *btp.LTP) bool {
	fi, ti := g.NodeIndex(from), g.NodeIndex(to)
	if fi < 0 || ti < 0 {
		return false
	}
	return g.reach[fi].has(ti)
}

// CounterflowEdges returns the number of counterflow edges.
func (g *Graph) CounterflowEdges() int {
	n := 0
	for _, e := range g.Edges {
		if e.Class == Counterflow {
			n++
		}
	}
	return n
}

// Stats summarizes the graph for reporting (the quantities of Table 2).
type Stats struct {
	Nodes            int
	Edges            int
	CounterflowEdges int
}

// Stats returns the node/edge counts of the graph.
func (g *Graph) Stats() Stats {
	return Stats{Nodes: len(g.Nodes), Edges: len(g.Edges), CounterflowEdges: g.CounterflowEdges()}
}

// String renders a deterministic textual dump of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SuG [%s]: %d nodes, %d edges (%d counterflow)\n",
		g.Setting, len(g.Nodes), len(g.Edges), g.CounterflowEdges())
	lines := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		lines[i] = "  " + e.String()
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// effectiveSet widens an attribute-set function to the full relation
// attribute set under tuple granularity. Undefined (⊥) stays undefined:
// the corresponding operation kind does not occur in instantiations of the
// statement at all, regardless of granularity.
func effectiveSet(g Granularity, schema *relschema.Schema, rel string, o btp.OptAttrs) btp.OptAttrs {
	if !o.Defined || g == AttrGranularity {
		return o
	}
	return btp.AttrsOf(schema.Attrs(rel))
}

// builder carries construction state for one summary graph.
type builder struct {
	setting Setting
	schema  *relschema.Schema
}

// ncDepConds is the non-counterflow side condition of Algorithm 1: some
// pair of (read/write/predicate-read, write) attribute sets of q_i and q_j
// intersect.
func (b *builder) ncDepConds(qi, qj *btp.Stmt) bool {
	rs := func(q *btp.Stmt) btp.OptAttrs {
		return effectiveSet(b.setting.Granularity, b.schema, q.Rel, q.ReadSet)
	}
	ws := func(q *btp.Stmt) btp.OptAttrs {
		return effectiveSet(b.setting.Granularity, b.schema, q.Rel, q.WriteSet)
	}
	prs := func(q *btp.Stmt) btp.OptAttrs {
		return effectiveSet(b.setting.Granularity, b.schema, q.Rel, q.PReadSet)
	}
	return ws(qi).Intersects(ws(qj)) ||
		ws(qi).Intersects(rs(qj)) ||
		ws(qi).Intersects(prs(qj)) ||
		rs(qi).Intersects(ws(qj)) ||
		prs(qi).Intersects(ws(qj))
}

// cDepConds is the counterflow side condition of Algorithm 1, evaluated on
// statement occurrences so that the q_k <_P q_i order check works on
// unfolded programs. A counterflow dependency requires a (predicate)
// rw-antidependency; for plain rw-antidependencies, matching foreign-key
// annotations in both programs can rule the counterflow out (the two
// transactions would have performed conflicting writes on the common
// foreign-key target earlier, so MVRC's dirty-write rule orders them).
func (b *builder) cDepConds(pi *btp.LTP, qi *btp.StmtOcc, pj *btp.LTP, qj *btp.StmtOcc) bool {
	prsI := effectiveSet(b.setting.Granularity, b.schema, qi.Stmt.Rel, qi.Stmt.PReadSet)
	wsJ := effectiveSet(b.setting.Granularity, b.schema, qj.Stmt.Rel, qj.Stmt.WriteSet)
	if prsI.Intersects(wsJ) {
		return true
	}
	rsI := effectiveSet(b.setting.Granularity, b.schema, qi.Stmt.Rel, qi.Stmt.ReadSet)
	if rsI.Intersects(wsJ) {
		if b.setting.UseForeignKeys && b.fkSuppressed(pi, qi, pj, qj) {
			return false
		}
		return true
	}
	return false
}

// fkSuppressed implements the foreign-key loop of cDepConds: it reports
// whether there are annotations q_k = f(q_i) in P_i and q_l = f(q_j) in P_j
// over the same foreign key f, with type(q_k), type(q_l) in
// {key upd, key del, ins} and occurrences of q_k before q_i and q_l before
// q_j in the respective LTPs.
func (b *builder) fkSuppressed(pi *btp.LTP, qi *btp.StmtOcc, pj *btp.LTP, qj *btp.StmtOcc) bool {
	suppressorType := func(t btp.StmtType) bool {
		return t == btp.KeyUpd || t == btp.KeyDel || t == btp.Ins
	}
	for _, ci := range pi.FKs() {
		if ci.Src != qi.Stmt || !suppressorType(ci.Dst.Type) {
			continue
		}
		if !pi.HasOccurrenceBefore(ci.Dst, qi.Pos) {
			continue
		}
		for _, cj := range pj.FKs() {
			if cj.FK != ci.FK || cj.Src != qj.Stmt || !suppressorType(cj.Dst.Type) {
				continue
			}
			if pj.HasOccurrenceBefore(cj.Dst, qj.Pos) {
				return true
			}
		}
	}
	return false
}

// appendPairEdges appends to dst every edge of Algorithm 1 between the
// ordered pair (pi, pj): the inner qi × qj loops of constructSuG. Edges
// between two LTPs depend only on the pair itself (statement types,
// attribute sets and the LTPs' own foreign-key annotations), never on which
// other LTPs are present — the property BlockSet and Compose exploit.
func (b *builder) appendPairEdges(dst []Edge, pi, pj *btp.LTP) []Edge {
	for _, qi := range pi.Stmts {
		for _, qj := range pj.Stmts {
			if qi.Stmt.Rel != qj.Stmt.Rel {
				continue
			}
			nc := NcDepTable[qi.Stmt.Type][qj.Stmt.Type]
			if nc == Yes || (nc == Cond && b.ncDepConds(qi.Stmt, qj.Stmt)) {
				dst = append(dst, Edge{
					From: pi, FromStmt: qi, Class: NonCounterflow, ToStmt: qj, To: pj,
				})
			}
			c := CDepTable[qi.Stmt.Type][qj.Stmt.Type]
			if c == Yes || (c == Cond && b.cDepConds(pi, qi, pj, qj)) {
				dst = append(dst, Edge{
					From: pi, FromStmt: qi, Class: Counterflow, ToStmt: qj, To: pj,
				})
			}
		}
	}
	return dst
}

// Build constructs the summary graph SuG(P) for the given LTPs under the
// given setting (Algorithm 1, function constructSuG). The schema is needed
// for tuple-granularity widening and foreign-key metadata.
func Build(schema *relschema.Schema, ltps []*btp.LTP, setting Setting) *Graph {
	b := &builder{setting: setting, schema: schema}
	g := &Graph{
		Setting: setting,
		Nodes:   ltps,
		schema:  schema,
		nodeIdx: make(map[*btp.LTP]int, len(ltps)),
	}
	for i, l := range ltps {
		g.nodeIdx[l] = i
	}
	for fi, pi := range ltps {
		for ti, pj := range ltps {
			before := len(g.Edges)
			g.Edges = b.appendPairEdges(g.Edges, pi, pj)
			for range g.Edges[before:] {
				g.edgeFrom = append(g.edgeFrom, int32(fi))
				g.edgeTo = append(g.edgeTo, int32(ti))
			}
		}
	}
	g.index()
	return g
}

// index fills adjacency lists and reachability closures sequentially. It is
// called once per graph — including once per composed subset graph during
// subset enumeration — so it allocates flat backing arrays instead of
// growing per-node slices.
func (g *Graph) index() { g.indexWith(1) }

// indexWith is index with a worker budget for the closure computation
// (0 means GOMAXPROCS, 1 keeps everything sequential). Adjacency filling is
// linear in the edge count and stays sequential either way.
func (g *Graph) indexWith(workers int) {
	n := len(g.Nodes)
	m := len(g.Edges)
	// Degree-counted adjacency: one backing array per direction.
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for ei := range g.Edges {
		outDeg[g.edgeFrom[ei]]++
		inDeg[g.edgeTo[ei]]++
	}
	g.out = make([][]int, n)
	g.in = make([][]int, n)
	outBacking := make([]int, m)
	inBacking := make([]int, m)
	oo, io := 0, 0
	for i := 0; i < n; i++ {
		g.out[i] = outBacking[oo : oo : oo+outDeg[i]]
		oo += outDeg[i]
		g.in[i] = inBacking[io : io : io+inDeg[i]]
		io += inDeg[i]
	}
	for ei := range g.Edges {
		fi := g.edgeFrom[ei]
		ti := g.edgeTo[ei]
		g.out[fi] = append(g.out[fi], ei)
		g.in[ti] = append(g.in[ti], ei)
	}
	// Reflexive-transitive closure over node-level adjacency. Most graphs
	// here are small (≤ a few hundred nodes); large Auction(n) universes
	// profit from the parallel fixpoint when workers allow it.
	g.reach = closuresParallel(g.edgeFrom, g.edgeTo, n, resolveWorkers(workers))
	g.coreach = closuresParallel(g.edgeTo, g.edgeFrom, n, resolveWorkers(workers))
}

// closures computes, for each node, the reflexive-transitive closure of the
// edge relation given by parallel endpoint arrays (swap the arguments for
// the backward closure) by iterating bitset unions to a fixpoint. All
// bitsets are carved from one backing array. It is the single-worker case
// of closuresParallel, which shares the seeding so the two can never drift.
func closures(from, to []int32, n int) []bitset {
	return closuresParallel(from, to, n, 1)
}
