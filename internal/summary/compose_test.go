package summary

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// TestBlockSetCaches checks that Ensure fills every ordered pair and that
// PairEdges hands out the cached block afterwards.
func TestBlockSetCaches(t *testing.T) {
	b := benchmarks.Auction()
	ltps := btp.UnfoldAll2(b.Programs)
	bs := NewBlockSet(b.Schema, SettingAttrDepFK)
	bs.Ensure(ltps)
	if got, want := bs.Len(), len(ltps)*len(ltps); got != want {
		t.Fatalf("cached pairs = %d, want %d", got, want)
	}
	if bs.Setting() != SettingAttrDepFK {
		t.Fatalf("setting = %v", bs.Setting())
	}
	// Block contents must match the corresponding contiguous segment of a
	// freshly built graph.
	g := Build(b.Schema, ltps, SettingAttrDepFK)
	var recomposed []Edge
	for _, pi := range ltps {
		for _, pj := range ltps {
			recomposed = append(recomposed, bs.PairEdges(pi, pj)...)
		}
	}
	if len(recomposed) != len(g.Edges) {
		t.Fatalf("recomposed %d edges, Build %d", len(recomposed), len(g.Edges))
	}
	for i := range recomposed {
		if recomposed[i] != g.Edges[i] {
			t.Fatalf("edge %d: %s != %s", i, recomposed[i], g.Edges[i])
		}
	}
}

// TestSubsetDetectorMatchesBuild cross-checks the allocation-free induced-
// subgraph detector against Build+Robust on every LTP subset of the
// Auction and SmallBank universes, all settings, both methods.
func TestSubsetDetectorMatchesBuild(t *testing.T) {
	for _, bench := range []*benchmarks.Benchmark{benchmarks.Auction(), benchmarks.SmallBank()} {
		ltps := btp.UnfoldAll2(bench.Programs)
		if len(ltps) > 10 {
			t.Fatalf("%s universe too large for exhaustive subset check", bench.Name)
		}
		for _, setting := range AllSettings {
			bs := NewBlockSet(bench.Schema, setting)
			det := NewSubsetDetector(bs, ltps)
			if det.NumNodes() != len(ltps) {
				t.Fatalf("NumNodes = %d, want %d", det.NumNodes(), len(ltps))
			}
			scratch := det.NewScratch()
			members := make([]uint64, (len(ltps)+63)/64)
			for mask := 0; mask < 1<<len(ltps); mask++ {
				var subset []*btp.LTP
				for i := range ltps {
					if mask&(1<<i) != 0 {
						subset = append(subset, ltps[i])
					}
				}
				members[0] = uint64(mask)
				g := Build(bench.Schema, subset, setting)
				for _, method := range []Method{TypeI, TypeII} {
					want, _ := g.Robust(method)
					got := det.Robust(method, members, scratch)
					if got != want {
						t.Fatalf("%s under %s, %s, mask %b: detector=%t, build=%t",
							bench.Name, setting, method, mask, got, want)
					}
				}
			}
		}
	}
}

// TestBlockSetSizeBytes: the size estimate starts at the fixed overhead,
// grows with cached pairs, and shrinks when pairs are invalidated — the
// monotonicity the server's -max-bytes eviction policy relies on.
func TestBlockSetSizeBytes(t *testing.T) {
	b := benchmarks.SmallBank()
	ltps := btp.UnfoldAll2(b.Programs)
	bs := NewBlockSet(b.Schema, SettingAttrDepFK)
	cold := bs.SizeBytes()
	if cold <= 0 {
		t.Fatalf("cold SizeBytes = %d, want positive overhead", cold)
	}
	bs.Ensure(ltps)
	warm := bs.SizeBytes()
	if warm <= cold {
		t.Fatalf("warm SizeBytes = %d, not above cold %d despite %d cached pairs", warm, cold, bs.Len())
	}
	bs.Invalidate(ltps[:1])
	if shrunk := bs.SizeBytes(); shrunk >= warm {
		t.Errorf("SizeBytes after invalidation = %d, want below %d", shrunk, warm)
	}
}
