package summary

import (
	"sync"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

func mask1(bits ...int) []uint64 {
	m := make([]uint64, 1)
	for _, b := range bits {
		m[0] |= 1 << uint(b)
	}
	return m
}

func TestCoreSetAntichain(t *testing.T) {
	cs := NewCoreSet(1)
	if cs.Len() != 0 || cs.Snapshot().Contains(mask1(0, 1, 2)) {
		t.Fatal("fresh core set not empty")
	}
	if !cs.Add(mask1(0, 1)) {
		t.Fatal("first Add refused")
	}
	// A superset of an existing core is refused (already decided by it).
	if cs.Add(mask1(0, 1, 2)) {
		t.Error("superset of an existing core admitted")
	}
	if cs.Len() != 1 {
		t.Fatalf("len = %d, want 1", cs.Len())
	}
	// A subset supersedes: the dominated core is dropped.
	if !cs.Add(mask1(1)) {
		t.Fatal("strict subset refused")
	}
	if cs.Len() != 1 {
		t.Errorf("len after subset insert = %d, want 1 (superset dropped)", cs.Len())
	}
	snap := cs.Snapshot()
	if !snap.Contains(mask1(1, 5)) || !snap.Contains(mask1(1)) {
		t.Error("containment misses supersets of the surviving core")
	}
	if snap.Contains(mask1(0, 5)) {
		t.Error("containment hit without any core contained")
	}
	// An incomparable core coexists.
	if !cs.Add(mask1(3, 4)) || cs.Len() != 2 {
		t.Errorf("incomparable core not admitted: len = %d", cs.Len())
	}
	if cs.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if got := len(cs.Masks()); got != 2 {
		t.Errorf("Masks() = %d cores, want 2", got)
	}
}

func TestCoreSetPopCount(t *testing.T) {
	if got := PopCount([]uint64{0b1011, 1 << 63}); got != 4 {
		t.Errorf("PopCount = %d, want 4", got)
	}
}

// TestCoreSetConcurrentAdd hammers Add/Snapshot from many goroutines; under
// -race this is the lock-free publication test. Every inserted core must be
// visible afterwards (none lost to a CAS race), modulo antichain dominance —
// the masks here are pairwise incomparable, so all must survive.
func TestCoreSetConcurrentAdd(t *testing.T) {
	const words = 2
	cs := NewCoreSet(words)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				// Distinct singleton bits are pairwise incomparable.
				bit := g*16 + i
				m := make([]uint64, words)
				m[bit/64] |= 1 << (uint(bit) % 64)
				cs.Add(m)
				cs.Snapshot().Contains(m)
			}
		}()
	}
	wg.Wait()
	if cs.Len() != 128 {
		t.Errorf("concurrent adds lost cores: len = %d, want 128", cs.Len())
	}
}

// TestRobustWitnessMask: across every benchmark universe, setting, method
// and subset mask, RobustWitness must agree with Robust, and on non-robust
// subsets return a mask that (a) is contained in the subset, (b) is itself
// non-robust — the witness cycle lives inside it — and (c) touches at
// least two positions of a dangerous structure.
func TestRobustWitnessMask(t *testing.T) {
	for _, bench := range []*benchmarks.Benchmark{benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction()} {
		ltps := btp.UnfoldAll2(bench.Programs)
		if len(ltps) > 16 {
			ltps = ltps[:16] // keep the 2^n sweep cheap
		}
		for _, setting := range AllSettings {
			bs := NewBlockSet(bench.Schema, setting)
			det := NewSubsetDetector(bs, ltps)
			scratch := det.NewScratch()
			words := (det.NumNodes() + 63) / 64
			for _, method := range []Method{TypeII, TypeI} {
				for mask := 1; mask < 1<<len(ltps); mask++ {
					members := make([]uint64, words)
					for i := 0; i < len(ltps); i++ {
						if mask&(1<<i) != 0 {
							members[i/64] |= 1 << (uint(i) % 64)
						}
					}
					wantRobust := det.Robust(method, members, scratch)
					gotRobust, wmask := det.RobustWitness(method, members, scratch)
					if gotRobust != wantRobust {
						t.Fatalf("%s/%s/%s mask %b: RobustWitness=%t, Robust=%t",
							bench.Name, setting, method, mask, gotRobust, wantRobust)
					}
					if gotRobust {
						if wmask != nil {
							t.Fatalf("robust subset returned a witness mask")
						}
						continue
					}
					if PopCount(wmask) == 0 {
						t.Fatalf("%s/%s/%s mask %b: empty witness mask", bench.Name, setting, method, mask)
					}
					for w := range wmask {
						if wmask[w]&^members[w] != 0 {
							t.Fatalf("%s/%s/%s mask %b: witness mask leaves the subset", bench.Name, setting, method, mask)
						}
					}
					if det.Robust(method, wmask, scratch) {
						t.Fatalf("%s/%s/%s mask %b: witness mask %b not itself non-robust",
							bench.Name, setting, method, mask, wmask[0])
					}
				}
			}
		}
	}
}
