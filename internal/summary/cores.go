package summary

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// This file is the minimal-non-robust-core machinery behind the
// lattice-pruned subset enumeration (analysis.Session.RobustSubsetsCtx).
// Non-robustness is monotone over node-induced subgraphs: a dangerous cycle
// witnessed in a subset's induced graph survives verbatim in every superset,
// because adding nodes only adds edges and reachability. A *core* records
// the node mask of one minimal non-robust subset; any subset whose mask
// contains a core is non-robust without running the detector at all.
// Robustness is the anti-monotone dual — a subset of a cycle-free subgraph
// is cycle-free — so a *cover* (the mask of a subset known robust) decides
// every subset of it. CoreSet and CoverSet are the two directions of one
// shared antichain implementation (maskAntichain).

// coreEpoch is one immutable published generation: count masks of `words`
// words each, packed back to back. cert is the per-mask provenance bit
// (parallel to the mask order): a certified core is one whose
// non-robustness has been proven by a replayed non-serializable execution
// (internal/certify), not just by the static cycle condition. Cover
// epochs never set it.
type coreEpoch struct {
	packed []uint64
	count  int
	cert   []bool
}

// certAt reports the provenance bit of the i-th mask; epochs built before
// certification existed (or by covers) have a nil cert slice.
func (e *coreEpoch) certAt(i int) bool {
	return i < len(e.cert) && e.cert[i]
}

// maskSubset reports a ⊆ b over equal-width masks.
func maskSubset(a, b []uint64) bool {
	for i, w := range a {
		if w&^b[i] != 0 {
			return false
		}
	}
	return true
}

// maskAntichain is the shared machinery of CoreSet and CoverSet: a set of
// bitset masks published atomically as immutable epochs, kept as an
// antichain under a containment direction. Readers snapshot an epoch with
// one pointer load; writers retry a copy-on-write CAS, so a published mask
// is never lost and no reader observes a partially written one.
type maskAntichain struct {
	words int
	epoch atomic.Pointer[coreEpoch]
}

// Len returns the number of masks in the current epoch.
func (c *maskAntichain) Len() int { return c.epoch.Load().count }

// SizeBytes estimates the set's resident memory (the packed bitset array of
// the current epoch plus fixed overhead) for the server's per-workload
// memory accounting.
func (c *maskAntichain) SizeBytes() int64 {
	e := c.epoch.Load()
	return int64(unsafe.Sizeof(*c)) + int64(cap(e.packed))*8
}

// Masks copies out every mask of the current epoch, for merging the
// discoveries of one enumeration back into a longer-lived store.
func (c *maskAntichain) Masks() [][]uint64 {
	e := c.epoch.Load()
	w := c.words
	out := make([][]uint64, 0, e.count)
	for off := 0; off < len(e.packed); off += w {
		m := make([]uint64, w)
		copy(m, e.packed[off:off+w])
		out = append(out, m)
	}
	return out
}

// add inserts a mask, maintaining the antichain under the `dominates`
// direction: dominates(a, b) means a stored mask a already decides b. The
// insert is refused when an existing mask dominates the new one, and
// existing masks the new one dominates are dropped. Lock-free copy-on-
// write: racing adds retry until their epoch lands.
//
// For cores dominates = maskSubset (a core decides its supersets); for
// covers it is the flipped test (a cover decides its subsets).
//
// certified carries the certification provenance bit for the new mask.
// When the insert is refused because an *equal* mask is already stored, a
// certified add still upgrades that mask's bit (certification is a fact
// about the same core); refusal by a strictly dominating mask leaves the
// store untouched — the stored core is a different (smaller) program set
// and the certificate does not speak about it.
func (c *maskAntichain) add(mask []uint64, flip, certified bool) bool {
	w := c.words
	dominates := func(a, b []uint64) bool {
		if flip {
			return maskSubset(b, a)
		}
		return maskSubset(a, b)
	}
	for {
		old := c.epoch.Load()
		keep := make([]uint64, 0, len(old.packed)+w)
		keepCert := make([]bool, 0, old.count+1)
		covered := -1
		for off, i := 0, 0; off < len(old.packed); off, i = off+w, i+1 {
			existing := old.packed[off : off+w]
			if dominates(existing, mask) {
				// The new mask is already decided (equality included).
				covered = i
				break
			}
			if !dominates(mask, existing) {
				keep = append(keep, existing...)
				keepCert = append(keepCert, old.certAt(i))
			}
		}
		if covered >= 0 {
			if certified && !old.certAt(covered) {
				off := covered * w
				if maskSubset(mask, old.packed[off:off+w]) && maskSubset(old.packed[off:off+w], mask) {
					// Equal mask: upgrade its provenance bit in place (the
					// packed array is immutable and shared; only the cert
					// column is copied).
					cert := make([]bool, old.count)
					copy(cert, old.cert)
					cert[covered] = true
					next := &coreEpoch{packed: old.packed, count: old.count, cert: cert}
					if c.epoch.CompareAndSwap(old, next) {
						return false
					}
					continue
				}
			}
			return false
		}
		keep = append(keep, mask...)
		keepCert = append(keepCert, certified)
		next := &coreEpoch{packed: keep, count: len(keep) / w, cert: keepCert}
		if c.epoch.CompareAndSwap(old, next) {
			return true
		}
	}
}

// CoreSet is a shared, lock-free set of minimal non-robust cores over one
// node universe, so enumeration workers snapshot an epoch with one pointer
// load and pruning discovered on one worker benefits all others on their
// next mask. The antichain invariant (no core contains another) is also
// what keeps the containment scan O(#cores).
type CoreSet struct {
	maskAntichain
}

// NewCoreSet creates an empty core set over masks of the given word count.
func NewCoreSet(words int) *CoreSet {
	c := &CoreSet{maskAntichain{words: words}}
	c.epoch.Store(&coreEpoch{})
	return c
}

// Add inserts a core mask: refused when an existing core is a subset of it
// (the mask is already decided), and existing strict supersets are
// dropped.
func (c *CoreSet) Add(mask []uint64) bool { return c.add(mask, false, false) }

// AddCertified inserts a core mask carrying the certification provenance
// bit: the core's non-robustness has been witnessed by a concrete replayed
// non-serializable execution, not only by the static analysis. When an
// equal mask is already stored its bit is upgraded in place.
func (c *CoreSet) AddCertified(mask []uint64) bool { return c.add(mask, false, true) }

// CertifiedLen returns the number of stored cores carrying the certified
// provenance bit.
func (c *CoreSet) CertifiedLen() int { return c.Snapshot().CertifiedLen() }

// MasksCertified copies out every mask of the current epoch together with
// its certification bit, for merging discoveries (and their provenance)
// back into a longer-lived store.
func (c *CoreSet) MasksCertified() ([][]uint64, []bool) {
	e := c.epoch.Load()
	w := c.words
	masks := make([][]uint64, 0, e.count)
	certs := make([]bool, 0, e.count)
	for off, i := 0, 0; off < len(e.packed); off, i = off+w, i+1 {
		m := make([]uint64, w)
		copy(m, e.packed[off:off+w])
		masks = append(masks, m)
		certs = append(certs, e.certAt(i))
	}
	return masks, certs
}

// Snapshot returns the current epoch (one atomic pointer load).
func (c *CoreSet) Snapshot() CoreSnapshot {
	e := c.epoch.Load()
	return CoreSnapshot{packed: e.packed, cert: e.cert, words: c.words}
}

// CoreSnapshot is one immutable epoch of a CoreSet: reads against it are
// wait-free and never observe a partially published core.
type CoreSnapshot struct {
	packed []uint64
	cert   []bool
	words  int
}

// CertifiedLen returns the number of cores in the snapshot carrying the
// certified provenance bit.
func (s CoreSnapshot) CertifiedLen() int {
	n := 0
	for _, c := range s.cert {
		if c {
			n++
		}
	}
	return n
}

// Len returns the number of cores in the snapshot.
func (s CoreSnapshot) Len() int {
	if s.words == 0 {
		return 0
	}
	return len(s.packed) / s.words
}

// Contains reports whether some core is a subset of the mask — i.e. whether
// the subset with this node mask is already known non-robust. One linear
// scan over the packed array.
func (s CoreSnapshot) Contains(mask []uint64) bool {
	w := s.words
	for off := 0; off < len(s.packed); off += w {
		if maskSubset(s.packed[off:off+w], mask) {
			return true
		}
	}
	return false
}

// CoverSet is the anti-monotone dual of CoreSet: an antichain of maximal
// robust covers. Within one level-order traversal covers never fire
// (stored covers are smaller than the masks still to come); they are the
// warm-session complement of the cores — after one enumeration, a repeat
// decides robust subsets by cover containment and non-robust ones by core
// containment, zero detector runs.
type CoverSet struct {
	maskAntichain
}

// NewCoverSet creates an empty cover set over masks of the given word
// count.
func NewCoverSet(words int) *CoverSet {
	c := &CoverSet{maskAntichain{words: words}}
	c.epoch.Store(&coreEpoch{})
	return c
}

// Add inserts a cover mask: refused when an existing cover contains it,
// and existing strict subsets are dropped.
func (c *CoverSet) Add(mask []uint64) bool { return c.add(mask, true, false) }

// Snapshot returns the current epoch (one atomic pointer load).
func (c *CoverSet) Snapshot() CoverSnapshot {
	e := c.epoch.Load()
	return CoverSnapshot{packed: e.packed, words: c.words}
}

// CoverSnapshot is one immutable epoch of a CoverSet.
type CoverSnapshot struct {
	packed []uint64
	words  int
}

// Covers reports whether the mask is a subset of some cover — i.e. whether
// the subset with this node mask is already known robust.
func (s CoverSnapshot) Covers(mask []uint64) bool {
	w := s.words
	for off := 0; off < len(s.packed); off += w {
		if maskSubset(mask, s.packed[off:off+w]) {
			return true
		}
	}
	return false
}

// PopCount returns the number of set bits in a mask (the subset size a core
// describes).
func PopCount(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}
