package summary

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
)

// TestPossibleKindsAuction spot-checks edge explanations on the running
// example's summary graph.
func TestPossibleKindsAuction(t *testing.T) {
	b := benchmarks.Auction()
	g := Build(b.Schema, btp.UnfoldAll2(b.Programs), SettingAttrDepFK)

	find := func(from, fromStmt, toStmt, to string, class EdgeClass) *Edge {
		for i := range g.Edges {
			e := &g.Edges[i]
			if e.From.Name == from && e.To.Name == to && e.Class == class &&
				e.FromStmt.Stmt.Name == fromStmt && e.ToStmt.Stmt.Name == toStmt {
				return e
			}
		}
		return nil
	}

	// The single counterflow edge FindBids q2 -> PlaceBid1 q5 can be a
	// predicate rw-antidependency (PR3[Bids] -> W2[u1] in Figure 3) or a
	// plain rw-antidependency from the chunk's row read (R3[u1] -> W2[u1]
	// in Figure 3); FindBids carries no FK annotation on q2, so the plain
	// rw is not suppressed.
	e := find("FindBids", "q2", "q5", "PlaceBid1", Counterflow)
	if e == nil {
		t.Fatal("missing counterflow edge q2 -> q5")
	}
	kinds := g.PossibleKinds(*e)
	if len(kinds) != 2 || kinds[0] != DepPredRW || kinds[1] != DepRW {
		t.Errorf("counterflow q2->q5 kinds = %v, want [pred-rw rw]", kinds)
	}

	// The Buyer key-update self-pairs admit ww, wr and rw (read and write
	// halves of the two atomic updates interact in every combination).
	e = find("FindBids", "q1", "q3", "PlaceBid1", NonCounterflow)
	if e == nil {
		t.Fatal("missing edge q1 -> q3")
	}
	kinds = g.PossibleKinds(*e)
	want := map[DependencyKind]bool{DepWW: true, DepWR: true, DepRW: true}
	if len(kinds) != len(want) {
		t.Fatalf("q1->q3 kinds = %v", kinds)
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected kind %s for q1->q3", k)
		}
	}

	// PlaceBid1's update of Bids feeding FindBids' predicate selection:
	// wr through the read half and pred-wr through the predicate read.
	e = find("PlaceBid1", "q5", "q2", "FindBids", NonCounterflow)
	if e == nil {
		t.Fatal("missing edge q5 -> q2")
	}
	kinds = g.PossibleKinds(*e)
	want = map[DependencyKind]bool{DepWR: true, DepPredWR: true}
	if len(kinds) != len(want) {
		t.Fatalf("q5->q2 kinds = %v", kinds)
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected kind %s for q5->q2", k)
		}
	}
}

// TestPossibleKindsNeverEmpty: every edge Algorithm 1 constructs must be
// explainable by at least one dependency kind — otherwise the edge (or the
// explainer) is wrong. Checked across every benchmark and setting.
func TestPossibleKindsNeverEmpty(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(), benchmarks.AuctionN(2),
	} {
		ltps := btp.UnfoldAll2(b.Programs)
		for _, setting := range AllSettings {
			g := Build(b.Schema, ltps, setting)
			for _, e := range g.Edges {
				if len(g.PossibleKinds(e)) == 0 {
					t.Errorf("%s/%s: edge %s has no explaining dependency kind", b.Name, setting, e)
				}
			}
		}
	}
}

// TestCounterflowKindsAreAntidependencies: Lemma 4.1 at the explanation
// level — counterflow edges are explained only by rw / pred-rw.
func TestCounterflowKindsAreAntidependencies(t *testing.T) {
	b := benchmarks.TPCC()
	g := Build(b.Schema, btp.UnfoldAll2(b.Programs), SettingAttrDepFK)
	for _, e := range g.Edges {
		if e.Class != Counterflow {
			continue
		}
		for _, k := range g.PossibleKinds(e) {
			if k != DepRW && k != DepPredRW {
				t.Errorf("counterflow edge %s explained by %s", e, k)
			}
		}
	}
}
