package summary

import (
	"math/rand"
	"testing"

	"repro/internal/btp"
	"repro/internal/relschema"
)

func testSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"k", "a", "b"}, []string{"k"})
	s.MustAddRelation("T", []string{"k", "c"}, []string{"k"})
	s.MustAddForeignKey("f", "R", []string{"a"}, "T", []string{"k"})
	return s
}

// TestTableInvariants checks structural properties of Table 1 that follow
// from the dependency definitions.
func TestTableInvariants(t *testing.T) {
	// Lemma 4.1: only (predicate) rw-antidependencies can be counterflow,
	// so rows whose instantiations have no exposed read before their write
	// (ins, key upd, key del) are all-No in cDepTable.
	for _, row := range []btp.StmtType{btp.Ins, btp.KeyUpd, btp.KeyDel} {
		for col := btp.StmtType(0); col < btp.NumStmtTypes; col++ {
			if CDepTable[row][col] != No {
				t.Errorf("cDepTable[%s][%s] = %s, want false", row, col, CDepTable[row][col])
			}
		}
	}
	// Counterflow targets must be writes: columns ins..del only; the two
	// selection columns are all-No.
	for row := btp.StmtType(0); row < btp.NumStmtTypes; row++ {
		for _, col := range []btp.StmtType{btp.KeySel, btp.PredSel} {
			if CDepTable[row][col] != No {
				t.Errorf("cDepTable[%s][%s] = %s, want false", row, col, CDepTable[row][col])
			}
		}
	}
	// A counterflow edge between two types implies a non-counterflow edge
	// is at least conditionally possible (an rw-antidependency can also be
	// non-counterflow).
	for row := btp.StmtType(0); row < btp.NumStmtTypes; row++ {
		for col := btp.StmtType(0); col < btp.NumStmtTypes; col++ {
			if CDepTable[row][col] != No && NcDepTable[row][col] == No {
				t.Errorf("cDepTable[%s][%s] possible but ncDepTable impossible", row, col)
			}
		}
	}
	// Two selections never conflict.
	for _, a := range []btp.StmtType{btp.KeySel, btp.PredSel} {
		for _, b := range []btp.StmtType{btp.KeySel, btp.PredSel} {
			if NcDepTable[a][b] != No {
				t.Errorf("ncDepTable[%s][%s] = %s, want false", a, b, NcDepTable[a][b])
			}
		}
	}
}

// TestEffectiveSetWidening checks tuple-granularity widening: defined sets
// widen to the full attribute set; ⊥ stays ⊥.
func TestEffectiveSetWidening(t *testing.T) {
	s := testSchema()
	def := btp.Attrs("a")
	if got := effectiveSet(TupleGranularity, s, "R", def); !got.Set.Equal(s.Attrs("R")) {
		t.Errorf("widened set = %v", got)
	}
	if got := effectiveSet(AttrGranularity, s, "R", def); !got.Set.Equal(def.Set) {
		t.Errorf("attr granularity changed the set: %v", got)
	}
	if got := effectiveSet(TupleGranularity, s, "R", btp.Undefined()); got.Defined {
		t.Errorf("⊥ widened to %v", got)
	}
	empty := btp.Attrs()
	if got := effectiveSet(TupleGranularity, s, "R", empty); !got.Set.Equal(s.Attrs("R")) {
		t.Errorf("defined-empty set should widen, got %v", got)
	}
}

// TestFKSuppression exercises cDepConds' foreign-key loop directly: the
// counterflow edge q_sel -> q_upd disappears exactly when both programs
// update the referenced parent first.
func TestFKSuppression(t *testing.T) {
	s := testSchema()
	mkProg := func(name string, parentFirst bool) *btp.Program {
		parent := btp.NewKeyUpd("p", "T", []string{"c"}, []string{"c"})
		sel := btp.NewKeySel("r", "R", "b")
		upd := btp.NewKeyUpd("w", "R", nil, []string{"b"})
		var prog *btp.Program
		if parentFirst {
			prog = btp.LinearProgram(name, parent, sel, upd)
		} else {
			prog = btp.LinearProgram(name, sel, upd, parent)
		}
		prog.MustAnnotateFK(s, "f", "r", "p")
		prog.MustAnnotateFK(s, "f", "w", "p")
		return prog
	}

	for _, tc := range []struct {
		name        string
		parentFirst bool
		useFK       bool
		wantCF      bool
	}{
		{"suppressed", true, true, false},
		{"fk-disabled", true, false, true},
		{"parent-too-late", false, true, true},
	} {
		prog := mkProg("P", tc.parentFirst)
		ltps := btp.Unfold2(prog)
		setting := Setting{AttrGranularity, tc.useFK}
		g := Build(s, ltps, setting)
		foundCF := false
		for _, e := range g.Edges {
			if e.Class == Counterflow && e.FromStmt.Stmt.Name == "r" && e.ToStmt.Stmt.Name == "w" {
				foundCF = true
			}
		}
		if foundCF != tc.wantCF {
			t.Errorf("%s: counterflow r->w = %t, want %t", tc.name, foundCF, tc.wantCF)
		}
	}
}

// TestPredReadNotSuppressed: foreign keys never suppress counterflow edges
// arising from predicate reads (the first branch of cDepConds fires before
// the FK loop).
func TestPredReadNotSuppressed(t *testing.T) {
	s := testSchema()
	parent := btp.NewKeyUpd("p", "T", []string{"c"}, []string{"c"})
	psel := btp.NewPredSel("r", "R", []string{"b"}, []string{"b"})
	upd := btp.NewKeyUpd("w", "R", nil, []string{"b"})
	prog := btp.LinearProgram("P", parent, psel, upd)
	prog.MustAnnotateFK(s, "f", "w", "p")
	ltps := btp.Unfold2(prog)
	g := Build(s, ltps, SettingAttrDepFK)
	found := false
	for _, e := range g.Edges {
		if e.Class == Counterflow && e.FromStmt.Stmt.Name == "r" {
			found = true
		}
	}
	if !found {
		t.Error("predicate-read counterflow edge must survive FK suppression")
	}
}

// TestReachability exercises the closure on a small chain with a cycle.
func TestReachability(t *testing.T) {
	s := testSchema()
	// A -> B -> C via shared writes on R; D isolated (writes only T).
	mk := func(name string, stmts ...*btp.Stmt) *btp.LTP {
		return btp.NewLTP(name, nil, stmts...)
	}
	wa := btp.NewKeyUpd("w", "R", []string{"a"}, []string{"a"})
	a := mk("A", wa)
	b := mk("B", btp.NewKeyUpd("w", "R", []string{"a"}, []string{"a"}))
	d := mk("D", btp.NewKeyUpd("w", "T", []string{"c"}, []string{"c"}))
	g := Build(s, []*btp.LTP{a, b, d}, SettingAttrDepFK)
	if !g.Reachable(a, b) || !g.Reachable(b, a) {
		t.Error("A and B must reach each other via ww edges")
	}
	if !g.Reachable(a, a) {
		t.Error("reachability must be reflexive")
	}
	if g.Reachable(a, d) || g.Reachable(d, a) {
		t.Error("D is disconnected from A")
	}
	if g.NodeIndex(a) != 0 || g.NodeIndex(mk("X")) != -1 {
		t.Error("NodeIndex")
	}
	if len(g.OutEdges(a)) == 0 || len(g.InEdges(b)) == 0 {
		t.Error("adjacency lists empty")
	}
}

// randomLTPs builds a random set of linear programs over the test schema.
func randomLTPs(rng *rand.Rand, s *relschema.Schema) []*btp.LTP {
	attrs := [][]string{{"a"}, {"b"}, {"a", "b"}, {}}
	pick := func() []string { return attrs[rng.Intn(len(attrs))] }
	var ltps []*btp.LTP
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		var stmts []*btp.Stmt
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			name := string(rune('a'+i)) + string(rune('0'+j))
			switch rng.Intn(5) {
			case 0:
				stmts = append(stmts, btp.NewKeySel(name, "R", pick()...))
			case 1:
				w := pick()
				if len(w) == 0 {
					w = []string{"a"}
				}
				stmts = append(stmts, btp.NewKeyUpd(name, "R", pick(), w))
			case 2:
				stmts = append(stmts, btp.NewPredSel(name, "R", pick(), pick()))
			case 3:
				stmts = append(stmts, btp.NewInsAttrs(name, "R", "k", "a", "b"))
			case 4:
				stmts = append(stmts, btp.NewKeyDel(s, name, "R"))
			}
		}
		ltps = append(ltps, btp.NewLTP(string(rune('A'+i)), nil, stmts...))
	}
	return ltps
}

// TestLiteralAlgorithmEquivalence cross-checks the optimized pair-centric
// type-II search against the literal transcription of Algorithm 2 on many
// random program sets.
func TestLiteralAlgorithmEquivalence(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		ltps := randomLTPs(rng, s)
		g := Build(s, ltps, SettingAttrDepFK)
		fast, _ := g.HasTypeIICycle()
		slow, _ := g.HasTypeIICycleLiteral()
		if fast != slow {
			t.Fatalf("iteration %d: optimized=%t literal=%t on graph:\n%s", i, fast, slow, g)
		}
	}
}

// TestTypeIImpliesTypeIIAbsence: absence of type-I cycles implies absence
// of type-II cycles (every type-II cycle is type-I), on random graphs.
func TestTypeIImpliesTypeIIAbsence(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		ltps := randomLTPs(rng, s)
		g := Build(s, ltps, SettingAttrDepFK)
		typeI, _ := g.HasTypeICycle()
		typeII, _ := g.HasTypeIICycle()
		if typeII && !typeI {
			t.Fatalf("iteration %d: type-II cycle without type-I cycle:\n%s", i, g)
		}
	}
}

// TestTupleGranularityIsCoarser: every edge found at attribute granularity
// also exists at tuple granularity (same statements, same class), so the
// attribute analysis can only certify more sets robust.
func TestTupleGranularityIsCoarser(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		ltps := randomLTPs(rng, s)
		attr := Build(s, ltps, SettingAttrDepFK)
		tpl := Build(s, ltps, SettingTplDepFK)
		type key struct {
			from, to string
			fs, ts   string
			c        EdgeClass
		}
		have := map[key]bool{}
		for _, e := range tpl.Edges {
			have[key{e.From.Name, e.To.Name, e.FromStmt.Stmt.Name, e.ToStmt.Stmt.Name, e.Class}] = true
		}
		for _, e := range attr.Edges {
			k := key{e.From.Name, e.To.Name, e.FromStmt.Stmt.Name, e.ToStmt.Stmt.Name, e.Class}
			if !have[k] {
				t.Fatalf("iteration %d: attribute-level edge %v missing at tuple level", i, e)
			}
		}
	}
}

// TestWitnessIsWellFormed: witnesses returned by the detectors form closed
// walks whose consecutive edges share endpoints.
func TestWitnessIsWellFormed(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for i := 0; i < 300 && checked < 50; i++ {
		ltps := randomLTPs(rng, s)
		g := Build(s, ltps, SettingAttrDepFK)
		for _, m := range []Method{TypeI, TypeII} {
			robust, w := g.Robust(m)
			if robust {
				continue
			}
			checked++
			if w == nil || len(w.Cycle) == 0 {
				t.Fatalf("non-robust verdict without witness (method %s)", m)
			}
			for j, e := range w.Cycle {
				next := w.Cycle[(j+1)%len(w.Cycle)]
				if e.To != next.From {
					t.Fatalf("witness not a closed walk at position %d:\n%s", j, w)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-robust random instances generated; weaken the generator")
	}
}

func TestSettingStrings(t *testing.T) {
	want := map[string]Setting{
		"tpl dep":       SettingTplDep,
		"attr dep":      SettingAttrDep,
		"tpl dep + FK":  SettingTplDepFK,
		"attr dep + FK": SettingAttrDepFK,
	}
	for s, setting := range want {
		if setting.String() != s {
			t.Errorf("%v.String() = %q, want %q", setting, setting.String(), s)
		}
	}
	if TypeI.String() != "type-I" || TypeII.String() != "type-II" {
		t.Error("method strings")
	}
	if NonCounterflow.String() != "non-counterflow" || Counterflow.String() != "counterflow" {
		t.Error("edge class strings")
	}
	if No.String() != "false" || Yes.String() != "true" || Cond.String() != "⊥" {
		t.Error("tri strings")
	}
}

func TestEmptyGraph(t *testing.T) {
	s := testSchema()
	g := Build(s, nil, SettingAttrDepFK)
	if robust, _ := g.Robust(TypeII); !robust {
		t.Error("empty graph must be robust")
	}
	if robust, _ := g.Robust(TypeI); !robust {
		t.Error("empty graph must be robust under type-I")
	}
	if g.String() == "" {
		t.Error("String should render header")
	}
}
