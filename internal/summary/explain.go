package summary

import (
	"sort"

	"repro/internal/btp"
)

// DependencyKind names the five dependency kinds of Section 3.4 at the
// summary level. (The schedule-level counterpart lives in internal/seg;
// the two packages are deliberately independent.)
type DependencyKind string

// Dependency kinds.
const (
	DepWW     DependencyKind = "ww"
	DepWR     DependencyKind = "wr"
	DepRW     DependencyKind = "rw"
	DepPredWR DependencyKind = "pred-wr"
	DepPredRW DependencyKind = "pred-rw"
)

// PossibleKinds explains a summary edge: the dependency kinds that
// instantiations of its two statements can realize, given the edge's class
// and the analysis setting the graph was built under. It refines the
// yes/no information of Algorithm 1 for diagnostics and graph rendering.
func (g *Graph) PossibleKinds(e Edge) []DependencyKind {
	qi, qj := e.FromStmt.Stmt, e.ToStmt.Stmt
	gran := g.Setting.Granularity
	ws := func(q *btp.Stmt) btp.OptAttrs { return effectiveSet(gran, g.schema, q.Rel, q.WriteSet) }
	rs := func(q *btp.Stmt) btp.OptAttrs { return effectiveSet(gran, g.schema, q.Rel, q.ReadSet) }
	prs := func(q *btp.Stmt) btp.OptAttrs { return effectiveSet(gran, g.schema, q.Rel, q.PReadSet) }

	// Which operation shapes do instantiations of each statement expose?
	writes := func(q *btp.Stmt) bool { return q.Type.HasWrite() }
	// insertsOrDeletes: write ops that need no attribute overlap for
	// predicate dependencies.
	insOrDel := func(q *btp.Stmt) bool {
		switch q.Type {
		case btp.Ins, btp.KeyDel, btp.PredDel:
			return true
		default:
			return false
		}
	}
	reads := func(q *btp.Stmt) bool {
		return q.Type == btp.KeySel || q.Type == btp.PredSel || q.Type == btp.KeyUpd || q.Type == btp.PredUpd
	}
	predReads := func(q *btp.Stmt) bool { return q.Type.IsPredBased() }
	// D-operations cannot be ww sources (the dead version is last) and
	// neither D nor I can be wr sources/ww in certain positions; encode
	// the schedule-level restrictions:
	wwSource := func(q *btp.Stmt) bool { // can install a non-final version
		switch q.Type {
		case btp.Ins, btp.KeyUpd, btp.PredUpd:
			return true
		default:
			return false
		}
	}
	wwTarget := func(q *btp.Stmt) bool { // can install a non-first version
		switch q.Type {
		case btp.KeyUpd, btp.PredUpd, btp.KeyDel, btp.PredDel:
			return true
		default:
			return false
		}
	}

	set := map[DependencyKind]bool{}
	if e.Class == NonCounterflow {
		if wwSource(qi) && wwTarget(qj) && ws(qi).Intersects(ws(qj)) {
			set[DepWW] = true
		}
		if wwSource(qi) && reads(qj) && ws(qi).Intersects(rs(qj)) {
			set[DepWR] = true
		}
		if reads(qi) && wwTarget(qj) && rs(qi).Intersects(ws(qj)) {
			set[DepRW] = true
		}
		if writes(qi) && predReads(qj) && (insOrDel(qi) || ws(qi).Intersects(prs(qj))) {
			set[DepPredWR] = true
		}
		if predReads(qi) && writes(qj) && (insOrDel(qj) || prs(qi).Intersects(ws(qj))) {
			set[DepPredRW] = true
		}
	} else {
		// Lemma 4.1: only (predicate) rw-antidependencies can be
		// counterflow. The read half of an atomic update cannot be a
		// counterflow source (its own write would be a dirty write), so
		// only pure selections qualify for plain rw — and matching
		// foreign-key annotations rule the plain rw out, exactly as in
		// cDepConds.
		if (qi.Type == btp.KeySel || qi.Type == btp.PredSel) && wwTarget(qj) && rs(qi).Intersects(ws(qj)) {
			b := &builder{setting: g.Setting, schema: g.schema}
			if !(g.Setting.UseForeignKeys && b.fkSuppressed(e.From, e.FromStmt, e.To, e.ToStmt)) {
				set[DepRW] = true
			}
		}
		if predReads(qi) && writes(qj) && (insOrDel(qj) || prs(qi).Intersects(ws(qj))) {
			set[DepPredRW] = true
		}
	}
	out := make([]DependencyKind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
