// Package summary implements the paper's primary contribution: the summary
// graph SuG(P) for a set of linear transaction programs (Algorithm 1 with
// the condition tables of Table 1), and the robustness test against MVRC
// based on the absence of type-II cycles (Algorithm 2 / Theorem 6.4). It
// also implements the weaker type-I condition of Alomari and Fekete [3] as
// the comparison baseline of Section 7.
//
// Beyond the paper's algorithms the package carries the performance layers
// the rest of the system is built on (see docs/ARCHITECTURE.md):
//
//   - Build (graph.go) is the literal Algorithm 1: one summary graph from
//     scratch. It remains the oracle every optimized path is tested against.
//   - BlockSet (compose.go) caches Algorithm 1's edge derivation per
//     ordered LTP pair and analysis setting — edges between two programs
//     never depend on which other programs are present, so any subset graph
//     is a concatenation of cached pair blocks (Compose).
//   - SubsetDetector (compose.go) answers per-subset robustness verdicts on
//     the composed universe graph filtered by a node bitmask,
//     allocation-free, for the exponential enumeration of Figures 6 and 7.
//   - parallel.go shards the two super-linear stages of a single large
//     construction across a worker pool: EnsureCtx fans the pairwise edge
//     derivation out in chunks, and squaringFixpoint computes the
//     node-closure bitsets as a round-synchronized parallel fixpoint. Both
//     are bit-identical to their sequential counterparts.
package summary

import "repro/internal/btp"

// Tri is a three-valued table entry: a dependency between two statement
// types is always possible (Yes), never possible (No), or possible subject
// to the attribute-intersection / foreign-key side conditions (Cond, the
// paper's ⊥).
type Tri int

// The three table values.
const (
	No Tri = iota
	Yes
	Cond
)

// String renders the entry as in Table 1.
func (t Tri) String() string {
	switch t {
	case No:
		return "false"
	case Yes:
		return "true"
	default:
		return "⊥"
	}
}

// Statement types in the row/column order of Table 1.
var tableOrder = [btp.NumStmtTypes]btp.StmtType{
	btp.Ins, btp.KeySel, btp.PredSel, btp.KeyUpd, btp.PredUpd, btp.KeyDel, btp.PredDel,
}

// NcDepTable is Table (1a): whether statements of type row (q_i) and column
// (q_j) over the same relation can admit a non-counterflow dependency from
// an operation of q_i to an operation of q_j. Cond entries defer to
// ncDepConds (Algorithm 1).
//
// Index with NcDepTable[q_i.Type][q_j.Type].
var NcDepTable = [btp.NumStmtTypes][btp.NumStmtTypes]Tri{
	//                 ins   key sel pred sel key upd pred upd key del pred del
	btp.Ins:     {No, Cond, Yes, Cond, Yes, Cond, Yes},
	btp.KeySel:  {No, No, No, Cond, Cond, Cond, Cond},
	btp.PredSel: {Yes, No, No, Cond, Cond, Yes, Yes},
	btp.KeyUpd:  {No, Cond, Cond, Cond, Cond, Cond, Cond},
	btp.PredUpd: {Yes, Cond, Cond, Cond, Cond, Yes, Yes},
	btp.KeyDel:  {No, No, Yes, No, Yes, No, Yes},
	btp.PredDel: {Yes, No, Yes, Cond, Yes, Yes, Yes},
}

// CDepTable is Table (1b): whether statements of type row (q_i) and column
// (q_j) over the same relation can admit a counterflow dependency. By
// Lemma 4.1 only (predicate) rw-antidependencies can be counterflow, so all
// rows whose instantiations end in a write chunk that covers the read
// (ins, key upd, key del) are No. Cond entries defer to cDepConds.
var CDepTable = [btp.NumStmtTypes][btp.NumStmtTypes]Tri{
	//                 ins   key sel pred sel key upd pred upd key del pred del
	btp.Ins:     {No, No, No, No, No, No, No},
	btp.KeySel:  {No, No, No, Cond, Cond, Cond, Cond},
	btp.PredSel: {Yes, No, No, Cond, Cond, Yes, Yes},
	btp.KeyUpd:  {No, No, No, No, No, No, No},
	btp.PredUpd: {Yes, No, No, Cond, Cond, Yes, Yes},
	btp.KeyDel:  {No, No, No, No, No, No, No},
	btp.PredDel: {Yes, No, No, Cond, Cond, Yes, Yes},
}
