package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// BuildInfo attributes a running binary to its build: module version, VCS
// revision (with a "-dirty" suffix for modified trees), and Go toolchain.
// Fields degrade to "unknown" outside module-aware builds (plain `go test`
// binaries, stripped builds).
type BuildInfo struct {
	Version   string
	Revision  string
	GoVersion string
}

// Build reads the binary's embedded build information once per call.
func Build() BuildInfo {
	bi := BuildInfo{
		Version:   "unknown",
		Revision:  "unknown",
		GoVersion: runtime.Version(),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" {
		bi.Version = v
	}
	var revision string
	var modified bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if revision != "" {
		if modified {
			revision += "-dirty"
		}
		bi.Revision = revision
	}
	return bi
}

// PrintVersion writes the one-line -version output shared by every CLI in
// cmd/, so BENCH artifacts and deployed binaries are attributable to a
// commit.
func PrintVersion(w io.Writer, name string) {
	bi := Build()
	fmt.Fprintf(w, "%s %s (revision %s, %s)\n", name, bi.Version, bi.Revision, bi.GoVersion)
}
