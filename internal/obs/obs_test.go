package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served")
	g := r.Gauge("test_in_flight", "in flight")
	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Add(-2)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total requests served\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3\n",
		"# TYPE test_in_flight gauge\n",
		"test_in_flight 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 3 {
		t.Errorf("Value() = %d, %d; want 3, 3", c.Value(), g.Value())
	}
}

func TestFamiliesSortedAndLabeledSeriesGrouped(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "last")
	a := r.Counter("aaa_total", "first", Label{"kind", "x"})
	b := r.Counter("aaa_total", "first", Label{"kind", "y"})
	a.Inc()
	b.Add(2)

	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Count(out, "# TYPE aaa_total counter") != 1 {
		t.Errorf("labeled series of one family must share one TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `aaa_total{kind="x"} 1`) || !strings.Contains(out, `aaa_total{kind="y"} 2`) {
		t.Errorf("labeled series misrendered:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)                          // bucket 0.01
	h.Observe(0.05)                           // bucket 0.1
	h.Observe(0.05)                           // bucket 0.1
	h.Observe(5)                              // +Inf only
	h.ObserveDuration(500 * time.Millisecond) // bucket 1

	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.01"} 1` + "\n",
		`test_latency_seconds_bucket{le="0.1"} 3` + "\n",
		`test_latency_seconds_bucket{le="1"} 4` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"test_latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	// Sum ≈ 0.005 + 0.05 + 0.05 + 5 + 0.5.
	if !strings.Contains(out, "test_latency_seconds_sum 5.60") {
		t.Errorf("sum misrendered:\n%s", out)
	}
}

func TestHistogramLabelsMergeLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_phase_seconds", "phase", []float64{1}, Label{"phase", "compose"})
	h.Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`test_phase_seconds_bucket{phase="compose",le="1"} 1`,
		`test_phase_seconds_bucket{phase="compose",le="+Inf"} 1`,
		`test_phase_seconds_count{phase="compose"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "escaping", Label{"v", "a\\b\"c\nd"})
	out := render(t, r)
	if !strings.Contains(out, `test_esc_total{v="a\\b\"c\nd"} 0`) {
		t.Errorf("label not escaped per exposition format:\n%s", out)
	}
}

func TestFuncMetricsAndPreCollect(t *testing.T) {
	r := NewRegistry()
	var v float64
	hooks := 0
	r.PreCollect(func() { hooks++; v = 42 })
	r.CounterFunc("test_fn_total", "fn counter", func() float64 { return v })
	r.GaugeFunc("test_fn_gauge", "fn gauge", func() float64 { return v / 2 })

	out := render(t, r)
	if hooks != 1 {
		t.Fatalf("PreCollect ran %d times, want 1", hooks)
	}
	if !strings.Contains(out, "test_fn_total 42\n") || !strings.Contains(out, "test_fn_gauge 21\n") {
		t.Errorf("func metrics misrendered:\n%s", out)
	}
	render(t, r)
	if hooks != 2 {
		t.Errorf("PreCollect must run once per scrape, got %d after 2 scrapes", hooks)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x")
	rec := httptest.NewRecorder()
	r.Handler()(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 0") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestSpanRecorderAggregates(t *testing.T) {
	rec := NewSpanRecorder()
	rec.Span(PhaseDetect, 2*time.Millisecond)
	rec.Span(PhaseDetect, 3*time.Millisecond)
	rec.Span(PhaseCompose, time.Millisecond)

	got := rec.Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(got))
	}
	// Sorted by phase name: compose < detect.
	if got[0].Phase != PhaseCompose || got[1].Phase != PhaseDetect {
		t.Fatalf("Snapshot order = %s, %s", got[0].Phase, got[1].Phase)
	}
	if got[1].Count != 2 || got[1].Total != 5*time.Millisecond {
		t.Errorf("detect aggregate = %d spans, %v total; want 2, 5ms", got[1].Count, got[1].Total)
	}
}

func TestMultiDropsNils(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no tracers must be nil")
	}
	rec := NewSpanRecorder()
	if got := Multi(nil, rec, nil); got != Tracer(rec) {
		t.Error("Multi of one tracer must return it unwrapped")
	}
	rec2 := NewSpanRecorder()
	m := Multi(rec, rec2)
	m.Span(PhasePairs, time.Second)
	if len(rec.Snapshot()) != 1 || len(rec2.Snapshot()) != 1 {
		t.Error("Multi must fan out to every sink")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if WithTracer(ctx, nil) != ctx {
		t.Error("WithTracer(nil) must return ctx unchanged")
	}
	if TracerFrom(ctx) != nil {
		t.Error("TracerFrom of a bare ctx must be nil")
	}
	rec := NewSpanRecorder()
	if got := TracerFrom(WithTracer(ctx, rec)); got != Tracer(rec) {
		t.Error("TracerFrom must return the attached tracer")
	}

	if WithRequestID(ctx, "") != ctx {
		t.Error(`WithRequestID("") must return ctx unchanged`)
	}
	if got := RequestIDFrom(WithRequestID(ctx, "req-1")); got != "req-1" {
		t.Errorf("RequestIDFrom = %q, want req-1", got)
	}
}

func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.Version == "" || bi.Revision == "" || bi.GoVersion == "" {
		t.Errorf("Build() must fill every field, got %+v", bi)
	}
	var sb strings.Builder
	PrintVersion(&sb, "toolname")
	if !strings.HasPrefix(sb.String(), "toolname ") {
		t.Errorf("PrintVersion output = %q", sb.String())
	}
}
