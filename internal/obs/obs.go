// Package obs is the zero-dependency observability core of the service:
// atomic counters, gauges and fixed-bucket latency histograms collected in
// a Registry that renders the Prometheus text exposition format, plus the
// phase-level Tracer interface the analysis engine emits spans through
// (tracer.go) and build attribution helpers (buildinfo.go).
//
// The package is deliberately allocation-free on the hot paths: Counter,
// Gauge and Histogram are plain atomics behind pre-registered handles, a
// Histogram observation is one bounds scan plus three atomic adds, and the
// no-op tracer default is a nil interface the instrumented code branches on
// before calling time.Now — disabling observability costs the engine
// nothing, which the pruned-subsets allocation gate asserts in CI.
package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Observations are counted
// into the first bucket whose upper bound is ≥ the value; the sum is kept
// in nanoseconds. All methods are safe for concurrent use and allocate
// nothing.
type Histogram struct {
	bounds   []float64 // upper bounds in seconds, ascending; +Inf implied
	counts   []atomic.Uint64
	inf      atomic.Uint64
	total    atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
}

// ObserveDuration records one latency observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	placed := false
	for i, b := range h.bounds {
		if seconds <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.total.Add(1)
	h.sumNanos.Add(int64(seconds * 1e9))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// DefBuckets are the default request-latency bucket bounds (seconds):
// 500µs to 10s, covering the cold SmallBank enumeration through a slow
// TPC-C sweep.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// PhaseBuckets are the phase-span bucket bounds (seconds): phases run from
// microseconds (a warm compose) to seconds (a cold universe closure), so
// the buckets start three decades below DefBuckets.
var PhaseBuckets = []float64{1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 2.5e-3, 0.01, 0.05, 0.25, 1, 5}

// Label is one constant key=value pair attached to a metric series at
// registration time.
type Label struct {
	Key, Value string
}

// series is one rendered line (or histogram line group) of a family:
// exactly one of c/g/h/fn is set.
type series struct {
	labels string // rendered `{k="v",...}`, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered metrics and renders them as Prometheus text.
// Registration is expected at startup; rendering may run concurrently with
// metric updates (values are read atomically, so a scrape sees a consistent
// enough snapshot — the usual Prometheus contract).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	pre      []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	f.series = append(f.series, s)
}

// Counter registers (or extends) a counter family and returns the series'
// handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the series'
// handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), g: g})
	return g
}

// Histogram registers (or extends) a histogram family with the given bucket
// upper bounds (seconds, ascending; +Inf is implicit) and returns the
// series' handle.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	h := newHistogram(buckets)
	r.add(name, help, "histogram", &series{labels: renderLabels(labels), h: h})
	return h
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the re-export path for counters that already live
// elsewhere as atomics (the server's /v1/stats counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "counter", &series{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), fn: fn})
}

// PreCollect registers a hook that runs at the start of every scrape,
// before any series is rendered. The server uses one hook to snapshot its
// per-workload cache aggregates once per scrape instead of walking the
// registry once per re-exported series.
func (r *Registry) PreCollect(fn func()) {
	r.mu.Lock()
	r.pre = append(r.pre, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (families sorted by name, series in registration
// order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.pre...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name string, s *series) {
	switch {
	case s.h != nil:
		writeHistogram(bw, name, s)
	case s.c != nil:
		writeSample(bw, name, s.labels, formatUint(s.c.Value()))
	case s.g != nil:
		writeSample(bw, name, s.labels, strconv.FormatInt(s.g.Value(), 10))
	case s.fn != nil:
		writeSample(bw, name, s.labels, formatFloat(s.fn()))
	}
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.h
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(bw, name+"_bucket", mergeLE(s.labels, formatFloat(b)), formatUint(cum))
	}
	writeSample(bw, name+"_bucket", mergeLE(s.labels, "+Inf"), formatUint(h.Count()))
	writeSample(bw, name+"_sum", s.labels, formatFloat(float64(h.sumNanos.Load())/1e9))
	writeSample(bw, name+"_count", s.labels, formatUint(h.Count()))
}

func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// mergeLE merges the histogram's le label into a pre-rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderLabels renders a constant label set once, at registration.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Handler returns the GET /metrics handler serving the registry.
func (r *Registry) Handler() http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(rw)
	}
}
