package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Phase names emitted by the analysis engine and the server. They form a
// small fixed taxonomy (documented in docs/ARCHITECTURE.md) so every sink —
// the /metrics phase histogram, the slog phase logs, the ?debug=timings
// response block — agrees on the vocabulary.
const (
	// PhaseValidateUnfold covers template validation and unfolding into
	// the LTP universe (the input to Algorithm 1).
	PhaseValidateUnfold = "validate_unfold"
	// PhasePairs covers Algorithm 1 pair derivation: filling missing
	// pairwise edge blocks. It is a sub-span of compose — pairs time is
	// included in compose time, and a fully warm block cache emits no
	// pairs span at all.
	PhasePairs = "pairs"
	// PhaseCompose covers summary-graph composition (block scan + graph
	// assembly), including any pairs sub-span.
	PhaseCompose = "compose"
	// PhaseDetect covers Algorithm 2 type-II cycle detection, one span
	// per detector run (a subsets request emits one per undecided
	// subset).
	PhaseDetect = "detect"
	// PhaseLatticeLevel covers one level of the subset lattice walk
	// (schedule + process + emit), one span per level.
	PhaseLatticeLevel = "lattice_level"
	// PhaseFirstVerdict is the time from the start of a streamed
	// enumeration to its first emitted verdict (time-to-first-verdict).
	PhaseFirstVerdict = "first_verdict"
	// PhaseFlush covers one snapshot persistence to the state dir.
	PhaseFlush = "snapshot_flush"
)

// Tracer receives phase spans from the engine. Implementations must be safe
// for concurrent use: lattice levels are processed by parallel workers that
// all report through the request's tracer.
//
// The no-op default is a nil Tracer: instrumented code branches on nil
// before calling time.Now, so a disabled tracer adds neither time nor
// allocations to the hot paths.
type Tracer interface {
	Span(phase string, d time.Duration)
}

// PhaseTiming is the aggregate of one phase's spans in a SpanRecorder
// snapshot.
type PhaseTiming struct {
	Phase string
	Count uint64
	Total time.Duration
}

// SpanRecorder is a Tracer that aggregates spans per phase, backing the
// ?debug=timings response block and robustcheck -timings.
type SpanRecorder struct {
	mu sync.Mutex
	m  map[string]*PhaseTiming
}

// NewSpanRecorder creates an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{m: make(map[string]*PhaseTiming)}
}

// Span implements Tracer.
func (r *SpanRecorder) Span(phase string, d time.Duration) {
	r.mu.Lock()
	pt, ok := r.m[phase]
	if !ok {
		pt = &PhaseTiming{Phase: phase}
		r.m[phase] = pt
	}
	pt.Count++
	pt.Total += d
	r.mu.Unlock()
}

// Snapshot returns the aggregated timings sorted by phase name.
func (r *SpanRecorder) Snapshot() []PhaseTiming {
	r.mu.Lock()
	out := make([]PhaseTiming, 0, len(r.m))
	for _, pt := range r.m {
		out = append(out, *pt)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// multiTracer fans one span out to several sinks.
type multiTracer []Tracer

func (m multiTracer) Span(phase string, d time.Duration) {
	for _, t := range m {
		t.Span(phase, d)
	}
}

// Multi combines tracers, dropping nils: it returns nil when none remain
// and the tracer itself when exactly one does, so callers keep the nil-fast
// no-op default without special-casing.
func Multi(tracers ...Tracer) Tracer {
	var kept multiTracer
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// ctxKey is the private context key namespace.
type ctxKey int

const (
	tracerKey ctxKey = iota
	requestIDKey
)

// WithTracer attaches a tracer to the context. The summary package reads it
// back with TracerFrom — the tracer crosses the analysis→summary boundary
// through the context, so summary's exported signatures stay unchanged.
func WithTracer(ctx context.Context, t Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil — callers branch on nil
// exactly as they would on a nil Config.Tracer.
func TracerFrom(ctx context.Context) Tracer {
	t, _ := ctx.Value(tracerKey).(Tracer)
	return t
}

// WithRequestID attaches the propagated X-Request-ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
