-- Auction benchmark (Figure 1): the paper's running example, written in
-- the SQL dialect of Appendix A. Cross-validated against the hand-coded
-- Figure 2 BTPs by sql_test.go.

PROGRAM FindBids(:buyer, :minimum):
  UPDATE Buyer SET calls = calls + 1 WHERE id = :buyer;  -- q1
  SELECT bid FROM Bids WHERE bid >= :minimum;            -- q2
COMMIT;

PROGRAM PlaceBid(:buyer, :amount, :logId):
  UPDATE Buyer SET calls = calls + 1 WHERE id = :buyer;  -- q3
  SELECT bid INTO :current FROM Bids WHERE buyerId = :buyer;  -- q4
  IF :amount > :current THEN
    UPDATE Bids SET bid = :amount WHERE buyerId = :buyer;  -- q5
  ENDIF;
  INSERT INTO Log VALUES (:logId, :buyer, :amount);  -- q6
  -- The Bids tuple addressed by q4/q5 and the Log tuple inserted by q6
  -- reference the Buyer tuple q3 updates.
  -- @fk q3 = f1(q4)
  -- @fk q3 = f1(q5)
  -- @fk q3 = f2(q6)
COMMIT;
