-- TPC-C benchmark (Figures 12-16 / Appendix E.2) in the SQL dialect of
-- Appendix A. Cross-validated against the hand-coded Figure 17 BTPs by
-- sql_test.go. Statement labels follow Figure 17.

PROGRAM Delivery(:w, :carrier, :date):
  REPEAT
    SELECT MIN(no_o_id) INTO :o FROM New_Order WHERE no_d_id = :d AND no_w_id = :w;  -- q1
    DELETE FROM New_Order WHERE no_o_id = :o AND no_d_id = :d AND no_w_id = :w;  -- q2
    SELECT o_c_id INTO :c FROM Orders WHERE o_id = :o AND o_d_id = :d AND o_w_id = :w;  -- q3
    UPDATE Orders SET o_carrier_id = :carrier WHERE o_id = :o AND o_d_id = :d AND o_w_id = :w;  -- q4
    UPDATE Order_Line SET ol_delivery_d = :date WHERE ol_o_id = :o AND ol_d_id = :d AND ol_w_id = :w;  -- q5
    SELECT SUM(ol_amount) INTO :total FROM Order_Line WHERE ol_o_id = :o AND ol_d_id = :d AND ol_w_id = :w;  -- q6
    UPDATE Customer SET c_balance = c_balance + :total, c_delivery_cnt = c_delivery_cnt + 1
      WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q7
  END REPEAT;
  -- The New_Order tuple selected by q1 and deleted by q2 references the
  -- Orders tuple read by q3 and updated by q4 (f5); the Order_Line rows of
  -- q5 and q6 belong to the same order (f8), which references the customer
  -- q7 updates (f7).
  -- @fk q3 = f5(q1)
  -- @fk q4 = f5(q1)
  -- @fk q3 = f5(q2)
  -- @fk q4 = f5(q2)
  -- @fk q3 = f8(q5)
  -- @fk q4 = f8(q5)
  -- @fk q3 = f8(q6)
  -- @fk q4 = f8(q6)
  -- @fk q7 = f7(q3)
  -- @fk q7 = f7(q4)
COMMIT;

PROGRAM NewOrder(:w, :d, :c, :entry):
  SELECT c_discount, c_last, c_credit INTO :disc, :last, :credit
    FROM Customer WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q8
  SELECT w_tax INTO :wtax FROM Warehouse WHERE w_id = :w;  -- q9
  UPDATE District SET d_next_o_id = d_next_o_id + 1 WHERE d_id = :d AND d_w_id = :w
    RETURNING d_next_o_id, d_tax INTO :o, :dtax;  -- q10
  INSERT INTO Orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_id, o_ol_cnt, o_all_local)
    VALUES (:o, :d, :w, :c, :entry, :cnt, :all_local);  -- q11
  INSERT INTO New_Order VALUES (:o, :d, :w);  -- q12
  REPEAT
    SELECT i_price, i_name, i_data INTO :price, :iname, :idata FROM Item WHERE i_id = :i;  -- q13
    UPDATE Stock SET s_quantity = s_quantity - :qty, s_ytd = s_ytd + :qty,
        s_order_cnt = s_order_cnt + 1, s_remote_cnt = s_remote_cnt + :remote
      WHERE s_i_id = :i AND s_w_id = :sw
      RETURNING s_data, s_dist_01, s_dist_02, s_dist_03, s_dist_04, s_dist_05,
        s_dist_06, s_dist_07, s_dist_08, s_dist_09, s_dist_10
      INTO :sdata, :d01, :d02, :d03, :d04, :d05, :d06, :d07, :d08, :d09, :d10;  -- q14
    INSERT INTO Order_Line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id,
        ol_supply_w_id, ol_quantity, ol_amount, ol_dist_info)
      VALUES (:o, :d, :w, :number, :i, :sw, :qty, :amount, :distinfo);  -- q15
  END REPEAT;
  -- @fk q10 = f2(q8)
  -- @fk q9 = f1(q10)
  -- @fk q8 = f7(q11)
  -- @fk q10 = f6(q11)
  -- @fk q11 = f5(q12)
  -- @fk q13 = f11(q14)
  -- @fk q9 = f12(q14)
  -- @fk q11 = f8(q15)
  -- @fk q13 = f9(q15)
  -- @fk q9 = f10(q15)
COMMIT;

PROGRAM OrderStatus(:w, :d, :c, :last):
  IF :by_last_name THEN
    SELECT c_id, c_first, c_middle, c_balance INTO :c, :first, :middle, :balance
      FROM Customer WHERE c_w_id = :w AND c_d_id = :d AND c_last = :last;  -- q16
  ELSE
    SELECT c_first, c_middle, c_last, c_balance INTO :first, :middle, :last, :balance
      FROM Customer WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q17
  ENDIF;
  SELECT o_id, o_entry_id, o_carrier_id INTO :o, :entry, :carrier
    FROM Orders WHERE o_c_id = :c AND o_d_id = :d AND o_w_id = :w;  -- q18
  SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
    FROM Order_Line WHERE ol_o_id = :o AND ol_d_id = :d AND ol_w_id = :w;  -- q19
  -- @fk q17 = f7(q18)
COMMIT;

PROGRAM Payment(:w, :d, :c, :amount, :date):
  UPDATE Warehouse SET w_ytd = w_ytd + :amount WHERE w_id = :w
    RETURNING w_name, w_street_1, w_street_2, w_city, w_state, w_zip
    INTO :wname, :ws1, :ws2, :wcity, :wstate, :wzip;  -- q20
  UPDATE District SET d_ytd = d_ytd + :amount WHERE d_id = :d AND d_w_id = :w
    RETURNING d_name, d_street_1, d_street_2, d_city, d_state, d_zip
    INTO :dname, :ds1, :ds2, :dcity, :dstate, :dzip;  -- q21
  IF :by_last_name THEN
    SELECT c_id INTO :c FROM Customer
      WHERE c_w_id = :w AND c_d_id = :d AND c_last = :clast;  -- q22
  ENDIF;
  UPDATE Customer SET c_balance = c_balance - :amount,
      c_ytd_payment = c_ytd_payment + :amount, c_payment_cnt = c_payment_cnt + 1
    WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w
    RETURNING c_first, c_middle, c_last, c_street_1, c_street_2, c_city, c_state,
      c_zip, c_phone, c_since, c_credit, c_credit_lim, c_discount
    INTO :first, :middle, :clast, :cs1, :cs2, :ccity, :cstate,
      :czip, :phone, :since, :credit, :lim, :disc;  -- q23
  IF :credit = 'BC' THEN
    SELECT c_data INTO :cdata FROM Customer
      WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q24
    UPDATE Customer SET c_data = :newdata
      WHERE c_id = :c AND c_d_id = :d AND c_w_id = :w;  -- q25
  ENDIF;
  INSERT INTO History VALUES (:c, :d, :w, :d, :w, :date, :amount, :hdata);  -- q26
  -- @fk q20 = f1(q21)
  -- @fk q21 = f2(q22)
  -- @fk q21 = f2(q23)
  -- @fk q21 = f2(q24)
  -- @fk q21 = f2(q25)
  -- @fk q23 = f3(q26)
  -- @fk q25 = f3(q26)
  -- @fk q21 = f4(q26)
COMMIT;

PROGRAM StockLevel(:w, :d, :threshold):
  SELECT d_next_o_id INTO :o FROM District WHERE d_id = :d AND d_w_id = :w;  -- q27
  SELECT ol_i_id FROM Order_Line
    WHERE ol_w_id = :w AND ol_d_id = :d AND ol_o_id < :o;  -- q28
  SELECT COUNT(s_i_id) INTO :low FROM Stock
    WHERE s_w_id = :w AND s_quantity < :threshold;  -- q29
COMMIT;
