-- SmallBank benchmark (Figure 9 / Appendix E.1) in the SQL dialect of
-- Appendix A. Cross-validated against the hand-coded Figure 10 BTPs by
-- sql_test.go.

PROGRAM Amalgamate(:name1, :name2):
  SELECT CustomerId INTO :c1 FROM Account WHERE Name = :name1;  -- q1
  SELECT CustomerId INTO :c2 FROM Account WHERE Name = :name2;  -- q2
  UPDATE Savings SET Balance = Balance - Balance WHERE CustomerId = :c1;   -- q3
  UPDATE Checking SET Balance = Balance - Balance WHERE CustomerId = :c1;  -- q4
  UPDATE Checking SET Balance = Balance + :total WHERE CustomerId = :c2;   -- q5
  -- @fk q3 = fS(q1)
  -- @fk q4 = fC(q1)
  -- @fk q5 = fC(q2)
COMMIT;

PROGRAM Balance(:name):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q6
  SELECT Balance INTO :sb FROM Savings WHERE CustomerId = :c;   -- q7
  SELECT Balance INTO :cb FROM Checking WHERE CustomerId = :c;  -- q8
  -- @fk q7 = fS(q6)
  -- @fk q8 = fC(q6)
COMMIT;

PROGRAM DepositChecking(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q9
  UPDATE Checking SET Balance = Balance + :amount WHERE CustomerId = :c;  -- q10
  -- @fk q10 = fC(q9)
COMMIT;

PROGRAM TransactSavings(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q11
  UPDATE Savings SET Balance = Balance + :amount WHERE CustomerId = :c;  -- q12
  -- @fk q12 = fS(q11)
COMMIT;

PROGRAM WriteCheck(:name, :amount):
  SELECT CustomerId INTO :c FROM Account WHERE Name = :name;  -- q13
  SELECT Balance INTO :sb FROM Savings WHERE CustomerId = :c;   -- q14
  SELECT Balance INTO :cb FROM Checking WHERE CustomerId = :c;  -- q15
  -- Figure 10 models the final update as a blind write (empty ReadSet):
  -- the new balance is computed from the values read by q14 and q15.
  UPDATE Checking SET Balance = :newBalance WHERE CustomerId = :c;  -- q16
  -- @fk q14 = fS(q13)
  -- @fk q15 = fC(q13)
  -- @fk q16 = fC(q13)
COMMIT;
