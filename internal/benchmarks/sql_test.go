package benchmarks

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/summary"
)

// equalOpt compares two optional attribute sets, tolerating the listed
// extra attributes in got (the SQL derivation is occasionally a strict
// superset of the paper's Figure 17 — e.g. Payment's c_payment_cnt, which
// the SET clause reads but the figure omits from ReadSet).
func equalOpt(got, want btp.OptAttrs, tolerate ...string) bool {
	if got.Defined != want.Defined {
		return false
	}
	if !got.Defined {
		return true
	}
	if !want.Set.SubsetOf(got.Set) {
		return false
	}
	tol := map[string]bool{}
	for _, a := range tolerate {
		tol[a] = true
	}
	for a := range got.Set {
		if !want.Set.Has(a) && !tol[a] {
			return false
		}
	}
	return true
}

// crossValidate compares a SQL-derived benchmark against the hand-coded
// one: same programs, and per statement the same type, relation and
// attribute sets (modulo tolerated extras).
func crossValidate(t *testing.T, hand *Benchmark, src string, tolerate map[string][]string) []*btp.Program {
	t.Helper()
	programs, err := sqlbtp.Parse(hand.Schema, src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(programs) != len(hand.Programs) {
		t.Fatalf("parsed %d programs, hand-coded %d", len(programs), len(hand.Programs))
	}
	byName := map[string]*btp.Program{}
	for _, p := range hand.Programs {
		byName[p.Name] = p
	}
	for _, parsed := range programs {
		ref := byName[parsed.Name]
		if ref == nil {
			t.Errorf("parsed program %q has no hand-coded counterpart", parsed.Name)
			continue
		}
		ps, rs := parsed.Statements(), ref.Statements()
		if len(ps) != len(rs) {
			t.Errorf("%s: %d statements, hand-coded %d", parsed.Name, len(ps), len(rs))
			continue
		}
		for i := range ps {
			got, want := ps[i], rs[i]
			label := fmt.Sprintf("%s/%s", parsed.Name, want.Name)
			if got.Name != want.Name {
				t.Errorf("%s: parsed label %q", label, got.Name)
			}
			if got.Type != want.Type || got.Rel != want.Rel {
				t.Errorf("%s: %s %s, want %s %s", label, got.Type, got.Rel, want.Type, want.Rel)
			}
			tol := tolerate[want.Name]
			if !equalOpt(got.ReadSet, want.ReadSet, tol...) {
				t.Errorf("%s: ReadSet %s, want %s", label, got.ReadSet, want.ReadSet)
			}
			if !equalOpt(got.WriteSet, want.WriteSet) {
				t.Errorf("%s: WriteSet %s, want %s", label, got.WriteSet, want.WriteSet)
			}
			if !equalOpt(got.PReadSet, want.PReadSet) {
				t.Errorf("%s: PReadSet %s, want %s", label, got.PReadSet, want.PReadSet)
			}
		}
		// Same FK annotations.
		render := func(cs []btp.FKConstraint) []string {
			out := make([]string, len(cs))
			for i, c := range cs {
				out[i] = c.String()
			}
			sort.Strings(out)
			return out
		}
		g, w := render(parsed.FKs), render(ref.FKs)
		if len(g) != len(w) {
			t.Errorf("%s: FK annotations %v, want %v", parsed.Name, g, w)
		} else {
			for i := range g {
				if g[i] != w[i] {
					t.Errorf("%s: FK annotation %q, want %q", parsed.Name, g[i], w[i])
				}
			}
		}
	}
	return programs
}

// TestAuctionSQLMatchesHandCoded cross-validates sqlsrc/auction.sql against
// the hand-coded Figure 2 BTPs.
func TestAuctionSQLMatchesHandCoded(t *testing.T) {
	crossValidate(t, Auction(), AuctionSQL, nil)
}

// TestSmallBankSQLMatchesHandCoded cross-validates sqlsrc/smallbank.sql
// against the hand-coded Figure 10 BTPs, then checks the derived programs
// reproduce the Figure 6 SmallBank subsets.
func TestSmallBankSQLMatchesHandCoded(t *testing.T) {
	hand := SmallBank()
	programs := crossValidate(t, hand, SmallBankSQL, nil)

	c := robust.NewChecker(hand.Schema)
	for i, p := range programs {
		p.Abbrev = hand.Programs[i].Abbrev
	}
	rep, err := c.RobustSubsets(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := []robust.Subset{{"Am", "DC", "TS"}, {"Bal", "DC"}, {"Bal", "TS"}}
	if len(rep.Maximal) != len(want) {
		t.Fatalf("maximal subsets = %v", rep.Maximal)
	}
	for _, w := range want {
		found := false
		for _, m := range rep.Maximal {
			if m.Equal(w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing maximal subset %v in %v", w, rep.Maximal)
		}
	}
}

// TestTPCCSQLMatchesHandCoded cross-validates sqlsrc/tpcc.sql against the
// hand-coded Figure 17 BTPs (tolerating c_payment_cnt in Payment q23's
// ReadSet, which the SQL necessarily reads but Figure 17 omits), and checks
// the derived programs produce the same summary-graph statistics and the
// same Figure 6 verdicts.
func TestTPCCSQLMatchesHandCoded(t *testing.T) {
	hand := TPCC()
	tolerate := map[string][]string{"q23": {"c_payment_cnt"}}
	programs := crossValidate(t, hand, TPCCSQL, tolerate)

	ltps := btp.UnfoldAll2(programs)
	if len(ltps) != 13 {
		t.Fatalf("derived TPC-C unfolds to %d LTPs, want 13", len(ltps))
	}
	g := summary.Build(hand.Schema, ltps, summary.SettingAttrDepFK)
	st := g.Stats()
	if st.Edges != 396 || st.CounterflowEdges != 83 {
		t.Errorf("derived TPC-C graph: %d edges (%d counterflow), want 396 (83)", st.Edges, st.CounterflowEdges)
	}

	for i, p := range programs {
		p.Abbrev = hand.Programs[i].Abbrev
	}
	c := robust.NewChecker(hand.Schema)
	rep, err := c.RobustSubsets(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := []robust.Subset{{"OS", "Pay", "SL"}, {"NO", "Pay"}}
	if len(rep.Maximal) != len(want) {
		t.Fatalf("maximal subsets = %v, want %v", rep.Maximal, want)
	}
	for _, w := range want {
		found := false
		for _, m := range rep.Maximal {
			if m.Equal(w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing maximal subset %v in %v", w, rep.Maximal)
		}
	}
}

// TestBenchmarksValidate runs structural validation on every benchmark.
func TestBenchmarksValidate(t *testing.T) {
	for _, b := range []*Benchmark{SmallBank(), TPCC(), Auction(), AuctionN(3)} {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// TestBenchmarkProgramLookup checks lookup by name and abbreviation.
func TestBenchmarkProgramLookup(t *testing.T) {
	b := TPCC()
	if b.Program("NewOrder") == nil || b.Program("NO") == nil {
		t.Error("lookup failed")
	}
	if b.Program("Nope") != nil {
		t.Error("phantom program")
	}
}

// TestAuctionNPanicsOnZero documents the precondition.
func TestAuctionNPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AuctionN(0)
}
