// Package benchmarks defines the three benchmarks of Section 7 — SmallBank,
// TPC-C and Auction (plus the scalable Auction(n) variant) — as relational
// schemas, BTP programs with foreign-key annotations, and program
// abbreviations matching the paper's figures.
package benchmarks

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// Benchmark bundles a schema with its transaction programs.
type Benchmark struct {
	// Name identifies the benchmark ("SmallBank", "TPC-C", "Auction",
	// "Auction(n)").
	Name string
	// Schema is the relational schema including foreign keys.
	Schema *relschema.Schema
	// Programs are the BTP transaction programs.
	Programs []*btp.Program
}

// Program returns the program with the given name or abbreviation, or nil.
func (b *Benchmark) Program(name string) *btp.Program {
	for _, p := range b.Programs {
		if p.Name == name || p.Abbrev == name {
			return p
		}
	}
	return nil
}

// Validate validates the schema and every program.
func (b *Benchmark) Validate() error {
	if err := b.Schema.Validate(); err != nil {
		return fmt.Errorf("benchmark %s: %w", b.Name, err)
	}
	for _, p := range b.Programs {
		if err := p.Validate(b.Schema); err != nil {
			return fmt.Errorf("benchmark %s: %w", b.Name, err)
		}
	}
	return nil
}

// AuctionSchema builds the auction schema of Section 2:
//
//	Buyer(id, calls), Bids(buyerId, bid), Log(id, buyerId, bid)
//
// with foreign keys f1: Bids(buyerId) → Buyer(id) and
// f2: Log(buyerId) → Buyer(id).
func AuctionSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("Buyer", []string{"id", "calls"}, []string{"id"})
	s.MustAddRelation("Bids", []string{"buyerId", "bid"}, []string{"buyerId"})
	s.MustAddRelation("Log", []string{"id", "buyerId", "bid"}, []string{"id"})
	s.MustAddForeignKey("f1", "Bids", []string{"buyerId"}, "Buyer", []string{"id"})
	s.MustAddForeignKey("f2", "Log", []string{"buyerId"}, "Buyer", []string{"id"})
	return s
}

// Auction builds the Auction benchmark of Section 2 (Figures 1 and 2):
// FindBids = q1; q2 and PlaceBid = q3; q4; (q5 | ε); q6 with foreign-key
// annotations q3 = f1(q4), q3 = f1(q5) and q3 = f2(q6).
func Auction() *Benchmark {
	s := AuctionSchema()

	q1 := btp.NewKeyUpd("q1", "Buyer", []string{"calls"}, []string{"calls"})
	q2 := btp.NewPredSel("q2", "Bids", []string{"bid"}, []string{"bid"})
	findBids := &btp.Program{
		Name: "FindBids", Abbrev: "FB",
		Body: btp.Stmts(q1, q2),
	}

	q3 := btp.NewKeyUpd("q3", "Buyer", []string{"calls"}, []string{"calls"})
	q4 := btp.NewKeySel("q4", "Bids", "bid")
	q5 := btp.NewKeyUpd("q5", "Bids", nil, []string{"bid"})
	q6 := btp.NewIns(s, "q6", "Log")
	placeBid := &btp.Program{
		Name: "PlaceBid", Abbrev: "PB",
		Body: btp.SeqOf(btp.S(q3), btp.S(q4), btp.Opt(btp.S(q5)), btp.S(q6)),
	}
	placeBid.MustAnnotateFK(s, "f1", "q4", "q3")
	placeBid.MustAnnotateFK(s, "f1", "q5", "q3")
	placeBid.MustAnnotateFK(s, "f2", "q6", "q3")

	return &Benchmark{Name: "Auction", Schema: s, Programs: []*btp.Program{findBids, placeBid}}
}

// AuctionN builds the scalable Auction(n) benchmark of Section 7.3: n
// auction items, each with its own relation Bids_i and its own pair of
// programs FindBids_i and PlaceBid_i; all programs still update the shared
// Buyer relation. Auction(1) is structurally the Auction benchmark.
func AuctionN(n int) *Benchmark {
	if n < 1 {
		panic(fmt.Sprintf("benchmarks: AuctionN requires n >= 1, got %d", n))
	}
	s := relschema.NewSchema()
	s.MustAddRelation("Buyer", []string{"id", "calls"}, []string{"id"})
	s.MustAddRelation("Log", []string{"id", "buyerId", "bid"}, []string{"id"})
	s.MustAddForeignKey("f2", "Log", []string{"buyerId"}, "Buyer", []string{"id"})
	for i := 1; i <= n; i++ {
		bids := fmt.Sprintf("Bids%d", i)
		s.MustAddRelation(bids, []string{"buyerId", "bid"}, []string{"buyerId"})
		s.MustAddForeignKey(fmt.Sprintf("f1_%d", i), bids, []string{"buyerId"}, "Buyer", []string{"id"})
	}

	b := &Benchmark{Name: fmt.Sprintf("Auction(%d)", n), Schema: s}
	for i := 1; i <= n; i++ {
		bids := fmt.Sprintf("Bids%d", i)
		f1 := fmt.Sprintf("f1_%d", i)

		q1 := btp.NewKeyUpd("q1", "Buyer", []string{"calls"}, []string{"calls"})
		q2 := btp.NewPredSel("q2", bids, []string{"bid"}, []string{"bid"})
		fb := &btp.Program{
			Name: fmt.Sprintf("FindBids%d", i), Abbrev: fmt.Sprintf("FB%d", i),
			Body: btp.Stmts(q1, q2),
		}

		q3 := btp.NewKeyUpd("q3", "Buyer", []string{"calls"}, []string{"calls"})
		q4 := btp.NewKeySel("q4", bids, "bid")
		q5 := btp.NewKeyUpd("q5", bids, nil, []string{"bid"})
		q6 := btp.NewIns(s, "q6", "Log")
		pb := &btp.Program{
			Name: fmt.Sprintf("PlaceBid%d", i), Abbrev: fmt.Sprintf("PB%d", i),
			Body: btp.SeqOf(btp.S(q3), btp.S(q4), btp.Opt(btp.S(q5)), btp.S(q6)),
		}
		pb.MustAnnotateFK(s, f1, "q4", "q3")
		pb.MustAnnotateFK(s, f1, "q5", "q3")
		pb.MustAnnotateFK(s, "f2", "q6", "q3")

		b.Programs = append(b.Programs, fb, pb)
	}
	return b
}
