package benchmarks

import (
	"fmt"
	"strings"
)

// ByName resolves a benchmark by its common name (case-insensitive):
// "smallbank", "tpcc"/"tpc-c" or "auction". n scales the Auction benchmark
// (Auction(n)); values ≤ 1 give the base benchmark. Both the CLIs and the
// server's workload registration resolve named benchmarks through this
// single lookup.
func ByName(name string, n int) (*Benchmark, error) {
	switch strings.ToLower(name) {
	case "smallbank":
		return SmallBank(), nil
	case "tpcc", "tpc-c":
		return TPCC(), nil
	case "auction":
		if n > 1 {
			return AuctionN(n), nil
		}
		return Auction(), nil
	default:
		return nil, fmt.Errorf("unknown benchmark %q (want smallbank, tpcc or auction)", name)
	}
}
