package benchmarks

import (
	"repro/internal/btp"
	"repro/internal/relschema"
)

// TPCCSchema builds the nine-relation TPC-C schema of Appendix E.2 with its
// twelve foreign keys f1–f12.
func TPCCSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("Warehouse",
		[]string{"w_id", "w_name", "w_street_1", "w_street_2", "w_city", "w_state", "w_zip", "w_tax", "w_ytd"},
		[]string{"w_id"})
	s.MustAddRelation("District",
		[]string{"d_id", "d_w_id", "d_name", "d_street_1", "d_street_2", "d_city", "d_state", "d_zip", "d_tax", "d_ytd", "d_next_o_id"},
		[]string{"d_id", "d_w_id"})
	s.MustAddRelation("Customer",
		[]string{"c_id", "c_d_id", "c_w_id", "c_first", "c_middle", "c_last", "c_street_1", "c_street_2",
			"c_city", "c_state", "c_zip", "c_phone", "c_since", "c_credit", "c_credit_lim", "c_discount",
			"c_balance", "c_ytd_payment", "c_payment_cnt", "c_delivery_cnt", "c_data"},
		[]string{"c_id", "c_d_id", "c_w_id"})
	s.MustAddRelation("History",
		[]string{"h_c_id", "h_c_d_id", "h_c_w_id", "h_d_id", "h_w_id", "h_date", "h_amount", "h_data"},
		[]string{"h_c_id", "h_c_d_id", "h_c_w_id", "h_d_id", "h_w_id", "h_date"})
	s.MustAddRelation("New_Order",
		[]string{"no_o_id", "no_d_id", "no_w_id"},
		[]string{"no_o_id", "no_d_id", "no_w_id"})
	s.MustAddRelation("Orders",
		[]string{"o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_id", "o_carrier_id", "o_ol_cnt", "o_all_local"},
		[]string{"o_id", "o_d_id", "o_w_id"})
	s.MustAddRelation("Order_Line",
		[]string{"ol_o_id", "ol_d_id", "ol_w_id", "ol_number", "ol_i_id", "ol_supply_w_id", "ol_delivery_d",
			"ol_quantity", "ol_amount", "ol_dist_info"},
		[]string{"ol_o_id", "ol_d_id", "ol_w_id", "ol_number"})
	s.MustAddRelation("Item",
		[]string{"i_id", "i_im_id", "i_name", "i_price", "i_data"},
		[]string{"i_id"})
	s.MustAddRelation("Stock",
		[]string{"s_i_id", "s_w_id", "s_quantity", "s_dist_01", "s_dist_02", "s_dist_03", "s_dist_04",
			"s_dist_05", "s_dist_06", "s_dist_07", "s_dist_08", "s_dist_09", "s_dist_10",
			"s_ytd", "s_order_cnt", "s_remote_cnt", "s_data"},
		[]string{"s_i_id", "s_w_id"})

	s.MustAddForeignKey("f1", "District", []string{"d_w_id"}, "Warehouse", []string{"w_id"})
	s.MustAddForeignKey("f2", "Customer", []string{"c_d_id", "c_w_id"}, "District", []string{"d_id", "d_w_id"})
	s.MustAddForeignKey("f3", "History", []string{"h_c_id", "h_c_d_id", "h_c_w_id"}, "Customer", []string{"c_id", "c_d_id", "c_w_id"})
	s.MustAddForeignKey("f4", "History", []string{"h_d_id", "h_w_id"}, "District", []string{"d_id", "d_w_id"})
	s.MustAddForeignKey("f5", "New_Order", []string{"no_o_id", "no_d_id", "no_w_id"}, "Orders", []string{"o_id", "o_d_id", "o_w_id"})
	s.MustAddForeignKey("f6", "Orders", []string{"o_d_id", "o_w_id"}, "District", []string{"d_id", "d_w_id"})
	s.MustAddForeignKey("f7", "Orders", []string{"o_c_id", "o_d_id", "o_w_id"}, "Customer", []string{"c_id", "c_d_id", "c_w_id"})
	s.MustAddForeignKey("f8", "Order_Line", []string{"ol_o_id", "ol_d_id", "ol_w_id"}, "Orders", []string{"o_id", "o_d_id", "o_w_id"})
	s.MustAddForeignKey("f9", "Order_Line", []string{"ol_i_id"}, "Item", []string{"i_id"})
	s.MustAddForeignKey("f10", "Order_Line", []string{"ol_supply_w_id"}, "Warehouse", []string{"w_id"})
	s.MustAddForeignKey("f11", "Stock", []string{"s_i_id"}, "Item", []string{"i_id"})
	s.MustAddForeignKey("f12", "Stock", []string{"s_w_id"}, "Warehouse", []string{"w_id"})
	return s
}

// TPCC builds the TPC-C benchmark as formalized in Figure 17: five BTPs —
// Delivery, NewOrder, OrderStatus, Payment, StockLevel — with statement
// details transcribed from the figure and foreign-key annotations derived
// from f1–f12 (each statement over a foreign key's domain relation is
// linked to the program's key-based statement over the range relation).
func TPCC() *Benchmark {
	s := TPCCSchema()

	// Delivery := loop(q1; q2; q3; q4; q5; q6; q7)
	q1 := btp.NewPredSel("q1", "New_Order", []string{"no_d_id", "no_w_id"}, []string{"no_o_id"})
	q2 := btp.NewKeyDel(s, "q2", "New_Order")
	q3 := btp.NewKeySel("q3", "Orders", "o_c_id")
	q4 := btp.NewKeyUpd("q4", "Orders", nil, []string{"o_carrier_id"})
	q5 := btp.NewPredUpd("q5", "Order_Line",
		[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, nil, []string{"ol_delivery_d"})
	q6 := btp.NewPredSel("q6", "Order_Line",
		[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, []string{"ol_amount"})
	q7 := btp.NewKeyUpd("q7", "Customer",
		[]string{"c_balance", "c_delivery_cnt"}, []string{"c_balance", "c_delivery_cnt"})
	delivery := &btp.Program{
		Name: "Delivery", Abbrev: "Del",
		Body: btp.LoopOf(btp.Stmts(q1, q2, q3, q4, q5, q6, q7)),
	}
	// The New_Order tuple selected by q1 and deleted by q2 references the
	// Orders tuple read by q3 and updated by q4 (f5); the Order_Line
	// statements q5, q6 reference the same order (f8); the order
	// references the customer updated by q7 (f7).
	delivery.MustAnnotateFK(s, "f5", "q1", "q3")
	delivery.MustAnnotateFK(s, "f5", "q1", "q4")
	delivery.MustAnnotateFK(s, "f5", "q2", "q3")
	delivery.MustAnnotateFK(s, "f5", "q2", "q4")
	delivery.MustAnnotateFK(s, "f8", "q5", "q3")
	delivery.MustAnnotateFK(s, "f8", "q5", "q4")
	delivery.MustAnnotateFK(s, "f8", "q6", "q3")
	delivery.MustAnnotateFK(s, "f8", "q6", "q4")
	delivery.MustAnnotateFK(s, "f7", "q3", "q7")
	delivery.MustAnnotateFK(s, "f7", "q4", "q7")

	// NewOrder := q8; q9; q10; q11; q12; loop(q13; q14; q15)
	q8 := btp.NewKeySel("q8", "Customer", "c_credit", "c_discount", "c_last")
	q9 := btp.NewKeySel("q9", "Warehouse", "w_tax")
	q10 := btp.NewKeyUpd("q10", "District",
		[]string{"d_next_o_id", "d_tax"}, []string{"d_next_o_id"})
	// Figure 17: the insert into Orders does not set o_carrier_id (the SQL
	// INSERT lists only seven columns), so WriteSet(q11) excludes it.
	q11 := btp.NewInsAttrs("q11", "Orders",
		"o_all_local", "o_c_id", "o_d_id", "o_entry_id", "o_id", "o_ol_cnt", "o_w_id")
	q12 := btp.NewIns(s, "q12", "New_Order")
	q13 := btp.NewKeySel("q13", "Item", "i_data", "i_name", "i_price")
	q14 := btp.NewKeyUpd("q14", "Stock",
		[]string{"s_data", "s_dist_01", "s_dist_02", "s_dist_03", "s_dist_04", "s_dist_05",
			"s_dist_06", "s_dist_07", "s_dist_08", "s_dist_09", "s_dist_10",
			"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"},
		[]string{"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"})
	// Figure 17: the insert into Order_Line does not set ol_delivery_d.
	q15 := btp.NewInsAttrs("q15", "Order_Line",
		"ol_amount", "ol_d_id", "ol_dist_info", "ol_i_id", "ol_number",
		"ol_o_id", "ol_quantity", "ol_supply_w_id", "ol_w_id")
	newOrder := &btp.Program{
		Name: "NewOrder", Abbrev: "NO",
		Body: btp.SeqOf(btp.S(q8), btp.S(q9), btp.S(q10), btp.S(q11), btp.S(q12),
			btp.LoopOf(btp.Stmts(q13, q14, q15))),
	}
	newOrder.MustAnnotateFK(s, "f2", "q8", "q10")
	newOrder.MustAnnotateFK(s, "f1", "q10", "q9")
	newOrder.MustAnnotateFK(s, "f7", "q11", "q8")
	newOrder.MustAnnotateFK(s, "f6", "q11", "q10")
	newOrder.MustAnnotateFK(s, "f5", "q12", "q11")
	newOrder.MustAnnotateFK(s, "f11", "q14", "q13")
	newOrder.MustAnnotateFK(s, "f12", "q14", "q9")
	newOrder.MustAnnotateFK(s, "f8", "q15", "q11")
	newOrder.MustAnnotateFK(s, "f9", "q15", "q13")
	newOrder.MustAnnotateFK(s, "f10", "q15", "q9")

	// OrderStatus := (q16 | q17); q18; q19
	q16 := btp.NewPredSel("q16", "Customer",
		[]string{"c_d_id", "c_last", "c_w_id"},
		[]string{"c_balance", "c_first", "c_id", "c_middle"})
	q17 := btp.NewKeySel("q17", "Customer", "c_balance", "c_first", "c_last", "c_middle")
	q18 := btp.NewPredSel("q18", "Orders",
		[]string{"o_c_id", "o_d_id", "o_w_id"},
		[]string{"o_carrier_id", "o_entry_id", "o_id"})
	q19 := btp.NewPredSel("q19", "Order_Line",
		[]string{"ol_d_id", "ol_o_id", "ol_w_id"},
		[]string{"ol_amount", "ol_delivery_d", "ol_i_id", "ol_quantity", "ol_supply_w_id"})
	orderStatus := &btp.Program{
		Name: "OrderStatus", Abbrev: "OS",
		Body: btp.SeqOf(btp.ChoiceOf(btp.S(q16), btp.S(q17)), btp.S(q18), btp.S(q19)),
	}
	orderStatus.MustAnnotateFK(s, "f7", "q18", "q17")

	// Payment := q20; q21; (q22 | ε); q23; (q24; q25 | ε); q26
	q20 := btp.NewKeyUpd("q20", "Warehouse",
		[]string{"w_city", "w_name", "w_state", "w_street_1", "w_street_2", "w_ytd", "w_zip"},
		[]string{"w_ytd"})
	q21 := btp.NewKeyUpd("q21", "District",
		[]string{"d_city", "d_name", "d_state", "d_street_1", "d_street_2", "d_ytd", "d_zip"},
		[]string{"d_ytd"})
	q22 := btp.NewPredSel("q22", "Customer",
		[]string{"c_d_id", "c_last", "c_w_id"}, []string{"c_id"})
	q23 := btp.NewKeyUpd("q23", "Customer",
		[]string{"c_balance", "c_city", "c_credit", "c_credit_lim", "c_discount", "c_first",
			"c_last", "c_middle", "c_phone", "c_since", "c_state", "c_street_1", "c_street_2",
			"c_ytd_payment", "c_zip"},
		[]string{"c_balance", "c_payment_cnt", "c_ytd_payment"})
	q24 := btp.NewKeySel("q24", "Customer", "c_data")
	q25 := btp.NewKeyUpd("q25", "Customer", nil, []string{"c_data"})
	q26 := btp.NewIns(s, "q26", "History")
	payment := &btp.Program{
		Name: "Payment", Abbrev: "Pay",
		Body: btp.SeqOf(btp.S(q20), btp.S(q21),
			btp.Opt(btp.S(q22)), btp.S(q23),
			btp.Opt(btp.Stmts(q24, q25)), btp.S(q26)),
	}
	payment.MustAnnotateFK(s, "f1", "q21", "q20")
	payment.MustAnnotateFK(s, "f2", "q22", "q21")
	payment.MustAnnotateFK(s, "f2", "q23", "q21")
	payment.MustAnnotateFK(s, "f2", "q24", "q21")
	payment.MustAnnotateFK(s, "f2", "q25", "q21")
	payment.MustAnnotateFK(s, "f3", "q26", "q23")
	payment.MustAnnotateFK(s, "f3", "q26", "q25")
	payment.MustAnnotateFK(s, "f4", "q26", "q21")

	// StockLevel := q27; q28; q29
	q27 := btp.NewKeySel("q27", "District", "d_next_o_id")
	q28 := btp.NewPredSel("q28", "Order_Line",
		[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, []string{"ol_i_id"})
	q29 := btp.NewPredSel("q29", "Stock",
		[]string{"s_quantity", "s_w_id"}, []string{"s_i_id"})
	stockLevel := &btp.Program{
		Name: "StockLevel", Abbrev: "SL",
		Body: btp.Stmts(q27, q28, q29),
	}

	return &Benchmark{
		Name:   "TPC-C",
		Schema: s,
		// Order follows Figure 17 (Delivery first).
		Programs: []*btp.Program{delivery, newOrder, orderStatus, payment, stockLevel},
	}
}
