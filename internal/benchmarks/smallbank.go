package benchmarks

import (
	"repro/internal/btp"
	"repro/internal/relschema"
)

// SmallBankSchema builds the SmallBank schema of Appendix E.1:
//
//	Account(Name, CustomerId), Savings(CustomerId, Balance),
//	Checking(CustomerId, Balance)
//
// Account(CustomerId) is a foreign key referencing both
// Savings(CustomerId) and Checking(CustomerId).
func SmallBankSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("Account", []string{"Name", "CustomerId"}, []string{"Name"})
	s.MustAddRelation("Savings", []string{"CustomerId", "Balance"}, []string{"CustomerId"})
	s.MustAddRelation("Checking", []string{"CustomerId", "Balance"}, []string{"CustomerId"})
	s.MustAddForeignKey("fS", "Account", []string{"CustomerId"}, "Savings", []string{"CustomerId"})
	s.MustAddForeignKey("fC", "Account", []string{"CustomerId"}, "Checking", []string{"CustomerId"})
	return s
}

// SmallBank builds the SmallBank benchmark (Figure 10): five linear
// programs — Amalgamate, Balance, DepositChecking, TransactSavings and
// WriteCheck — over the schema of SmallBankSchema.
func SmallBank() *Benchmark {
	s := SmallBankSchema()

	// Amalgamate := q1; q2; q3; q4; q5
	q1 := btp.NewKeySel("q1", "Account", "CustomerId")
	q2 := btp.NewKeySel("q2", "Account", "CustomerId")
	q3 := btp.NewKeyUpd("q3", "Savings", []string{"Balance"}, []string{"Balance"})
	q4 := btp.NewKeyUpd("q4", "Checking", []string{"Balance"}, []string{"Balance"})
	q5 := btp.NewKeyUpd("q5", "Checking", []string{"Balance"}, []string{"Balance"})
	am := btp.LinearProgram("Amalgamate", q1, q2, q3, q4, q5)
	am.Abbrev = "Am"
	am.MustAnnotateFK(s, "fS", "q1", "q3")
	am.MustAnnotateFK(s, "fC", "q1", "q4")
	am.MustAnnotateFK(s, "fC", "q2", "q5")

	// Balance := q6; q7; q8
	q6 := btp.NewKeySel("q6", "Account", "CustomerId")
	q7 := btp.NewKeySel("q7", "Savings", "Balance")
	q8 := btp.NewKeySel("q8", "Checking", "Balance")
	bal := btp.LinearProgram("Balance", q6, q7, q8)
	bal.Abbrev = "Bal"
	bal.MustAnnotateFK(s, "fS", "q6", "q7")
	bal.MustAnnotateFK(s, "fC", "q6", "q8")

	// DepositChecking := q9; q10
	q9 := btp.NewKeySel("q9", "Account", "CustomerId")
	q10 := btp.NewKeyUpd("q10", "Checking", []string{"Balance"}, []string{"Balance"})
	dc := btp.LinearProgram("DepositChecking", q9, q10)
	dc.Abbrev = "DC"
	dc.MustAnnotateFK(s, "fC", "q9", "q10")

	// TransactSavings := q11; q12
	q11 := btp.NewKeySel("q11", "Account", "CustomerId")
	q12 := btp.NewKeyUpd("q12", "Savings", []string{"Balance"}, []string{"Balance"})
	ts := btp.LinearProgram("TransactSavings", q11, q12)
	ts.Abbrev = "TS"
	ts.MustAnnotateFK(s, "fS", "q11", "q12")

	// WriteCheck := q13; q14; q15; q16
	q13 := btp.NewKeySel("q13", "Account", "CustomerId")
	q14 := btp.NewKeySel("q14", "Savings", "Balance")
	q15 := btp.NewKeySel("q15", "Checking", "Balance")
	// Figure 10 models the final update as a blind write: ReadSet(q16) = {}.
	q16 := btp.NewKeyUpd("q16", "Checking", nil, []string{"Balance"})
	wc := btp.LinearProgram("WriteCheck", q13, q14, q15, q16)
	wc.Abbrev = "WC"
	wc.MustAnnotateFK(s, "fS", "q13", "q14")
	wc.MustAnnotateFK(s, "fC", "q13", "q15")
	wc.MustAnnotateFK(s, "fC", "q13", "q16")

	return &Benchmark{
		Name:   "SmallBank",
		Schema: s,
		// Order follows Figure 10 (Amalgamate first).
		Programs: []*btp.Program{am, bal, dc, ts, wc},
	}
}
