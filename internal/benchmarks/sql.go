package benchmarks

import _ "embed"

// SQL renderings of the paper's benchmark programs in the dialect of
// internal/sqlbtp (Appendix A). Parsing them against the corresponding
// schemas yields BTPs equivalent to the hand-coded definitions in this
// package; sql_test.go cross-validates the two.

// SmallBankSQL is the SQL source of the five SmallBank programs (Figure 9).
//
//go:embed sqlsrc/smallbank.sql
var SmallBankSQL string

// TPCCSQL is the SQL source of the five TPC-C programs (Figures 12–16).
//
//go:embed sqlsrc/tpcc.sql
var TPCCSQL string

// AuctionSQL is the SQL source of the Auction programs (Figure 1).
//
//go:embed sqlsrc/auction.sql
var AuctionSQL string
