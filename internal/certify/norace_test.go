//go:build !race

package certify

// raceEnabled is false outside -race builds; see race_test.go.
const raceEnabled = false
