package certify

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/realize"
	"repro/internal/summary"
	"repro/internal/workload"
)

// fuzzBudget caps the interleaving search per fuzz execution: large enough
// to realize the easy anomalies random workloads produce, small enough
// that one input stays in the millisecond range.
const fuzzBudget = 2_000

// checkSoundness runs the full certification property for one seed:
//
//   - the generator's own contract — every program validates;
//   - soundness of a Robust verdict — a bounded counterexample search over
//     the canonical instantiation (two instances per unfolding) must find
//     no non-serializable MVRC schedule, since robustness promises none
//     exists at any budget;
//   - consistency of a non-robust verdict — certification must complete
//     without error, any certificate must verify on a fresh replay, and an
//     Unrealized outcome must carry one of the documented reasons.
func checkSoundness(t *testing.T, seed int64, opts workload.RandomOptions) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := workload.RandomBTPs(rng, opts)
	for _, p := range w.Programs {
		if err := p.Validate(w.Schema); err != nil {
			t.Fatalf("seed %d: generated program invalid: %v", seed, err)
		}
	}
	sess := analysis.NewSession(w.Schema)
	cfg := analysis.Config{Setting: summary.SettingAttrDepFK, Method: summary.TypeII}
	res, err := sess.CheckCtx(context.Background(), w.Programs, cfg)
	if err != nil {
		t.Fatalf("seed %d: check failed: %v", seed, err)
	}
	if res.Robust {
		ltps := btp.UnfoldAll(w.Programs, 0)
		// Two instances per unfolding, capped so the factorial interleaving
		// space stays inside the budget's reach; a cap never produces a
		// false alarm — any counterexample over fewer instances is still a
		// counterexample.
		instances := append(append([]*btp.LTP{}, ltps...), ltps...)
		if len(instances) > 6 {
			instances = instances[:6]
		}
		rres, rerr := realize.Programs(w.Schema, instances, realize.Options{MaxSchedules: fuzzBudget})
		if rerr != nil {
			t.Fatalf("seed %d: counterexample search errored: %v", seed, rerr)
		}
		if rres.Outcome == realize.Realized {
			t.Fatalf("seed %d: SOUNDNESS VIOLATION — robust verdict but non-serializable schedule exists:\n%s",
				seed, rres.Schedule)
		}
		return
	}
	cres, err := Subset(context.Background(), sess, cfg, w.Programs, Options{MaxSchedules: fuzzBudget})
	if err != nil {
		t.Fatalf("seed %d: certification errored: %v", seed, err)
	}
	switch cres.Status {
	case Certified:
		if err := cres.Certificate.Verify(w.Schema); err != nil {
			t.Fatalf("seed %d: certificate does not verify: %v", seed, err)
		}
	case Unrealized:
		if !strings.HasPrefix(cres.Reason, "no candidate") &&
			!strings.HasPrefix(cres.Reason, "exhausted") &&
			!strings.HasPrefix(cres.Reason, "budget") {
			t.Fatalf("seed %d: undocumented unrealized reason %q", seed, cres.Reason)
		}
	default:
		t.Fatalf("seed %d: non-robust verdict certified as %s", seed, cres.Status)
	}
}

// FuzzRandomWorkloadSoundness is the continuous soundness fuzzer: each
// input seeds the workload generator and runs the full static-verdict ↔
// concrete-schedule consistency property.
func FuzzRandomWorkloadSoundness(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSoundness(t, seed, workload.RandomOptions{})
	})
}

// FuzzCertifyRoundTrip drives certification twice per seed: a certified
// verdict must be reproducible, its certificate must verify on a fresh
// replay, and the certified provenance bit must land in the session's fact
// store exactly once.
func FuzzCertifyRoundTrip(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		w := workload.RandomBTPs(rng, workload.RandomOptions{})
		sess := analysis.NewSession(w.Schema)
		cfg := analysis.Config{Setting: summary.SettingAttrDepFK, Method: summary.TypeII}
		res, err := Subset(context.Background(), sess, cfg, w.Programs, Options{MaxSchedules: fuzzBudget})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Status != Certified {
			return
		}
		if err := res.Certificate.Verify(w.Schema); err != nil {
			t.Fatalf("seed %d: certificate does not verify: %v", seed, err)
		}
		if res.NewlyCertified && sess.Stats().Cores.Certified == 0 {
			t.Fatalf("seed %d: newly-certified core missing from the session stats", seed)
		}
		again, err := Subset(context.Background(), sess, cfg, w.Programs, Options{MaxSchedules: fuzzBudget})
		if err != nil {
			t.Fatalf("seed %d: re-certification errored: %v", seed, err)
		}
		if again.Status != Certified {
			t.Fatalf("seed %d: certification not reproducible: %s (reason %q)", seed, again.Status, again.Reason)
		}
		if again.NewlyCertified {
			t.Fatalf("seed %d: certified bit set twice for one core", seed)
		}
	})
}

// TestRandomWorkloadSoundness500 is the acceptance property: 500 seeds
// through the soundness check, no violations. Run with -race in CI; the
// session internals (fact logs, antichain epochs) are exercised
// concurrently by the enumeration pool on every seed.
func TestRandomWorkloadSoundness500(t *testing.T) {
	if testing.Short() {
		t.Skip("500-seed property skipped in -short mode")
	}
	for seed := int64(1); seed <= 500; seed++ {
		checkSoundness(t, seed, workload.RandomOptions{})
	}
}

// TestRandomWorkloadGeneratorShapes pins the generator's variety: across a
// few hundred seeds it must emit FK annotations, non-linear structure and
// predicate statements — otherwise the fuzz lane silently stops covering
// the paths it exists for.
func TestRandomWorkloadGeneratorShapes(t *testing.T) {
	var fks, structured, preds int
	for seed := int64(1); seed <= 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := workload.RandomBTPs(rng, workload.RandomOptions{})
		for _, p := range w.Programs {
			if len(p.FKs) > 0 {
				fks++
			}
			for _, q := range p.Statements() {
				if !q.Type.IsKeyBased() {
					preds++
				}
			}
			if strings.ContainsAny(p.String(), "|(") {
				structured++
			}
		}
	}
	if fks == 0 || preds == 0 || structured == 0 {
		t.Fatalf("generator coverage collapsed: %d FK-annotated programs, %d predicate statements, %d structured bodies",
			fks, preds, structured)
	}
}
