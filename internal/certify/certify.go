// Package certify closes the loop from static verdict to observable
// anomaly. Algorithm 2 is sound but incomplete: a non-robust verdict means
// a dangerous cycle exists in the summary graph, not that a concrete
// non-serializable execution does. The pipeline here takes any non-robust
// subset verdict, derives candidate instantiations from the witness cycle
// (internal/realize), searches their MVRC interleaving spaces
// (internal/enumerate), replays the found schedule through the concrete
// MVCC engine (internal/replay) and returns a machine-checkable
// Certificate — the abstract schedule, the engine-recorded execution and a
// conflict cycle in its serialization graph — or a deterministic
// Unrealized outcome naming the reason.
//
// A certified verdict flows back into the analysis session as a certified
// non-robust core (analysis.Session.CertifyCore): the provenance bit rides
// the same fact logs, snapshots and delta feeds as the cores themselves,
// so later enumerations and stats report how many of their pruning facts
// are backed by replayed executions rather than static reasoning alone.
package certify

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/realize"
	"repro/internal/relschema"
	"repro/internal/replay"
	"repro/internal/schedule"
	"repro/internal/seg"
	"repro/internal/summary"
)

// Options bound one certification attempt.
type Options struct {
	// MaxSchedules caps each candidate's interleaving search (0 = the
	// enumerate default).
	MaxSchedules int
	// Parallelism bounds the candidate-level search fan-out (0 =
	// GOMAXPROCS).
	Parallelism int
}

// Status classifies a certification attempt.
type Status int

// Statuses.
const (
	// Certified: a candidate instantiation admits an MVRC schedule whose
	// replay on the engine is not conflict serializable; the Certificate
	// holds the evidence.
	Certified Status = iota
	// Robust: the static analysis accepts the subset — there is nothing to
	// certify.
	Robust
	// Unrealized: no candidate realized the witness; Reason says whether
	// the searches were exhaustive (possible false negative of the static
	// analysis) or budget-bounded, or whether no instantiation applied.
	Unrealized
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Certified:
		return "certified"
	case Robust:
		return "robust"
	default:
		return "unrealized"
	}
}

// Deterministic Unrealized reasons. Reason strings start with one of these
// prefixes so callers (and the CI smoke test) can dispatch without parsing
// free text.
const (
	ReasonNoInstantiation = "no candidate instantiation applies"
	ReasonExhausted       = "exhausted: every candidate interleaving space searched, none non-serializable"
	ReasonBudget          = "budget: interleaving budget exhausted before a counterexample was found"
)

// Certificate is the machine-checkable artifact of a certified verdict.
// Verify re-derives everything from Schedule alone; the remaining fields
// record how the schedule was found and what the engine observed.
type Certificate struct {
	// Candidate names the instantiation strategy that found the schedule
	// ("canonical", "guided", or their "+extra" variants).
	Candidate string
	// Instances labels the instantiated transactions.
	Instances []string
	// Schedule is the abstract MVRC-allowed, non-serializable schedule the
	// search produced.
	Schedule *schedule.Schedule
	// Recorded is the schedule the MVCC engine's recorder captured while
	// replaying Schedule.
	Recorded *schedule.Schedule
	// Graph is the serialization graph of the recorded execution.
	Graph *seg.Graph
	// Cycle is one conflict cycle in Graph — the replayed anomaly.
	Cycle seg.Cycle
}

// Verify re-checks the certificate from scratch: the schedule must be
// allowed under MVRC, and an independent replay on a fresh engine must
// again be non-serializable with a findable conflict cycle. It depends
// only on Schedule, so a certificate round-tripped through serialization
// (or handed over by an untrusted prover) is checkable without trusting
// the recorded fields.
func (c *Certificate) Verify(schema *relschema.Schema) error {
	if c == nil || c.Schedule == nil {
		return errors.New("certify: certificate has no schedule")
	}
	if !c.Schedule.AllowedUnderMVRC() {
		return errors.New("certify: schedule is not allowed under MVRC")
	}
	rep, err := replay.Run(schema, c.Schedule)
	if err != nil {
		return fmt.Errorf("certify: replay failed: %w", err)
	}
	if rep.Serializable {
		return errors.New("certify: replayed execution is conflict serializable")
	}
	if _, ok := rep.Graph.FindCycle(); !ok {
		return errors.New("certify: replayed execution has no conflict cycle")
	}
	return nil
}

// Result reports one certification attempt.
type Result struct {
	Status Status
	// Core lists the short names of the programs on the witness cycle (the
	// program set the certificate, if any, speaks about), sorted. Empty
	// when Status == Robust.
	Core []string
	// Certificate holds the evidence when Status == Certified.
	Certificate *Certificate
	// Reason explains an Unrealized outcome; it starts with one of the
	// Reason* prefixes.
	Reason string
	// Candidates counts the instantiation strategies that were searched.
	Candidates int
	// Explored counts examined interleavings across all candidates.
	Explored int
	// NewlyCertified reports whether the session's fact store gained the
	// certified bit on this core (false when it was already certified, or
	// when the witness LTPs carry no origin programs to certify).
	NewlyCertified bool
}

// Subset certifies one program subset: it runs the static analysis through
// the session and, on a non-robust verdict, tries to realize the witness
// cycle into a replayed non-serializable execution. A certified core is
// recorded back into the session (Session.CertifyCore), so the provenance
// survives in snapshots and delta feeds.
func Subset(ctx context.Context, sess *analysis.Session, cfg analysis.Config, programs []*btp.Program, opts Options) (*Result, error) {
	res, err := sess.CheckCtx(ctx, programs, cfg)
	if err != nil {
		return nil, err
	}
	if res.Robust {
		return &Result{Status: Robust}, nil
	}
	if res.Witness == nil {
		return nil, errors.New("certify: non-robust verdict without a witness")
	}
	return witness(ctx, sess, cfg, res.Witness, opts)
}

// witness drives the realize→search→replay pipeline for one witness cycle.
func witness(ctx context.Context, sess *analysis.Session, cfg analysis.Config, w *summary.Witness, opts Options) (*Result, error) {
	schema := sess.Schema()
	out := &Result{Status: Unrealized, Core: coreNames(w)}

	// Candidate derivation: both instantiation strategies at the cycle's
	// own multiplicity and widened by one extra instance per distinct
	// program (single-edge cycles often need the second instance — e.g.
	// two WriteChecks racing on one customer). Witnesses from an FK-less
	// analysis setting must be realized over the same overapproximated
	// space, so the annotations are ignored exactly when the setting
	// ignored them.
	ropts := realize.Options{MaxSchedules: opts.MaxSchedules, IgnoreFKs: !cfg.Setting.UseForeignKeys}
	type namedCandidate struct {
		name      string
		instances []enumerate.Instance
	}
	var cands []namedCandidate
	var notes []string
	for _, extra := range []bool{false, true} {
		o := ropts
		o.ExtraInstances = extra
		suffix := ""
		if extra {
			suffix = "+extra"
		}
		set, errs := realize.CandidateSets(schema, w, o)
		for _, e := range errs {
			notes = append(notes, e.Error()+suffix)
		}
		for _, c := range set {
			// Pre-flight every instance: a candidate whose assignment
			// violates the strict form or an FK annotation is dropped here
			// (with its reason recorded) instead of aborting the whole
			// parallel sweep inside the search.
			ok := true
			for id, inst := range c.Instances {
				if _, ierr := instantiate.Instantiate(schema, inst.LTP, id+1, inst.Assignment); ierr != nil {
					notes = append(notes, fmt.Sprintf("%s%s: %v", c.Name, suffix, ierr))
					ok = false
					break
				}
			}
			if ok {
				cands = append(cands, namedCandidate{name: c.Name + suffix, instances: c.Instances})
			}
		}
	}
	out.Candidates = len(cands)
	if len(cands) == 0 {
		out.Reason = ReasonNoInstantiation
		if len(notes) > 0 {
			out.Reason += ": " + strings.Join(notes, "; ")
		}
		return out, nil
	}

	lists := make([][]enumerate.Instance, len(cands))
	for i, c := range cands {
		lists[i] = c.instances
	}
	search, winner, err := enumerate.FindAnyCounterexampleCtx(ctx, schema, lists, opts.Parallelism, enumerate.Options{MaxSchedules: opts.MaxSchedules})
	if err != nil {
		return nil, err
	}
	out.Explored = search.Explored
	if !search.Found {
		if search.Exhausted {
			out.Reason = ReasonExhausted
		} else {
			out.Reason = ReasonBudget
		}
		return out, nil
	}

	// Replay the abstract counterexample on the concrete engine. The
	// recorded dependency structure is at least as rich as the abstract one
	// on the replayed tuples, so a serializable replay would mean the
	// abstract search and the engine disagree about the anomaly — a
	// soundness bug, not an Unrealized outcome.
	rep, err := replay.Run(schema, search.Schedule)
	if err != nil {
		return nil, fmt.Errorf("certify: replay of the found schedule failed: %w", err)
	}
	if rep.Serializable {
		return nil, fmt.Errorf("certify: abstract counterexample replayed serializable:\n%s", search.Schedule)
	}
	cycle, ok := rep.Graph.FindCycle()
	if !ok {
		return nil, errors.New("certify: non-serializable replay without a findable cycle")
	}

	cert := &Certificate{
		Candidate: cands[winner].name,
		Schedule:  search.Schedule,
		Recorded:  rep.Recorded,
		Graph:     rep.Graph,
		Cycle:     cycle,
	}
	for _, inst := range cands[winner].instances {
		cert.Instances = append(cert.Instances, inst.LTP.Name)
	}
	out.Status = Certified
	out.Certificate = cert
	if core, ok := corePrograms(w); ok {
		out.NewlyCertified = sess.CertifyCore(cfg, core)
	}
	return out, nil
}

// corePrograms collects the distinct origin programs on the witness cycle;
// ok is false when any LTP was built directly (no origin to certify).
func corePrograms(w *summary.Witness) ([]*btp.Program, bool) {
	var out []*btp.Program
	seen := map[*btp.Program]bool{}
	for _, e := range w.Cycle {
		p := e.From.Origin
		if p == nil {
			return nil, false
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out, len(out) > 0
}

// coreNames lists the short names of the programs on the witness cycle,
// sorted; LTPs without origin contribute their own names.
func coreNames(w *summary.Witness) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range w.Cycle {
		n := e.From.Name
		if e.From.Origin != nil {
			n = e.From.Origin.ShortName()
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
