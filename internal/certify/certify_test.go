package certify

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/summary"
)

func programsOf(t *testing.T, b *benchmarks.Benchmark, names ...string) []*btp.Program {
	t.Helper()
	var out []*btp.Program
	for _, n := range names {
		p := b.Program(n)
		if p == nil {
			t.Fatalf("no program %q", n)
		}
		out = append(out, p)
	}
	return out
}

// TestCertifySmallBankBalAm certifies the canonical anomaly of the paper:
// {Balance, Amalgamate} is non-robust under attr+FK and realizes into a
// replayed non-serializable execution. The verdict must feed the certified
// bit back into the session exactly once.
func TestCertifySmallBankBalAm(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	cfg := analysis.DefaultConfig()
	ps := programsOf(t, b, "Balance", "Amalgamate")

	res, err := Subset(context.Background(), sess, cfg, ps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Certified {
		t.Fatalf("status = %s (reason %q), want certified", res.Status, res.Reason)
	}
	if res.Certificate == nil {
		t.Fatal("certified result without a certificate")
	}
	if err := res.Certificate.Verify(b.Schema); err != nil {
		t.Fatalf("certificate does not verify: %v", err)
	}
	if len(res.Certificate.Cycle.Deps) == 0 {
		t.Fatal("certificate cycle is empty")
	}
	if !res.NewlyCertified {
		t.Fatal("first certification did not mark the core certified")
	}
	if got := sess.Stats().Cores.Certified; got != 1 {
		t.Fatalf("session reports %d certified cores, want 1", got)
	}

	// Re-certifying the same subset finds the bit already set.
	again, err := Subset(context.Background(), sess, cfg, ps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != Certified || again.NewlyCertified {
		t.Fatalf("re-certification: status %s, newly %v — want certified, false",
			again.Status, again.NewlyCertified)
	}
}

// TestCertifyRobustSubset: a robust subset short-circuits before any
// realization work.
func TestCertifyRobustSubset(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	res, err := Subset(context.Background(), sess, analysis.DefaultConfig(),
		programsOf(t, b, "Balance"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Robust {
		t.Fatalf("status = %s, want robust", res.Status)
	}
	if res.Certificate != nil || res.Candidates != 0 {
		t.Fatal("robust result must carry no realization state")
	}
}

// TestCertifyBudgetReason: a one-schedule budget cannot find anything and
// must report the deterministic budget reason.
func TestCertifyBudgetReason(t *testing.T) {
	b := benchmarks.SmallBank()
	sess := analysis.NewSession(b.Schema)
	res, err := Subset(context.Background(), sess, analysis.DefaultConfig(),
		programsOf(t, b, "Balance", "Amalgamate"), Options{MaxSchedules: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unrealized {
		t.Fatalf("status = %s, want unrealized under a 1-schedule budget", res.Status)
	}
	if !strings.HasPrefix(res.Reason, "budget") {
		t.Fatalf("reason %q does not carry the budget prefix", res.Reason)
	}
}

// TestCertifyAllBenchmarksAllSettings is the pipeline's acceptance sweep:
// for SmallBank, Auction and TPC-C under each of the four analysis
// settings, every statically non-robust subset must either produce a
// verifying certificate or a deterministic Unrealized reason — never an
// error. The interleaving budget is kept modest; exceeding it is exactly
// the documented "budget" outcome.
func TestCertifyAllBenchmarksAllSettings(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance sweep skipped in -short mode")
	}
	// Modest per-candidate budget: large subsets overrun it and land on
	// the documented "budget" outcome, which is exactly what the sweep
	// verifies; raising it only grows certificates for slow cases. Under
	// the race detector replay is ~10x slower, so the budget shrinks —
	// more subsets land on the (equally valid) budget outcome, and the
	// sweep stays inside the per-package test timeout.
	maxSchedules := 10_000
	if raceEnabled {
		maxSchedules = 500
	}
	for _, bench := range []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.Auction(), benchmarks.TPCC(),
	} {
		sess := analysis.NewSession(bench.Schema)
		for _, setting := range summary.AllSettings {
			cfg := analysis.Config{Setting: setting, Method: summary.TypeII}
			n := len(bench.Programs)
			for mask := 1; mask < 1<<n; mask++ {
				var subset []*btp.Program
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						subset = append(subset, bench.Programs[i])
					}
				}
				name := fmt.Sprintf("%s/%s/mask%d", bench.Name, setting, mask)
				res, err := Subset(context.Background(), sess, cfg, subset, Options{MaxSchedules: maxSchedules})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				switch res.Status {
				case Robust:
				case Certified:
					if err := res.Certificate.Verify(bench.Schema); err != nil {
						t.Fatalf("%s: certificate does not verify: %v", name, err)
					}
				case Unrealized:
					if !strings.HasPrefix(res.Reason, "no candidate") &&
						!strings.HasPrefix(res.Reason, "exhausted") &&
						!strings.HasPrefix(res.Reason, "budget") {
						t.Fatalf("%s: non-deterministic unrealized reason %q", name, res.Reason)
					}
				}
			}
		}
	}
}
