//go:build race

package certify

// raceEnabled lets long-running tests shrink their interleaving budgets
// under the race detector, whose instrumentation slows schedule replay by
// roughly an order of magnitude. Tests must only scale budgets with it,
// never change what they assert.
const raceEnabled = true
