// Package schedule implements the multiversion schedule formalism of
// Section 3: operations over tuples and relations (reads, writes, inserts,
// deletes, predicate reads, commits), transactions with atomic chunks,
// multiversion schedules with version functions and version order, and the
// isolation-level checks of Section 3.5 (dirty writes, read-last-committed,
// allowed under MVRC).
package schedule

import (
	"fmt"

	"repro/internal/relschema"
)

// TupleID identifies an abstract tuple: its relation and a name unique
// within that relation (the paper's t ∈ I(R)).
type TupleID struct {
	Rel  string
	Name string
}

// String renders the tuple as "Rel:name".
func (t TupleID) String() string { return t.Rel + ":" + t.Name }

// Tuple constructs a TupleID.
func Tuple(rel, name string) TupleID { return TupleID{Rel: rel, Name: name} }

// OpKind enumerates the operation kinds of Section 3.2.
type OpKind int

// Operation kinds. Write operations are OpWrite, OpInsert and OpDelete;
// read operations are OpRead; OpPredRead evaluates a predicate over a whole
// relation; OpCommit terminates a transaction.
const (
	OpRead OpKind = iota
	OpWrite
	OpInsert
	OpDelete
	OpPredRead
	OpCommit
)

// String renders the kind in the paper's letter notation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpInsert:
		return "I"
	case OpDelete:
		return "D"
	case OpPredRead:
		return "PR"
	case OpCommit:
		return "C"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsWrite reports whether the kind is a write operation (W, I or D).
func (k OpKind) IsWrite() bool { return k == OpWrite || k == OpInsert || k == OpDelete }

// Op is one operation of a transaction.
type Op struct {
	// Txn is the owning transaction; set by Transaction construction.
	Txn *Transaction
	// Index is the operation's position within its transaction.
	Index int
	// Kind is the operation kind.
	Kind OpKind
	// TupleRef is the tuple the operation is on; zero for predicate reads
	// and commits.
	TupleRef TupleID
	// Rel is the relation a predicate read ranges over; for tuple
	// operations it equals TupleRef.Rel.
	Rel string
	// Attrs is Attr(o): the attributes read or written. For I- and
	// D-operations this is the full attribute set of the relation; for
	// predicate reads, the attributes the predicate inspects.
	Attrs relschema.AttrSet
}

// IsWrite reports whether the operation is a write (W, I or D).
func (o *Op) IsWrite() bool { return o.Kind.IsWrite() }

// IsRead reports whether the operation is a plain read.
func (o *Op) IsRead() bool { return o.Kind == OpRead }

// IsPredRead reports whether the operation is a predicate read.
func (o *Op) IsPredRead() bool { return o.Kind == OpPredRead }

// String renders the operation in the paper's notation, e.g. "R1[t]".
func (o *Op) String() string {
	id := ""
	if o.Txn != nil {
		id = fmt.Sprint(o.Txn.ID)
	}
	switch o.Kind {
	case OpCommit:
		return "C" + id
	case OpPredRead:
		return fmt.Sprintf("PR%s[%s]", id, o.Rel)
	default:
		return fmt.Sprintf("%s%s[%s]", o.Kind, id, o.TupleRef)
	}
}

// Chunk is an atomic chunk (a, b): the operations of one transaction with
// indices in [From, To] may not be interleaved by other transactions
// (Section 3.3).
type Chunk struct {
	From, To int
}

// Transaction is a sequence of operations followed by a commit, together
// with its atomic chunks.
type Transaction struct {
	// ID is the transaction's unique identifier within a schedule.
	ID int
	// Ops are the operations in program order; the last one is the commit.
	Ops []*Op
	// Chunks are the atomic chunks, non-overlapping and in order.
	Chunks []Chunk
	// Label is an optional human-readable tag (e.g. the originating
	// program name).
	Label string
}

// NewTransaction creates an empty transaction with the given id.
func NewTransaction(id int) *Transaction {
	return &Transaction{ID: id}
}

// add appends an operation and returns it.
func (t *Transaction) add(kind OpKind, tuple TupleID, rel string, attrs relschema.AttrSet) *Op {
	o := &Op{Txn: t, Index: len(t.Ops), Kind: kind, TupleRef: tuple, Rel: rel, Attrs: attrs}
	t.Ops = append(t.Ops, o)
	return o
}

// Read appends R[t] observing the given attributes.
func (t *Transaction) Read(tuple TupleID, attrs ...string) *Op {
	return t.add(OpRead, tuple, tuple.Rel, relschema.NewAttrSet(attrs...))
}

// ReadSet appends R[t] with a prebuilt attribute set.
func (t *Transaction) ReadSet(tuple TupleID, attrs relschema.AttrSet) *Op {
	return t.add(OpRead, tuple, tuple.Rel, attrs)
}

// Write appends W[t] modifying the given attributes.
func (t *Transaction) Write(tuple TupleID, attrs ...string) *Op {
	return t.add(OpWrite, tuple, tuple.Rel, relschema.NewAttrSet(attrs...))
}

// WriteSet appends W[t] with a prebuilt attribute set.
func (t *Transaction) WriteSet(tuple TupleID, attrs relschema.AttrSet) *Op {
	return t.add(OpWrite, tuple, tuple.Rel, attrs)
}

// Insert appends I[t]; attrs should be the full attribute set of the
// relation (callers typically pass schema.Attrs(rel)).
func (t *Transaction) Insert(tuple TupleID, attrs relschema.AttrSet) *Op {
	return t.add(OpInsert, tuple, tuple.Rel, attrs)
}

// Delete appends D[t]; attrs should be the full attribute set.
func (t *Transaction) Delete(tuple TupleID, attrs relschema.AttrSet) *Op {
	return t.add(OpDelete, tuple, tuple.Rel, attrs)
}

// PredRead appends PR[rel] evaluating a predicate over the given attributes.
func (t *Transaction) PredRead(rel string, attrs ...string) *Op {
	return t.add(OpPredRead, TupleID{}, rel, relschema.NewAttrSet(attrs...))
}

// PredReadSet appends PR[rel] with a prebuilt attribute set.
func (t *Transaction) PredReadSet(rel string, attrs relschema.AttrSet) *Op {
	return t.add(OpPredRead, TupleID{}, rel, attrs)
}

// Commit appends the commit operation. It must be called exactly once, last.
func (t *Transaction) Commit() *Op {
	return t.add(OpCommit, TupleID{}, "", nil)
}

// AddChunk marks ops [from..to] (inclusive indices) as an atomic chunk.
func (t *Transaction) AddChunk(from, to int) {
	t.Chunks = append(t.Chunks, Chunk{From: from, To: to})
}

// CommitOp returns the transaction's commit operation, or nil if absent.
func (t *Transaction) CommitOp() *Op {
	for i := len(t.Ops) - 1; i >= 0; i-- {
		if t.Ops[i].Kind == OpCommit {
			return t.Ops[i]
		}
	}
	return nil
}

// Validate checks structural constraints: exactly one commit, last; chunks
// well-formed, ordered and non-overlapping. Multiple reads or writes of the
// same tuple are permitted — the paper notes all results carry over to that
// more general setting, and real executions (e.g. TPC-C Payment) exhibit it.
func (t *Transaction) Validate() error {
	if len(t.Ops) == 0 {
		return fmt.Errorf("schedule: transaction %d has no operations", t.ID)
	}
	for i, o := range t.Ops {
		if o.Index != i {
			return fmt.Errorf("schedule: transaction %d: operation %d has index %d", t.ID, i, o.Index)
		}
		if o.Kind == OpCommit && i != len(t.Ops)-1 {
			return fmt.Errorf("schedule: transaction %d: commit is not the last operation", t.ID)
		}
	}
	if t.Ops[len(t.Ops)-1].Kind != OpCommit {
		return fmt.Errorf("schedule: transaction %d does not end with a commit", t.ID)
	}
	prev := -1
	for _, c := range t.Chunks {
		if c.From < 0 || c.To >= len(t.Ops) || c.From > c.To {
			return fmt.Errorf("schedule: transaction %d: malformed chunk [%d,%d]", t.ID, c.From, c.To)
		}
		if c.From <= prev {
			return fmt.Errorf("schedule: transaction %d: chunks overlap or are out of order", t.ID)
		}
		prev = c.To
	}
	return nil
}

// ValidateStrict additionally enforces the paper's simplifying assumption
// of Section 3.3: at most one read and at most one write operation per
// tuple. Program instantiation (internal/instantiate) produces transactions
// in this strict form.
func (t *Transaction) ValidateStrict() error {
	if err := t.Validate(); err != nil {
		return err
	}
	reads := map[TupleID]bool{}
	writes := map[TupleID]bool{}
	for _, o := range t.Ops {
		switch {
		case o.IsRead():
			if reads[o.TupleRef] {
				return fmt.Errorf("schedule: transaction %d reads tuple %s twice", t.ID, o.TupleRef)
			}
			reads[o.TupleRef] = true
		case o.IsWrite():
			if writes[o.TupleRef] {
				return fmt.Errorf("schedule: transaction %d writes tuple %s twice", t.ID, o.TupleRef)
			}
			writes[o.TupleRef] = true
		}
	}
	return nil
}
