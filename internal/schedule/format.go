package schedule

import (
	"fmt"
	"strings"
)

// Format renders the schedule in the paper's Figure 3 layout: one row per
// transaction, operations placed in global-order columns, so interleavings
// are visible at a glance:
//
//	T1: R1[t1] W1[t1]        R1[u1] ...            C1
//	T2:               R2[t1]        ... W2[u1]  C2
func (s *Schedule) Format() string {
	cols := make([]string, len(s.Order))
	width := make([]int, len(s.Order))
	for i, op := range s.Order {
		cols[i] = op.String()
		width[i] = len([]rune(cols[i]))
	}
	var b strings.Builder
	for _, t := range s.Txns {
		label := fmt.Sprintf("T%d", t.ID)
		if t.Label != "" {
			label = fmt.Sprintf("T%d(%s)", t.ID, t.Label)
		}
		fmt.Fprintf(&b, "%-24s", label+":")
		for i, op := range s.Order {
			cell := ""
			if op.Txn == t {
				cell = cols[i]
			}
			fmt.Fprintf(&b, " %-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
