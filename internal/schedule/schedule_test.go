package schedule

import (
	"strings"
	"testing"

	"repro/internal/relschema"
)

func testSchema() *relschema.Schema {
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"k", "a", "b"}, []string{"k"})
	return s
}

func TestTransactionConstruction(t *testing.T) {
	txn := NewTransaction(1)
	r := txn.Read(Tuple("R", "x"), "a")
	w := txn.Write(Tuple("R", "x"), "a")
	txn.AddChunk(r.Index, w.Index)
	pr := txn.PredRead("R", "b")
	rr := txn.Read(Tuple("R", "y"), "b")
	txn.AddChunk(pr.Index, rr.Index)
	c := txn.Commit()
	if err := txn.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := txn.ValidateStrict(); err != nil {
		t.Fatal(err)
	}
	if txn.CommitOp() != c {
		t.Error("CommitOp")
	}
	if got := r.String(); got != "R1[R:x]" {
		t.Errorf("op rendering = %q", got)
	}
	if got := pr.String(); got != "PR1[R]" {
		t.Errorf("pred read rendering = %q", got)
	}
	if got := c.String(); got != "C1" {
		t.Errorf("commit rendering = %q", got)
	}
}

func TestTransactionValidation(t *testing.T) {
	// No commit.
	txn := NewTransaction(1)
	txn.Read(Tuple("R", "x"), "a")
	if err := txn.Validate(); err == nil {
		t.Error("missing commit accepted")
	}
	// Commit not last.
	txn = NewTransaction(2)
	txn.Commit()
	txn.Read(Tuple("R", "x"), "a")
	if err := txn.Validate(); err == nil {
		t.Error("commit-not-last accepted")
	}
	// Double read rejected only by strict validation.
	txn = NewTransaction(3)
	txn.Read(Tuple("R", "x"), "a")
	txn.Read(Tuple("R", "x"), "b")
	txn.Commit()
	if err := txn.Validate(); err != nil {
		t.Errorf("relaxed validation rejected double read: %v", err)
	}
	if err := txn.ValidateStrict(); err == nil {
		t.Error("strict validation accepted double read")
	}
	// Overlapping chunks.
	txn = NewTransaction(4)
	txn.Read(Tuple("R", "x"), "a")
	txn.Write(Tuple("R", "x"), "a")
	txn.Commit()
	txn.AddChunk(0, 1)
	txn.AddChunk(1, 2)
	if err := txn.Validate(); err == nil {
		t.Error("overlapping chunks accepted")
	}
	// Malformed chunk.
	txn = NewTransaction(5)
	txn.Read(Tuple("R", "x"), "a")
	txn.Commit()
	txn.AddChunk(1, 0)
	if err := txn.Validate(); err == nil {
		t.Error("inverted chunk accepted")
	}
	// Empty transaction.
	if err := NewTransaction(6).Validate(); err == nil {
		t.Error("empty transaction accepted")
	}
}

// serialOrder concatenates the transactions' operations.
func serialOrder(txns ...*Transaction) []*Op {
	var out []*Op
	for _, t := range txns {
		out = append(out, t.Ops...)
	}
	return out
}

func TestFromOrderRejectsMalformedInput(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	t1.Read(Tuple("R", "x"), "a")
	t1.Commit()
	t2 := NewTransaction(2)
	t2.Write(Tuple("R", "x"), "a")
	t2.Commit()

	// Missing operation.
	if _, err := FromOrder(s, []*Transaction{t1, t2}, t1.Ops); err == nil {
		t.Error("short order accepted")
	}
	// Duplicated operation.
	order := []*Op{t1.Ops[0], t1.Ops[0], t1.Ops[1], t2.Ops[0]}
	if _, err := FromOrder(s, []*Transaction{t1, t2}, order); err == nil {
		t.Error("duplicate op accepted")
	}
	// Program order violated.
	order = []*Op{t1.Ops[1], t1.Ops[0], t2.Ops[0], t2.Ops[1]}
	if _, err := FromOrder(s, []*Transaction{t1, t2}, order); err == nil {
		t.Error("program-order violation accepted")
	}
	// Foreign operation.
	t3 := NewTransaction(3)
	t3.Commit()
	order = []*Op{t1.Ops[0], t1.Ops[1], t2.Ops[0], t3.Ops[0]}
	if _, err := FromOrder(s, []*Transaction{t1, t2}, order); err == nil {
		t.Error("foreign op accepted")
	}
}

func TestReadLastCommittedSimulation(t *testing.T) {
	s := testSchema()
	// T1 writes x then commits; T2 reads x before and after the commit.
	t1 := NewTransaction(1)
	w := t1.Write(Tuple("R", "x"), "a")
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	r1 := t2.Read(Tuple("R", "x"), "a")
	r2 := t2.Read(Tuple("R", "y"), "a") // padding read, different tuple
	c2 := t2.Commit()

	order := []*Op{r1.Txn.Ops[0], w, c1, r2, c2}
	// Order: R2[x] W1[x] C1 R2[y] C2.
	sch, err := FromOrder(s, []*Transaction{t1, t2}, order)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.VR[r1]; got != 1 {
		t.Errorf("R2[x] before commit must read initial version 1, got %d", got)
	}
	if !sch.IsReadLastCommitted() {
		t.Error("simulated schedule must be RLC")
	}
	if !sch.AllowedUnderMVRC() {
		t.Error("schedule should be allowed under MVRC")
	}
	// Reversed: commit first, then read observes version 2.
	order = []*Op{w, c1, r1.Txn.Ops[0], r2, c2}
	sch, err = FromOrder(s, []*Transaction{t1, t2}, order)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.VR[r1]; got != 2 {
		t.Errorf("R2[x] after commit must read version 2, got %d", got)
	}
}

func TestDirtyWriteDetection(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	w1 := t1.Write(Tuple("R", "x"), "a")
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	w2 := t2.Write(Tuple("R", "x"), "a")
	c2 := t2.Commit()

	// W1 W2 C1 C2: W2 overwrites W1 before C1 — dirty.
	sch, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{w1, w2, c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	dirty, b, a := sch.ExhibitsDirtyWrite()
	if !dirty || b != w1 || a != w2 {
		t.Errorf("dirty write not detected: %t %v %v", dirty, b, a)
	}
	if sch.AllowedUnderMVRC() {
		t.Error("dirty schedule allowed under MVRC")
	}
	// W1 C1 W2 C2: clean.
	sch, err = FromOrder(s, []*Transaction{t1, t2}, []*Op{w1, c1, w2, c2})
	if err != nil {
		t.Fatal(err)
	}
	if dirty, _, _ := sch.ExhibitsDirtyWrite(); dirty {
		t.Error("clean schedule flagged dirty")
	}
	if !sch.AllowedUnderMVRC() {
		t.Error("clean schedule rejected")
	}
}

func TestChunkInterleavingDetection(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	r := t1.Read(Tuple("R", "x"), "a")
	w := t1.Write(Tuple("R", "x"), "a")
	t1.AddChunk(r.Index, w.Index)
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	r2 := t2.Read(Tuple("R", "y"), "a")
	c2 := t2.Commit()

	sch, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{r, r2, w, c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if sch.ChunksRespected() {
		t.Error("interleaved chunk not detected")
	}
	if sch.AllowedUnderMVRC() {
		t.Error("chunk-violating schedule allowed")
	}
	sch, err = FromOrder(s, []*Transaction{t1, t2}, []*Op{r, w, r2, c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if !sch.ChunksRespected() {
		t.Error("respected chunk flagged")
	}
}

func TestInsertDeleteVersions(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	ins := t1.Insert(Tuple("R", "x"), s.Attrs("R"))
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	del := t2.Delete(Tuple("R", "x"), s.Attrs("R"))
	c2 := t2.Commit()

	sch, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{ins, c1, del, c2})
	if err != nil {
		t.Fatal(err)
	}
	x := Tuple("R", "x")
	if sch.Init[x] != VersionUnborn {
		t.Errorf("inserted tuple must start unborn, init = %d", sch.Init[x])
	}
	if !sch.IsDeadVersion(x, sch.VW[del]) {
		t.Error("delete must create the dead version")
	}
	if sch.IsVisible(x, sch.VW[del]) || sch.IsVisible(x, VersionUnborn) {
		t.Error("unborn/dead versions must not be visible")
	}
	if !sch.IsVisible(x, sch.VW[ins]) {
		t.Error("inserted version must be visible")
	}
	if len(sch.Tuples()) != 1 {
		t.Errorf("Tuples = %v", sch.Tuples())
	}
}

func TestPredicateReadVersionSets(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	w := t1.Write(Tuple("R", "x"), "a")
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	pr := t2.PredRead("R", "a")
	r := t2.Read(Tuple("R", "x"), "a")
	t2.AddChunk(pr.Index, r.Index)
	c2 := t2.Commit()

	// Predicate read before the write commits: sees version 1.
	sch, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{w, pr, r, c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.VSet[pr][Tuple("R", "x")]; got != 1 {
		t.Errorf("Vset before commit = %d, want 1", got)
	}
	// After the commit: sees version 2.
	sch, err = FromOrder(s, []*Transaction{t1, t2}, []*Op{w, c1, pr, r, c2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.VSet[pr][Tuple("R", "x")]; got != 2 {
		t.Errorf("Vset after commit = %d, want 2", got)
	}
}

func TestSerialAndSingleVersionPredicates(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	r1 := t1.Read(Tuple("R", "x"), "a")
	c1 := t1.Commit()
	t2 := NewTransaction(2)
	w2 := t2.Write(Tuple("R", "x"), "a")
	c2 := t2.Commit()

	serial, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{r1, c1, w2, c2})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.IsSerial() {
		t.Error("serial schedule not recognized")
	}
	if !serial.IsSingleVersion() {
		t.Error("serial RLC schedule should be single-version")
	}
	interleaved, err := FromOrder(s, []*Transaction{t1, t2}, []*Op{w2, r1, c1, c2}) // wait: program order per txn kept
	if err != nil {
		t.Fatal(err)
	}
	if interleaved.IsSerial() {
		// W2 R1 C1 C2 interleaves T2, T1, T2.
		t.Error("interleaved schedule recognized as serial")
	}
	// R1 reads version 1 although W2 already created version 2 (not
	// committed): multi-version behaviour, not single-version.
	if interleaved.IsSingleVersion() {
		t.Error("uncommitted-write-skipping schedule is not single-version")
	}
	if !interleaved.AllowedUnderMVRC() {
		t.Error("it is, however, allowed under MVRC")
	}
}

func TestScheduleString(t *testing.T) {
	s := testSchema()
	t1 := NewTransaction(1)
	r := t1.Read(Tuple("R", "x"), "a")
	c := t1.Commit()
	sch, err := FromOrder(s, []*Transaction{t1}, []*Op{r, c})
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.String(); !strings.Contains(got, "R1[R:x]") || !strings.Contains(got, "C1") {
		t.Errorf("String = %q", got)
	}
	if sch.Pos(r) != 0 || sch.Pos(c) != 1 || !sch.Before(r, c) {
		t.Error("positions")
	}
	other := NewTransaction(9).Commit()
	if sch.Pos(other) != -1 {
		t.Error("foreign op should have position -1")
	}
}
