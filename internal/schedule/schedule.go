package schedule

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relschema"
)

// Version identifies one version of a tuple as a position in the tuple's
// version order ≪: 0 is the unborn version; 1, 2, ... are versions in
// installation order; the dead version, when present, is the version
// created by the tuple's D-operation and is required to be the last one.
type Version int

// VersionUnborn is the unborn version of every tuple.
const VersionUnborn Version = 0

// Schedule is a multiversion schedule (Section 3.3): a totally ordered set
// of operations of a set of transactions, together with the initial-version
// function, the write- and read-version functions, and the predicate-read
// version sets. The version order of each tuple is the numeric order of
// Version values.
type Schedule struct {
	Schema *relschema.Schema
	// Txns are the participating transactions.
	Txns []*Transaction
	// Order is the total order ≤s over all operations.
	Order []*Op
	// Init maps each tuple to its initial version: VersionUnborn for
	// tuples first created inside the schedule, 1 for tuples that exist
	// initially.
	Init map[TupleID]Version
	// VW maps each write operation to the version it created.
	VW map[*Op]Version
	// VR maps each read operation to the version it observed.
	VR map[*Op]Version
	// VSet maps each predicate read to the version of every tuple of its
	// relation that it observed (only tuples mentioned in the schedule are
	// tracked; all others are trivially at their initial version).
	VSet map[*Op]map[TupleID]Version
	// Dead marks, per tuple, the version created by a D-operation (the
	// dead version); absent if the tuple is never deleted.
	Dead map[TupleID]Version

	pos map[*Op]int
}

// Pos returns the position of op in the total order, or -1.
func (s *Schedule) Pos(op *Op) int {
	if p, ok := s.pos[op]; ok {
		return p
	}
	return -1
}

// Before reports a <s b.
func (s *Schedule) Before(a, b *Op) bool { return s.Pos(a) < s.Pos(b) }

// Tuples returns every tuple mentioned by any operation, sorted.
func (s *Schedule) Tuples() []TupleID {
	set := map[TupleID]bool{}
	for _, o := range s.Order {
		if o.Kind != OpCommit && o.Kind != OpPredRead {
			set[o.TupleRef] = true
		}
	}
	out := make([]TupleID, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// IsDeadVersion reports whether v is the dead version of t.
func (s *Schedule) IsDeadVersion(t TupleID, v Version) bool {
	d, ok := s.Dead[t]
	return ok && d == v
}

// IsVisible reports whether v is a visible version of t (not unborn, not
// dead).
func (s *Schedule) IsVisible(t TupleID, v Version) bool {
	return v != VersionUnborn && !s.IsDeadVersion(t, v)
}

// String renders the schedule as the operation sequence.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Order))
	for i, o := range s.Order {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// FromOrder builds the multiversion schedule induced by executing the given
// operation interleaving under read-last-committed semantics: every write
// installs the next version of its tuple (version order = write order,
// which coincides with commit order in the absence of dirty writes), and
// every read or predicate read observes, per tuple, the most recently
// committed version at that point (or the initial version).
//
// A tuple is taken to exist initially unless some I-operation creates it in
// the schedule. The order must contain exactly the operations of the given
// transactions, each once, respecting per-transaction order; otherwise an
// error is returned.
func FromOrder(schema *relschema.Schema, txns []*Transaction, order []*Op) (*Schedule, error) {
	s := &Schedule{
		Schema: schema,
		Txns:   txns,
		Order:  order,
		Init:   map[TupleID]Version{},
		VW:     map[*Op]Version{},
		VR:     map[*Op]Version{},
		VSet:   map[*Op]map[TupleID]Version{},
		Dead:   map[TupleID]Version{},
		pos:    map[*Op]int{},
	}
	// Structural validation of the interleaving.
	want := 0
	owned := map[*Op]bool{}
	for _, t := range txns {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		want += len(t.Ops)
		for _, o := range t.Ops {
			owned[o] = true
		}
	}
	if len(order) != want {
		return nil, fmt.Errorf("schedule: order has %d operations, transactions have %d", len(order), want)
	}
	lastIdx := map[*Transaction]int{}
	for i, o := range order {
		if !owned[o] {
			return nil, fmt.Errorf("schedule: operation %s at position %d does not belong to any transaction", o, i)
		}
		if _, dup := s.pos[o]; dup {
			return nil, fmt.Errorf("schedule: operation %s appears twice", o)
		}
		s.pos[o] = i
		if last, ok := lastIdx[o.Txn]; ok && o.Index <= last {
			return nil, fmt.Errorf("schedule: order violates program order of transaction %d", o.Txn.ID)
		}
		lastIdx[o.Txn] = o.Index
	}

	// Determine initial versions: unborn iff an I-operation creates the
	// tuple inside the schedule.
	inserted := map[TupleID]bool{}
	for _, o := range order {
		if o.Kind == OpInsert {
			inserted[o.TupleRef] = true
		}
	}
	for _, t := range s.Tuples() {
		if inserted[t] {
			s.Init[t] = VersionUnborn
		} else {
			s.Init[t] = 1
		}
	}

	// Simulate: track, per tuple, the latest version number handed out and
	// the latest committed version; per transaction, its pending writes.
	next := map[TupleID]Version{}
	committed := map[TupleID]Version{}
	for t, init := range s.Init {
		next[t] = init
		committed[t] = init
	}
	pending := map[*Transaction][]*Op{}
	for _, o := range order {
		switch {
		case o.IsWrite():
			next[o.TupleRef]++
			v := next[o.TupleRef]
			s.VW[o] = v
			if o.Kind == OpDelete {
				s.Dead[o.TupleRef] = v
			}
			pending[o.Txn] = append(pending[o.Txn], o)
		case o.IsRead():
			s.VR[o] = committed[o.TupleRef]
		case o.IsPredRead():
			vs := map[TupleID]Version{}
			for t, v := range committed {
				if t.Rel == o.Rel {
					vs[t] = v
				}
			}
			s.VSet[o] = vs
		case o.Kind == OpCommit:
			for _, w := range pending[o.Txn] {
				if s.VW[w] > committed[w.TupleRef] {
					committed[w.TupleRef] = s.VW[w]
				}
			}
			delete(pending, o.Txn)
		}
	}
	return s, nil
}

// ExhibitsDirtyWrite reports whether some transaction writes a tuple that
// another transaction wrote earlier without having committed yet
// (Section 3.5), returning the two offending operations if so.
func (s *Schedule) ExhibitsDirtyWrite() (bool, *Op, *Op) {
	for _, b := range s.Order {
		if !b.IsWrite() {
			continue
		}
		commit := b.Txn.CommitOp()
		for _, a := range s.Order {
			if !a.IsWrite() || a.Txn == b.Txn || a.TupleRef != b.TupleRef {
				continue
			}
			if s.Before(b, a) && s.Before(a, commit) {
				return true, b, a
			}
		}
	}
	return false, nil, nil
}

// ChunksRespected reports whether no atomic chunk is interleaved by an
// operation of another transaction.
func (s *Schedule) ChunksRespected() bool {
	for _, t := range s.Txns {
		for _, c := range t.Chunks {
			lo := s.Pos(t.Ops[c.From])
			hi := s.Pos(t.Ops[c.To])
			for p := lo + 1; p < hi; p++ {
				if s.Order[p].Txn != t {
					return false
				}
			}
		}
	}
	return true
}

// readVersionOK reports whether a read observing version v of tuple t at
// position p is read-last-committed: v is the version of the most recent
// write on t committed before p (or the initial version if none).
func (s *Schedule) readVersionOK(t TupleID, v Version, p int, allowNonVisible bool) bool {
	latest := s.Init[t]
	for _, o := range s.Order {
		if !o.IsWrite() || o.TupleRef != t {
			continue
		}
		commit := o.Txn.CommitOp()
		if commit == nil {
			continue
		}
		if s.Pos(commit) < p && s.VW[o] > latest {
			latest = s.VW[o]
		}
	}
	if v != latest {
		return false
	}
	if !allowNonVisible && !s.IsVisible(t, v) {
		return false
	}
	return true
}

// IsReadLastCommitted reports whether every read and predicate read
// observes, for every relevant tuple, the most recently committed version
// (Section 3.5). Plain reads must observe visible versions; predicate-read
// version sets may map tuples to their unborn or dead versions (the
// predicate then simply does not select them).
func (s *Schedule) IsReadLastCommitted() bool {
	for _, o := range s.Order {
		switch {
		case o.IsRead():
			if !s.readVersionOK(o.TupleRef, s.VR[o], s.Pos(o), false) {
				return false
			}
		case o.IsPredRead():
			for t, v := range s.VSet[o] {
				if !s.readVersionOK(t, v, s.Pos(o), true) {
					return false
				}
			}
		}
	}
	return true
}

// WriteOrderRespectsLifecycle reports whether, per tuple, an I-operation
// (when present) is the first write and a D-operation (when present) the
// last. The version order of a multiversion schedule places the unborn
// version first and the dead version last; with version order equal to
// write order, an update scheduled before the tuple's insert or after its
// delete would install a version outside that frame, so such interleavings
// do not induce valid multiversion schedules.
func (s *Schedule) WriteOrderRespectsLifecycle() bool {
	firstW := map[TupleID]*Op{}
	lastW := map[TupleID]*Op{}
	for _, o := range s.Order {
		if !o.IsWrite() {
			continue
		}
		if firstW[o.TupleRef] == nil {
			firstW[o.TupleRef] = o
		}
		lastW[o.TupleRef] = o
	}
	for _, o := range s.Order {
		switch o.Kind {
		case OpInsert:
			if firstW[o.TupleRef] != o {
				return false
			}
		case OpDelete:
			if lastW[o.TupleRef] != o {
				return false
			}
		}
	}
	return true
}

// AllowedUnderMVRC reports whether the schedule is allowed under
// multiversion Read Committed (Definition 3.3): read-last-committed and
// free of dirty writes. Atomic chunks must also be respected, since
// program instantiation produces them as indivisible units, and the write
// order must keep inserts first and deletes last per tuple so that it is a
// valid version order.
func (s *Schedule) AllowedUnderMVRC() bool {
	if dirty, _, _ := s.ExhibitsDirtyWrite(); dirty {
		return false
	}
	return s.ChunksRespected() && s.IsReadLastCommitted() && s.WriteOrderRespectsLifecycle()
}

// IsSerial reports whether operations of distinct transactions are not
// interleaved.
func (s *Schedule) IsSerial() bool {
	seen := map[*Transaction]bool{}
	var cur *Transaction
	for _, o := range s.Order {
		if o.Txn != cur {
			if seen[o.Txn] {
				return false
			}
			seen[o.Txn] = true
			cur = o.Txn
		}
	}
	return true
}

// IsSingleVersion reports whether the schedule behaves like a single-version
// schedule: versions are installed in write order and every (predicate)
// read observes the most recent version written before it, committed or
// not (Section 3.3).
func (s *Schedule) IsSingleVersion() bool {
	latest := map[TupleID]Version{}
	for t, v := range s.Init {
		latest[t] = v
	}
	for _, o := range s.Order {
		switch {
		case o.IsWrite():
			if s.VW[o] <= latest[o.TupleRef] {
				return false
			}
			latest[o.TupleRef] = s.VW[o]
		case o.IsRead():
			if s.VR[o] != latest[o.TupleRef] {
				return false
			}
		case o.IsPredRead():
			for t, v := range s.VSet[o] {
				if v != latest[t] {
					return false
				}
			}
		}
	}
	return true
}
