// Package wire defines the JSON wire types of the robustness service: the
// request and response bodies of cmd/robustserved's HTTP API. The types are
// shared with the CLIs — cmd/robustcheck's -json mode marshals the same
// CheckResponse/SubsetsResponse through the same encoder, so a CLI run and
// a server round-trip produce byte-identical documents for the same input.
//
// The package also owns the canonical textual names of the four analysis
// settings of the paper's Section 7.2 ("attr+fk", "tpl", ...) and of the
// two cycle methods ("type2" = Algorithm 2, "type1" = the baseline of
// Alomari and Fekete), previously private to cmd/robustcheck.
package wire

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/certify"
	"repro/internal/obs"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// WriteJSON encodes v as two-space-indented JSON followed by a newline.
// Every producer of wire documents (server handlers, robustcheck -json)
// encodes through this function, which is what makes their outputs
// byte-comparable.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Error is the uniform error envelope of non-2xx responses. Code and
// RetryAfterSeconds are optional machine-readable extensions (both
// omitempty, so pre-existing error bodies are byte-identical): overload
// shedding answers 429 with Code "overloaded" and a RetryAfterSeconds
// mirroring the Retry-After header, and a recovered handler panic answers
// 500 with Code "panic".
type Error struct {
	Error             string `json:"error"`
	Code              string `json:"code,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// --- Settings and methods --------------------------------------------------

// ParseSetting resolves a setting name: "tpl", "attr", "tpl+fk", "attr+fk".
// The empty string resolves to the paper's primary setting, attr+fk.
func ParseSetting(s string) (summary.Setting, error) {
	switch s {
	case "", "attr+fk":
		return summary.SettingAttrDepFK, nil
	case "tpl":
		return summary.SettingTplDep, nil
	case "attr":
		return summary.SettingAttrDep, nil
	case "tpl+fk":
		return summary.SettingTplDepFK, nil
	default:
		return summary.Setting{}, fmt.Errorf("unknown setting %q", s)
	}
}

// SettingName renders a setting as its wire name (the inverse of
// ParseSetting).
func SettingName(s summary.Setting) string {
	name := "attr"
	if s.Granularity == summary.TupleGranularity {
		name = "tpl"
	}
	if s.UseForeignKeys {
		name += "+fk"
	}
	return name
}

// ParseMethod resolves a cycle-condition name: "type2" (Algorithm 2) or
// "type1" ([3]); the empty string resolves to type2.
func ParseMethod(s string) (summary.Method, error) {
	switch s {
	case "type1", "type-1", "typeI":
		return summary.TypeI, nil
	case "", "type2", "type-2", "typeII":
		return summary.TypeII, nil
	default:
		return summary.TypeII, fmt.Errorf("unknown method %q", s)
	}
}

// MethodName renders a method as its wire name.
func MethodName(m summary.Method) string {
	if m == summary.TypeI {
		return "type1"
	}
	return "type2"
}

// --- Schema ----------------------------------------------------------------

// Schema is the wire form of a relational schema, for registering workloads
// that are not built-in benchmarks.
type Schema struct {
	Relations   []Relation   `json:"relations"`
	ForeignKeys []ForeignKey `json:"foreign_keys,omitempty"`
}

// Relation declares one relation with its primary key.
type Relation struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	Key   []string `json:"key"`
}

// ForeignKey declares a named foreign key between two relations.
type ForeignKey struct {
	Name      string   `json:"name"`
	From      string   `json:"from"`
	FromAttrs []string `json:"from_attrs"`
	To        string   `json:"to"`
	ToAttrs   []string `json:"to_attrs"`
}

// Build materializes the wire schema as a validated relschema.Schema.
func (s *Schema) Build() (*relschema.Schema, error) {
	out := relschema.NewSchema()
	for _, r := range s.Relations {
		if err := out.AddRelation(r.Name, r.Attrs, r.Key); err != nil {
			return nil, err
		}
	}
	for _, fk := range s.ForeignKeys {
		if err := out.AddForeignKey(fk.Name, fk.From, fk.FromAttrs, fk.To, fk.ToAttrs); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- Workload registration -------------------------------------------------

// RegisterWorkloadRequest registers a workload: either a built-in benchmark
// by name (optionally scaled by N, and optionally with its programs
// replaced by ProgramsSQL) or an explicit Schema plus ProgramsSQL in the
// SQL dialect of Appendix A.
type RegisterWorkloadRequest struct {
	Benchmark   string  `json:"benchmark,omitempty"`
	N           int     `json:"n,omitempty"`
	Schema      *Schema `json:"schema,omitempty"`
	ProgramsSQL string  `json:"programs_sql,omitempty"`
}

// FromSQLRequest registers a workload from dialect SQL via
// POST /v1/workloads:fromSQL. Either Script (a self-contained script: DDL
// plus programs introduced by "-- program Name [as Abbrev]" directives) or
// DDL + Programs (CREATE TABLE statements separate from per-program
// bodies), never both. Dialect selects the front-end: "postgres", "mysql",
// "sqlite" or "embedded" (empty means embedded).
type FromSQLRequest struct {
	Dialect  string       `json:"dialect,omitempty"`
	Script   string       `json:"script,omitempty"`
	DDL      string       `json:"ddl,omitempty"`
	Programs []SQLProgram `json:"programs,omitempty"`
}

// SQLProgram is one program submitted separately from the DDL: its name,
// optional abbreviation and body SQL (statements only, no header).
type SQLProgram struct {
	Name   string `json:"name"`
	Abbrev string `json:"abbrev,omitempty"`
	SQL    string `json:"sql"`
}

// SQLError is the 400 body of :fromSQL when compilation fails: the rendered
// message plus the structured position — dialect, program, line and column
// — when the failure is attributable to a source location.
type SQLError struct {
	Error   string `json:"error"`
	Dialect string `json:"dialect,omitempty"`
	Program string `json:"program,omitempty"`
	Line    int    `json:"line,omitempty"`
	Column  int    `json:"column,omitempty"`
}

// RegisterWorkloadResponse identifies the registered workload. Registration
// is idempotent: re-registering an identical workload returns the existing
// ID with Created=false.
type RegisterWorkloadResponse struct {
	// ID is the workload's fingerprint — stable across identical
	// registrations and across PATCHes.
	ID      string `json:"id"`
	Created bool   `json:"created"`
	// Version counts applied PATCHes; responses to /check and /subsets
	// echo the version their verdict was computed against in the
	// X-Workload-Version header.
	Version  uint64   `json:"version"`
	Programs []string `json:"programs"`
}

// --- Check and subsets -----------------------------------------------------

// CheckRequest configures one robustness check. All fields are optional:
// zero values select the paper's primary configuration over the workload's
// full program set.
type CheckRequest struct {
	// Setting is a ParseSetting name; empty means "attr+fk".
	Setting string `json:"setting,omitempty"`
	// Method is a ParseMethod name; empty means "type2".
	Method string `json:"method,omitempty"`
	// UnfoldBound overrides the loop-unfolding bound; 0 means 2.
	UnfoldBound int `json:"unfold_bound,omitempty"`
	// Programs restricts the check to the named programs (full names or
	// abbreviations); empty means all registered programs.
	Programs []string `json:"programs,omitempty"`
	// Parallelism is the per-request worker count for this analysis,
	// governing both the subset-enumeration fanout and the intra-check
	// sharding (pairwise edge blocks, closure fixpoint). 0 means the
	// server's resolved default; positive values are capped by the server's
	// bound — the -parallel option, or GOMAXPROCS when the operator left it
	// unset — so a request can lower concurrency but never raise it past
	// what the operator allows. Parallelism never changes a verdict, only
	// the wall-clock, so requests differing only in this field may still be
	// coalesced.
	Parallelism int `json:"parallelism,omitempty"`
}

// Config resolves the request into an engine configuration.
func (r *CheckRequest) Config() (analysis.Config, error) {
	setting, err := ParseSetting(r.Setting)
	if err != nil {
		return analysis.Config{}, err
	}
	method, err := ParseMethod(r.Method)
	if err != nil {
		return analysis.Config{}, err
	}
	return analysis.Config{
		Setting: setting, Method: method,
		UnfoldBound: r.UnfoldBound, Parallelism: r.Parallelism,
	}, nil
}

// GraphStats mirrors summary.Stats on the wire.
type GraphStats struct {
	Nodes            int `json:"nodes"`
	Edges            int `json:"edges"`
	CounterflowEdges int `json:"counterflow_edges"`
}

// Witness is the wire form of a dangerous cycle.
type Witness struct {
	Method string `json:"method"`
	// Cycle lists the witness edges in traversal order, rendered as
	// "(P, q@pos, class, q@pos, P)".
	Cycle []string `json:"cycle"`
}

// CheckResponse reports one robustness verdict.
type CheckResponse struct {
	Setting     string     `json:"setting"`
	Method      string     `json:"method"`
	UnfoldBound int        `json:"unfold_bound"`
	Programs    []string   `json:"programs"`
	Robust      bool       `json:"robust"`
	Graph       GraphStats `json:"graph"`
	Witness     *Witness   `json:"witness,omitempty"`
	// Timings is the per-phase span aggregate of this request, present only
	// behind the ?debug=timings opt-in (and robustcheck -timings -json).
	// Handlers attach it after assembly — NewCheckResponse never sets it —
	// so the default wire document stays byte-identical to older releases.
	Timings []PhaseTiming `json:"timings,omitempty"`
}

// PhaseTiming is one phase's aggregated spans in a ?debug=timings response
// block: how many spans the phase emitted during the request and their
// total duration.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// NewPhaseTimings converts a SpanRecorder snapshot to its wire form.
func NewPhaseTimings(spans []obs.PhaseTiming) []PhaseTiming {
	if len(spans) == 0 {
		return nil
	}
	out := make([]PhaseTiming, len(spans))
	for i, s := range spans {
		out[i] = PhaseTiming{
			Phase:   s.Phase,
			Count:   s.Count,
			TotalMS: float64(s.Total.Microseconds()) / 1e3,
		}
	}
	return out
}

// NewCheckResponse assembles the wire response for one check: the resolved
// configuration, the checked programs' short names in input order, the
// verdict, graph statistics and (when not robust) the witness cycle. Both
// the server and robustcheck -json build their responses here.
func NewCheckResponse(cfg analysis.Config, programs []*btp.Program, res *analysis.Result) *CheckResponse {
	resp := &CheckResponse{
		Setting:     SettingName(cfg.Setting),
		Method:      MethodName(cfg.Method),
		UnfoldBound: effectiveBound(cfg),
		Programs:    shortNames(programs),
		Robust:      res.Robust,
		Graph:       newGraphStats(res.Graph),
	}
	if w := res.Witness; w != nil {
		wt := &Witness{Method: MethodName(w.Method)}
		for _, e := range w.Cycle {
			wt.Cycle = append(wt.Cycle, e.String())
		}
		resp.Witness = wt
	}
	return resp
}

// SubsetsResponse reports the robust and maximal robust subsets of one
// enumeration (Figures 6 and 7), each subset as sorted short names.
type SubsetsResponse struct {
	Setting     string     `json:"setting"`
	Method      string     `json:"method"`
	UnfoldBound int        `json:"unfold_bound"`
	Programs    []string   `json:"programs"`
	Robust      [][]string `json:"robust"`
	Maximal     [][]string `json:"maximal"`
	// SubsetsPruned counts the subsets this enumeration decided by the
	// minimal-non-robust-core containment test instead of running the
	// cycle detector (0 for the naive oracle and the DisablePruning path).
	// Deterministic for a given session state — a fresh CLI run and a
	// fresh server enumeration report the same value — but a warm session
	// with seeded cores legitimately prunes more; cached responses replay
	// the count of the run that produced them.
	SubsetsPruned int `json:"subsets_pruned"`
	// CertifiedCores counts the minimal non-robust cores relevant to this
	// enumeration whose non-robustness is backed by a replayed
	// non-serializable execution (internal/certify) rather than static
	// reasoning alone.
	CertifiedCores int `json:"certified_cores"`
	// Timings is the per-phase span aggregate, present only behind the
	// ?debug=timings opt-in. Timed requests bypass the result cache and
	// coalescing (a cached body replays another run's bytes, which would
	// carry another run's timings), so cached documents never contain it.
	Timings []PhaseTiming `json:"timings,omitempty"`
}

// NewSubsetsResponse assembles the wire response for one subset
// enumeration.
func NewSubsetsResponse(cfg analysis.Config, programs []*btp.Program, rep *analysis.SubsetReport) *SubsetsResponse {
	return &SubsetsResponse{
		Setting:        SettingName(cfg.Setting),
		Method:         MethodName(cfg.Method),
		UnfoldBound:    effectiveBound(cfg),
		Programs:       shortNames(programs),
		Robust:         subsetsToWire(rep.Robust),
		Maximal:        subsetsToWire(rep.Maximal),
		SubsetsPruned:  rep.Pruned,
		CertifiedCores: rep.CertifiedCores,
	}
}

// --- Certification ---------------------------------------------------------

// CertifyRequest configures one certification run
// (POST /v1/workloads/{id}/certify; robustcheck -certify). The embedded
// CheckRequest fields select the configuration and program subset exactly
// as /check does; MaxSchedules bounds each candidate instantiation's
// interleaving search (0 = the engine default).
type CertifyRequest struct {
	CheckRequest
	MaxSchedules int `json:"max_schedules,omitempty"`
}

// Certificate is the wire form of a machine-checkable counterexample: the
// abstract MVRC schedule the search found, the schedule the MVCC engine
// recorded while replaying it, and one conflict cycle of the replayed
// execution's serialization graph.
type Certificate struct {
	// Candidate names the instantiation strategy that found the schedule
	// ("canonical", "guided", or their "+extra" variants).
	Candidate string   `json:"candidate"`
	Instances []string `json:"instances"`
	Schedule  string   `json:"schedule"`
	Recorded  string   `json:"recorded"`
	Cycle     []string `json:"cycle"`
}

// CertifyResponse reports one certification attempt. Status is "robust"
// (nothing to certify), "certified" (Certificate holds the evidence) or
// "unrealized" (Reason starts with one of the documented prefixes:
// "no candidate", "exhausted", "budget").
type CertifyResponse struct {
	Setting     string   `json:"setting"`
	Method      string   `json:"method"`
	UnfoldBound int      `json:"unfold_bound"`
	Programs    []string `json:"programs"`
	Status      string   `json:"status"`
	// Core lists the programs on the witness cycle — the subset the
	// certificate speaks about; empty for robust verdicts.
	Core       []string `json:"core,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Candidates int      `json:"candidates"`
	Explored   int      `json:"explored"`
	// NewlyCertified reports whether this request set the certified
	// provenance bit on the session's stored core (false when re-certifying
	// an already certified core).
	NewlyCertified bool         `json:"newly_certified"`
	Certificate    *Certificate `json:"certificate,omitempty"`
	// Timings is the per-phase span aggregate of the embedded static check,
	// present only behind the ?debug=timings opt-in.
	Timings []PhaseTiming `json:"timings,omitempty"`
}

// NewCertifyResponse assembles the wire response for one certification.
func NewCertifyResponse(cfg analysis.Config, programs []*btp.Program, res *certify.Result) *CertifyResponse {
	resp := &CertifyResponse{
		Setting:        SettingName(cfg.Setting),
		Method:         MethodName(cfg.Method),
		UnfoldBound:    effectiveBound(cfg),
		Programs:       shortNames(programs),
		Status:         res.Status.String(),
		Core:           res.Core,
		Reason:         res.Reason,
		Candidates:     res.Candidates,
		Explored:       res.Explored,
		NewlyCertified: res.NewlyCertified,
	}
	if c := res.Certificate; c != nil {
		wc := &Certificate{
			Candidate: c.Candidate,
			Instances: c.Instances,
			Schedule:  c.Schedule.String(),
			Recorded:  c.Recorded.String(),
		}
		for _, d := range c.Cycle.Deps {
			wc.Cycle = append(wc.Cycle, d.String())
		}
		resp.Certificate = wc
	}
	return resp
}

// --- Streaming subsets -----------------------------------------------------

// StreamRequest configures one streaming subset enumeration
// (POST /v1/workloads/{id}/subsets:stream; the GET variant carries the
// same fields as query parameters). The embedded CheckRequest fields
// select the configuration and program restriction exactly as /subsets
// does.
type StreamRequest struct {
	CheckRequest
	// Mode is a ParseStreamMode name: "all" (default), "first_non_robust",
	// "all_maximal_robust" or "top_k".
	Mode string `json:"mode,omitempty"`
	// K is the result budget of top_k mode.
	K int `json:"k,omitempty"`
	// MaxSubsets, when positive, terminates the stream after that many
	// emitted verdicts, whatever the mode.
	MaxSubsets int `json:"max_subsets,omitempty"`
}

// ParseStreamMode resolves a streaming mode name; the empty string means
// stream everything.
func ParseStreamMode(s string) (analysis.StreamMode, error) {
	switch s {
	case "", "all":
		return analysis.StreamAll, nil
	case "first_non_robust":
		return analysis.StreamFirstNonRobust, nil
	case "all_maximal_robust", "maximal":
		return analysis.StreamMaximalRobust, nil
	case "top_k":
		return analysis.StreamTopK, nil
	default:
		return analysis.StreamAll, fmt.Errorf("unknown stream mode %q", s)
	}
}

// StreamVerdictRecord is one NDJSON line of a subsets:stream response: a
// single subset's verdict, emitted the moment the enumeration decides it.
type StreamVerdictRecord struct {
	// Programs is the subset (sorted short names); Size its cardinality —
	// the lattice level that decided it.
	Programs []string `json:"programs"`
	Size     int      `json:"size"`
	Robust   bool     `json:"robust"`
	// DecidedBy is "core" or "cover" for containment-pruned verdicts and
	// "detector" when the cycle detector ran.
	DecidedBy string `json:"decided_by"`
}

// NewStreamVerdictRecord converts an engine verdict to its wire line.
func NewStreamVerdictRecord(v analysis.StreamVerdict) StreamVerdictRecord {
	return StreamVerdictRecord{
		Programs:  v.Programs,
		Size:      v.Size,
		Robust:    v.Robust,
		DecidedBy: v.DecidedBy,
	}
}

// StreamSummaryRecord is the final NDJSON line of a subsets:stream
// response, distinguished from verdict lines by `"summary": true`.
type StreamSummaryRecord struct {
	Summary     bool     `json:"summary"`
	Mode        string   `json:"mode"`
	Setting     string   `json:"setting"`
	Method      string   `json:"method"`
	UnfoldBound int      `json:"unfold_bound"`
	Programs    []string `json:"programs"`
	// Emitted counts verdict lines above this one; Checked counts detector
	// runs, SubsetsPruned containment decisions and Cores the stored
	// minimal non-robust cores after the run.
	Emitted       int `json:"emitted"`
	Checked       int `json:"checked"`
	SubsetsPruned int `json:"subsets_pruned"`
	Cores         int `json:"cores"`
	// EarlyTerminated is true when the stream stopped before visiting the
	// whole lattice; Reason is then "first_non_robust", "level_exhausted"
	// or "max_subsets".
	EarlyTerminated bool   `json:"early_terminated"`
	Reason          string `json:"reason,omitempty"`
	// Maximal lists the maximal robust subsets when the run's robust
	// knowledge is complete (a full stream, or a level-exhausted
	// termination); TopK the K largest robust subsets in top_k mode.
	Maximal [][]string `json:"maximal,omitempty"`
	TopK    [][]string `json:"top_k,omitempty"`
}

// NewStreamSummaryRecord assembles the final line of a stream.
func NewStreamSummaryRecord(cfg analysis.Config, programs []*btp.Program, mode analysis.StreamMode, sum *analysis.StreamSummary) *StreamSummaryRecord {
	rec := &StreamSummaryRecord{
		Summary:         true,
		Mode:            mode.String(),
		Setting:         SettingName(cfg.Setting),
		Method:          MethodName(cfg.Method),
		UnfoldBound:     effectiveBound(cfg),
		Programs:        shortNames(programs),
		Emitted:         sum.Emitted,
		Checked:         sum.Checked,
		SubsetsPruned:   sum.Pruned,
		Cores:           sum.Cores,
		EarlyTerminated: sum.Terminated,
		Reason:          sum.Reason,
	}
	if sum.Report != nil {
		rec.Maximal = subsetsToWire(sum.Report.Maximal)
	}
	if len(sum.TopK) > 0 {
		rec.TopK = subsetsToWire(sum.TopK)
	}
	return rec
}

// --- Program patching ------------------------------------------------------

// PatchProgramRequest replaces one registered program's definition with a
// new one in the SQL dialect of Appendix A. The PROGRAM's name must match
// the path's program name.
type PatchProgramRequest struct {
	SQL string `json:"sql"`
}

// PatchProgramResponse reports the incremental re-analysis bookkeeping of
// one patch.
type PatchProgramResponse struct {
	Program string `json:"program"`
	// Version is the workload version after the patch.
	Version uint64 `json:"version"`
	// InvalidatedPairs counts the ordered LTP pairs evicted from the block
	// caches — only pairs with the old program as an endpoint; blocks
	// between untouched programs survive.
	InvalidatedPairs int `json:"invalidated_pairs"`
	// InvalidatedResults counts the subsets result-cache entries dropped by
	// the patch's version bump (every entry of this workload; entries of
	// other workloads are untouched).
	InvalidatedResults int `json:"invalidated_results"`
}

// --- Stats -----------------------------------------------------------------

// CacheStats is the wire form of one workload's session telemetry.
type CacheStats struct {
	Programs    int    `json:"programs"`
	Unfoldings  int    `json:"unfoldings"`
	Settings    int    `json:"settings"`
	Pairs       int    `json:"pairs"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Invalidated uint64 `json:"invalidated"`
	// Cores is the lattice-pruning telemetry of the subset enumeration:
	// the minimal non-robust core store and its containment-scan counters.
	Cores CoreSetStats `json:"cores"`
}

// CoreSetStats is the wire form of the session's lattice-pruning
// telemetry: Cores counts stored minimal non-robust cores and Covers the
// stored robust covers (the anti-monotone dual) across configurations;
// Hits counts subsets decided non-robust by the core containment scan,
// CoverHits subsets decided robust by the cover scan, Misses subsets that
// ran the cycle detector; SubsetsPruned = Hits + CoverHits (detector runs
// skipped); SizeBytes is the stores' estimated resident memory.
type CoreSetStats struct {
	Cores  int `json:"cores"`
	Covers int `json:"covers"`
	// CertifiedCores counts stored cores carrying the certified provenance
	// bit — their non-robustness is backed by a replayed execution.
	CertifiedCores int    `json:"certified_cores"`
	Hits           uint64 `json:"hits"`
	CoverHits      uint64 `json:"cover_hits"`
	Misses         uint64 `json:"misses"`
	SubsetsPruned  uint64 `json:"subsets_pruned"`
	SizeBytes      int64  `json:"size_bytes"`
	// SchedChecked/SchedHits rate the streaming enumeration's cost-ordered
	// scheduler: of the detector-run subsets the scheduler placed in the
	// first half of their level's visit order, SchedHits were non-robust —
	// the verdicts worth front-loading.
	SchedChecked uint64 `json:"sched_checked"`
	SchedHits    uint64 `json:"sched_hits"`
}

// NewCacheStats converts a session snapshot to its wire form.
func NewCacheStats(st analysis.Stats) CacheStats {
	return CacheStats{
		Programs:    st.Programs,
		Unfoldings:  st.Unfoldings,
		Settings:    st.Settings,
		Pairs:       st.Blocks.Pairs,
		Hits:        st.Blocks.Hits,
		Misses:      st.Blocks.Misses,
		Invalidated: st.Blocks.Invalidated,
		Cores: CoreSetStats{
			Cores:          st.Cores.Cores,
			Covers:         st.Cores.Covers,
			CertifiedCores: st.Cores.Certified,
			Hits:           st.Cores.Hits,
			CoverHits:      st.Cores.CoverHits,
			Misses:         st.Cores.Misses,
			SubsetsPruned:  st.Cores.Pruned,
			SizeBytes:      st.Cores.SizeBytes,
			SchedChecked:   st.Cores.SchedChecked,
			SchedHits:      st.Cores.SchedHits,
		},
	}
}

// ResultCacheStats is the wire form of one workload's subsets result-cache
// telemetry: Entries is the current entry count, Hits/Misses count lookups,
// Invalidated counts entries dropped by PATCH version bumps.
type ResultCacheStats struct {
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Invalidated uint64 `json:"invalidated"`
}

// WorkloadStats describes one registered workload in /v1/stats.
type WorkloadStats struct {
	ID       string   `json:"id"`
	Version  uint64   `json:"version"`
	Programs []string `json:"programs"`
	Checks   uint64   `json:"checks"`
	Subsets  uint64   `json:"subsets"`
	Patches  uint64   `json:"patches"`
	// LastParallelism is the effective worker count of the workload's most
	// recent check or subsets request — the request's parallelism field
	// after applying the server's -parallel default and cap, with 0
	// resolved to GOMAXPROCS. It stays 0 until the first analysis request,
	// so operators can tell "never analysed" from "analysed sequentially"
	// (which reports 1). Requests answered from the subsets result cache
	// record their resolved value too, even though no workers ran.
	LastParallelism int        `json:"last_parallelism"`
	Cache           CacheStats `json:"cache"`
	// ResultCache is the workload's subsets result-cache telemetry.
	ResultCache ResultCacheStats `json:"result_cache"`
	// SizeBytes is the workload's estimated resident memory (programs +
	// session caches + result cache), the quantity the -max-bytes eviction
	// policy weighs.
	SizeBytes int64 `json:"size_bytes"`
}

// RequestStats counts served requests by kind. Coalesced counts /subsets
// requests answered by piggybacking on an identical in-flight enumeration;
// Streamed counts subsets:stream requests and EarlyTerminations the
// streams that stopped before visiting the whole lattice (mode-driven
// termination or an emitted-subset budget — not client disconnects).
type RequestStats struct {
	Register          uint64 `json:"register"`
	Check             uint64 `json:"check"`
	Subsets           uint64 `json:"subsets"`
	Certify           uint64 `json:"certify"`
	Patch             uint64 `json:"patch"`
	Coalesced         uint64 `json:"coalesced"`
	Streamed          uint64 `json:"streamed_requests"`
	EarlyTerminations uint64 `json:"early_terminations"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workloads     int     `json:"workloads"`
	// Evictions counts workloads evicted by the count-based LRU cap
	// (-max-workloads); EvictionsBytes counts evictions by the memory-aware
	// -max-bytes policy.
	Evictions      uint64 `json:"evictions"`
	EvictionsBytes uint64 `json:"evictions_bytes"`
	// MaxBytes echoes the -max-bytes budget (0 = unlimited) and
	// TotalSizeBytes the current estimated resident total across workloads.
	MaxBytes       int64 `json:"max_bytes"`
	TotalSizeBytes int64 `json:"total_size_bytes"`
	// SnapshotsLoaded counts workloads restored from -state-dir at boot;
	// PersistErrors counts snapshot writes that failed since boot (the
	// server keeps serving from memory when one does).
	SnapshotsLoaded int    `json:"snapshots_loaded"`
	PersistErrors   uint64 `json:"persist_errors"`
	// CertifiedCores counts, across all resident workloads, the stored
	// minimal non-robust cores carrying the certified provenance bit;
	// UnrealizedCandidates accumulates the candidate instantiations that
	// certify requests searched without finding a counterexample.
	CertifiedCores       int    `json:"certified_cores"`
	UnrealizedCandidates uint64 `json:"unrealized_candidates"`
	// DefaultParallelism is the resolved server-wide worker count applied
	// to requests that do not set their own parallelism field: the
	// -parallel flag, or GOMAXPROCS when unset.
	DefaultParallelism int             `json:"default_parallelism"`
	Requests           RequestStats    `json:"requests"`
	WorkloadStats      []WorkloadStats `json:"workload_stats"`
	// StatsGeneration increments on every served /v1/stats response, so a
	// poller can order snapshots and detect a server restart (the counter
	// resets to 1) without comparing timestamps.
	StatsGeneration uint64 `json:"stats_generation"`
}

// HealthzResponse is the body of GET /healthz: liveness plus build
// attribution, so a deployed server is traceable to a commit from the
// probe endpoint alone. Persistence reports the snapshot subsystem:
// "ok", "degraded" (consecutive flush rounds failing; the flusher is
// retrying with backoff), "failed" (the state directory was unusable at
// boot), or omitted when persistence is disabled.
type HealthzResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Persistence   string  `json:"persistence,omitempty"`
}

// ReadyResponse is the body of GET /healthz/ready and /healthz/live —
// the split probes: liveness stays up as long as the process serves,
// readiness goes 503 while the server drains for shutdown or while
// persistence is degraded, steering load balancers away without killing
// in-flight work.
type ReadyResponse struct {
	Status      string `json:"status"` // "ready", "live", "draining" or "degraded"
	Draining    bool   `json:"draining,omitempty"`
	Persistence string `json:"persistence,omitempty"`
}

// --- Helpers ---------------------------------------------------------------

func effectiveBound(cfg analysis.Config) int {
	if cfg.UnfoldBound > 0 {
		return cfg.UnfoldBound
	}
	return btp.DefaultUnfoldBound
}

func newGraphStats(g *summary.Graph) GraphStats {
	st := g.Stats()
	return GraphStats{Nodes: st.Nodes, Edges: st.Edges, CounterflowEdges: st.CounterflowEdges}
}

func shortNames(programs []*btp.Program) []string {
	out := make([]string, len(programs))
	for i, p := range programs {
		out[i] = p.ShortName()
	}
	return out
}

func subsetsToWire(subsets []analysis.Subset) [][]string {
	out := make([][]string, len(subsets))
	for i, s := range subsets {
		out[i] = []string(s)
	}
	return out
}
