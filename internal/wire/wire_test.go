package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/summary"
)

func TestSettingRoundTrip(t *testing.T) {
	for _, s := range summary.AllSettings {
		name := SettingName(s)
		got, err := ParseSetting(name)
		if err != nil || got != s {
			t.Errorf("ParseSetting(SettingName(%v)) = %v, %v", s, got, err)
		}
	}
	if s, err := ParseSetting(""); err != nil || s != summary.SettingAttrDepFK {
		t.Errorf("empty setting should default to attr+fk, got %v, %v", s, err)
	}
	if _, err := ParseSetting("bogus"); err == nil {
		t.Error("bogus setting accepted")
	}
}

func TestMethodRoundTrip(t *testing.T) {
	for _, m := range []summary.Method{summary.TypeI, summary.TypeII} {
		got, err := ParseMethod(MethodName(m))
		if err != nil || got != m {
			t.Errorf("ParseMethod(MethodName(%v)) = %v, %v", m, got, err)
		}
	}
	if m, err := ParseMethod(""); err != nil || m != summary.TypeII {
		t.Errorf("empty method should default to type2, got %v, %v", m, err)
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestSchemaBuild(t *testing.T) {
	ws := &Schema{
		Relations: []Relation{
			{Name: "Account", Attrs: []string{"Name", "CustomerId"}, Key: []string{"Name"}},
			{Name: "Savings", Attrs: []string{"CustomerId", "Balance"}, Key: []string{"CustomerId"}},
		},
		ForeignKeys: []ForeignKey{
			{Name: "fS", From: "Account", FromAttrs: []string{"CustomerId"}, To: "Savings", ToAttrs: []string{"CustomerId"}},
		},
	}
	s, err := ws.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasRelation("Account") || !s.HasRelation("Savings") || s.ForeignKey("fS") == nil {
		t.Errorf("schema missing declared elements: %s", s)
	}

	bad := &Schema{Relations: []Relation{{Name: "R", Attrs: []string{"a"}, Key: []string{"missing"}}}}
	if _, err := bad.Build(); err == nil {
		t.Error("schema with bad key accepted")
	}
}

func TestCheckRequestConfig(t *testing.T) {
	cfg, err := (&CheckRequest{Setting: "tpl", Method: "type1", UnfoldBound: 1}).Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Setting != summary.SettingTplDep || cfg.Method != summary.TypeI || cfg.UnfoldBound != 1 {
		t.Errorf("config = %+v", cfg)
	}
	if _, err := (&CheckRequest{Setting: "bogus"}).Config(); err == nil {
		t.Error("bogus setting accepted")
	}
	if _, err := (&CheckRequest{Method: "bogus"}).Config(); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestNewCheckResponse(t *testing.T) {
	bench := benchmarks.SmallBank()
	sess := analysis.NewSession(bench.Schema)
	cfg := analysis.DefaultConfig()

	res, err := sess.Check(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewCheckResponse(cfg, bench.Programs, res)
	if resp.Robust {
		t.Fatal("full SmallBank must not be robust")
	}
	if resp.Setting != "attr+fk" || resp.Method != "type2" || resp.UnfoldBound != 2 {
		t.Errorf("config echo = %s/%s/%d", resp.Setting, resp.Method, resp.UnfoldBound)
	}
	if len(resp.Programs) != 5 || resp.Programs[0] != "Am" {
		t.Errorf("programs = %v", resp.Programs)
	}
	if resp.Witness == nil || len(resp.Witness.Cycle) == 0 {
		t.Error("non-robust response must carry a witness")
	}
	if resp.Graph.Nodes != 5 || resp.Graph.Edges == 0 {
		t.Errorf("graph stats = %+v", resp.Graph)
	}

	rep, err := sess.RobustSubsets(bench.Programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := NewSubsetsResponse(cfg, bench.Programs, rep)
	if len(sub.Robust) != len(rep.Robust) || len(sub.Maximal) != len(rep.Maximal) {
		t.Errorf("subset counts drifted: %d/%d vs %d/%d",
			len(sub.Robust), len(sub.Maximal), len(rep.Robust), len(rep.Maximal))
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	resp := &CheckResponse{Setting: "attr+fk", Method: "type2", UnfoldBound: 2, Programs: []string{"Am"}, Robust: true}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, resp); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, resp); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteJSON is not deterministic")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Error("WriteJSON must end with a newline")
	}
}
