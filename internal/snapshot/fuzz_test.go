package snapshot

import (
	"encoding/json"
	"testing"

	"repro/internal/benchmarks"
)

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decode path —
// the exact surface a hand-edited or torn state file reaches on boot. The
// properties: decoding never panics; whatever decodes must either fail
// Build with an error or build a schema and programs that survive a
// re-encode/re-build round trip unchanged (a file the loader accepts is a
// file the loader can regenerate).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a real snapshot of every built-in benchmark (including the
	// certified-cores column), plus the corrupt shapes the store tests pin.
	for _, mk := range []func() *benchmarks.Benchmark{
		benchmarks.SmallBank, benchmarks.TPCC, benchmarks.Auction,
	} {
		bench := mk()
		file := &File{
			Format: Format, ID: "0123456789abcdef", Version: 2,
			Schema: FromSchema(bench.Schema),
		}
		for _, p := range bench.Programs {
			sp, err := FromProgram(p)
			if err != nil {
				f.Fatal(err)
			}
			file.Programs = append(file.Programs, sp)
		}
		file.Cores = []CoreGroup{{
			Setting: "attr+fk", Method: "type2", Bound: 2,
			Cores:     [][]string{{bench.Programs[0].Name, bench.Programs[1].Name}},
			Certified: []bool{true},
		}}
		file.Results = []Result{{Key: "2|attr+fk|type2|0|", Version: 2, Body: []byte("{}\n")}}
		data, err := json.Marshal(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"format":1,"id":"abcd","schema":{"relations":[{"name":"R","attrs":["id"],"key":["id"]}]},"programs":[{"name":"P","body":{"stmt":{"name":"q","type":"ins","rel":"R"}}}]}`))
	f.Add([]byte(`{"format":1,"id":"abcd","programs":[{"name":"P","body":{"choice":[{"stmt":{"name":"q","type":"ins","rel":"R"}}]}}]}`))
	f.Add([]byte(`{ this is not json`))
	f.Add([]byte(`{"format": 1, "id": "bbbb", "version": 1`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var file File
		if err := json.Unmarshal(data, &file); err != nil {
			return // not a snapshot; the store would skip it
		}
		schema, err := file.Schema.Build()
		if err != nil {
			return // rejected with an error — the loader's job
		}
		for _, sp := range file.Programs {
			prog, err := sp.Build(schema)
			if err != nil {
				continue
			}
			// Accepted program: it must re-encode and rebuild unchanged.
			back, err := FromProgram(prog)
			if err != nil {
				t.Fatalf("accepted program %s does not re-encode: %v", prog.Name, err)
			}
			again, err := back.Build(schema)
			if err != nil {
				t.Fatalf("re-encoded program %s does not rebuild: %v", prog.Name, err)
			}
			if again.String() != prog.String() {
				t.Fatalf("round trip drifted:\n%s\nvs\n%s", again, prog)
			}
		}
		// The schema side of the same property.
		if got, err := FromSchema(schema).Build(); err != nil {
			t.Fatalf("accepted schema does not round-trip: %v", err)
		} else if got.String() != schema.String() {
			t.Fatalf("schema text drifted:\n%s\nvs\n%s", got, schema)
		}
	})
}
