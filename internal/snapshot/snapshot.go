// Package snapshot persists registered workloads of the robustness service
// across restarts. A snapshot is one JSON document per workload holding
// everything the server needs to resurrect it byte-for-byte: the schema,
// the full program definitions (the exact BTP syntax trees, not a lossy SQL
// rendering), the workload version, the registration fingerprint, and the
// cached subsets results. The analysis caches themselves (unfoldings,
// pairwise edge blocks) are deliberately NOT persisted — they are cheap to
// rebuild relative to their size, deterministic, and the subsets result
// cache already spares the expensive enumerations a cold start would redo.
//
// The package owns the serialization only; internal/server decides when to
// Save, Delete and LoadAll, and verifies each loaded snapshot against a
// freshly computed fingerprint before trusting it. Snapshots that fail to
// decode — truncated writes, hand-edited files, format drift — are skipped,
// never fatal: losing a snapshot costs a warm-up, not correctness.
package snapshot

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// Format is the snapshot file format version. Files with any other format
// value are skipped on load (an old server never misreads a newer layout).
const Format = 1

// File is one workload snapshot.
type File struct {
	Format int `json:"format"`
	// ID is the workload's registration fingerprint. The server recomputes
	// the fingerprint from the decoded schema and programs at load time and
	// discards the file on mismatch.
	ID string `json:"id"`
	// Version counts applied PATCHes, preserved across restarts so wire
	// responses (X-Workload-Version, register bodies) are byte-identical
	// before and after a reboot.
	Version uint64 `json:"version"`
	// Content is the fingerprint of the snapshot's *current* schema and
	// programs — equal to ID at version 0 and drifting from it once the
	// workload is PATCHed. The server recomputes it from the decoded
	// content at load time and discards the file on mismatch, so every
	// snapshot is integrity-checked regardless of version.
	Content  string    `json:"content"`
	Schema   Schema    `json:"schema"`
	Programs []Program `json:"programs"`
	// Results are the persisted subsets result-cache entries; entries whose
	// Version differs from the file's Version are dropped on load.
	Results []Result `json:"results,omitempty"`
	// Cores are the persisted minimal non-robust cores, so a restarted
	// server prunes its first enumeration as effectively as the warm one
	// did; Covers are the robust-side dual (program sets known jointly
	// robust). Both reference programs by full name against the file's own
	// program set; entries naming unknown programs are dropped on load.
	Cores  []CoreGroup `json:"cores,omitempty"`
	Covers []CoreGroup `json:"covers,omitempty"`
}

// CoreGroup is the persisted core set of one analysis configuration: each
// core is a sorted list of program full names that are jointly non-robust
// under (Setting, Method, Bound), minimally so (removing any one program
// flips the verdict to robust). Like Results, cores are trusted once the
// file's content fingerprint verifies — they are derived data used purely
// for pruning, written by the same process that computed the results.
type CoreGroup struct {
	Setting string     `json:"setting"`
	Method  string     `json:"method"`
	Bound   int        `json:"bound"`
	Cores   [][]string `json:"cores"`
	// Certified is the per-core certification provenance column, parallel
	// to Cores: true when the core's non-robustness was proven by a
	// replayed non-serializable execution (internal/certify). Absent in
	// pre-certification snapshots (and for cover groups), in which case
	// every core loads as uncertified — the format number is unchanged
	// because old readers ignore the field and old files decode losslessly.
	Certified []bool `json:"certified,omitempty"`
}

// Result is one persisted subsets result-cache entry: the request key and
// the exact encoded wire response. Body is stored base64-encoded ([]byte)
// rather than as embedded JSON: re-indenting it with the surrounding
// document would destroy the byte-identity the cache guarantees.
type Result struct {
	Key     string `json:"key"`
	Version uint64 `json:"version"`
	Body    []byte `json:"body"`
}

// --- Schema ----------------------------------------------------------------

// Schema mirrors relschema.Schema: relations in declaration order (the
// order matters — the fingerprint hashes the schema's textual rendering)
// and foreign keys.
type Schema struct {
	Relations   []Relation   `json:"relations"`
	ForeignKeys []ForeignKey `json:"foreign_keys,omitempty"`
}

// Relation is one relation with its attributes (sorted) and primary key.
type Relation struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	Key   []string `json:"key"`
}

// ForeignKey mirrors relschema.ForeignKey.
type ForeignKey struct {
	Name       string   `json:"name"`
	Dom        string   `json:"dom"`
	DomAttrs   []string `json:"dom_attrs"`
	Range      string   `json:"range"`
	RangeAttrs []string `json:"range_attrs"`
}

// FromSchema converts a schema to its snapshot form.
func FromSchema(s *relschema.Schema) Schema {
	var out Schema
	for _, r := range s.Relations() {
		out.Relations = append(out.Relations, Relation{
			Name: r.Name, Attrs: r.Attrs.Sorted(), Key: r.Key.Sorted(),
		})
	}
	for _, fk := range s.ForeignKeys() {
		out.ForeignKeys = append(out.ForeignKeys, ForeignKey{
			Name: fk.Name, Dom: fk.Dom, DomAttrs: fk.DomAttrs,
			Range: fk.Range, RangeAttrs: fk.RangeAttrs,
		})
	}
	return out
}

// Build materializes the snapshot schema as a validated relschema.Schema.
func (s Schema) Build() (*relschema.Schema, error) {
	out := relschema.NewSchema()
	for _, r := range s.Relations {
		if err := out.AddRelation(r.Name, r.Attrs, r.Key); err != nil {
			return nil, err
		}
	}
	for _, fk := range s.ForeignKeys {
		if err := out.AddForeignKey(fk.Name, fk.Dom, fk.DomAttrs, fk.Range, fk.RangeAttrs); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- Programs --------------------------------------------------------------

// Program is the snapshot form of one BTP: name, report abbreviation, the
// syntax tree and the foreign-key annotations (by statement name).
type Program struct {
	Name   string   `json:"name"`
	Abbrev string   `json:"abbrev,omitempty"`
	Body   Node     `json:"body"`
	FKs    []FKNote `json:"fks,omitempty"`
}

// FKNote is one q_j = f(q_i) annotation by statement names.
type FKNote struct {
	FK  string `json:"fk"`
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// Node is the one-of encoding of a BTP syntax-tree node: exactly one field
// is set.
type Node struct {
	Stmt *Stmt  `json:"stmt,omitempty"`
	Seq  []Node `json:"seq,omitempty"`
	// Choice holds exactly two alternatives.
	Choice   []Node `json:"choice,omitempty"`
	Optional *Node  `json:"optional,omitempty"`
	Loop     *Node  `json:"loop,omitempty"`
}

// Stmt is the snapshot form of one statement. A nil attribute-set pointer
// encodes ⊥ (undefined); a present, possibly empty list encodes a defined
// set — the distinction Figure 5's constraints depend on.
type Stmt struct {
	Name  string    `json:"name"`
	Type  string    `json:"type"`
	Rel   string    `json:"rel"`
	Read  *[]string `json:"read,omitempty"`
	Write *[]string `json:"write,omitempty"`
	PRead *[]string `json:"pread,omitempty"`
}

// stmtTypeNames maps btp.StmtType to its stable wire name (the String
// rendering) and back.
var stmtTypeNames = map[btp.StmtType]string{
	btp.Ins: "ins", btp.KeySel: "key sel", btp.PredSel: "pred sel",
	btp.KeyUpd: "key upd", btp.PredUpd: "pred upd",
	btp.KeyDel: "key del", btp.PredDel: "pred del",
}

func parseStmtType(s string) (btp.StmtType, error) {
	for t, name := range stmtTypeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("snapshot: unknown statement type %q", s)
}

func fromOptAttrs(o btp.OptAttrs) *[]string {
	if !o.Defined {
		return nil
	}
	s := o.Set.Sorted()
	return &s
}

func toOptAttrs(p *[]string) btp.OptAttrs {
	if p == nil {
		return btp.Undefined()
	}
	return btp.Attrs(*p...)
}

// FromProgram converts a program to its snapshot form. It fails only on
// node kinds this package does not know, which would indicate skew between
// btp and snapshot.
func FromProgram(p *btp.Program) (Program, error) {
	body, err := fromNode(p.Body)
	if err != nil {
		return Program{}, fmt.Errorf("snapshot: program %s: %w", p.Name, err)
	}
	out := Program{Name: p.Name, Abbrev: p.Abbrev, Body: body}
	for _, fk := range p.FKs {
		out.FKs = append(out.FKs, FKNote{FK: fk.FK, Src: fk.Src.Name, Dst: fk.Dst.Name})
	}
	return out, nil
}

func fromNode(n btp.Node) (Node, error) {
	switch n := n.(type) {
	case *btp.StmtNode:
		q := n.Stmt
		typ, ok := stmtTypeNames[q.Type]
		if !ok {
			// A type missing from the map means btp grew a statement kind
			// this package does not know; failing here keeps the skew loud
			// at Save time instead of silently losing the workload at the
			// next boot's parse.
			return Node{}, fmt.Errorf("statement %s: unknown type %v", q.Name, q.Type)
		}
		return Node{Stmt: &Stmt{
			Name: q.Name, Type: typ, Rel: q.Rel,
			Read: fromOptAttrs(q.ReadSet), Write: fromOptAttrs(q.WriteSet),
			PRead: fromOptAttrs(q.PReadSet),
		}}, nil
	case *btp.Seq:
		items := make([]Node, len(n.Items))
		for i, item := range n.Items {
			c, err := fromNode(item)
			if err != nil {
				return Node{}, err
			}
			items[i] = c
		}
		return Node{Seq: items}, nil
	case *btp.Choice:
		a, err := fromNode(n.A)
		if err != nil {
			return Node{}, err
		}
		b, err := fromNode(n.B)
		if err != nil {
			return Node{}, err
		}
		return Node{Choice: []Node{a, b}}, nil
	case *btp.Optional:
		a, err := fromNode(n.A)
		if err != nil {
			return Node{}, err
		}
		return Node{Optional: &a}, nil
	case *btp.Loop:
		body, err := fromNode(n.Body)
		if err != nil {
			return Node{}, err
		}
		return Node{Loop: &body}, nil
	default:
		return Node{}, fmt.Errorf("unknown node type %T", n)
	}
}

// Build materializes the snapshot program as a validated btp.Program over
// the schema, resolving FK annotations by statement name.
func (p Program) Build(schema *relschema.Schema) (*btp.Program, error) {
	body, err := p.Body.build()
	if err != nil {
		return nil, fmt.Errorf("snapshot: program %s: %w", p.Name, err)
	}
	prog := &btp.Program{Name: p.Name, Abbrev: p.Abbrev, Body: body}
	for _, fk := range p.FKs {
		if err := prog.AnnotateFK(schema, fk.FK, fk.Src, fk.Dst); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	if err := prog.Validate(schema); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return prog, nil
}

func (n Node) build() (btp.Node, error) {
	set := 0
	if n.Stmt != nil {
		set++
	}
	if n.Seq != nil {
		set++
	}
	if n.Choice != nil {
		set++
	}
	if n.Optional != nil {
		set++
	}
	if n.Loop != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("node must set exactly one of stmt/seq/choice/optional/loop, has %d", set)
	}
	switch {
	case n.Stmt != nil:
		typ, err := parseStmtType(n.Stmt.Type)
		if err != nil {
			return nil, err
		}
		return btp.S(&btp.Stmt{
			Name: n.Stmt.Name, Type: typ, Rel: n.Stmt.Rel,
			ReadSet: toOptAttrs(n.Stmt.Read), WriteSet: toOptAttrs(n.Stmt.Write),
			PReadSet: toOptAttrs(n.Stmt.PRead),
		}), nil
	case n.Seq != nil:
		items := make([]btp.Node, len(n.Seq))
		for i, c := range n.Seq {
			item, err := c.build()
			if err != nil {
				return nil, err
			}
			items[i] = item
		}
		return &btp.Seq{Items: items}, nil
	case n.Choice != nil:
		if len(n.Choice) != 2 {
			return nil, fmt.Errorf("choice must have exactly 2 alternatives, has %d", len(n.Choice))
		}
		a, err := n.Choice[0].build()
		if err != nil {
			return nil, err
		}
		b, err := n.Choice[1].build()
		if err != nil {
			return nil, err
		}
		return &btp.Choice{A: a, B: b}, nil
	case n.Optional != nil:
		a, err := n.Optional.build()
		if err != nil {
			return nil, err
		}
		return &btp.Optional{A: a}, nil
	default:
		body, err := n.Loop.build()
		if err != nil {
			return nil, err
		}
		return &btp.Loop{Body: body}, nil
	}
}
