package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/faultfs"
)

// Store persists snapshot files in one directory, one `<id>.json` per
// workload. Writes go through a temp file, a data fsync, an atomic rename
// and a directory fsync, so a crash at any point leaves either the old
// snapshot or the new one — never a torn file under the final name, and
// never a rename that silently evaporates with the page cache.
//
// All filesystem access goes through a faultfs.FS (the real filesystem by
// default), which is both the deterministic fault-injection seam of the
// crash-safety tests and the interface a future non-filesystem backend
// plugs into.
type Store struct {
	dir string
	fs  faultfs.FS
	seq atomic.Uint64
}

// Open creates the state directory if needed and returns a store over it,
// backed by the real filesystem.
func Open(dir string) (*Store, error) { return OpenFS(dir, faultfs.OS{}) }

// OpenFS is Open over an explicit filesystem — the fault-injection seam.
// Besides creating the directory, it sweeps temp files a previous crashed
// process left behind: a `*.tmp` that never reached its rename is garbage
// by construction (the rename is the commit point), and letting residue
// accumulate would eventually fill the disk a chaos loop restarts on.
func OpenFS(dir string, fs faultfs.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapshot: empty state directory")
	}
	if fs == nil {
		fs = faultfs.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st := &Store{dir: dir, fs: fs}
	st.sweepTemp()
	return st, nil
}

// sweepTemp removes stale `*.tmp` residue, best effort: a failure to list
// or remove must not prevent boot (the residue is merely disk garbage,
// never loaded).
func (st *Store) sweepTemp() {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return
	}
	swept := false
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if st.fs.Remove(filepath.Join(st.dir, e.Name())) == nil {
				swept = true
			}
		}
	}
	if swept {
		st.fs.SyncDir(st.dir)
	}
}

// Dir returns the directory the store persists into.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(id string) string { return filepath.Join(st.dir, id+".json") }

// validID guards against a fingerprint escaping the state directory; real
// ids are lowercase-hex SHA-256 prefixes.
func validID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		ok := r >= '0' && r <= '9' || r >= 'a' && r <= 'f'
		if !ok {
			return false
		}
	}
	return true
}

// tmpName generates a process-unique temp path for one write: pid plus a
// per-store sequence number. Concurrent Saves of the same workload then
// race only at the rename, where either complete, fsynced file winning is
// fine — a shared temp name would interleave the writes and rename a torn
// file into place.
func (st *Store) tmpName(id string) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s-%d-%d.tmp", id, os.Getpid(), st.seq.Add(1)))
}

// Save writes the snapshot durably under its workload id, stamping the
// current format version. The sequence is the classic crash-safe one:
// write the temp file, fsync it (so its bytes precede the rename on disk),
// close, rename into place, fsync the directory (so the rename itself is
// durable — without it a power cut can revert to the old file, or to
// nothing). Any failure removes the temp file: error paths must not leave
// `*.tmp` residue behind (boot additionally sweeps residue a hard crash
// makes unavoidable).
func (st *Store) Save(f *File) error {
	if !validID(f.ID) {
		return fmt.Errorf("snapshot: invalid workload id %q", f.ID)
	}
	f.Format = Format
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := st.tmpName(f.ID)
	w, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	_, werr := w.Write(append(data, '\n'))
	if werr == nil {
		// The data fsync before rename: a rename made durable ahead of the
		// bytes it points at is exactly the torn-snapshot crash mode.
		werr = w.Sync()
	}
	cerr := w.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = st.fs.Rename(tmp, st.path(f.ID))
	}
	if werr != nil {
		st.fs.Remove(tmp)
		return fmt.Errorf("snapshot: %w", werr)
	}
	// The directory fsync after rename commits the new entry. If it fails,
	// the write is reported failed — the file may be in place in memory,
	// but its durability is not established, and the caller's retry path
	// (the server's backoff flusher) will rewrite it.
	if err := st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Delete removes the snapshot of the workload, if present (evicted
// workloads must not resurrect on the next boot), and syncs the directory
// so the removal is durable.
func (st *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("snapshot: invalid workload id %q", id)
	}
	if err := st.fs.Remove(st.path(id)); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// LoadAll decodes every `*.json` snapshot in the directory, in filename
// order. Files that cannot be read or decoded, carry an unknown format, or
// whose embedded id does not match their filename are returned in skipped —
// a corrupt or partial snapshot must never prevent boot. The caller is
// expected to additionally verify each file's fingerprint before trusting
// its content.
func (st *Store) LoadAll() (files []*File, skipped []string, err error) {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := st.fs.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			skipped = append(skipped, name)
			continue
		}
		if f.Format != Format || f.ID != strings.TrimSuffix(name, ".json") {
			skipped = append(skipped, name)
			continue
		}
		files = append(files, &f)
	}
	return files, skipped, nil
}
