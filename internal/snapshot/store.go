package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store persists snapshot files in one directory, one `<id>.json` per
// workload. Writes go through a temp file and an atomic rename, so a crash
// mid-write leaves either the old snapshot or none — never a torn file with
// the final name.
type Store struct {
	dir string
}

// Open creates the state directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snapshot: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory the store persists into.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(id string) string { return filepath.Join(st.dir, id+".json") }

// validID guards against a fingerprint escaping the state directory; real
// ids are lowercase-hex SHA-256 prefixes.
func validID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		ok := r >= '0' && r <= '9' || r >= 'a' && r <= 'f'
		if !ok {
			return false
		}
	}
	return true
}

// Save writes the snapshot atomically under its workload id, stamping the
// current format version. Each call writes its own temp file (CreateTemp,
// not a fixed name): concurrent Saves of the same workload then race only
// at the rename, where either complete file winning is fine — a shared
// temp name would interleave the writes and rename a torn file into place.
func (st *Store) Save(f *File) error {
	if !validID(f.ID) {
		return fmt.Errorf("snapshot: invalid workload id %q", f.ID)
	}
	f.Format = Format
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, f.ID+"-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), st.path(f.ID))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", werr)
	}
	return nil
}

// Delete removes the snapshot of the workload, if present (evicted
// workloads must not resurrect on the next boot).
func (st *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("snapshot: invalid workload id %q", id)
	}
	if err := os.Remove(st.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// LoadAll decodes every `*.json` snapshot in the directory, in filename
// order. Files that cannot be read or decoded, carry an unknown format, or
// whose embedded id does not match their filename are returned in skipped —
// a corrupt or partial snapshot must never prevent boot. The caller is
// expected to additionally verify each file's fingerprint before trusting
// its content.
func (st *Store) LoadAll() (files []*File, skipped []string, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			skipped = append(skipped, name)
			continue
		}
		if f.Format != Format || f.ID != strings.TrimSuffix(name, ".json") {
			skipped = append(skipped, name)
			continue
		}
		files = append(files, &f)
	}
	return files, skipped, nil
}
