package snapshot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/relschema"
)

// roundTripProgram serializes p through JSON and rebuilds it over schema.
func roundTripProgram(t *testing.T, schema *relschema.Schema, p *btp.Program) *btp.Program {
	t.Helper()
	sp, err := FromProgram(p)
	if err != nil {
		t.Fatalf("FromProgram(%s): %v", p.Name, err)
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Build(schema)
	if err != nil {
		t.Fatalf("Build(%s): %v", p.Name, err)
	}
	return got
}

// TestBenchmarkRoundTrip pushes every program of every built-in benchmark
// through the snapshot encoding and asserts the rebuilt programs are
// indistinguishable to the analysis: same rendering, same statements, same
// FK annotations, same schema text (the inputs of the server fingerprint).
func TestBenchmarkRoundTrip(t *testing.T) {
	for _, mk := range []func() *benchmarks.Benchmark{
		benchmarks.SmallBank, benchmarks.TPCC, benchmarks.Auction,
	} {
		bench := mk()
		ws := FromSchema(bench.Schema)
		data, err := json.Marshal(ws)
		if err != nil {
			t.Fatal(err)
		}
		var wsBack Schema
		if err := json.Unmarshal(data, &wsBack); err != nil {
			t.Fatal(err)
		}
		schema, err := wsBack.Build()
		if err != nil {
			t.Fatalf("%s schema: %v", bench.Name, err)
		}
		if schema.String() != bench.Schema.String() {
			t.Errorf("%s schema text drifted:\n%s\nvs\n%s", bench.Name, schema.String(), bench.Schema.String())
		}
		for _, p := range bench.Programs {
			got := roundTripProgram(t, schema, p)
			if got.String() != p.String() || got.Abbrev != p.Abbrev {
				t.Errorf("%s/%s: %q (abbrev %q) != %q (abbrev %q)",
					bench.Name, p.Name, got.String(), got.Abbrev, p.String(), p.Abbrev)
			}
			gq, wq := got.Statements(), p.Statements()
			if len(gq) != len(wq) {
				t.Fatalf("%s/%s: %d statements != %d", bench.Name, p.Name, len(gq), len(wq))
			}
			for i := range gq {
				if gq[i].String() != wq[i].String() {
					t.Errorf("%s/%s stmt %d: %s != %s", bench.Name, p.Name, i, gq[i], wq[i])
				}
			}
			if len(got.FKs) != len(p.FKs) {
				t.Fatalf("%s/%s: %d FK annotations != %d", bench.Name, p.Name, len(got.FKs), len(p.FKs))
			}
			for i := range got.FKs {
				if got.FKs[i].String() != p.FKs[i].String() {
					t.Errorf("%s/%s FK %d: %s != %s", bench.Name, p.Name, i, got.FKs[i], p.FKs[i])
				}
			}
		}
	}
}

// TestAllNodeKindsRoundTrip covers loop, choice and optional nodes plus a
// defined-but-empty attribute set (⊥ vs {} must survive the encoding).
func TestAllNodeKindsRoundTrip(t *testing.T) {
	schema := relschema.NewSchema()
	schema.MustAddRelation("R", []string{"id", "v"}, []string{"id"})
	q1 := btp.NewKeySel("q1", "R", "v")
	q2 := btp.NewKeyUpd("q2", "R", []string{"v"}, []string{"v"})
	q3 := btp.NewIns(schema, "q3", "R")
	q4 := btp.NewKeySel("q4", "R") // empty (defined) read set
	p := &btp.Program{
		Name:   "Everything",
		Abbrev: "Ev",
		Body: btp.SeqOf(
			btp.S(q1),
			btp.LoopOf(btp.ChoiceOf(btp.S(q2), btp.S(q3))),
			btp.Opt(btp.S(q4)),
		),
	}
	if err := p.Validate(schema); err != nil {
		t.Fatal(err)
	}
	got := roundTripProgram(t, schema, p)
	if got.String() != p.String() {
		t.Errorf("tree drifted: %q != %q", got.String(), p.String())
	}
	gq := got.StatementByName("q4")
	if gq == nil || !gq.ReadSet.Defined || !gq.ReadSet.Set.Empty() {
		t.Errorf("empty-but-defined read set lost: %+v", gq)
	}
	if gu := got.StatementByName("q1"); gu.WriteSet.Defined {
		t.Errorf("⊥ write set became defined: %+v", gu)
	}
}

// TestNodeBuildRejectsMalformed: a node with zero or two kinds set, or a
// choice without exactly two alternatives, must error rather than build a
// wrong tree.
func TestNodeBuildRejectsMalformed(t *testing.T) {
	for name, n := range map[string]Node{
		"empty":      {},
		"two kinds":  {Stmt: &Stmt{Name: "q", Type: "ins", Rel: "R"}, Loop: &Node{}},
		"one-choice": {Choice: []Node{{Stmt: &Stmt{Name: "q", Type: "ins", Rel: "R"}}}},
		"bad type":   {Stmt: &Stmt{Name: "q", Type: "bogus", Rel: "R"}},
	} {
		if _, err := n.build(); err == nil {
			t.Errorf("%s: malformed node accepted", name)
		}
	}
}

func sampleFile(t *testing.T) *File {
	t.Helper()
	bench := benchmarks.SmallBank()
	f := &File{ID: "0123456789abcdef", Version: 3, Schema: FromSchema(bench.Schema)}
	for _, p := range bench.Programs {
		sp, err := FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		f.Programs = append(f.Programs, sp)
	}
	f.Results = []Result{{Key: "3|attr+fk|type2|0|x", Version: 3, Body: []byte(`{"robust":[]}` + "\n")}}
	return f
}

func TestStoreSaveLoadDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := sampleFile(t)
	if err := st.Save(f); err != nil {
		t.Fatal(err)
	}
	files, skipped, err := st.LoadAll()
	if err != nil || len(skipped) != 0 || len(files) != 1 {
		t.Fatalf("LoadAll = %d files, %v skipped, err %v", len(files), skipped, err)
	}
	got := files[0]
	if got.ID != f.ID || got.Version != 3 || len(got.Programs) != 5 || len(got.Results) != 1 {
		t.Fatalf("loaded file drifted: %+v", got)
	}
	if err := st.Delete(f.ID); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(f.ID); err != nil {
		t.Errorf("double delete: %v", err)
	}
	files, _, err = st.LoadAll()
	if err != nil || len(files) != 0 {
		t.Fatalf("after delete: %d files, err %v", len(files), err)
	}
}

// TestStoreSkipsCorrupt: garbage, truncated JSON, wrong-format and
// misnamed files are skipped, while a healthy sibling still loads.
func TestStoreSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := sampleFile(t)
	if err := st.Save(f); err != nil {
		t.Fatal(err)
	}
	writeRaw := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw("aaaa.json", "{ this is not json")
	writeRaw("bbbb.json", `{"format": 1, "id": "bbbb", "version": 1`) // truncated
	writeRaw("cccc.json", `{"format": 999, "id": "cccc"}`)            // unknown format
	writeRaw("dddd.json", `{"format": 1, "id": "mismatch"}`)          // id != filename
	writeRaw("ignored.txt", "not a snapshot")
	writeRaw("eeee.json.tmp", "torn write leftover")

	files, skipped, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].ID != f.ID {
		t.Fatalf("healthy file lost among corrupt ones: %d files", len(files))
	}
	if len(skipped) != 4 {
		t.Errorf("skipped = %v, want the 4 corrupt .json files", skipped)
	}
}

// TestStoreRejectsBadIDs: ids that could escape the directory are refused.
func TestStoreRejectsBadIDs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "UPPER", "with/slash"} {
		if err := st.Save(&File{ID: id}); err == nil {
			t.Errorf("Save accepted id %q", id)
		}
		if err := st.Delete(id); err == nil {
			t.Errorf("Delete accepted id %q", id)
		}
	}
}
