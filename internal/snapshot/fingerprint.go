package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// Fingerprint hashes a schema and the full program definitions — statement
// read/write/predicate sets and foreign-key annotations included — so two
// workloads collide only when they are semantically identical to the
// analysis. Per-program FK annotations are hashed in sorted order: the
// robustness analysis treats them as a set, and the SQL front door may
// derive them in a different order than a hand-built definition.
func Fingerprint(schema *relschema.Schema, programs []*btp.Program) string {
	h := sha256.New()
	io.WriteString(h, schema.String())
	for _, p := range programs {
		fmt.Fprintf(h, "\x00%s\x00%s\x00%s\n", p.Name, p.Abbrev, p.String())
		for _, q := range p.Statements() {
			io.WriteString(h, q.String())
			io.WriteString(h, "\n")
		}
		fks := make([]string, 0, len(p.FKs))
		for _, fk := range p.FKs {
			fks = append(fks, fk.String())
		}
		sort.Strings(fks)
		for _, s := range fks {
			io.WriteString(h, s)
			io.WriteString(h, "\n")
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
