package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/faultfs"
)

// testFile builds a small valid snapshot file from the SmallBank benchmark.
func testFile(t *testing.T) *File {
	t.Helper()
	bench := benchmarks.SmallBank()
	f := &File{
		ID:      Fingerprint(bench.Schema, bench.Programs),
		Content: Fingerprint(bench.Schema, bench.Programs),
		Schema:  FromSchema(bench.Schema),
	}
	for _, p := range bench.Programs {
		sp, err := FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		f.Programs = append(f.Programs, sp)
	}
	return f
}

// noTmpResidue fails the test if any *.tmp file is present in dir.
func noTmpResidue(t *testing.T, dir, when string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("%s: temp residue %s left behind", when, e.Name())
		}
	}
}

// TestSaveFsyncDiscipline asserts the exact crash-safe operation order of
// one Save: create, write, data fsync, close, rename, directory fsync.
// This is the property the whole fault matrix leans on — without the data
// fsync before the rename, a "passing" matrix would still admit torn
// snapshots on real power cuts.
func TestSaveFsyncDiscipline(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(faultfs.OS{})
	st, err := OpenFS(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	in.StartTrace()
	if err := st.Save(testFile(t)); err != nil {
		t.Fatal(err)
	}
	want := []faultfs.Op{
		faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync, faultfs.OpClose,
		faultfs.OpRename, faultfs.OpSyncDir,
	}
	trace := in.Trace()
	if len(trace) != len(want) {
		t.Fatalf("Save issued %d ops, want %d: %+v", len(trace), len(want), trace)
	}
	for i, e := range trace {
		if e.Op != want[i] {
			t.Fatalf("op[%d] = %s, want %s (full trace %+v)", i, e.Op, want[i], trace)
		}
	}
}

// TestSaveFaultMatrix drives one Save through every failure point of the
// write sequence — ENOSPC at each op, a torn write, a failed rename, and a
// crash between write and rename — and asserts the two recovery
// invariants: (1) no *.tmp residue survives a failed Save (crash faults
// excepted: the dead process cannot clean up, so the next OpenFS must
// sweep), and (2) a fresh store over the same directory either loads the
// previously committed snapshot intact or loads nothing — never a torn or
// partial file.
func TestSaveFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		fault *faultfs.Fault
		// crash marks schedules whose failure leaves residue only boot
		// recovery can remove.
		crash bool
		// committed marks schedules that fail only after the rename — the
		// new file is legitimately in place (its durability is what the
		// retry re-establishes), so boot loads it.
		committed bool
	}{
		{name: "enospc_create", fault: &faultfs.Fault{Op: faultfs.OpCreate, Err: syscall.ENOSPC}},
		{name: "enospc_write", fault: &faultfs.Fault{Op: faultfs.OpWrite, Err: syscall.ENOSPC}},
		{name: "enospc_sync", fault: &faultfs.Fault{Op: faultfs.OpSync, Err: syscall.ENOSPC}},
		// After=2 skips OpenFS's own MkdirAll + sweep ReadDir, so the disk
		// "fills up" exactly as the first Save begins.
		{name: "enospc_persistent", fault: faultfs.ENOSPC(2)},
		{name: "torn_write", fault: faultfs.Torn(0, 10)},
		{name: "rename_failed", fault: faultfs.FailOnce(faultfs.OpRename, 0)},
		{name: "dirsync_failed", fault: faultfs.FailOnce(faultfs.OpSyncDir, 0), committed: true},
		{name: "close_failed", fault: faultfs.FailOnce(faultfs.OpClose, 0)},
		{name: "crash_before_rename", fault: faultfs.CrashAt(faultfs.OpRename, 0), crash: true},
		{name: "crash_mid_write", fault: &faultfs.Fault{Op: faultfs.OpWrite, TornBytes: 7, Crash: true}, crash: true},
		{name: "crash_at_sync", fault: faultfs.CrashAt(faultfs.OpSync, 0), crash: true},
	}
	for _, tc := range cases {
		for _, preCommit := range []bool{false, true} {
			name := tc.name + "/empty_dir"
			if preCommit {
				name = tc.name + "/over_committed_snapshot"
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				f := testFile(t)
				if preCommit {
					// Commit a good snapshot first; the faulted overwrite
					// must not damage it.
					st, err := OpenFS(dir, faultfs.OS{})
					if err != nil {
						t.Fatal(err)
					}
					if err := st.Save(f); err != nil {
						t.Fatal(err)
					}
				}
				// Each subtest gets its own copy: faults carry match/fire
				// state and must not leak across runs.
				fault := *tc.fault
				in := faultfs.NewInjector(faultfs.OS{}, &fault)
				st, err := OpenFS(dir, in)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Save(f); err == nil {
					t.Fatal("faulted Save succeeded, want error")
				}
				if !tc.crash {
					noTmpResidue(t, dir, "after failed Save")
				}

				// Boot recovery: a fresh store over the same directory on a
				// healthy filesystem.
				st2, err := OpenFS(dir, faultfs.OS{})
				if err != nil {
					t.Fatal(err)
				}
				noTmpResidue(t, dir, "after boot sweep")
				files, skippedNames, err := st2.LoadAll()
				if err != nil {
					t.Fatal(err)
				}
				if len(skippedNames) != 0 {
					t.Fatalf("boot skipped %v — a failed Save must never leave a torn file under the final name", skippedNames)
				}
				wantFiles := 0
				if preCommit || tc.committed {
					wantFiles = 1
				}
				if len(files) != wantFiles {
					t.Fatalf("boot loaded %d snapshots, want %d", len(files), wantFiles)
				}
				if preCommit && files[0].ID != f.ID {
					t.Fatalf("recovered snapshot id = %s, want %s", files[0].ID, f.ID)
				}
				// The recovered directory is fully writable again: the
				// retried Save must succeed and round-trip.
				if err := st2.Save(f); err != nil {
					t.Fatalf("post-recovery Save: %v", err)
				}
				files, skippedNames, err = st2.LoadAll()
				if err != nil || len(files) != 1 || len(skippedNames) != 0 {
					t.Fatalf("post-recovery LoadAll = %d files, skipped %v, err %v", len(files), skippedNames, err)
				}
			})
		}
	}
}

// TestRenameFailureRemovesTemp pins the specific regression of the rename
// path: a Save whose rename fails must remove its temp file before
// returning (it used to leave it when the removal raced the error return).
func TestRenameFailureRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(faultfs.OS{}, faultfs.FailOnce(faultfs.OpRename, 0))
	st, err := OpenFS(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testFile(t)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save error = %v, want injected rename failure", err)
	}
	noTmpResidue(t, dir, "after rename failure")
}

// TestBootSweepRemovesCrashResidue: temp files from a crashed process are
// removed by the next OpenFS and never surface as loadable snapshots.
func TestBootSweepRemovesCrashResidue(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"deadbeef-1-1.tmp", "deadbeef-1-2.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{\"torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	noTmpResidue(t, dir, "after Open")
	files, skippedNames, err := st.LoadAll()
	if err != nil || len(files) != 0 || len(skippedNames) != 0 {
		t.Fatalf("LoadAll over swept dir = %d files, skipped %v, err %v", len(files), skippedNames, err)
	}
}
