// Package realize attempts to turn a dangerous cycle found in a summary
// graph (a static non-robustness verdict) into a concrete counterexample: a
// schedule in schedules(P, mvrc) that is not conflict serializable.
//
// Algorithm 2 is sound but incomplete — the presence of a type-II cycle
// does not imply non-robustness (Section 6.3). Realization separates the
// two outcomes at the BTP level: if a witness cycle can be realized, the
// program set is provably not robust as a set of BTPs; if exhaustive
// search over the canonical instantiation finds nothing, the verdict may be
// a false negative.
//
// Note the abstraction level: TPC-C's {Delivery} (Section 7.2) realizes a
// BTP-level counterexample — two Delivery instances deleting different
// "oldest" open orders — even though the concrete SQL program is robust,
// because the real predicate forces both instances to select the same
// oldest order. The BTP formalism deliberately discards predicate
// conditions, so that schedule is inside schedules(P, mvrc) for the BTPs
// while being unreachable for the SQL programs. Realization therefore
// proves BTP-level non-robustness; SQL-level robustness can still differ.
//
// The realization strategy instantiates one transaction per node visit of
// the witness cycle over a canonical tuple population. Statements linked by
// foreign-key annotations form entity groups that share consistent tuples;
// unrelated statements of the same relation maximize conflicts by sharing
// the relation's primary tuple; inserts and deletes receive private tuples
// (the formalism allows at most one insert and one delete per tuple).
package realize

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/relschema"
	"repro/internal/schedule"
	"repro/internal/seg"
	"repro/internal/summary"
)

// Options bound the realization search.
type Options struct {
	// MaxSchedules caps the exhaustive interleaving search (0 = the
	// enumerate default).
	MaxSchedules int
	// ExtraInstances adds one extra instance of every distinct program in
	// the witness, widening the search beyond the cycle's multiplicity.
	ExtraInstances bool
	// IgnoreFKs instantiates without the programs' foreign-key
	// annotations. Use it when the witness came from an analysis setting
	// that ignored foreign keys: the 'tpl dep' / 'attr dep' settings
	// overapproximate schedules by dropping the annotations, and the
	// realization must search the same space.
	IgnoreFKs bool
}

// Outcome classifies a realization attempt.
type Outcome int

// Outcomes.
const (
	// Realized: a concrete MVRC-allowed, non-serializable schedule exists;
	// the BTP set is definitely not robust.
	Realized Outcome = iota
	// Refuted: the canonical instantiation admits no counterexample (its
	// whole interleaving space was searched); the verdict may be a false
	// negative. Other instantiations could still realize the cycle.
	Refuted
	// Inconclusive: the search budget was exhausted first, or the
	// canonical instantiation was inapplicable (see Note).
	Inconclusive
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Realized:
		return "realized"
	case Refuted:
		return "refuted (possible false negative)"
	default:
		return "inconclusive"
	}
}

// Result reports a realization attempt.
type Result struct {
	Outcome Outcome
	// Schedule and Graph hold the counterexample when Outcome == Realized.
	Schedule *schedule.Schedule
	Graph    *seg.Graph
	// Explored counts examined interleavings.
	Explored int
	// Instances lists the instantiated transactions' labels.
	Instances []string
	// Note explains an Inconclusive outcome.
	Note string
}

// Witness realizes a dangerous cycle from a summary graph: it instantiates
// the cycle's programs and searches the MVRC schedule space for a
// non-serializable schedule.
func Witness(s *relschema.Schema, w *summary.Witness, opts Options) (*Result, error) {
	if w == nil || len(w.Cycle) == 0 {
		return nil, fmt.Errorf("realize: empty witness")
	}
	res, err := Programs(s, witnessLTPs(w, opts.ExtraInstances), opts)
	if err != nil || res.Outcome == Realized {
		return res, err
	}
	// Second attempt: witness-guided tuple sharing. The canonical
	// shared-tuple instantiation can over-serialize instances through rows
	// the cycle does not need (e.g. PlaceBid's buyer update); the guided
	// assignment shares tuples only along the cycle's edges, with a
	// foreign-key congruence closure keeping annotated statements on
	// consistent tuples when the annotations are in force.
	guided, gerr := guidedAssignments(s, w, opts.IgnoreFKs)
	if gerr != nil {
		return res, nil // keep the canonical outcome
	}
	search, gerr := enumerate.FindCounterexample(s, guided, enumerate.Options{MaxSchedules: opts.MaxSchedules})
	if gerr != nil {
		return res, nil
	}
	res.Explored += search.Explored
	if search.Found {
		res.Outcome = Realized
		res.Schedule = search.Schedule
		res.Graph = search.Graph
		res.Instances = res.Instances[:0]
		for _, inst := range guided {
			res.Instances = append(res.Instances, inst.LTP.Name)
		}
		res.Note = "realized by witness-guided instantiation"
	} else if res.Outcome == Refuted && !search.Exhausted {
		res.Outcome = Inconclusive
		res.Note = "guided search budget exhausted"
	}
	return res, nil
}

// witnessLTPs lists the LTP instances a witness cycle demands: one per
// cycle edge, plus (optionally) one extra per distinct program.
func witnessLTPs(w *summary.Witness, extra bool) []*btp.LTP {
	var ltps []*btp.LTP
	seen := map[*btp.LTP]int{}
	for _, e := range w.Cycle {
		ltps = append(ltps, e.From)
		seen[e.From]++
	}
	if extra {
		for l := range seen {
			ltps = append(ltps, l)
		}
	}
	return ltps
}

// canonicalInstances instantiates the LTP list over the canonical shared
// tuple population (one transaction per entry).
func canonicalInstances(s *relschema.Schema, instancesLTPs []*btp.LTP, ignoreFKs bool) ([]enumerate.Instance, []string, error) {
	if ignoreFKs {
		stripped := make([]*btp.LTP, len(instancesLTPs))
		for i, l := range instancesLTPs {
			// A copy without origin loses the FK annotations while keeping
			// the statement occurrences and name.
			stripped[i] = &btp.LTP{Name: l.Name, Stmts: l.Stmts}
		}
		instancesLTPs = stripped
	}
	pop := newPopulation(s)
	var instances []enumerate.Instance
	var labels []string
	for i, l := range instancesLTPs {
		asg, err := pop.assignment(l, i)
		if err != nil {
			return nil, labels, err
		}
		instances = append(instances, enumerate.Instance{LTP: l, Assignment: asg})
		labels = append(labels, l.Name)
	}
	return instances, labels, nil
}

// Candidate is one instantiation strategy's instance set, for callers that
// run the counterexample search themselves (internal/certify replays the
// found schedule through the MVCC engine afterwards).
type Candidate struct {
	// Name identifies the strategy: "canonical" or "guided".
	Name string
	// Instances is the concrete instance list to search over.
	Instances []enumerate.Instance
}

// CandidateSets derives every instantiation candidate for a witness without
// searching: the canonical population over the cycle's LTP multiset
// (widened by ExtraInstances when set) and the witness-guided assignment.
// Strategies whose instantiation fails are reported in the error list and
// skipped; an empty candidate list with a non-empty error list means the
// witness admits no instantiation under these options.
func CandidateSets(s *relschema.Schema, w *summary.Witness, opts Options) ([]Candidate, []error) {
	if w == nil || len(w.Cycle) == 0 {
		return nil, []error{fmt.Errorf("realize: empty witness")}
	}
	var cands []Candidate
	var errs []error
	if insts, _, err := canonicalInstances(s, witnessLTPs(w, opts.ExtraInstances), opts.IgnoreFKs); err != nil {
		errs = append(errs, fmt.Errorf("canonical instantiation inapplicable: %w", err))
	} else {
		cands = append(cands, Candidate{Name: "canonical", Instances: insts})
	}
	if guided, err := guidedAssignments(s, w, opts.IgnoreFKs); err != nil {
		errs = append(errs, fmt.Errorf("guided instantiation inapplicable: %w", err))
	} else {
		cands = append(cands, Candidate{Name: "guided", Instances: guided})
	}
	return cands, errs
}

// Programs realizes a counterexample over explicit LTP instances (one
// transaction per list entry).
func Programs(s *relschema.Schema, instancesLTPs []*btp.LTP, opts Options) (*Result, error) {
	instances, labels, err := canonicalInstances(s, instancesLTPs, opts.IgnoreFKs)
	if err != nil {
		return &Result{
			Outcome:   Inconclusive,
			Note:      fmt.Sprintf("canonical instantiation inapplicable: %v", err),
			Instances: labels,
		}, nil
	}
	search, err := enumerate.FindCounterexample(s, instances, enumerate.Options{MaxSchedules: opts.MaxSchedules})
	if err != nil {
		return &Result{
			Outcome:   Inconclusive,
			Note:      fmt.Sprintf("canonical instantiation inapplicable: %v", err),
			Instances: labels,
		}, nil
	}
	res := &Result{Explored: search.Explored, Instances: labels}
	switch {
	case search.Found:
		res.Outcome = Realized
		res.Schedule = search.Schedule
		res.Graph = search.Graph
	case search.Exhausted:
		res.Outcome = Refuted
	default:
		res.Outcome = Inconclusive
		res.Note = "interleaving budget exhausted"
	}
	return res, nil
}

// population carries the global tuple population and foreign-key valuation
// shared by all instances.
type population struct {
	schema *relschema.Schema
	// tuples lists every tuple name per relation, in creation order.
	tuples map[string][]string
	// fkVal is the global valuation: foreign key -> dom tuple -> range
	// tuple. Grown consistently; conflicting requirements bump the entity
	// index instead of overwriting.
	fkVal map[string]map[string]string
	// deleted marks tuples already claimed by a delete in some instance:
	// the formalism allows at most one delete per tuple across the whole
	// schedule, and per-instance read/write tracking cannot see it.
	deleted map[string]bool
}

func newPopulation(s *relschema.Schema) *population {
	p := &population{
		schema:  s,
		tuples:  map[string][]string{},
		fkVal:   map[string]map[string]string{},
		deleted: map[string]bool{},
	}
	for _, f := range s.ForeignKeys() {
		p.fkVal[f.Name] = map[string]string{}
	}
	return p
}

// relTuple names the idx-th conflict tuple of a relation and registers it.
func (p *population) relTuple(rel string, idx int) string {
	name := "t_" + rel
	if idx > 1 {
		name = fmt.Sprintf("t_%s_%d", rel, idx)
	}
	p.register(rel, name)
	return name
}

func (p *population) register(rel, name string) {
	for _, existing := range p.tuples[rel] {
		if existing == name {
			return
		}
	}
	p.tuples[rel] = append(p.tuples[rel], name)
}

// maxEntityIndex bounds the per-group index search.
const maxEntityIndex = 8

// assignment builds the canonical assignment for instance i of the LTP.
func (p *population) assignment(l *btp.LTP, instance int) (instantiate.Assignment, error) {
	asg := instantiate.Assignment{
		Key:  map[*btp.StmtOcc]string{},
		Pred: map[*btp.StmtOcc][]string{},
		FK:   p.fkVal,
	}
	constraints := l.FKs()

	// Union-find over statements linked by FK annotations.
	parent := map[*btp.Stmt]*btp.Stmt{}
	var find func(q *btp.Stmt) *btp.Stmt
	find = func(q *btp.Stmt) *btp.Stmt {
		if parent[q] == nil || parent[q] == q {
			parent[q] = q
			return q
		}
		root := find(parent[q])
		parent[q] = root
		return root
	}
	union := func(a, b *btp.Stmt) { parent[find(a)] = find(b) }
	for _, c := range constraints {
		union(c.Src, c.Dst)
	}

	// Group occurrences by component, in first-occurrence order.
	var groupOrder []*btp.Stmt
	groups := map[*btp.Stmt][]*btp.StmtOcc{}
	for _, occ := range l.Stmts {
		root := find(occ.Stmt)
		if _, ok := groups[root]; !ok {
			groupOrder = append(groupOrder, root)
		}
		groups[root] = append(groups[root], occ)
	}

	usedRead := map[string]bool{}
	usedWrite := map[string]bool{}
	st := &instanceState{delPos: map[string]int{}, accPos: map[string][]int{}}
	for _, root := range groupOrder {
		occs := groups[root]
		if err := p.assignGroup(l, instance, occs, constraints, asg, usedRead, usedWrite, st); err != nil {
			return instantiate.Assignment{}, err
		}
	}
	return asg, nil
}

// instanceState tracks, per instance, where tuples are deleted and where
// they are key-accessed (statement positions). The MVCC engine executes a
// transaction's own operations against its own uncommitted state, so a
// key-based access after the same transaction's delete of that tuple would
// fail on replay even though the abstract schedule (which reads
// last-committed versions) allows it. Predicate reads are exempt: a
// deleted row simply falls out of the selection.
type instanceState struct {
	delPos map[string]int
	accPos map[string][]int
}

// assignGroup assigns one entity group, trying increasing entity indices
// until the strict instantiation form and the global FK valuation are both
// satisfied.
func (p *population) assignGroup(l *btp.LTP, instance int, occs []*btp.StmtOcc,
	constraints []btp.FKConstraint, asg instantiate.Assignment, usedRead, usedWrite map[string]bool,
	st *instanceState) error {

	inGroup := map[*btp.Stmt]bool{}
	for _, occ := range occs {
		inGroup[occ.Stmt] = true
	}

try:
	for idx := 1; idx <= maxEntityIndex; idx++ {
		keyTuple := map[*btp.StmtOcc]string{}
		predTuples := map[*btp.StmtOcc][]string{}
		newRead := map[string]bool{}
		newWrite := map[string]bool{}
		newDel := map[string]int{}
		newAcc := map[string][]int{}
		reads := func(q *btp.Stmt) bool {
			return q.Type == btp.KeySel || (q.ReadSet.Defined && !q.ReadSet.Set.Empty())
		}
		// deletedBefore reports whether this instance deletes the tuple at a
		// statement position strictly before pos.
		deletedBefore := func(tuple string, pos int) bool {
			if dp, ok := st.delPos[tuple]; ok && dp < pos {
				return true
			}
			if dp, ok := newDel[tuple]; ok && dp < pos {
				return true
			}
			return false
		}
		// accessedAfter reports whether this instance key-accesses the tuple
		// at a statement position strictly after pos.
		accessedAfter := func(tuple string, pos int) bool {
			for _, ap := range st.accPos[tuple] {
				if ap > pos {
					return true
				}
			}
			for _, ap := range newAcc[tuple] {
				if ap > pos {
					return true
				}
			}
			return false
		}
		fkAdd := map[string]map[string]string{}

		// Tentatively place every occurrence.
		for _, occ := range occs {
			q := occ.Stmt
			switch q.Type {
			case btp.Ins, btp.KeyDel:
				prefix := byte('d')
				if q.Type == btp.Ins {
					prefix = 'n'
				}
				tuple := fmt.Sprintf("%c_%s_%d_%d", prefix, q.Rel, instance, occ.Pos)
				if q.Type == btp.KeyDel {
					newDel[tuple] = occ.Pos
				}
				keyTuple[occ] = tuple
			case btp.KeySel, btp.KeyUpd:
				tuple := p.relTupleName(q.Rel, idx)
				if reads(q) && (usedRead[tuple] || newRead[tuple]) {
					continue try
				}
				if q.Type == btp.KeyUpd && (usedWrite[tuple] || newWrite[tuple]) {
					continue try
				}
				if deletedBefore(tuple, occ.Pos) {
					continue try // own earlier delete: the engine sees no row
				}
				if reads(q) {
					newRead[tuple] = true
				}
				if q.Type == btp.KeyUpd {
					newWrite[tuple] = true
				}
				newAcc[tuple] = append(newAcc[tuple], occ.Pos)
				keyTuple[occ] = tuple
			case btp.PredUpd, btp.PredDel:
				tuple := p.relTupleName(q.Rel, idx)
				writeBusy := usedWrite[tuple] || newWrite[tuple]
				readBusy := reads(q) && (usedRead[tuple] || newRead[tuple])
				if q.Type == btp.PredDel && p.deleted[tuple] {
					writeBusy = true // another instance already deletes it
				}
				if deletedBefore(tuple, occ.Pos) {
					writeBusy = true // own earlier delete: no row to touch
				}
				if q.Type == btp.PredDel && accessedAfter(tuple, occ.Pos) {
					// A later statement of this instance key-accesses the
					// tuple; deleting it here would make that access fail on
					// the engine, so the predicate simply does not match it.
					writeBusy = true
				}
				if writeBusy || readBusy {
					predTuples[occ] = nil // empty predicate match
					continue
				}
				newWrite[tuple] = true
				if reads(q) {
					newRead[tuple] = true
				}
				if q.Type == btp.PredDel {
					newDel[tuple] = occ.Pos
				}
				newAcc[tuple] = append(newAcc[tuple], occ.Pos)
				predTuples[occ] = []string{tuple}
			case btp.PredSel:
				// Resolved in the commit phase: reads every registered
				// tuple of the relation that remains readable and
				// valuation-consistent.
				predTuples[occ] = nil
			}
		}

		// Check and collect FK valuation requirements.
		dstTupleOf := func(d *btp.Stmt) (string, bool) {
			for _, occ := range occs {
				if occ.Stmt == d {
					return keyTuple[occ], true
				}
			}
			return "", false
		}
		addVal := func(fk, src, dst string) bool {
			if cur, ok := p.fkVal[fk][src]; ok && cur != dst {
				return false
			}
			if cur, ok := fkAdd[fk][src]; ok && cur != dst {
				return false
			}
			if fkAdd[fk] == nil {
				fkAdd[fk] = map[string]string{}
			}
			fkAdd[fk][src] = dst
			return true
		}
		for _, c := range constraints {
			if !inGroup[c.Src] || !inGroup[c.Dst] {
				continue
			}
			dstT, ok := dstTupleOf(c.Dst)
			if !ok {
				continue // dst statement does not occur in this unfolding
			}
			for _, occ := range occs {
				if occ.Stmt != c.Src {
					continue
				}
				switch {
				case c.Src.Type.IsKeyBased():
					if !addVal(c.FK, keyTuple[occ], dstT) {
						continue try
					}
				default:
					// Predicate source: its touched tuples are filtered to
					// valuation-consistent ones in the commit phase, but
					// tuples it updates/deletes must be consistent now.
					for _, tup := range predTuples[occ] {
						if !addVal(c.FK, tup, dstT) {
							continue try
						}
					}
				}
			}
		}

		// Commit: register tuples, resolve predicate selections, merge
		// valuation additions, and fill the assignment.
		for fk, m := range fkAdd {
			for src, dst := range m {
				p.fkVal[fk][src] = dst
			}
		}
		for occ, tuple := range keyTuple {
			if occ.Stmt.Type == btp.KeySel || occ.Stmt.Type == btp.KeyUpd {
				p.register(occ.Stmt.Rel, tuple)
			} else {
				p.register(occ.Stmt.Rel, tuple) // private ins/del tuples
			}
			asg.Key[occ] = tuple
		}
		for tu := range newRead {
			usedRead[tu] = true
		}
		for tu := range newWrite {
			usedWrite[tu] = true
		}
		for tu, pos := range newDel {
			st.delPos[tu] = pos
		}
		for tu, ps := range newAcc {
			st.accPos[tu] = append(st.accPos[tu], ps...)
		}
		for occ, tuples := range predTuples {
			if occ.Stmt.Type != btp.PredSel {
				if occ.Stmt.Type == btp.PredDel {
					for _, tup := range tuples {
						p.deleted[tup] = true
					}
				}
				asg.Pred[occ] = tuples
				continue
			}
			// Predicate selection: read everything readable and
			// consistent with the constraints naming this statement. The
			// match materializes per-tuple reads, so tuples this instance
			// deleted at an earlier position are out (the engine would see
			// no row), exactly like key-based accesses.
			var names []string
			for _, tup := range p.tuples[occ.Stmt.Rel] {
				if usedRead[tup] {
					continue
				}
				if dp, del := st.delPos[tup]; del && dp < occ.Pos {
					continue
				}
				ok := true
				for _, c := range constraints {
					if c.Src != occ.Stmt {
						continue
					}
					dstT, have := dstTupleOf(c.Dst)
					if !have {
						continue
					}
					if cur, bound := p.fkVal[c.FK][tup]; bound && cur != dstT {
						ok = false
						break
					} else if !bound {
						p.fkVal[c.FK][tup] = dstT
					}
				}
				if !ok {
					continue
				}
				usedRead[tup] = true
				st.accPos[tup] = append(st.accPos[tup], occ.Pos)
				names = append(names, tup)
			}
			asg.Pred[occ] = names
		}
		return nil
	}
	return fmt.Errorf("realize: no consistent entity index for a group of %s within %d attempts",
		l.Name, maxEntityIndex)
}

// relTupleName names without registering (registration happens at commit).
func (p *population) relTupleName(rel string, idx int) string {
	if idx > 1 {
		return fmt.Sprintf("t_%s_%d", rel, idx)
	}
	return "t_" + rel
}
