package realize

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// guidedAssignments builds one instance per witness-cycle edge and shares
// tuples exactly where the cycle requires conflicts: for edge i, the source
// statement of instance i and the target statement of instance i+1 (mod n)
// access a common tuple when both are key-based. All other key-based
// statements receive private per-instance tuples, so unrelated statements
// do not serialize the instances through unintended row conflicts (e.g.
// PlaceBid's buyer update, which otherwise orders all instances).
//
// Predicate-based statements conflict at relation granularity: selections
// read the whole population and updates/deletes touch a private tuple, so
// no tuple equality is needed for edges with a predicate endpoint.
//
// Foreign-key annotations are not supported in guided mode; callers use it
// only when the annotations are ignored (or absent).
func guidedAssignments(s *relschema.Schema, w *summary.Witness) ([]enumerate.Instance, error) {
	n := len(w.Cycle)
	type slot struct {
		inst int
		occ  *btp.StmtOcc
	}
	// Union-find over slots.
	parent := map[slot]slot{}
	var find func(x slot) slot
	find = func(x slot) slot {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b slot) { parent[find(a)] = find(b) }

	for i, e := range w.Cycle {
		from := slot{i, e.FromStmt}
		to := slot{(i + 1) % n, e.ToStmt}
		if e.FromStmt.Stmt.Type.IsKeyBased() && e.ToStmt.Stmt.Type.IsKeyBased() {
			union(from, to)
		}
	}

	// Pre-pass: register every key-based slot and count class sizes, so
	// singletons can be told apart from genuine sharing classes.
	counts := map[slot]int{}
	for i, e := range w.Cycle {
		for _, occ := range e.From.Stmts {
			if occ.Stmt.Type.IsKeyBased() {
				counts[find(slot{i, occ})]++
			}
		}
	}

	// Name the class tuples and collect the population per relation.
	classTuple := map[slot]string{}
	classSeq := 0
	population := map[string][]string{}
	addTuple := func(rel, name string) {
		for _, t := range population[rel] {
			if t == name {
				return
			}
		}
		population[rel] = append(population[rel], name)
	}
	tupleFor := func(i int, occ *btp.StmtOcc) string {
		root := find(slot{i, occ})
		if name, ok := classTuple[root]; ok {
			return name
		}
		var name string
		if counts[root] <= 1 {
			// Singleton: private per-instance tuple.
			name = fmt.Sprintf("p_%s_%d_%d", occ.Stmt.Rel, i, occ.Pos)
		} else {
			classSeq++
			name = fmt.Sprintf("c_%s_%d", occ.Stmt.Rel, classSeq)
		}
		classTuple[root] = name
		addTuple(occ.Stmt.Rel, name)
		return name
	}

	// First pass: assign every key-based occurrence.
	type pending struct {
		asg instantiate.Assignment
		ltp *btp.LTP
	}
	insts := make([]pending, n)
	for i, e := range w.Cycle {
		l := &btp.LTP{Name: e.From.Name, Stmts: e.From.Stmts} // FK-free copy
		asg := instantiate.Assignment{
			Key:  map[*btp.StmtOcc]string{},
			Pred: map[*btp.StmtOcc][]string{},
		}
		usedRead := map[string]bool{}
		usedWrite := map[string]bool{}
		for _, occ := range l.Stmts {
			q := occ.Stmt
			if !q.Type.IsKeyBased() {
				continue
			}
			tuple := tupleFor(i, occ)
			readsT := q.Type == btp.KeySel || (q.ReadSet.Defined && !q.ReadSet.Set.Empty())
			writesT := q.Type != btp.KeySel
			if (readsT && usedRead[tuple]) || (writesT && usedWrite[tuple]) {
				return nil, fmt.Errorf("realize: guided assignment violates the strict form in %s", l.Name)
			}
			if readsT {
				usedRead[tuple] = true
			}
			if writesT {
				usedWrite[tuple] = true
			}
			asg.Key[occ] = tuple
		}
		insts[i] = pending{asg: asg, ltp: l}
	}
	// Two instances inserting the same tuple would be an invalid schedule
	// (at most one insert per tuple).
	inserted := map[string]int{}
	for i := range insts {
		for occ, tuple := range insts[i].asg.Key {
			if occ.Stmt.Type == btp.Ins {
				inserted[tuple]++
				if inserted[tuple] > 1 {
					return nil, fmt.Errorf("realize: guided assignment inserts tuple %s twice", tuple)
				}
			}
		}
	}
	// Second pass: predicate statements range over the final population.
	var out []enumerate.Instance
	for i := range insts {
		l, asg := insts[i].ltp, insts[i].asg
		usedRead := map[string]bool{}
		usedWrite := map[string]bool{}
		for occ, tuple := range asg.Key {
			q := occ.Stmt
			if q.Type == btp.KeySel || (q.ReadSet.Defined && !q.ReadSet.Set.Empty()) {
				usedRead[tuple] = true
			}
			if q.Type != btp.KeySel {
				usedWrite[tuple] = true
			}
		}
		for _, occ := range l.Stmts {
			q := occ.Stmt
			switch q.Type {
			case btp.PredSel:
				var names []string
				for _, tup := range population[q.Rel] {
					if !usedRead[tup] {
						usedRead[tup] = true
						names = append(names, tup)
					}
				}
				asg.Pred[occ] = names
			case btp.PredUpd, btp.PredDel:
				tuple := fmt.Sprintf("p_%s_%d_%d", q.Rel, i, occ.Pos)
				addTuple(q.Rel, tuple)
				usedWrite[tuple] = true
				if q.ReadSet.Defined && !q.ReadSet.Set.Empty() {
					usedRead[tuple] = true
				}
				asg.Pred[occ] = []string{tuple}
			}
		}
		out = append(out, enumerate.Instance{LTP: l, Assignment: asg})
	}
	return out, nil
}
