package realize

import (
	"fmt"

	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// guidedAssignments builds one instance per witness-cycle edge and shares
// tuples exactly where the cycle requires conflicts: for edge i, the source
// statement of instance i and the target statement of instance i+1 (mod n)
// access a common tuple when both are key-based. All other key-based
// statements receive private per-instance tuples, so unrelated statements
// do not serialize the instances through unintended row conflicts (e.g.
// PlaceBid's buyer update, which otherwise orders all instances).
//
// Predicate-based statements conflict at relation granularity: selections
// read the whole population and updates/deletes touch a private tuple, so
// no tuple equality is needed for edges with a predicate endpoint.
//
// Foreign-key annotations (ignoreFKs == false) are honoured by a congruence
// closure over the tuple classes: an annotation q_dst = f(q_src) demands
// that every source tuple's image under f equals the tuple of every
// destination occurrence, so (a) all destination occurrences of one
// annotation within an instance are forced onto one class and (b) two
// source slots sharing a class force their destination classes together.
// The closure runs to fixpoint before tuples are named; the resulting
// global valuation is returned through every instance's Assignment.FK.
// Closures that collapse classes until a transaction reads or writes a
// tuple twice violate the strict instantiation form and fail with an
// error, exactly like the canonical population does.
func guidedAssignments(s *relschema.Schema, w *summary.Witness, ignoreFKs bool) ([]enumerate.Instance, error) {
	n := len(w.Cycle)
	type slot struct {
		inst int
		occ  *btp.StmtOcc
	}
	// Union-find over slots.
	parent := map[slot]slot{}
	var find func(x slot) slot
	find = func(x slot) slot {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b slot) { parent[find(a)] = find(b) }

	for i, e := range w.Cycle {
		from := slot{i, e.FromStmt}
		to := slot{(i + 1) % n, e.ToStmt}
		if e.FromStmt.Stmt.Type.IsKeyBased() && e.ToStmt.Stmt.Type.IsKeyBased() {
			union(from, to)
		}
	}

	// Per-instance FK constraints (empty when the annotations are ignored).
	useFKs := false
	instFKs := make([][]btp.FKConstraint, n)
	if !ignoreFKs {
		for i, e := range w.Cycle {
			instFKs[i] = e.From.FKs()
			if len(instFKs[i]) > 0 {
				useFKs = true
			}
		}
	}

	// Congruence closure: classes reachable as destinations of the same
	// (foreign key, source class) pair are merged, as are all destination
	// occurrences of one annotation inside an instance. Each pass that
	// changes anything performs at least one union, so the loop terminates.
	if useFKs {
		for changed := true; changed; {
			changed = false
			type fkSrc struct {
				fk  string
				src slot
			}
			req := map[fkSrc]slot{}
			for i, e := range w.Cycle {
				for _, c := range instFKs[i] {
					var dsts []slot
					hasSrc := false
					for _, occ := range e.From.Stmts {
						if occ.Stmt == c.Dst {
							dsts = append(dsts, slot{i, occ})
						}
						if occ.Stmt == c.Src {
							hasSrc = true
						}
					}
					if !hasSrc || len(dsts) == 0 {
						continue // vacuous annotation in this unfolding
					}
					for _, d := range dsts[1:] {
						if find(d) != find(dsts[0]) {
							union(d, dsts[0])
							changed = true
						}
					}
					rd := find(dsts[0])
					if !c.Src.Type.IsKeyBased() {
						continue // predicate sources bind in the second pass
					}
					for _, occ := range e.From.Stmts {
						if occ.Stmt != c.Src {
							continue
						}
						rs := find(slot{i, occ})
						key := fkSrc{c.FK, rs}
						if prev, ok := req[key]; ok {
							if find(prev) != find(rd) {
								union(prev, rd)
								changed = true
							}
						} else {
							req[key] = rd
						}
					}
				}
			}
		}
	}

	// Pre-pass: register every key-based slot and count class sizes, so
	// singletons can be told apart from genuine sharing classes.
	counts := map[slot]int{}
	for i, e := range w.Cycle {
		for _, occ := range e.From.Stmts {
			if occ.Stmt.Type.IsKeyBased() {
				counts[find(slot{i, occ})]++
			}
		}
	}

	// Name the class tuples and collect the population per relation.
	classTuple := map[slot]string{}
	classSeq := 0
	population := map[string][]string{}
	addTuple := func(rel, name string) {
		for _, t := range population[rel] {
			if t == name {
				return
			}
		}
		population[rel] = append(population[rel], name)
	}
	tupleFor := func(i int, occ *btp.StmtOcc) string {
		root := find(slot{i, occ})
		if name, ok := classTuple[root]; ok {
			return name
		}
		var name string
		if counts[root] <= 1 {
			// Singleton: private per-instance tuple.
			name = fmt.Sprintf("p_%s_%d_%d", occ.Stmt.Rel, i, occ.Pos)
		} else {
			classSeq++
			name = fmt.Sprintf("c_%s_%d", occ.Stmt.Rel, classSeq)
		}
		classTuple[root] = name
		addTuple(occ.Stmt.Rel, name)
		return name
	}

	// First pass: assign every key-based occurrence.
	type pending struct {
		asg instantiate.Assignment
		ltp *btp.LTP
		// delAt maps tuples to the position of this instance's delete of
		// them; the MVCC engine replays a transaction against its own
		// uncommitted state, so any key-based access after the same
		// transaction's delete fails on the engine even though the abstract
		// schedule (reading last-committed versions) allows it.
		delAt map[string]int
	}
	insts := make([]pending, n)
	for i, e := range w.Cycle {
		l := e.From
		if ignoreFKs {
			// A copy without origin loses the FK annotations while keeping
			// the statement occurrences and name.
			l = &btp.LTP{Name: e.From.Name, Stmts: e.From.Stmts}
		}
		asg := instantiate.Assignment{
			Key:  map[*btp.StmtOcc]string{},
			Pred: map[*btp.StmtOcc][]string{},
		}
		usedRead := map[string]bool{}
		usedWrite := map[string]bool{}
		delAt := map[string]int{}
		for _, occ := range l.Stmts {
			q := occ.Stmt
			if !q.Type.IsKeyBased() {
				continue
			}
			tuple := tupleFor(i, occ)
			readsT := q.Type == btp.KeySel || (q.ReadSet.Defined && !q.ReadSet.Set.Empty())
			writesT := q.Type != btp.KeySel
			if (readsT && usedRead[tuple]) || (writesT && usedWrite[tuple]) {
				return nil, fmt.Errorf("realize: guided assignment violates the strict form in %s", l.Name)
			}
			if dp, ok := delAt[tuple]; ok && dp < occ.Pos {
				return nil, fmt.Errorf("realize: guided assignment accesses tuple %s after its own delete in %s", tuple, l.Name)
			}
			if q.Type == btp.KeyDel {
				delAt[tuple] = occ.Pos
			}
			if readsT {
				usedRead[tuple] = true
			}
			if writesT {
				usedWrite[tuple] = true
			}
			asg.Key[occ] = tuple
		}
		insts[i] = pending{asg: asg, ltp: l, delAt: delAt}
	}
	// Two instances inserting (or deleting) the same tuple would be an
	// invalid schedule: the formalism allows at most one insert and one
	// delete per tuple across the whole schedule.
	inserted := map[string]int{}
	deleted := map[string]int{}
	for i := range insts {
		for occ, tuple := range insts[i].asg.Key {
			switch occ.Stmt.Type {
			case btp.Ins:
				inserted[tuple]++
				if inserted[tuple] > 1 {
					return nil, fmt.Errorf("realize: guided assignment inserts tuple %s twice", tuple)
				}
			case btp.KeyDel:
				deleted[tuple]++
				if deleted[tuple] > 1 {
					return nil, fmt.Errorf("realize: guided assignment deletes tuple %s twice", tuple)
				}
			}
		}
	}

	// Global foreign-key valuation over the named tuples. Key-based sources
	// bind now; the congruence closure guarantees no two requirements on the
	// same (foreign key, tuple) disagree, so conflicts here are internal
	// errors rather than search dead ends.
	fkVal := map[string]map[string]string{}
	if useFKs {
		for _, f := range s.ForeignKeys() {
			fkVal[f.Name] = map[string]string{}
		}
		for i, e := range w.Cycle {
			asg := insts[i].asg
			for _, c := range instFKs[i] {
				if !c.Src.Type.IsKeyBased() {
					continue
				}
				dstT, ok := "", false
				for _, occ := range e.From.Stmts {
					if occ.Stmt == c.Dst {
						dstT, ok = asg.Key[occ], true
						break
					}
				}
				if !ok {
					continue
				}
				for _, occ := range e.From.Stmts {
					if occ.Stmt != c.Src {
						continue
					}
					srcT := asg.Key[occ]
					if cur, bound := fkVal[c.FK][srcT]; bound && cur != dstT {
						return nil, fmt.Errorf("realize: guided assignment requires %s(%s) = %s and %s", c.FK, srcT, cur, dstT)
					}
					fkVal[c.FK][srcT] = dstT
				}
			}
		}
	}

	// Second pass: predicate statements range over the final population,
	// restricted to tuples consistent with the valuation when the statement
	// is the source of an annotation.
	var out []enumerate.Instance
	for i := range insts {
		l, asg, delAt := insts[i].ltp, insts[i].asg, insts[i].delAt
		if useFKs {
			asg.FK = fkVal
		}
		// Destination tuple of an annotation whose source is q, in this
		// instance; ok=false when the destination does not occur (vacuous).
		dstTupleOf := func(c btp.FKConstraint) (string, bool) {
			for _, occ := range l.Stmts {
				if occ.Stmt == c.Dst {
					return asg.Key[occ], true
				}
			}
			return "", false
		}
		usedRead := map[string]bool{}
		usedWrite := map[string]bool{}
		for occ, tuple := range asg.Key {
			q := occ.Stmt
			if q.Type == btp.KeySel || (q.ReadSet.Defined && !q.ReadSet.Set.Empty()) {
				usedRead[tuple] = true
			}
			if q.Type != btp.KeySel {
				usedWrite[tuple] = true
			}
		}
		for _, occ := range l.Stmts {
			q := occ.Stmt
			switch q.Type {
			case btp.PredSel:
				var names []string
				for _, tup := range population[q.Rel] {
					if usedRead[tup] {
						continue
					}
					// The match materializes per-tuple reads; skip tuples
					// this instance deleted at an earlier position.
					if dp, del := delAt[tup]; del && dp < occ.Pos {
						continue
					}
					ok := true
					for _, c := range instFKs[i] {
						if c.Src != q {
							continue
						}
						dstT, have := dstTupleOf(c)
						if !have {
							continue
						}
						if cur, bound := fkVal[c.FK][tup]; bound && cur != dstT {
							ok = false
							break
						} else if !bound {
							fkVal[c.FK][tup] = dstT
						}
					}
					if !ok {
						continue
					}
					usedRead[tup] = true
					names = append(names, tup)
				}
				asg.Pred[occ] = names
			case btp.PredUpd, btp.PredDel:
				tuple := fmt.Sprintf("p_%s_%d_%d", q.Rel, i, occ.Pos)
				ok := true
				for _, c := range instFKs[i] {
					if c.Src != q {
						continue
					}
					dstT, have := dstTupleOf(c)
					if !have {
						continue
					}
					if cur, bound := fkVal[c.FK][tuple]; bound && cur != dstT {
						ok = false
						break
					}
					fkVal[c.FK][tuple] = dstT
				}
				if !ok {
					asg.Pred[occ] = nil // empty predicate match
					continue
				}
				addTuple(q.Rel, tuple)
				usedWrite[tuple] = true
				if q.ReadSet.Defined && !q.ReadSet.Set.Empty() {
					usedRead[tuple] = true
				}
				if q.Type == btp.PredDel {
					delAt[tuple] = occ.Pos
				}
				asg.Pred[occ] = []string{tuple}
			}
		}
		out = append(out, enumerate.Instance{LTP: l, Assignment: asg})
	}
	return out, nil
}
