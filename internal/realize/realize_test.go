package realize

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/enumerate"
	"repro/internal/instantiate"
	"repro/internal/robust"
	"repro/internal/summary"
)

// witnessFor runs the type-II analysis and returns the witness for a
// non-robust program subset.
func witnessFor(t *testing.T, b *benchmarks.Benchmark, setting summary.Setting, names ...string) *summary.Witness {
	t.Helper()
	var programs []*btp.Program
	for _, n := range names {
		p := b.Program(n)
		if p == nil {
			t.Fatalf("no program %q", n)
		}
		programs = append(programs, p)
	}
	c := robust.NewChecker(b.Schema)
	c.Setting = setting
	res, err := c.Check(programs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Fatalf("%v unexpectedly robust", names)
	}
	return res.Witness
}

// TestRealizeSmallBankBalAm realizes the {Bal, Am} witness into a concrete
// counterexample, proving true non-robustness.
func TestRealizeSmallBankBalAm(t *testing.T) {
	b := benchmarks.SmallBank()
	w := witnessFor(t, b, summary.SettingAttrDepFK, "Balance", "Amalgamate")
	res, err := Witness(b.Schema, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Realized {
		t.Fatalf("outcome = %s, want realized (instances %v, explored %d)",
			res.Outcome, res.Instances, res.Explored)
	}
	if !res.Schedule.AllowedUnderMVRC() {
		t.Fatal("realized schedule must be allowed under MVRC")
	}
	if res.Graph.IsConflictSerializable() {
		t.Fatal("realized schedule must not be serializable")
	}
}

// TestRealizeWriteCheck realizes the {WC} singleton witness.
func TestRealizeWriteCheck(t *testing.T) {
	b := benchmarks.SmallBank()
	w := witnessFor(t, b, summary.SettingAttrDepFK, "WriteCheck")
	// The witness cycle may involve a single instance; widen with an extra
	// instance per program (two WriteChecks race on one customer).
	res, err := Witness(b.Schema, w, Options{ExtraInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Realized {
		t.Fatalf("outcome = %s (instances %v)", res.Outcome, res.Instances)
	}
}

// TestRealizeAuctionWithoutFK realizes the {PB} witness that appears when
// foreign keys are ignored (Figure 6: {PB} robust only with FKs).
func TestRealizeAuctionWithoutFK(t *testing.T) {
	b := benchmarks.Auction()
	w := witnessFor(t, b, summary.SettingAttrDep, "PlaceBid")
	// The witness comes from an FK-less analysis, so realization must
	// search the same overapproximated space (IgnoreFKs). The canonical
	// instantiation binds two PlaceBids to the same bid but different
	// buyers — impossible under the foreign key, which is exactly why the
	// FK-aware analysis certifies {PB} robust (Figure 6).
	res, err := Witness(b.Schema, w, Options{ExtraInstances: true, IgnoreFKs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Realized {
		t.Fatalf("outcome = %s (instances %v, explored %d)", res.Outcome, res.Instances, res.Explored)
	}
	// With the foreign key enforced during instantiation, the same witness
	// must NOT realize: the buyer-row lock serializes the two PlaceBids.
	res, err = Witness(b.Schema, w, Options{ExtraInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Realized {
		t.Fatalf("FK-respecting instantiation realized an impossible schedule:\n%s", res.Schedule)
	}
}

// TestRealizeDeliveryBTPLevel: {Delivery} is the paper's documented false
// negative (Section 7.2) — but only at the SQL level. At the BTP level the
// witness DOES realize: the abstraction discards the predicate condition
// that forces concurrent Deliveries to select the same oldest order, so an
// instantiation in which they delete different orders is a legitimate BTP
// schedule and yields a cycle. This test pins down exactly where the
// abstraction gap lies.
func TestRealizeDeliveryBTPLevel(t *testing.T) {
	b := benchmarks.TPCC()
	w := witnessFor(t, b, summary.SettingAttrDepFK, "Delivery")
	res, err := Witness(b.Schema, w, Options{MaxSchedules: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Realized {
		t.Fatalf("outcome = %s (%s): the BTP-level Delivery witness should realize", res.Outcome, res.Note)
	}
	if !res.Schedule.AllowedUnderMVRC() || res.Graph.IsConflictSerializable() {
		t.Fatal("realized schedule must be MVRC-allowed and non-serializable")
	}
}

// instantiateAll materializes every instance of a candidate set, failing
// the test on any instantiation error (the strict form or a foreign-key
// annotation violated by the assignment).
func instantiateAll(t *testing.T, b *benchmarks.Benchmark, insts []enumerate.Instance) {
	t.Helper()
	for id, inst := range insts {
		if _, err := instantiate.Instantiate(b.Schema, inst.LTP, id, inst.Assignment); err != nil {
			t.Fatalf("instance %d (%s) does not instantiate: %v", id, inst.LTP.Name, err)
		}
	}
}

// TestGuidedAssignmentsHonorFKs: guided mode used to refuse witnesses from
// FK-annotated programs outright. It now builds an FK-consistent assignment
// via congruence closure over the tuple classes: the SmallBank witness
// (every program annotated on fS/fC) must yield instances that keep their
// annotations and pass the instantiation-time foreign-key check.
func TestGuidedAssignmentsHonorFKs(t *testing.T) {
	b := benchmarks.SmallBank()
	w := witnessFor(t, b, summary.SettingAttrDepFK, "Balance", "Amalgamate")
	insts, err := guidedAssignments(b.Schema, w, false)
	if err != nil {
		t.Fatalf("guided assignment failed on FK-annotated programs: %v", err)
	}
	annotated := false
	for _, inst := range insts {
		if len(inst.LTP.FKs()) > 0 {
			annotated = true
			if inst.Assignment.FK == nil {
				t.Fatal("FK-annotated instance carries no foreign-key valuation")
			}
		}
	}
	if !annotated {
		t.Fatal("guided instances lost their FK annotations — the check is vacuous")
	}
	instantiateAll(t, b, insts)
}

// TestGuidedAssignmentsAuctionFK: the Auction PlaceBid witness is the
// program that used to trip guided mode's FK gate (annotations f1/f2 link
// the bid and log writes to the buyer row). FK-respecting guided
// instantiation must now succeed and be FK-consistent — and the valuation
// must force both instances onto one buyer, which is exactly why the
// FK-aware analysis keeps {PB} robust (Figure 6).
func TestGuidedAssignmentsAuctionFK(t *testing.T) {
	b := benchmarks.Auction()
	w := witnessFor(t, b, summary.SettingAttrDep, "PlaceBid")
	insts, err := guidedAssignments(b.Schema, w, false)
	if err != nil {
		// A strict-form violation is an acceptable deterministic outcome
		// (the closure can collapse classes until a transaction touches a
		// tuple twice) — a silent wrong assignment is not.
		t.Skipf("guided FK closure deterministically inapplicable: %v", err)
	}
	instantiateAll(t, b, insts)
}

// TestCandidateSetsDelivery: CandidateSets exposes the instantiation
// strategies to the certification pipeline. TPC-C Delivery is the
// predicate-heavy, FK-heavy stress case (annotations on f5/f7/f8 with
// predicate sources): every returned candidate must instantiate cleanly
// under the annotations.
func TestCandidateSetsDelivery(t *testing.T) {
	b := benchmarks.TPCC()
	w := witnessFor(t, b, summary.SettingAttrDepFK, "Delivery")
	cands, errs := realizeCandidates(t, b, w, Options{})
	for _, c := range cands {
		instantiateAll(t, b, c.Instances)
	}
	if len(cands) == 0 {
		t.Fatalf("no candidate instantiates the Delivery witness: %v", errs)
	}
}

func realizeCandidates(t *testing.T, b *benchmarks.Benchmark, w *summary.Witness, opts Options) ([]Candidate, []error) {
	t.Helper()
	cands, errs := CandidateSets(b.Schema, w, opts)
	names := map[string]bool{}
	for _, c := range cands {
		if len(c.Instances) == 0 {
			t.Fatalf("candidate %q has no instances", c.Name)
		}
		if names[c.Name] {
			t.Fatalf("duplicate candidate name %q", c.Name)
		}
		names[c.Name] = true
	}
	return cands, errs
}

// TestRealizeRejectsEmptyWitness documents the precondition.
func TestRealizeRejectsEmptyWitness(t *testing.T) {
	b := benchmarks.Auction()
	if _, err := Witness(b.Schema, nil, Options{}); err == nil {
		t.Fatal("nil witness accepted")
	}
	if _, err := Witness(b.Schema, &summary.Witness{}, Options{}); err == nil {
		t.Fatal("empty witness accepted")
	}
}
