package robust

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/summary"
)

// TestUnfoldBoundStability gives empirical support to Proposition 6.1: on
// every benchmark subset, the robustness verdict is identical for unfold
// bounds 2, 3 and 4 (bound 2 is proven sufficient; larger bounds only grow
// the summary graph). Bound 1, by contrast, is demonstrably unsound in
// general — but the proposition makes no claim about it, so it is only
// reported, not asserted.
func TestUnfoldBoundStability(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(), benchmarks.AuctionN(2),
	} {
		for _, setting := range summary.AllSettings {
			c := NewChecker(b.Schema)
			c.Setting = setting
			n := len(b.Programs)
			for mask := 1; mask < 1<<n; mask++ {
				var subset []*btp.Program
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						subset = append(subset, b.Programs[i])
					}
				}
				verdicts := map[int]bool{}
				for _, bound := range []int{2, 3, 4} {
					c.UnfoldBound = bound
					res, err := c.Check(subset)
					if err != nil {
						t.Fatal(err)
					}
					verdicts[bound] = res.Robust
				}
				if verdicts[2] != verdicts[3] || verdicts[3] != verdicts[4] {
					t.Errorf("%s/%s mask %b: verdicts differ across bounds: %v",
						b.Name, setting, mask, verdicts)
				}
			}
		}
	}
}

// TestUnfoldBound1CanDiffer documents that bound 1 may disagree with the
// sound bound 2 in general; on our benchmarks it happens to agree for all
// complete program sets, which this test records (a change would signal a
// behavioural shift worth investigating, not necessarily a bug).
func TestUnfoldBound1CanDiffer(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{
		benchmarks.SmallBank(), benchmarks.TPCC(), benchmarks.Auction(),
	} {
		c := NewChecker(b.Schema)
		c.UnfoldBound = 1
		r1, err := c.Check(b.Programs)
		if err != nil {
			t.Fatal(err)
		}
		c.UnfoldBound = 2
		r2, err := c.Check(b.Programs)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Robust != r2.Robust {
			t.Logf("%s: bound 1 verdict %t differs from sound bound 2 verdict %t",
				b.Name, r1.Robust, r2.Robust)
		}
		// The sound verdict for each complete benchmark: only Auction is
		// robust.
		wantRobust := b.Name == "Auction"
		if r2.Robust != wantRobust {
			t.Errorf("%s: bound-2 verdict %t, want %t", b.Name, r2.Robust, wantRobust)
		}
	}
}
