// Package robust exposes the paper's end-to-end robustness analysis: given
// a set of basic transaction programs, decide (soundly) whether every
// schedule they can produce under multiversion Read Committed is conflict
// serializable (Definition 5.1, Algorithm 2), and enumerate the robust /
// maximal-robust subsets reported in Figures 6 and 7.
package robust

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// Result is the outcome of one robustness check.
type Result struct {
	// Robust is true when the analysis certifies the program set robust
	// against MVRC. The analysis is sound: true is always correct; false
	// may be a false negative (Proposition 6.5).
	Robust bool
	// Witness is a dangerous cycle in the summary graph when not robust.
	Witness *summary.Witness
	// Graph is the constructed summary graph over the unfolded LTPs.
	Graph *summary.Graph
	// LTPs are the Unfold≤2 unfoldings the graph was built over.
	LTPs []*btp.LTP
}

// Checker bundles a schema with an analysis configuration.
type Checker struct {
	Schema  *relschema.Schema
	Setting summary.Setting
	Method  summary.Method
	// UnfoldBound overrides the loop-unfolding bound; 0 means the paper's
	// bound of 2 (Proposition 6.1). Exposed for the ablation study only —
	// bound 1 is unsound in general.
	UnfoldBound int
}

// NewChecker returns a Checker with the paper's defaults: attribute
// granularity with foreign keys, type-II cycles, unfold bound 2.
func NewChecker(schema *relschema.Schema) *Checker {
	return &Checker{
		Schema:  schema,
		Setting: summary.SettingAttrDepFK,
		Method:  summary.TypeII,
	}
}

func (c *Checker) bound() int {
	if c.UnfoldBound > 0 {
		return c.UnfoldBound
	}
	return btp.DefaultUnfoldBound
}

// Check runs the analysis on a set of BTPs: validate, unfold, build the
// summary graph, and search for dangerous cycles.
func (c *Checker) Check(programs []*btp.Program) (*Result, error) {
	for _, p := range programs {
		if err := p.Validate(c.Schema); err != nil {
			return nil, fmt.Errorf("robust: %w", err)
		}
	}
	ltps := btp.UnfoldAll(programs, c.bound())
	g := summary.Build(c.Schema, ltps, c.Setting)
	ok, w := g.Robust(c.Method)
	return &Result{Robust: ok, Witness: w, Graph: g, LTPs: ltps}, nil
}

// CheckLTPs runs the analysis directly on pre-unfolded LTPs.
func (c *Checker) CheckLTPs(ltps []*btp.LTP) *Result {
	g := summary.Build(c.Schema, ltps, c.Setting)
	ok, w := g.Robust(c.Method)
	return &Result{Robust: ok, Witness: w, Graph: g, LTPs: ltps}
}

// Subset is a subset of programs identified by their short names, sorted.
type Subset []string

// String renders the subset as "{A, B, C}".
func (s Subset) String() string { return "{" + strings.Join(s, ", ") + "}" }

// contains reports whether s is a superset of t.
func (s Subset) containsAll(t Subset) bool {
	set := make(map[string]bool, len(s))
	for _, n := range s {
		set[n] = true
	}
	for _, n := range t {
		if !set[n] {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality (both sides sorted).
func (s Subset) Equal(t Subset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetReport lists every robust subset and the maximal ones among them.
type SubsetReport struct {
	// Robust lists all non-empty robust subsets, smallest first, then
	// lexicographic.
	Robust []Subset
	// Maximal lists the robust subsets not strictly contained in another
	// robust subset — the entries of Figures 6 and 7.
	Maximal []Subset
}

// String renders the maximal subsets on one line, as in Figure 6.
func (r *SubsetReport) String() string {
	parts := make([]string, len(r.Maximal))
	for i, s := range r.Maximal {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// RobustSubsets checks every non-empty subset of the given programs and
// reports the robust and maximal robust ones. Program count must be modest
// (the benchmarks have ≤ 5); the check is exponential in it.
func (c *Checker) RobustSubsets(programs []*btp.Program) (*SubsetReport, error) {
	n := len(programs)
	if n > 20 {
		return nil, fmt.Errorf("robust: subset enumeration over %d programs is infeasible", n)
	}
	report := &SubsetReport{}
	for mask := 1; mask < 1<<n; mask++ {
		var subset []*btp.Program
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, programs[i])
			}
		}
		res, err := c.Check(subset)
		if err != nil {
			return nil, err
		}
		if res.Robust {
			names := make(Subset, len(subset))
			for i, p := range subset {
				names[i] = p.ShortName()
			}
			sort.Strings(names)
			report.Robust = append(report.Robust, names)
		}
	}
	sortSubsets(report.Robust)
	for _, s := range report.Robust {
		maximal := true
		for _, t := range report.Robust {
			if len(t) > len(s) && t.containsAll(s) {
				maximal = false
				break
			}
		}
		if maximal {
			report.Maximal = append(report.Maximal, s)
		}
	}
	// Report largest maximal subsets first, as the paper does.
	sort.SliceStable(report.Maximal, func(i, j int) bool {
		if len(report.Maximal[i]) != len(report.Maximal[j]) {
			return len(report.Maximal[i]) > len(report.Maximal[j])
		}
		return less(report.Maximal[i], report.Maximal[j])
	})
	return report, nil
}

func sortSubsets(subsets []Subset) {
	sort.SliceStable(subsets, func(i, j int) bool {
		if len(subsets[i]) != len(subsets[j]) {
			return len(subsets[i]) < len(subsets[j])
		}
		return less(subsets[i], subsets[j])
	})
}

func less(a, b Subset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
