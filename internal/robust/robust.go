// Package robust exposes the paper's end-to-end robustness analysis: given
// a set of basic transaction programs, decide (soundly) whether every
// schedule they can produce under multiversion Read Committed is conflict
// serializable (Definition 5.1, Algorithm 2), and enumerate the robust /
// maximal-robust subsets reported in Figures 6 and 7.
//
// Since the incremental-engine refactor the heavy lifting lives in
// internal/analysis: a Checker lazily owns an analysis.Session that unfolds
// each program once, caches the pairwise summary-graph edge blocks of
// Algorithm 1 per setting, composes subset graphs from those blocks and
// fans the subset enumeration out over a worker pool (Parallelism). The
// pre-refactor naive path — re-unfold and re-run Algorithm 1 per subset —
// is kept as NaiveRobustSubsets, the oracle the equivalence tests compare
// the engine against.
package robust

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/obs"
	"repro/internal/relschema"
	"repro/internal/summary"
)

// Result is the outcome of one robustness check. See analysis.Result.
type Result = analysis.Result

// Subset is a subset of programs identified by their short names, sorted.
type Subset = analysis.Subset

// SubsetReport lists every robust subset and the maximal ones among them.
type SubsetReport = analysis.SubsetReport

// Checker bundles a schema with an analysis configuration.
type Checker struct {
	Schema  *relschema.Schema
	Setting summary.Setting
	Method  summary.Method
	// UnfoldBound overrides the loop-unfolding bound; 0 means the paper's
	// bound of 2 (Proposition 6.1). Exposed for the ablation study only —
	// bound 1 is unsound in general.
	UnfoldBound int
	// Parallelism is the engine's one concurrency knob: it bounds the
	// worker pool RobustSubsets fans subset masks out over AND the
	// intra-check sharding of every summary-graph construction (pairwise
	// edge blocks, closure fixpoint, large-graph cycle search). 0 means
	// GOMAXPROCS, 1 forces fully sequential analysis.
	Parallelism int
	// DisablePruning turns off the lattice-pruned subset enumeration and
	// falls back to the flat per-subset fan-out; see
	// analysis.Config.DisablePruning. Exposed for the benchmarks and the
	// pruning ablation only — verdicts are identical either way.
	DisablePruning bool
	// Tracer receives phase spans from every analysis run through this
	// Checker; see analysis.Config.Tracer. nil (the default) is the no-op
	// and costs the hot paths nothing. robustcheck -timings sets a
	// SpanRecorder here — the same tracer the server threads per request.
	Tracer obs.Tracer

	// sess is the lazily created incremental engine. It memoizes per
	// program pointer, unfold bound and setting, so mutating the exported
	// configuration fields between calls is safe; mutating Schema is not.
	sessOnce sync.Once
	sess     *analysis.Session
}

// NewChecker returns a Checker with the paper's defaults: attribute
// granularity with foreign keys, type-II cycles, unfold bound 2.
func NewChecker(schema *relschema.Schema) *Checker {
	return &Checker{
		Schema:  schema,
		Setting: summary.SettingAttrDepFK,
		Method:  summary.TypeII,
	}
}

func (c *Checker) bound() int {
	if c.UnfoldBound > 0 {
		return c.UnfoldBound
	}
	return btp.DefaultUnfoldBound
}

// Session returns the Checker's incremental analysis engine, creating it on
// first use. The engine (and therefore Check/RobustSubsets) is safe to use
// from concurrent goroutines as long as the configuration fields are not
// mutated concurrently.
func (c *Checker) Session() *analysis.Session {
	c.sessOnce.Do(func() { c.sess = analysis.NewSession(c.Schema) })
	return c.sess
}

// config snapshots the exported fields into an engine configuration.
func (c *Checker) config() analysis.Config {
	return analysis.Config{
		Setting:        c.Setting,
		Method:         c.Method,
		UnfoldBound:    c.UnfoldBound,
		Parallelism:    c.Parallelism,
		DisablePruning: c.DisablePruning,
		Tracer:         c.Tracer,
	}
}

// Check runs the analysis on a set of BTPs: validate, unfold, build the
// summary graph, and search for dangerous cycles. Validation, unfolding and
// the pairwise edge blocks are memoized in the Checker's session, so
// repeated checks over overlapping program sets only pay for cycle
// detection.
func (c *Checker) Check(programs []*btp.Program) (*Result, error) {
	return c.Session().Check(programs, c.config())
}

// CheckCtx is Check under a context; see analysis.Session.CheckCtx.
func (c *Checker) CheckCtx(ctx context.Context, programs []*btp.Program) (*Result, error) {
	return c.Session().CheckCtx(ctx, programs, c.config())
}

// CheckLTPs runs the analysis directly on pre-unfolded LTPs, bypassing the
// session (naive single-shot construction).
func (c *Checker) CheckLTPs(ltps []*btp.LTP) *Result {
	g := summary.Build(c.Schema, ltps, c.Setting)
	ok, w := g.Robust(c.Method)
	return &Result{Robust: ok, Witness: w, Graph: g, LTPs: ltps}
}

// RobustSubsets checks every non-empty subset of the given programs and
// reports the robust and maximal robust ones. Program count must be modest
// (the benchmarks have ≤ 5); the check is exponential in it. The engine
// composes each subset's summary graph from cached pairwise edge blocks and
// enumerates subsets on a worker pool; the output is byte-identical to the
// naive per-subset oracle (see NaiveRobustSubsets).
func (c *Checker) RobustSubsets(programs []*btp.Program) (*SubsetReport, error) {
	return c.Session().RobustSubsets(programs, c.config())
}

// RobustSubsetsCtx is RobustSubsets under a context: the enumeration's
// worker pool polls the context between subset masks, so server timeouts
// and client disconnects abort the exponential sweep mid-flight.
func (c *Checker) RobustSubsetsCtx(ctx context.Context, programs []*btp.Program) (*SubsetReport, error) {
	return c.Session().RobustSubsetsCtx(ctx, programs, c.config())
}

// RobustSubsetsStream is the streaming form of RobustSubsetsCtx: the same
// lattice-pruned enumeration, emitting each subset verdict through the
// callback as its level decides it, in cost-ordered visit order, with
// optional early termination (see analysis.StreamOptions). A full stream's
// summary report is identical to RobustSubsetsCtx's.
func (c *Checker) RobustSubsetsStream(ctx context.Context, programs []*btp.Program, opts analysis.StreamOptions, emit func(analysis.StreamVerdict) error) (*analysis.StreamSummary, error) {
	return c.Session().RobustSubsetsStream(ctx, programs, c.config(), opts, emit)
}

// naiveCheck is the pre-refactor Check: validate, unfold and run
// Algorithm 1 from scratch, with no memoization.
func (c *Checker) naiveCheck(programs []*btp.Program) (*Result, error) {
	for _, p := range programs {
		if err := p.Validate(c.Schema); err != nil {
			return nil, fmt.Errorf("robust: %w", err)
		}
	}
	ltps := btp.UnfoldAll(programs, c.bound())
	g := summary.Build(c.Schema, ltps, c.Setting)
	ok, w := g.Robust(c.Method)
	return &Result{Robust: ok, Witness: w, Graph: g, LTPs: ltps}, nil
}

// NaiveRobustSubsets is the pre-refactor subset enumeration: it
// re-validates, re-unfolds and re-runs Algorithm 1 for every one of the
// 2^n − 1 subsets, sequentially. Kept as the oracle for the engine
// equivalence tests and the naive/cached benchmarks.
func (c *Checker) NaiveRobustSubsets(programs []*btp.Program) (*SubsetReport, error) {
	n := len(programs)
	if n > 20 {
		return nil, fmt.Errorf("robust: subset enumeration over %d programs is infeasible", n)
	}
	var robustSubsets []Subset
	for mask := 1; mask < 1<<n; mask++ {
		var subset []*btp.Program
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, programs[i])
			}
		}
		res, err := c.naiveCheck(subset)
		if err != nil {
			return nil, err
		}
		if res.Robust {
			names := make(Subset, len(subset))
			for i, p := range subset {
				names[i] = p.ShortName()
			}
			sort.Strings(names)
			robustSubsets = append(robustSubsets, names)
		}
	}
	return analysis.NewSubsetReport(robustSubsets), nil
}
