package robust

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/summary"
)

func TestCheckerDefaults(t *testing.T) {
	b := benchmarks.Auction()
	c := NewChecker(b.Schema)
	if c.Setting != summary.SettingAttrDepFK || c.Method != summary.TypeII {
		t.Fatal("defaults should be attr dep + FK, type-II")
	}
	res, err := c.Check(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust || res.Witness != nil {
		t.Fatal("Auction should be robust with nil witness")
	}
	if len(res.LTPs) != 3 {
		t.Fatalf("LTPs = %d, want 3", len(res.LTPs))
	}
}

func TestCheckRejectsInvalidProgram(t *testing.T) {
	b := benchmarks.Auction()
	c := NewChecker(b.Schema)
	bad := btp.LinearProgram("Bad", &btp.Stmt{Name: "q", Type: btp.KeySel, Rel: "Nope", ReadSet: btp.Attrs()})
	if _, err := c.Check([]*btp.Program{bad}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestCheckLTPsDirect(t *testing.T) {
	b := benchmarks.Auction()
	c := NewChecker(b.Schema)
	ltps := btp.UnfoldAll2(b.Programs)
	res := c.CheckLTPs(ltps)
	if !res.Robust {
		t.Fatal("direct LTP check should agree with program check")
	}
}

func TestUnfoldBoundOverride(t *testing.T) {
	b := benchmarks.TPCC()
	c := NewChecker(b.Schema)
	c.UnfoldBound = 1
	res, err := c.Check(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	// Bound 1 yields fewer LTPs than the sound bound 2.
	if len(res.LTPs) >= 13 {
		t.Fatalf("bound 1 should yield fewer than 13 LTPs, got %d", len(res.LTPs))
	}
	c.UnfoldBound = 2
	res, err = c.Check(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LTPs) != 13 {
		t.Fatalf("bound 2 should yield 13 LTPs, got %d", len(res.LTPs))
	}
}

func TestSubsetHelpers(t *testing.T) {
	a := Subset{"A", "B"}
	b := Subset{"A"}
	if !a.ContainsAll(b) || b.ContainsAll(a) {
		t.Error("containsAll")
	}
	if !a.Equal(Subset{"A", "B"}) || a.Equal(b) {
		t.Error("Equal")
	}
	if a.String() != "{A, B}" {
		t.Errorf("String = %q", a.String())
	}
}

func TestRobustSubsetsAuction(t *testing.T) {
	b := benchmarks.Auction()
	c := NewChecker(b.Schema)
	rep, err := c.RobustSubsets(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	// All three non-empty subsets are robust with FKs; the maximal one is
	// the full benchmark.
	if len(rep.Robust) != 3 {
		t.Fatalf("robust subsets = %v", rep.Robust)
	}
	if len(rep.Maximal) != 1 || !rep.Maximal[0].Equal(Subset{"FB", "PB"}) {
		t.Fatalf("maximal = %v", rep.Maximal)
	}
	if got := rep.String(); !strings.Contains(got, "{FB, PB}") {
		t.Errorf("report String = %q", got)
	}
}

func TestRobustSubsetsGuardsAgainstExplosion(t *testing.T) {
	b := benchmarks.AuctionN(11) // 22 programs > 20
	c := NewChecker(b.Schema)
	if _, err := c.RobustSubsets(b.Programs); err == nil {
		t.Fatal("subset enumeration over 22 programs should be refused")
	}
}

// TestMaximalSubsetsAreMaximal: no maximal subset is contained in another
// robust subset, and every robust subset is contained in some maximal one.
func TestMaximalSubsetsAreMaximal(t *testing.T) {
	b := benchmarks.SmallBank()
	c := NewChecker(b.Schema)
	rep, err := c.RobustSubsets(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Maximal {
		for _, r := range rep.Robust {
			if len(r) > len(m) && r.ContainsAll(m) {
				t.Errorf("maximal %v contained in robust %v", m, r)
			}
		}
	}
	for _, r := range rep.Robust {
		covered := false
		for _, m := range rep.Maximal {
			if m.ContainsAll(r) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("robust subset %v not covered by any maximal subset", r)
		}
	}
}

// TestSubsetMonotonicity is Proposition 5.2 at the verdict level: every
// subset of a robust set is robust (checked on SmallBank's lattice).
func TestSubsetMonotonicity(t *testing.T) {
	b := benchmarks.SmallBank()
	c := NewChecker(b.Schema)
	rep, err := c.RobustSubsets(b.Programs)
	if err != nil {
		t.Fatal(err)
	}
	isRobust := map[string]bool{}
	for _, r := range rep.Robust {
		isRobust[r.String()] = true
	}
	for _, r := range rep.Robust {
		// Drop each element; the remainder must be robust too.
		for i := range r {
			if len(r) == 1 {
				continue
			}
			sub := append(append(Subset{}, r[:i]...), r[i+1:]...)
			if !isRobust[sub.String()] {
				t.Errorf("subset %v of robust %v is not robust — monotonicity violated", sub, r)
			}
		}
	}
}
