package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/benchmarks"
	"repro/internal/mvcc"
)

// TPCCConfig sizes the TPC-C database. The paper's analysis is
// configuration-independent (Section 7.1); small values maximize contention
// for the anomaly demonstrations.
type TPCCConfig struct {
	Warehouses        int
	DistrictsPerWH    int
	CustomersPerDist  int
	Items             int
	InitialOrders     int // pre-loaded open orders per district
	MaxOrderLines     int // order lines per NewOrder (1..MaxOrderLines)
	PaymentByName     int // percent of Payments selecting customer by last name
	CustomerBadCredit int // percent of customers with "BC" credit
}

// DefaultTPCC is a tiny contended configuration.
var DefaultTPCC = TPCCConfig{
	Warehouses: 1, DistrictsPerWH: 2, CustomersPerDist: 3, Items: 5,
	InitialOrders: 2, MaxOrderLines: 3, PaymentByName: 40, CustomerBadCredit: 30,
}

func (c TPCCConfig) normalize() TPCCConfig {
	if c.Warehouses <= 0 {
		c = DefaultTPCC
	}
	if c.MaxOrderLines <= 0 {
		c.MaxOrderLines = 3
	}
	return c
}

// Key helpers (composite primary keys encoded as strings).
func wKey(w int) string           { return fmt.Sprintf("%d", w) }
func dKey(w, d int) string        { return fmt.Sprintf("%d/%d", w, d) }
func cKey(w, d, c int) string     { return fmt.Sprintf("%d/%d/%d", w, d, c) }
func iKey(i int) string           { return fmt.Sprintf("%d", i) }
func sKey(w, i int) string        { return fmt.Sprintf("%d/%d", w, i) }
func oKey(w, d, o int) string     { return fmt.Sprintf("%d/%d/%d", w, d, o) }
func olKey(w, d, o, n int) string { return fmt.Sprintf("%d/%d/%d/%d", w, d, o, n) }
func custLast(c int) string       { return fmt.Sprintf("LAST%d", c%3) } // shared last names
func noKey(w, d, o int) string    { return oKey(w, d, o) }

// NewTPCCEngine creates and loads a TPC-C database.
func NewTPCCEngine(cfg TPCCConfig) *mvcc.Engine {
	cfg = cfg.normalize()
	e := mvcc.NewEngine(benchmarks.TPCCSchema())
	for w := 1; w <= cfg.Warehouses; w++ {
		e.MustLoad("Warehouse", wKey(w), mvcc.Value{
			"w_id": w, "w_name": fmt.Sprintf("W%d", w), "w_street_1": "s1", "w_street_2": "s2",
			"w_city": "city", "w_state": "ST", "w_zip": "00000", "w_tax": 5, "w_ytd": 0,
		})
		for d := 1; d <= cfg.DistrictsPerWH; d++ {
			e.MustLoad("District", dKey(w, d), mvcc.Value{
				"d_id": d, "d_w_id": w, "d_name": fmt.Sprintf("D%d", d), "d_street_1": "s1",
				"d_street_2": "s2", "d_city": "city", "d_state": "ST", "d_zip": "00000",
				"d_tax": 7, "d_ytd": 0, "d_next_o_id": cfg.InitialOrders + 1,
			})
			for c := 1; c <= cfg.CustomersPerDist; c++ {
				credit := "GC"
				if c*100/cfg.CustomersPerDist <= cfg.CustomerBadCredit {
					credit = "BC"
				}
				e.MustLoad("Customer", cKey(w, d, c), mvcc.Value{
					"c_id": c, "c_d_id": d, "c_w_id": w, "c_first": fmt.Sprintf("F%d", c),
					"c_middle": "OE", "c_last": custLast(c), "c_street_1": "s1", "c_street_2": "s2",
					"c_city": "city", "c_state": "ST", "c_zip": "00000", "c_phone": "555",
					"c_since": 0, "c_credit": credit, "c_credit_lim": 50000, "c_discount": 4,
					"c_balance": 0, "c_ytd_payment": 0, "c_payment_cnt": 0, "c_delivery_cnt": 0,
					"c_data": "data",
				})
			}
			// Pre-load open orders with one line each.
			for o := 1; o <= cfg.InitialOrders; o++ {
				cid := (o-1)%cfg.CustomersPerDist + 1
				e.MustLoad("Orders", oKey(w, d, o), mvcc.Value{
					"o_id": o, "o_d_id": d, "o_w_id": w, "o_c_id": cid, "o_entry_id": o,
					"o_carrier_id": 0, "o_ol_cnt": 1, "o_all_local": 1,
				})
				e.MustLoad("New_Order", noKey(w, d, o), mvcc.Value{
					"no_o_id": o, "no_d_id": d, "no_w_id": w,
				})
				e.MustLoad("Order_Line", olKey(w, d, o, 1), mvcc.Value{
					"ol_o_id": o, "ol_d_id": d, "ol_w_id": w, "ol_number": 1,
					"ol_i_id": (o-1)%cfg.Items + 1, "ol_supply_w_id": w, "ol_delivery_d": 0,
					"ol_quantity": 1, "ol_amount": 10, "ol_dist_info": "info",
				})
			}
		}
	}
	for i := 1; i <= cfg.Items; i++ {
		e.MustLoad("Item", iKey(i), mvcc.Value{
			"i_id": i, "i_im_id": i, "i_name": fmt.Sprintf("item%d", i), "i_price": 10 + i, "i_data": "data",
		})
		for w := 1; w <= cfg.Warehouses; w++ {
			e.MustLoad("Stock", sKey(w, i), mvcc.Value{
				"s_i_id": i, "s_w_id": w, "s_quantity": 50,
				"s_dist_01": "d", "s_dist_02": "d", "s_dist_03": "d", "s_dist_04": "d", "s_dist_05": "d",
				"s_dist_06": "d", "s_dist_07": "d", "s_dist_08": "d", "s_dist_09": "d", "s_dist_10": "d",
				"s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0, "s_data": "data",
			})
		}
	}
	return e
}

// historySeq generates unique History keys across concurrent Payments.
var historySeq int64

// TPCCMix builds the five TPC-C programs as executable transactions whose
// statement structure follows Figures 12–16 (and therefore the BTPs of
// Figure 17).
func TPCCMix(cfg TPCCConfig) Mix {
	cfg = cfg.normalize()
	randWD := func(rng *rand.Rand) (int, int) {
		return 1 + rng.Intn(cfg.Warehouses), 1 + rng.Intn(cfg.DistrictsPerWH)
	}

	newOrder := Program{Name: "NewOrder", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		w, d := randWD(rng)
		c := 1 + rng.Intn(cfg.CustomersPerDist)
		// q8: customer discount/last/credit.
		if _, err := txn.ReadKey("Customer", cKey(w, d, c), "c_credit", "c_discount", "c_last"); err != nil {
			return AbortOn(txn, err)
		}
		// q9: warehouse tax.
		if _, err := txn.ReadKey("Warehouse", wKey(w), "w_tax"); err != nil {
			return AbortOn(txn, err)
		}
		// q10: bump d_next_o_id.
		var oid int
		err := txn.UpdateKey("District", dKey(w, d),
			[]string{"d_next_o_id", "d_tax"}, []string{"d_next_o_id"},
			func(row mvcc.Value) mvcc.Value {
				oid = row["d_next_o_id"].(int)
				row["d_next_o_id"] = oid + 1
				return row
			})
		if err != nil {
			return AbortOn(txn, err)
		}
		lines := 1 + rng.Intn(cfg.MaxOrderLines)
		// q11, q12: insert order and new-order.
		if err := txn.Insert("Orders", oKey(w, d, oid), mvcc.Value{
			"o_id": oid, "o_d_id": d, "o_w_id": w, "o_c_id": c, "o_entry_id": oid,
			"o_ol_cnt": lines, "o_all_local": 1,
		}); err != nil {
			return AbortOn(txn, err)
		}
		if err := txn.Insert("New_Order", noKey(w, d, oid), mvcc.Value{
			"no_o_id": oid, "no_d_id": d, "no_w_id": w,
		}); err != nil {
			return AbortOn(txn, err)
		}
		// Loop(q13; q14; q15) per order line.
		for n := 1; n <= lines; n++ {
			item := 1 + rng.Intn(cfg.Items)
			var price int
			v, err := txn.ReadKey("Item", iKey(item), "i_data", "i_name", "i_price")
			if err != nil {
				return AbortOn(txn, err)
			}
			price = v["i_price"].(int)
			err = txn.UpdateKey("Stock", sKey(w, item),
				[]string{"s_data", "s_dist_01", "s_dist_02", "s_dist_03", "s_dist_04", "s_dist_05",
					"s_dist_06", "s_dist_07", "s_dist_08", "s_dist_09", "s_dist_10",
					"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"},
				[]string{"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"},
				func(row mvcc.Value) mvcc.Value {
					q := row["s_quantity"].(int) - 1
					if q < 0 {
						q = 50
					}
					row["s_quantity"] = q
					row["s_ytd"] = row["s_ytd"].(int) + 1
					row["s_order_cnt"] = row["s_order_cnt"].(int) + 1
					return row
				})
			if err != nil {
				return AbortOn(txn, err)
			}
			if err := txn.Insert("Order_Line", olKey(w, d, oid, n), mvcc.Value{
				"ol_o_id": oid, "ol_d_id": d, "ol_w_id": w, "ol_number": n,
				"ol_i_id": item, "ol_supply_w_id": w, "ol_delivery_d": 0,
				"ol_quantity": 1, "ol_amount": price, "ol_dist_info": "info",
			}); err != nil {
				return AbortOn(txn, err)
			}
		}
		return txn.Commit()
	}}

	payment := Program{Name: "Payment", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		w, d := randWD(rng)
		c := 1 + rng.Intn(cfg.CustomersPerDist)
		amount := 1 + rng.Intn(100)
		// q20, q21: warehouse and district ytd.
		err := txn.UpdateKey("Warehouse", wKey(w),
			[]string{"w_city", "w_name", "w_state", "w_street_1", "w_street_2", "w_ytd", "w_zip"},
			[]string{"w_ytd"},
			func(row mvcc.Value) mvcc.Value {
				row["w_ytd"] = row["w_ytd"].(int) + amount
				return row
			})
		if err != nil {
			return AbortOn(txn, err)
		}
		err = txn.UpdateKey("District", dKey(w, d),
			[]string{"d_city", "d_name", "d_state", "d_street_1", "d_street_2", "d_ytd", "d_zip"},
			[]string{"d_ytd"},
			func(row mvcc.Value) mvcc.Value {
				row["d_ytd"] = row["d_ytd"].(int) + amount
				return row
			})
		if err != nil {
			return AbortOn(txn, err)
		}
		// (q22 | ε): optional selection by last name.
		if rng.Intn(100) < cfg.PaymentByName {
			last := custLast(c)
			rows, err := txn.SelectWhere("Customer",
				[]string{"c_d_id", "c_last", "c_w_id"}, []string{"c_id"},
				func(row mvcc.Value) bool {
					return row["c_w_id"].(int) == w && row["c_d_id"].(int) == d && row["c_last"].(string) == last
				})
			if err != nil {
				return AbortOn(txn, err)
			}
			if len(rows) > 0 {
				c = rows[len(rows)/2].Value["c_id"].(int)
			}
		}
		// q23: customer payment update.
		var credit string
		err = txn.UpdateKey("Customer", cKey(w, d, c),
			[]string{"c_balance", "c_city", "c_credit", "c_credit_lim", "c_discount", "c_first",
				"c_last", "c_middle", "c_phone", "c_since", "c_state", "c_street_1", "c_street_2",
				"c_ytd_payment", "c_zip"},
			[]string{"c_balance", "c_payment_cnt", "c_ytd_payment"},
			func(row mvcc.Value) mvcc.Value {
				credit = row["c_credit"].(string)
				row["c_balance"] = row["c_balance"].(int) - amount
				row["c_ytd_payment"] = row["c_ytd_payment"].(int) + amount
				row["c_payment_cnt"] = row["c_payment_cnt"].(int) + 1
				return row
			})
		if err != nil {
			return AbortOn(txn, err)
		}
		// (q24; q25 | ε): bad-credit data update.
		if credit == "BC" {
			if _, err := txn.ReadKey("Customer", cKey(w, d, c), "c_data"); err != nil {
				return AbortOn(txn, err)
			}
			err = txn.UpdateKey("Customer", cKey(w, d, c), nil, []string{"c_data"},
				func(row mvcc.Value) mvcc.Value {
					row["c_data"] = fmt.Sprintf("pay %d", amount)
					return row
				})
			if err != nil {
				return AbortOn(txn, err)
			}
		}
		// q26: history insert.
		h := atomic.AddInt64(&historySeq, 1)
		if err := txn.Insert("History", fmt.Sprintf("h%d", h), mvcc.Value{
			"h_c_id": c, "h_c_d_id": d, "h_c_w_id": w, "h_d_id": d, "h_w_id": w,
			"h_date": int(h), "h_amount": amount, "h_data": "hist",
		}); err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	orderStatus := Program{Name: "OrderStatus", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		w, d := randWD(rng)
		c := 1 + rng.Intn(cfg.CustomersPerDist)
		// (q16 | q17): by name or by id.
		if rng.Intn(2) == 0 {
			last := custLast(c)
			rows, err := txn.SelectWhere("Customer",
				[]string{"c_d_id", "c_last", "c_w_id"},
				[]string{"c_balance", "c_first", "c_id", "c_middle"},
				func(row mvcc.Value) bool {
					return row["c_w_id"].(int) == w && row["c_d_id"].(int) == d && row["c_last"].(string) == last
				})
			if err != nil {
				return AbortOn(txn, err)
			}
			if len(rows) > 0 {
				c = rows[len(rows)/2].Value["c_id"].(int)
			}
		} else {
			if _, err := txn.ReadKey("Customer", cKey(w, d, c), "c_balance", "c_first", "c_last", "c_middle"); err != nil {
				return AbortOn(txn, err)
			}
		}
		// q18: most recent order of the customer (predicate over Orders).
		oid := -1
		rows, err := txn.SelectWhere("Orders",
			[]string{"o_c_id", "o_d_id", "o_w_id"},
			[]string{"o_carrier_id", "o_entry_id", "o_id"},
			func(row mvcc.Value) bool {
				return row["o_w_id"].(int) == w && row["o_d_id"].(int) == d && row["o_c_id"].(int) == c
			})
		if err != nil {
			return AbortOn(txn, err)
		}
		for _, r := range rows {
			if id := r.Value["o_id"].(int); id > oid {
				oid = id
			}
		}
		// q19: its order lines.
		if _, err := txn.SelectWhere("Order_Line",
			[]string{"ol_d_id", "ol_o_id", "ol_w_id"},
			[]string{"ol_amount", "ol_delivery_d", "ol_i_id", "ol_quantity", "ol_supply_w_id"},
			func(row mvcc.Value) bool {
				return row["ol_w_id"].(int) == w && row["ol_d_id"].(int) == d && row["ol_o_id"].(int) == oid
			}); err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	delivery := Program{Name: "Delivery", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		w := 1 + rng.Intn(cfg.Warehouses)
		// Loop over districts (the paper's loop(q1..q7)).
		for d := 1; d <= cfg.DistrictsPerWH; d++ {
			// q1: oldest open order.
			rows, err := txn.SelectWhere("New_Order",
				[]string{"no_d_id", "no_w_id"}, []string{"no_o_id"},
				func(row mvcc.Value) bool {
					return row["no_w_id"].(int) == w && row["no_d_id"].(int) == d
				})
			if err != nil {
				return AbortOn(txn, err)
			}
			if len(rows) == 0 {
				continue
			}
			oid := rows[0].Value["no_o_id"].(int)
			for _, r := range rows {
				if id := r.Value["no_o_id"].(int); id < oid {
					oid = id
				}
			}
			// q2: delete it from New_Order.
			if err := txn.DeleteKey("New_Order", noKey(w, d, oid)); err != nil {
				return AbortOn(txn, err)
			}
			// q3, q4: read customer id, set carrier.
			v, err := txn.ReadKey("Orders", oKey(w, d, oid), "o_c_id")
			if err != nil {
				return AbortOn(txn, err)
			}
			c := v["o_c_id"].(int)
			if err := txn.UpdateKey("Orders", oKey(w, d, oid), nil, []string{"o_carrier_id"},
				func(row mvcc.Value) mvcc.Value {
					row["o_carrier_id"] = 1 + rng.Intn(10)
					return row
				}); err != nil {
				return AbortOn(txn, err)
			}
			// q5: stamp delivery date on the order lines.
			if _, err := txn.UpdateWhere("Order_Line",
				[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, nil, []string{"ol_delivery_d"},
				func(row mvcc.Value) bool {
					return row["ol_w_id"].(int) == w && row["ol_d_id"].(int) == d && row["ol_o_id"].(int) == oid
				},
				func(row mvcc.Value) mvcc.Value {
					row["ol_delivery_d"] = 1
					return row
				}); err != nil {
				return AbortOn(txn, err)
			}
			// q6: sum the amounts.
			total := 0
			olRows, err := txn.SelectWhere("Order_Line",
				[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, []string{"ol_amount"},
				func(row mvcc.Value) bool {
					return row["ol_w_id"].(int) == w && row["ol_d_id"].(int) == d && row["ol_o_id"].(int) == oid
				})
			if err != nil {
				return AbortOn(txn, err)
			}
			for _, r := range olRows {
				total += r.Value["ol_amount"].(int)
			}
			// q7: credit the customer.
			if err := txn.UpdateKey("Customer", cKey(w, d, c),
				[]string{"c_balance", "c_delivery_cnt"}, []string{"c_balance", "c_delivery_cnt"},
				func(row mvcc.Value) mvcc.Value {
					row["c_balance"] = row["c_balance"].(int) + total
					row["c_delivery_cnt"] = row["c_delivery_cnt"].(int) + 1
					return row
				}); err != nil {
				return AbortOn(txn, err)
			}
		}
		return txn.Commit()
	}}

	stockLevel := Program{Name: "StockLevel", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		w, d := randWD(rng)
		threshold := 45 + rng.Intn(10)
		// q27: next order id.
		v, err := txn.ReadKey("District", dKey(w, d), "d_next_o_id")
		if err != nil {
			return AbortOn(txn, err)
		}
		oid := v["d_next_o_id"].(int)
		// q28: recent order lines.
		if _, err := txn.SelectWhere("Order_Line",
			[]string{"ol_d_id", "ol_o_id", "ol_w_id"}, []string{"ol_i_id"},
			func(row mvcc.Value) bool {
				o := row["ol_o_id"].(int)
				return row["ol_w_id"].(int) == w && row["ol_d_id"].(int) == d && o < oid && o >= oid-20
			}); err != nil {
			return AbortOn(txn, err)
		}
		// q29: low-stock items.
		if _, err := txn.SelectWhere("Stock",
			[]string{"s_quantity", "s_w_id"}, []string{"s_i_id"},
			func(row mvcc.Value) bool {
				return row["s_w_id"].(int) == w && row["s_quantity"].(int) < threshold
			}); err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	return Mix{Programs: []Program{delivery, newOrder, orderStatus, payment, stockLevel}}
}

// TPCCSubsetMix restricts the TPC-C mix to the named programs
// (abbreviations Del, NO, OS, Pay, SL or full names).
func TPCCSubsetMix(cfg TPCCConfig, names ...string) (Mix, error) {
	full := TPCCMix(cfg)
	abbrev := map[string]string{
		"Del": "Delivery", "NO": "NewOrder", "OS": "OrderStatus",
		"Pay": "Payment", "SL": "StockLevel",
	}
	var out Mix
	for _, n := range names {
		if f, ok := abbrev[n]; ok {
			n = f
		}
		found := false
		for _, p := range full.Programs {
			if p.Name == n {
				out.Programs = append(out.Programs, p)
				found = true
				break
			}
		}
		if !found {
			return Mix{}, fmt.Errorf("workload: unknown TPC-C program %q", n)
		}
	}
	return out, nil
}
