package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/benchmarks"
	"repro/internal/mvcc"
)

// AuctionConfig sizes the auction database of the running example.
type AuctionConfig struct {
	// Buyers is the number of potential buyers (each with a current bid).
	Buyers int
}

// DefaultAuction is a small contended configuration.
var DefaultAuction = AuctionConfig{Buyers: 4}

// NewAuctionEngine creates and loads the auction database of Section 2.
func NewAuctionEngine(cfg AuctionConfig) *mvcc.Engine {
	if cfg.Buyers <= 0 {
		cfg = DefaultAuction
	}
	e := mvcc.NewEngine(benchmarks.AuctionSchema())
	for i := 0; i < cfg.Buyers; i++ {
		id := fmt.Sprintf("b%d", i)
		e.MustLoad("Buyer", id, mvcc.Value{"id": id, "calls": 0})
		e.MustLoad("Bids", id, mvcc.Value{"buyerId": id, "bid": 10 * (i + 1)})
	}
	return e
}

// AuctionMix builds the two programs of Figure 1 — FindBids(B, T) and
// PlaceBid(B, V) — as executable transactions.
func AuctionMix(cfg AuctionConfig) Mix {
	if cfg.Buyers <= 0 {
		cfg = DefaultAuction
	}
	var logSeq int64 // unique log ids; coarse but sufficient for a demo
	findBids := Program{Name: "FindBids", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		buyer := fmt.Sprintf("b%d", rng.Intn(cfg.Buyers))
		threshold := rng.Intn(100)
		// q1: UPDATE Buyer SET calls = calls + 1 WHERE id = :B
		err := txn.UpdateKey("Buyer", buyer, []string{"calls"}, []string{"calls"}, func(row mvcc.Value) mvcc.Value {
			row["calls"] = row["calls"].(int) + 1
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		// q2: SELECT bid FROM Bids WHERE bid >= :T
		_, err = txn.SelectWhere("Bids", []string{"bid"}, []string{"bid"}, func(row mvcc.Value) bool {
			return row["bid"].(int) >= threshold
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	placeBid := Program{Name: "PlaceBid", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		buyer := fmt.Sprintf("b%d", rng.Intn(cfg.Buyers))
		bid := rng.Intn(120)
		// q3: UPDATE Buyer SET calls = calls + 1 WHERE id = :B
		err := txn.UpdateKey("Buyer", buyer, []string{"calls"}, []string{"calls"}, func(row mvcc.Value) mvcc.Value {
			row["calls"] = row["calls"].(int) + 1
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		// q4: SELECT bid INTO :C FROM Bids WHERE buyerId = :B
		cur, err := txn.ReadKey("Bids", buyer, "bid")
		if err != nil {
			return AbortOn(txn, err)
		}
		// q5 (conditional): IF :C < :V UPDATE Bids SET bid = :V
		if cur["bid"].(int) < bid {
			err = txn.UpdateKey("Bids", buyer, nil, []string{"bid"}, func(row mvcc.Value) mvcc.Value {
				row["bid"] = bid
				return row
			})
			if err != nil {
				return AbortOn(txn, err)
			}
		}
		// q6: INSERT INTO Log VALUES (:logId, :B, :V)
		logID := fmt.Sprintf("l%d-%d", txn.ID(), atomic.AddInt64(&logSeq, 1))
		if err := txn.Insert("Log", logID, mvcc.Value{"id": logID, "buyerId": buyer, "bid": bid}); err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	return Mix{Programs: []Program{findBids, placeBid}}
}
