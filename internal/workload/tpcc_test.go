package workload

import (
	"testing"

	"repro/internal/mvcc"
)

// TestTPCCRobustSubsetSerializable runs the {OS, Pay, SL} subset — certified
// robust under attr dep + FK (Figure 6) — under Read Committed and asserts
// every recorded execution is conflict serializable.
func TestTPCCRobustSubsetSerializable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := DefaultTPCC
		e := NewTPCCEngine(cfg)
		mix, err := TPCCSubsetMix(cfg, "OS", "Pay", "SL")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, mix, RunOptions{
			Transactions: 120, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.AllowedUnderMVRC() {
			t.Fatalf("seed %d: engine schedule not allowed under MVRC", seed)
		}
		if !res.Serializable() {
			t.Fatalf("seed %d: robust TPC-C subset produced a non-serializable execution", seed)
		}
	}
}

// TestTPCCNoPaySubsetSerializable runs {NO, Pay}, the other maximal robust
// subset of Figure 6.
func TestTPCCNoPaySubsetSerializable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := DefaultTPCC
		e := NewTPCCEngine(cfg)
		mix, err := TPCCSubsetMix(cfg, "NO", "Pay")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, mix, RunOptions{
			Transactions: 120, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Serializable() {
			t.Fatalf("seed %d: {NO, Pay} produced a non-serializable execution", seed)
		}
	}
}

// TestTPCCFullMixAnomalyUnderRC runs the full five-program mix under Read
// Committed until a non-serializable execution is observed (the full
// benchmark is not robust against MVRC).
func TestTPCCFullMixAnomalyUnderRC(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		cfg := DefaultTPCC
		e := NewTPCCEngine(cfg)
		res, err := Run(e, TPCCMix(cfg), RunOptions{
			Transactions: 200, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.AllowedUnderMVRC() {
			t.Fatalf("seed %d: engine schedule not allowed under MVRC", seed)
		}
		if !res.Serializable() {
			return // anomaly observed, as predicted
		}
	}
	t.Fatal("no anomaly observed for the full TPC-C mix under RC in 40 runs")
}

// TestTPCCInvariants checks basic accounting invariants after a run: the
// district ytd totals equal the warehouse ytd total (all Payments touch
// both), orders are consistent, and delivered new-orders are gone.
func TestTPCCInvariants(t *testing.T) {
	cfg := DefaultTPCC
	e := NewTPCCEngine(cfg)
	res, err := Run(e, TPCCMix(cfg), RunOptions{
		Transactions: 200, Workers: 4, Isolation: mvcc.Serializable, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("nothing committed")
	}
	wv, ok := e.ReadCommittedValue("Warehouse", wKey(1))
	if !ok {
		t.Fatal("warehouse vanished")
	}
	sumD := 0
	for d := 1; d <= cfg.DistrictsPerWH; d++ {
		dv, ok := e.ReadCommittedValue("District", dKey(1, d))
		if !ok {
			t.Fatal("district vanished")
		}
		sumD += dv["d_ytd"].(int)
	}
	if wv["w_ytd"].(int) != sumD {
		t.Errorf("w_ytd %v != sum of d_ytd %v under Serializable", wv["w_ytd"], sumD)
	}
	// Every remaining New_Order row must reference an existing order.
	if e.RowCount("New_Order") > e.RowCount("Orders") {
		t.Error("more open orders than orders")
	}
}
