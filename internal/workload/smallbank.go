package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/benchmarks"
	"repro/internal/mvcc"
)

// SmallBankConfig sizes the SmallBank database.
type SmallBankConfig struct {
	// Customers is the number of customer accounts.
	Customers int
	// InitialBalance seeds each savings/checking balance.
	InitialBalance int
}

// DefaultSmallBank is a small contended configuration.
var DefaultSmallBank = SmallBankConfig{Customers: 5, InitialBalance: 1000}

// NewSmallBankEngine creates and loads a SmallBank database.
func NewSmallBankEngine(cfg SmallBankConfig) *mvcc.Engine {
	if cfg.Customers <= 0 {
		cfg = DefaultSmallBank
	}
	e := mvcc.NewEngine(benchmarks.SmallBankSchema())
	for i := 0; i < cfg.Customers; i++ {
		name := fmt.Sprintf("cust%d", i)
		id := fmt.Sprintf("%d", i)
		e.MustLoad("Account", name, mvcc.Value{"Name": name, "CustomerId": id})
		e.MustLoad("Savings", id, mvcc.Value{"CustomerId": id, "Balance": cfg.InitialBalance})
		e.MustLoad("Checking", id, mvcc.Value{"CustomerId": id, "Balance": cfg.InitialBalance})
	}
	return e
}

// lookupCustomer performs the Account key selection shared by every
// SmallBank program and returns the customer id.
func lookupCustomer(txn *mvcc.Txn, name string) (string, error) {
	v, err := txn.ReadKey("Account", name, "CustomerId")
	if err != nil {
		return "", err
	}
	return v["CustomerId"].(string), nil
}

func randomCustomer(cfg SmallBankConfig, rng *rand.Rand) string {
	return fmt.Sprintf("cust%d", rng.Intn(cfg.Customers))
}

// SmallBankMix builds the five SmallBank programs as executable
// transactions over a database of the given configuration. The program
// bodies follow the SQL of Figure 9 statement by statement.
func SmallBankMix(cfg SmallBankConfig) Mix {
	if cfg.Customers <= 0 {
		cfg = DefaultSmallBank
	}
	balance := Program{Name: "Balance", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		id, err := lookupCustomer(txn, randomCustomer(cfg, rng))
		if err != nil {
			return AbortOn(txn, err)
		}
		if _, err := txn.ReadKey("Savings", id, "Balance"); err != nil {
			return AbortOn(txn, err)
		}
		if _, err := txn.ReadKey("Checking", id, "Balance"); err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	depositChecking := Program{Name: "DepositChecking", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		id, err := lookupCustomer(txn, randomCustomer(cfg, rng))
		if err != nil {
			return AbortOn(txn, err)
		}
		v := 1 + rng.Intn(100)
		err = txn.UpdateKey("Checking", id, []string{"Balance"}, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			row["Balance"] = row["Balance"].(int) + v
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	transactSavings := Program{Name: "TransactSavings", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		id, err := lookupCustomer(txn, randomCustomer(cfg, rng))
		if err != nil {
			return AbortOn(txn, err)
		}
		v := 1 + rng.Intn(100)
		err = txn.UpdateKey("Savings", id, []string{"Balance"}, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			row["Balance"] = row["Balance"].(int) + v
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	amalgamate := Program{Name: "Amalgamate", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		n1 := randomCustomer(cfg, rng)
		n2 := randomCustomer(cfg, rng)
		if n1 == n2 {
			n2 = fmt.Sprintf("cust%d", (rng.Intn(cfg.Customers)+1)%cfg.Customers)
		}
		x1, err := lookupCustomer(txn, n1)
		if err != nil {
			return AbortOn(txn, err)
		}
		x2, err := lookupCustomer(txn, n2)
		if err != nil {
			return AbortOn(txn, err)
		}
		total := 0
		err = txn.UpdateKey("Savings", x1, []string{"Balance"}, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			total += row["Balance"].(int)
			row["Balance"] = 0
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		err = txn.UpdateKey("Checking", x1, []string{"Balance"}, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			total += row["Balance"].(int)
			row["Balance"] = 0
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		err = txn.UpdateKey("Checking", x2, []string{"Balance"}, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			row["Balance"] = row["Balance"].(int) + total
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	writeCheck := Program{Name: "WriteCheck", Run: func(txn *mvcc.Txn, rng *rand.Rand) error {
		id, err := lookupCustomer(txn, randomCustomer(cfg, rng))
		if err != nil {
			return AbortOn(txn, err)
		}
		sv, err := txn.ReadKey("Savings", id, "Balance")
		if err != nil {
			return AbortOn(txn, err)
		}
		cv, err := txn.ReadKey("Checking", id, "Balance")
		if err != nil {
			return AbortOn(txn, err)
		}
		amount := 1 + rng.Intn(100)
		if sv["Balance"].(int)+cv["Balance"].(int) < amount {
			amount++ // overdraft penalty
		}
		newBalance := cv["Balance"].(int) - amount
		// Figure 10 models the final update as a blind write (ReadSet = {}):
		// the new balance is computed from the earlier reads.
		err = txn.UpdateKey("Checking", id, nil, []string{"Balance"}, func(row mvcc.Value) mvcc.Value {
			row["Balance"] = newBalance
			return row
		})
		if err != nil {
			return AbortOn(txn, err)
		}
		return txn.Commit()
	}}

	return Mix{Programs: []Program{amalgamate, balance, depositChecking, transactSavings, writeCheck}}
}

// SmallBankSubsetMix restricts the mix to the named programs (by
// abbreviation or full name), e.g. "Am", "DC", "TS".
func SmallBankSubsetMix(cfg SmallBankConfig, names ...string) (Mix, error) {
	full := SmallBankMix(cfg)
	abbrev := map[string]string{
		"Am": "Amalgamate", "Bal": "Balance", "DC": "DepositChecking",
		"TS": "TransactSavings", "WC": "WriteCheck",
	}
	var out Mix
	for _, n := range names {
		if f, ok := abbrev[n]; ok {
			n = f
		}
		found := false
		for _, p := range full.Programs {
			if p.Name == n {
				out.Programs = append(out.Programs, p)
				found = true
				break
			}
		}
		if !found {
			return Mix{}, fmt.Errorf("workload: unknown SmallBank program %q", n)
		}
	}
	return out, nil
}
