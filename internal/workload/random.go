package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/btp"
	"repro/internal/relschema"
)

// This file is the randomized workload generator behind the certification
// fuzz lane (internal/certify): it produces small schemas and
// Validate-clean BTP sets whose analysis, realization and replay exercise
// corners the hand-written benchmarks cannot — FK chains between random
// relations, predicate statements over every attribute shape, and
// optional/loop/choice structure in arbitrary positions. Everything is
// derived deterministically from the caller's *rand.Rand, so a failing
// seed reproduces exactly.

// RandomOptions sizes a generated workload. The zero value picks the
// defaults noted per field.
type RandomOptions struct {
	// MaxRelations bounds the schema size (default 2, minimum 1).
	MaxRelations int
	// MaxPrograms bounds the program count (default 3, minimum 1).
	MaxPrograms int
	// MaxStmts bounds statements per program (default 4, minimum 1).
	MaxStmts int
	// NoFKs suppresses foreign keys and annotations.
	NoFKs bool
	// NoStructure keeps every program linear (no choice/optional/loop).
	NoStructure bool
}

func (o RandomOptions) relations() int { return defaulted(o.MaxRelations, 2) }
func (o RandomOptions) programs() int  { return defaulted(o.MaxPrograms, 3) }
func (o RandomOptions) stmts() int     { return defaulted(o.MaxStmts, 4) }

func defaulted(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

// RandomWorkload is one generated analysis input: a schema and a set of
// programs valid against it.
type RandomWorkload struct {
	Schema   *relschema.Schema
	Programs []*btp.Program
}

// fkey references one generated foreign key and its endpoint relations.
type fkey struct{ name, dom, rng string }

// RandomBTPs generates a schema and program set from the rng. The result
// always passes Program.Validate for every program (the generator only
// emits well-formed attribute shapes and annotations), which the fuzz
// tests assert as the generator's own contract.
func RandomBTPs(rng *rand.Rand, opts RandomOptions) *RandomWorkload {
	s := relschema.NewSchema()
	nRel := 1 + rng.Intn(opts.relations())
	attrPool := []string{"a", "b", "c"}
	rels := make([]string, nRel)
	for i := range rels {
		rels[i] = fmt.Sprintf("R%d", i)
		attrs := append([]string{"k"}, attrPool[:1+rng.Intn(len(attrPool))]...)
		s.MustAddRelation(rels[i], attrs, []string{"k"})
	}
	// Foreign keys between distinct relations, keyed on the domain's own
	// key (the SmallBank shape: Account.CustomerId → Savings.CustomerId).
	var fks []fkey
	if !opts.NoFKs && nRel > 1 {
		for i := 0; i < nRel && len(fks) < 2; i++ {
			if rng.Intn(2) == 0 {
				continue
			}
			j := rng.Intn(nRel - 1)
			if j >= i {
				j++
			}
			name := fmt.Sprintf("f%d", len(fks))
			s.MustAddForeignKey(name, rels[i], []string{"k"}, rels[j], []string{"k"})
			fks = append(fks, fkey{name: name, dom: rels[i], rng: rels[j]})
		}
	}

	w := &RandomWorkload{Schema: s}
	nProg := 1 + rng.Intn(opts.programs())
	for pi := 0; pi < nProg; pi++ {
		name := fmt.Sprintf("P%d", pi)
		nStmt := 1 + rng.Intn(opts.stmts())
		qs := make([]*btp.Stmt, nStmt)
		for qi := range qs {
			qs[qi] = randomStmt(rng, s, fmt.Sprintf("q%d", qi), rels[rng.Intn(nRel)])
		}
		p := &btp.Program{Name: name, Body: randomBody(rng, qs, opts.NoStructure)}
		if !opts.NoFKs {
			annotateRandomFKs(rng, s, p, fks, qs)
		}
		w.Programs = append(w.Programs, p)
	}
	return w
}

// randomStmt emits one statement of a random type with schema-consistent
// attribute sets (Figure 5 shapes).
func randomStmt(rng *rand.Rand, s *relschema.Schema, name, rel string) *btp.Stmt {
	attrs := s.Attrs(rel).Sorted()
	// Non-empty random subset of the relation's attributes.
	pick := func() []string {
		var out []string
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			out = append(out, attrs[rng.Intn(len(attrs))])
		}
		return out
	}
	// Possibly-empty random subset.
	pickMaybe := func() []string {
		if rng.Intn(3) == 0 {
			return nil
		}
		return pick()
	}
	switch rng.Intn(8) {
	case 0:
		return btp.NewIns(s, name, rel)
	case 1:
		return btp.NewKeyDel(s, name, rel)
	case 2:
		return btp.NewPredDel(s, name, rel, pick()...)
	case 3:
		return btp.NewPredSel(name, rel, pick(), pickMaybe())
	case 4:
		return btp.NewPredUpd(name, rel, pick(), pickMaybe(), pick())
	case 5:
		return btp.NewKeyUpd(name, rel, pickMaybe(), pick())
	default:
		// Selections are the most common statement in the benchmarks; give
		// them two slots of the eight.
		return btp.NewKeySel(name, rel, pick()...)
	}
}

// randomBody arranges the statements into a program body: mostly a flat
// sequence, with occasional choice/optional/loop nodes wrapping short
// windows (so unfolding stays small under the default bound).
func randomBody(rng *rand.Rand, qs []*btp.Stmt, linear bool) btp.Node {
	if linear || len(qs) == 1 || rng.Intn(3) == 0 {
		return btp.Stmts(qs...)
	}
	var items []btp.Node
	for i := 0; i < len(qs); {
		rest := len(qs) - i
		switch {
		case rest >= 2 && rng.Intn(4) == 0:
			items = append(items, btp.ChoiceOf(btp.S(qs[i]), btp.S(qs[i+1])))
			i += 2
		case rng.Intn(4) == 0:
			items = append(items, btp.Opt(btp.S(qs[i])))
			i++
		case rng.Intn(6) == 0:
			items = append(items, btp.LoopOf(btp.S(qs[i])))
			i++
		default:
			items = append(items, btp.S(qs[i]))
			i++
		}
	}
	if len(items) == 1 {
		return items[0]
	}
	return btp.SeqOf(items...)
}

// annotateRandomFKs adds a few valid annotations q_dst = f(q_src): src over
// dom(f), dst over range(f) and key-based. Candidates that do not fit are
// simply skipped, so the program always validates.
func annotateRandomFKs(rng *rand.Rand, s *relschema.Schema, p *btp.Program, fks []fkey, qs []*btp.Stmt) {
	for _, f := range fks {
		if rng.Intn(2) == 0 {
			continue
		}
		var srcs, dsts []*btp.Stmt
		for _, q := range qs {
			if q.Rel == f.dom {
				srcs = append(srcs, q)
			}
			if q.Rel == f.rng && q.Type.IsKeyBased() {
				dsts = append(dsts, q)
			}
		}
		if len(srcs) == 0 || len(dsts) == 0 {
			continue
		}
		src := srcs[rng.Intn(len(srcs))]
		dst := dsts[rng.Intn(len(dsts))]
		if src == dst {
			continue
		}
		if err := p.AnnotateFK(s, f.name, src.Name, dst.Name); err != nil {
			// Unreachable by construction; treat defensively rather than
			// emit an invalid program.
			continue
		}
	}
}
