package workload

import (
	"testing"

	"repro/internal/mvcc"
)

// TestRobustSubsetAlwaysSerializable runs the robust SmallBank subset
// {Am, DC, TS} under Read Committed many times and asserts every recorded
// execution is conflict serializable — the operational meaning of the
// paper's robustness verdict (Figure 6).
func TestRobustSubsetAlwaysSerializable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := SmallBankConfig{Customers: 2, InitialBalance: 1000}
		e := NewSmallBankEngine(cfg)
		mix, err := SmallBankSubsetMix(cfg, "Am", "DC", "TS")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(e, mix, RunOptions{
			Transactions: 150, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.AllowedUnderMVRC() {
			t.Fatalf("seed %d: engine produced a schedule not allowed under MVRC:\n%s", seed, res.Schedule)
		}
		if !res.Serializable() {
			t.Fatalf("seed %d: robust subset produced a non-serializable execution", seed)
		}
	}
}

// TestFullSmallBankAnomalyUnderRC runs the full SmallBank mix (non-robust)
// under Read Committed on a highly contended database until a
// non-serializable execution is observed.
func TestFullSmallBankAnomalyUnderRC(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		cfg := SmallBankConfig{Customers: 1, InitialBalance: 1000}
		e := NewSmallBankEngine(cfg)
		mix := SmallBankMix(cfg)
		res, err := Run(e, mix, RunOptions{
			Transactions: 200, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.AllowedUnderMVRC() {
			t.Fatalf("seed %d: engine produced a schedule not allowed under MVRC", seed)
		}
		if !res.Serializable() {
			return // anomaly observed, as the static analysis predicts
		}
	}
	t.Fatal("no anomaly observed for the non-robust full SmallBank mix under RC in 50 runs")
}

// TestFullSmallBankSerializableUnderSerializable runs the same non-robust
// mix under the Serializable level and asserts every recorded execution is
// conflict serializable.
func TestFullSmallBankSerializableUnderSerializable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := SmallBankConfig{Customers: 1, InitialBalance: 1000}
		e := NewSmallBankEngine(cfg)
		mix := SmallBankMix(cfg)
		res, err := Run(e, mix, RunOptions{
			Transactions: 150, Workers: 8, Isolation: mvcc.Serializable,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Serializable() {
			t.Fatalf("seed %d: serializable level produced a non-serializable execution", seed)
		}
	}
}

// TestAuctionAlwaysSerializableUnderRC runs the full Auction benchmark —
// certified robust with foreign keys (Figure 6) — under Read Committed and
// asserts serializability of every recorded execution.
func TestAuctionAlwaysSerializableUnderRC(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := AuctionConfig{Buyers: 2}
		e := NewAuctionEngine(cfg)
		res, err := Run(e, AuctionMix(cfg), RunOptions{
			Transactions: 200, Workers: 8, Isolation: mvcc.ReadCommitted,
			Seed: seed, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedule.AllowedUnderMVRC() {
			t.Fatalf("seed %d: engine produced a schedule not allowed under MVRC", seed)
		}
		if !res.Serializable() {
			t.Fatalf("seed %d: robust Auction benchmark produced a non-serializable execution", seed)
		}
	}
}
