package workload

import (
	"testing"

	"repro/internal/mvcc"
)

// TestSnapshotIsolationRuns exercises the SI path of the engine under the
// full SmallBank mix: first-committer-wins must abort conflicting writers,
// and the run must complete without harness errors.
func TestSnapshotIsolationRuns(t *testing.T) {
	cfg := SmallBankConfig{Customers: 1, InitialBalance: 1000}
	e := NewSmallBankEngine(cfg)
	res, err := Run(e, SmallBankMix(cfg), RunOptions{
		Transactions: 200, Workers: 8, Isolation: mvcc.SnapshotIsolation,
		Seed: 3, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("nothing committed under SI")
	}
	if res.Aborts == 0 {
		t.Fatal("a contended SI run should abort some first-committer-wins losers")
	}
}

// TestMoneyConservationRobustSubsetUnderRC: because {Am, DC, TS} is robust,
// running it under plain Read Committed must preserve the semantic
// invariant that deposits sum correctly — every execution is equivalent to
// a serial one. Amalgamate moves money, DepositChecking and
// TransactSavings add known amounts; the final total must equal the
// initial total plus all committed deposits. We verify the weaker but
// still meaningful invariant that no money is created or destroyed by
// Amalgamate alone.
func TestMoneyConservationRobustSubsetUnderRC(t *testing.T) {
	cfg := SmallBankConfig{Customers: 3, InitialBalance: 100}
	e := NewSmallBankEngine(cfg)
	mix, err := SmallBankSubsetMix(cfg, "Am")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, mix, RunOptions{
		Transactions: 150, Workers: 8, Isolation: mvcc.ReadCommitted, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < cfg.Customers; i++ {
		id := string(rune('0' + i))
		if v, ok := e.ReadCommittedValue("Savings", id); ok {
			total += v["Balance"].(int)
		}
		if v, ok := e.ReadCommittedValue("Checking", id); ok {
			total += v["Balance"].(int)
		}
	}
	want := 2 * cfg.Customers * cfg.InitialBalance
	if total != want {
		t.Fatalf("Amalgamate-only workload changed the total: %d, want %d", total, want)
	}
}

// TestRecorderDropsAborted: aborted transactions must not appear in the
// recorded schedule.
func TestRecorderDropsAborted(t *testing.T) {
	cfg := SmallBankConfig{Customers: 1, InitialBalance: 100}
	e := NewSmallBankEngine(cfg)
	res, err := Run(e, SmallBankMix(cfg), RunOptions{
		Transactions: 150, Workers: 8, Isolation: mvcc.ReadCommitted,
		Seed: 5, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Skip("no aborts this run; nothing to check")
	}
	if int64(len(res.Schedule.Txns)) != res.Commits {
		t.Fatalf("recorded %d transactions, committed %d", len(res.Schedule.Txns), res.Commits)
	}
	for _, txn := range res.Schedule.Txns {
		if txn.CommitOp() == nil {
			t.Fatalf("recorded transaction %d lacks a commit", txn.ID)
		}
	}
}
