// Package workload runs the paper's benchmarks as executable transaction
// programs against the internal/mvcc engine, records the resulting
// multiversion schedules, and analyzes them with internal/seg. This closes
// the loop of the paper's claim: program sets certified robust by the
// static analysis produce only conflict-serializable executions under
// MVRC, while rejected sets exhibit observable anomalies.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/mvcc"
	"repro/internal/relschema"
	"repro/internal/schedule"
	"repro/internal/seg"
)

// Program is one executable transaction program: it runs a transaction
// body against an engine transaction. A Program must either commit or
// abort the transaction it is given. Returning an error means the
// transaction aborted (e.g. on a write conflict).
type Program struct {
	// Name identifies the program (matches the BTP name).
	Name string
	// Run executes one instance. The rng parameterizes the instance (which
	// customer, which amount, ...). Run must end with txn.Commit() or
	// txn.Abort().
	Run func(txn *mvcc.Txn, rng *rand.Rand) error
}

// Mix is a weighted set of programs forming a workload.
type Mix struct {
	Programs []Program
	// Weights are the relative frequencies; nil means uniform.
	Weights []int
}

// pick selects a program according to the weights.
func (m Mix) pick(rng *rand.Rand) Program {
	if len(m.Weights) != len(m.Programs) {
		return m.Programs[rng.Intn(len(m.Programs))]
	}
	total := 0
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Intn(total)
	for i, w := range m.Weights {
		if x < w {
			return m.Programs[i]
		}
		x -= w
	}
	return m.Programs[len(m.Programs)-1]
}

// RunOptions configure a workload run.
type RunOptions struct {
	// Transactions is the total number of transaction attempts.
	Transactions int
	// Workers is the number of concurrent workers.
	Workers int
	// Isolation is the isolation level every transaction runs at.
	Isolation mvcc.Isolation
	// Seed seeds the per-worker RNGs deterministically.
	Seed int64
	// Record enables schedule recording.
	Record bool
}

// RunResult reports a workload run.
type RunResult struct {
	Commits int64
	Aborts  int64
	// Schedule is the recorded multiversion schedule (nil unless Record).
	Schedule *schedule.Schedule
	// Graph is its serialization graph (nil unless Record).
	Graph *seg.Graph
}

// Serializable reports whether the recorded execution was conflict
// serializable. It returns true for unrecorded runs.
func (r *RunResult) Serializable() bool {
	if r.Graph == nil {
		return true
	}
	return r.Graph.IsConflictSerializable()
}

// Run executes the mix against the engine.
func Run(e *mvcc.Engine, mix Mix, opts RunOptions) (*RunResult, error) {
	if opts.Transactions <= 0 {
		opts.Transactions = 100
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	var rec *mvcc.Recorder
	if opts.Record {
		rec = mvcc.NewRecorder()
		e.SetRecorder(rec)
		defer e.SetRecorder(nil)
	}
	// Yield between statements so concurrent transactions interleave at
	// statement granularity (the granularity the paper's model considers).
	e.SetYield(runtime.Gosched)
	defer e.SetYield(nil)
	var wg sync.WaitGroup
	// Buffered so that early worker exit cannot block the producer.
	work := make(chan int, opts.Transactions)
	errCh := make(chan error, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
		go func(rng *rand.Rand) {
			defer wg.Done()
			for range work {
				p := mix.pick(rng)
				txn := e.Begin(opts.Isolation)
				txn.SetLabel(p.Name)
				if err := p.Run(txn, rng); err != nil {
					// The program reports aborts as errors; anything else
					// is a harness bug.
					if !isExpectedAbort(err) {
						errCh <- fmt.Errorf("workload %s: %w", p.Name, err)
						return
					}
				}
			}
		}(rng)
	}
	for i := 0; i < opts.Transactions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	commits, aborts := e.Stats()
	res := &RunResult{Commits: commits, Aborts: aborts}
	if rec != nil {
		s, err := rec.Schedule(e.Schema())
		if err != nil {
			return nil, fmt.Errorf("workload: recording: %w", err)
		}
		res.Schedule = s
		res.Graph = seg.Build(s)
	}
	return res, nil
}

func isExpectedAbort(err error) bool {
	for _, target := range []error{mvcc.ErrWriteConflict, mvcc.ErrReadConflict, mvcc.ErrNotFound, mvcc.ErrDuplicateKey} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// AbortOn wraps a step: on error it aborts the transaction and returns the
// error; otherwise it returns nil. Use inside Program.Run bodies.
func AbortOn(txn *mvcc.Txn, err error) error {
	if err != nil {
		txn.Abort()
		return err
	}
	return nil
}

// AttrNames converts an attribute set to a sorted slice (helper for program
// implementations).
func AttrNames(s relschema.AttrSet) []string { return s.Sorted() }
