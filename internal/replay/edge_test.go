package replay

import (
	"errors"
	"testing"

	"repro/internal/mvcc"
	"repro/internal/relschema"
	"repro/internal/schedule"
)

// edgeSchema is a one-relation schema for hand-built schedules.
func edgeSchema(t *testing.T) *relschema.Schema {
	t.Helper()
	s := relschema.NewSchema()
	s.MustAddRelation("R", []string{"id", "v"}, []string{"id"})
	return s
}

var (
	tupX = schedule.TupleID{Rel: "R", Name: "x"}
	tupY = schedule.TupleID{Rel: "R", Name: "y"}
)

// TestReplayEdgeCases is a table of hand-computed schedules pinning the
// engine's behavior at the edges: write-write conflicts abort the replay
// with the engine's no-wait lock error, Read Committed resolves every read
// against the version chain's last committed version, and interleavings
// that would install versions outside a tuple's unborn-first/dead-last
// frame are both rejected by the abstract model (AllowedUnderMVRC) and
// unreplayable on the engine.
//
// For every case the expected outcome was computed by hand from the MVRC
// semantics of Section 3 before being run; `allowed` is the abstract
// model's verdict on the interleaving, `wantErr` the engine error class a
// replay must hit (nil meaning the replay completes), and `serializable`
// the conflict-serializability of the recorded execution when it does.
func TestReplayEdgeCases(t *testing.T) {
	attrV := relschema.NewAttrSet("v")
	cases := []struct {
		name string
		// build returns the transactions and the interleaved order.
		build        func() ([]*schedule.Transaction, []*schedule.Op)
		allowed      bool
		wantErr      error
		serializable bool
	}{
		{
			// R1[x] R2[x] W1[x] C1 W2[x] C2 — both read the initial
			// version, both updates install on top: the textbook lost
			// update, allowed under RC, cyclic (T1 rw T2, T2 rw T1).
			name: "lost update is allowed and non-serializable",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				r1, w1, c1 := t1.ReadSet(tupX, attrV), t1.WriteSet(tupX, attrV), t1.Commit()
				r2, w2, c2 := t2.ReadSet(tupX, attrV), t2.WriteSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{r1, r2, w1, c1, w2, c2}
			},
			allowed:      true,
			serializable: false,
		},
		{
			// W1[x] W2[x] C1 C2 — a dirty write. The abstract model
			// forbids it and the engine's no-wait lock turns it into a
			// write-conflict error at W2.
			name: "dirty write aborts with a write conflict",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				w1, c1 := t1.WriteSet(tupX, attrV), t1.Commit()
				w2, c2 := t2.WriteSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{w1, w2, c1, c2}
			},
			allowed: false,
			wantErr: mvcc.ErrWriteConflict,
		},
		{
			// W1[x] R2[x] C2 C1 — T2 reads while T1's update is pending:
			// last committed is still the initial version, so T2 never
			// observes the dirty value and the execution serializes as
			// T2 T1.
			name: "uncommitted write is invisible under RC",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				w1, c1 := t1.WriteSet(tupX, attrV), t1.Commit()
				r2, c2 := t2.ReadSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{w1, r2, c2, c1}
			},
			allowed:      true,
			serializable: true,
		},
		{
			// R2[x] W1[x] C1 R2[x] C2 — the same transaction reads x
			// before and after T1 commits and sees two different
			// versions: the non-repeatable read RC admits, cyclic in the
			// serialization graph.
			name: "non-repeatable read is allowed and non-serializable",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				w1, c1 := t1.WriteSet(tupX, attrV), t1.Commit()
				ra, rb, c2 := t2.ReadSet(tupX, attrV), t2.ReadSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{ra, w1, c1, rb, c2}
			},
			allowed:      true,
			serializable: false,
		},
		{
			// D1[x] C1 R2[x] C2 — reading past the end of the version
			// chain: the last committed version is the dead one, which a
			// plain read must not observe. The abstract model rejects the
			// interleaving and the engine reports the row gone.
			name: "read after committed delete fails",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				d1, c1 := t1.Delete(tupX, attrV), t1.Commit()
				r2, c2 := t2.ReadSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{d1, c1, r2, c2}
			},
			allowed: false,
			wantErr: mvcc.ErrNotFound,
		},
		{
			// D1[x] C1 W2[x] C2 — the regression behind
			// WriteOrderRespectsLifecycle: an update after a committed
			// delete would install a version after the dead one. Not
			// dirty (T1 already committed), so only the lifecycle check
			// rejects it abstractly; the engine agrees.
			name: "write after committed delete fails",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				d1, c1 := t1.Delete(tupX, attrV), t1.Commit()
				w2, c2 := t2.WriteSet(tupX, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{d1, c1, w2, c2}
			},
			allowed: false,
			wantErr: mvcc.ErrNotFound,
		},
		{
			// W1[x] C1 I2[x] C2 with x unborn — the dual lifecycle
			// violation: a version before the insert's. The tuple does
			// not exist when W1 runs.
			name: "write before insert fails",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				w1, c1 := t1.WriteSet(tupX, attrV), t1.Commit()
				i2, c2 := t2.Insert(tupX, relschema.NewAttrSet("id", "v")), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{w1, c1, i2, c2}
			},
			allowed: false,
			wantErr: mvcc.ErrNotFound,
		},
		{
			// I1[x] PR2[R] C2 C1 — a predicate read running while the
			// insert is uncommitted does not see the phantom; the rw
			// antidependency T2 to T1 is the only edge.
			name: "uncommitted insert invisible to predicate read",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				i1, c1 := t1.Insert(tupX, relschema.NewAttrSet("id", "v")), t1.Commit()
				p2, c2 := t2.PredReadSet("R", attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{i1, p2, c2, c1}
			},
			allowed:      true,
			serializable: true,
		},
		{
			// R1[x] R2[y] W1[x] W2[y] C1 C2 — interleaved but on
			// disjoint tuples: no conflicts at all.
			name: "disjoint tuples interleave freely",
			build: func() ([]*schedule.Transaction, []*schedule.Op) {
				t1, t2 := schedule.NewTransaction(1), schedule.NewTransaction(2)
				r1, w1, c1 := t1.ReadSet(tupX, attrV), t1.WriteSet(tupX, attrV), t1.Commit()
				r2, w2, c2 := t2.ReadSet(tupY, attrV), t2.WriteSet(tupY, attrV), t2.Commit()
				return []*schedule.Transaction{t1, t2}, []*schedule.Op{r1, r2, w1, w2, c1, c2}
			},
			allowed:      true,
			serializable: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			schema := edgeSchema(t)
			txns, order := tc.build()
			s, err := schedule.FromOrder(schema, txns, order)
			if err != nil {
				t.Fatalf("FromOrder: %v", err)
			}
			if got := s.AllowedUnderMVRC(); got != tc.allowed {
				t.Errorf("AllowedUnderMVRC = %t, want %t", got, tc.allowed)
			}
			res, err := Run(schema, s)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Run error = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Serializable != tc.serializable {
				t.Errorf("Serializable = %t, want %t; recorded:\n%s",
					res.Serializable, tc.serializable, res.Recorded.Format())
			}
			if !res.Recorded.AllowedUnderMVRC() {
				t.Errorf("recorded execution not allowed under MVRC:\n%s", res.Recorded.Format())
			}
		})
	}
}

// TestReplayRCVersionChain pins read-last-committed version resolution on
// the recorded schedule itself: across three sequential writers of x, a
// reader between commits observes exactly the version count committed so
// far.
func TestReplayRCVersionChain(t *testing.T) {
	schema := edgeSchema(t)
	attrV := relschema.NewAttrSet("v")

	t1, t2, t3 := schedule.NewTransaction(1), schedule.NewTransaction(2), schedule.NewTransaction(3)
	w1, c1 := t1.WriteSet(tupX, attrV), t1.Commit()
	w2, c2 := t2.WriteSet(tupX, attrV), t2.Commit()
	ra, rb, rc, c3 := t3.ReadSet(tupX, attrV), t3.ReadSet(tupX, attrV), t3.ReadSet(tupX, attrV), t3.Commit()

	// ra before any commit, rb after C1, rc after C2.
	order := []*schedule.Op{ra, w1, c1, rb, w2, c2, rc, c3}
	s, err := schedule.FromOrder(schema, []*schedule.Transaction{t1, t2, t3}, order)
	if err != nil {
		t.Fatal(err)
	}
	for op, want := range map[*schedule.Op]schedule.Version{ra: 1, rb: 2, rc: 3} {
		if got := s.VR[op]; got != want {
			t.Errorf("abstract VR[%s] = %d, want %d", op, got, want)
		}
	}
	if !s.AllowedUnderMVRC() {
		t.Fatal("interleaving should be allowed under MVRC")
	}

	res, err := Run(schema, s)
	if err != nil {
		t.Fatal(err)
	}
	// The recorded schedule must resolve the same three reads against the
	// same version chain positions.
	reads := 0
	for _, op := range res.Recorded.Order {
		if op.IsRead() && op.TupleRef == tupX && op.Txn.Label == "T3" {
			reads++
			if got := res.Recorded.VR[op]; got != schedule.Version(reads) {
				t.Errorf("recorded read %d observes version %d, want %d", reads, got, reads)
			}
		}
	}
	if reads != 3 {
		t.Fatalf("recorded %d reads by T3, want 3", reads)
	}
	if !res.Recorded.IsReadLastCommitted() {
		t.Error("recorded execution violates read-last-committed")
	}
}
