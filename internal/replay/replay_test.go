package replay

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/realize"
	"repro/internal/robust"
	"repro/internal/schedule"
)

// realizedCounterexample produces a concrete counterexample schedule for a
// non-robust SmallBank subset.
func realizedCounterexample(t *testing.T, names ...string) (*benchmarks.Benchmark, *realize.Result) {
	t.Helper()
	b := benchmarks.SmallBank()
	var programs []*btp.Program
	for _, n := range names {
		programs = append(programs, b.Program(n))
	}
	c := robust.NewChecker(b.Schema)
	res, err := c.Check(programs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust {
		t.Fatalf("%v unexpectedly robust", names)
	}
	r, err := realize.Witness(b.Schema, res.Witness, realize.Options{ExtraInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != realize.Realized {
		t.Fatalf("no counterexample realized for %v (%s)", names, r.Outcome)
	}
	return b, r
}

// TestReplayBalAmAnomaly replays the {Bal, Am} counterexample on the MVCC
// engine and asserts the engine execution itself is non-serializable — the
// full static-to-operational chain.
func TestReplayBalAmAnomaly(t *testing.T) {
	b, r := realizedCounterexample(t, "Balance", "Amalgamate")
	res, err := Run(b.Schema, r.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if res.Serializable {
		t.Fatalf("replayed execution is serializable; recorded:\n%s", res.Recorded.Format())
	}
	if !res.Recorded.AllowedUnderMVRC() {
		t.Fatal("engine execution must be allowed under MVRC")
	}
}

// TestReplayWriteCheckAnomaly replays the {WC, WC} lost update.
func TestReplayWriteCheckAnomaly(t *testing.T) {
	b, r := realizedCounterexample(t, "WriteCheck")
	res, err := Run(b.Schema, r.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if res.Serializable {
		t.Fatal("replayed WriteCheck race should not be serializable")
	}
}

// TestReplaySerialScheduleStaysSerializable: replaying a serialized
// version of the same transactions yields a serializable recording.
func TestReplaySerialScheduleStaysSerializable(t *testing.T) {
	b, r := realizedCounterexample(t, "Balance", "Amalgamate")
	s := r.Schedule
	var order []*schedule.Op
	for _, txn := range s.Txns {
		order = append(order, txn.Ops...)
	}
	serialSchedule, err := schedule.FromOrder(b.Schema, s.Txns, order)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(b.Schema, serialSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Serializable {
		t.Fatal("serial replay must be serializable")
	}
}

// TestFormatRendersRows checks the Figure 3-style formatter.
func TestFormatRendersRows(t *testing.T) {
	b, r := realizedCounterexample(t, "WriteCheck")
	_ = b
	out := r.Schedule.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(r.Schedule.Txns) {
		t.Fatalf("formatted %d rows for %d transactions:\n%s", len(lines), len(r.Schedule.Txns), out)
	}
	for _, line := range lines {
		if !strings.Contains(line, "T") || !strings.Contains(line, ":") {
			t.Fatalf("malformed row %q", line)
		}
	}
}
