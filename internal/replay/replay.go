// Package replay executes an abstract multiversion schedule — typically a
// counterexample found by internal/enumerate or internal/realize — against
// the concrete MVCC engine, statement by statement in the schedule's exact
// order. The engine records its own execution, which is then re-analyzed;
// if the replay reproduces the non-serializable cycle, the anomaly has
// been demonstrated on a real (simulated) database, closing the loop from
// static verdict to observable misbehavior.
//
// The replay is deterministic: it runs single-threaded and issues each
// operation at its schedule position, relying on the engine's per-statement
// snapshots to resolve reads exactly as read-last-committed prescribes.
package replay

import (
	"errors"
	"fmt"

	"repro/internal/mvcc"
	"repro/internal/relschema"
	"repro/internal/schedule"
	"repro/internal/seg"
)

// Result reports a replay.
type Result struct {
	// Recorded is the schedule the engine's recorder captured.
	Recorded *schedule.Schedule
	// Graph is its serialization graph.
	Graph *seg.Graph
	// Serializable reports whether the replayed execution was conflict
	// serializable.
	Serializable bool
}

// Run replays the schedule on a fresh engine. Tuples that exist initially
// (per the schedule's Init function) are loaded with synthetic attribute
// values before the replay starts.
func Run(schema *relschema.Schema, s *schedule.Schedule) (*Result, error) {
	engine := mvcc.NewEngine(schema)
	// Load initial tuples (those not created by an insert inside the
	// schedule).
	for _, tu := range s.Tuples() {
		if s.Init[tu] != schedule.VersionUnborn {
			engine.MustLoad(tu.Rel, tu.Name, syntheticValue(schema, tu.Rel, tu.Name, 0))
		}
	}
	rec := mvcc.NewRecorder()
	engine.SetRecorder(rec)

	txns := map[*schedule.Transaction]*mvcc.Txn{}
	version := 0
	for _, op := range s.Order {
		t, ok := txns[op.Txn]
		if !ok {
			t = engine.Begin(mvcc.ReadCommitted)
			label := op.Txn.Label
			if label == "" {
				label = fmt.Sprintf("T%d", op.Txn.ID)
			}
			t.SetLabel(label)
			txns[op.Txn] = t
		}
		version++
		if err := replayOp(schema, engine, t, op, version); err != nil {
			return nil, fmt.Errorf("replay: %s: %w", op, err)
		}
	}
	engine.SetRecorder(nil)
	recorded, err := rec.Schedule(schema)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	g := seg.Build(recorded)
	return &Result{
		Recorded:     recorded,
		Graph:        g,
		Serializable: g.IsConflictSerializable(),
	}, nil
}

func replayOp(schema *relschema.Schema, e *mvcc.Engine, t *mvcc.Txn, op *schedule.Op, version int) error {
	attrs := op.Attrs.Sorted()
	switch op.Kind {
	case schedule.OpRead:
		_, err := t.ReadKey(op.TupleRef.Rel, op.TupleRef.Name, attrs...)
		return err
	case schedule.OpWrite:
		return t.UpdateKey(op.TupleRef.Rel, op.TupleRef.Name, nil, attrs, func(v mvcc.Value) mvcc.Value {
			for _, a := range attrs {
				v[a] = version
			}
			return v
		})
	case schedule.OpInsert:
		return t.Insert(op.TupleRef.Rel, op.TupleRef.Name,
			syntheticValue(schema, op.TupleRef.Rel, op.TupleRef.Name, version))
	case schedule.OpDelete:
		return t.DeleteKey(op.TupleRef.Rel, op.TupleRef.Name)
	case schedule.OpPredRead:
		_, err := t.SelectWhere(op.Rel, attrs, attrs, func(mvcc.Value) bool { return true })
		return err
	case schedule.OpCommit:
		return t.Commit()
	default:
		return errors.New("unknown operation kind")
	}
}

// syntheticValue builds a row whose attributes carry a version marker.
func syntheticValue(schema *relschema.Schema, rel, _ string, version int) mvcc.Value {
	v := mvcc.Value{}
	for _, a := range schema.Attrs(rel).Sorted() {
		v[a] = version
	}
	return v
}

// A deliberate divergence worth knowing: the abstract schedule's write
// operations become read-free engine updates (blind writes), because the
// abstract W op carries only its write attribute set; the read half of a
// key update appears as its own R op in the schedule and is replayed as a
// separate ReadKey. The recorded dependency structure is therefore at
// least as rich as the abstract one on the replayed tuples.
