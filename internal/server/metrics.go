package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the server's observability surface: the Prometheus metric
// registry behind GET /metrics (re-exporting every /v1/stats counter plus
// per-endpoint request counts, in-flight gauges and latency histograms and
// the engine's phase-span histogram), the per-handler instrumentation
// middleware (request counting, X-Request-ID propagation, slog access
// logs), and the per-request tracer assembly (metrics histogram + optional
// debug phase logs + optional ?debug=timings recorder).
//
// Everything here is built on internal/obs — plain atomics behind
// pre-registered handles — so a scrape never blocks a request and a request
// never allocates for a metric update.

// endpoint labels of the instrumented routes; also the series set of the
// mvrc_http_* families.
const (
	epHealthz       = "healthz"
	epLive          = "live"
	epReady         = "ready"
	epMetrics       = "metrics"
	epStats         = "stats"
	epRegister      = "register"
	epFromSQL       = "from_sql"
	epWorkload      = "workload"
	epCheck         = "check"
	epSubsets       = "subsets"
	epSubsetsStream = "subsets_stream"
	epCertify       = "certify"
	epPatch         = "patch"
)

var endpointNames = []string{
	epHealthz, epLive, epReady, epMetrics, epStats, epRegister, epFromSQL,
	epWorkload, epCheck, epSubsets, epSubsetsStream, epCertify, epPatch,
}

// phaseNames is the fixed span taxonomy exported as
// mvrc_phase_duration_seconds{phase=...}; see internal/obs and the
// "Observability" section of docs/ARCHITECTURE.md.
var phaseNames = []string{
	obs.PhaseValidateUnfold, obs.PhasePairs, obs.PhaseCompose,
	obs.PhaseDetect, obs.PhaseLatticeLevel, obs.PhaseFirstVerdict,
	obs.PhaseFlush,
}

// endpointMetrics is one endpoint's request telemetry.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram
}

// aggregates is the per-scrape snapshot of everything that lives inside the
// workload registry (session caches, result caches, size estimates). One
// PreCollect walk fills it; the registered Func series read fields from the
// snapshot instead of walking the registry once per series.
type aggregates struct {
	workloads                                   int
	totalSize                                   int64
	sessionPrograms, sessionUnfoldings          int
	blockPairs                                  int
	blockHits, blockMisses, blockInvalidated    uint64
	cores, covers, certified                    int
	coreSize                                    int64
	coreHits, coverHits, coreMisses             uint64
	subsetsPruned, schedChecked, schedHits      uint64
	resultEntries                               int
	resultHits, resultMisses, resultInvalidated uint64
}

// metrics owns the server's obs.Registry and the handles updated on the hot
// paths. It doubles as the shared phase tracer: Span observes into the
// phase histogram map, which is read-only after construction, so one
// *metrics value serves every concurrent request without per-request
// allocation.
type metrics struct {
	srv *Server
	reg *obs.Registry

	endpoints map[string]*endpointMetrics
	phase     map[string]*obs.Histogram

	mu  sync.Mutex
	agg aggregates
}

// Span implements obs.Tracer: one histogram observation per phase span.
// Unknown phases are dropped (the map is fixed at startup; dropping beats
// allocating a series from an unvalidated string).
func (m *metrics) Span(phase string, d time.Duration) {
	if h, ok := m.phase[phase]; ok {
		h.ObserveDuration(d)
	}
}

// observePhase records a span that does not flow through a Config tracer
// (the snapshot-flush path, which belongs to no single request).
func (m *metrics) observePhase(phase string, d time.Duration) {
	if h, ok := m.phase[phase]; ok {
		h.ObserveDuration(d)
	}
}

// collect is the PreCollect hook: one registry walk per scrape, mirroring
// handleStats' aggregation, published under the snapshot mutex.
func (m *metrics) collect() {
	var a aggregates
	for _, w := range m.srv.reg.all() {
		a.workloads++
		st := w.session().Stats()
		a.sessionPrograms += st.Programs
		a.sessionUnfoldings += st.Unfoldings
		a.blockPairs += st.Blocks.Pairs
		a.blockHits += st.Blocks.Hits
		a.blockMisses += st.Blocks.Misses
		a.blockInvalidated += st.Blocks.Invalidated
		a.cores += st.Cores.Cores
		a.covers += st.Cores.Covers
		a.certified += st.Cores.Certified
		a.coreSize += st.Cores.SizeBytes
		a.coreHits += st.Cores.Hits
		a.coverHits += st.Cores.CoverHits
		a.coreMisses += st.Cores.Misses
		a.subsetsPruned += st.Cores.Pruned
		a.schedChecked += st.Cores.SchedChecked
		a.schedHits += st.Cores.SchedHits
		rc := w.results.stats()
		a.resultEntries += rc.Entries
		a.resultHits += rc.Hits
		a.resultMisses += rc.Misses
		a.resultInvalidated += rc.Invalidated
		a.totalSize += w.sizeBytes()
	}
	m.mu.Lock()
	m.agg = a
	m.mu.Unlock()
}

func (m *metrics) snap() aggregates {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.agg
}

// newMetrics builds the registry: static build attribution, per-endpoint
// request families, the phase histogram, direct re-exports of the server's
// request atomics, and PreCollect-backed aggregates of the registry's
// cache telemetry. Series registration happens once, here — the hot paths
// only touch returned handles.
func newMetrics(s *Server) *metrics {
	m := &metrics{
		srv:       s,
		reg:       obs.NewRegistry(),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		phase:     make(map[string]*obs.Histogram, len(phaseNames)),
	}
	r := m.reg
	r.PreCollect(m.collect)

	bi := obs.Build()
	r.GaugeFunc("mvrc_build_info",
		"Build attribution; the value is always 1, the labels carry the build.",
		func() float64 { return 1 },
		obs.Label{Key: "version", Value: bi.Version},
		obs.Label{Key: "revision", Value: bi.Revision},
		obs.Label{Key: "goversion", Value: bi.GoVersion})
	r.GaugeFunc("mvrc_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.CounterFunc("mvrc_stats_generation",
		"Monotonic /v1/stats response counter (resets on restart).",
		func() float64 { return float64(s.statsGen.Load()) })

	for _, ep := range endpointNames {
		lbl := obs.Label{Key: "endpoint", Value: ep}
		m.endpoints[ep] = &endpointMetrics{
			requests: r.Counter("mvrc_http_requests_total",
				"HTTP requests served, by endpoint.", lbl),
			errors: r.Counter("mvrc_http_request_errors_total",
				"HTTP responses with status >= 400, by endpoint.", lbl),
			inflight: r.Gauge("mvrc_http_in_flight_requests",
				"Requests currently being served, by endpoint.", lbl),
			latency: r.Histogram("mvrc_http_request_duration_seconds",
				"Request latency, by endpoint.", obs.DefBuckets, lbl),
		}
	}
	for _, ph := range phaseNames {
		m.phase[ph] = r.Histogram("mvrc_phase_duration_seconds",
			"Engine phase spans: validate_unfold, pairs (Algorithm 1, a sub-span of compose), compose, detect, lattice_level, first_verdict, snapshot_flush.",
			obs.PhaseBuckets, obs.Label{Key: "phase", Value: ph})
	}

	// Direct re-exports of the /v1/stats request counters.
	for _, c := range []struct {
		kind string
		v    *counterRef
	}{
		{"register", counterOf(&s.registers)},
		{"check", counterOf(&s.checks)},
		{"subsets", counterOf(&s.subsets)},
		{"certify", counterOf(&s.certifies)},
		{"patch", counterOf(&s.patches)},
	} {
		v := c.v
		r.CounterFunc("mvrc_api_requests_total",
			"API requests by kind, as counted by /v1/stats.",
			v.load, obs.Label{Key: "kind", Value: c.kind})
	}
	r.CounterFunc("mvrc_coalesced_requests_total",
		"Subsets requests answered by piggybacking on an in-flight enumeration.",
		counterOf(&s.coalesced).load)
	r.CounterFunc("mvrc_streamed_requests_total",
		"subsets:stream requests served.",
		counterOf(&s.streamed).load)
	r.CounterFunc("mvrc_stream_early_terminations_total",
		"Streams stopped early by mode or budget (not client disconnects).",
		counterOf(&s.earlyTerms).load)

	// Registry, eviction and persistence telemetry.
	r.GaugeFunc("mvrc_workloads", "Registered workloads resident in the registry.",
		func() float64 { return float64(m.snap().workloads) })
	r.GaugeFunc("mvrc_workloads_size_bytes",
		"Estimated resident bytes across all workloads (the -max-bytes quantity).",
		func() float64 { return float64(m.snap().totalSize) })
	r.GaugeFunc("mvrc_max_bytes", "The -max-bytes budget (0 = unlimited).",
		func() float64 { return float64(s.opts.MaxBytes) })
	r.CounterFunc("mvrc_workload_evictions_total",
		"Workloads evicted by the count-based LRU cap.",
		counterOf(&s.reg.evictions).load)
	r.CounterFunc("mvrc_workload_evictions_bytes_total",
		"Workloads evicted by the -max-bytes policy.",
		counterOf(&s.reg.evictionsBytes).load)
	r.GaugeFunc("mvrc_snapshots_loaded", "Workloads restored from -state-dir at boot.",
		func() float64 { return float64(s.stateLoaded) })
	r.CounterFunc("mvrc_snapshot_persists_total", "Completed snapshot writes.",
		counterOf(&s.persists).load)
	r.CounterFunc("mvrc_snapshot_persist_errors_total", "Failed snapshot writes.",
		counterOf(&s.persistErrs).load)
	r.CounterFunc("mvrc_snapshot_retries_total",
		"Snapshot writes re-attempted after a failed persist of the same workload.",
		counterOf(&s.snapRetries).load)
	r.GaugeFunc("mvrc_snapshot_degraded",
		"1 while the flusher is in degraded-persistence mode (consecutive failed flush rounds; retrying with backoff).",
		func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	r.CounterFunc("mvrc_shed_requests_total",
		"Analysis requests rejected with 429 at the -max-concurrent-checks admission gate.",
		counterOf(&s.shed).load)
	r.CounterFunc("mvrc_panics_total",
		"Recovered panics: HTTP handlers plus engine worker goroutines.",
		counterOf(&s.panics).load)
	r.GaugeFunc("mvrc_default_parallelism",
		"Resolved server-wide worker count for requests without their own.",
		func() float64 { return float64(effectiveParallelism(s.opts.Parallelism)) })

	// Session-cache aggregates (PreCollect walks the registry once per
	// scrape; these read the snapshot).
	r.GaugeFunc("mvrc_session_programs", "Validated programs across sessions.",
		func() float64 { return float64(m.snap().sessionPrograms) })
	r.GaugeFunc("mvrc_session_unfoldings", "Memoized (program, bound) unfoldings.",
		func() float64 { return float64(m.snap().sessionUnfoldings) })
	r.GaugeFunc("mvrc_block_cache_pairs", "Cached pairwise edge blocks (Algorithm 1).",
		func() float64 { return float64(m.snap().blockPairs) })
	r.CounterFunc("mvrc_block_cache_hits_total", "Block-cache hits.",
		func() float64 { return float64(m.snap().blockHits) })
	r.CounterFunc("mvrc_block_cache_misses_total", "Block-cache misses (pairs computed).",
		func() float64 { return float64(m.snap().blockMisses) })
	r.CounterFunc("mvrc_block_cache_invalidated_total", "Block-cache pairs evicted by PATCH.",
		func() float64 { return float64(m.snap().blockInvalidated) })
	r.GaugeFunc("mvrc_core_store_cores", "Stored minimal non-robust cores.",
		func() float64 { return float64(m.snap().cores) })
	r.GaugeFunc("mvrc_core_store_covers", "Stored robust covers.",
		func() float64 { return float64(m.snap().covers) })
	r.GaugeFunc("mvrc_certified_cores",
		"Stored minimal non-robust cores backed by a replayed non-serializable execution.",
		func() float64 { return float64(m.snap().certified) })
	r.CounterFunc("mvrc_unrealized_candidates_total",
		"Candidate instantiations searched by certify requests without finding a counterexample.",
		counterOf(&s.unrealizedCands).load)
	r.GaugeFunc("mvrc_core_store_size_bytes", "Estimated core/cover store bytes.",
		func() float64 { return float64(m.snap().coreSize) })
	r.CounterFunc("mvrc_core_hits_total", "Subsets decided non-robust by core containment.",
		func() float64 { return float64(m.snap().coreHits) })
	r.CounterFunc("mvrc_cover_hits_total", "Subsets decided robust by cover containment.",
		func() float64 { return float64(m.snap().coverHits) })
	r.CounterFunc("mvrc_core_misses_total", "Subsets that ran the cycle detector.",
		func() float64 { return float64(m.snap().coreMisses) })
	r.CounterFunc("mvrc_subsets_pruned_total",
		"Detector runs skipped by containment (core hits + cover hits).",
		func() float64 { return float64(m.snap().subsetsPruned) })
	r.CounterFunc("mvrc_sched_checked_total",
		"Detector-run subsets placed in the first half of their level's schedule.",
		func() float64 { return float64(m.snap().schedChecked) })
	r.CounterFunc("mvrc_sched_hits_total",
		"Front-loaded detector runs that were non-robust (scheduler wins).",
		func() float64 { return float64(m.snap().schedHits) })
	r.GaugeFunc("mvrc_result_cache_entries", "Cached subsets responses.",
		func() float64 { return float64(m.snap().resultEntries) })
	r.CounterFunc("mvrc_result_cache_hits_total", "Result-cache hits (stored-bytes replays).",
		func() float64 { return float64(m.snap().resultHits) })
	r.CounterFunc("mvrc_result_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(m.snap().resultMisses) })
	r.CounterFunc("mvrc_result_cache_invalidated_total",
		"Result-cache entries dropped by PATCH version bumps.",
		func() float64 { return float64(m.snap().resultInvalidated) })
	return m
}

// counterRef adapts an *atomic.Uint64 to the CounterFunc signature without
// a closure per call site littering the registration code.
type counterRef struct{ v *atomic.Uint64 }

func (c *counterRef) load() float64 { return float64(c.v.Load()) }

func counterOf(v *atomic.Uint64) *counterRef { return &counterRef{v: v} }

// --- Request instrumentation ------------------------------------------------

// statusWriter records the response status for the request counter and the
// access log, and whether the response has started (wrote) — the panic
// recovery can only substitute a structured 500 while the status line is
// still unsent. It deliberately implements http.Flusher unconditionally —
// handleSubsetsStream flushes after every NDJSON line, and wrapping the
// ResponseWriter must not sever that path.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers a route through the instrumentation middleware: request
// ID propagation, in-flight gauge, latency histogram, error counting,
// panic recovery and the slog access log when Options.Logger is set.
//
// The accounting lives in a defer so a panicking handler is still counted,
// logged and timed before the panic continues. net/http would recover a
// handler panic anyway, but only by dropping the connection with a stack
// dump to stderr; here the client gets a structured 500 (when the response
// has not started), the panic lands in mvrc_panics_total, and the stack
// goes to the structured log.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	em := s.metrics.endpoints[endpoint]
	s.mux.HandleFunc(pattern, func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = s.nextRequestID()
		}
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		rw.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: rw, status: http.StatusOK}
		em.inflight.Add(1)
		defer func() {
			p := recover()
			abort := p == http.ErrAbortHandler
			if p != nil && !abort {
				s.panics.Add(1)
				if s.logger != nil {
					s.logger.LogAttrs(r.Context(), slog.LevelError, "handler_panic",
						slog.Any("value", p),
						slog.String("stack", string(debug.Stack())),
						slog.String("endpoint", endpoint),
						slog.String("request_id", reqID))
				}
				if sw.wrote {
					// The response already started; nothing coherent can be
					// appended. Record the failure and abort the connection
					// so the client sees a truncated response, not a
					// silently complete-looking one.
					sw.status = http.StatusInternalServerError
					abort = true
				} else {
					writeJSON(sw, http.StatusInternalServerError,
						wire.Error{Error: "internal server error", Code: "panic"})
				}
			}
			em.inflight.Add(-1)
			d := time.Since(start)
			em.requests.Inc()
			if sw.status >= 400 {
				em.errors.Inc()
			}
			em.latency.ObserveDuration(d)
			if s.logger != nil {
				s.logger.LogAttrs(r.Context(), slog.LevelInfo, "http_request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("endpoint", endpoint),
					slog.Int("status", sw.status),
					slog.Duration("duration", d),
					slog.String("request_id", reqID))
			}
			if abort {
				// net/http treats ErrAbortHandler as a deliberate abort:
				// the connection closes without the default stack dump.
				panic(http.ErrAbortHandler)
			}
		}()
		h(sw, r)
	})
}

// nextRequestID mints a process-unique request ID for requests that arrive
// without an X-Request-ID header: a per-boot prefix (derived from the start
// time, so IDs never collide across restarts) plus a sequence number.
func (s *Server) nextRequestID() string {
	return s.reqPrefix + strconv.FormatUint(s.reqSeq.Add(1), 36)
}

// requestTracer assembles the per-request tracer for the analysis handlers:
// always the shared metrics histogram (one pointer, no allocation); plus a
// per-span debug log when the logger has debug enabled; plus a SpanRecorder
// when the request opted into ?debug=timings — the recorder is returned so
// the handler can attach the snapshot to its response.
func (s *Server) requestTracer(r *http.Request) (obs.Tracer, *obs.SpanRecorder) {
	var tr obs.Tracer = s.metrics
	if s.logger != nil && s.logger.Enabled(r.Context(), slog.LevelDebug) {
		tr = &logTracer{next: tr, log: s.logger, reqID: obs.RequestIDFrom(r.Context())}
	}
	if r.URL.Query().Get("debug") == "timings" {
		rec := obs.NewSpanRecorder()
		return obs.Multi(tr, rec), rec
	}
	return tr, nil
}

// logTracer forwards spans to the metrics histogram and logs each one at
// debug level with the propagated request ID.
type logTracer struct {
	next  obs.Tracer
	log   *slog.Logger
	reqID string
}

func (t *logTracer) Span(phase string, d time.Duration) {
	t.next.Span(phase, d)
	t.log.LogAttrs(context.Background(), slog.LevelDebug, "phase",
		slog.String("phase", phase),
		slog.Duration("duration", d),
		slog.String("request_id", t.reqID))
}
