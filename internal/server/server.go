// Package server is the robustness-as-a-service subsystem: a long-lived
// HTTP server that registers workloads (schema + transaction programs)
// once and answers robustness queries many times, amortizing the expensive
// analysis artifacts — validated and unfolded programs, and the per-setting
// pairwise edge-block caches of Algorithm 1 — across requests.
//
// Each registered workload wraps one analysis.Session in a fingerprint-
// keyed registry with an LRU cap. PATCHing a single program performs
// incremental re-analysis: only the changed program's ordered LTP pairs
// are evicted from the block caches, so the next check recomputes those
// pairs alone. Identical in-flight subset enumerations are coalesced, and
// every analysis runs under the request context, so client disconnects and
// server timeouts abort work mid-flight.
//
// Three hardening layers make the service restartable and memory-governed
// (see the "Persistence & result cache" section of docs/ARCHITECTURE.md):
// a per-workload subsets result cache keyed by (version, configuration,
// program selection) answers repeated enumerations from stored bytes and is
// invalidated exactly by PATCH version bumps; Options.StateDir persists
// each workload (programs, version, result cache) as a JSON snapshot via
// internal/snapshot and reloads it on boot, so a restart preserves wire
// behavior byte for byte; and Options.MaxBytes replaces blind LRU with
// size-weighted eviction over per-workload memory estimates, never evicting
// a workload with a request in flight.
//
// Concurrency is governed by the engine's one Parallelism knob (see
// docs/ARCHITECTURE.md): the -parallel option is the per-request default
// and cap, requests may lower or (up to the cap) raise it via the
// "parallelism" body field, and /v1/stats reports the resolved default
// plus each workload's last effective value. The knob covers both the
// subset-enumeration fanout (Figures 6/7 of the paper) and the intra-check
// sharding of Algorithm 1's pairwise edge derivation and the closure
// fixpoint.
//
// API (JSON over HTTP; see internal/wire for the body types):
//
//	POST  /v1/workloads                             register (idempotent)
//	GET   /v1/workloads/{id}                        workload info + cache stats
//	POST  /v1/workloads/{id}/check                  robustness verdict
//	POST  /v1/workloads/{id}/subsets                robust / maximal subsets
//	GET   /v1/workloads/{id}/subsets:stream         NDJSON verdict stream
//	POST  /v1/workloads/{id}/subsets:stream         same, options in the body
//	POST  /v1/workloads/{id}/certify                certified counterexample
//	PATCH /v1/workloads/{id}/programs/{name}        replace one program
//	GET   /v1/stats                                 server + cache telemetry
//	GET   /healthz                                  liveness
//
// The subsets:stream routes (see stream.go) serve the same enumeration as
// /subsets but emit each subset verdict as one NDJSON line the moment the
// lattice walk decides it, with optional early termination (mode=
// first_non_robust | all_maximal_robust | top_k, max_subsets=N); the final
// line is a summary record carrying subsets_pruned and core telemetry.
// Completed mode=all streams feed the /subsets result cache; streams
// themselves always run the engine (verdict timing is the product).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/certify"
	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/relschema"
	"repro/internal/snapshot"
	"repro/internal/sqlbtp"
	"repro/internal/wire"
)

// Options configures a Server.
type Options struct {
	// MaxWorkloads caps the registry; the least recently used workload is
	// evicted beyond it. 0 means DefaultMaxWorkloads.
	MaxWorkloads int
	// Parallelism bounds each subset enumeration's worker pool; 0 means
	// GOMAXPROCS, 1 forces sequential enumeration.
	Parallelism int
	// RequestTimeout bounds each analysis request; 0 means
	// DefaultRequestTimeout, negative means no deadline beyond the
	// client's own. Every request therefore runs under a deadline unless
	// the operator explicitly opts out — a stuck analysis must not hold
	// its admission slot forever.
	RequestTimeout time.Duration
	// MaxConcurrentChecks caps the analysis requests (check, subsets,
	// subsets:stream, certify) executing at once. Beyond the cap,
	// requests are shed immediately with 429, a Retry-After header and a
	// structured {code: "overloaded"} body — bounded latency for admitted
	// work beats an unbounded queue that times everyone out together.
	// Control-plane routes (register, patch, stats, health, metrics) are
	// never shed. 0 means unlimited.
	MaxConcurrentChecks int
	// SnapshotFS, when non-nil, is the filesystem the snapshot store
	// writes through — the deterministic fault-injection seam of the
	// crash-safety and chaos tests (internal/faultfs). nil means the real
	// filesystem.
	SnapshotFS faultfs.FS
	// StateDir, when non-empty, makes the server persist every registered
	// workload (schema, programs, version, subsets result cache) as a JSON
	// snapshot under this directory and reload the snapshots on boot, so a
	// restarted server answers with byte-identical wire responses without
	// re-running the analysis for cached enumerations. Corrupt or partial
	// snapshot files are skipped, never fatal (StateReport tells how many).
	StateDir string
	// MaxBytes, when positive, is the estimated-memory budget across all
	// resident workloads: after every request, size-weighted LRU eviction
	// sheds workloads until the estimates fit. It replaces blind LRU as the
	// memory governor — the count cap still applies as a backstop. 0 means
	// no byte budget.
	MaxBytes int64
	// FlushInterval debounces the result-cache snapshot writes: a newly
	// cached enumeration marks its workload dirty instead of rewriting the
	// whole snapshot file in-line, and a background flusher persists every
	// dirty workload once per interval — a burst of enumerations costs one
	// rewrite, not one per request. Registration and PATCH still persist
	// synchronously (rare control-plane writes whose durability the
	// restart path depends on), and Close performs a final flush. 0 means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// Logger, when non-nil, receives one structured access-log record per
	// request (method, path, endpoint, status, duration, request_id) at
	// info level and per-phase span records at debug level. nil disables
	// logging entirely — metrics and tracing still run.
	Logger *slog.Logger
}

// DefaultMaxWorkloads is the default registry cap.
const DefaultMaxWorkloads = 64

// DefaultFlushInterval is the default debounce window for result-cache
// snapshot writes: short enough that a crash loses at most a heartbeat of
// cached enumerations (losing one costs a recompute, never correctness),
// long enough that a burst coalesces into one file rewrite.
const DefaultFlushInterval = 100 * time.Millisecond

// DefaultRequestTimeout is the analysis deadline applied when Options.
// RequestTimeout is zero: generous enough for the large-benchmark subset
// sweeps, small enough that a pathological request cannot pin an
// admission slot indefinitely.
const DefaultRequestTimeout = 30 * time.Second

// Flusher failure handling: a failed flush round doubles the next round's
// delay (plus jitter) up to maxFlushBackoff — hammering a full disk every
// 100ms helps nobody — and degradedAfterRounds consecutive failures flip
// the server into degraded-persistence mode (visible in /healthz and
// mvrc_snapshot_degraded, and 503 on /healthz/ready). Dirty workloads
// stay dirty across failures, so no write is ever silently dropped.
const (
	maxFlushBackoff     = 5 * time.Second
	degradedAfterRounds = 3
)

// Close retries the final flush a few times with short fixed backoff
// before giving up and reporting the loss — shutdown must terminate even
// with a dead disk.
const (
	closeFlushAttempts = 3
	closeFlushBackoff  = 25 * time.Millisecond
)

// shedRetryAfterSeconds is the Retry-After hint on 429 responses; load
// sheds on the timescale of in-flight analyses completing, not instantly.
const shedRetryAfterSeconds = 1

// Server is the resident robustness service. Create with New, expose with
// Handler, release background state with Close.
type Server struct {
	opts  Options
	reg   *registry
	mux   *http.ServeMux
	start time.Time

	// base outlives individual requests: coalesced enumerations run under
	// it so the leader's disconnect does not abort followers' work.
	base       context.Context
	baseCancel context.CancelFunc

	// snap is the snapshot store when Options.StateDir is set, nil
	// otherwise. stateLoaded/stateSkipped/stateErr describe the boot-time
	// restore (see StateReport).
	snap         *snapshot.Store
	stateLoaded  int
	stateSkipped int
	stateErr     error
	persistErrs  atomic.Uint64
	// persists counts completed snapshot writes (telemetry for the
	// write-amplification tests: a burst of cached enumerations must not
	// grow it by more than the flush cadence allows).
	persists atomic.Uint64
	// snapRetries counts persist attempts for workloads whose previous
	// attempt failed (mvrc_snapshot_retries_total); degraded is flipped by
	// the flusher after degradedAfterRounds consecutive failed rounds and
	// cleared by the first clean one.
	snapRetries atomic.Uint64
	degraded    atomic.Bool
	// draining marks the window between BeginDrain/Close and process
	// exit: /healthz/ready answers 503 so load balancers stop routing,
	// while in-flight requests run to completion.
	draining atomic.Bool

	// admission is the -max-concurrent-checks semaphore over the analysis
	// routes; nil means unlimited. shed counts 429s, panics counts
	// recovered handler and worker panics.
	admission chan struct{}
	shed      atomic.Uint64
	panics    atomic.Uint64

	// dirty is the debounce set of the background flusher: workloads whose
	// result cache grew since their last snapshot write. Guarded by
	// dirtyMu; the flusher swaps the map out and persists each entry it
	// can still pin. failedPersist (same lock) marks workloads whose last
	// persist failed, so the retry counter can distinguish a retry from a
	// first attempt.
	dirtyMu       sync.Mutex
	dirty         map[string]*workload
	failedPersist map[string]bool

	// lastEnforce is the unix-nano time of the last release-path budget
	// enforcement (see release).
	lastEnforce atomic.Int64

	registers, checks, subsets, patches, coalesced atomic.Uint64
	// streamed counts subsets:stream requests; earlyTerms the streams that
	// stopped early by mode or budget (not client disconnects).
	streamed, earlyTerms atomic.Uint64
	// certifies counts /certify requests; unrealizedCands accumulates the
	// candidate instantiations those requests searched without finding a
	// counterexample (the certification pipeline's miss telemetry).
	certifies, unrealizedCands atomic.Uint64

	// metrics is the Prometheus registry behind GET /metrics plus the
	// shared phase tracer (see metrics.go); logger is Options.Logger.
	// statsGen stamps /v1/stats responses; reqPrefix/reqSeq mint request
	// IDs for requests arriving without an X-Request-ID header.
	metrics   *metrics
	logger    *slog.Logger
	statsGen  atomic.Uint64
	reqSeq    atomic.Uint64
	reqPrefix string

	// testFlightHook, when non-nil, runs inside the flight goroutine
	// before the enumeration starts — a seam for deterministic
	// coalescing tests.
	testFlightHook func()
}

// New creates a Server ready to serve its Handler.
func New(opts Options) *Server {
	if opts.MaxWorkloads <= 0 {
		opts.MaxWorkloads = DefaultMaxWorkloads
	}
	base, cancel := context.WithCancel(context.Background())
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	switch {
	case opts.RequestTimeout == 0:
		opts.RequestTimeout = DefaultRequestTimeout
	case opts.RequestTimeout < 0:
		opts.RequestTimeout = 0 // explicit opt-out: no server-side deadline
	}
	s := &Server{
		opts:          opts,
		reg:           newRegistry(opts.MaxWorkloads, opts.MaxBytes),
		mux:           http.NewServeMux(),
		start:         time.Now(),
		base:          base,
		baseCancel:    cancel,
		dirty:         make(map[string]*workload),
		failedPersist: make(map[string]bool),
		logger:        opts.Logger,
	}
	if opts.MaxConcurrentChecks > 0 {
		s.admission = make(chan struct{}, opts.MaxConcurrentChecks)
	}
	s.reqPrefix = "r" + strconv.FormatUint(uint64(s.start.UnixNano()), 36) + "-"
	// Built before loadState: boot-time evictions already run persist, which
	// observes the snapshot_flush phase.
	s.metrics = newMetrics(s)
	// Evicted workloads must not resurrect on the next boot. The callback
	// runs after the registry lock is released, so the same fingerprint may
	// have re-registered (and persisted) while the deletion was in flight —
	// in that case re-persist the resident workload rather than letting the
	// late delete lose it across restarts.
	s.reg.onEvict = func(w *workload) {
		if s.snap == nil {
			return
		}
		s.snap.Delete(w.id)
		if res := s.reg.peek(w.id); res != nil {
			if !s.persist(res) {
				s.markDirty(res)
			}
		}
	}
	if opts.StateDir != "" {
		s.loadState(opts.StateDir)
	}
	if s.snap != nil {
		go s.flushLoop()
	}
	s.handle("GET /healthz", epHealthz, s.handleHealthz)
	s.handle("GET /healthz/live", epLive, s.handleLive)
	s.handle("GET /healthz/ready", epReady, s.handleReady)
	s.handle("GET /metrics", epMetrics, s.metrics.reg.Handler())
	s.handle("GET /v1/stats", epStats, s.handleStats)
	s.handle("POST /v1/workloads", epRegister, s.handleRegister)
	s.handle("POST /v1/workloads:fromSQL", epFromSQL, s.handleFromSQL)
	s.handle("GET /v1/workloads/{id}", epWorkload, s.handleGetWorkload)
	s.handle("POST /v1/workloads/{id}/check", epCheck, s.handleCheck)
	s.handle("POST /v1/workloads/{id}/subsets", epSubsets, s.handleSubsets)
	s.handle("POST /v1/workloads/{id}/subsets:stream", epSubsetsStream, s.handleSubsetsStream)
	s.handle("GET /v1/workloads/{id}/subsets:stream", epSubsetsStream, s.handleSubsetsStream)
	s.handle("POST /v1/workloads/{id}/certify", epCertify, s.handleCertify)
	s.handle("PATCH /v1/workloads/{id}/programs/{name}", epPatch, s.handlePatch)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// StateReport describes the boot-time snapshot restore: how many workloads
// were loaded, how many snapshot files were skipped as corrupt, partial or
// stale-format, and whether the state directory itself was unusable (Err
// non-nil means persistence is disabled for this process).
func (s *Server) StateReport() (loaded, skipped int, err error) {
	return s.stateLoaded, s.stateSkipped, s.stateErr
}

// loadState opens the snapshot store and restores every decodable workload.
// Each snapshot is verified by recomputing the registration fingerprint
// from its decoded schema and programs; files that fail to decode, verify
// or rebuild are counted as skipped — a corrupt snapshot costs a warm-up,
// never the boot.
func (s *Server) loadState(dir string) {
	st, err := snapshot.OpenFS(dir, s.opts.SnapshotFS)
	if err != nil {
		s.stateErr = err
		return
	}
	s.snap = st
	files, skipped, err := st.LoadAll()
	s.stateSkipped = len(skipped)
	if err != nil {
		s.stateErr = err
		return
	}
	for _, f := range files {
		w, err := restoreWorkload(f)
		if err != nil {
			s.stateSkipped++
			continue
		}
		res, created := s.reg.register(w)
		res.pins.Add(-1) // no post-registration work during boot restore
		if created {
			s.stateLoaded++
		}
	}
	s.reg.enforceBytes()
}

// restoreWorkload rebuilds a workload from its snapshot and verifies the
// stored id against a freshly computed fingerprint — a snapshot that
// decodes but does not reproduce its own fingerprint is corrupt.
func restoreWorkload(f *snapshot.File) (*workload, error) {
	if len(f.Programs) == 0 {
		return nil, errors.New("snapshot has no programs")
	}
	schema, err := f.Schema.Build()
	if err != nil {
		return nil, err
	}
	programs := make([]*btp.Program, len(f.Programs))
	for i, sp := range f.Programs {
		if programs[i], err = sp.Build(schema); err != nil {
			return nil, err
		}
	}
	w := newWorkload(schema, programs)
	// w.id is the fingerprint of the decoded content; it must reproduce the
	// stored content hash for every snapshot, and additionally the
	// registration id at version 0 (a PATCHed workload's content
	// legitimately drifts from its registration fingerprint — the id stays
	// the registry key).
	if w.id != f.Content {
		return nil, fmt.Errorf("snapshot content fingerprint mismatch: file %s, computed %s", f.Content, w.id)
	}
	if f.Version == 0 && f.ID != f.Content {
		return nil, fmt.Errorf("snapshot fingerprint mismatch: file %s, content %s at version 0", f.ID, f.Content)
	}
	w.id = f.ID
	w.version = f.Version
	w.results.restore(f.Results, f.Version)
	importCoreGroups(programs, f.Cores, w.sess.ImportCores)
	importCoreGroups(programs, f.Covers, w.sess.ImportCovers)
	return w, nil
}

// persist writes the workload's snapshot now, reporting success. Failures
// are counted (persist_errors in /v1/stats) and the server keeps serving
// from memory; the flusher uses the return value to re-queue the workload
// so a transient disk error does not silently abandon the burst.
// Per-workload serialization (persistMu) makes the state read and the file
// replacement atomic against each other — without it, a persist still
// holding pre-PATCH state could win the rename against the PATCH's newer
// snapshot.
func (s *Server) persist(w *workload) bool {
	if s.snap == nil {
		return true
	}
	w.persistMu.Lock()
	defer w.persistMu.Unlock()
	s.dirtyMu.Lock()
	if s.failedPersist[w.id] {
		s.snapRetries.Add(1)
	}
	s.dirtyMu.Unlock()
	start := time.Now()
	f, err := w.snapshotFile()
	if err == nil {
		err = s.snap.Save(f)
	}
	s.metrics.observePhase(obs.PhaseFlush, time.Since(start))
	s.dirtyMu.Lock()
	if err != nil {
		s.failedPersist[w.id] = true
	} else {
		delete(s.failedPersist, w.id)
	}
	s.dirtyMu.Unlock()
	if err != nil {
		s.persistErrs.Add(1)
		if s.logger != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelWarn, "snapshot_persist_failed",
				slog.String("workload", w.id), slog.String("error", err.Error()))
		}
		return false
	}
	s.persists.Add(1)
	return true
}

// markDirty queues the workload for the next debounced snapshot flush
// instead of rewriting its file in-line — the fix for the result-cache
// write amplification: a burst of newly cached enumerations rewrites the
// workload file once per flush interval, not once per request.
func (s *Server) markDirty(w *workload) {
	if s.snap == nil {
		return
	}
	s.dirtyMu.Lock()
	s.dirty[w.id] = w
	s.dirtyMu.Unlock()
}

// flushLoop is the background flusher: one flush round per FlushInterval
// until Close. A round with persist failures doubles the next delay
// (capped at maxFlushBackoff, with up to 25% jitter so restarted replicas
// don't retry in lockstep) — the failed workloads are back on the dirty
// set, so every delayed round is a retry, not a drop. After
// degradedAfterRounds consecutive failures the server enters degraded-
// persistence mode (healthz, readiness, mvrc_snapshot_degraded); the
// first clean round restores the cadence and clears the flag. Only
// started when persistence is enabled.
func (s *Server) flushLoop() {
	interval := s.opts.FlushInterval
	consecutive := 0
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-s.base.Done():
			return
		case <-t.C:
			if failed := s.flushRound(); failed > 0 {
				consecutive++
				if consecutive == degradedAfterRounds {
					s.degraded.Store(true)
					if s.logger != nil {
						s.logger.LogAttrs(context.Background(), slog.LevelError, "persistence_degraded",
							slog.Int("consecutive_failed_rounds", consecutive))
					}
				}
				interval = min(interval*2, maxFlushBackoff)
				t.Reset(interval + rand.N(interval/4+1))
			} else {
				if consecutive >= degradedAfterRounds && s.logger != nil {
					s.logger.LogAttrs(context.Background(), slog.LevelInfo, "persistence_recovered",
						slog.Int("failed_rounds", consecutive))
				}
				consecutive = 0
				s.degraded.Store(false)
				interval = s.opts.FlushInterval
				t.Reset(interval)
			}
		}
	}
}

// Flush persists every dirty workload now. Each workload is pinned (without
// bumping its recency) for the duration of its write, so a concurrent
// eviction cannot interleave its snapshot deletion with the write and leave
// an evicted workload resurrectable; a workload evicted before the flush
// reaches it is skipped — its snapshot is already gone by design. Called by
// the background flusher, by Close (the explicit shutdown flush), and by
// tests and embedders that need durability at a known point.
func (s *Server) Flush() { s.flushRound() }

// flushRound is one Flush pass, reporting how many workloads failed to
// persist (each failure re-queues its workload on the dirty set, so the
// next round — or the shutdown flush — retries instead of silently
// dropping the burst's durability).
func (s *Server) flushRound() (failed int) {
	s.dirtyMu.Lock()
	dirty := s.dirty
	s.dirty = make(map[string]*workload)
	s.dirtyMu.Unlock()
	for id, w := range dirty {
		res := s.reg.pin(id)
		if res == nil {
			continue // evicted since it was marked; its snapshot is gone by design
		}
		if res != w {
			// The id was evicted and re-registered as a fresh workload:
			// registration persisted it, nothing to flush — but the pin we
			// just took is on the NEW workload and must be released, or it
			// would be unevictable forever.
			res.pins.Add(-1)
			continue
		}
		if !s.persist(w) {
			failed++
			s.markDirty(w)
		}
		w.pins.Add(-1)
	}
	return failed
}

// BeginDrain marks the server as draining: /healthz/ready answers 503 so
// load balancers stop routing here, while every admitted request (and the
// liveness probe) keeps working. Call it when graceful shutdown starts,
// before the HTTP server stops accepting connections; ServeListener does.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close flushes pending snapshot writes and aborts any coalesced
// enumerations still running in the background. The final flush is
// retried with short backoff; if dirty workloads still cannot be
// persisted the error says how many — their cached results exist only in
// this process's memory, so callers exiting afterwards should surface the
// loss (cmd/robustserved exits non-zero). Registered workloads (and their
// caches) are simply garbage once the Server is unreferenced.
func (s *Server) Close() error {
	s.BeginDrain()
	s.baseCancel()
	var failed int
	for attempt := 1; ; attempt++ {
		if failed = s.flushRound(); failed == 0 {
			return nil
		}
		if attempt >= closeFlushAttempts {
			break
		}
		time.Sleep(closeFlushBackoff * time.Duration(attempt))
	}
	return fmt.Errorf("server: %d workload snapshot(s) still unpersisted after %d shutdown flush attempts",
		failed, closeFlushAttempts)
}

// Register registers a workload programmatically (the CLI's -preload path
// uses this; HTTP clients use POST /v1/workloads). Programs are validated
// against the schema before the workload is admitted.
func (s *Server) Register(schema *relschema.Schema, programs []*btp.Program) (*wire.RegisterWorkloadResponse, error) {
	if len(programs) == 0 {
		return nil, errors.New("workload has no programs")
	}
	seen := make(map[string]bool, len(programs))
	for _, p := range programs {
		if err := p.Validate(schema); err != nil {
			return nil, err
		}
		names := []string{p.Name}
		if p.Abbrev != "" && p.Abbrev != p.Name {
			names = append(names, p.Abbrev)
		}
		for _, n := range names {
			if seen[n] {
				return nil, fmt.Errorf("duplicate program name %q", n)
			}
			seen[n] = true
		}
	}
	// register returns the workload pinned; the pin covers the drift reset
	// and persist below, so a racing eviction cannot delete a snapshot this
	// registration is about to (re-)write.
	w, created := s.reg.register(newWorkload(schema, programs))
	defer w.pins.Add(-1)
	reset := false
	if !created {
		// The resident workload may have been PATCHed since its
		// registration; registering pristine content again restores it,
		// so the caller gets verdicts for the programs it submitted.
		reset = w.resetIfDrifted(programs)
	}
	if created || reset {
		if reset {
			// The reset bumped the version, orphaning every cached result.
			w.results.invalidate()
		}
		// Synchronous persists that fail fall back to the flusher's retry
		// schedule: the workload stays dirty until a write sticks, so a
		// transient disk error costs durability latency, never the snapshot.
		if !s.persist(w) {
			s.markDirty(w)
		}
	}
	s.reg.enforceBytes()
	s.registers.Add(1)
	ps, version := w.programList()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return &wire.RegisterWorkloadResponse{
		ID: w.id, Created: created, Version: version, Programs: names,
	}, nil
}

// --- HTTP plumbing ---------------------------------------------------------

func (s *Server) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	bi := obs.Build()
	writeJSON(rw, http.StatusOK, &wire.HealthzResponse{
		Status:        "ok",
		Version:       bi.Version,
		Revision:      bi.Revision,
		GoVersion:     bi.GoVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Persistence:   s.persistenceStatus(),
	})
}

// persistenceStatus summarizes the snapshot subsystem for the health
// endpoints: "" (disabled), "ok", "degraded" (the flusher is failing and
// backing off) or "failed" (the state directory was unusable at boot).
func (s *Server) persistenceStatus() string {
	switch {
	case s.stateErr != nil:
		return "failed"
	case s.snap == nil:
		return ""
	case s.degraded.Load():
		return "degraded"
	default:
		return "ok"
	}
}

// handleLive is the liveness probe: 200 for as long as the process can
// serve HTTP at all. Restarting a server because its disk filled up
// destroys the in-memory caches that still answer requests correctly —
// liveness must not observe persistence.
func (s *Server) handleLive(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, &wire.ReadyResponse{Status: "live"})
}

// handleReady is the readiness probe: 503 while draining for shutdown or
// while persistence is degraded (a restarted-elsewhere replica with a
// working disk is strictly better to route to), 200 otherwise.
func (s *Server) handleReady(rw http.ResponseWriter, _ *http.Request) {
	resp := &wire.ReadyResponse{Status: "ready", Persistence: s.persistenceStatus()}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		resp.Draining = true
		status = http.StatusServiceUnavailable
	case s.degraded.Load():
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(rw, status, resp)
}

// admit reserves a -max-concurrent-checks slot for an analysis request,
// shedding with 429 + Retry-After when the server is saturated. Callers
// that get true must release the slot with admitDone when the request
// finishes. With no cap configured every request is admitted for free.
func (s *Server) admit(rw http.ResponseWriter) bool {
	if s.admission == nil {
		return true
	}
	select {
	case s.admission <- struct{}{}:
		return true
	default:
		s.shed.Add(1)
		rw.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterSeconds))
		writeJSON(rw, http.StatusTooManyRequests, wire.Error{
			Error:             fmt.Sprintf("server is at its -max-concurrent-checks capacity (%d analyses in flight)", cap(s.admission)),
			Code:              "overloaded",
			RetryAfterSeconds: shedRetryAfterSeconds,
		})
		return false
	}
}

// admitDone releases an admission slot taken by admit.
func (s *Server) admitDone() {
	if s.admission != nil {
		<-s.admission
	}
}

// writeJSON sends a wire document with the given status.
func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	wire.WriteJSON(rw, v)
}

// writeError maps an error to the uniform error envelope.
func writeError(rw http.ResponseWriter, status int, err error) {
	writeJSON(rw, status, wire.Error{Error: err.Error()})
}

// analysisStatus maps an analysis error to an HTTP status: cancellations
// and deadlines surface as such, anything else is the client's input.
func analysisStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

// noteWorkerPanic counts and logs a recovered engine-worker panic that
// surfaced as an error, returning it when err carries one and nil
// otherwise. Worker panics are server faults, never the client's input —
// they must land in mvrc_panics_total and the log with the worker stack,
// and answer 500, not 422.
func (s *Server) noteWorkerPanic(r *http.Request, err error) *analysis.PanicError {
	var pe *analysis.PanicError
	if !errors.As(err, &pe) {
		return nil
	}
	s.panics.Add(1)
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelError, "worker_panic",
			slog.Any("value", pe.Value),
			slog.String("stack", string(pe.Stack)),
			slog.String("request_id", obs.RequestIDFrom(r.Context())))
	}
	return pe
}

// analysisError writes an engine error to the wire: recovered worker
// panics become a structured 500 with code "panic"; everything else goes
// through analysisStatus.
func (s *Server) analysisError(rw http.ResponseWriter, r *http.Request, err error) {
	if pe := s.noteWorkerPanic(r, err); pe != nil {
		writeJSON(rw, http.StatusInternalServerError, wire.Error{Error: pe.Error(), Code: "panic"})
		return
	}
	writeError(rw, analysisStatus(err), err)
}

// decodeBody decodes a JSON request body into v. An empty body is allowed
// when optional is true (the zero value then stands for the defaults).
func decodeBody(r *http.Request, v any, optional bool) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if errors.Is(err, io.EOF) && optional {
		return nil
	}
	return err
}

// requestCtx derives the analysis context for one request: the client's
// context bounded by the configured timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// lookup resolves the {id} path segment and pins the workload against
// eviction for the duration of the request; every caller must release the
// pin with s.release (which also gives the -max-bytes policy a chance to
// act on whatever the request grew).
func (s *Server) lookup(rw http.ResponseWriter, r *http.Request) *workload {
	id := r.PathValue("id")
	w := s.reg.getPinned(id)
	if w == nil {
		writeError(rw, http.StatusNotFound, fmt.Errorf("no workload %q", id))
	}
	return w
}

// enforceEvery throttles the release-path budget walk: recomputing every
// workload's size estimate on each of a burst of cheap requests (e.g.
// result-cache hits) would contend the session locks for nothing, and the
// budget drifts slowly between analyses. Registration always enforces
// unthrottled — it is the path that adds whole workloads at once.
const enforceEvery = 100 * time.Millisecond

// release unpins a workload obtained from lookup and re-enforces the
// -max-bytes budget, at most once per enforceEvery across all requests.
func (s *Server) release(w *workload) {
	w.pins.Add(-1)
	if s.opts.MaxBytes <= 0 {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastEnforce.Load()
	if now-last >= int64(enforceEvery) && s.lastEnforce.CompareAndSwap(last, now) {
		s.reg.enforceBytes()
	}
}

// config resolves a CheckRequest into the engine configuration. The
// request's per-request parallelism wins when set; an unset field falls
// back to the server's -parallel option, and a set field is capped by the
// resolved server bound — the -parallel option, or GOMAXPROCS when the
// operator left it unset. The cap is what keeps the field safe to expose:
// an unauthenticated request must not be able to dictate an arbitrary
// goroutine count.
func (s *Server) config(req *wire.CheckRequest) (analysis.Config, error) {
	cfg, err := req.Config()
	if err != nil {
		return cfg, err
	}
	if bound := effectiveParallelism(s.opts.Parallelism); cfg.Parallelism <= 0 || cfg.Parallelism > bound {
		cfg.Parallelism = bound
	}
	return cfg, nil
}

// effectiveParallelism resolves the knob's 0-means-GOMAXPROCS convention for
// reporting in /v1/stats.
func effectiveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// --- Handlers --------------------------------------------------------------

func (s *Server) handleRegister(rw http.ResponseWriter, r *http.Request) {
	var req wire.RegisterWorkloadRequest
	if err := decodeBody(r, &req, false); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	var (
		schema   *relschema.Schema
		programs []*btp.Program
	)
	switch {
	case req.Benchmark != "":
		bench, err := benchmarks.ByName(req.Benchmark, req.N)
		if err != nil {
			writeError(rw, http.StatusBadRequest, err)
			return
		}
		schema, programs = bench.Schema, bench.Programs
		if req.ProgramsSQL != "" {
			programs, err = sqlbtp.Parse(schema, req.ProgramsSQL)
			if err != nil {
				writeError(rw, http.StatusBadRequest, fmt.Errorf("programs_sql: %w", err))
				return
			}
		}
	case req.Schema != nil && req.ProgramsSQL != "":
		var err error
		schema, err = req.Schema.Build()
		if err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("schema: %w", err))
			return
		}
		programs, err = sqlbtp.Parse(schema, req.ProgramsSQL)
		if err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("programs_sql: %w", err))
			return
		}
	default:
		writeError(rw, http.StatusBadRequest,
			errors.New("register needs either benchmark or schema + programs_sql"))
		return
	}
	resp, err := s.Register(schema, programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if resp.Created {
		status = http.StatusCreated
	}
	writeJSON(rw, status, resp)
}

// handleFromSQL registers a workload straight from dialect SQL: the body
// selects a dialect front-end and carries either a self-contained script or
// DDL plus per-program SQL. Compilation failures answer 400 with a
// wire.SQLError carrying the dialect, program, line and column of the
// offending source.
func (s *Server) handleFromSQL(rw http.ResponseWriter, r *http.Request) {
	var req wire.FromSQLRequest
	if err := decodeBody(r, &req, false); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	src := sqlbtp.Source{Dialect: req.Dialect, Script: req.Script, DDL: req.DDL}
	for _, p := range req.Programs {
		src.Programs = append(src.Programs, sqlbtp.NamedSQL{Name: p.Name, Abbrev: p.Abbrev, SQL: p.SQL})
	}
	wl, err := sqlbtp.Compile(src)
	if err != nil {
		var perr *sqlbtp.ParseError
		if errors.As(err, &perr) {
			writeJSON(rw, http.StatusBadRequest, &wire.SQLError{
				Error:   perr.Error(),
				Dialect: perr.Dialect,
				Program: perr.Program,
				Line:    perr.Line,
				Column:  perr.Col,
			})
			return
		}
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Register(wl.Schema, wl.Programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if resp.Created {
		status = http.StatusCreated
	}
	writeJSON(rw, status, resp)
}

func (s *Server) handleGetWorkload(rw http.ResponseWriter, r *http.Request) {
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	writeJSON(rw, http.StatusOK, s.workloadStats(w))
}

func (s *Server) handleCheck(rw http.ResponseWriter, r *http.Request) {
	if !s.admit(rw) {
		return
	}
	defer s.admitDone()
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	var req wire.CheckRequest
	if err := decodeBody(r, &req, true); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	cfg, err := s.config(&req)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	programs, version, err := w.snapshot(req.Programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	tracer, recorder := s.requestTracer(r)
	cfg.Tracer = tracer
	res, err := w.session().CheckCtx(ctx, programs, cfg)
	if err != nil {
		s.analysisError(rw, r, err)
		return
	}
	s.checks.Add(1)
	w.checks.Add(1)
	w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
	rw.Header().Set("X-Workload-Version", fmt.Sprint(version))
	resp := wire.NewCheckResponse(cfg, programs, res)
	if recorder != nil {
		resp.Timings = wire.NewPhaseTimings(recorder.Snapshot())
	}
	writeJSON(rw, http.StatusOK, resp)
}

func (s *Server) handleSubsets(rw http.ResponseWriter, r *http.Request) {
	if !s.admit(rw) {
		return
	}
	defer s.admitDone()
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	var req wire.CheckRequest
	if err := decodeBody(r, &req, true); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	cfg, err := s.config(&req)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	programs, version, err := w.snapshot(req.Programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	// A ?debug=timings request wants this run's spans, so it bypasses both
	// the result cache (stored bytes would replay another run's document —
	// and cached bodies must stay byte-identical, so the timings block is
	// never stored) and the coalescing (a follower observes no spans). The
	// enumeration runs under the request context like any uncached request.
	if tracer, recorder := s.requestTracer(r); recorder != nil {
		cfg.Tracer = tracer
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		rep, err := w.session().RobustSubsetsCtx(ctx, programs, cfg)
		if err != nil {
			s.analysisError(rw, r, err)
			return
		}
		s.subsets.Add(1)
		w.subsets.Add(1)
		w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
		resp := wire.NewSubsetsResponse(cfg, programs, rep)
		resp.Timings = wire.NewPhaseTimings(recorder.Snapshot())
		rw.Header().Set("X-Workload-Version", fmt.Sprint(version))
		writeJSON(rw, http.StatusOK, resp)
		return
	}
	// The result cache sits above the in-flight coalescing: an identical
	// enumeration already answered (same version, configuration and
	// program selection — parallelism excluded, it never changes verdicts)
	// is served from its stored bytes without touching the engine.
	key := requestKey(version, cfg, programs)
	if body, ok := w.results.get(key); ok {
		s.subsets.Add(1)
		w.subsets.Add(1)
		w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
		writeRaw(rw, version, body)
		return
	}
	// The coalesced leader runs with the shared metrics tracer: its spans
	// land in the phase histogram (followers add none — no duplicate
	// observations for one engine run).
	tracer, _ := s.requestTracer(r)
	cfg.Tracer = tracer
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, respVersion, err := s.subsetsCoalesced(ctx, w, key, cfg, programs, version)
	if err != nil {
		s.analysisError(rw, r, err)
		return
	}
	s.subsets.Add(1)
	w.subsets.Add(1)
	w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
	// Encode once: the same bytes go to this response, into the result
	// cache and (via the snapshot) across restarts, so hits are
	// byte-identical to the original answer by construction. The encode
	// buffer is pooled; the cache keeps an exact-size copy, since put
	// retains its body slice.
	buf := getLineBuf()
	defer putLineBuf(buf)
	if err := wire.WriteJSON(buf, resp); err != nil {
		writeError(rw, http.StatusInternalServerError, err)
		return
	}
	writeRaw(rw, respVersion, buf.Bytes())
	// A new cached result only marks the workload dirty; the debounced
	// flusher rewrites the snapshot file once per interval however many
	// enumerations a burst caches, and never in the client's latency.
	if w.results.put(key, respVersion, append([]byte(nil), buf.Bytes()...)) {
		s.markDirty(w)
	}
}

// writeRaw sends pre-encoded wire bytes with the workload-version header.
func writeRaw(rw http.ResponseWriter, version uint64, body []byte) {
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set("X-Workload-Version", fmt.Sprint(version))
	rw.WriteHeader(http.StatusOK)
	rw.Write(body)
}

// requestKey identifies one subset enumeration for both the in-flight
// coalescing and the result cache: workload version, analysis
// configuration and program selection.
func requestKey(version uint64, cfg analysis.Config, programs []*btp.Program) string {
	names := make([]string, len(programs))
	for i, p := range programs {
		names[i] = p.Name
	}
	return fmt.Sprintf("%d|%s|%s|%d|%s",
		version, wire.SettingName(cfg.Setting), wire.MethodName(cfg.Method),
		cfg.UnfoldBound, strings.Join(names, ","))
}

// subsetsCoalesced answers one subset enumeration, merging requests that
// ask for the identical enumeration (same workload version, configuration
// and program selection) while one is already in flight: followers block
// on the leader's result instead of duplicating the exponential sweep. The
// computation runs under the server's base context so a leader's
// disconnect does not abort its followers; the last waiter to give up
// cancels it.
func (s *Server) subsetsCoalesced(ctx context.Context, w *workload, key string, cfg analysis.Config, programs []*btp.Program, version uint64) (*wire.SubsetsResponse, uint64, error) {
	w.flightMu.Lock()
	call, joined := w.flight[key]
	if !joined {
		var (
			runCtx    context.Context
			runCancel context.CancelFunc
		)
		if s.opts.RequestTimeout > 0 {
			runCtx, runCancel = context.WithTimeout(s.base, s.opts.RequestTimeout)
		} else {
			runCtx, runCancel = context.WithCancel(s.base)
		}
		call = &flightCall{done: make(chan struct{}), version: version, cancel: runCancel}
		w.flight[key] = call
		go func() {
			defer runCancel()
			// The cleanup lives in the deferred recovery: a panic escaping
			// the engine (or the test hook) must still detach the flight
			// entry and close done, or every follower would block forever —
			// and an unrecovered panic on this detached goroutine would
			// kill the whole process.
			defer func() {
				if p := recover(); p != nil {
					call.err = &analysis.PanicError{Value: p, Stack: debug.Stack()}
				}
				w.flightMu.Lock()
				// The last waiter may have detached this call and a fresh
				// leader re-registered the key; only remove our own entry.
				if w.flight[key] == call {
					delete(w.flight, key)
				}
				w.flightMu.Unlock()
				close(call.done)
			}()
			if s.testFlightHook != nil {
				s.testFlightHook()
			}
			rep, err := w.session().RobustSubsetsCtx(runCtx, programs, cfg)
			if err != nil {
				call.err = err
			} else {
				call.resp = wire.NewSubsetsResponse(cfg, programs, rep)
			}
		}()
	} else {
		s.coalesced.Add(1)
	}
	call.waiters.Add(1)
	w.flightMu.Unlock()

	select {
	case <-call.done:
		call.waiters.Add(-1)
		if call.err != nil {
			return nil, 0, call.err
		}
		return call.resp.(*wire.SubsetsResponse), call.version, nil
	case <-ctx.Done():
		// Deciding to cancel must be serialized with joins (which happen
		// under flightMu): otherwise a request could join the flight just
		// as its last waiter cancels it, and fail with the canceller's
		// error despite a healthy connection. Detaching the entry first
		// also ensures late arrivals start a fresh enumeration.
		w.flightMu.Lock()
		last := call.waiters.Add(-1) == 0
		if last && w.flight[key] == call {
			delete(w.flight, key)
		}
		w.flightMu.Unlock()
		if last {
			call.cancel()
		}
		return nil, 0, ctx.Err()
	}
}

// handleCertify runs the certification pipeline for one program subset: a
// static check through the workload's session and, on a non-robust
// verdict, realize → interleaving search → engine replay (internal/
// certify). A newly certified core changes the session's fact store, which
// the snapshot persists, so the workload is marked dirty for the next
// debounced flush.
func (s *Server) handleCertify(rw http.ResponseWriter, r *http.Request) {
	if !s.admit(rw) {
		return
	}
	defer s.admitDone()
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	var req wire.CertifyRequest
	if err := decodeBody(r, &req, true); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	cfg, err := s.config(&req.CheckRequest)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	programs, version, err := w.snapshot(req.Programs)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	tracer, recorder := s.requestTracer(r)
	cfg.Tracer = tracer
	res, err := certify.Subset(ctx, w.session(), cfg, programs, certify.Options{
		MaxSchedules: req.MaxSchedules,
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		s.analysisError(rw, r, err)
		return
	}
	s.certifies.Add(1)
	w.lastParallelism.Store(int64(effectiveParallelism(cfg.Parallelism)))
	if res.Status == certify.Unrealized {
		s.unrealizedCands.Add(uint64(res.Candidates))
	}
	if res.NewlyCertified {
		s.markDirty(w)
	}
	rw.Header().Set("X-Workload-Version", fmt.Sprint(version))
	resp := wire.NewCertifyResponse(cfg, programs, res)
	if recorder != nil {
		resp.Timings = wire.NewPhaseTimings(recorder.Snapshot())
	}
	writeJSON(rw, http.StatusOK, resp)
}

func (s *Server) handlePatch(rw http.ResponseWriter, r *http.Request) {
	w := s.lookup(rw, r)
	if w == nil {
		return
	}
	defer s.release(w)
	var req wire.PatchProgramRequest
	if err := decodeBody(r, &req, false); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(rw, http.StatusBadRequest, errors.New("patch needs a sql body"))
		return
	}
	name, invalidated, version, err := w.patch(r.PathValue("name"), req.SQL)
	if err != nil {
		writeError(rw, http.StatusBadRequest, err)
		return
	}
	// The version bump orphans every cached result of this workload (and
	// only this one); drop them eagerly and persist the patched definition.
	results := w.results.invalidate()
	if !s.persist(w) {
		s.markDirty(w)
	}
	s.patches.Add(1)
	w.patches.Add(1)
	writeJSON(rw, http.StatusOK, &wire.PatchProgramResponse{
		Program: name, Version: version,
		InvalidatedPairs: invalidated, InvalidatedResults: results,
	})
}

func (s *Server) workloadStats(w *workload) wire.WorkloadStats {
	ps, version := w.programList()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return wire.WorkloadStats{
		ID:              w.id,
		Version:         version,
		Programs:        names,
		Checks:          w.checks.Load(),
		Subsets:         w.subsets.Load(),
		Patches:         w.patches.Load(),
		LastParallelism: int(w.lastParallelism.Load()),
		Cache:           wire.NewCacheStats(w.session().Stats()),
		ResultCache:     w.results.stats(),
		SizeBytes:       w.sizeBytes(),
	}
}

func (s *Server) handleStats(rw http.ResponseWriter, _ *http.Request) {
	// Snapshot-then-encode: statsSnapshot materializes every counter into
	// the response value first — the registry lock (inside reg.all) and the
	// per-workload session locks are all released before WriteJSON runs, so
	// a slow client draining the encode stream never holds up registration,
	// eviction or other stats readers.
	writeJSON(rw, http.StatusOK, s.statsSnapshot())
}

// statsSnapshot builds the /v1/stats document from point-in-time counter
// reads and stamps it with the next stats generation.
func (s *Server) statsSnapshot() *wire.StatsResponse {
	workloads := s.reg.all()
	resp := &wire.StatsResponse{
		UptimeSeconds:        time.Since(s.start).Seconds(),
		StatsGeneration:      s.statsGen.Add(1),
		Workloads:            len(workloads),
		Evictions:            s.reg.evictions.Load(),
		EvictionsBytes:       s.reg.evictionsBytes.Load(),
		MaxBytes:             s.opts.MaxBytes,
		SnapshotsLoaded:      s.stateLoaded,
		PersistErrors:        s.persistErrs.Load(),
		DefaultParallelism:   effectiveParallelism(s.opts.Parallelism),
		UnrealizedCandidates: s.unrealizedCands.Load(),
		Requests: wire.RequestStats{
			Register:          s.registers.Load(),
			Check:             s.checks.Load(),
			Subsets:           s.subsets.Load(),
			Certify:           s.certifies.Load(),
			Patch:             s.patches.Load(),
			Coalesced:         s.coalesced.Load(),
			Streamed:          s.streamed.Load(),
			EarlyTerminations: s.earlyTerms.Load(),
		},
	}
	for _, w := range workloads {
		ws := s.workloadStats(w)
		resp.TotalSizeBytes += ws.SizeBytes
		resp.CertifiedCores += ws.Cache.Cores.CertifiedCores
		resp.WorkloadStats = append(resp.WorkloadStats, ws)
	}
	// Registry order is usage-recency; report stats sorted by id so the
	// endpoint is stable under concurrent traffic.
	sort.Slice(resp.WorkloadStats, func(i, j int) bool {
		return resp.WorkloadStats[i].ID < resp.WorkloadStats[j].ID
	})
	return resp
}
