package server

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/wire"
)

// The chaos harness: repeated register → query → kill -9 → restart cycles
// over one shared state directory, each cycle running the snapshot store
// against a different deterministic fault schedule (failed creates, torn
// writes, failed fsyncs/renames/dirsyncs) and then crashing the filesystem
// mid-activity via Injector.Crash — the moral equivalent of kill -9, since
// the abandoned server's flusher can no longer reach the directory the
// restarted server reads. After every restart the invariants of the
// crash-safe write protocol must hold:
//
//   - zero corrupt or torn snapshots accepted (StateReport skipped == 0 —
//     the atomic temp+fsync+rename discipline means every *.json in the
//     directory is a complete, verifiable snapshot),
//   - no temp-file residue after the boot sweep,
//   - wire responses byte-identical to a never-crashed reference server,
//   - retry activity stops once the crashed server is closed.

// chaosCycles is the kill -9 count; the ISSUE's floor is 20.
const chaosCycles = 24

// chaosSchedule derives cycle-specific faults from a fixed seed: one to
// three write-path failures, some of them torn writes. Read-path ops stay
// healthy so every boot exercises the sweep + load path deterministically.
func chaosSchedule(cycle int) []*faultfs.Fault {
	rng := rand.New(rand.NewSource(0xC0FFEE + int64(cycle)))
	ops := []faultfs.Op{
		faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpClose, faultfs.OpRename, faultfs.OpSyncDir,
	}
	n := 1 + rng.Intn(3)
	faults := make([]*faultfs.Fault, 0, n)
	for i := 0; i < n; i++ {
		f := &faultfs.Fault{Op: ops[rng.Intn(len(ops))], After: rng.Intn(4), Count: 1 + rng.Intn(2)}
		if f.Op == faultfs.OpWrite && rng.Intn(2) == 0 {
			f.TornBytes = 1 + rng.Intn(64)
		}
		faults = append(faults, f)
	}
	return faults
}

// chaosRegister registers SmallBank accepting both 201 (fresh) and 200
// (restored from a snapshot of an earlier cycle), returning the id.
func chaosRegister(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var reg wire.RegisterWorkloadResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d\n%s", resp.StatusCode, raw)
	}
	return reg.ID
}

// assertNoTempResidue fails if any *.tmp survived the boot sweep.
func assertNoTempResidue(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp residue after boot sweep: %s", e.Name())
		}
	}
}

func TestChaosKill9Cycles(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness: skipped in -short")
	}
	// The reference run: a healthy server whose answers define the bytes
	// every post-crash restart must reproduce.
	_, refTS := newTestServer(t, Options{})
	refID := registerSmallBank(t, refTS)
	subsetsReq := &wire.CheckRequest{Programs: []string{"Bal", "Am", "DC"}}
	resp, refBody := doJSON(t, http.MethodPost, refTS.URL+"/v1/workloads/"+refID+"/subsets", subsetsReq, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference subsets: %d\n%s", resp.StatusCode, refBody)
	}

	dir := t.TempDir()
	for cycle := 0; cycle < chaosCycles; cycle++ {
		inj := faultfs.NewInjector(faultfs.OS{}, chaosSchedule(cycle)...)
		s := New(Options{StateDir: dir, SnapshotFS: inj, FlushInterval: time.Millisecond})
		ts := httptest.NewServer(s.Handler())

		id := chaosRegister(t, ts)
		if id != refID {
			t.Fatalf("cycle %d: workload id drifted: %s, want %s", cycle, id, refID)
		}
		// Analysis traffic while the faulty flusher churns: a monolithic
		// enumeration (cached → marked dirty → persisted under faults) and
		// an early-terminating stream (minted cores → marked dirty).
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", subsetsReq, nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, refBody) {
			t.Fatalf("cycle %d: pre-crash subsets diverged: status %d\n got %s\nwant %s",
				cycle, resp.StatusCode, body, refBody)
		}
		sresp, err := http.Get(ts.URL + "/v1/workloads/" + id + "/subsets:stream?mode=first_non_robust")
		if err != nil {
			t.Fatalf("cycle %d: stream: %v", cycle, err)
		}
		io.Copy(io.Discard, sresp.Body)
		sresp.Body.Close()

		// kill -9: from here the old process's flusher writes hit a dead
		// disk, never the directory the next server boots from.
		inj.Crash()
		if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check",
			&wire.CheckRequest{Programs: []string{"Bal"}}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("cycle %d: post-crash check from memory: %d, want 200", cycle, resp.StatusCode)
		}
		ts.Close()
		_ = s.Close() // the crashed disk legitimately fails the final flush
		if cycle%8 == 0 {
			// Bounded retries: once Close returns, no goroutine keeps
			// hammering the dead filesystem.
			r0, o0 := s.snapRetries.Load(), inj.Ops()
			time.Sleep(20 * time.Millisecond)
			if r1, o1 := s.snapRetries.Load(), inj.Ops(); r1 != r0 || o1 != o0 {
				t.Fatalf("cycle %d: retry activity after Close: retries %d→%d ops %d→%d",
					cycle, r0, r1, o0, o1)
			}
		}

		// Restart on the surviving directory with a healthy filesystem.
		s2 := New(Options{StateDir: dir})
		if _, skipped, err := s2.StateReport(); skipped != 0 || err != nil {
			t.Fatalf("cycle %d: restart accepted corrupt state: skipped=%d err=%v", cycle, skipped, err)
		}
		assertNoTempResidue(t, dir)
		ts2 := httptest.NewServer(s2.Handler())
		if got := chaosRegister(t, ts2); got != refID {
			t.Fatalf("cycle %d: post-restart id drifted: %s", cycle, got)
		}
		resp, body = doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+refID+"/subsets", subsetsReq, nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, refBody) {
			t.Fatalf("cycle %d: post-restart subsets diverged: status %d\n got %s\nwant %s",
				cycle, resp.StatusCode, body, refBody)
		}
		ts2.Close()
		if err := s2.Close(); err != nil {
			t.Fatalf("cycle %d: healthy close: %v", cycle, err)
		}
	}
}
