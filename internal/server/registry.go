package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/sqlbtp"
)

// workload is one registered schema + program set, wrapping the long-lived
// analysis.Session that amortizes unfoldings and pairwise edge blocks
// across every request it serves.
type workload struct {
	// id is the registration fingerprint; stable for the workload's
	// lifetime, including across PATCHes.
	id     string
	schema *relschema.Schema
	sess   *analysis.Session

	// mu guards the program table and version. Checks take the read lock
	// only long enough to snapshot the programs they analyse; a PATCH
	// holds the write lock across parse + invalidate + swap so every
	// snapshot sees a consistent (programs, version) pair.
	mu       sync.RWMutex
	names    []string                // full program names, registration order
	programs map[string]*btp.Program // by full name AND abbreviation
	version  uint64

	checks, subsets, patches atomic.Uint64
	// lastParallelism records the effective worker count of the most recent
	// check/subsets request, for /v1/stats (0 until the first request).
	lastParallelism atomic.Int64

	// flight coalesces identical in-flight subset enumerations; see
	// Server.subsetsCoalesced.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// newWorkload builds a workload over the schema and programs (validated by
// the caller) with its fingerprint id.
func newWorkload(schema *relschema.Schema, programs []*btp.Program) *workload {
	w := &workload{
		id:     fingerprint(schema, programs),
		schema: schema,
		sess:   analysis.NewSession(schema),
		flight: make(map[string]*flightCall),
	}
	w.installPrograms(programs)
	return w
}

// fingerprint hashes the schema and the full program definitions —
// statement read/write/predicate sets and foreign-key annotations included
// — so two workloads collide only when they are semantically identical to
// the analysis.
func fingerprint(schema *relschema.Schema, programs []*btp.Program) string {
	h := sha256.New()
	io.WriteString(h, schema.String())
	for _, p := range programs {
		fmt.Fprintf(h, "\x00%s\x00%s\x00%s\n", p.Name, p.Abbrev, p.String())
		for _, q := range p.Statements() {
			io.WriteString(h, q.String())
			io.WriteString(h, "\n")
		}
		for _, fk := range p.FKs {
			io.WriteString(h, fk.String())
			io.WriteString(h, "\n")
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// session returns the workload's current analysis engine. Callers may keep
// using a session across a concurrent rotation — verdicts never depend on
// cache contents — it is merely garbage afterwards.
func (w *workload) session() *analysis.Session {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sess
}

// resetIfDrifted restores the workload to the given registered content if
// PATCHes have made its current programs diverge from the registration
// fingerprint (the workload id). Without this, re-registering pristine
// content would silently alias onto a drifted workload and answer with the
// wrong programs. Returns true when a reset happened (version bumped).
func (w *workload) resetIfDrifted(programs []*btp.Program) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	current := make([]*btp.Program, len(w.names))
	for i, n := range w.names {
		current[i] = w.programs[n]
	}
	if fingerprint(w.schema, current) == w.id {
		return false
	}
	// Drop a whole session rather than invalidating program by program:
	// resets are rare (they require an interleaved PATCH) and this also
	// sheds any memory pinned by the patch history.
	w.sess = analysis.NewSession(w.schema)
	w.installPrograms(programs)
	w.version++
	return true
}

// installPrograms replaces the program table. Caller holds w.mu.
func (w *workload) installPrograms(programs []*btp.Program) {
	w.names = w.names[:0]
	w.programs = make(map[string]*btp.Program, 2*len(programs))
	for _, p := range programs {
		w.names = append(w.names, p.Name)
		w.programs[p.Name] = p
		if p.Abbrev != "" {
			w.programs[p.Abbrev] = p
		}
	}
}

// programList returns the full program set in registration order plus the
// current version.
func (w *workload) programList() ([]*btp.Program, uint64) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*btp.Program, len(w.names))
	for i, n := range w.names {
		out[i] = w.programs[n]
	}
	return out, w.version
}

// snapshot resolves the requested program names (full names or
// abbreviations; empty means all) against the current version.
func (w *workload) snapshot(names []string) ([]*btp.Program, uint64, error) {
	if len(names) == 0 {
		ps, v := w.programList()
		return ps, v, nil
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*btp.Program, len(names))
	seen := make(map[*btp.Program]bool, len(names))
	for i, n := range names {
		p, ok := w.programs[n]
		if !ok {
			return nil, 0, fmt.Errorf("workload has no program %q", n)
		}
		// A full name and its abbreviation resolve to the same program;
		// admitting the duplicate would enumerate it as two distinct
		// nodes and produce a malformed graph.
		if seen[p] {
			return nil, 0, fmt.Errorf("program %q selected twice", n)
		}
		seen[p] = true
		out[i] = p
	}
	return out, w.version, nil
}

// patch replaces the named program with a new definition parsed from SQL,
// invalidating only the old program's memoized unfoldings and pairwise
// edge blocks (the incremental re-analysis path). It returns the replaced
// program's full name, the number of evicted pairs and the new version.
func (w *workload) patch(name, sql string) (string, int, uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	old, ok := w.programs[name]
	if !ok {
		return "", 0, 0, fmt.Errorf("workload has no program %q", name)
	}
	next, err := sqlbtp.ParseProgram(w.schema, sql)
	if err != nil {
		return "", 0, 0, fmt.Errorf("parse: %w", err)
	}
	if next.Name != old.Name {
		return "", 0, 0, fmt.Errorf("PROGRAM name %q does not match patched program %q", next.Name, old.Name)
	}
	if err := next.Validate(w.schema); err != nil {
		return "", 0, 0, err
	}
	// SQL-parsed programs carry no abbreviation; inherit the old one so
	// subset reports keep their short names across patches.
	if next.Abbrev == "" {
		next.Abbrev = old.Abbrev
	}
	invalidated := w.sess.Invalidate(old)
	delete(w.programs, old.Name)
	if old.Abbrev != "" {
		delete(w.programs, old.Abbrev)
	}
	w.programs[next.Name] = next
	if next.Abbrev != "" {
		w.programs[next.Abbrev] = next
	}
	w.version++
	// Every invalidation retires the old program's LTPs in the session's
	// caches (they must not be re-admitted by in-flight stragglers), so a
	// heavily patched workload accrues a little stale bookkeeping per
	// patch. Rotating to a fresh session every sessionRotatePatches
	// versions bounds that at the cost of one periodic cold rebuild.
	if w.version%sessionRotatePatches == 0 {
		w.sess = analysis.NewSession(w.schema)
	}
	return old.Name, invalidated, w.version, nil
}

// sessionRotatePatches is the version period after which a workload swaps
// in a fresh analysis session to shed memory pinned by patch history.
const sessionRotatePatches = 64

// flightCall is one in-flight subset enumeration that identical concurrent
// requests piggyback on. waiters counts requests currently blocked on it;
// the last waiter to give up cancels the computation.
type flightCall struct {
	done    chan struct{}
	resp    any
	err     error
	version uint64
	waiters atomic.Int64
	cancel  func()
}

// registry is the concurrency-safe workload table: fingerprint-keyed with
// an LRU cap, so a long-lived server bounds the memory of its cached
// sessions while hot workloads stay resident.
type registry struct {
	cap       int
	mu        sync.Mutex
	items     map[string]*list.Element // id → element holding *workload
	order     *list.List               // front = most recently used
	evictions atomic.Uint64
}

func newRegistry(capacity int) *registry {
	return &registry{
		cap:   capacity,
		items: make(map[string]*list.Element),
		order: list.New(),
	}
}

// register inserts the workload, or returns the resident one with the same
// fingerprint (registration is idempotent). The entry becomes most
// recently used; the least recently used entry is evicted beyond the cap.
func (r *registry) register(w *workload) (*workload, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.items[w.id]; ok {
		r.order.MoveToFront(el)
		return el.Value.(*workload), false
	}
	r.items[w.id] = r.order.PushFront(w)
	for r.order.Len() > r.cap {
		oldest := r.order.Back()
		r.order.Remove(oldest)
		delete(r.items, oldest.Value.(*workload).id)
		r.evictions.Add(1)
	}
	return w, true
}

// get returns the workload and bumps it to most recently used, or nil.
func (r *registry) get(id string) *workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[id]
	if !ok {
		return nil
	}
	r.order.MoveToFront(el)
	return el.Value.(*workload)
}

// all snapshots the resident workloads, most recently used first.
func (r *registry) all() []*workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*workload, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*workload))
	}
	return out
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}
