package server

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/btp"
	"repro/internal/relschema"
	"repro/internal/snapshot"
	"repro/internal/sqlbtp"
	"repro/internal/wire"
)

// workload is one registered schema + program set, wrapping the long-lived
// analysis.Session that amortizes unfoldings and pairwise edge blocks
// across every request it serves.
type workload struct {
	// id is the registration fingerprint; stable for the workload's
	// lifetime, including across PATCHes.
	id     string
	schema *relschema.Schema
	sess   *analysis.Session

	// mu guards the program table and version. Checks take the read lock
	// only long enough to snapshot the programs they analyse; a PATCH
	// holds the write lock across parse + invalidate + swap so every
	// snapshot sees a consistent (programs, version) pair.
	mu       sync.RWMutex
	names    []string                // full program names, registration order
	programs map[string]*btp.Program // by full name AND abbreviation
	version  uint64

	checks, subsets, patches atomic.Uint64
	// lastParallelism records the effective worker count of the most recent
	// check/subsets request, for /v1/stats (0 until the first request).
	lastParallelism atomic.Int64

	// pins counts requests currently being served against this workload
	// (held from lookup to response, and across register + persist). A
	// pinned workload is never an eviction victim: evicting mid-request
	// would drop a session and result cache the request is about to
	// populate — and let a post-request persist resurrect a snapshot an
	// eviction just deleted.
	pins atomic.Int64

	// persistMu serializes snapshot writes of this workload: reading the
	// state (snapshotFile) and renaming the file into place must be atomic
	// against each other, or a slow persist holding pre-PATCH state could
	// overwrite the PATCH's own newer snapshot.
	persistMu sync.Mutex

	// results is the subsets result cache (see resultcache.go).
	results *resultCache

	// flight coalesces identical in-flight subset enumerations; see
	// Server.subsetsCoalesced.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// newWorkload builds a workload over the schema and programs (validated by
// the caller) with its fingerprint id.
func newWorkload(schema *relschema.Schema, programs []*btp.Program) *workload {
	w := &workload{
		id:      fingerprint(schema, programs),
		schema:  schema,
		sess:    analysis.NewSession(schema),
		results: newResultCache(),
		flight:  make(map[string]*flightCall),
	}
	w.installPrograms(programs)
	return w
}

// fingerprint is snapshot.Fingerprint: the schema and full program
// definitions hashed so two workloads collide only when they are
// semantically identical to the analysis.
func fingerprint(schema *relschema.Schema, programs []*btp.Program) string {
	return snapshot.Fingerprint(schema, programs)
}

// session returns the workload's current analysis engine. Callers may keep
// using a session across a concurrent rotation — verdicts never depend on
// cache contents — it is merely garbage afterwards.
func (w *workload) session() *analysis.Session {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sess
}

// resetIfDrifted restores the workload to the given registered content if
// PATCHes have made its current programs diverge from the registration
// fingerprint (the workload id). Without this, re-registering pristine
// content would silently alias onto a drifted workload and answer with the
// wrong programs. Returns true when a reset happened (version bumped).
func (w *workload) resetIfDrifted(programs []*btp.Program) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	current := make([]*btp.Program, len(w.names))
	for i, n := range w.names {
		current[i] = w.programs[n]
	}
	if fingerprint(w.schema, current) == w.id {
		return false
	}
	// Drop a whole session rather than invalidating program by program:
	// resets are rare (they require an interleaved PATCH) and this also
	// sheds any memory pinned by the patch history.
	w.sess = analysis.NewSession(w.schema)
	w.installPrograms(programs)
	w.version++
	return true
}

// installPrograms replaces the program table. Caller holds w.mu.
func (w *workload) installPrograms(programs []*btp.Program) {
	w.names = w.names[:0]
	w.programs = make(map[string]*btp.Program, 2*len(programs))
	for _, p := range programs {
		w.names = append(w.names, p.Name)
		w.programs[p.Name] = p
		if p.Abbrev != "" {
			w.programs[p.Abbrev] = p
		}
	}
}

// programList returns the full program set in registration order plus the
// current version.
func (w *workload) programList() ([]*btp.Program, uint64) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*btp.Program, len(w.names))
	for i, n := range w.names {
		out[i] = w.programs[n]
	}
	return out, w.version
}

// snapshot resolves the requested program names (full names or
// abbreviations; empty means all) against the current version.
func (w *workload) snapshot(names []string) ([]*btp.Program, uint64, error) {
	if len(names) == 0 {
		ps, v := w.programList()
		return ps, v, nil
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*btp.Program, len(names))
	seen := make(map[*btp.Program]bool, len(names))
	for i, n := range names {
		p, ok := w.programs[n]
		if !ok {
			return nil, 0, fmt.Errorf("workload has no program %q", n)
		}
		// A full name and its abbreviation resolve to the same program;
		// admitting the duplicate would enumerate it as two distinct
		// nodes and produce a malformed graph.
		if seen[p] {
			return nil, 0, fmt.Errorf("program %q selected twice", n)
		}
		seen[p] = true
		out[i] = p
	}
	return out, w.version, nil
}

// patch replaces the named program with a new definition parsed from SQL,
// invalidating only the old program's memoized unfoldings and pairwise
// edge blocks (the incremental re-analysis path). It returns the replaced
// program's full name, the number of evicted pairs and the new version.
func (w *workload) patch(name, sql string) (string, int, uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	old, ok := w.programs[name]
	if !ok {
		return "", 0, 0, fmt.Errorf("workload has no program %q", name)
	}
	next, err := sqlbtp.ParseProgram(w.schema, sql)
	if err != nil {
		return "", 0, 0, fmt.Errorf("parse: %w", err)
	}
	if next.Name != old.Name {
		return "", 0, 0, fmt.Errorf("PROGRAM name %q does not match patched program %q", next.Name, old.Name)
	}
	if err := next.Validate(w.schema); err != nil {
		return "", 0, 0, err
	}
	// SQL-parsed programs carry no abbreviation; inherit the old one so
	// subset reports keep their short names across patches.
	if next.Abbrev == "" {
		next.Abbrev = old.Abbrev
	}
	invalidated := w.sess.Invalidate(old)
	delete(w.programs, old.Name)
	if old.Abbrev != "" {
		delete(w.programs, old.Abbrev)
	}
	w.programs[next.Name] = next
	if next.Abbrev != "" {
		w.programs[next.Abbrev] = next
	}
	w.version++
	// Every invalidation retires the old program's LTPs in the session's
	// caches (they must not be re-admitted by in-flight stragglers), so a
	// heavily patched workload accrues a little stale bookkeeping per
	// patch. Rotating to a fresh session every sessionRotatePatches
	// versions bounds that at the cost of one periodic cold rebuild.
	if w.version%sessionRotatePatches == 0 {
		w.sess = analysis.NewSession(w.schema)
	}
	return old.Name, invalidated, w.version, nil
}

// sessionRotatePatches is the version period after which a workload swaps
// in a fresh analysis session to shed memory pinned by patch history.
const sessionRotatePatches = 64

// workloadBaseBytes and stmtBytes are the rough fixed costs of the size
// estimate: per-workload bookkeeping and per-statement structures.
const (
	workloadBaseBytes = 1024
	stmtBytes         = 192
)

// sizeBytes estimates the workload's resident memory: program definitions,
// the session's memoized unfoldings and pairwise edge blocks, and the
// subsets result cache. It is the quantity the -max-bytes eviction policy
// weighs — a relative estimate recomputed on demand (caches grow as
// requests warm them), not an exact accounting.
func (w *workload) sizeBytes() int64 {
	w.mu.RLock()
	n := int64(workloadBaseBytes)
	for _, name := range w.names {
		p := w.programs[name]
		n += int64(len(p.Name) + len(p.Abbrev))
		n += int64(len(p.Statements())) * stmtBytes
	}
	sess := w.sess
	w.mu.RUnlock()
	return n + sess.SizeBytes() + w.results.sizeBytes()
}

// pinned reports whether a request is currently being served against the
// workload.
func (w *workload) pinned() bool { return w.pins.Load() > 0 }

// snapshotFile assembles the workload's persistent snapshot: schema,
// program definitions, version, content fingerprint, the result-cache
// entries and the minimal non-robust cores. A PATCH racing this may leave
// a result entry from a newer version in the file; restore filters entries
// by the file's version, so the worst case is a dropped cache entry, never
// a wrong answer. Cores self-consist by pointer identity: the session
// drops a patched program's cores before the patch publishes, so every
// exported core resolves against the program set read here — a core whose
// pointer no longer appears in the table is skipped.
func (w *workload) snapshotFile() (*snapshot.File, error) {
	programs, version := w.programList()
	f := &snapshot.File{
		ID:      w.id,
		Version: version,
		Content: fingerprint(w.schema, programs),
		Schema:  snapshot.FromSchema(w.schema),
	}
	for _, p := range programs {
		sp, err := snapshot.FromProgram(p)
		if err != nil {
			return nil, err
		}
		f.Programs = append(f.Programs, sp)
	}
	f.Results = w.results.export()
	sess := w.session()
	f.Cores = exportCoreGroups(sess.ExportCores(), programs)
	f.Covers = exportCoreGroups(sess.ExportCovers(), programs)
	return f, nil
}

// exportCoreGroups renders core (or cover) facts as name-based snapshot
// groups, one per (setting, method, bound), keeping only facts whose
// programs all belong to the given program set.
func exportCoreGroups(facts []analysis.CoreFact, programs []*btp.Program) []snapshot.CoreGroup {
	names := make(map[*btp.Program]string, len(programs))
	for _, p := range programs {
		names[p] = p.Name
	}
	var groups []snapshot.CoreGroup
	idx := make(map[string]int)
	for _, fact := range facts {
		core := make([]string, 0, len(fact.Programs))
		ok := true
		for _, p := range fact.Programs {
			name, present := names[p]
			if !present {
				ok = false
				break
			}
			core = append(core, name)
		}
		if !ok {
			continue
		}
		sort.Strings(core)
		key := fmt.Sprintf("%s|%s|%d", wire.SettingName(fact.Setting), wire.MethodName(fact.Method), fact.Bound)
		gi, seen := idx[key]
		if !seen {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, snapshot.CoreGroup{
				Setting: wire.SettingName(fact.Setting),
				Method:  wire.MethodName(fact.Method),
				Bound:   fact.Bound,
			})
		}
		groups[gi].Cores = append(groups[gi].Cores, core)
		groups[gi].Certified = append(groups[gi].Certified, fact.Certified)
	}
	// Groups with no certified core drop the column entirely, keeping
	// pre-certification snapshot bytes (and the cover groups) unchanged.
	for gi := range groups {
		any := false
		for _, c := range groups[gi].Certified {
			if c {
				any = true
				break
			}
		}
		if !any {
			groups[gi].Certified = nil
		}
	}
	return groups
}

// importCoreGroups resolves snapshot core/cover groups against the rebuilt
// program table and hands them to seed (Session.ImportCores or
// ImportCovers); entries naming unknown programs or unknown configurations
// are dropped.
func importCoreGroups(programs []*btp.Program, groups []snapshot.CoreGroup, seed func([]analysis.CoreFact) int) int {
	byName := make(map[string]*btp.Program, len(programs))
	for _, p := range programs {
		byName[p.Name] = p
	}
	var facts []analysis.CoreFact
	for _, g := range groups {
		setting, err := wire.ParseSetting(g.Setting)
		if err != nil {
			continue
		}
		method, err := wire.ParseMethod(g.Method)
		if err != nil {
			continue
		}
		for ci, core := range g.Cores {
			ps := make([]*btp.Program, 0, len(core))
			ok := len(core) > 0
			for _, name := range core {
				p, present := byName[name]
				if !present {
					ok = false
					break
				}
				ps = append(ps, p)
			}
			if ok {
				facts = append(facts, analysis.CoreFact{
					Setting: setting, Method: method, Bound: g.Bound, Programs: ps,
					Certified: ci < len(g.Certified) && g.Certified[ci],
				})
			}
		}
	}
	return seed(facts)
}

// flightCall is one in-flight subset enumeration that identical concurrent
// requests piggyback on. waiters counts requests currently blocked on it;
// the last waiter to give up cancels the computation.
type flightCall struct {
	done    chan struct{}
	resp    any
	err     error
	version uint64
	waiters atomic.Int64
	cancel  func()
}

// registry is the concurrency-safe workload table: fingerprint-keyed with
// an LRU cap, so a long-lived server bounds the memory of its cached
// sessions while hot workloads stay resident. When a -max-bytes budget is
// set, a second, memory-aware policy kicks in: per-workload size estimates
// (sizeBytes) are summed after every request, and size-weighted LRU
// eviction sheds workloads until the total fits — one bloated session goes
// before several small hot ones would.
type registry struct {
	cap      int
	maxBytes int64
	// onEvict, when non-nil, runs for every evicted workload *after* the
	// registry lock is released (it does disk I/O — the server uses it to
	// delete the workload's snapshot — and must not stall lookups). It may
	// therefore observe the id already re-registered; see Server.New's
	// callback for how that race is closed.
	onEvict func(*workload)

	mu             sync.Mutex
	items          map[string]*list.Element // id → element holding *workload
	order          *list.List               // front = most recently used
	evictions      atomic.Uint64
	evictionsBytes atomic.Uint64
}

func newRegistry(capacity int, maxBytes int64) *registry {
	return &registry{
		cap:      capacity,
		maxBytes: maxBytes,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// removeLocked detaches the element's workload and returns it. Caller
// holds r.mu and must pass the workload to notifyEvicted *after* releasing
// the lock — the eviction callback does disk I/O (snapshot deletion) that
// must not stall every lookup on the registry mutex.
func (r *registry) removeLocked(el *list.Element) *workload {
	w := el.Value.(*workload)
	r.order.Remove(el)
	delete(r.items, w.id)
	return w
}

// notifyEvicted runs the eviction callback for each workload. Caller must
// not hold r.mu.
func (r *registry) notifyEvicted(ws []*workload) {
	if r.onEvict == nil {
		return
	}
	for _, w := range ws {
		r.onEvict(w)
	}
}

// register inserts the workload, or returns the resident one with the same
// fingerprint (registration is idempotent). The entry becomes most
// recently used and is returned *pinned* — the caller must unpin once its
// post-registration work (drift reset, persist) is done, so no eviction
// can interleave and have its snapshot deletion overwritten. Beyond the
// cap the least recently used unpinned entry is evicted — a workload with
// a request in flight survives even at the cap.
func (r *registry) register(w *workload) (*workload, bool) {
	var evicted []*workload
	r.mu.Lock()
	if el, ok := r.items[w.id]; ok {
		r.order.MoveToFront(el)
		res := el.Value.(*workload)
		res.pins.Add(1)
		r.mu.Unlock()
		return res, false
	}
	r.items[w.id] = r.order.PushFront(w)
	w.pins.Add(1)
	for r.order.Len() > r.cap {
		victim := r.order.Back()
		for victim != nil && victim.Value.(*workload).pinned() {
			victim = victim.Prev()
		}
		if victim == nil || victim == r.order.Front() {
			break
		}
		evicted = append(evicted, r.removeLocked(victim))
		r.evictions.Add(1)
	}
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	return w, true
}

// enforceBytes evicts workloads until the estimated resident total fits the
// -max-bytes budget. The victim each round maximizes size × staleness
// (recency rank from the front), so the policy degrades to plain LRU when
// sizes are uniform but preferentially sheds one oversized session
// otherwise. Pinned workloads and the most recently used one (the workload
// serving the request that triggered enforcement) are never victims; if
// only those remain, the budget is allowed to overshoot rather than
// thrashing the working set.
//
// The size walk — every workload's caches — runs on an unlocked snapshot of
// the registry order, so concurrent lookups never queue behind it; only the
// final eviction takes the lock, re-verifying that the chosen victim is
// still resident, still unpinned and still not most recently used.
func (r *registry) enforceBytes() {
	if r.maxBytes <= 0 {
		return
	}
	for {
		workloads := r.all() // most recently used first
		var (
			total     int64
			victim    *workload
			bestScore int64
		)
		for rank, w := range workloads {
			size := w.sizeBytes()
			total += size
			if rank > 0 && !w.pinned() {
				if score := size * int64(rank+1); score > bestScore {
					bestScore, victim = score, w
				}
			}
		}
		if total <= r.maxBytes || victim == nil {
			return
		}
		if !r.evictForBytes(victim) {
			return
		}
	}
}

// evictForBytes evicts the chosen victim if it still qualifies under the
// lock (resident, unpinned, not most recently used); a false return stops
// the enforcement round rather than re-scoring forever against racing
// traffic.
func (r *registry) evictForBytes(w *workload) bool {
	r.mu.Lock()
	el, ok := r.items[w.id]
	if !ok || el.Value.(*workload) != w || w.pinned() || el == r.order.Front() {
		r.mu.Unlock()
		return false
	}
	r.removeLocked(el)
	r.evictionsBytes.Add(1)
	r.mu.Unlock()
	r.notifyEvicted([]*workload{w})
	return true
}

// peek returns the resident workload without bumping recency — eviction
// bookkeeping must not refresh the entry it inspects.
func (r *registry) peek(id string) *workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.items[id]; ok {
		return el.Value.(*workload)
	}
	return nil
}

// get returns the workload and bumps it to most recently used, or nil.
func (r *registry) get(id string) *workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[id]
	if !ok {
		return nil
	}
	r.order.MoveToFront(el)
	return el.Value.(*workload)
}

// pin pins the resident workload *without* bumping its recency — the
// background snapshot flusher must not refresh the LRU position of every
// workload it writes. Like getPinned, the pin is taken under the registry
// lock, so it is mutually exclusive with eviction's pinned() checks.
// Returns nil when the id is no longer resident. Callers unpin with
// pins.Add(-1).
func (r *registry) pin(id string) *workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[id]
	if !ok {
		return nil
	}
	w := el.Value.(*workload)
	w.pins.Add(1)
	return w
}

// getPinned is get plus a pin taken under the registry lock, so there is
// no window in which an eviction can observe the workload unpinned after a
// request has resolved it (a pin taken outside the lock would let the
// request serve — and persist — an already-evicted workload).
func (r *registry) getPinned(id string) *workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[id]
	if !ok {
		return nil
	}
	r.order.MoveToFront(el)
	w := el.Value.(*workload)
	w.pins.Add(1)
	return w
}

// all snapshots the resident workloads, most recently used first.
func (r *registry) all() []*workload {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*workload, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*workload))
	}
	return out
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}
