package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/wire"
)

// TestSnapshotRestartRoundTrip is the tentpole acceptance test: register →
// check → subsets, restart the server on the same -state-dir, and assert
// byte-identical wire responses — with the repeated enumeration answered
// from the persisted result cache, i.e. without re-running Algorithm 1 at
// all (BlockSet misses stay 0 after the restart).
func TestSnapshotRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, ts := newTestServer(t, Options{StateDir: dir})
	id := registerSmallBank(t, ts)

	// A second registration (what a client does after reconnecting).
	_, reReg1 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, nil)
	resp, check1 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: %d", resp.StatusCode)
	}
	resp, subsets1 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets: %d", resp.StatusCode)
	}
	// The newly cached enumeration is a debounced snapshot write; a real
	// restart goes through Close (which flushes) — force the flush here
	// because the first server stays up while the second boots.
	s1.Flush()

	// Restart: a fresh Server over the same state directory.
	s2, ts2 := newTestServer(t, Options{StateDir: dir})
	if loaded, skipped, err := s2.StateReport(); loaded != 1 || skipped != 0 || err != nil {
		t.Fatalf("StateReport = %d loaded, %d skipped, %v", loaded, skipped, err)
	}

	var reg wire.RegisterWorkloadResponse
	resp, reReg2 := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads",
		&wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if resp.StatusCode != http.StatusOK || reg.Created || reg.ID != id {
		t.Fatalf("post-restart register: %d created=%t id=%s (want resident %s)",
			resp.StatusCode, reg.Created, reg.ID, id)
	}
	if !bytes.Equal(reReg1, reReg2) {
		t.Errorf("re-register responses differ across restart:\n%s\nvs\n%s", reReg1, reReg2)
	}

	// The repeated enumeration must come from the persisted result cache:
	// byte-identical, and zero pairwise edge blocks computed since boot.
	resp, subsets2 := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/subsets", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart subsets: %d", resp.StatusCode)
	}
	if !bytes.Equal(subsets1, subsets2) {
		t.Errorf("subsets responses differ across restart:\n%s\nvs\n%s", subsets1, subsets2)
	}
	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts2.URL+"/v1/stats", nil, &st)
	if st.SnapshotsLoaded != 1 {
		t.Errorf("snapshots_loaded = %d, want 1", st.SnapshotsLoaded)
	}
	ws := st.WorkloadStats[0]
	if ws.Cache.Misses != 0 || ws.Cache.Hits != 0 {
		t.Errorf("post-restart subsets ran Algorithm 1: block cache %+v, want untouched", ws.Cache)
	}
	if ws.ResultCache.Hits != 1 || ws.ResultCache.Misses != 0 {
		t.Errorf("post-restart result cache = %+v, want 1 hit / 0 misses", ws.ResultCache)
	}

	// A check has no result cache: it recomputes — and must still be
	// byte-identical (the analysis is deterministic).
	resp, check2 := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/check", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart check: %d", resp.StatusCode)
	}
	if !bytes.Equal(check1, check2) {
		t.Errorf("check responses differ across restart:\n%s\nvs\n%s", check1, check2)
	}
}

// TestSnapshotPatchSurvivesRestart: a PATCHed workload reloads with its
// patched definition and version, and verdicts match a fresh oracle over
// the patched program set.
func TestSnapshotPatchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{StateDir: dir})
	id := registerSmallBank(t, ts)

	var patch wire.PatchProgramResponse
	resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, &patch)
	if resp.StatusCode != http.StatusOK || patch.Version != 1 {
		t.Fatalf("patch: %d version=%d", resp.StatusCode, patch.Version)
	}

	_, ts2 := newTestServer(t, Options{StateDir: dir})
	var ws wire.WorkloadStats
	resp, _ = doJSON(t, http.MethodGet, ts2.URL+"/v1/workloads/"+id, nil, &ws)
	if resp.StatusCode != http.StatusOK || ws.Version != 1 {
		t.Fatalf("post-restart workload: %d version=%d, want version 1", resp.StatusCode, ws.Version)
	}

	// Oracle over the patched program set.
	bench := benchmarks.SmallBank()
	next, err := sqlbtp.ParseProgram(bench.Schema, patchedDepositChecking)
	if err != nil {
		t.Fatal(err)
	}
	next.Abbrev = "DC"
	patched := make([]*btp.Program, len(bench.Programs))
	copy(patched, bench.Programs)
	for i, p := range patched {
		if p.Name == "DepositChecking" {
			patched[i] = next
		}
	}
	want, err := robust.NewChecker(bench.Schema).Check(patched)
	if err != nil {
		t.Fatal(err)
	}
	var check wire.CheckResponse
	resp, _ = doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/check", nil, &check)
	if resp.StatusCode != http.StatusOK || check.Robust != want.Robust {
		t.Errorf("post-restart check robust=%t, oracle=%t", check.Robust, want.Robust)
	}
	if v := resp.Header.Get("X-Workload-Version"); v != "1" {
		t.Errorf("post-restart version header = %q, want 1", v)
	}
}

// TestSnapshotCorruptStateSkipped: corrupt, truncated and
// fingerprint-forged snapshots are skipped at boot — never a crash, and
// the healthy snapshot still loads.
func TestSnapshotCorruptStateSkipped(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{StateDir: dir})
	id := registerSmallBank(t, ts)

	// Corrupt siblings: garbage, a truncated copy of the real snapshot,
	// and a decodable snapshot whose id does not match its content.
	healthy, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, content []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("aaaa0000aaaa0000.json", []byte("not json at all"))
	write("bbbb0000bbbb0000.json", healthy[:len(healthy)/2])
	forged := bytes.Replace(healthy, []byte(id), []byte("cccc0000cccc0000"), -1)
	write("cccc0000cccc0000.json", forged)

	s2, ts2 := newTestServer(t, Options{StateDir: dir})
	loaded, skipped, err := s2.StateReport()
	if loaded != 1 || skipped != 3 || err != nil {
		t.Fatalf("StateReport = %d loaded, %d skipped, %v; want 1/3/nil", loaded, skipped, err)
	}
	resp, _ := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/check", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy workload lost among corrupt snapshots: %d", resp.StatusCode)
	}
}

// TestSnapshotEvictionDeletesFile: an evicted workload must not resurrect
// on the next boot.
func TestSnapshotEvictionDeletesFile(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{StateDir: dir, MaxWorkloads: 1})
	idSB := registerSmallBank(t, ts)
	var reg wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, &reg)

	if _, err := os.Stat(filepath.Join(dir, idSB+".json")); !os.IsNotExist(err) {
		t.Errorf("evicted workload's snapshot still on disk: %v", err)
	}
	s2, _ := newTestServer(t, Options{StateDir: dir})
	if loaded, _, _ := s2.StateReport(); loaded != 1 {
		t.Errorf("loaded %d workloads after eviction, want only the resident auction", loaded)
	}
}

// TestResultCachePatchInvalidation: a PATCH invalidates exactly the
// patched workload's result-cache entries; a sibling workload's entries
// survive and keep hitting.
func TestResultCachePatchInvalidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	idSB := registerSmallBank(t, ts)
	var regAu wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, &regAu)

	// Warm both result caches.
	for _, id := range []string{idSB, regAu.ID} {
		if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm subsets %s: %d", id, resp.StatusCode)
		}
	}

	var patch wire.PatchProgramResponse
	resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+idSB+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, &patch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d", resp.StatusCode)
	}
	if patch.InvalidatedResults != 1 {
		t.Errorf("invalidated_results = %d, want 1", patch.InvalidatedResults)
	}

	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	for _, ws := range st.WorkloadStats {
		switch ws.ID {
		case idSB:
			if ws.ResultCache.Entries != 0 || ws.ResultCache.Invalidated != 1 {
				t.Errorf("patched workload result cache = %+v, want 0 entries / 1 invalidated", ws.ResultCache)
			}
		case regAu.ID:
			if ws.ResultCache.Entries != 1 || ws.ResultCache.Invalidated != 0 {
				t.Errorf("sibling workload result cache = %+v, want its entry untouched", ws.ResultCache)
			}
		}
	}

	// The sibling still hits; the patched workload re-enumerates under its
	// new version.
	resp1, raw1 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+regAu.ID+"/subsets", nil, nil)
	resp2, raw2 := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+regAu.ID+"/subsets", nil, nil)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK || !bytes.Equal(raw1, raw2) {
		t.Error("sibling workload's cached enumeration broke after foreign patch")
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+idSB+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("patched workload subsets: %d", resp.StatusCode)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	for _, ws := range st.WorkloadStats {
		if ws.ID == idSB && ws.ResultCache.Entries != 1 {
			t.Errorf("patched workload should have re-cached under version 1: %+v", ws.ResultCache)
		}
	}
}

// TestPersistDebounce is the write-amplification fix's acceptance test: a
// burst of newly cached enumerations marks the workload dirty instead of
// rewriting its snapshot per request, so the file is written once per
// flush, not once per enumeration — and the flushed file carries every
// result of the burst.
func TestPersistDebounce(t *testing.T) {
	dir := t.TempDir()
	// An hour-long interval parks the background flusher so the test
	// controls flush points explicitly.
	s1, ts := newTestServer(t, Options{StateDir: dir, FlushInterval: time.Hour})
	id := registerSmallBank(t, ts)
	if got := s1.persists.Load(); got != 1 {
		t.Fatalf("registration persisted %d times, want 1 (synchronous)", got)
	}

	// A burst of distinct enumerations, each caching a new result.
	settings := []string{"attr+fk", "attr", "tpl", "tpl+fk"}
	for _, setting := range settings {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets",
			&wire.CheckRequest{Setting: setting}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("subsets %s: %d", setting, resp.StatusCode)
		}
	}
	if got := s1.persists.Load(); got != 1 {
		t.Errorf("burst of %d enumerations wrote %d snapshots, want 0 new (debounced)", len(settings), got-1)
	}
	s1.Flush()
	if got := s1.persists.Load(); got != 2 {
		t.Errorf("flush after the burst wrote %d snapshots total, want exactly 2 (register + one flush)", got)
	}
	// Idempotent: nothing dirty, nothing written.
	s1.Flush()
	if got := s1.persists.Load(); got != 2 {
		t.Errorf("empty flush wrote a snapshot (total %d)", got)
	}

	// The single flushed file carries the whole burst.
	s2, ts2 := newTestServer(t, Options{StateDir: dir})
	if loaded, _, err := s2.StateReport(); loaded != 1 || err != nil {
		t.Fatalf("StateReport = %d loaded, %v", loaded, err)
	}
	var ws wire.WorkloadStats
	if resp, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/workloads/"+id, nil, &ws); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart workload lookup failed")
	}
	if ws.ResultCache.Entries != len(settings) {
		t.Errorf("restored result cache has %d entries, want the burst's %d", ws.ResultCache.Entries, len(settings))
	}
}

// TestFlushRetriesAfterPersistFailure: a flush that cannot write (state
// directory gone) must keep the workload dirty so a later flush retries —
// not silently abandon the burst's durability.
func TestFlushRetriesAfterPersistFailure(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "state")
	s, ts := newTestServer(t, Options{StateDir: dir, FlushInterval: time.Hour})
	id := registerSmallBank(t, ts)
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets failed")
	}

	// Break the state directory, flush, heal it, flush again.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if errs := s.persistErrs.Load(); errs == 0 {
		t.Fatal("broken state dir did not register a persist error")
	}
	if _, err := os.Stat(filepath.Join(dir, id+".json")); !os.IsNotExist(err) {
		t.Fatalf("snapshot unexpectedly present: %v", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
		t.Errorf("retry flush did not write the snapshot: %v", err)
	}
}

// TestFlushAfterEvictReregisterReleasesPin: when a dirty workload is
// evicted and its id re-registered as a fresh workload before the flush
// runs, the flush must skip the stale entry WITHOUT leaving its probe pin
// on the new workload — a leaked pin would make the workload permanently
// unevictable.
func TestFlushAfterEvictReregisterReleasesPin(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{StateDir: dir, MaxWorkloads: 1, FlushInterval: time.Hour})
	idSB := registerSmallBank(t, ts)

	// Dirty the workload, then evict it by registering another one.
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+idSB+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets failed")
	}
	var regAu wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, &regAu)
	if s.reg.peek(idSB) != nil {
		t.Fatal("smallbank not evicted by the 1-entry cap")
	}

	// Re-register the same content: same id, fresh workload object.
	var reg wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "smallbank"}, &reg)
	if reg.ID != idSB {
		t.Fatalf("re-registration changed the fingerprint: %s vs %s", reg.ID, idSB)
	}

	s.Flush()
	w := s.reg.peek(idSB)
	if w == nil {
		t.Fatal("re-registered workload missing")
	}
	if pins := w.pins.Load(); pins != 0 {
		t.Errorf("flush leaked %d pin(s) on the re-registered workload — it can never be evicted", pins)
	}
}

// TestCoresPersistAcrossRestart: the minimal non-robust cores discovered by
// an enumeration survive a restart inside the snapshot, so the restarted
// server's first fresh enumeration (here: under a different program
// selection, which the result cache cannot answer) prunes from the seeded
// cores instead of rediscovering them.
func TestCoresPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts := newTestServer(t, Options{StateDir: dir})
	id := registerSmallBank(t, ts)

	var rep1 wire.SubsetsResponse
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, &rep1); resp.StatusCode != http.StatusOK {
		t.Fatalf("subsets failed")
	}
	var ws wire.WorkloadStats
	doJSON(t, http.MethodGet, ts.URL+"/v1/workloads/"+id, nil, &ws)
	if ws.Cache.Cores.Cores == 0 || ws.Cache.Cores.SubsetsPruned == 0 {
		t.Fatalf("enumeration reported no cores/pruning: %+v", ws.Cache.Cores)
	}
	s1.Flush()

	s2, ts2 := newTestServer(t, Options{StateDir: dir})
	if loaded, _, err := s2.StateReport(); loaded != 1 || err != nil {
		t.Fatalf("StateReport = %d loaded, %v", loaded, err)
	}
	var wsBoot wire.WorkloadStats
	doJSON(t, http.MethodGet, ts2.URL+"/v1/workloads/"+id, nil, &wsBoot)
	if wsBoot.Cache.Cores.Cores != ws.Cache.Cores.Cores {
		t.Errorf("restored core store has %d cores, want the %d persisted", wsBoot.Cache.Cores.Cores, ws.Cache.Cores.Cores)
	}

	// A fresh enumeration over a program selection the result cache has
	// never seen: the seeded cores covering that selection prune without a
	// rediscovery. {Bal, WC, Am} contains non-robust pairs on a default
	// SmallBank, so at least one pruned superset must show up.
	var rep2 wire.SubsetsResponse
	resp, _ := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/subsets",
		&wire.CheckRequest{Programs: []string{"Bal", "WC", "Am"}}, &rep2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart subsets: %d", resp.StatusCode)
	}
	if rep2.SubsetsPruned == 0 {
		t.Errorf("restored cores pruned nothing on a covered selection")
	}
	var wsAfter wire.WorkloadStats
	doJSON(t, http.MethodGet, ts2.URL+"/v1/workloads/"+id, nil, &wsAfter)
	if wsAfter.Cache.Cores.Cores < wsBoot.Cache.Cores.Cores {
		t.Errorf("core store shrank across an enumeration: %d -> %d", wsBoot.Cache.Cores.Cores, wsAfter.Cache.Cores.Cores)
	}
}

// TestPatchKeepsUntouchedCores: a PATCH drops exactly the cores involving
// the patched program; cores over untouched programs survive and keep
// pruning the re-enumeration under the new version.
func TestPatchKeepsUntouchedCores(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := registerSmallBank(t, ts)

	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm subsets failed")
	}
	var before wire.WorkloadStats
	doJSON(t, http.MethodGet, ts.URL+"/v1/workloads/"+id, nil, &before)
	if before.Cache.Cores.Cores == 0 {
		t.Fatalf("no cores after warm enumeration")
	}

	resp, _ := doJSON(t, http.MethodPatch, ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking",
		&wire.PatchProgramRequest{SQL: patchedDepositChecking}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch failed")
	}
	var after wire.WorkloadStats
	doJSON(t, http.MethodGet, ts.URL+"/v1/workloads/"+id, nil, &after)
	if after.Cache.Cores.Cores >= before.Cache.Cores.Cores {
		t.Errorf("patch dropped no cores: %d -> %d", before.Cache.Cores.Cores, after.Cache.Cores.Cores)
	}
	if after.Cache.Cores.Cores == 0 {
		t.Errorf("patch dropped every core; cores over untouched programs must survive")
	}

	// The re-enumeration under version 1 prunes from the surviving cores.
	var rep wire.SubsetsResponse
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/subsets", nil, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-patch subsets failed")
	}
	if rep.SubsetsPruned == 0 {
		t.Errorf("surviving cores pruned nothing after the patch")
	}
}

// TestMaxBytesEviction: with a tiny byte budget, registering new workloads
// sheds old ones by the size-weighted policy, while the most recently used
// workload always survives.
func TestMaxBytesEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBytes: 1})
	idSB := registerSmallBank(t, ts)
	var regTP, regAu wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "tpcc"}, &regTP)
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, &regAu)

	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	if st.Workloads != 1 || st.EvictionsBytes != 2 || st.MaxBytes != 1 {
		t.Fatalf("stats = %d workloads, %d byte evictions, max %d; want 1/2/1",
			st.Workloads, st.EvictionsBytes, st.MaxBytes)
	}
	if st.WorkloadStats[0].ID != regAu.ID {
		t.Errorf("survivor is %s, want the most recently used %s", st.WorkloadStats[0].ID, regAu.ID)
	}
	for _, id := range []string{idSB, regTP.ID} {
		if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted workload %s still answers: %d", id, resp.StatusCode)
		}
	}
}

// TestMaxBytesEvictionPinned: a workload with a request in flight is never
// a bytes-eviction victim, even under a budget that would otherwise shed
// everything but the newest registration.
func TestMaxBytesEvictionPinned(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxBytes: 1})
	idSB := registerSmallBank(t, ts)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	s.testFlightHook = func() {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}
	subsetsDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/workloads/"+idSB+"/subsets", "application/json", nil)
		if err != nil {
			subsetsDone <- 0
			return
		}
		resp.Body.Close()
		subsetsDone <- resp.StatusCode
	}()
	<-entered // SmallBank now has a request in flight: pinned.

	// Two more registrations under the 1-byte budget: TPC-C (unpinned,
	// stale) must be evicted; pinned SmallBank and the just-registered
	// Auction survive.
	var regTP, regAu wire.RegisterWorkloadResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "tpcc"}, &regTP)
	doJSON(t, http.MethodPost, ts.URL+"/v1/workloads", &wire.RegisterWorkloadRequest{Benchmark: "auction"}, &regAu)

	if s.reg.get(idSB) == nil {
		t.Error("pinned workload was evicted under -max-bytes")
	}
	if s.reg.get(regTP.ID) != nil {
		t.Error("unpinned stale workload survived a 1-byte budget")
	}
	close(release)
	if code := <-subsetsDone; code != http.StatusOK {
		t.Errorf("in-flight subsets on pinned workload: %d", code)
	}
}

// TestStateDirUnusable: persistence failing to initialize disables
// snapshots but not the service.
func TestStateDirUnusable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Options{StateDir: filepath.Join(file, "nested")}) // mkdir under a file fails
	defer s.Close()
	if _, _, err := s.StateReport(); err == nil {
		t.Error("unusable state dir not reported")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := registerSmallBank(t, ts)
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/check", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("server with failed persistence cannot serve: %d", resp.StatusCode)
	}
}

// TestSnapshotCertifiedBitSurvivesRestart: a certified core persists in the
// workload snapshot and reloads with its provenance bit set — the restarted
// server reports it in /v1/stats without re-running the certification.
func TestSnapshotCertifiedBitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts := newTestServer(t, Options{StateDir: dir})
	id := registerSmallBank(t, ts)

	var cert wire.CertifyResponse
	resp, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal", "Am"}}}, &cert)
	if resp.StatusCode != http.StatusOK || cert.Status != "certified" || !cert.NewlyCertified {
		t.Fatalf("certify: %d %+v\n%s", resp.StatusCode, cert, raw)
	}
	s1.Flush()

	// The provenance column is on disk.
	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"certified"`)) {
		t.Fatalf("snapshot lacks the certified column:\n%s", data)
	}

	// Restart and look at the reloaded session's stats.
	_, ts2 := newTestServer(t, Options{StateDir: dir})
	var st wire.StatsResponse
	doJSON(t, http.MethodGet, ts2.URL+"/v1/stats", nil, &st)
	if st.CertifiedCores != 1 {
		t.Errorf("post-restart certified_cores = %d, want 1", st.CertifiedCores)
	}
	if st.Requests.Certify != 0 {
		t.Errorf("post-restart requests.certify = %d, want 0 (bit must come from the snapshot)", st.Requests.Certify)
	}

	// Re-certifying after the restart is a no-op on the provenance bit.
	var again wire.CertifyResponse
	if resp, _ := doJSON(t, http.MethodPost, ts2.URL+"/v1/workloads/"+id+"/certify",
		&wire.CertifyRequest{CheckRequest: wire.CheckRequest{Programs: []string{"Bal", "Am"}}}, &again); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart certify: %d", resp.StatusCode)
	}
	if again.Status != "certified" || again.NewlyCertified {
		t.Errorf("post-restart certify = %+v, want certified without newly_certified", again)
	}
}
