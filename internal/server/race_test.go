package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/btp"
	"repro/internal/robust"
	"repro/internal/sqlbtp"
	"repro/internal/wire"
)

// TestConcurrentSessionUse hammers one registered workload with parallel
// /check, /subsets and PATCH requests. Every response carries the workload
// version its verdict was computed against; versions alternate between the
// original SmallBank programs (even) and a patched DepositChecking (odd),
// so each response is asserted against the naive oracle for its version.
// Run under -race (the CI default) this is also the server's data-race
// test.
func TestConcurrentSessionUse(t *testing.T) {
	bench := benchmarks.SmallBank()

	// Build the two program-set versions and their naive-oracle answers.
	// The patched program is parsed against the same schema object as the
	// originals so the oracle analyses a consistent workload.
	patchedProg, err := sqlbtp.ParseProgram(bench.Schema, patchedDepositChecking)
	if err != nil {
		t.Fatal(err)
	}
	patchedProg.Abbrev = "DC"
	patchedSet := make([]*btp.Program, len(bench.Programs))
	copy(patchedSet, bench.Programs)
	for i, p := range patchedSet {
		if p.Name == "DepositChecking" {
			patchedSet[i] = patchedProg
		}
	}
	versions := [][]*btp.Program{bench.Programs, patchedSet} // index by version%2

	type oracle struct {
		checkRobust bool
		subsets     string // maximal subsets rendering
	}
	oracles := make([]oracle, 2)
	for i, ps := range versions {
		c := robust.NewChecker(bench.Schema)
		res, err := c.Check(ps)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.NaiveRobustSubsets(ps)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = oracle{checkRobust: res.Robust, subsets: rep.String()}
	}

	s := New(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	reg, err := s.Register(bench.Schema, bench.Programs)
	if err != nil {
		t.Fatal(err)
	}
	id := reg.ID

	const (
		checkers   = 3
		subsetters = 3
		patches    = 6
	)
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	done := make(chan struct{})

	// version parses the X-Workload-Version header.
	version := func(resp *http.Response) (int, error) {
		return strconv.Atoi(resp.Header.Get("X-Workload-Version"))
	}

	for g := 0; g < checkers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/check", "application/json", nil)
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				v, err := version(resp)
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("check: status %d version %v\n%s", resp.StatusCode, err, raw)
					return
				}
				var cr wire.CheckResponse
				if err := json.Unmarshal(raw, &cr); err != nil {
					errc <- err
					return
				}
				if cr.Robust != oracles[v%2].checkRobust {
					errc <- fmt.Errorf("check at version %d: robust=%t, oracle says %t", v, cr.Robust, oracles[v%2].checkRobust)
					return
				}
			}
		}()
	}
	for g := 0; g < subsetters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/subsets", "application/json", nil)
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				v, err := version(resp)
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("subsets: status %d version %v\n%s", resp.StatusCode, err, raw)
					return
				}
				var sr wire.SubsetsResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					errc <- err
					return
				}
				// Render like SubsetReport.String for comparison.
				parts := make([]string, len(sr.Maximal))
				for i, m := range sr.Maximal {
					s := "{"
					for j, n := range m {
						if j > 0 {
							s += ", "
						}
						s += n
					}
					parts[i] = s + "}"
				}
				got := ""
				for i, p := range parts {
					if i > 0 {
						got += ", "
					}
					got += p
				}
				if got != oracles[v%2].subsets {
					errc <- fmt.Errorf("subsets at version %d:\ngot    %s\noracle %s", v, got, oracles[v%2].subsets)
					return
				}
			}
		}()
	}

	// The patcher alternates DepositChecking between its two definitions,
	// closing done when finished.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		bodies := []string{patchedDepositChecking, originalDepositChecking}
		for i := 0; i < patches; i++ {
			buf, _ := json.Marshal(wire.PatchProgramRequest{SQL: bodies[i%2]})
			req, _ := http.NewRequest(http.MethodPatch,
				ts.URL+"/v1/workloads/"+id+"/programs/DepositChecking", bytes.NewReader(buf))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errc <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("patch %d: %d\n%s", i, resp.StatusCode, raw)
				return
			}
			var pr wire.PatchProgramResponse
			if err := json.Unmarshal(raw, &pr); err != nil {
				errc <- err
				return
			}
			if pr.Version != uint64(i+1) {
				errc <- fmt.Errorf("patch %d: version %d, want %d", i, pr.Version, i+1)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After an even number of patches the workload is back at the
	// original definition; a final check must agree with the v0 oracle.
	resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr wire.CheckResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Robust != oracles[0].checkRobust {
		t.Errorf("final check robust=%t, oracle says %t", cr.Robust, oracles[0].checkRobust)
	}
}
